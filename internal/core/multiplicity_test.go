package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shbf/internal/memmodel"
)

func mustMultiplicity(t *testing.T, m, k, c int, opts ...Option) *Multiplicity {
	t.Helper()
	f, err := NewMultiplicity(m, k, c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewMultiplicityValidation(t *testing.T) {
	tests := []struct{ m, k, c int }{
		{0, 4, 10}, {100, 0, 10}, {100, 4, 0}, {100, 4, 65},
	}
	for _, tt := range tests {
		if _, err := NewMultiplicity(tt.m, tt.k, tt.c); err == nil {
			t.Errorf("NewMultiplicity(%d,%d,%d) accepted invalid config", tt.m, tt.k, tt.c)
		}
	}
	if _, err := NewMultiplicity(100, 4, 64); err != nil {
		t.Errorf("c=64 rejected: %v", err)
	}
}

func TestMultiplicityAddWithCountRange(t *testing.T) {
	f := mustMultiplicity(t, 1000, 4, 10)
	if err := f.AddWithCount([]byte("a"), 0); !errors.Is(err, ErrCountOverflow) {
		t.Errorf("count 0 accepted: %v", err)
	}
	if err := f.AddWithCount([]byte("a"), 11); !errors.Is(err, ErrCountOverflow) {
		t.Errorf("count 11 accepted: %v", err)
	}
	if err := f.AddWithCount([]byte("a"), 10); err != nil {
		t.Errorf("count 10 rejected: %v", err)
	}
}

func TestMultiplicityReportNeverBelowTruth(t *testing.T) {
	// Section 5.2: "the largest candidate of c(e) is always greater than
	// or equal to the actual value" — no false negatives.
	const c = 57
	f := mustMultiplicity(t, 40000, 8, c)
	rng := rand.New(rand.NewSource(1))
	elems := genElements(2000, 2)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(c) + 1
		if err := f.AddWithCount(e, truth[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range elems {
		if got := f.Count(e); got < truth[i] {
			t.Fatalf("element %d: reported %d < truth %d", i, got, truth[i])
		}
	}
	if f.N() != 2000 {
		t.Fatalf("N = %d, want 2000", f.N())
	}
}

func TestMultiplicityTruthAlwaysCandidate(t *testing.T) {
	const c = 20
	f := mustMultiplicity(t, 20000, 6, c)
	rng := rand.New(rand.NewSource(3))
	elems := genElements(1000, 4)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(c) + 1
		f.AddWithCount(e, truth[i])
	}
	var cands []int
	for i, e := range elems {
		cands = f.Candidates(e, cands)
		found := false
		for _, j := range cands {
			if j == truth[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("element %d: truth %d not among candidates %v", i, truth[i], cands)
		}
		// Candidates must be sorted ascending.
		for j := 1; j < len(cands); j++ {
			if cands[j] <= cands[j-1] {
				t.Fatalf("candidates not strictly increasing: %v", cands)
			}
		}
	}
}

func TestMultiplicityAbsentElement(t *testing.T) {
	f := mustMultiplicity(t, 50000, 8, 57)
	for _, e := range genElements(100, 5) {
		f.AddWithCount(e, 3)
	}
	misses := 0
	for _, e := range genDisjoint(1000, 6) {
		if f.Count(e) == 0 {
			misses++
		}
	}
	// With a nearly-empty filter, essentially all absent elements report 0.
	if misses < 990 {
		t.Fatalf("only %d/1000 absent elements reported 0", misses)
	}
}

func TestMultiplicityCorrectnessRateMatchesTheory(t *testing.T) {
	// Equation (28): for a member with multiplicity j, the correctness
	// rate is (1−f0)^{j−1} where f0 = (1−e^{−kn/m})^k (Equation 26).
	// Use the paper's Figure 11 sizing: memory = 1.5·nk/ln2.
	const (
		k = 8
		n = 20000
		c = 57
	)
	nf := float64(n)
	m := int(1.5 * nf * k / math.Ln2)
	f := mustMultiplicity(t, m, k, c, WithSeed(11))
	rng := rand.New(rand.NewSource(7))
	elems := genElements(n, 8)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(c) + 1
		f.AddWithCount(e, truth[i])
	}
	correct, totalWeight := 0.0, 0.0
	f0 := math.Pow(1-math.Exp(-float64(k)*n/float64(m)), k)
	expected := 0.0
	for i, e := range elems {
		if f.Count(e) == truth[i] {
			correct++
		}
		expected += math.Pow(1-f0, float64(truth[i]-1))
		totalWeight++
	}
	got := correct / totalWeight
	want := expected / totalWeight
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("correctness rate %.4f vs theory %.4f", got, want)
	}
}

func TestMultiplicityAccessCounting(t *testing.T) {
	// c = 57 windows cost one access each; a full query is ≤ k accesses
	// with early exit.
	var acc memmodel.Counter
	const k = 8
	f := mustMultiplicity(t, 10000, k, 57, WithAccessCounter(&acc))
	e := []byte("elem")
	f.AddWithCount(e, 5)
	acc.Reset()
	if got := f.Count(e); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if acc.Reads() != k {
		t.Fatalf("member query cost %d accesses, want %d", acc.Reads(), k)
	}
	if got := f.AccessesPerQuery(); got != k {
		t.Fatalf("AccessesPerQuery = %d, want %d", got, k)
	}

	// Absent element on a sparse filter: early exit after ~1 window.
	acc.Reset()
	f.Count([]byte("absent"))
	if acc.Reads() > 2 {
		t.Fatalf("absent query cost %d accesses, expected early exit", acc.Reads())
	}
}

func TestMultiplicityKBitsPerElement(t *testing.T) {
	// Exactly k bits encode an element regardless of count (Section 5.4).
	f := mustMultiplicity(t, 10000, 8, 57)
	f.AddWithCount([]byte("high count"), 57)
	if got := f.bits.OnesCount(); got > 8 {
		t.Fatalf("%d bits set for one element, want ≤ 8", got)
	}
}

func TestMultiplicityCandidatesProperty(t *testing.T) {
	// Property: Count equals max(Candidates) and 0 iff no candidates.
	f := mustMultiplicity(t, 5000, 4, 16)
	rng := rand.New(rand.NewSource(13))
	for _, e := range genElements(800, 14) {
		f.AddWithCount(e, rng.Intn(16)+1)
	}
	prop := func(raw []byte) bool {
		var cands []int
		cands = f.Candidates(raw, cands)
		count := f.Count(raw)
		if len(cands) == 0 {
			return count == 0
		}
		return count == cands[len(cands)-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMultiplicityReset(t *testing.T) {
	f := mustMultiplicity(t, 1000, 4, 8)
	f.AddWithCount([]byte("x"), 3)
	f.Reset()
	if f.N() != 0 || f.FillRatio() != 0 || f.Count([]byte("x")) != 0 {
		t.Fatal("Reset did not clear filter")
	}
}

func TestMultiplicityAccessors(t *testing.T) {
	f := mustMultiplicity(t, 1234, 6, 30)
	if f.M() != 1234 || f.K() != 6 || f.C() != 30 {
		t.Fatalf("accessors: M=%d K=%d C=%d", f.M(), f.K(), f.C())
	}
	if f.SizeBytes() != (1234+29+63)/64*8 {
		t.Fatalf("SizeBytes = %d", f.SizeBytes())
	}
}

func BenchmarkMultiplicityCount(b *testing.B) {
	f, _ := NewMultiplicity(1<<20, 8, 57)
	rng := rand.New(rand.NewSource(1))
	elems := genElements(4096, 1)
	for _, e := range elems {
		f.AddWithCount(e, rng.Intn(57)+1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Count(elems[i&4095])
	}
}
