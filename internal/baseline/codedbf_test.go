package baseline

import (
	"testing"
)

func buildCodedSets(g, nEach int, seed int64) [][][]byte {
	all := genElements(g*nEach, seed)
	for i, e := range all {
		e[11] = byte(i / nEach)
	}
	sets := make([][][]byte, g)
	for i := range sets {
		sets[i] = all[i*nEach : (i+1)*nEach]
	}
	return sets
}

func TestCodedBFValidation(t *testing.T) {
	if _, err := BuildCodedBF(nil, 100, 4); err == nil {
		t.Error("accepted zero sets")
	}
	if _, err := BuildCodedBF(make([][][]byte, 2), 0, 4); err == nil {
		t.Error("accepted totalBits=0")
	}
}

func TestCodedBFCodeLength(t *testing.T) {
	for _, tt := range []struct{ g, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}} {
		c, err := BuildCodedBF(make([][][]byte, tt.g), 10000, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c.CodeLen() != tt.want {
			t.Errorf("g=%d: CodeLen = %d, want %d", tt.g, c.CodeLen(), tt.want)
		}
	}
}

func TestCodedBFDisjointSetsDecode(t *testing.T) {
	const g, nEach = 3, 1000
	sets := buildCodedSets(g, nEach, 1)
	c, err := BuildCodedBF(sets, 60000, 8, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	correct, unclear := 0, 0
	for s, set := range sets {
		for _, e := range set {
			got, ok := c.Query(e)
			switch {
			case ok && got == s:
				correct++
			case !ok:
				unclear++
			default:
				// A wrong-but-valid decode: possible via false positives.
			}
		}
	}
	total := g * nEach
	if correct < total*95/100 {
		t.Fatalf("only %d/%d correct decodes", correct, total)
	}
	_ = unclear
}

func TestCodedBFOverlapMisclassifies(t *testing.T) {
	// The documented failure: an element in sets 0 (code 01) and 1
	// (code 10) reassembles code 11 = set 2. The paper's Section 2.2
	// criticism, demonstrated.
	sets := buildCodedSets(3, 500, 3)
	shared := genElements(100, 4)
	for _, e := range shared {
		e[11] = 0xEE
	}
	sets[0] = append(sets[0], shared...)
	sets[1] = append(sets[1], shared...)
	c, err := BuildCodedBF(sets, 60000, 8, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	misclassified := 0
	for _, e := range shared {
		if got, ok := c.Query(e); ok && got == 2 {
			misclassified++
		}
	}
	if misclassified != len(shared) {
		t.Fatalf("expected all %d shared elements to decode as set 2, got %d", len(shared), misclassified)
	}
}

func TestCodedBFNonMember(t *testing.T) {
	sets := buildCodedSets(3, 200, 6)
	c, err := BuildCodedBF(sets, 60000, 8)
	if err != nil {
		t.Fatal(err)
	}
	unclear := 0
	for _, e := range genDisjoint(1000, 7) {
		if _, ok := c.Query(e); !ok {
			unclear++
		}
	}
	if unclear < 980 {
		t.Fatalf("only %d/1000 non-members rejected", unclear)
	}
	if c.SizeBytes() == 0 || c.HashOpsPerQuery() != 16 {
		t.Fatalf("SizeBytes=%d HashOps=%d", c.SizeBytes(), c.HashOpsPerQuery())
	}
}
