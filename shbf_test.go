package shbf_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shbf"
)

// genElements produces n distinct test elements.
func genElements(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 13)
		rng.Read(b)
		b[0], b[1], b[2] = byte(i), byte(i>>8), byte(i>>16)
		out[i] = b
	}
	return out
}

func TestPublicMembershipAPI(t *testing.T) {
	f, err := shbf.NewMembership(10000, 8, shbf.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(500, 1)
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative through public API")
		}
	}
	if f.K() != 8 || f.M() != 10000 || f.MaxOffset() != shbf.DefaultMaxOffset {
		t.Fatal("accessors wrong through alias")
	}
}

func TestPublicCountingAPI(t *testing.T) {
	f, err := shbf.NewCountingMembership(5000, 6, shbf.WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("element")
	if err := f.Insert(e); err != nil {
		t.Fatal(err)
	}
	if !f.Contains(e) {
		t.Fatal("false negative")
	}
	if err := f.Delete(e); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(e); !errors.Is(err, shbf.ErrNotStored) {
		t.Fatalf("over-delete error = %v", err)
	}
}

func TestPublicAssociationAPI(t *testing.T) {
	s1 := genElements(300, 2)
	s2 := genElements(300, 3)
	for _, e := range s2 {
		e[12] = 0xEE
	}
	shared := genElements(100, 4)
	for _, e := range shared {
		e[12] = 0xDD
	}
	s1 = append(s1, shared...)
	s2 = append(s2, shared...)

	a, err := shbf.BuildAssociation(s1, s2, 8000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range shared {
		r := a.Query(e)
		if !r.Contains(shbf.RegionBoth) {
			t.Fatalf("shared element candidates %v missing S1∩S2", r)
		}
	}
	if got := a.NBoth(); got != 100 {
		t.Fatalf("NBoth = %d", got)
	}
}

func TestPublicMultiplicityAPI(t *testing.T) {
	f, err := shbf.NewMultiplicity(20000, 8, 57)
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("flow")
	if err := f.AddWithCount(e, 12); err != nil {
		t.Fatal(err)
	}
	if got := f.Count(e); got < 12 {
		t.Fatalf("Count = %d underestimates", got)
	}
	if err := f.AddWithCount(e, 99); !errors.Is(err, shbf.ErrCountOverflow) {
		t.Fatalf("overflow error = %v", err)
	}
}

func TestPublicAccessCounter(t *testing.T) {
	var acc shbf.AccessCounter
	f, err := shbf.NewMembership(10000, 8, shbf.WithAccessCounter(&acc))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("x")
	f.Add(e)
	acc.Reset()
	f.Contains(e)
	if acc.Reads() != 4 {
		t.Fatalf("member query cost %d accesses, want k/2 = 4", acc.Reads())
	}
}

func TestPublicTShiftAndSCM(t *testing.T) {
	ts, err := shbf.NewTShift(5000, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts.Add([]byte("e"))
	if !ts.Contains([]byte("e")) {
		t.Fatal("t-shift false negative")
	}

	s, err := shbf.NewSCMSketch(8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert([]byte("e"))
	s.Insert([]byte("e"))
	if got := s.Count([]byte("e")); got < 2 {
		t.Fatalf("SCM count %d underestimates", got)
	}
}

func ExampleNewMembership() {
	// Size for n ≈ 10000 elements at k = 8: m = n·k/ln2 ≈ 115000 bits.
	f, _ := shbf.NewMembership(115000, 8, shbf.WithSeed(42))
	f.Add([]byte("10.1.2.3:443->10.9.8.7:51724/tcp"))
	fmt.Println(f.Contains([]byte("10.1.2.3:443->10.9.8.7:51724/tcp")))
	fmt.Println(f.Contains([]byte("203.0.113.9:80->198.51.100.2:4242/udp")))
	// Output:
	// true
	// false
}

func ExampleBuildAssociation() {
	s1 := [][]byte{[]byte("alpha"), []byte("common")}
	s2 := [][]byte{[]byte("beta"), []byte("common")}
	a, _ := shbf.BuildAssociation(s1, s2, 1000, 8)
	fmt.Println(a.Query([]byte("alpha")))
	fmt.Println(a.Query([]byte("common")))
	fmt.Println(a.Query([]byte("beta")))
	// Output:
	// S1−S2
	// S1∩S2
	// S2−S1
}
