package main

// perf.go implements the -perf mode: a machine-readable hot-path
// benchmark suite over 13-byte 5-tuple flow IDs, covering
// Add/Contains/AddAll/ContainsAll for k ∈ {4, 8, 16} in three modes:
// the scalar ShBF_M and the sharded wrapper at serving scale (64k
// members), and the paper's Figure 9(b) micro point (see perfPaper).
// Results go to a JSON file (BENCH_PR3.json by default) so successive
// PRs have a trajectory to beat; an optional baseline file is embedded
// verbatim under "baseline" for before/after comparison.
//
// The mode doubles as a regression gate: query-side hot paths
// (Contains/ContainsAll) must report zero allocations per op, or the
// run exits nonzero — this is what CI's benchmark job enforces.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"shbf"
	"shbf/internal/flowkeys"
)

// perfKeyBytes is the element size of the perf workload: the paper's
// 13-byte 5-tuple flow ID.
const perfKeyBytes = flowkeys.KeyBytes

// perfN is the member-set size; perfBatch the request-batch size the
// batch ops are measured at (matching the serving layer's typical
// request shape).
const (
	perfN      = 1 << 16
	perfBatch  = 1024
	perfShards = 16
)

// perfResult is one benchmark case. Batch ops report both the raw
// per-call numbers and the per-key breakdown (KeysPerOp > 1).
type perfResult struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"` // scalar | sharded | paper (Fig 9(b) point)
	Op          string  `json:"op"`   // Add | Contains | AddAll | ContainsAll
	K           int     `json:"k"`
	KeysPerOp   int     `json:"keys_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerKey    float64 `json:"ns_per_key"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
	// Speedup is baseline ns_per_key / this ns_per_key for the same
	// case, filled only when a baseline section is embedded.
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
}

// perfReport is the BENCH_PR3.json document.
type perfReport struct {
	Schema      string       `json:"schema"`
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	CPUs        int          `json:"cpus"`
	KeyBytes    int          `json:"key_bytes"`
	Note        string       `json:"note"`
	Results     []perfResult `json:"results"`
	Baseline    []perfResult `json:"baseline,omitempty"`
}

// perfRuns is how many times each case is measured; the fastest run is
// reported. Minimum-of-N is the standard noise filter for wall-clock
// microbenchmarks on shared machines: scheduler preemption and
// frequency excursions only ever add time, so the minimum is the best
// estimate of the code's cost.
const perfRuns = 3

// perfCase measures one benchmark body perfRuns times and packages the
// fastest run.
func perfCase(mode, op string, k, keysPerOp int, body func(b *testing.B)) perfResult {
	r := testing.Benchmark(body)
	for run := 1; run < perfRuns; run++ {
		if next := testing.Benchmark(body); next.NsPerOp() < r.NsPerOp() {
			r = next
		}
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return perfResult{
		Name:        fmt.Sprintf("%s/%s/k=%d", mode, op, k),
		Mode:        mode,
		Op:          op,
		K:           k,
		KeysPerOp:   keysPerOp,
		NsPerOp:     ns,
		NsPerKey:    ns / float64(keysPerOp),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

// perfScalar measures the monolithic ShBF_M at k.
func perfScalar(k int, flat []byte, keys [][]byte) ([]perfResult, error) {
	m := 2 * perfN * k // comfortably under-filled, like the paper's sweeps
	add, err := shbf.NewMembership(m, k, shbf.WithSeed(1))
	if err != nil {
		return nil, err
	}
	full, err := shbf.NewMembership(m, k, shbf.WithSeed(1))
	if err != nil {
		return nil, err
	}
	if err := full.AddAll(keys); err != nil {
		return nil, err
	}
	batch := keys[:perfBatch]
	dst := make([]bool, perfBatch)
	return []perfResult{
		perfCase("scalar", "Add", k, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				off := (i & (perfN - 1)) * perfKeyBytes
				add.Add(flat[off : off+perfKeyBytes])
			}
		}),
		perfCase("scalar", "Contains", k, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				off := (i & (perfN - 1)) * perfKeyBytes
				full.Contains(flat[off : off+perfKeyBytes])
			}
		}),
		perfCase("scalar", "AddAll", k, perfBatch, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := add.AddAll(batch); err != nil {
					b.Fatal(err)
				}
			}
		}),
		perfCase("scalar", "ContainsAll", k, perfBatch, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = full.ContainsAll(dst, batch)
			}
		}),
	}, nil
}

// perfSharded measures the lock-striped wrapper at k.
func perfSharded(k int, flat []byte, keys [][]byte) ([]perfResult, error) {
	m := 2 * perfN * k
	add, err := shbf.NewShardedMembership(m, k, perfShards, shbf.WithSeed(1))
	if err != nil {
		return nil, err
	}
	full, err := shbf.NewShardedMembership(m, k, perfShards, shbf.WithSeed(1))
	if err != nil {
		return nil, err
	}
	if err := full.AddAll(keys); err != nil {
		return nil, err
	}
	batch := keys[:perfBatch]
	dst := make([]bool, perfBatch)
	return []perfResult{
		perfCase("sharded", "Add", k, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				off := (i & (perfN - 1)) * perfKeyBytes
				add.Add(flat[off : off+perfKeyBytes])
			}
		}),
		perfCase("sharded", "Contains", k, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				off := (i & (perfN - 1)) * perfKeyBytes
				full.Contains(flat[off : off+perfKeyBytes])
			}
		}),
		perfCase("sharded", "AddAll", k, perfBatch, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := add.AddAll(batch); err != nil {
					b.Fatal(err)
				}
			}
		}),
		perfCase("sharded", "ContainsAll", k, perfBatch, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = full.ContainsAll(dst, batch)
			}
		}),
	}, nil
}

// perfPaperN is the member-set size of the paper-point cases: the
// paper's Figure 9(b) micro-benchmark geometry (n = 1000,
// m = 4128·k — 33024 bits at k = 8), an L1-resident array. In this
// regime the memory floor is negligible and hashing dominates, which
// is exactly the regime the paper's k/2+1 hash-halving targets — and
// where the digest pipeline's win shows undiluted. The serving-scale
// "scalar"/"sharded" cases above share a memory floor between any two
// hashing schemes, so their speedups are lower bounds.
const perfPaperN = 1000

// perfPaper measures the monolithic ShBF_M at the paper's Figure 9(b)
// operating point.
func perfPaper(k int, keys [][]byte) ([]perfResult, error) {
	m := 4128 * k
	pkeys := keys[:perfPaperN]
	add, err := shbf.NewMembership(m, k, shbf.WithSeed(1))
	if err != nil {
		return nil, err
	}
	full, err := shbf.NewMembership(m, k, shbf.WithSeed(1))
	if err != nil {
		return nil, err
	}
	if err := full.AddAll(pkeys); err != nil {
		return nil, err
	}
	// 1000 is not a power of two; cycle with a modulus instead of a
	// mask (the divide is hoisted out of the measured chain by the
	// sequential i).
	dst := make([]bool, len(pkeys))
	return []perfResult{
		perfCase("paper", "Add", k, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				add.Add(pkeys[i%perfPaperN])
			}
		}),
		perfCase("paper", "Contains", k, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				full.Contains(pkeys[i%perfPaperN])
			}
		}),
		perfCase("paper", "AddAll", k, perfPaperN, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := add.AddAll(pkeys); err != nil {
					b.Fatal(err)
				}
			}
		}),
		perfCase("paper", "ContainsAll", k, perfPaperN, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = full.ContainsAll(dst, pkeys)
			}
		}),
	}, nil
}

// checkHotPathAllocs enforces the zero-allocation contract on the
// query hot paths. Returning an error (rather than just printing)
// makes `shbench -perf` a CI gate.
func checkHotPathAllocs(results []perfResult) error {
	var bad []string
	for _, r := range results {
		if (r.Op == "Contains" || r.Op == "ContainsAll" || r.Op == "Add" || r.Op == "AddAll") && r.AllocsPerOp != 0 {
			bad = append(bad, fmt.Sprintf("%s (%d allocs/op)", r.Name, r.AllocsPerOp))
		}
	}
	if len(bad) != 0 {
		return fmt.Errorf("hot paths allocate: %v", bad)
	}
	return nil
}

// runPerf executes the suite and writes the report. baselinePath, if
// non-empty and readable, supplies the "baseline" section (its own
// "results" array is lifted out, so a previous BENCH_*.json works
// directly).
func runPerf(outPath, baselinePath, note string) error {
	// Validate the baseline before the multi-minute measurement run, so
	// a bad -perf-baseline path fails in milliseconds, not after.
	var baseline []perfResult
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("perf baseline: %w", err)
		}
		var prev perfReport
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("perf baseline %s: %w", baselinePath, err)
		}
		baseline = prev.Results
	}

	flat, keys := flowkeys.Keys(perfN)
	report := perfReport{
		Schema:      "shbf-perf/1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		KeyBytes:    perfKeyBytes,
		Note:        note,
	}
	for _, k := range []int{4, 8, 16} {
		fmt.Fprintf(os.Stderr, "perf: scalar k=%d...\n", k)
		rs, err := perfScalar(k, flat, keys)
		if err != nil {
			return fmt.Errorf("perf scalar k=%d: %w", k, err)
		}
		report.Results = append(report.Results, rs...)
		fmt.Fprintf(os.Stderr, "perf: sharded k=%d...\n", k)
		rs, err = perfSharded(k, flat, keys)
		if err != nil {
			return fmt.Errorf("perf sharded k=%d: %w", k, err)
		}
		report.Results = append(report.Results, rs...)
		fmt.Fprintf(os.Stderr, "perf: paper-point k=%d...\n", k)
		rs, err = perfPaper(k, keys)
		if err != nil {
			return fmt.Errorf("perf paper k=%d: %w", k, err)
		}
		report.Results = append(report.Results, rs...)
	}
	if baseline != nil {
		report.Baseline = baseline
		byName := make(map[string]perfResult, len(baseline))
		for _, b := range baseline {
			byName[b.Name] = b
		}
		for i, r := range report.Results {
			if b, ok := byName[r.Name]; ok && r.NsPerKey > 0 {
				report.Results[i].Speedup = b.NsPerKey / r.NsPerKey
			}
		}
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	for _, r := range report.Results {
		speedup := ""
		if r.Speedup != 0 {
			speedup = fmt.Sprintf("  %.2fx vs baseline", r.Speedup)
		}
		fmt.Printf("%-26s %10.1f ns/op %8.1f ns/key %4d allocs/op%s\n",
			r.Name, r.NsPerOp, r.NsPerKey, r.AllocsPerOp, speedup)
	}
	fmt.Printf("perf: wrote %s (%d cases)\n", outPath, len(report.Results))
	return checkHotPathAllocs(report.Results)
}
