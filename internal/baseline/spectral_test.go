package baseline

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpectralValidation(t *testing.T) {
	if _, err := NewSpectralBF(0, 4, SpectralBasic); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewSpectralBF(100, 0, SpectralBasic); err == nil {
		t.Error("accepted k=0")
	}
}

func TestSpectralNeverUnderestimates(t *testing.T) {
	// Basic and min-increase have strictly one-sided error. The
	// recurring-minimum variant is tested separately: a secondary-array
	// false positive can under-report (the Cohen–Matias caveat).
	for _, mode := range []SpectralMode{SpectralBasic, SpectralMinIncrease} {
		f, err := NewSpectralBF(60000, 8, mode, WithCounterWidth(8))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(mode)))
		elems := genElements(2000, 1)
		truth := make([]int, len(elems))
		for i, e := range elems {
			truth[i] = rng.Intn(20) + 1
			for j := 0; j < truth[i]; j++ {
				f.Insert(e)
			}
		}
		for i, e := range elems {
			if got := f.Count(e); got < uint64(truth[i]) {
				t.Fatalf("mode %d: estimate %d < truth %d", mode, got, truth[i])
			}
		}
	}
}

func TestSpectralMinIncreaseMoreAccurate(t *testing.T) {
	// The second variant exists because it reduces overestimation; under
	// load it must be at least as accurate as the basic variant.
	const m, k, n = 8000, 6, 3000
	basic, err := NewSpectralBF(m, k, SpectralBasic, WithCounterWidth(16), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	mi, err := NewSpectralBF(m, k, SpectralMinIncrease, WithCounterWidth(16), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	elems := genElements(n, 3)
	truth := make([]int, n)
	for i, e := range elems {
		truth[i] = rng.Intn(5) + 1
		for j := 0; j < truth[i]; j++ {
			basic.Insert(e)
			mi.Insert(e)
		}
	}
	var errBasic, errMI uint64
	for i, e := range elems {
		errBasic += basic.Count(e) - uint64(truth[i])
		errMI += mi.Count(e) - uint64(truth[i])
	}
	if errMI > errBasic {
		t.Fatalf("minimum-increase total error %d exceeds basic %d", errMI, errBasic)
	}
}

func TestSpectralBasicDelete(t *testing.T) {
	f, err := NewSpectralBF(10000, 6, SpectralBasic, WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("flow")
	for i := 0; i < 5; i++ {
		f.Insert(e)
	}
	for i := 0; i < 5; i++ {
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Count(e); got != 0 {
		t.Fatalf("Count = %d after matched deletes, want 0", got)
	}
	if err := f.Delete(e); err == nil {
		t.Fatal("over-delete accepted")
	}
}

func TestSpectralMinIncreaseNoDelete(t *testing.T) {
	for _, mode := range []SpectralMode{SpectralMinIncrease, SpectralRecurringMin} {
		f, err := NewSpectralBF(1000, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		f.Insert([]byte("x"))
		if err := f.Delete([]byte("x")); err == nil {
			t.Fatalf("mode %d must reject deletes (Section 2.3)", mode)
		}
	}
}

func TestSpectralRecurringMinMoreAccurateThanBasic(t *testing.T) {
	// The third variant exists to repair single-minimum errors. At a
	// moderate load (where the secondary stays sparse, the regime Cohen
	// & Matias designed it for) its total error must not exceed the
	// basic variant's.
	const m, k, n = 20000, 4, 3000
	basic, err := NewSpectralBF(m, k, SpectralBasic, WithCounterWidth(16), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewSpectralBF(m, k, SpectralRecurringMin, WithCounterWidth(16), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	elems := genElements(n, 13)
	truth := make([]int, n)
	for i, e := range elems {
		truth[i] = rng.Intn(6) + 1
		for j := 0; j < truth[i]; j++ {
			basic.Insert(e)
			rm.Insert(e)
		}
	}
	var errBasic, errRM float64
	under := 0
	for i, e := range elems {
		gotB, gotRM := float64(basic.Count(e)), float64(rm.Count(e))
		tr := float64(truth[i])
		if gotB < tr {
			t.Fatal("basic variant underestimated")
		}
		if gotRM < tr {
			under++ // possible for RM: secondary-array false positive
		}
		errBasic += gotB - tr
		errRM += math.Abs(gotRM - tr)
	}
	if errRM > errBasic {
		t.Fatalf("recurring-min total error %.0f exceeds basic %.0f", errRM, errBasic)
	}
	// Underestimates exist but must be rare.
	if float64(under) > 0.01*float64(n) {
		t.Fatalf("recurring-min underestimated %d/%d elements", under, n)
	}
	t.Logf("total error: basic %.0f, recurring-min %.0f (%d underestimates)", errBasic, errRM, under)
}

func TestSpectralRecurringMinSecondarySized(t *testing.T) {
	f, err := NewSpectralBF(1000, 4, SpectralRecurringMin, WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	if f.secondary == nil || f.secondary.M() != 500 {
		t.Fatal("secondary array missing or mis-sized")
	}
	// SizeBytes must include the secondary.
	plain, _ := NewSpectralBF(1000, 4, SpectralBasic, WithCounterWidth(8))
	if f.SizeBytes() <= plain.SizeBytes() {
		t.Fatal("SizeBytes ignores the secondary array")
	}
}

func TestSpectralAccessors(t *testing.T) {
	f, err := NewSpectralBF(512, 4, SpectralMinIncrease, WithCounterWidth(6))
	if err != nil {
		t.Fatal(err)
	}
	if f.M() != 512 || f.K() != 4 || f.Mode() != SpectralMinIncrease {
		t.Fatalf("accessors: M=%d K=%d mode=%d", f.M(), f.K(), f.Mode())
	}
	// 512 six-bit counters = 3072 bits = 48 words = 384 bytes.
	if got := f.SizeBytes(); got != 384 {
		t.Fatalf("SizeBytes = %d, want 384", got)
	}
}

func TestCMSketchValidation(t *testing.T) {
	if _, err := NewCMSketch(0, 10); err == nil {
		t.Error("accepted d=0")
	}
	if _, err := NewCMSketch(4, 0); err == nil {
		t.Error("accepted r=0")
	}
}

func TestCMSketchNeverUnderestimates(t *testing.T) {
	s, err := NewCMSketch(8, 4096, WithCounterWidth(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	elems := genElements(2000, 5)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(20) + 1
		for j := 0; j < truth[i]; j++ {
			s.Insert(e)
		}
	}
	for i, e := range elems {
		if got := s.Count(e); got < uint64(truth[i]) {
			t.Fatalf("estimate %d < truth %d", got, truth[i])
		}
	}
}

func TestCMSketchExactWhenSparse(t *testing.T) {
	s, err := NewCMSketch(4, 1<<16, WithCounterWidth(32))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("one flow")
	for i := 0; i < 9; i++ {
		s.Insert(e)
	}
	if got := s.Count(e); got != 9 {
		t.Fatalf("sparse estimate %d, want 9", got)
	}
	if got := s.Count([]byte("absent")); got != 0 {
		t.Fatalf("absent estimate %d, want 0", got)
	}
	if s.D() != 4 || s.R() != 1<<16 || s.HashOpsPerOp() != 4 {
		t.Fatal("accessors wrong")
	}
}

func BenchmarkSpectralCount(b *testing.B) {
	f, _ := NewSpectralBF(1<<18, 8, SpectralBasic, WithCounterWidth(6))
	elems := genElements(4096, 1)
	for _, e := range elems {
		f.Insert(e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Count(elems[i&4095])
	}
}

func BenchmarkCMSketchCount(b *testing.B) {
	s, _ := NewCMSketch(8, 1<<15, WithCounterWidth(6))
	elems := genElements(4096, 1)
	for _, e := range elems {
		s.Insert(e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Count(elems[i&4095])
	}
}
