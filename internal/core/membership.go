package core

import (
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
)

// Membership is ShBF_M, the shifting Bloom filter for membership queries
// (paper Section 3).
//
// Construction (Section 3.1): for each element e, compute k/2 base
// positions h_1(e)%m … h_{k/2}(e)%m and one offset
// o(e) = h_{k/2+1}(e) % (w̄−1) + 1 ∈ [1, w̄−1], then set both B[h_i(e)%m]
// and B[h_i(e)%m + o(e)]. The filter stores k bits per element like a
// standard k-function Bloom filter but computes only k/2+1 hash
// functions.
//
// Query (Section 3.2): read the pair (B[h_i%m], B[h_i%m+o]) with one
// memory access per i and report membership iff every pair is (1,1),
// terminating early at the first miss — at most k/2 accesses versus the
// standard filter's k.
type Membership struct {
	bits    *bitvec.Vector
	m       int    // base array size; slack of w̄−1 bits follows
	k       int    // total bit positions per element (even)
	half    int    // k/2 base hash functions
	wbar    int    // maximum offset value w̄
	winMask uint64 // precomputed w̄-bit window mask for the uncounted read
	fam     *hashing.Family
	seed    uint64 // construction seed (retained for serialization)
	n       int    // elements added

	// dscratch is the batch paths' digest buffer (see batch.go); kept
	// on the filter — which is single-goroutine by contract — so
	// steady-state batches are allocation-free.
	dscratch []hashing.Digest
}

// NewMembership returns an empty ShBF_M with an m-bit base array and k
// bit positions per element. k must be even and at least 2 (the paper
// assumes k even "for simplicity", splitting it into k/2 hash pairs).
// The array is extended by w̄−1 slack bits so shifted positions never
// wrap (Section 1.2: "we extend the number of bits in ShBF to m+c").
func NewMembership(m, k int, opts ...Option) (*Membership, error) {
	cfg, err := buildConfig(KindMembership, opts)
	if err != nil {
		return nil, err
	}
	return newMembership(m, k, cfg)
}

// newMembership builds from a resolved config (shared with the
// counting wrapper, which validates options against its own kind).
func newMembership(m, k int, cfg config) (*Membership, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("core: k = %d must be even and ≥ 2", k)
	}
	if cfg.maxOffset < 2 || cfg.maxOffset > 64 {
		return nil, fmt.Errorf("core: max offset w̄ = %d out of range [2,64]", cfg.maxOffset)
	}
	f := &Membership{
		bits:    bitvec.New(m + cfg.maxOffset - 1),
		m:       m,
		k:       k,
		half:    k / 2,
		wbar:    cfg.maxOffset,
		winMask: ^uint64(0) >> (64 - uint(cfg.maxOffset)),
		fam:     hashing.NewFamily(k/2+1, cfg.seed),
		seed:    cfg.seed,
	}
	f.bits.SetCounter(cfg.counter)
	return f, nil
}

// M returns the base array size in bits (excluding offset slack).
func (f *Membership) M() int { return f.m }

// K returns the number of bit positions per element.
func (f *Membership) K() int { return f.k }

// MaxOffset returns w̄.
func (f *Membership) MaxOffset() int { return f.wbar }

// N returns the number of elements added.
func (f *Membership) N() int { return f.n }

// SizeBytes returns the filter's bit-array footprint.
func (f *Membership) SizeBytes() int { return f.bits.SizeBytes() }

// FillRatio returns the fraction of set bits (the empirical 1−p′ of
// Equation 2).
func (f *Membership) FillRatio() float64 { return f.bits.FillRatio() }

// HashOpsPerAdd returns the number of hash computations per insertion:
// k/2 + 1 (Section 3.1).
func (f *Membership) HashOpsPerAdd() int { return f.half + 1 }

// offsetDigest computes o(e) = h_{k/2+1}(e) % (w̄−1) + 1 ∈ [1, w̄−1]
// from e's digest. The offset is never 0: a zero offset would collapse
// the pair to a single bit (Section 3.1).
func (f *Membership) offsetDigest(d hashing.Digest) int {
	return hashing.Reduce(f.fam.FromDigest(f.half, d), f.wbar-1) + 1
}

// Add inserts e: one digest pass, then k/2+1 mixes setting k bits.
func (f *Membership) Add(e []byte) {
	f.AddDigest(f.fam.Digest(e))
}

// AddDigest inserts the element whose digest is d. Batch and sharded
// paths that already digested the key call this to avoid re-scanning
// it; d must be the element's hashing.KeyDigest.
func (f *Membership) AddDigest(d hashing.Digest) {
	o := f.offsetDigest(d)
	for i := 0; i < f.half; i++ {
		base := f.fam.ModFromDigest(i, d, f.m)
		f.bits.Set(base)
		f.bits.Set(base + o)
	}
	f.n++
}

// Contains reports whether e may be in the set (no false negatives;
// false positives at the Equation 1 rate). One digest pass over the
// key, then per probe one integer mix and one w̄-bit window read (one
// memory access); the scan stops at the first failed pair, so a
// negative rejected by its first window costs one access, matching
// the standard filter's early-exit cost. (Under multi-pass hashing
// the offset hash was computed lazily to keep rejections cheap; as a
// single integer mix it is now cheaper than the branch that deferred
// it, so the pair mask is built up front.)
func (f *Membership) Contains(e []byte) bool {
	// Fused form of ContainsDigest(f.fam.Digest(e)): digest and probe
	// loop share one frame, sparing the scalar hot path a call and a
	// digest round-trip through the ABI. Keep in lockstep with
	// ContainsDigest below.
	d := hashing.KeyDigest(e)
	pairMask := uint64(1) | uint64(1)<<uint(f.offsetDigest(d))
	if f.bits.Counter() != nil {
		return f.containsDigestCounted(d, pairMask)
	}
	fam, bits, m, winMask := f.fam, f.bits, f.m, f.winMask
	for i, half := 0, f.half; i < half; i++ {
		base := fam.ModFromDigest(i, d, m)
		if bits.WindowUncounted(base, winMask)&pairMask != pairMask {
			return false
		}
	}
	return true
}

// ContainsDigest answers Contains for the element whose digest is d.
// Two loops, one semantics: the common counters-off case probes with
// the inlinable uncounted window read; when an access counter is
// attached (the experiments reproducing the paper's access figures)
// the counted Window keeps the Section 3.1 accounting exact. Keep the
// loop bodies in lockstep when changing either.
func (f *Membership) ContainsDigest(d hashing.Digest) bool {
	pairMask := uint64(1) | uint64(1)<<uint(f.offsetDigest(d))
	if f.bits.Counter() != nil {
		return f.containsDigestCounted(d, pairMask)
	}
	// Hoisted locals keep the probe loop's operands in registers; the
	// body is then one mix, one reduction, one two-word read per probe.
	fam, bits, m, winMask := f.fam, f.bits, f.m, f.winMask
	for i, half := 0, f.half; i < half; i++ {
		base := fam.ModFromDigest(i, d, m)
		if bits.WindowUncounted(base, winMask)&pairMask != pairMask {
			return false
		}
	}
	return true
}

func (f *Membership) containsDigestCounted(d hashing.Digest, pairMask uint64) bool {
	for i := 0; i < f.half; i++ {
		base := f.fam.ModFromDigest(i, d, f.m)
		if f.bits.Window(base, f.wbar)&pairMask != pairMask {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Membership) Reset() {
	f.bits.Reset()
	f.n = 0
}

// positions appends the k absolute bit positions encoding e — base and
// shifted interleaved: base_1, base_1+o, base_2, base_2+o, … — used by
// the counting variant to keep B and C synchronized.
func (f *Membership) positions(e []byte, dst []int) []int {
	return f.positionsDigest(f.fam.Digest(e), dst)
}

// positionsDigest is positions for an already digested element.
func (f *Membership) positionsDigest(d hashing.Digest, dst []int) []int {
	dst = dst[:0]
	o := f.offsetDigest(d)
	for i := 0; i < f.half; i++ {
		base := f.fam.ModFromDigest(i, d, f.m)
		dst = append(dst, base, base+o)
	}
	return dst
}

// BitWords returns the filter's backing bit-array words (data words
// plus the trailing guard word) for read-only consumers — the frozen
// encoder serializes them verbatim. The slice aliases live storage;
// mutating it breaks the filter.
func (f *Membership) BitWords() []uint64 { return f.bits.Words() }

// setBit and clearBit expose single-bit maintenance to the counting
// variant without charging query-model accesses twice.
func (f *Membership) setBit(pos int)   { f.bits.Set(pos) }
func (f *Membership) clearBit(pos int) { f.bits.Clear(pos) }

// totalBits returns the full array length m + w̄ − 1.
func (f *Membership) totalBits() int { return f.bits.Len() }
