package main

// ingest.go implements the -ingest mode: the streaming-ingest-tier
// benchmark comparing the two ShBU flush strategies (internal/ingest)
// against an in-process daemon over real loopback UDP — direct packed
// add-batches (O(keys) on the wire) versus cumulative envelope flush
// (O(filter bits) per flush, however many keys arrived) — at three
// flush intervals, i.e. keys accumulated between flushes. Results go
// to a machine-readable JSON file (BENCH_PR10.json by default).
//
// Methodology: every (mode, interval) case is measured with
// testing.Benchmark and the suite is run ingestRuns times with the two
// modes adjacent within each pass, keeping the minimum per case — the
// interleaved min-of-N noise rule used by every serving benchmark in
// this repo. Throughput is sender-side (encode + UDP send; the
// transport is fire-and-forget, so the sender never waits), and the
// per-key wire cost is taken from the agents' own byte accounting,
// which is deterministic.
//
// The crossover is the point of the tier: below it, shipping keys is
// cheaper; above it, the envelope's fixed per-flush cost amortizes
// below the per-key batch cost. With -ingest-min-wire-ratio > 0, the
// run exits nonzero unless at the LARGEST interval the direct path
// costs at least that many times more wire bytes per key than the
// envelope path — CI's proof that pre-aggregation keeps its reason to
// exist (the ISSUE-10 gate is 5×).

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"shbf"
	"shbf/internal/flowkeys"
	"shbf/internal/ingest"
	"shbf/internal/server"
)

// ingestRuns is the interleaved repetition count (min per case wins).
const ingestRuns = 3

// ingestIntervals are the keys-accumulated-between-flushes points.
var ingestIntervals = []int{1_000, 10_000, 100_000}

// ingestResult is one (mode, interval) measurement.
type ingestResult struct {
	Name            string  `json:"name"`
	Mode            string  `json:"mode"` // direct | envelope
	FlushKeys       int     `json:"flush_keys"`
	NsPerKey        float64 `json:"ns_per_key"`
	KeysPerSec      float64 `json:"keys_per_sec"`
	WireBytesPerKey float64 `json:"wire_bytes_per_key"`
	DatagramsPerOp  float64 `json:"datagrams_per_flush"`
	Iterations      int     `json:"iterations"`
}

// ingestComparison is the per-interval wire-cost rollup.
type ingestComparison struct {
	FlushKeys int `json:"flush_keys"`
	// WireRatio is direct ÷ envelope wire bytes per key (> 1 means the
	// envelope is cheaper per key at this interval).
	WireRatio float64 `json:"direct_vs_envelope_wire_bytes_per_key"`
}

// ingestReport is the BENCH_PR10.json document.
type ingestReport struct {
	Schema      string             `json:"schema"`
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	CPUs        int                `json:"cpus"`
	KeyBytes    int                `json:"key_bytes"`
	FilterBits  int                `json:"envelope_filter_bits"`
	Runs        int                `json:"runs"`
	Note        string             `json:"note"`
	Results     []ingestResult     `json:"results"`
	Comparisons []ingestComparison `json:"comparisons"`
}

// ingestFilterBits sizes the envelope-mode local filter (and the
// daemon's membership filter): 1 Mibit ≈ shbf.PlanMembership's answer
// for the largest flush interval (100k keys) at 1% FPR — the sizing
// rule of thumb OPERATIONS.md §14 gives for edge agents. An oversized
// filter would silently tax every envelope flush with the unused bits.
const ingestFilterBits = 1 << 20

// runIngest measures the suite and writes the report; minWireRatio > 0
// additionally gates the largest interval's wire-cost ratio.
func runIngest(outPath, note string, minWireRatio float64) error {
	cfg := server.DefaultConfig()
	cfg.MembershipBits = ingestFilterBits
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pc.Close()
	go srv.ServeShBU(pc)

	dial := func() (net.Conn, error) { return net.Dial("udp", pc.LocalAddr().String()) }
	memSpec, _, _ := cfg.Specs()
	newAgent := func(mode ingest.Mode, source uint64) (*ingest.Agent, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		acfg := ingest.AgentConfig{
			Namespace: server.DefaultNamespace, Source: source, Mode: mode,
		}
		if mode == ingest.ModeEnvelope {
			f, err := shbf.New(memSpec)
			if err != nil {
				return nil, err
			}
			acfg.Filter = f
		}
		return ingest.NewAgent(conn, acfg)
	}

	// One deterministic key pool serves every case; re-adding the same
	// keys is idempotent load, exactly like the serving benchmarks.
	maxInterval := ingestIntervals[len(ingestIntervals)-1]
	_, pool := flowkeys.Keys(maxInterval)

	// Deterministic wire accounting, measured outside the timed runs:
	// one fresh agent per (mode, interval), one full flush, byte and
	// datagram counts from the agent's own stats.
	type wireCost struct {
		bytesPerKey float64
		datagrams   float64
	}
	wire := map[string]wireCost{}
	for _, interval := range ingestIntervals {
		for _, mode := range []ingest.Mode{ingest.ModeKeys, ingest.ModeEnvelope} {
			a, err := newAgent(mode, uint64(1000+interval+int(mode)))
			if err != nil {
				return err
			}
			if err := a.AddAll(pool[:interval]); err != nil {
				return err
			}
			if err := a.Flush(); err != nil {
				return err
			}
			st := a.Stats()
			wire[fmt.Sprintf("%s/%d", ingestModeName(mode), interval)] = wireCost{
				bytesPerKey: float64(st.BytesSent) / float64(interval),
				datagrams:   float64(st.DatagramsSent),
			}
		}
	}

	type benchCase struct {
		mode     string
		interval int
		body     func(b *testing.B)
	}
	var cases []benchCase
	var source uint64 = 1
	for _, interval := range ingestIntervals {
		interval := interval
		keys := pool[:interval]
		for _, mode := range []ingest.Mode{ingest.ModeKeys, ingest.ModeEnvelope} {
			mode := mode
			source++
			a, err := newAgent(mode, source)
			if err != nil {
				return err
			}
			cases = append(cases, benchCase{ingestModeName(mode), interval, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := a.AddAll(keys); err != nil {
						b.Fatal(err)
					}
					if err := a.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
	}

	// Interleaved min-of-N: whole-suite passes, the two modes adjacent
	// within each pass; keep each case's fastest run.
	best := make([]testing.BenchmarkResult, len(cases))
	for run := 0; run < ingestRuns; run++ {
		for i, c := range cases {
			r := testing.Benchmark(c.body)
			if run == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}

	report := ingestReport{
		Schema:      "shbf-ingest-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		KeyBytes:    flowkeys.KeyBytes,
		FilterBits:  ingestFilterBits,
		Runs:        ingestRuns,
		Note:        note,
	}
	for i, c := range cases {
		r := best[i]
		name := fmt.Sprintf("%s/%d", c.mode, c.interval)
		nsPerKey := float64(r.T.Nanoseconds()) / float64(r.N) / float64(c.interval)
		report.Results = append(report.Results, ingestResult{
			Name:            name,
			Mode:            c.mode,
			FlushKeys:       c.interval,
			NsPerKey:        nsPerKey,
			KeysPerSec:      1e9 / nsPerKey,
			WireBytesPerKey: wire[name].bytesPerKey,
			DatagramsPerOp:  wire[name].datagrams,
			Iterations:      r.N,
		})
	}
	for _, interval := range ingestIntervals {
		d := wire[fmt.Sprintf("direct/%d", interval)]
		e := wire[fmt.Sprintf("envelope/%d", interval)]
		report.Comparisons = append(report.Comparisons, ingestComparison{
			FlushKeys: interval,
			WireRatio: d.bytesPerKey / e.bytesPerKey,
		})
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("ingest bench → %s\n", outPath)
	for _, res := range report.Results {
		fmt.Printf("  %-18s %10.0f keys/s  %7.1f ns/key  %7.1f wire B/key  %6.0f datagrams/flush\n",
			res.Name, res.KeysPerSec, res.NsPerKey, res.WireBytesPerKey, res.DatagramsPerOp)
	}
	for _, cmp := range report.Comparisons {
		fmt.Printf("  wire cost direct/envelope @%-7d %.2f×\n", cmp.FlushKeys, cmp.WireRatio)
	}

	if minWireRatio > 0 {
		last := report.Comparisons[len(report.Comparisons)-1]
		if last.WireRatio < minWireRatio {
			return fmt.Errorf("envelope flush saves only %.2f× wire bytes/key at %d keys/flush, below the %.1f× gate",
				last.WireRatio, last.FlushKeys, minWireRatio)
		}
		fmt.Printf("gate: envelope wire saving @%d = %.2f× (≥ %.1f×) ok\n",
			last.FlushKeys, last.WireRatio, minWireRatio)
	}
	return nil
}

func ingestModeName(m ingest.Mode) string {
	if m == ingest.ModeEnvelope {
		return "envelope"
	}
	return "direct"
}
