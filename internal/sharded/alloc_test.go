//go:build !race

// (The race detector makes sync.Pool drop items on purpose and adds
// allocation of shadow state, so allocs/op is meaningless under -race.)

package sharded

// Zero-allocation guards for the sharded hot paths: scalar ops digest
// into registers and the batch paths reuse pooled plans (including
// their digest buffers), so steady state must not allocate. The first
// AllocsPerRun invocation is discarded, which is when the plan pool
// and dst buffers reach steady size.

import (
	"fmt"
	"testing"

	"shbf/internal/core"
)

func requireZeroAllocs(t *testing.T, name string, runs int, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func allocKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%08d!", i))
	}
	return keys
}

func TestFilterHotPathsAllocFree(t *testing.T) {
	f, err := New(1<<20, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(512)
	if err := f.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	dst := make([]bool, len(keys))
	i := 0
	requireZeroAllocs(t, "Filter.Add", 100, func() { f.Add(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Filter.Contains", 100, func() { f.Contains(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Filter.AddAll", 20, func() {
		if err := f.AddAll(keys); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "Filter.ContainsAll", 20, func() { dst = f.ContainsAll(dst, keys) })
}

func TestAssociationHotPathsAllocFree(t *testing.T) {
	a, err := NewAssociation(1<<20, 8, 8, core.WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(512)
	for _, e := range keys[:256] {
		if err := a.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]core.Region, len(keys))
	i := 0
	requireZeroAllocs(t, "Association.Query", 100, func() { a.Query(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Association.QueryAll", 20, func() { dst = a.QueryAll(dst, keys) })
}

func TestMultiplicityHotPathsAllocFree(t *testing.T) {
	f, err := NewMultiplicity(1<<20, 8, 57, 8, core.WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(512)
	if err := f.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	dst := make([]int, len(keys))
	i := 0
	requireZeroAllocs(t, "Multiplicity.Count", 100, func() { f.Count(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Multiplicity.CountAll", 20, func() { dst = f.CountAll(dst, keys) })
	// Insert/Delete churn on stored keys updates the backing tables in
	// place — allocation-free once every key is present.
	requireZeroAllocs(t, "Multiplicity.Insert/Delete", 100, func() {
		e := keys[i%len(keys)]
		i++
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
	})
	// AddAll on already-stored keys: c = 57 leaves headroom for the
	// 20+1 batch increments below.
	requireZeroAllocs(t, "Multiplicity.AddAll", 20, func() {
		if err := f.AddAll(keys); err != nil {
			t.Fatal(err)
		}
	})
}
