package shbf_test

// Differential soak tests: drive the counting filters with long random
// operation sequences and check every guarantee against an exact
// map-based oracle after each phase. These run the same update
// machinery as the unit tests but at a scale where rare interleavings
// (region migrations under churn, multiplicity moves at saturation
// boundaries, shared-counter traffic) actually occur.

import (
	"errors"
	"math/rand"
	"testing"

	"shbf"
)

func soakElements(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 13)
		rng.Read(b)
		b[0], b[1] = byte(i), byte(i>>8)
		out[i] = b
	}
	return out
}

func TestSoakCountingMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const ops = 200000
	f, err := shbf.NewCountingMembership(60000, 8, shbf.WithCounterWidth(8), shbf.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	elems := soakElements(2000, 1)
	oracle := make([]int, len(elems))
	rng := rand.New(rand.NewSource(2))

	for op := 0; op < ops; op++ {
		i := rng.Intn(len(elems))
		if rng.Intn(5) < 3 { // insert-biased churn
			if oracle[i] < 200 { // stay below 8-bit saturation
				if err := f.Insert(elems[i]); err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				oracle[i]++
			}
		} else if oracle[i] > 0 {
			if err := f.Delete(elems[i]); err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			oracle[i]--
		}
		// Periodic full sweep: no false negatives, ever.
		if op%50000 == 49999 {
			for j, e := range elems {
				if oracle[j] > 0 && !f.Contains(e) {
					t.Fatalf("op %d: false negative on element %d (count %d)", op, j, oracle[j])
				}
			}
		}
	}
	// Drain everything; the filter must return to empty.
	for i, e := range elems {
		for ; oracle[i] > 0; oracle[i]-- {
			if err := f.Delete(e); err != nil {
				t.Fatalf("drain delete: %v", err)
			}
		}
	}
	if f.Filter().FillRatio() != 0 {
		t.Fatal("filter not empty after drain")
	}
}

func TestSoakCountingMultiplicity(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const ops = 150000
	const c = 30
	f, err := shbf.NewCountingMultiplicity(80000, 6, c, shbf.WithCounterWidth(8), shbf.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	elems := soakElements(1500, 3)
	oracle := make([]int, len(elems))
	rng := rand.New(rand.NewSource(4))

	for op := 0; op < ops; op++ {
		i := rng.Intn(len(elems))
		if rng.Intn(2) == 0 {
			err := f.Insert(elems[i])
			switch {
			case oracle[i] >= c:
				if !errors.Is(err, shbf.ErrCountOverflow) {
					t.Fatalf("op %d: insert at cap: %v", op, err)
				}
			case err != nil:
				t.Fatalf("op %d: insert: %v", op, err)
			default:
				oracle[i]++
			}
		} else {
			err := f.Delete(elems[i])
			switch {
			case oracle[i] == 0:
				if !errors.Is(err, shbf.ErrNotStored) {
					t.Fatalf("op %d: delete at zero: %v", op, err)
				}
			case err != nil:
				t.Fatalf("op %d: delete: %v", op, err)
			default:
				oracle[i]--
			}
		}
		if op%50000 == 49999 {
			for j, e := range elems {
				if got := f.ExactCount(e); got != oracle[j] {
					t.Fatalf("op %d: exact count %d vs oracle %d", op, got, oracle[j])
				}
				if oracle[j] > 0 && f.Count(e) < oracle[j] {
					t.Fatalf("op %d: B-count %d underestimates %d", op, f.Count(e), oracle[j])
				}
			}
		}
	}
}

func TestSoakCountingAssociation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const ops = 100000
	a, err := shbf.NewCountingAssociation(60000, 8, shbf.WithCounterWidth(8), shbf.WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	elems := soakElements(1500, 5)
	in1 := make([]bool, len(elems))
	in2 := make([]bool, len(elems))
	rng := rand.New(rand.NewSource(6))

	for op := 0; op < ops; op++ {
		i := rng.Intn(len(elems))
		switch rng.Intn(4) {
		case 0:
			if err := a.InsertS1(elems[i]); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			in1[i] = true
		case 1:
			if err := a.InsertS2(elems[i]); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			in2[i] = true
		case 2:
			if in1[i] {
				if err := a.DeleteS1(elems[i]); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				in1[i] = false
			}
		default:
			if in2[i] {
				if err := a.DeleteS2(elems[i]); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				in2[i] = false
			}
		}
		if op%25000 == 24999 {
			for j, e := range elems {
				r := a.Query(e)
				switch {
				case in1[j] && in2[j]:
					if !r.Contains(shbf.RegionBoth) {
						t.Fatalf("op %d: element %d lost S1∩S2", op, j)
					}
				case in1[j]:
					if !r.Contains(shbf.RegionS1Only) {
						t.Fatalf("op %d: element %d lost S1−S2", op, j)
					}
				case in2[j]:
					if !r.Contains(shbf.RegionS2Only) {
						t.Fatalf("op %d: element %d lost S2−S1", op, j)
					}
				}
			}
		}
	}
	if a.N1() < 0 || a.N2() < 0 {
		t.Fatal("negative set sizes")
	}
}
