package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shbf/internal/memmodel"
)

func TestSetBitClear(t *testing.T) {
	v := New(200)
	if v.Peek(63) || v.Peek(64) {
		t.Fatal("fresh vector has set bits")
	}
	v.Set(63)
	v.Set(64)
	v.Set(199)
	for _, i := range []int{63, 64, 199} {
		if !v.Peek(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.OnesCount(); got != 3 {
		t.Fatalf("OnesCount = %d, want 3", got)
	}
	v.Clear(64)
	if v.Peek(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := v.OnesCount(); got != 2 {
		t.Fatalf("OnesCount = %d, want 2", got)
	}
}

func TestBoundsPanics(t *testing.T) {
	v := New(100)
	for name, f := range map[string]func(){
		"Set(-1)":       func() { v.Set(-1) },
		"Set(100)":      func() { v.Set(100) },
		"Bit(100)":      func() { v.Bit(100) },
		"Clear(-1)":     func() { v.Clear(-1) },
		"Window(90,20)": func() { v.Window(90, 20) },
		"Window(0,0)":   func() { v.Window(0, 0) },
		"Window(0,65)":  func() { v.Window(0, 65) },
		"Window(-1,4)":  func() { v.Window(-1, 4) },
		"New(0)":        func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWindowMatchesNaiveBits(t *testing.T) {
	// Property: Window(pos, width) bit j == Peek(pos+j).
	const n = 1024
	v := New(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n/3; i++ {
		v.Set(rng.Intn(n))
	}
	f := func(pos uint16, width uint8) bool {
		w := int(width)%64 + 1
		p := int(pos) % (n - w)
		win := v.Window(p, w)
		for j := 0; j < w; j++ {
			if (win>>uint(j))&1 == 1 != v.Peek(p+j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWindowCrossesWordBoundary(t *testing.T) {
	v := New(256)
	v.Set(60)
	v.Set(63)
	v.Set(64)
	v.Set(70)
	win := v.Window(60, 16)
	want := uint64(1)<<0 | 1<<3 | 1<<4 | 1<<10
	if win != want {
		t.Fatalf("Window(60,16) = %b, want %b", win, want)
	}
}

func TestWindowFullWord(t *testing.T) {
	v := New(128)
	for i := 0; i < 64; i += 2 {
		v.Set(i)
	}
	if got := v.Window(0, 64); got != 0x5555555555555555 {
		t.Fatalf("Window(0,64) = %x", got)
	}
	// Unaligned full-word window.
	if got := v.Window(1, 64); got != 0x2aaaaaaaaaaaaaaa>>1|0<<63 {
		// bits 1..64: pattern shifted; bit 64 of vector is 0.
		want := uint64(0x5555555555555555) >> 1
		if got != want {
			t.Fatalf("Window(1,64) = %x, want %x", got, want)
		}
	}
}

func TestAccessAccounting(t *testing.T) {
	var c memmodel.Counter
	v := New(1000)
	v.SetCounter(&c)
	if v.Counter() != &c {
		t.Fatal("Counter() did not return attached counter")
	}

	v.Set(10) // 1 write
	v.Bit(10) // 1 read
	if c.Writes() != 1 || c.Reads() != 1 {
		t.Fatalf("after Set+Bit: %v", &c)
	}

	c.Reset()
	v.Window(3, 57) // paper's w̄ window: exactly 1 access
	if c.Reads() != 1 {
		t.Fatalf("w̄ window cost %d reads, want 1", c.Reads())
	}

	c.Reset()
	v.Window(1, 64) // byte span 9 bytes → 2 accesses
	if c.Reads() != 2 {
		t.Fatalf("unaligned 64-bit window cost %d reads, want 2", c.Reads())
	}

	// Peek and instrumentation never charge.
	c.Reset()
	v.Peek(10)
	v.OnesCount()
	v.FillRatio()
	if c.Total() != 0 {
		t.Fatalf("instrumentation charged %d accesses", c.Total())
	}
}

func TestNilCounterSafe(t *testing.T) {
	v := New(64)
	v.Set(1)
	v.Bit(1)
	v.Window(0, 10) // must not panic with no counter attached
}

func TestFillRatioAndReset(t *testing.T) {
	v := New(100)
	for i := 0; i < 50; i++ {
		v.Set(i)
	}
	if got := v.FillRatio(); got != 0.5 {
		t.Fatalf("FillRatio = %v, want 0.5", got)
	}
	v.Reset()
	if v.OnesCount() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestCloneAndEqual(t *testing.T) {
	v := New(130)
	v.Set(0)
	v.Set(129)
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone not equal to original")
	}
	w.Set(5)
	if v.Equal(w) {
		t.Fatal("mutating clone affected equality unexpectedly")
	}
	if v.Peek(5) {
		t.Fatal("clone shares storage with original")
	}
	if v.Equal(New(131)) {
		t.Fatal("vectors of different length compared equal")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(64).SizeBytes(); got != 8 {
		t.Errorf("SizeBytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).SizeBytes(); got != 16 {
		t.Errorf("SizeBytes(65 bits) = %d, want 16", got)
	}
}

func TestSetClearRoundTripProperty(t *testing.T) {
	v := New(512)
	f := func(idx []uint16) bool {
		v.Reset()
		seen := map[int]bool{}
		for _, i := range idx {
			p := int(i) % 512
			v.Set(p)
			seen[p] = true
		}
		for p := range seen {
			if !v.Peek(p) {
				return false
			}
			v.Clear(p)
		}
		return v.OnesCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWindow57(b *testing.B) {
	v := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Window((i*2654435761)%(1<<20-57), 57)
	}
}

func BenchmarkBit(b *testing.B) {
	v := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Bit((i * 2654435761) % (1 << 20))
	}
}
