//go:build !race

// (The race detector makes sync.Pool drop items on purpose and adds
// allocation of shadow state, so allocs/op is meaningless under -race.)

package window

// Zero-allocation guards for the window hot paths: the ring fan-out is
// a bounded loop over pre-built generations, the batch paths digest
// into window-owned scratch, and the membership ring recycles retired
// generations in place — so query/write steady state must not
// allocate, and neither must a membership rotation. (The counting
// rings rebuild one generation per rotation by design — rotation is
// cold-path — and their inserts of NEW keys allocate in the backing
// table, so like internal/core's guards they are exercised on
// already-stored keys.)

import (
	"fmt"
	"testing"

	"shbf/internal/core"
)

func requireZeroAllocs(t *testing.T, name string, runs int, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func allocKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%08d!", i))
	}
	return keys
}

func TestMembershipWindowHotPathsAllocFree(t *testing.T) {
	w, err := NewMembership(core.Spec{Kind: core.KindWindowMembership, M: 1 << 18, K: 8,
		Generations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(256)
	if err := w.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil { // answers span two generations
		t.Fatal(err)
	}
	if err := w.AddAll(keys[:128]); err != nil {
		t.Fatal(err)
	}
	dst := make([]bool, len(keys))
	i := 0
	requireZeroAllocs(t, "window.Membership.Add", 100, func() { w.Add(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "window.Membership.Contains", 100, func() { w.Contains(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "window.Membership.AddAll", 20, func() {
		if err := w.AddAll(keys); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "window.Membership.ContainsAll", 20, func() { dst = w.ContainsAll(dst, keys) })
	// The membership ring clears retired generations in place, so even
	// rotation is allocation-free.
	requireZeroAllocs(t, "window.Membership.Rotate", 20, func() {
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMultiplicityWindowQueryPathsAllocFree(t *testing.T) {
	w, err := NewMultiplicity(core.Spec{Kind: core.KindWindowMultiplicity, M: 1 << 19, K: 8,
		C: 57, Generations: 4, Seed: 1, CounterWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(128)
	if err := w.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	dst := make([]int, len(keys))
	i := 0
	requireZeroAllocs(t, "window.Multiplicity.Count", 100, func() { w.Count(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "window.Multiplicity.CountAll", 20, func() { dst = w.CountAll(dst, keys) })
	// Insert/Delete pairs on already-stored keys keep head counts
	// bounded across runs; the backing table holds the key already.
	requireZeroAllocs(t, "window.Multiplicity.Insert/Delete", 100, func() {
		e := keys[i%len(keys)]
		i++
		if err := w.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := w.Delete(e); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAssociationWindowQueryPathsAllocFree(t *testing.T) {
	w, err := NewAssociation(core.Spec{Kind: core.KindWindowAssociation, M: 1 << 18, K: 8,
		Generations: 4, Seed: 1, CounterWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(256)
	for _, e := range keys[:128] {
		if err := w.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range keys[64:192] {
		if err := w.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]core.Region, len(keys))
	i := 0
	requireZeroAllocs(t, "window.Association.Query", 100, func() { w.Query(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "window.Association.QueryAll", 20, func() { dst = w.QueryAll(dst, keys) })
}
