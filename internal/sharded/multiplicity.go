package sharded

import (
	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Multiplicity is a concurrency-safe sharded CShBF_X: one logical
// multi-set multiplicity filter whose bit budget is split across routed
// shards, each an independent updatable core.CountingMultiplicity.
// Counts keep the paper's one-sided guarantee — reported multiplicities
// never underestimate (in the default no-false-negative mode).
type Multiplicity struct {
	set set[*core.CountingMultiplicity]
}

// MultiplicityShardStat reports one multiplicity shard's occupancy.
type MultiplicityShardStat struct {
	// Bits is the shard filter's base array size m.
	Bits int
	// K is the bit positions per element.
	K int
	// C is the maximum multiplicity.
	C int
	// N is the number of distinct elements routed to this shard (-1 in
	// the unsafe update mode, which tracks no exact set).
	N int
	// FillRatio is the fraction of set bits.
	FillRatio float64
}

// NewMultiplicity returns an updatable multiplicity filter for counts
// in [1, c], with totalBits split across shardCount shards (rounded up
// to a power of two). Options are forwarded to each shard's
// constructor; shards receive distinct derived seeds.
func NewMultiplicity(totalBits, k, c, shardCount int, opts ...core.Option) (*Multiplicity, error) {
	if err := core.CheckOptions(core.KindShardedMultiplicity, opts...); err != nil {
		return nil, err
	}
	pow, perShard, err := roundPow2(totalBits, shardCount)
	if err != nil {
		return nil, err
	}
	base := core.ResolveSeed(opts...)
	s, err := newSet(pow, func(i int) (*core.CountingMultiplicity, error) {
		return core.NewCountingMultiplicity(perShard, k, c, append(opts, core.WithSeed(shardSeed(base, i)))...)
	})
	if err != nil {
		return nil, err
	}
	return &Multiplicity{set: s}, nil
}

// Shards returns the number of shards.
func (f *Multiplicity) Shards() int { return f.set.size() }

// C returns the maximum multiplicity.
func (f *Multiplicity) C() int { return f.set.shards[0].f.C() }

// Insert increments e's multiplicity, digesting the key once for
// routing and encoding. It returns ErrCountOverflow when the
// multiplicity would exceed c and ErrCounterSaturated when a counter
// would overflow; in both cases the filter is unchanged. Safe for
// concurrent use.
func (f *Multiplicity) Insert(e []byte) error {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	err := s.f.InsertDigest(e, d)
	s.mu.Unlock()
	return err
}

// Delete decrements e's multiplicity; ErrNotStored if e is not stored.
// Safe for concurrent use.
func (f *Multiplicity) Delete(e []byte) error {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	err := s.f.DeleteDigest(e, d)
	s.mu.Unlock()
	return err
}

// Count returns e's queried multiplicity (0 for definite non-members;
// never an underestimate in the default mode) with a single hash pass.
// Safe for concurrent use; readers do not block each other.
func (f *Multiplicity) Count(e []byte) int {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.RLock()
	c := s.f.CountDigest(d)
	s.mu.RUnlock()
	return c
}

// AddAll increments every key's multiplicity by one, grouping keys by
// shard so each shard's write lock is taken once per batch; each key
// is digested once for both routing and encoding. On the first failed
// insert the batch stops: keys already applied stay applied, and the
// error reports the failing key's batch index. Safe for concurrent
// use.
func (f *Multiplicity) AddAll(keys [][]byte) error {
	return batchWrite(&f.set, keys, (*core.CountingMultiplicity).InsertDigest)
}

// CountAll queries a whole batch, grouping keys by shard so each
// shard's read lock is taken once per batch instead of once per key;
// each key is digested once for both routing and probing. Counts are
// written into dst (resized to len(keys)) at the keys' original
// positions. Safe for concurrent use.
func (f *Multiplicity) CountAll(dst []int, keys [][]byte) []int {
	return batchRead(&f.set, dst, keys, func(c *core.CountingMultiplicity, _ []byte, d hashing.Digest) int {
		return c.CountDigest(d)
	})
}

// Kind returns core.KindShardedMultiplicity.
func (f *Multiplicity) Kind() core.Kind { return core.KindShardedMultiplicity }

// Spec returns the construction geometry (see Filter.Spec for the base
// seed recovery).
func (f *Multiplicity) Spec() core.Spec {
	inner := f.set.shards[0].f.Spec()
	return core.Spec{
		Kind:          core.KindShardedMultiplicity,
		M:             inner.M * f.set.size(),
		K:             inner.K,
		C:             inner.C,
		CounterWidth:  inner.CounterWidth,
		UnsafeUpdates: inner.UnsafeUpdates,
		Shards:        f.set.size(),
		Seed:          inner.Seed - 1,
	}
}

// Stats returns the aggregate occupancy snapshot.
func (f *Multiplicity) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindShardedMultiplicity,
		N:         f.N(),
		SizeBytes: f.SizeBytes(),
		FillRatio: f.FillRatio(),
		Shards:    f.set.size(),
	}
}

// N returns the total number of distinct stored elements across shards,
// or -1 when the shards run in the unsafe update mode (no exact set is
// tracked).
func (f *Multiplicity) N() int {
	total := 0
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		n := s.f.N()
		s.mu.RUnlock()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// SizeBytes returns the combined footprint of the shard bit and counter
// arrays.
func (f *Multiplicity) SizeBytes() int {
	return f.set.sumLocked((*core.CountingMultiplicity).SizeBytes)
}

// FillRatio returns the mean query-array fill ratio across shards.
func (f *Multiplicity) FillRatio() float64 {
	return f.set.meanLocked((*core.CountingMultiplicity).FillRatio)
}

// ShardStats returns a per-shard occupancy snapshot.
func (f *Multiplicity) ShardStats() []MultiplicityShardStat {
	out := make([]MultiplicityShardStat, f.set.size())
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		out[i] = MultiplicityShardStat{
			Bits:      s.f.M(),
			K:         s.f.K(),
			C:         s.f.C(),
			N:         s.f.N(),
			FillRatio: s.f.FillRatio(),
		}
		s.mu.RUnlock()
	}
	return out
}

// MarshalBinary implements encoding.BinaryMarshaler (see
// Filter.MarshalBinary for consistency semantics).
func (f *Multiplicity) MarshalBinary() ([]byte, error) {
	return appendSnapshot(nil, shardKindMultiplicity, &f.set)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// state with the decoded filter.
func (f *Multiplicity) UnmarshalBinary(data []byte) error {
	s, err := decodeSnapshot[core.CountingMultiplicity](data, shardKindMultiplicity)
	if err != nil {
		return err
	}
	f.set = s
	return nil
}
