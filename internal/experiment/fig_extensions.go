package experiment

import (
	"fmt"
	"math"

	"shbf/internal/analytic"
	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/trace"
	"shbf/internal/workload"
)

// This file implements the ablation experiments DESIGN.md calls out
// beyond the paper's numbered figures: the Section 3.6 generalization,
// the Section 5.5 shifting count-min sketch, the Section 5.3.1 vs
// 5.3.2 update modes, and a membership-scheme zoo including the
// related-work filters of Section 2.1.

// RunGeneralAblation sweeps the t-shift generalization of Section 3.6:
// for fixed k = 12 and m/n, it reports theoretical (Equations 11–12)
// and measured FPR plus the hashing budget k/(t+1)+t for t ∈ {1,2,3,5}.
func RunGeneralAblation(cfg Config) []*Figure {
	const k = 12
	n := cfg.MultisetSize / 10
	if n < 500 {
		n = 500
	}
	m := int(float64(n) * k / math.Ln2 * 1.2)

	fig := &Figure{ID: "general", Title: fmt.Sprintf("t-shift generalization (k=%d, m=%d, n=%d)", k, m, n),
		XLabel: "t", YLabel: "FP rate"}
	ops := &Figure{ID: "general-ops", Title: "hash computations per op vs t",
		XLabel: "t", YLabel: "#hash ops"}

	for _, t := range []int{1, 2, 3, 5} {
		sim := Repeat(cfg.Trials, func(trial int) float64 {
			gen := trace.NewGenerator(cfg.Seed + int64(trial))
			f, err := core.NewTShift(m, k, t, core.WithSeed(uint64(cfg.Seed)+uint64(trial)))
			if err != nil {
				panic(err)
			}
			for _, e := range trace.Bytes(gen.Distinct(n)) {
				f.Add(e)
			}
			return measureFPR(f, workload.Negatives(gen, cfg.Probes))
		})
		fig.Add("t-shift sim", float64(t), sim)
		fig.Add("t-shift theory", float64(t), analytic.FPRTShift(m, n, k, t, core.DefaultMaxOffset))
		f, err := core.NewTShift(m, k, t)
		if err != nil {
			panic(err)
		}
		ops.Add("t-shift", float64(t), float64(f.HashOpsPerAdd()))
		ops.Add("BF", float64(t), k)
	}
	fig.Notes = append(fig.Notes, "larger t trades hash computations for FPR (paper Section 3.6)")
	return []*Figure{fig, ops}
}

// RunSCMAblation compares the shifting count-min sketch (Section 5.5)
// with the standard CM sketch at equal memory: mean absolute estimation
// error and throughput versus depth d.
func RunSCMAblation(cfg Config) []*Figure {
	errFig := &Figure{ID: "scm-err", Title: "SCM vs CM estimation error (equal memory)",
		XLabel: "d", YLabel: "mean absolute error"}
	speedFig := &Figure{ID: "scm-speed", Title: "SCM vs CM query speed",
		XLabel: "d", YLabel: "Mqps"}

	n := cfg.MultisetSize / 2
	if n < 1000 {
		n = 1000
	}
	for _, d := range []int{4, 8, 12, 16} {
		r := 4 * n / d // total counters fixed at 4n across depths
		if r < 4 {
			r = 4
		}
		type result struct{ errCM, errSCM, mqCM, mqSCM float64 }
		res := result{}
		for trial := 0; trial < cfg.Trials; trial++ {
			gen := trace.NewGenerator(cfg.Seed + int64(trial))
			flows := gen.Multiset(n, 1000, 1.5)
			seed := uint64(cfg.Seed) + uint64(trial)
			cm, err := baseline.NewCMSketch(d, r, baseline.WithSeed(seed), baseline.WithCounterWidth(32))
			if err != nil {
				panic(err)
			}
			// Equal memory (paper Figure 6(b)): the SCM sketch keeps d/2
			// physical rows of 2r counters, matching CM's d rows of r.
			scm, err := core.NewSCMSketch(d, 2*r, core.WithSeed(seed), core.WithCounterWidth(32))
			if err != nil {
				panic(err)
			}
			for _, fl := range flows {
				for i := 0; i < fl.Count; i++ {
					cm.Insert(fl.ID[:])
					scm.Insert(fl.ID[:])
				}
			}
			var errCM, errSCM float64
			queries := make([][]byte, len(flows))
			for i, fl := range flows {
				queries[i] = fl.ID[:]
				errCM += float64(cm.Count(fl.ID[:])) - float64(fl.Count)
				errSCM += float64(scm.Count(fl.ID[:])) - float64(fl.Count)
			}
			res.errCM += errCM / float64(n)
			res.errSCM += errSCM / float64(n)
			res.mqCM += MeasureMqps(queries, cfg.MinTiming, func(e []byte) { cm.Count(e) })
			res.mqSCM += MeasureMqps(queries, cfg.MinTiming, func(e []byte) { scm.Count(e) })
		}
		tf := float64(cfg.Trials)
		errFig.Add("CM sketch", float64(d), res.errCM/tf)
		errFig.Add("SCM sketch", float64(d), res.errSCM/tf)
		speedFig.Add("CM sketch", float64(d), res.mqCM/tf)
		speedFig.Add("SCM sketch", float64(d), res.mqSCM/tf)
	}
	errFig.Notes = append(errFig.Notes, "SCM halves hash ops and accesses at equal memory (paper Section 5.5)")
	return []*Figure{errFig, speedFig}
}

// RunUpdateAblation compares the two CShBF_X update modes of Section
// 5.3: false negatives produced under insert churn by the unsafe
// (query-B-first, 5.3.1) mode versus the hash-table-backed mode (5.3.2),
// as load grows.
func RunUpdateAblation(cfg Config) []*Figure {
	const k, c = 4, 10
	fig := &Figure{ID: "update-fn", Title: "CShBF_X false negatives vs load (k=4, c=10)",
		XLabel: "load (n/m × 1000)", YLabel: "false-negative rate"}

	base := cfg.MultisetSize / 20
	if base < 200 {
		base = 200
	}
	for _, loadPermille := range []int{50, 100, 200, 400} {
		nElems := base
		m := nElems * 1000 / loadPermille
		run := func(unsafeMode bool) float64 {
			return Repeat(cfg.Trials, func(trial int) float64 {
				opts := []core.Option{core.WithCounterWidth(8), core.WithSeed(uint64(cfg.Seed) + uint64(trial))}
				if unsafeMode {
					opts = append(opts, core.WithUnsafeUpdates())
				}
				f, err := core.NewCountingMultiplicity(m, k, c, opts...)
				if err != nil {
					panic(err)
				}
				gen := trace.NewGenerator(cfg.Seed + int64(trial))
				flows := gen.UniformMultiset(nElems, c)
				for _, fl := range flows {
					for i := 0; i < fl.Count; i++ {
						if err := f.Insert(fl.ID[:]); err != nil {
							break // overflow under churn: skip, as 5.3.1 would
						}
					}
				}
				fn := 0
				for _, fl := range flows {
					if f.Count(fl.ID[:]) < fl.Count {
						fn++
					}
				}
				return float64(fn) / float64(len(flows))
			})
		}
		fig.Add("unsafe (5.3.1)", float64(loadPermille), run(true))
		fig.Add("safe (5.3.2)", float64(loadPermille), run(false))
	}
	fig.Notes = append(fig.Notes, "the 5.3.2 hash-table-backed mode must stay at zero false negatives")
	return []*Figure{fig}
}

// RunMembershipZoo extends Figure 9 with the related-work filters of
// Section 2.1: Kirsch–Mitzenmacher double hashing and the cuckoo
// filter, at the paper's Figure 9(b) operating point.
func RunMembershipZoo(cfg Config) []*Figure {
	const m, n = 33024, 1000
	fprFig := &Figure{ID: "zoo-fpr", Title: "membership schemes: FPR (m=33024, n=1000)",
		XLabel: "k", YLabel: "FP rate"}
	speedFig := &Figure{ID: "zoo-speed", Title: "membership schemes: query speed",
		XLabel: "k", YLabel: "Mqps"}

	for k := 4; k <= 16; k += 4 {
		type candidate struct {
			name  string
			build func(seed uint64) (membershipFilter, error)
		}
		candidates := []candidate{
			{"BF", func(s uint64) (membershipFilter, error) { return baseline.NewBF(m, k, baseline.WithSeed(s)) }},
			{"KM double-hash", func(s uint64) (membershipFilter, error) { return baseline.NewKMBF(m, k, baseline.WithSeed(s)) }},
			{"1MemBF", func(s uint64) (membershipFilter, error) { return baseline.NewOneMemBF(m, k, baseline.WithSeed(s)) }},
			{"ShBF_M", func(s uint64) (membershipFilter, error) { return core.NewMembership(m, k, core.WithSeed(s)) }},
		}
		for _, cand := range candidates {
			fpr := Repeat(cfg.Trials, func(trial int) float64 {
				gen := trace.NewGenerator(cfg.Seed + int64(trial))
				f, err := cand.build(uint64(cfg.Seed) + uint64(trial))
				if err != nil {
					panic(err)
				}
				for _, e := range trace.Bytes(gen.Distinct(n)) {
					f.Add(e)
				}
				return measureFPR(f, workload.Negatives(gen, cfg.Probes/4))
			})
			mqps := Repeat(cfg.Trials, func(trial int) float64 {
				f, err := cand.build(uint64(cfg.Seed) + uint64(trial))
				if err != nil {
					panic(err)
				}
				queries := buildMixedWorkload(cfg, trial, n, f)
				return MeasureMqps(queries, cfg.MinTiming, func(e []byte) { f.Contains(e) })
			})
			fprFig.Add(cand.name, float64(k), fpr)
			speedFig.Add(cand.name, float64(k), mqps)
		}
		// Cuckoo filter: k-independent (fingerprint-based); one series
		// point per k for reference.
		cuckooFPR := Repeat(cfg.Trials, func(trial int) float64 {
			gen := trace.NewGenerator(cfg.Seed + int64(trial))
			f, err := baseline.NewCuckooFilter(n*2, baseline.WithSeed(uint64(cfg.Seed)+uint64(trial)))
			if err != nil {
				panic(err)
			}
			for _, e := range trace.Bytes(gen.Distinct(n)) {
				if err := f.Insert(e); err != nil {
					panic(err)
				}
			}
			return measureFPR(cuckooAdapter{f}, workload.Negatives(gen, cfg.Probes/4))
		})
		fprFig.Add("Cuckoo (8-bit fp)", float64(k), cuckooFPR)
	}
	return []*Figure{fprFig, speedFig}
}

// cuckooAdapter lets the cuckoo filter satisfy membershipFilter (its
// Insert returns an error, so Add is adapted).
type cuckooAdapter struct{ f *baseline.CuckooFilter }

func (a cuckooAdapter) Add(e []byte)           { _ = a.f.Insert(e) }
func (a cuckooAdapter) Contains(e []byte) bool { return a.f.Contains(e) }
