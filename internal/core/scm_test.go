package core

import (
	"math/rand"
	"testing"

	"shbf/internal/memmodel"
)

func mustSCM(t *testing.T, d, r int, opts ...Option) *SCMSketch {
	t.Helper()
	s, err := NewSCMSketch(d, r, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSCMSketchValidation(t *testing.T) {
	for _, tt := range []struct{ d, r int }{{0, 10}, {3, 10}, {1, 10}, {4, 0}} {
		if _, err := NewSCMSketch(tt.d, tt.r); err == nil {
			t.Errorf("NewSCMSketch(%d,%d) accepted invalid config", tt.d, tt.r)
		}
	}
	if _, err := NewSCMSketch(2, 1); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestSCMNeverUnderestimates(t *testing.T) {
	// The count-min guarantee must survive the shifting transformation.
	s := mustSCM(t, 8, 4096)
	rng := rand.New(rand.NewSource(1))
	elems := genElements(2000, 2)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(20) + 1
		for j := 0; j < truth[i]; j++ {
			s.Insert(e)
		}
	}
	for i, e := range elems {
		if got := s.Count(e); got < uint64(truth[i]) {
			t.Fatalf("element %d: estimate %d < truth %d", i, got, truth[i])
		}
	}
}

func TestSCMExactWhenSparse(t *testing.T) {
	s := mustSCM(t, 4, 1<<16)
	e := []byte("single flow")
	for i := 0; i < 7; i++ {
		s.Insert(e)
	}
	if got := s.Count(e); got != 7 {
		t.Fatalf("sparse estimate %d, want exactly 7", got)
	}
	if got := s.Count([]byte("absent")); got != 0 {
		t.Fatalf("absent estimate %d, want 0", got)
	}
}

func TestSCMParameters(t *testing.T) {
	s := mustSCM(t, 8, 100)
	if s.D() != 8 || s.R() != 100 {
		t.Fatalf("D=%d R=%d", s.D(), s.R())
	}
	if got := s.HashOpsPerOp(); got != 5 {
		t.Fatalf("HashOpsPerOp = %d, want d/2+1 = 5", got)
	}
	// 32-bit default counters: (64−7)/32 = 1 → clamped to minimum 2.
	if s.MaxOffset() < 2 {
		t.Fatalf("MaxOffset = %d", s.MaxOffset())
	}
	// 6-bit counters: (64−7)/6 = 9.
	s6 := mustSCM(t, 4, 100, WithCounterWidth(6))
	if got := s6.MaxOffset(); got != 9 {
		t.Fatalf("MaxOffset(6-bit) = %d, want 9", got)
	}
}

func TestSCMAccessCounting(t *testing.T) {
	var acc memmodel.Counter
	s := mustSCM(t, 8, 1024)
	s.SetUpdateCounter(&acc)
	s.Insert([]byte("e"))
	// d/2 rows × 2 counters × (1 read + 1 write per Inc) = 8 reads, 8 writes.
	if acc.Reads() != 8 || acc.Writes() != 8 {
		t.Fatalf("Insert accesses: %v", &acc)
	}
	acc.Reset()
	s.Count([]byte("e"))
	if acc.Reads() != 8 || acc.Writes() != 0 {
		t.Fatalf("Count accesses: %v", &acc)
	}
}

func TestSCMSizeBytes(t *testing.T) {
	s := mustSCM(t, 4, 1000, WithCounterWidth(32))
	// 2 rows × (1000 + maxOffset) counters × 4 bytes, word-rounded.
	if s.SizeBytes() < 2*1000*4 {
		t.Fatalf("SizeBytes = %d, implausibly small", s.SizeBytes())
	}
}

func BenchmarkSCMInsert(b *testing.B) {
	s, _ := NewSCMSketch(8, 1<<16)
	elems := genElements(4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(elems[i&4095])
	}
}

func BenchmarkSCMCount(b *testing.B) {
	s, _ := NewSCMSketch(8, 1<<16)
	elems := genElements(4096, 1)
	for _, e := range elems {
		s.Insert(e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Count(elems[i&4095])
	}
}
