package ingest

import (
	"bytes"
	"testing"

	"shbf"
	"shbf/internal/core"
)

// FuzzShBUDecode drives Decode with truncations, bit flips and
// spliced envelope fragments. Two invariants:
//
//  1. Decode never panics, whatever the bytes (the receiver feeds it
//     raw network input).
//  2. Anything Decode accepts re-encodes byte-identically — the
//     format has one canonical encoding, so a decoded datagram can be
//     forwarded without mutation.
func FuzzShBUDecode(f *testing.F) {
	// Valid add-batch seeds, fixed and variable width.
	batch, err := Append(nil, &Datagram{
		Type: TypeAddBatch, Source: 7, Seq: 1, Namespace: "default",
		KeyWidth: 13, Keys: testKeys(40, 13),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	varBatch, err := Append(nil, &Datagram{
		Type: TypeAddBatch, Source: 7, Seq: 2, Namespace: "flows",
		Keys: testKeys(10, 0),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(varBatch)

	// A real envelope fragment seed: dump a small sharded filter and
	// splice its middle into a fragment datagram, so the corpus
	// reaches the fragment validation paths with realistic payloads.
	filt, err := shbf.NewShardedMembership(1<<12, 4, 2, core.WithSeed(5))
	if err != nil {
		f.Fatal(err)
	}
	if err := filt.AddAll(testKeys(100, 8)); err != nil {
		f.Fatal(err)
	}
	env, err := shbf.AppendDump(nil, filt)
	if err != nil {
		f.Fatal(err)
	}
	half := len(env) / 2
	fragment, err := Append(nil, &Datagram{
		Type: TypeEnvelopeFrag, Source: 9, Seq: 3, Namespace: "agg",
		FlushID: 1, FragIndex: 1, FragCount: 2, EnvLen: len(env),
		FragOffset: half, Frag: env[half:],
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fragment)

	// Truncation seeds.
	f.Add(batch[:headerLen])
	f.Add(fragment[:len(fragment)-1])
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Append(nil, d)
		if err != nil {
			t.Fatalf("accepted datagram failed to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", data, again)
		}
	})
}
