package analytic

import "math"

// This file implements the association-query analysis of paper Section
// 4.4–4.5 (Equation 25 and Table 2).

// AssocOutcomeProbs returns the probabilities of the seven ShBF_A query
// outcomes at a given phantom-region probability q — the probability
// that all k bits of a *wrong* region's offset are 1. At the optimal
// operating point p′ = 0.5 and q = 0.5^k (Equation 25):
//
//	P1 = P2 = P3 = (1−q)²   (clear answers)
//	P4 = P5 = P6 = q(1−q)   (answers with incomplete information)
//	P7 = q²                 (no information)
//
// P1 + 2·P4 + P7 = 1, as the paper verifies.
func AssocOutcomeProbs(q float64) (pClear, pPartial, pNone float64) {
	return (1 - q) * (1 - q), q * (1 - q), q * q
}

// PhantomProbAtOptimal returns q = 0.5^k, the phantom-region probability
// at the optimal fill p′ = 0.5 (Section 4.4).
func PhantomProbAtOptimal(k int) float64 {
	return math.Pow(0.5, float64(k))
}

// PhantomProb returns the phantom-region probability for an arbitrary
// fill: q = (1−p′)^k with p′ = (1−1/m)^{kn′} (Equation 24), where n′ is
// the number of distinct elements in S1 ∪ S2.
func PhantomProb(m, nDistinct, k int) float64 {
	pPrime := math.Pow(1-1/float64(m), float64(k)*float64(nDistinct))
	return math.Pow(1-pPrime, float64(k))
}

// ClearProbShBFA returns ShBF_A's probability of a clear answer,
// (1 − 0.5^k)² at the optimum (Table 2).
func ClearProbShBFA(k int) float64 {
	q := PhantomProbAtOptimal(k)
	return (1 - q) * (1 - q)
}

// ClearProbMultiShBFA returns the clear-answer probability of the g-set
// MultiAssociation extension at the optimal fill: with R = 2^g − 1
// regions, the true region always survives and each of the R−1 phantom
// regions independently survives with probability q = 0.5^k, so
// P(clear) = (1 − 0.5^k)^{R−1}. g = 2 recovers ShBF_A's (1−0.5^k)².
func ClearProbMultiShBFA(g, k int) float64 {
	regions := 1<<g - 1
	return math.Pow(1-math.Pow(0.5, float64(k)), float64(regions-1))
}

// ClearProbIBF returns iBF's probability of a clear answer,
// (2/3)(1 − 0.5^k) at the optimum with queries uniform over the three
// regions (Table 2): exclusive-region queries are clear unless the
// other filter false-positives, and intersection queries are never
// clear because a double positive is unverifiable.
func ClearProbIBF(k int) float64 {
	return 2.0 / 3 * (1 - math.Pow(0.5, float64(k)))
}

// Table2 captures the analytic comparison of ShBF_A and iBF for given
// set sizes (paper Table 2). n1, n2 are |S1|, |S2|; n3 = |S1 ∩ S2|.
type Table2 struct {
	K int

	// Optimal memory in bits: iBF needs (n1+n2)·k/ln2 across two
	// filters; ShBF_A needs (n1+n2−n3)·k/ln2 in one.
	MemoryBitsIBF   float64
	MemoryBitsShBFA float64

	// Per-query hash computations: 2k vs k+2.
	HashOpsIBF   int
	HashOpsShBFA int

	// Per-query worst-case memory accesses: 2k vs k.
	AccessesIBF   int
	AccessesShBFA int

	// Probability of a clear answer at the optimum.
	ClearProbIBF   float64
	ClearProbShBFA float64

	// Whether declared answers can be false positives.
	FalsePositivesIBF   bool
	FalsePositivesShBFA bool
}

// ComputeTable2 evaluates Table 2 for the given set sizes and k.
func ComputeTable2(n1, n2, n3, k int) Table2 {
	return Table2{
		K:                   k,
		MemoryBitsIBF:       float64(n1+n2) * float64(k) / math.Ln2,
		MemoryBitsShBFA:     float64(n1+n2-n3) * float64(k) / math.Ln2,
		HashOpsIBF:          2 * k,
		HashOpsShBFA:        k + 2,
		AccessesIBF:         2 * k,
		AccessesShBFA:       k,
		ClearProbIBF:        ClearProbIBF(k),
		ClearProbShBFA:      ClearProbShBFA(k),
		FalsePositivesIBF:   true,
		FalsePositivesShBFA: false,
	}
}
