package ingest

import (
	"fmt"
	"io"
	"sync"

	"shbf"
	"shbf/internal/sharded"
)

// The edge agent. An agent sits where keys are born — a packet tap, a
// log tailer, a sensor gateway — and ships them toward a daemon over
// ShBU without ever blocking on the network's answer. Two flush
// strategies trade latency against wire cost:
//
//   - ModeKeys buffers raw keys and flushes them as packed add-batch
//     datagrams: O(keys) on the wire, but each key arrives upstream
//     within one flush interval of being observed.
//   - ModeEnvelope pre-aggregates keys into a local filter (built from
//     the daemon's own Spec, so the daemon can union it) and flushes
//     the filter as a fragmented ShBE envelope: O(filter bits) on the
//     wire regardless of how many keys the interval saw — the longer
//     the interval, the bigger the amortization.
//
// The envelope-mode filter is cumulative across flushes. That is the
// loss story: each flush carries everything the agent has ever seen,
// and union-merge is idempotent at the query level, so a dropped flush
// is healed in full by the next one — no acknowledgements, no
// retransmit queue. (Keys mode has no such cushion; what a lost
// datagram carried stays lost, which the receiver's loss accounting
// makes visible.)

// Mode selects an agent's flush strategy.
type Mode int

const (
	// ModeKeys flushes buffered keys as packed add-batch datagrams.
	ModeKeys Mode = iota + 1
	// ModeEnvelope flushes the local pre-aggregation filter as a
	// fragmented ShBE envelope.
	ModeEnvelope
)

// DefaultDatagram is the default flush datagram size: under the
// classic 1500-byte Ethernet MTU with headroom for IP/UDP headers, so
// datagrams survive paths that would fragment or drop larger ones.
const DefaultDatagram = 1400

// AgentConfig configures an Agent.
type AgentConfig struct {
	// Namespace is the daemon namespace every flush targets.
	Namespace string
	// Source identifies this agent in sequence accounting; pick a
	// random 64-bit value per process.
	Source uint64
	// Mode selects the flush strategy.
	Mode Mode
	// MaxDatagram caps encoded datagram size (0 = DefaultDatagram;
	// at most MaxDatagram the constant).
	MaxDatagram int
	// Filter is the local pre-aggregation state. In ModeEnvelope it is
	// required and must be built from the daemon's own Spec (shbf.New
	// of the membership spec for set ingest, of the multiplicity spec
	// for count ingest) or the daemon will refuse the merge. In
	// ModeKeys it is optional; when present (any shbf.Set — size it
	// with shbf.PlanMembership for one flush interval's keys) it
	// dedups keys within a flush, and is rebuilt empty from its Spec
	// at every flush.
	Filter shbf.Filter
}

// AgentStats is a point-in-time snapshot of an agent's sending side.
type AgentStats struct {
	// DatagramsSent counts every datagram handed to the writer.
	DatagramsSent uint64
	// BytesSent sums their encoded sizes.
	BytesSent uint64
	// KeysAdded counts accepted Add calls (after dedup).
	KeysAdded uint64
	// KeysDeduped counts Add calls suppressed by the keys-mode dedup
	// filter.
	KeysDeduped uint64
	// Flushes counts Flush calls that sent at least one datagram.
	Flushes uint64
	// Buffered is the keys currently awaiting flush (ModeKeys).
	Buffered int
}

// Agent pre-aggregates keys and flushes them as ShBU datagrams, one
// Write call per datagram. Safe for concurrent use.
type Agent struct {
	w   io.Writer
	cfg AgentConfig

	mu      sync.Mutex
	seq     uint64
	flushID uint64
	keys    [][]byte // ModeKeys buffer (copies)
	keyized int      // conservative packed size of keys
	dedup   shbf.Set // ModeKeys per-flush dedup, nil if unconfigured
	insert  func([]byte) error
	scratch []byte
	stats   AgentStats
}

// NewAgent builds an agent writing datagrams to w — a connected UDP
// socket in production, any io.Writer in tests (each Write is one
// datagram).
func NewAgent(w io.Writer, cfg AgentConfig) (*Agent, error) {
	if len(cfg.Namespace) == 0 || len(cfg.Namespace) > 255 {
		return nil, fmt.Errorf("ingest: namespace must be 1–255 bytes, got %d", len(cfg.Namespace))
	}
	if cfg.MaxDatagram == 0 {
		cfg.MaxDatagram = DefaultDatagram
	}
	if cfg.MaxDatagram > MaxDatagram {
		return nil, fmt.Errorf("ingest: MaxDatagram %d exceeds %d", cfg.MaxDatagram, MaxDatagram)
	}
	// The datagram must fit its headers plus at least a few key bytes.
	if cfg.MaxDatagram < headerLen+len(cfg.Namespace)+fragHeaderLen+64 {
		return nil, fmt.Errorf("ingest: MaxDatagram %d too small for namespace %q", cfg.MaxDatagram, cfg.Namespace)
	}
	a := &Agent{w: w, cfg: cfg}
	switch cfg.Mode {
	case ModeKeys:
		if cfg.Filter != nil {
			set, ok := cfg.Filter.(shbf.Set)
			if !ok {
				return nil, fmt.Errorf("ingest: keys-mode dedup filter %s is not a membership set", cfg.Filter.Kind())
			}
			a.dedup = set
		}
	case ModeEnvelope:
		switch f := cfg.Filter.(type) {
		case nil:
			return nil, fmt.Errorf("ingest: envelope mode needs a local filter")
		case shbf.Set:
			a.insert = func(key []byte) error { f.Add(key); return nil }
		case shbf.Updatable:
			a.insert = f.Insert
		default:
			return nil, fmt.Errorf("ingest: envelope-mode filter %s accepts neither adds nor inserts", cfg.Filter.Kind())
		}
	default:
		return nil, fmt.Errorf("ingest: unknown mode %d", cfg.Mode)
	}
	return a, nil
}

// Filter returns the agent's local filter (nil in keys mode without
// dedup). Callers use it to answer local queries at the edge. In keys
// mode with dedup the filter is rebuilt empty at every flush, so the
// returned value is a snapshot: keep calling Filter rather than
// holding one result across flushes.
func (a *Agent) Filter() shbf.Filter {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Filter
}

// Add accepts one key. In keys mode it is buffered (auto-flushing
// full datagrams when the buffer reaches one datagram's capacity); in
// envelope mode it is folded into the local filter and costs nothing
// on the wire until Flush.
func (a *Agent) Add(key []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.cfg.Mode {
	case ModeKeys:
		if len(key)+5 > a.batchCapacity() {
			// Rejected up front: buffered, it would form a batch no
			// datagram can carry, and the flush error path would keep
			// restoring it — one poison key wedging every later flush.
			return fmt.Errorf("ingest: %d-byte key exceeds the %d-byte add-batch capacity of a %d-byte datagram",
				len(key), a.batchCapacity()-5, a.cfg.MaxDatagram)
		}
		if a.dedup != nil {
			if a.dedup.Contains(key) {
				a.stats.KeysDeduped++
				return nil
			}
			a.dedup.Add(key)
		}
		a.keys = append(a.keys, append([]byte(nil), key...))
		a.keyized += len(key) + 5 // uvarint length bound
		a.stats.KeysAdded++
		if a.keyized >= a.batchCapacity() {
			return a.flushKeysLocked()
		}
		return nil
	default: // ModeEnvelope
		if err := a.insert(key); err != nil {
			return err
		}
		a.stats.KeysAdded++
		return nil
	}
}

// AddAll accepts a batch (the shbf.Adder shape).
func (a *Agent) AddAll(keys [][]byte) error {
	for _, k := range keys {
		if err := a.Add(k); err != nil {
			return err
		}
	}
	return nil
}

// Flush ships everything buffered: the key buffer as add-batch
// datagrams (keys mode), or the local filter as one fragmented
// envelope (envelope mode). A flush with nothing new still sends in
// envelope mode — the cumulative envelope is the loss cushion.
func (a *Agent) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.cfg.Mode {
	case ModeKeys:
		if len(a.keys) == 0 {
			return nil
		}
		if err := a.flushKeysLocked(); err != nil {
			return err
		}
		if a.dedup != nil {
			// Rebuild the dedup set empty: dedup is per flush, so a
			// key seen again next interval is sent again (that is what
			// heals an earlier lost batch).
			fresh, err := shbf.New(a.cfg.Filter.Spec())
			if err != nil {
				return fmt.Errorf("ingest: rebuilding dedup filter: %w", err)
			}
			a.cfg.Filter = fresh
			a.dedup = fresh.(shbf.Set)
		}
		a.stats.Flushes++
		return nil
	default: // ModeEnvelope
		env, err := shbf.AppendDump(a.scratch[:0], a.cfg.Filter)
		if err != nil {
			return err
		}
		a.scratch = env[:0]
		if err := a.sendEnvelopeLocked(env); err != nil {
			return err
		}
		a.stats.Flushes++
		return nil
	}
}

// batchCapacity is the key bytes one add-batch datagram can carry.
func (a *Agent) batchCapacity() int {
	return a.cfg.MaxDatagram - headerLen - len(a.cfg.Namespace) - 6 // packed-keys block header
}

// flushKeysLocked greedily packs the key buffer into as few add-batch
// datagrams as fit and sends them all.
func (a *Agent) flushKeysLocked() error {
	cap := a.batchCapacity()
	keys := a.keys
	for len(keys) > 0 {
		batch, used := 0, 0
		for batch < len(keys) {
			cost := len(keys[batch]) + 5
			if used+cost > cap && batch > 0 {
				break
			}
			used += cost
			batch++
		}
		if err := a.sendLocked(&Datagram{
			Type:      TypeAddBatch,
			Namespace: a.cfg.Namespace,
			KeyWidth:  uniformWidth(keys[:batch]),
			Keys:      keys[:batch],
		}); err != nil {
			// Sent prefixes stay sent; keep the rest buffered.
			a.keys = keys
			a.keyized = packedBound(keys)
			return err
		}
		keys = keys[batch:]
	}
	a.keys, a.keyized = a.keys[:0], 0
	return nil
}

// sendEnvelopeLocked fragments env into datagrams under one flush ID.
func (a *Agent) sendEnvelopeLocked(env []byte) error {
	chunk := a.cfg.MaxDatagram - headerLen - len(a.cfg.Namespace) - fragHeaderLen
	count := (len(env) + chunk - 1) / chunk
	if count == 0 {
		count = 1
	}
	if count > 0xffff {
		return fmt.Errorf("ingest: envelope of %d bytes needs %d fragments, max %d", len(env), count, 0xffff)
	}
	a.flushID++
	for i := 0; i < count; i++ {
		off := i * chunk
		end := off + chunk
		if end > len(env) {
			end = len(env)
		}
		if err := a.sendLocked(&Datagram{
			Type:       TypeEnvelopeFrag,
			Namespace:  a.cfg.Namespace,
			FlushID:    a.flushID,
			FragIndex:  i,
			FragCount:  count,
			EnvLen:     len(env),
			FragOffset: off,
			Frag:       env[off:end],
		}); err != nil {
			return err
		}
	}
	return nil
}

// sendLocked stamps identity and sequence onto d, encodes it, and
// writes one datagram.
func (a *Agent) sendLocked(d *Datagram) error {
	a.seq++
	d.Source, d.Seq = a.cfg.Source, a.seq
	buf, err := Append(nil, d)
	if err != nil {
		a.seq-- // nothing left the agent
		return err
	}
	if _, err := a.w.Write(buf); err != nil {
		// Fire-and-forget: the datagram is spent (the kernel may have
		// sent it) but the caller should know the path is unhappy.
		return err
	}
	a.stats.DatagramsSent++
	a.stats.BytesSent += uint64(len(buf))
	return nil
}

// Stats snapshots the agent's sending side.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.Buffered = len(a.keys)
	return s
}

// uniformWidth returns the shared key length if every key has it (the
// packed fixed-width fast path), else 0 (per-key lengths).
func uniformWidth(keys [][]byte) int {
	if len(keys) == 0 {
		return 0
	}
	w := len(keys[0])
	for _, k := range keys[1:] {
		if len(k) != w {
			return 0
		}
	}
	if w == 0 || w > 0xffff {
		return 0
	}
	return w
}

// packedBound is the conservative packed-size bound flushKeysLocked
// budgets with.
func packedBound(keys [][]byte) int {
	n := 0
	for _, k := range keys {
		n += len(k) + 5
	}
	return n
}

// Forwarder makes an agent a topology hop: it implements Handler, so
// a Receiver can feed one agent's flushes into another agent, which
// re-aggregates and flushes upstream on its own cadence. Edge fan-in
// becomes a tree — N leaf agents hit one forwarder, the daemon sees
// one source's worth of traffic.
type Forwarder struct {
	a *Agent
}

// NewForwarder wraps an agent as a datagram handler.
func NewForwarder(a *Agent) *Forwarder { return &Forwarder{a: a} }

// HandleBatch folds a received key batch into the forwarder's agent.
func (f *Forwarder) HandleBatch(namespace string, keys [][]byte) DropReason {
	if namespace != f.a.cfg.Namespace {
		return DropUnknownNamespace
	}
	if err := f.a.AddAll(keys); err != nil {
		return DropMerge
	}
	return DropNone
}

// HandleEnvelope unions a received envelope into the forwarder's
// local filter. Only envelope-mode forwarders can merge state; the
// filters must agree on Spec as everywhere else.
func (f *Forwarder) HandleEnvelope(namespace string, envelope []byte) DropReason {
	if namespace != f.a.cfg.Namespace {
		return DropUnknownNamespace
	}
	if f.a.cfg.Mode != ModeEnvelope {
		return DropMode
	}
	src, rest, err := shbf.Decode(envelope)
	if err != nil || len(rest) != 0 {
		return DropDecode
	}
	switch dst := f.a.cfg.Filter.(type) {
	case *sharded.Filter:
		srcF, ok := src.(*sharded.Filter)
		if !ok {
			return DropMerge
		}
		if err := dst.Union(srcF); err != nil {
			return DropMerge
		}
	case *sharded.Multiplicity:
		srcF, ok := src.(*sharded.Multiplicity)
		if !ok {
			return DropMerge
		}
		if err := dst.Union(srcF); err != nil {
			return DropMerge
		}
	default:
		return DropMode
	}
	return DropNone
}
