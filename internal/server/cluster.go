package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"shbf"
	"shbf/internal/cluster"
	"shbf/internal/sharded"
)

// Cluster mode. A daemon started with -cluster-file knows the cluster
// map (internal/cluster) and its own node ID, and serves the map to
// clients over GET /v2/cluster and the ShBP cluster-map op — any node
// is a seed address. The daemon itself stays unaware of routing:
// clients split batches by owner range (client.Cluster) and every node
// answers whatever keys arrive. Replication converges through
// anti-entropy: GET .../membership/envelope exports a namespace's
// membership filter as a ShBE envelope, POST .../merge unions an
// uploaded envelope into the live filter (same Spec + seed ⇒ OR of bit
// arrays is the filter of the union; see sharded.Filter.Union).

// errNotClustered reports cluster endpoints on a daemon started
// without -cluster-file (mapped to 404/StatusNotFound).
var errNotClustered = errors.New("server: no cluster map configured (start shbfd with -cluster-file)")

// errMergeWindowed reports a merge into a windowed namespace, refused
// until merges are epoch-aligned (mapped to 409/StatusConflict).
var errMergeWindowed = errors.New("server: cannot merge into a windowed namespace (generation epochs are not aligned across nodes)")

// errMergeBadEnvelope tags merge-body decode failures (mapped to
// 400/StatusBadRequest).
var errMergeBadEnvelope = errors.New("server: merge body is not a membership envelope")

// clusterState is the immutable cluster identity a daemon is started
// with.
type clusterState struct {
	m      *cluster.Map
	nodeID string
	// encoded is the map's JSON, rendered once at set time — the
	// GET /v2/cluster and OpClusterMap body.
	encoded []byte
}

// SetClusterMap puts the server in cluster mode: m is the map it will
// serve to clients, nodeID this daemon's own entry in it. Call before
// serving; the map is static for the process lifetime (rebalancing is
// a follow-on).
func (s *Server) SetClusterMap(m *cluster.Map, nodeID string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.NodeByID(nodeID) == nil {
		return fmt.Errorf("server: node id %q is not in the cluster map", nodeID)
	}
	encoded, err := m.Encode()
	if err != nil {
		return err
	}
	s.cluster.Store(&clusterState{m: m, nodeID: nodeID, encoded: encoded})
	return nil
}

// ClusterMap returns the map set by SetClusterMap and this node's ID
// in it (nil, "" outside cluster mode).
func (s *Server) ClusterMap() (*cluster.Map, string) {
	cs := s.cluster.Load()
	if cs == nil {
		return nil, ""
	}
	return cs.m, cs.nodeID
}

// handleClusterMap serves GET /v2/cluster: the cluster map document,
// from any node.
func (s *Server) handleClusterMap(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster.Load()
	if cs == nil {
		writeError(w, http.StatusNotFound, errNotClustered)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(cs.encoded)
}

// membershipEnvelope exports the namespace's membership filter as one
// ShBE envelope — the anti-entropy payload a replica ships to its
// peers.
func (ns *namespace) membershipEnvelope() ([]byte, error) {
	return shbf.AppendDump(nil, ns.mem)
}

// multiplicityEnvelope exports the namespace's multiplicity filter —
// the counting-state analogue of membershipEnvelope, and the flush
// payload edge agents in count mode ship upstream (internal/ingest).
func (ns *namespace) multiplicityEnvelope() ([]byte, error) {
	return shbf.AppendDump(nil, ns.mult)
}

// decodeMergeEnvelope decodes one uploaded ShBE envelope, classifying
// malformed bytes and trailing garbage as errMergeBadEnvelope.
func decodeMergeEnvelope(data []byte) (shbf.Filter, error) {
	src, rest, err := shbf.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errMergeBadEnvelope, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after envelope", errMergeBadEnvelope, len(rest))
	}
	return src, nil
}

// mergeFilter unions one decoded ShBE filter into the matching member
// of the namespace trio, dispatching on the envelope's self-described
// kind: membership envelopes union into mem (bitwise OR), multiplicity
// envelopes into mult (counter-wise saturating add; see
// sharded.Multiplicity.Union). gate, when non-nil, runs between decode
// and mutation with the source filter's element count — the UDP ingest
// path charges the per-tenant rate quota there — and a gate error
// aborts with the destination untouched. Returns the source filter's
// element count.
func (ns *namespace) mergeFilter(src shbf.Filter, gate func(nKeys int) error) (int, error) {
	switch srcF := src.(type) {
	case *sharded.Filter:
		dstF, ok := ns.mem.(*sharded.Filter)
		if !ok {
			return 0, errMergeWindowed
		}
		n := srcF.N()
		if gate != nil {
			if err := gate(n); err != nil {
				return 0, err
			}
		}
		if err := dstF.Union(srcF); err != nil {
			return 0, err
		}
		return n, nil
	case *sharded.Multiplicity:
		dstF, ok := ns.mult.(*sharded.Multiplicity)
		if !ok {
			return 0, errMergeWindowed
		}
		n := srcF.N()
		if n < 0 {
			n = 0 // unsafe mode tracks no exact element set
		}
		if gate != nil {
			if err := gate(n); err != nil {
				return 0, err
			}
		}
		if err := dstF.Union(srcF); err != nil {
			return 0, err
		}
		return n, nil
	default:
		return 0, fmt.Errorf("%w: envelope holds a %s filter, want %s or %s",
			errMergeBadEnvelope, src.Kind(), shbf.KindShardedMembership, shbf.KindShardedMultiplicity)
	}
}

// mergeEnvelope unions one uploaded ShBE membership envelope into the
// namespace's live filter and returns the source filter's element
// count. Failures classify for the transports via errMergeBadEnvelope
// (bad request), errMergeWindowed and sharded.ErrIncompatible (both
// conflict: the filter is intact, the operator shipped the wrong
// envelope).
func (ns *namespace) mergeEnvelope(data []byte) (int, error) {
	src, err := decodeMergeEnvelope(data)
	if err != nil {
		return 0, err
	}
	if _, ok := src.(*sharded.Filter); !ok {
		return 0, fmt.Errorf("%w: envelope holds a %s filter, want %s",
			errMergeBadEnvelope, src.Kind(), shbf.KindShardedMembership)
	}
	return ns.mergeFilter(src, nil)
}

// mergeMultiplicityEnvelope is mergeEnvelope for the counting side:
// the body must hold a sharded multiplicity envelope, unioned in by
// counter-wise saturating add so merged counts never underestimate
// either side.
func (ns *namespace) mergeMultiplicityEnvelope(data []byte) (int, error) {
	src, err := decodeMergeEnvelope(data)
	if err != nil {
		return 0, err
	}
	if _, ok := src.(*sharded.Multiplicity); !ok {
		return 0, fmt.Errorf("%w: envelope holds a %s filter, want %s",
			errMergeBadEnvelope, src.Kind(), shbf.KindShardedMultiplicity)
	}
	return ns.mergeFilter(src, nil)
}

// mergeStatusHTTP maps a mergeEnvelope error to an HTTP status.
func mergeStatusHTTP(err error) int {
	switch {
	case errors.Is(err, errMergeBadEnvelope):
		return http.StatusBadRequest
	case errors.Is(err, errMergeWindowed), errors.Is(err, sharded.ErrIncompatible):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// nsMembershipEnvelope serves GET /v2/namespaces/{ns}/membership/
// envelope: the namespace's membership filter as a raw ShBE envelope.
func (s *Server) nsMembershipEnvelope(ns *namespace, w http.ResponseWriter, r *http.Request) {
	env, err := ns.membershipEnvelope()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(env)
}

// nsMembershipMerge serves POST /v2/namespaces/{ns}/merge: the body is
// a raw ShBE envelope (as exported by the envelope endpoint) unioned
// into the live membership filter.
func (s *Server) nsMembershipMerge(ns *namespace, w http.ResponseWriter, r *http.Request) {
	if err := ns.writable(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	n, err := ns.mergeEnvelope(body)
	if err != nil {
		writeError(w, mergeStatusHTTP(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"merged_n":     n,
		"membership_n": ns.mem.Stats().N,
	})
}

// nsMultiplicityEnvelope serves GET /v2/namespaces/{ns}/multiplicity/
// envelope: the namespace's multiplicity filter as a raw ShBE
// envelope.
func (s *Server) nsMultiplicityEnvelope(ns *namespace, w http.ResponseWriter, r *http.Request) {
	env, err := ns.multiplicityEnvelope()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(env)
}

// nsMultiplicityMerge serves POST /v2/namespaces/{ns}/multiplicity/
// merge: the body is a raw ShBE multiplicity envelope (as exported by
// the multiplicity envelope endpoint) unioned into the live counting
// filter by counter-wise saturating add.
func (s *Server) nsMultiplicityMerge(ns *namespace, w http.ResponseWriter, r *http.Request) {
	if err := ns.writable(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	n, err := ns.mergeMultiplicityEnvelope(body)
	if err != nil {
		writeError(w, mergeStatusHTTP(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"merged_n":       n,
		"multiplicity_n": ns.mult.Stats().N,
	})
}
