package baseline

import (
	"math/rand"
	"testing"
)

func TestCuckooValidation(t *testing.T) {
	if _, err := NewCuckooFilter(0); err == nil {
		t.Error("accepted capacity 0")
	}
}

func TestCuckooInsertContains(t *testing.T) {
	f, err := NewCuckooFilter(10000)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(8000, 1)
	for i, e := range elems {
		if err := f.Insert(e); err != nil {
			t.Fatalf("insert %d failed at load %.2f: %v", i, f.LoadFactor(), err)
		}
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative")
		}
	}
	if f.N() != 8000 {
		t.Fatalf("N = %d", f.N())
	}
}

func TestCuckooDelete(t *testing.T) {
	f, err := NewCuckooFilter(1000)
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("elem")
	if err := f.Insert(e); err != nil {
		t.Fatal(err)
	}
	if !f.Delete(e) {
		t.Fatal("delete of present element failed")
	}
	if f.Contains(e) {
		t.Fatal("element survives delete")
	}
	if f.Delete(e) {
		t.Fatal("double delete succeeded")
	}
}

func TestCuckooFPRReasonable(t *testing.T) {
	f, err := NewCuckooFilter(20000, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range genElements(15000, 2) {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	fp, probes := 0, 100000
	for _, e := range genDisjoint(probes, 3) {
		if f.Contains(e) {
			fp++
		}
	}
	// 8-bit fingerprints, 2 buckets × 4 slots: FPR ≈ 8/256 ≈ 3% upper
	// bound at full load; we are at ~0.46 load.
	if rate := float64(fp) / float64(probes); rate > 0.035 {
		t.Fatalf("cuckoo FPR %.4f implausibly high", rate)
	}
}

func TestCuckooFillsUp(t *testing.T) {
	// Overfilling must eventually return ErrFilterFull, the failure mode
	// the paper cites (Section 2.1).
	f, err := NewCuckooFilter(64, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for _, e := range genElements(4096, 4) {
		if err := f.Insert(e); err == ErrFilterFull {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("filter never reported full while inserting 16× capacity")
	}
}

func TestDCFValidation(t *testing.T) {
	if _, err := NewDCF(0, 4); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewDCF(100, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestDCFCountsAndGrows(t *testing.T) {
	// 2-bit low counters force the overflow array to widen dynamically.
	f, err := NewDCF(4096, 4, WithCounterWidth(2))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("hot element")
	const target = 100
	for i := 0; i < target; i++ {
		f.Insert(e)
	}
	if got := f.Count(e); got < target {
		t.Fatalf("Count = %d underestimates %d", got, target)
	}
	if f.Grown() == 0 {
		t.Fatal("overflow array never widened despite 100 increments of 2-bit counters")
	}
}

func TestDCFDelete(t *testing.T) {
	f, err := NewDCF(4096, 4, WithCounterWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("x")
	for i := 0; i < 30; i++ {
		f.Insert(e)
	}
	for i := 0; i < 30; i++ {
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Count(e); got != 0 {
		t.Fatalf("Count = %d after matched deletes", got)
	}
	if err := f.Delete(e); err != ErrNotStored {
		t.Fatalf("over-delete = %v, want ErrNotStored", err)
	}
}

func TestDCFNeverUnderestimates(t *testing.T) {
	f, err := NewDCF(60000, 6, WithCounterWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	elems := genElements(2000, 9)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(40) + 1
		for j := 0; j < truth[i]; j++ {
			f.Insert(e)
		}
	}
	for i, e := range elems {
		if got := f.Count(e); got < uint64(truth[i]) {
			t.Fatalf("estimate %d < truth %d", got, truth[i])
		}
	}
}

func BenchmarkCuckooContains(b *testing.B) {
	f, _ := NewCuckooFilter(1 << 16)
	elems := genElements(40000, 1)
	for _, e := range elems {
		f.Insert(e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(elems[i%40000])
	}
}

func BenchmarkDCFCount(b *testing.B) {
	f, _ := NewDCF(1<<18, 8, WithCounterWidth(4))
	elems := genElements(4096, 1)
	for _, e := range elems {
		f.Insert(e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Count(elems[i&4095])
	}
}
