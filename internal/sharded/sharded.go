// Package sharded provides a thread-safe membership filter for the
// paper's wire-speed deployment scenario: multiple receive queues
// (goroutines) classifying packets against one logical blocklist.
//
// A Filter splits the bit budget across 2^p independent ShBF_M shards
// and routes each element to a shard with an independent hash. Shards
// are guarded by RWMutexes, so concurrent Contains calls proceed in
// parallel and only same-shard writers contend. Because routing is
// by hash, per-shard occupancy concentrates around n/shards and the
// false-positive rate matches a monolithic filter of the same total
// size (each shard is an independent ShBF_M at the same bits-per-
// element).
package sharded

import (
	"fmt"
	"sync"

	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Filter is a concurrency-safe sharded ShBF_M.
type Filter struct {
	shards []shard
	router hashing.Hasher
	mask   uint64
}

type shard struct {
	mu sync.RWMutex
	f  *core.Membership
	_  [40]byte // pad to a cache line so shard locks don't false-share
}

// New returns a filter with totalBits split across shardCount shards
// (rounded up to a power of two, minimum 1) and k bit positions per
// element. Options are forwarded to each shard's constructor; shards
// receive distinct derived seeds.
func New(totalBits, k, shardCount int, opts ...core.Option) (*Filter, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("sharded: shard count %d must be ≥ 1", shardCount)
	}
	pow := 1
	for pow < shardCount {
		pow *= 2
	}
	perShard := totalBits / pow
	if perShard < 64 {
		return nil, fmt.Errorf("sharded: %d bits across %d shards leaves %d bits/shard (< 64)", totalBits, pow, perShard)
	}
	f := &Filter{
		shards: make([]shard, pow),
		router: hashing.New(0x5a4d_0001),
		mask:   uint64(pow - 1),
	}
	for i := range f.shards {
		sf, err := core.NewMembership(perShard, k, append(opts, core.WithSeed(uint64(i)*0x9e37+1))...)
		if err != nil {
			return nil, fmt.Errorf("sharded: building shard %d: %w", i, err)
		}
		f.shards[i].f = sf
	}
	return f, nil
}

// Shards returns the number of shards.
func (f *Filter) Shards() int { return len(f.shards) }

// shardFor routes an element.
func (f *Filter) shardFor(e []byte) *shard {
	return &f.shards[f.router.Sum64(e)&f.mask]
}

// Add inserts e. Safe for concurrent use.
func (f *Filter) Add(e []byte) {
	s := f.shardFor(e)
	s.mu.Lock()
	s.f.Add(e)
	s.mu.Unlock()
}

// Contains reports whether e may be in the set. Safe for concurrent
// use; readers of different shards (and of the same shard) do not block
// each other.
func (f *Filter) Contains(e []byte) bool {
	s := f.shardFor(e)
	s.mu.RLock()
	ok := s.f.Contains(e)
	s.mu.RUnlock()
	return ok
}

// N returns the total number of elements added across shards.
func (f *Filter) N() int {
	total := 0
	for i := range f.shards {
		f.shards[i].mu.RLock()
		total += f.shards[i].f.N()
		f.shards[i].mu.RUnlock()
	}
	return total
}

// SizeBytes returns the combined bit-array footprint.
func (f *Filter) SizeBytes() int {
	total := 0
	for i := range f.shards {
		total += f.shards[i].f.SizeBytes()
	}
	return total
}

// FillRatio returns the mean fill ratio across shards.
func (f *Filter) FillRatio() float64 {
	sum := 0.0
	for i := range f.shards {
		f.shards[i].mu.RLock()
		sum += f.shards[i].f.FillRatio()
		f.shards[i].mu.RUnlock()
	}
	return sum / float64(len(f.shards))
}

// Reset clears all shards.
func (f *Filter) Reset() {
	for i := range f.shards {
		f.shards[i].mu.Lock()
		f.shards[i].f.Reset()
		f.shards[i].mu.Unlock()
	}
}
