package clustertest

import (
	"io"
	"net/http"
	"testing"

	"shbf/client"
	"shbf/internal/cluster"
	"shbf/internal/server"
)

// TestStartServesBothTransports boots the default 3-node cluster and
// checks every node answers over ShBP and HTTP and serves the shared
// cluster map.
func TestStartServesBothTransports(t *testing.T) {
	c := Start(t, Options{})
	if len(c.Nodes) != 3 || c.Map == nil {
		t.Fatalf("cluster = %d nodes, map %v", len(c.Nodes), c.Map)
	}
	if err := c.Map.Validate(); err != nil {
		t.Fatalf("served map invalid: %v", err)
	}
	for _, n := range c.Nodes {
		cl, err := client.Dial(n.ShBPAddr)
		if err != nil {
			t.Fatalf("%s: dial shbp: %v", n.ID, err)
		}
		if err := cl.Ping(); err != nil {
			t.Fatalf("%s: ping over shbp: %v", n.ID, err)
		}
		m, err := cl.ClusterMap()
		cl.Close()
		if err != nil {
			t.Fatalf("%s: cluster map over shbp: %v", n.ID, err)
		}
		if m.Version != c.Map.Version || len(m.Nodes) != len(c.Map.Nodes) {
			t.Fatalf("%s: served map %+v != built map %+v", n.ID, m, c.Map)
		}

		resp, err := http.Get("http://" + n.HTTPAddr + "/v2/cluster")
		if err != nil {
			t.Fatalf("%s: GET /v2/cluster: %v", n.ID, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: GET /v2/cluster = %d: %s", n.ID, resp.StatusCode, body)
		}
		if _, err := cluster.Decode(body); err != nil {
			t.Fatalf("%s: /v2/cluster body does not decode: %v", n.ID, err)
		}
	}
}

// TestKillDropsNode kills one node and checks it stops answering while
// the others keep serving; double-Kill and Stop-after-Kill must not
// hang or panic.
func TestKillDropsNode(t *testing.T) {
	c := Start(t, Options{Nodes: 3})
	victim := c.Nodes[0]
	victim.Kill()
	victim.Kill() // idempotent

	if cl, err := client.Dial(victim.ShBPAddr); err == nil {
		if err := cl.Ping(); err == nil {
			t.Fatal("killed node still answers pings")
		}
		cl.Close()
	}
	if c.SeedAddr() == victim.ShBPAddr {
		t.Fatal("SeedAddr returned the killed node")
	}
	for _, n := range c.Nodes[1:] {
		cl, err := client.Dial(n.ShBPAddr)
		if err != nil {
			t.Fatalf("%s: dial after sibling kill: %v", n.ID, err)
		}
		if err := cl.Ping(); err != nil {
			t.Fatalf("%s: ping after sibling kill: %v", n.ID, err)
		}
		cl.Close()
	}
}

// TestCreateNamespaceReachesEveryNode provisions a tenant and checks
// each node owns an independent copy.
func TestCreateNamespaceReachesEveryNode(t *testing.T) {
	c := Start(t, Options{Nodes: 2})
	if err := c.CreateNamespace(server.NamespaceConfig{Name: "t1"}); err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	for _, n := range c.Nodes {
		cl, err := client.Dial(n.ShBPAddr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Namespace("t1").Stats(); err != nil {
			t.Fatalf("%s: tenant missing: %v", n.ID, err)
		}
		cl.Close()
	}
}
