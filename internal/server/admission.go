package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shbf"
	"shbf/internal/wire"
)

// Admission control: the degrade-gracefully layer between "1024
// tenants max" and one tenant (or one traffic spike) taking the whole
// daemon down. Three independent gates, all answering HTTP 429 /
// wire.StatusOverloaded with identical messages on both transports:
//
//   - a per-tenant token bucket on the data-plane ops (NamespaceConfig
//     RatePerSec/RateBurst), charging one token per key, with writes
//     shed before reads: a write needs a quarter-bucket of headroom, a
//     read only its own tokens, so under sustained overload queries
//     keep answering while inserts back off;
//   - a daemon-wide memory ceiling (Config.MaxTotalBits): namespace
//     creation that would push the sum of every tenant's filter bits
//     (all generations) past the ceiling is shed;
//   - an in-flight ShBP frame cap (Config.MaxInflightFrames), bounding
//     the frames being dispatched at once across all binary
//     connections — again shedding writes (at ¾ of the cap) before
//     reads (at the cap).
//
// A shed request was NOT applied — StatusOverloaded is the one failure
// status a client may blindly retry after a backoff (client.RetryPolicy
// does exactly that). Per-tenant bit budgets (NamespaceConfig.MaxBits)
// are enforced at create time and are a config error (400), not an
// overload.

// errOverloaded marks admission-control rejections; both transports
// map it to 429/StatusOverloaded (see overloadStatus/writeError call
// sites — gate new shed paths on this sentinel, never in one transport
// only).
var errOverloaded = errors.New("overloaded")

// IsOverloaded reports whether err is an admission-control rejection.
func IsOverloaded(err error) bool { return errors.Is(err, errOverloaded) }

// rateLimiter is one tenant's token bucket. Tokens refill continuously
// at rate/sec up to burst; each data-plane op costs one token per key.
// Writes keep a reserve of burst/4 in the bucket so reads degrade
// last.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newRateLimiter builds a bucket that starts full. burst ≤ 0 defaults
// to one second's worth of tokens (min 1).
func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: burst, tokens: burst}
}

// admit charges n tokens at time now, or reports why not. Writes
// additionally require a burst/4 reserve to remain — the "shed writes
// before reads" policy.
func (l *rateLimiter) admit(n int, write bool, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.After(l.last) {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	need := float64(n)
	if write {
		need += l.burst / 4
	}
	if l.tokens < need {
		return false
	}
	l.tokens -= float64(n)
	return true
}

// admit gates one data-plane op of nKeys keys on the namespace's rate
// quota (a no-op for tenants without one). The error message is the
// byte-identical body both transports serve.
func (ns *namespace) admit(nKeys int, write bool) error {
	if ns.limiter == nil {
		return nil
	}
	if !ns.limiter.admit(nKeys, write, time.Now()) {
		ns.stats.rateShed.Add(1)
		kind := "read"
		if write {
			kind = "write"
		}
		return fmt.Errorf("server: namespace %q: rate quota exceeded, %s of %d keys shed (%.0f/s, burst %.0f; writes shed first): %w",
			ns.name, kind, nKeys, ns.limiter.rate, ns.limiter.burst, errOverloaded)
	}
	return nil
}

// totalBits is the namespace's full memory footprint in filter bits:
// every generation of every filter of the trio (the figure the daemon
// ceiling meters).
func (ns *namespace) totalBits() int64 {
	var sum int64
	for _, f := range ns.filters() {
		sum += specTotalBits(f.filter.Spec())
	}
	return sum
}

// specTotalBits is one filter's all-generations bit budget.
func specTotalBits(spec shbf.Spec) int64 {
	gens := spec.Generations
	if gens < 1 {
		gens = 1
	}
	return int64(spec.M) * int64(gens)
}

// chargeBitsLocked reserves bits under the daemon ceiling (s.mu must
// be held). Exceeding the ceiling is an overload — the daemon is full,
// not misconfigured — so creates shed with 429/StatusOverloaded.
func (s *Server) chargeBitsLocked(bits int64) error {
	if s.cfg.MaxTotalBits > 0 && s.usedBits+bits > s.cfg.MaxTotalBits {
		if s.met != nil {
			s.met.shedBits.Inc()
		}
		return fmt.Errorf("server: memory ceiling: namespace needs %d filter bits, %d of %d in use: %w",
			bits, s.usedBits, s.cfg.MaxTotalBits, errOverloaded)
	}
	s.usedBits += bits
	return nil
}

// writeOp reports whether a wire op mutates filter state — the ops the
// admission gates shed first.
func writeOp(op byte) bool {
	switch op {
	case wire.OpMembershipAdd, wire.OpMembershipMerge,
		wire.OpAssociationAdd, wire.OpAssociationRemove,
		wire.OpMultiplicityAdd, wire.OpMultiplicityRemove,
		wire.OpMultiplicityMerge:
		return true
	}
	return false
}

// frameGate is the ShBP in-flight frame cap: a daemon-wide counter of
// frames currently being dispatched. Reads shed at the cap, writes at
// ¾ of it, so a read-mostly overload never starves queries to protect
// inserts.
type frameGate struct {
	mu       sync.Mutex
	inflight int
	cap      int
	writeCap int
}

// newFrameGate builds a gate for cap in-flight frames (nil when cap ≤
// 0: unlimited).
func newFrameGate(cap int) *frameGate {
	if cap <= 0 {
		return nil
	}
	writeCap := cap - cap/4
	if writeCap < 1 {
		writeCap = 1
	}
	return &frameGate{cap: cap, writeCap: writeCap}
}

// acquire admits one frame, or reports the shed reason. Callers must
// release() iff acquire returned nil.
func (g *frameGate) acquire(write bool) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	limit := g.cap
	kind := "read"
	if write {
		limit = g.writeCap
		kind = "write"
	}
	if g.inflight >= limit {
		return fmt.Errorf("server: shbp %s shed, %d frames in flight (cap %d, write cap %d; writes shed first): %w",
			kind, g.inflight, g.cap, g.writeCap, errOverloaded)
	}
	g.inflight++
	return nil
}

// release returns one admitted frame's slot.
func (g *frameGate) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.inflight--
	g.mu.Unlock()
}
