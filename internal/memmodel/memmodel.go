// Package memmodel provides the memory-access accounting and latency
// model used throughout the ShBF reproduction.
//
// The paper's evaluation reports "# memory accesses per query" (Figures 8,
// 10(b), 11(b)) under a byte-addressable model: a single memory access
// reads one machine word (w bits) starting at any byte boundary (Section
// 3.1). A probe that touches bits spread across several words therefore
// costs several accesses, while a probe whose bits fall inside one w-bit
// window starting at a byte boundary costs exactly one.
//
// The package also models the SRAM/DRAM split of Sections 3.3 and 5.3:
// the bit array B is meant for on-chip SRAM (queries), while the counter
// array C and the backing hash table live in off-chip DRAM (updates).
// CostModel turns access counts into estimated latencies so examples can
// illustrate why the split matters; the reproduction's headline numbers
// use the raw access counts.
package memmodel

import (
	"fmt"
	"time"
)

// WordBits is the machine word size w assumed by the access model.
// The paper evaluates w = 64 (and derives w̄ ≤ w−7 = 57 from it).
const WordBits = 64

// Counter tallies memory accesses. A Counter is attached to a bit vector
// or counter array and incremented by its read/write paths. The zero
// value is ready to use.
//
// Counter is not safe for concurrent use; each goroutine measuring
// accesses should own its structures, matching the single-threaded query
// loop of the paper's evaluation.
type Counter struct {
	reads  uint64
	writes uint64
}

// AddReads records n read accesses.
func (c *Counter) AddReads(n int) {
	if c == nil {
		return
	}
	c.reads += uint64(n)
}

// AddWrites records n write accesses.
func (c *Counter) AddWrites(n int) {
	if c == nil {
		return
	}
	c.writes += uint64(n)
}

// Reads returns the number of read accesses recorded so far.
func (c *Counter) Reads() uint64 {
	if c == nil {
		return 0
	}
	return c.reads
}

// Writes returns the number of write accesses recorded so far.
func (c *Counter) Writes() uint64 {
	if c == nil {
		return 0
	}
	return c.writes
}

// Total returns reads + writes.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	return c.reads + c.writes
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.reads, c.writes = 0, 0
}

// String implements fmt.Stringer.
func (c *Counter) String() string {
	return fmt.Sprintf("reads=%d writes=%d", c.Reads(), c.Writes())
}

// AccessCount returns the number of memory accesses needed to read the
// bit window [pos, pos+width) under the paper's model: an access fetches
// WordBits consecutive bits starting at any byte boundary, so the cost is
// the number of word-sized fetches covering the byte span of the window.
//
// For the paper's parameter choice width = w̄ ≤ w−7 this is always 1:
// the window starts at bit offset j−1 ∈ [0,7] within its byte and
// j−1+w̄ ≤ w, hence one aligned fetch suffices (Section 3.1).
func AccessCount(pos, width int) int {
	if width <= 0 {
		return 0
	}
	firstByte := pos / 8
	lastByte := (pos + width - 1) / 8
	spanBits := (lastByte - firstByte + 1) * 8
	return (spanBits + WordBits - 1) / WordBits
}

// CostModel estimates query/update latency from access counts using the
// SRAM/DRAM latencies of the paper's architecture argument ("SRAM is at
// least an order of magnitude faster than DRAM", Section 3.3).
type CostModel struct {
	// SRAMAccess is the latency of one on-chip access (bit array B).
	SRAMAccess time.Duration
	// DRAMAccess is the latency of one off-chip access (counter array C,
	// backing hash table).
	DRAMAccess time.Duration
}

// DefaultCostModel returns latencies representative of the 2016-era
// hardware the paper assumes: ~1 ns SRAM, ~50 ns DRAM.
func DefaultCostModel() CostModel {
	return CostModel{SRAMAccess: 1 * time.Nanosecond, DRAMAccess: 50 * time.Nanosecond}
}

// QueryCost estimates the latency of a query that performs sramAccesses
// reads of the on-chip bit array.
func (m CostModel) QueryCost(sramAccesses int) time.Duration {
	return time.Duration(sramAccesses) * m.SRAMAccess
}

// UpdateCost estimates the latency of an update that performs
// sramAccesses on-chip accesses and dramAccesses off-chip accesses
// (counter maintenance plus B synchronization, Sections 3.3 and 5.3).
func (m CostModel) UpdateCost(sramAccesses, dramAccesses int) time.Duration {
	return time.Duration(sramAccesses)*m.SRAMAccess + time.Duration(dramAccesses)*m.DRAMAccess
}
