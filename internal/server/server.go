// Package server implements the query-serving layer behind the shbfd
// daemon: one logical Shifting Bloom Filter per query kind —
// membership (ShBF_M), association (CShBF_A), multiplicity (CShBF_X) —
// exposed over a batch HTTP/JSON API and backed by the lock-striped
// shards of internal/sharded, so many concurrent clients (the paper's
// receive queues) query in parallel.
//
// Endpoints (all bodies JSON; keys are strings, optionally
// base64-encoded for binary element IDs such as the paper's 13-byte
// 5-tuples):
//
//	POST /v1/membership/add       {"keys": [...]}
//	POST /v1/membership/contains  {"keys": [...]}            → per-key booleans
//	POST /v1/association/add      {"set": 1|2, "keys": [...]}
//	POST /v1/association/remove   {"set": 1|2, "keys": [...]}
//	POST /v1/association/classify {"keys": [...]}            → candidate regions
//	POST /v1/multiplicity/add     {"items": [{"key": k, "count": c}, ...]}
//	POST /v1/multiplicity/remove  {"items": [...]}
//	POST /v1/multiplicity/count   {"keys": [...]}            → per-key counts
//	POST /v1/snapshot                                        → persist all filters
//	POST /v1/rotate                                          → retire the oldest window generation
//	GET  /v1/stats                                           → occupancy, FPR, window, counters
//	GET  /healthz
//
// With Config.WindowGenerations set the three filters run as sliding
// windows (sharded generation rings, internal/window): writes go to
// each filter's head generation and POST /v1/rotate — or shbfd's -tick
// loop — retires the oldest, so answers cover the last G−1..G ticks
// and memory and error rates stay bounded on endless streams. /v1/stats
// then carries per-filter window metadata (ring length, epoch,
// per-generation occupancy).
//
// Persistence is snapshot-based: SaveSnapshot serializes all three
// sharded filters into one file (written atomically), and New reloads
// it at startup, so answers survive restarts; window rings restore
// with their head positions and epochs, and the stats endpoint always
// reads the live (post-restore) filters. See DESIGN.md and
// OPERATIONS.md for how this layer composes with the core encodings.
package server

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"shbf"
	"shbf/internal/core"
	"shbf/internal/sharded"
)

// Config sizes the daemon's three filters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// MembershipBits is the total ShBF_M bit budget across shards.
	MembershipBits int
	// MembershipK is k for the membership filter (must be even).
	MembershipK int
	// AssociationBits is the total CShBF_A bit budget across shards.
	AssociationBits int
	// AssociationK is k for the association filter.
	AssociationK int
	// MultiplicityBits is the total CShBF_X bit budget across shards.
	MultiplicityBits int
	// MultiplicityK is k for the multiplicity filter.
	MultiplicityK int
	// MaxCount is the maximum multiplicity c (the paper uses 57).
	MaxCount int
	// Shards is the shard count per filter (rounded up to a power of
	// two).
	Shards int
	// Seed makes the filters deterministic across processes.
	Seed uint64
	// SnapshotPath, when non-empty, is the file the /v1/snapshot
	// endpoint writes and New loads at startup if it exists.
	SnapshotPath string
	// WindowGenerations, when ≥ 2, runs every filter as a sliding
	// window of that many generations: writes go to the head
	// generation and POST /v1/rotate (or the shbfd -tick loop) retires
	// the oldest, so the daemon answers "seen in the last
	// WindowGenerations−1..WindowGenerations ticks" and its memory and
	// false-positive rate stay bounded no matter how long the stream
	// runs. Zero keeps the classic unbounded filters.
	WindowGenerations int
	// WindowTick is the rotation period recorded in the window specs
	// and driven by shbfd's -tick loop (zero = rotate only on
	// /v1/rotate). Requires WindowGenerations ≥ 2.
	WindowTick time.Duration
}

// DefaultConfig returns a config sized for ~1M members at k = 8
// (m = nk/ln 2 ≈ 11.5M bits ≈ 1.4 MiB per filter kind).
func DefaultConfig() Config {
	return Config{
		MembershipBits:   12 << 20,
		MembershipK:      8,
		AssociationBits:  12 << 20,
		AssociationK:     8,
		MultiplicityBits: 18 << 20,
		MultiplicityK:    8,
		MaxCount:         57,
		Shards:           16,
		Seed:             1,
	}
}

// counters tallies served queries per endpoint group.
type counters struct {
	membershipAdd      atomic.Uint64
	membershipContains atomic.Uint64
	associationUpdate  atomic.Uint64
	associationQuery   atomic.Uint64
	multiplicityUpdate atomic.Uint64
	multiplicityQuery  atomic.Uint64
	snapshots          atomic.Uint64
	rotations          atomic.Uint64
}

// membershipFilter is the serving surface the daemon needs from its
// membership slot; both the classic sharded.Filter and the windowed
// sharded.Window satisfy it (the latter also satisfies shbf.Windowed).
type membershipFilter interface {
	shbf.Filter
	Add(e []byte)
	Contains(e []byte) bool
	AddAll(keys [][]byte) error
	ContainsAll(dst []bool, keys [][]byte) []bool
	ShardStats() []sharded.ShardStat
}

// associationFilter is the association slot's surface
// (sharded.Association or sharded.WindowAssociation).
type associationFilter interface {
	shbf.Filter
	InsertS1(e []byte) error
	InsertS2(e []byte) error
	DeleteS1(e []byte) error
	DeleteS2(e []byte) error
	QueryAll(dst []core.Region, keys [][]byte) []core.Region
	ShardStats() []sharded.AssociationShardStat
}

// multiplicityFilter is the multiplicity slot's surface
// (sharded.Multiplicity or sharded.WindowMultiplicity).
type multiplicityFilter interface {
	shbf.Filter
	Insert(e []byte) error
	Delete(e []byte) error
	Count(e []byte) int
	CountAll(dst []int, keys [][]byte) []int
	ShardStats() []sharded.MultiplicityShardStat
}

// Server owns the three sharded filters and serves them over HTTP.
// All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	mem   membershipFilter
	assoc associationFilter
	mult  multiplicityFilter
	stats counters
	start time.Time
}

// Specs returns the three filter specs the config describes, the form
// the daemon's filters are actually constructed from (via shbf.New).
// With WindowGenerations set they are the sliding-window kinds; the
// window geometry (ring length, tick) travels in the specs and
// therefore in every snapshot envelope.
func (cfg Config) Specs() (mem, assoc, mult shbf.Spec) {
	mem = shbf.Spec{Kind: shbf.KindShardedMembership, M: cfg.MembershipBits,
		K: cfg.MembershipK, Shards: cfg.Shards, Seed: cfg.Seed}
	assoc = shbf.Spec{Kind: shbf.KindShardedAssociation, M: cfg.AssociationBits,
		K: cfg.AssociationK, Shards: cfg.Shards, Seed: cfg.Seed}
	mult = shbf.Spec{Kind: shbf.KindShardedMultiplicity, M: cfg.MultiplicityBits,
		K: cfg.MultiplicityK, C: cfg.MaxCount, Shards: cfg.Shards, Seed: cfg.Seed}
	if cfg.WindowGenerations > 0 {
		for _, s := range []*shbf.Spec{&mem, &assoc, &mult} {
			kind, err := core.WindowKind(s.Kind)
			if err != nil {
				panic(err) // unreachable: the three sharded kinds all window
			}
			s.Kind = kind
			s.Generations = cfg.WindowGenerations
			s.Tick = cfg.WindowTick
		}
	}
	return mem, assoc, mult
}

// New builds the filters from cfg and, when cfg.SnapshotPath names an
// existing file, restores their state from it.
func New(cfg Config) (*Server, error) {
	if cfg.WindowGenerations < 0 {
		return nil, fmt.Errorf("server: negative WindowGenerations %d", cfg.WindowGenerations)
	}
	if cfg.WindowTick != 0 && cfg.WindowGenerations < 2 {
		return nil, fmt.Errorf("server: WindowTick requires WindowGenerations ≥ 2")
	}
	memSpec, assocSpec, multSpec := cfg.Specs()
	memF, err := shbf.New(memSpec)
	if err != nil {
		return nil, fmt.Errorf("server: membership filter: %w", err)
	}
	assocF, err := shbf.New(assocSpec)
	if err != nil {
		return nil, fmt.Errorf("server: association filter: %w", err)
	}
	multF, err := shbf.New(multSpec)
	if err != nil {
		return nil, fmt.Errorf("server: multiplicity filter: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		mem:   memF.(membershipFilter),
		assoc: assocF.(associationFilter),
		mult:  multF.(multiplicityFilter),
		start: time.Now(),
	}
	if cfg.SnapshotPath != "" {
		switch _, err := os.Stat(cfg.SnapshotPath); {
		case err == nil:
			if err := s.LoadSnapshot(cfg.SnapshotPath); err != nil {
				return nil, fmt.Errorf("server: restoring snapshot: %w", err)
			}
			// The snapshot wins over the flags (its envelopes carry
			// their own geometry and window state), so a window-mode
			// mismatch is legal — but it means the operator's flags are
			// not describing what will be served, so say so loudly.
			if wantWin, haveWin := cfg.WindowGenerations >= 2, s.Windowed(); wantWin != haveWin {
				log.Printf("server: snapshot %s overrides window mode: flags say windowed=%v, restored filters are windowed=%v (start from an empty snapshot path to apply the flags)",
					cfg.SnapshotPath, wantWin, haveWin)
			}
		case errors.Is(err, fs.ErrNotExist):
			// First start: nothing to restore.
		default:
			// Anything else (permissions, transient I/O) must not be
			// mistaken for a first start — serving empty and then
			// snapshotting over the existing file would lose state.
			return nil, fmt.Errorf("server: checking snapshot: %w", err)
		}
	}
	return s, nil
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/membership/add", s.handleMembershipAdd)
	mux.HandleFunc("POST /v1/membership/contains", s.handleMembershipContains)
	mux.HandleFunc("POST /v1/association/add", s.handleAssociationAdd)
	mux.HandleFunc("POST /v1/association/remove", s.handleAssociationRemove)
	mux.HandleFunc("POST /v1/association/classify", s.handleAssociationClassify)
	mux.HandleFunc("POST /v1/multiplicity/add", s.handleMultiplicityAdd)
	mux.HandleFunc("POST /v1/multiplicity/remove", s.handleMultiplicityRemove)
	mux.HandleFunc("POST /v1/multiplicity/count", s.handleMultiplicityCount)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/rotate", s.handleRotate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}
