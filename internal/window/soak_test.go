package window

import (
	"fmt"
	"testing"

	"shbf/internal/analytic"
	"shbf/internal/core"
)

// TestSoakWindowFPRBounded is the acceptance soak for the sliding
// window: a stream of fresh keys runs for well over 3G ticks, and at
// every steady-state tick the measured false-positive rate must stay
// at the analytic 1 − (1−f_gen)^G level instead of drifting upward the
// way an append-only filter would. This is the property the window
// subsystem exists for — long-running shbfd deployments keep their
// Equation-1-derived accuracy contract.
func TestSoakWindowFPRBounded(t *testing.T) {
	const (
		g        = 4
		k        = 8
		nPerTick = 3000
		ticks    = 3*g + 6 // > 3G rotations
		probes   = 20000
	)
	// 1.25 bytes/element-ish per generation: a realistic, non-padded
	// sizing where f_gen is small but measurable.
	m := 10 * nPerTick
	w, err := NewMembership(core.Spec{Kind: core.KindWindowMembership, M: m, K: k,
		Generations: g, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	bound := analytic.FPRShBFMWindow(m, nPerTick, k, core.DefaultMaxOffset, g)
	if bound <= 0 || bound >= 0.5 {
		t.Fatalf("degenerate test sizing: bound %g", bound)
	}

	serial := 0
	freshKeys := func(n int, prefix string) [][]byte {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("%s-%09d", prefix, serial))
			serial++
		}
		return keys
	}

	worst := 0.0
	for tick := 1; tick <= ticks; tick++ {
		if err := w.AddAll(freshKeys(nPerTick, "stream")); err != nil {
			t.Fatal(err)
		}
		neg := freshKeys(probes, "probe")
		fp := 0
		for _, e := range neg {
			if w.Contains(e) {
				fp++
			}
		}
		fpr := float64(fp) / float64(len(neg))
		if fpr > worst {
			worst = fpr
		}
		// 1.75× slack covers binomial measurement noise at 20k probes;
		// drift would blow through it within a few ticks (the unbounded
		// filter crosses 10× the bound before tick 3G in the
		// experiment figure).
		if tick >= g && fpr > 1.75*bound {
			t.Fatalf("tick %d: FPR %.5f exceeds 1.75× the window bound %.5f — drift", tick, fpr, bound)
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("soak: %d ticks, worst FPR %.5f vs bound %.5f (ratio %.2f)",
		ticks, worst, bound, worst/bound)

	// Cross-check the resource bound: the ring's footprint never grew.
	wantBytes := g * ((m + core.DefaultMaxOffset - 1 + 63) / 64 * 8)
	if got := w.SizeBytes(); got != wantBytes {
		t.Fatalf("footprint %d bytes after soak, want the constant %d", got, wantBytes)
	}
}
