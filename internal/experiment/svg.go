package experiment

// SVG rendering for figures: cmd/shbench -svg writes one .svg per
// figure so the reproduced curves can be compared with the paper's
// plots visually. Pure stdlib — hand-rolled SVG primitives.

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// svgPalette cycles through distinguishable line colors.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
	"#9467bd", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	svgWidth      = 640
	svgHeight     = 420
	svgMarginL    = 70
	svgMarginR    = 20
	svgMarginT    = 40
	svgMarginB    = 50
	svgLegendLine = 16
)

// WriteSVG renders the figure as a line chart. The y-axis switches to
// log scale automatically when the positive y values span more than two
// decades (the FPR figures), mirroring the paper's log plots.
func (f *Figure) WriteSVG(w io.Writer) error {
	xMin, xMax, yMin, yMax, logY := f.bounds()
	if xMin == xMax {
		xMax = xMin + 1
	}

	plotW := float64(svgWidth - svgMarginL - svgMarginR)
	plotH := float64(svgHeight - svgMarginT - svgMarginB)

	tx := func(x float64) float64 {
		return svgMarginL + (x-xMin)/(xMax-xMin)*plotW
	}
	ty := func(y float64) float64 {
		var frac float64
		if logY {
			frac = (math.Log10(y) - math.Log10(yMin)) / (math.Log10(yMax) - math.Log10(yMin))
		} else {
			frac = (y - yMin) / (yMax - yMin)
		}
		return svgMarginT + plotH - frac*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		svgWidth, svgHeight)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgWidth, svgHeight)

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="13" text-anchor="middle">Figure %s: %s</text>`+"\n",
		svgWidth/2, svgEscape(f.ID), svgEscape(f.Title))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		svgMarginL+int(plotW/2), svgHeight-12, svgEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		svgMarginT+int(plotH/2), svgMarginT+int(plotH/2), svgEscape(f.YLabel))

	// Plot frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		svgMarginL, svgMarginT, plotW, plotH)

	// Ticks and grid.
	for _, x := range linearTicks(xMin, xMax, 6) {
		px := tx(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px, svgMarginT, px, float64(svgMarginT)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px, float64(svgMarginT)+plotH+16, formatNum(x))
	}
	for _, y := range f.yTicks(yMin, yMax, logY) {
		py := ty(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			svgMarginL, py, float64(svgMarginL)+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			svgMarginL-6, py+4, formatTick(y, logY))
	}

	// Series polylines + markers.
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for _, p := range s.Points {
			if logY && p.Y <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(p.X), ty(p.Y)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range s.Points {
			if logY && p.Y <= 0 {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n", tx(p.X), ty(p.Y), color)
		}
	}

	// Legend.
	ly := svgMarginT + 8
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			svgMarginL+8, ly, svgMarginL+28, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", svgMarginL+33, ly+4, svgEscape(s.Name))
		ly += svgLegendLine
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds computes the plot ranges and whether a log y-axis is
// warranted (positive values spanning > 2 decades).
func (f *Figure) bounds() (xMin, xMax, yMin, yMax float64, logY bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	minPosY := math.Inf(1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			xMin, xMax = math.Min(xMin, p.X), math.Max(xMax, p.X)
			yMin, yMax = math.Min(yMin, p.Y), math.Max(yMax, p.Y)
			if p.Y > 0 {
				minPosY = math.Min(minPosY, p.Y)
			}
		}
	}
	if math.IsInf(xMin, 1) {
		return 0, 1, 0, 1, false
	}
	if minPosY > 0 && !math.IsInf(minPosY, 1) && yMax > 0 && yMax/minPosY > 50 {
		logY = true
		yMin = minPosY
	} else if yMin > 0 {
		yMin = 0 // anchor linear plots at zero like the paper's
	}
	if yMin == yMax {
		yMax = yMin + 1
	}
	return xMin, xMax, yMin, yMax, logY
}

// yTicks returns tick positions: decades for log, 5 divisions for
// linear.
func (f *Figure) yTicks(yMin, yMax float64, logY bool) []float64 {
	if !logY {
		return linearTicks(yMin, yMax, 5)
	}
	var ticks []float64
	for d := math.Floor(math.Log10(yMin)); d <= math.Ceil(math.Log10(yMax)); d++ {
		v := math.Pow(10, d)
		if v >= yMin/1.001 && v <= yMax*1.001 {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

// linearTicks returns n+1 evenly spaced values over [lo, hi].
func linearTicks(lo, hi float64, n int) []float64 {
	ticks := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		ticks = append(ticks, lo+(hi-lo)*float64(i)/float64(n))
	}
	return ticks
}

func formatTick(v float64, logY bool) string {
	if logY {
		return fmt.Sprintf("%.0e", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
