package wire

import (
	"bytes"
	"testing"
)

// FuzzShBPDecode feeds arbitrary bytes to both frame decoders: no
// input may panic, and any input a decoder accepts must re-encode into
// a frame the decoder accepts again (decode/encode/decode agreement on
// the visible fields). Truncated and garbage frames must error, which
// the seed corpus exercises directly.
func FuzzShBPDecode(f *testing.F) {
	// Valid frames (length prefix stripped) seed the mutator near the
	// interesting surface.
	seeds := []*Request{
		{Op: OpPing},
		{Op: OpMembershipAdd, Namespace: "default", KeyWidth: 13,
			Keys: [][]byte{bytes.Repeat([]byte{7}, 13)}},
		{Op: OpMembershipContains, Keys: [][]byte{[]byte("k1"), []byte("k2")}},
		{Op: OpAssociationAdd, Set: 1, Keys: [][]byte{[]byte("x")}},
		{Op: OpMultiplicityAdd, Keys: [][]byte{[]byte("x")}, Counts: []int{3}},
		{Op: OpNamespaceCreate, Namespace: "t", Blob: []byte(`{"shards":2}`)},
	}
	for _, req := range seeds {
		buf, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
	}
	// Truncations and bit flips of a valid frame.
	whole := mustRequest(&Request{Op: OpMultiplicityAdd, Namespace: "ns",
		Keys: [][]byte{[]byte("abc"), []byte("defg")}, Counts: []int{1, 2}})[4:]
	for cut := 0; cut < len(whole); cut += 3 {
		f.Add(whole[:cut])
	}
	responses := []*Response{
		{Status: StatusOK, Op: OpMembershipContains, Bools: []bool{true, false, true}},
		{Status: StatusOK, Op: OpRotate, Epoch: 3, Rotated: []string{"membership"}},
		{Status: StatusConflict, Op: OpMultiplicityAdd, Msg: "overflow"},
	}
	for _, resp := range responses {
		buf, err := AppendResponse(nil, resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
	}

	f.Fuzz(func(t *testing.T, frame []byte) {
		var req Request
		if err := DecodeRequest(&req, frame); err == nil {
			// Accepted frames must re-encode and decode identically.
			buf, err := AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			var again Request
			if err := DecodeRequest(&again, buf[4:]); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if again.Op != req.Op || again.Set != req.Set || again.Namespace != req.Namespace ||
				len(again.Keys) != len(req.Keys) || len(again.Counts) != len(req.Counts) {
				t.Fatalf("round trip changed the request: %+v != %+v", again, req)
			}
			for i := range req.Keys {
				if !bytes.Equal(again.Keys[i], req.Keys[i]) {
					t.Fatalf("round trip changed key %d", i)
				}
			}
		}
		var resp Response
		_ = DecodeResponse(&resp, frame) // must not panic
	})
}
