package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shbf/internal/experiment"
)

func TestRunSingleFigure(t *testing.T) {
	dir := t.TempDir()
	cfg := experiment.Quick()
	if err := run("3", dir, cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3a.txt", "fig3a.csv", "fig3b.txt", "fig3b.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing output %s: %v", want, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "wbar,") {
		t.Errorf("csv header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunTable(t *testing.T) {
	dir := t.TempDir()
	cfg := experiment.Quick()
	if err := run("table2", dir, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"iBF", "ShBF_A", "P(clear)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestRunMultipleIDs(t *testing.T) {
	cfg := experiment.Quick()
	if err := run("3,4", "", cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", "", experiment.Quick()); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}

func TestRunnersCoverEveryExperiment(t *testing.T) {
	want := map[string]bool{
		"3": true, "4": true, "7": true, "8": true, "9": true,
		"table2": true, "10": true, "11": true,
		"general": true, "scm": true, "update": true, "updates": true, "zoo": true,
		"costmodel": true, "multiset": true, "skew": true,
	}
	for _, r := range runners {
		delete(want, r.id)
		if r.figs == nil && r.tab == nil {
			t.Errorf("runner %s has no implementation", r.id)
		}
		if r.desc == "" {
			t.Errorf("runner %s has no description", r.id)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing runners: %v", want)
	}
}
