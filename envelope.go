package shbf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"shbf/internal/core"
	"shbf/internal/sharded"
	"shbf/internal/window"
)

// The self-describing envelope wraps any filter's MarshalBinary output
// with enough framing that the reader needs no out-of-band knowledge
// of what was written: 4-byte magic "ShBE", a format version byte, the
// Kind as one byte, the payload length as a uvarint, then the payload
// (the filter's own serialization, which embeds its full geometry and
// seed). [Dump] writes one envelope; [Load] reads one back and returns
// the reconstructed filter as a [Filter], ready to be type-asserted to
// its query surface. Because the length travels in the header,
// envelopes concatenate: [Decode] consumes one envelope from a byte
// slice and returns the rest, which is how the daemon snapshot bundles
// its three filters in one file.
//
// Envelopes store bit arrays and seeds, never keys, so they load
// across releases — but the positions those bits encode are a
// function of the release's hash pipeline. Cross-version bit-pattern
// determinism reset at the version that introduced the one-pass
// digest pipeline (DESIGN.md §1.5): an envelope written by an earlier
// release still decodes, yet its bits describe positions the current
// pipeline will never probe, so such filters must be rebuilt from
// source data rather than loaded.

const (
	envelopeMagic   = "ShBE"
	envelopeVersion = 1

	// maxEnvelopePayload caps the declared payload length so a corrupt
	// header cannot drive a huge allocation.
	maxEnvelopePayload = 1 << 38 // 256 GiB, above any plausible filter
)

// emptyFor allocates the zero filter value for a kind, the receiver
// whose UnmarshalBinary replaces its state with the decoded filter.
func emptyFor(kind Kind) (Filter, error) {
	switch kind {
	case KindMembership:
		return new(core.Membership), nil
	case KindCountingMembership:
		return new(core.CountingMembership), nil
	case KindTShift:
		return new(core.TShift), nil
	case KindAssociation:
		return new(core.Association), nil
	case KindCountingAssociation:
		return new(core.CountingAssociation), nil
	case KindMultiAssociation:
		return new(core.MultiAssociation), nil
	case KindMultiplicity:
		return new(core.Multiplicity), nil
	case KindCountingMultiplicity:
		return new(core.CountingMultiplicity), nil
	case KindSCMSketch:
		return new(core.SCMSketch), nil
	case KindShardedMembership:
		return new(sharded.Filter), nil
	case KindShardedAssociation:
		return new(sharded.Association), nil
	case KindShardedMultiplicity:
		return new(sharded.Multiplicity), nil
	case KindWindowMembership:
		return new(window.Membership), nil
	case KindWindowAssociation:
		return new(window.Association), nil
	case KindWindowMultiplicity:
		return new(window.Multiplicity), nil
	case KindWindowShardedMembership:
		return new(sharded.Window), nil
	case KindWindowShardedAssociation:
		return new(sharded.WindowAssociation), nil
	case KindWindowShardedMultiplicity:
		return new(sharded.WindowMultiplicity), nil
	}
	return nil, fmt.Errorf("shbf: envelope has unknown filter kind %d", uint8(kind))
}

// AppendDump serializes f and appends its envelope to buf — the
// allocation-friendly form of [Dump] for callers assembling multi-
// filter containers (envelopes concatenate; see [Decode]).
func AppendDump(buf []byte, f Filter) ([]byte, error) {
	kind := f.Kind()
	if !kind.Valid() {
		return nil, fmt.Errorf("shbf: cannot dump filter of invalid kind %s", kind)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("shbf: marshaling %s filter: %w", kind, err)
	}
	buf = append(buf, envelopeMagic...)
	buf = append(buf, envelopeVersion, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(len(blob)))
	return append(buf, blob...), nil
}

// Dump writes f to w as one self-describing envelope. Load reads it
// back without being told the kind.
func Dump(w io.Writer, f Filter) error {
	buf, err := AppendDump(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Decode consumes one envelope from the front of data, returning the
// reconstructed filter and the remaining bytes. Envelopes concatenate,
// so repeated Decode calls walk a stream of dumped filters.
func Decode(data []byte) (Filter, []byte, error) {
	if len(data) < len(envelopeMagic)+2 {
		return nil, nil, fmt.Errorf("shbf: truncated envelope header")
	}
	if string(data[:len(envelopeMagic)]) != envelopeMagic {
		return nil, nil, fmt.Errorf("shbf: bad envelope magic %q", data[:len(envelopeMagic)])
	}
	if v := data[len(envelopeMagic)]; v != envelopeVersion {
		return nil, nil, fmt.Errorf("shbf: unsupported envelope version %d", v)
	}
	kind := Kind(data[len(envelopeMagic)+1])
	buf := data[len(envelopeMagic)+2:]
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("shbf: truncated envelope length")
	}
	buf = buf[sz:]
	if n > maxEnvelopePayload {
		return nil, nil, fmt.Errorf("shbf: implausible envelope payload length %d", n)
	}
	if uint64(len(buf)) < n {
		return nil, nil, fmt.Errorf("shbf: envelope payload truncated (%d of %d bytes)", len(buf), n)
	}
	f, err := decodePayload(kind, buf[:n])
	if err != nil {
		return nil, nil, err
	}
	return f, buf[n:], nil
}

// decodePayload reconstructs a filter of the tagged kind from its
// MarshalBinary payload.
func decodePayload(kind Kind, payload []byte) (Filter, error) {
	f, err := emptyFor(kind)
	if err != nil {
		return nil, err
	}
	u, ok := f.(interface{ UnmarshalBinary([]byte) error })
	if !ok {
		return nil, fmt.Errorf("shbf: %s filter does not decode", kind)
	}
	if err := u.UnmarshalBinary(payload); err != nil {
		return nil, fmt.Errorf("shbf: decoding %s filter: %w", kind, err)
	}
	return f, nil
}

// Load reads exactly one dumped filter from r and reconstructs it; the
// envelope's kind tag selects the concrete type, so the caller needs
// no prior knowledge of what was dumped. Trailing bytes after the
// envelope are an error. The header and declared length are validated
// before the payload is read, so a corrupt or non-envelope stream is
// rejected without buffering it.
func Load(r io.Reader) (Filter, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(envelopeMagic)+2)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("shbf: reading envelope header: %w", err)
	}
	if string(hdr[:len(envelopeMagic)]) != envelopeMagic {
		return nil, fmt.Errorf("shbf: bad envelope magic %q", hdr[:len(envelopeMagic)])
	}
	if v := hdr[len(envelopeMagic)]; v != envelopeVersion {
		return nil, fmt.Errorf("shbf: unsupported envelope version %d", v)
	}
	kind := Kind(hdr[len(envelopeMagic)+1])
	if _, err := emptyFor(kind); err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("shbf: reading envelope length: %w", err)
	}
	if n > maxEnvelopePayload {
		return nil, fmt.Errorf("shbf: implausible envelope payload length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("shbf: envelope payload truncated: %w", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("shbf: trailing bytes after envelope")
	}
	return decodePayload(kind, payload)
}
