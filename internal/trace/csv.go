package trace

// CSV import/export so users with real captures can feed them to the
// tools: each record is "srcIP,dstIP,srcPort,dstPort,proto,count"
// (count optional, default 1), e.g.
//
//	10.0.0.1,192.168.1.9,443,51724,6,12
//
// This is the bridge between the paper's private trace format and this
// reproduction's binary traces — export a capture to CSV with standard
// tooling, import it here, and run the same experiments.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseCSV reads flows from CSV (one flow per line; blank lines and
// lines starting with '#' are skipped).
func ParseCSV(r io.Reader) ([]Flow, error) {
	scanner := bufio.NewScanner(r)
	var flows []Flow
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fl, err := parseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		flows = append(flows, fl)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	return flows, nil
}

func parseCSVLine(line string) (Flow, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 5 && len(fields) != 6 {
		return Flow{}, fmt.Errorf("want 5 or 6 fields, got %d", len(fields))
	}
	var fl Flow
	src, err := parseIPv4(strings.TrimSpace(fields[0]))
	if err != nil {
		return Flow{}, fmt.Errorf("source IP: %w", err)
	}
	dst, err := parseIPv4(strings.TrimSpace(fields[1]))
	if err != nil {
		return Flow{}, fmt.Errorf("destination IP: %w", err)
	}
	sport, err := parsePort(strings.TrimSpace(fields[2]))
	if err != nil {
		return Flow{}, fmt.Errorf("source port: %w", err)
	}
	dport, err := parsePort(strings.TrimSpace(fields[3]))
	if err != nil {
		return Flow{}, fmt.Errorf("destination port: %w", err)
	}
	proto, err := strconv.ParseUint(strings.TrimSpace(fields[4]), 10, 8)
	if err != nil {
		return Flow{}, fmt.Errorf("protocol: %w", err)
	}
	count := 1
	if len(fields) == 6 {
		c, err := strconv.Atoi(strings.TrimSpace(fields[5]))
		if err != nil || c < 1 {
			return Flow{}, fmt.Errorf("count %q must be a positive integer", fields[5])
		}
		count = c
	}
	copy(fl.ID[0:4], src[:])
	copy(fl.ID[4:8], dst[:])
	binary.BigEndian.PutUint16(fl.ID[8:10], sport)
	binary.BigEndian.PutUint16(fl.ID[10:12], dport)
	fl.ID[12] = byte(proto)
	fl.Count = count
	return fl, nil
}

func parseIPv4(s string) ([4]byte, error) {
	var ip [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("%q is not dotted-quad", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("octet %q: %w", p, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

func parsePort(s string) (uint16, error) {
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, err
	}
	return uint16(v), nil
}

// WriteCSV writes flows in the ParseCSV format, with a header comment.
func WriteCSV(w io.Writer, flows []Flow) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# srcIP,dstIP,srcPort,dstPort,proto,count"); err != nil {
		return err
	}
	for i := range flows {
		f := &flows[i]
		s, d := f.ID.SrcIP(), f.ID.DstIP()
		if _, err := fmt.Fprintf(bw, "%d.%d.%d.%d,%d.%d.%d.%d,%d,%d,%d,%d\n",
			s[0], s[1], s[2], s[3], d[0], d[1], d[2], d[3],
			f.ID.SrcPort(), f.ID.DstPort(), f.ID.Proto(), f.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}
