package server

import (
	"errors"
	"fmt"
	"net/http"

	"shbf/internal/frozen"
)

// Frozen namespaces. POST /v2/namespaces/{ns}/freeze (and the ShBP
// freeze op) compacts a tenant's membership filter into a read-only
// ShBZ container (internal/frozen) and hands the bytes to the caller —
// the LSM-style handoff: the daemon keeps serving the tenant's reads
// while the container ships to object storage or an embedding host,
// which opens it zero-copy (shbf.OpenFrozen) from a file or mmap
// region. From the first freeze on the namespace is frozen: every
// mutating operation — membership add, association add/remove,
// multiplicity add/remove, merge, rotate — answers 409 Conflict (HTTP)
// or StatusConflict (ShBP), so the served set and the shipped container
// cannot drift apart. Repeating the freeze is idempotent and returns
// the same bytes (nothing can have changed in between).
//
// The frozen flag is process-local state: it is not recorded in
// snapshots, so a daemon restart thaws every namespace (see
// OPERATIONS.md §11). Deleting and recreating the namespace is the
// in-process thaw.

// errNamespaceFrozen reports a write to a frozen namespace (mapped to
// 409/StatusConflict by both transports).
var errNamespaceFrozen = errors.New("namespace is frozen (writes rejected; delete and recreate to thaw)")

// writable gates every mutating handler on the frozen flag — the one
// predicate behind both the HTTP 409 and the wire StatusConflict
// mappings (gate new write paths here, never in one transport only).
func (ns *namespace) writable() error {
	if ns.frozen.Load() {
		return fmt.Errorf("server: namespace %q: %w", ns.name, errNamespaceFrozen)
	}
	return nil
}

// freezeMembership renders the namespace's membership filter as a ShBZ
// container and, on success, marks the namespace frozen. The flag flips
// only after a successful render, so a failed freeze leaves the tenant
// fully writable.
func (ns *namespace) freezeMembership() ([]byte, error) {
	blob, err := frozen.Append(nil, ns.mem)
	if err != nil {
		return nil, fmt.Errorf("server: freezing namespace %q: %w", ns.name, err)
	}
	ns.frozen.Store(true)
	return blob, nil
}

// nsFreeze serves POST /v2/namespaces/{ns}/freeze: the namespace's
// membership filter as a raw ShBZ frozen container, with the namespace
// read-only from this response on.
func (s *Server) nsFreeze(ns *namespace, w http.ResponseWriter, r *http.Request) {
	blob, err := ns.freezeMembership()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}
