package sharded

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"shbf/internal/core"
)

func TestAssociationRegions(t *testing.T) {
	a, err := NewAssociation(1<<18, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(3000, 10)
	s1only, both, s2only := elems[:1000], elems[1000:2000], elems[2000:]
	for _, e := range s1only {
		if err := a.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range both {
		if err := a.InsertS1(e); err != nil {
			t.Fatal(err)
		}
		if err := a.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range s2only {
		if err := a.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}
	if a.N1() != 2000 || a.N2() != 2000 {
		t.Fatalf("N1 = %d, N2 = %d, want 2000, 2000", a.N1(), a.N2())
	}
	// Soundness: the truth region must always be among the candidates.
	for _, e := range s1only {
		if r := a.Query(e); !r.Contains(core.RegionS1Only) {
			t.Fatalf("S1−S2 element answered %v", r)
		}
	}
	for _, e := range both {
		if r := a.Query(e); !r.Contains(core.RegionBoth) {
			t.Fatalf("S1∩S2 element answered %v", r)
		}
	}
	for _, e := range s2only {
		if r := a.Query(e); !r.Contains(core.RegionS2Only) {
			t.Fatalf("S2−S1 element answered %v", r)
		}
	}
}

func TestAssociationDeleteAndMove(t *testing.T) {
	a, err := NewAssociation(1<<16, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("moving-element")
	if err := a.InsertS1(e); err != nil {
		t.Fatal(err)
	}
	if r := a.Query(e); !r.Contains(core.RegionS1Only) {
		t.Fatalf("after InsertS1: %v", r)
	}
	if err := a.InsertS2(e); err != nil {
		t.Fatal(err)
	}
	if r := a.Query(e); !r.Contains(core.RegionBoth) {
		t.Fatalf("after InsertS2: %v", r)
	}
	if err := a.DeleteS1(e); err != nil {
		t.Fatal(err)
	}
	if r := a.Query(e); !r.Contains(core.RegionS2Only) {
		t.Fatalf("after DeleteS1: %v", r)
	}
	if err := a.DeleteS2(e); err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteS2(e); err != core.ErrNotStored {
		t.Fatalf("double delete returned %v, want ErrNotStored", err)
	}
}

func TestAssociationConcurrentUse(t *testing.T) {
	// Run with -race: concurrent inserters into both sets plus readers.
	a, err := NewAssociation(1<<20, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(8000, 11)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(elems); i += workers {
				var err error
				if i%2 == 0 {
					err = a.InsertS1(elems[i])
				} else {
					err = a.InsertS2(elems[i])
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < len(elems); i += workers {
				a.Query(elems[i])
			}
		}(w)
	}
	wg.Wait()
	if got := a.N1() + a.N2(); got != 8000 {
		t.Fatalf("N1+N2 = %d after concurrent inserts, want 8000", got)
	}
	for i, e := range elems {
		truth := core.RegionS1Only
		if i%2 == 1 {
			truth = core.RegionS2Only
		}
		if r := a.Query(e); !r.Contains(truth) {
			t.Fatalf("element %d answered %v, truth %v", i, r, truth)
		}
	}
}

func TestAssociationSnapshotRoundTrip(t *testing.T) {
	a, err := NewAssociation(1<<17, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(2000, 12)
	for i, e := range elems {
		var err error
		switch i % 3 {
		case 0:
			err = a.InsertS1(e)
		case 1:
			err = a.InsertS2(e)
		default:
			if err = a.InsertS1(e); err == nil {
				err = a.InsertS2(e)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Association
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if b.Shards() != a.Shards() || b.N1() != a.N1() || b.N2() != a.N2() {
		t.Fatalf("decoded geometry mismatch: %d/%d/%d vs %d/%d/%d",
			b.Shards(), b.N1(), b.N2(), a.Shards(), a.N1(), a.N2())
	}
	// Identical answers, including updates applied after the restore.
	for _, e := range elems {
		if got, want := b.Query(e), a.Query(e); got != want {
			t.Fatalf("decoded filter answered %v, original %v", got, want)
		}
	}
	if err := b.DeleteS1(elems[0]); err != nil {
		t.Fatalf("post-restore delete: %v", err)
	}
	// Reserialize and compare against a fresh marshal of the decoded
	// state: the round trip must be stable.
	blob2, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Association
	if err := c.UnmarshalBinary(blob2); err != nil {
		t.Fatal(err)
	}
	blob3, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob2, blob3) {
		t.Fatal("marshal → unmarshal → marshal is not stable")
	}
}

func TestAssociationSnapshotRejectsWrongKind(t *testing.T) {
	f, err := New(1<<14, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var a Association
	if err := a.UnmarshalBinary(blob); err == nil {
		t.Fatal("association decoded a membership snapshot")
	}
}
