// Package server implements the query-serving layer behind the shbfd
// daemon: one logical Shifting Bloom Filter per query kind —
// membership (ShBF_M), association (CShBF_A), multiplicity (CShBF_X) —
// exposed over a batch HTTP/JSON API and backed by the lock-striped
// shards of internal/sharded, so many concurrent clients (the paper's
// receive queues) query in parallel.
//
// Endpoints (all bodies JSON; keys are strings, optionally
// base64-encoded for binary element IDs such as the paper's 13-byte
// 5-tuples):
//
//	POST /v1/membership/add       {"keys": [...]}
//	POST /v1/membership/contains  {"keys": [...]}            → per-key booleans
//	POST /v1/association/add      {"set": 1|2, "keys": [...]}
//	POST /v1/association/remove   {"set": 1|2, "keys": [...]}
//	POST /v1/association/classify {"keys": [...]}            → candidate regions
//	POST /v1/multiplicity/add     {"items": [{"key": k, "count": c}, ...]}
//	POST /v1/multiplicity/remove  {"items": [...]}
//	POST /v1/multiplicity/count   {"keys": [...]}            → per-key counts
//	POST /v1/snapshot                                        → persist all filters
//	GET  /v1/stats                                           → occupancy, FPR, counters
//	GET  /healthz
//
// Persistence is snapshot-based: SaveSnapshot serializes all three
// sharded filters into one file (written atomically), and New reloads
// it at startup, so answers survive restarts. See DESIGN.md for how
// this layer composes with the core encodings.
package server

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"shbf"
	"shbf/internal/sharded"
)

// Config sizes the daemon's three filters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// MembershipBits is the total ShBF_M bit budget across shards.
	MembershipBits int
	// MembershipK is k for the membership filter (must be even).
	MembershipK int
	// AssociationBits is the total CShBF_A bit budget across shards.
	AssociationBits int
	// AssociationK is k for the association filter.
	AssociationK int
	// MultiplicityBits is the total CShBF_X bit budget across shards.
	MultiplicityBits int
	// MultiplicityK is k for the multiplicity filter.
	MultiplicityK int
	// MaxCount is the maximum multiplicity c (the paper uses 57).
	MaxCount int
	// Shards is the shard count per filter (rounded up to a power of
	// two).
	Shards int
	// Seed makes the filters deterministic across processes.
	Seed uint64
	// SnapshotPath, when non-empty, is the file the /v1/snapshot
	// endpoint writes and New loads at startup if it exists.
	SnapshotPath string
}

// DefaultConfig returns a config sized for ~1M members at k = 8
// (m = nk/ln 2 ≈ 11.5M bits ≈ 1.4 MiB per filter kind).
func DefaultConfig() Config {
	return Config{
		MembershipBits:   12 << 20,
		MembershipK:      8,
		AssociationBits:  12 << 20,
		AssociationK:     8,
		MultiplicityBits: 18 << 20,
		MultiplicityK:    8,
		MaxCount:         57,
		Shards:           16,
		Seed:             1,
	}
}

// counters tallies served queries per endpoint group.
type counters struct {
	membershipAdd      atomic.Uint64
	membershipContains atomic.Uint64
	associationUpdate  atomic.Uint64
	associationQuery   atomic.Uint64
	multiplicityUpdate atomic.Uint64
	multiplicityQuery  atomic.Uint64
	snapshots          atomic.Uint64
}

// Server owns the three sharded filters and serves them over HTTP.
// All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	mem   *sharded.Filter
	assoc *sharded.Association
	mult  *sharded.Multiplicity
	stats counters
	start time.Time
}

// Specs returns the three filter specs the config describes, the form
// the daemon's filters are actually constructed from (via shbf.New).
func (cfg Config) Specs() (mem, assoc, mult shbf.Spec) {
	mem = shbf.Spec{Kind: shbf.KindShardedMembership, M: cfg.MembershipBits,
		K: cfg.MembershipK, Shards: cfg.Shards, Seed: cfg.Seed}
	assoc = shbf.Spec{Kind: shbf.KindShardedAssociation, M: cfg.AssociationBits,
		K: cfg.AssociationK, Shards: cfg.Shards, Seed: cfg.Seed}
	mult = shbf.Spec{Kind: shbf.KindShardedMultiplicity, M: cfg.MultiplicityBits,
		K: cfg.MultiplicityK, C: cfg.MaxCount, Shards: cfg.Shards, Seed: cfg.Seed}
	return mem, assoc, mult
}

// New builds the filters from cfg and, when cfg.SnapshotPath names an
// existing file, restores their state from it.
func New(cfg Config) (*Server, error) {
	memSpec, assocSpec, multSpec := cfg.Specs()
	memF, err := shbf.New(memSpec)
	if err != nil {
		return nil, fmt.Errorf("server: membership filter: %w", err)
	}
	assocF, err := shbf.New(assocSpec)
	if err != nil {
		return nil, fmt.Errorf("server: association filter: %w", err)
	}
	multF, err := shbf.New(multSpec)
	if err != nil {
		return nil, fmt.Errorf("server: multiplicity filter: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		mem:   memF.(*sharded.Filter),
		assoc: assocF.(*sharded.Association),
		mult:  multF.(*sharded.Multiplicity),
		start: time.Now(),
	}
	if cfg.SnapshotPath != "" {
		switch _, err := os.Stat(cfg.SnapshotPath); {
		case err == nil:
			if err := s.LoadSnapshot(cfg.SnapshotPath); err != nil {
				return nil, fmt.Errorf("server: restoring snapshot: %w", err)
			}
		case errors.Is(err, fs.ErrNotExist):
			// First start: nothing to restore.
		default:
			// Anything else (permissions, transient I/O) must not be
			// mistaken for a first start — serving empty and then
			// snapshotting over the existing file would lose state.
			return nil, fmt.Errorf("server: checking snapshot: %w", err)
		}
	}
	return s, nil
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/membership/add", s.handleMembershipAdd)
	mux.HandleFunc("POST /v1/membership/contains", s.handleMembershipContains)
	mux.HandleFunc("POST /v1/association/add", s.handleAssociationAdd)
	mux.HandleFunc("POST /v1/association/remove", s.handleAssociationRemove)
	mux.HandleFunc("POST /v1/association/classify", s.handleAssociationClassify)
	mux.HandleFunc("POST /v1/multiplicity/add", s.handleMultiplicityAdd)
	mux.HandleFunc("POST /v1/multiplicity/remove", s.handleMultiplicityRemove)
	mux.HandleFunc("POST /v1/multiplicity/count", s.handleMultiplicityCount)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}
