package counters

import (
	"math/rand"
	"testing"
)

func TestArrayRoundTrip(t *testing.T) {
	for _, width := range []uint{1, 4, 6, 13, 32, 64} {
		a := New(500, width)
		rng := rand.New(rand.NewSource(int64(width)))
		for i := 0; i < 500; i++ {
			a.Set(i, rng.Uint64()&a.Max())
		}
		// Force an overflow so the tally round-trips too.
		a.Set(0, a.Max())
		a.Inc(0)

		got, rest, err := DecodeArray(a.AppendBinary(nil))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(rest) != 0 {
			t.Fatalf("width %d: %d leftover bytes", width, len(rest))
		}
		if got.Len() != 500 || got.Width() != width {
			t.Fatalf("width %d: decoded geometry %d/%d", width, got.Len(), got.Width())
		}
		if got.Overflows() != a.Overflows() {
			t.Fatalf("width %d: overflow tally %d vs %d", width, got.Overflows(), a.Overflows())
		}
		for i := 0; i < 500; i++ {
			if got.Peek(i) != a.Peek(i) {
				t.Fatalf("width %d: counter %d differs", width, i)
			}
		}
	}
}

func TestDecodeArrayRejectsCorrupt(t *testing.T) {
	a := New(100, 4)
	a.Set(3, 7)
	buf := a.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":      {},
		"truncated":  buf[:len(buf)-3],
		"zero count": {0x00, 0x04, 0x00},
		"bad width":  {0x64, 0x00, 0x00}, // width 0
	}
	for name, c := range cases {
		if _, _, err := DecodeArray(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
