package main

import (
	"os"
	"path/filepath"
	"testing"

	"shbf/internal/trace"
)

func writeTrace(t *testing.T, path string, n, maxCount int, seed int64) {
	t.Helper()
	gen := trace.NewGenerator(seed)
	flows := gen.UniformMultiset(n, maxCount)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, flows); err != nil {
		t.Fatal(err)
	}
}

func TestRunMemberMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 5000, 57, 1)
	if err := run("member", path, "", 0, 8, 57, 50000, 1); err != nil {
		t.Fatal(err)
	}
	// Explicit m as well.
	if err := run("member", path, "", 80000, 8, 57, 20000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 3000, 30, 2)
	if err := run("mult", path, "", 0, 8, 57, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunAssocMode(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.bin")
	p2 := filepath.Join(dir, "b.bin")
	writeTrace(t, p1, 3000, 5, 3)
	writeTrace(t, p2, 3000, 5, 4)
	if err := run("assoc", p1, p2, 0, 8, 57, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 100, 5, 5)

	if err := run("member", "", "", 0, 8, 57, 100, 1); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run("bogus", path, "", 0, 8, 57, 100, 1); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run("assoc", path, "", 0, 8, 57, 100, 1); err == nil {
		t.Error("assoc without -trace2 accepted")
	}
	if err := run("member", filepath.Join(dir, "missing.bin"), "", 0, 8, 57, 100, 1); err == nil {
		t.Error("missing trace file accepted")
	}
	// Invalid geometry must surface the constructor error.
	if err := run("member", path, "", -5, 8, 57, 100, 1); err == nil {
		t.Error("negative m accepted")
	}
}

func TestRunMultCapsCounts(t *testing.T) {
	// Trace counts above c must be clamped, not rejected.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 500, 57, 6)
	if err := run("mult", path, "", 0, 6, 10, 0, 1); err != nil {
		t.Fatalf("clamping failed: %v", err)
	}
}

func TestRunPlan(t *testing.T) {
	if err := runPlan("member", 100000, 57, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := runPlan("assoc", 100000, 57, 0.99); err != nil {
		t.Fatal(err)
	}
	if err := runPlan("mult", 100000, 57, 0.95); err != nil {
		t.Fatal(err)
	}
	if err := runPlan("bogus", 100, 57, 0.5); err == nil {
		t.Error("unknown plan kind accepted")
	}
	if err := runPlan("member", 0, 57, 0.5); err == nil {
		t.Error("invalid n accepted")
	}
}
