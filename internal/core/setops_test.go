package core

import (
	"math"
	"testing"
)

func TestUnionContainsBothSets(t *testing.T) {
	const m, k = 20000, 8
	seed := uint64(5)
	a := mustMembership(t, m, k, WithSeed(seed))
	b := mustMembership(t, m, k, WithSeed(seed))
	setA := genElements(400, 1)
	setB := genDisjoint(400, 2)
	for _, e := range setA {
		a.Add(e)
	}
	for _, e := range setB {
		b.Add(e)
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	for _, e := range setA {
		if !a.Contains(e) {
			t.Fatal("union lost an element of A")
		}
	}
	for _, e := range setB {
		if !a.Contains(e) {
			t.Fatal("union lost an element of B")
		}
	}
	if a.N() != 800 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestUnionEqualsDirectBuild(t *testing.T) {
	// Union of two filters must be bit-identical to one filter holding
	// both sets.
	const m, k = 8000, 6
	seed := uint64(7)
	a := mustMembership(t, m, k, WithSeed(seed))
	b := mustMembership(t, m, k, WithSeed(seed))
	direct := mustMembership(t, m, k, WithSeed(seed))
	setA := genElements(200, 3)
	setB := genDisjoint(200, 4)
	for _, e := range setA {
		a.Add(e)
		direct.Add(e)
	}
	for _, e := range setB {
		b.Add(e)
		direct.Add(e)
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.bits.Equal(direct.bits) {
		t.Fatal("union differs from direct construction")
	}
}

func TestUnionIncompatible(t *testing.T) {
	a := mustMembership(t, 1000, 4, WithSeed(1))
	for _, other := range []*Membership{
		mustMembership(t, 2000, 4, WithSeed(1)),                    // m differs
		mustMembership(t, 1000, 6, WithSeed(1)),                    // k differs
		mustMembership(t, 1000, 4, WithSeed(2)),                    // seed differs
		mustMembership(t, 1000, 4, WithSeed(1), WithMaxOffset(21)), // w̄ differs
	} {
		if err := a.Union(other); err == nil {
			t.Fatal("incompatible union accepted")
		}
	}
	if a.FillRatio() != 0 {
		t.Fatal("failed union mutated the filter")
	}
}

func TestIntersectKeepsCommonElements(t *testing.T) {
	const m, k = 20000, 8
	seed := uint64(9)
	a := mustMembership(t, m, k, WithSeed(seed))
	b := mustMembership(t, m, k, WithSeed(seed))
	common := genElements(150, 5)
	onlyA := genDisjoint(150, 6)
	for _, e := range common {
		a.Add(e)
		b.Add(e)
	}
	for _, e := range onlyA {
		a.Add(e)
	}
	if err := a.Intersect(b); err != nil {
		t.Fatal(err)
	}
	// No false negatives on the true intersection.
	for _, e := range common {
		if !a.Contains(e) {
			t.Fatal("intersection lost a common element")
		}
	}
	// Elements only in A are (almost always) gone.
	gone := 0
	for _, e := range onlyA {
		if !a.Contains(e) {
			gone++
		}
	}
	if gone < 140 {
		t.Fatalf("only %d/150 exclusive elements removed by intersection", gone)
	}
}

func TestEstimateN(t *testing.T) {
	const m, k = 50000, 8
	f := mustMembership(t, m, k)
	for _, n := range []int{500, 1000, 2000, 4000} {
		f.Reset()
		for _, e := range genElements(n, int64(n)) {
			f.Add(e)
		}
		est := f.EstimateN()
		if math.Abs(float64(est-n))/float64(n) > 0.05 {
			t.Fatalf("n=%d: EstimateN = %d (>5%% off)", n, est)
		}
	}
	// Empty filter estimates zero.
	f.Reset()
	if got := f.EstimateN(); got != 0 {
		t.Fatalf("empty EstimateN = %d", got)
	}
}

func TestBitvecOrAndPanicOnMismatch(t *testing.T) {
	a := mustMembership(t, 1000, 4)
	b := mustMembership(t, 1500, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Or did not panic")
		}
	}()
	a.bits.Or(b.bits)
}
