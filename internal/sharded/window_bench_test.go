package sharded

import (
	"fmt"
	"testing"

	"shbf/internal/core"
)

// Sharded window benchmarks: the batch paths take each shard lock once
// per batch and fan each key's cached digest across that shard's ring,
// so the per-key cost tracks the monolithic window's plus the lock
// amortization. CI runs these at -benchtime=1x as a smoke test.

func benchWindow(b *testing.B, g int) *Window {
	b.Helper()
	w, err := NewWindow(core.Spec{Kind: core.KindWindowShardedMembership, M: 1 << 22, K: 8,
		Shards: 16, Generations: g, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchWindowKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%08d", i)[:13])
	}
	return keys
}

// BenchmarkWindowShardedContainsAll measures the sharded batch query
// per key at steady state, negatives (full-ring probes).
func BenchmarkWindowShardedContainsAll(b *testing.B) {
	members := benchWindowKeys(1024)
	negatives := make([][]byte, 1024)
	for i := range negatives {
		negatives[i] = []byte(fmt.Sprintf("absent-no-%06d", i)[:13])
	}
	for _, g := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			w := benchWindow(b, g)
			for tick := 0; tick < g; tick++ {
				if err := w.AddAll(members); err != nil {
					b.Fatal(err)
				}
				if err := w.Rotate(); err != nil {
					b.Fatal(err)
				}
			}
			dst := make([]bool, len(negatives))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = w.ContainsAll(dst, negatives)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(negatives)), "ns/key")
		})
	}
}

// BenchmarkWindowShardedRotate measures a whole-window rotation (16
// shards × one in-place generation clear).
func BenchmarkWindowShardedRotate(b *testing.B) {
	w := benchWindow(b, 4)
	if err := w.AddAll(benchWindowKeys(4096)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Rotate(); err != nil {
			b.Fatal(err)
		}
	}
}
