// Package core implements the Shifting Bloom Filter (ShBF) framework of
// Yang et al., "A Shifting Bloom Filter Framework for Set Queries"
// (VLDB 2016) — the paper's primary contribution.
//
// The framework encodes, for each element e of a set, two kinds of
// information: existence information in k hash positions h_i(e) % m, and
// auxiliary information in a location offset o(e). Bits are set at
// positions h_i(e)%m + o(e); queries read a small window of consecutive
// bits per position and recover both kinds of information from where the
// 1s fall (paper Figure 1). Because the maximum offset w̄ is chosen ≤
// w−7 for machine word size w, each window costs exactly one memory
// access (Section 3.1).
//
// Three instantiations are provided, matching the paper's sections:
//
//   - Membership (ShBF_M, Section 3): the offset is pure extra
//     randomness, halving hash computations and memory accesses versus a
//     standard Bloom filter at nearly identical false-positive rate.
//     TShift generalizes it to t offsets per group (Section 3.6), and
//     CountingMembership (CShBF_M, Section 3.3) adds deletion.
//
//   - Association (ShBF_A, Section 4): the offset encodes which of two
//     sets an element belongs to (S1−S2 ↦ 0, S1∩S2 ↦ o1, S2−S1 ↦ o2),
//     answering "which set(s) is e in?" with zero false positives among
//     its seven outcome types. CountingAssociation (CShBF_A, Section
//     4.3) adds dynamic updates.
//
//   - Multiplicity (ShBF_X, Section 5): the offset encodes the
//     element's count c(e)−1 in a multi-set. CountingMultiplicity
//     (CShBF_X, Section 5.3) adds updates, in both the paper's
//     no-false-negative mode (hash-table backed, Section 5.3.2) and the
//     false-negative-prone mode it warns about (Section 5.3.1).
//     SCMSketch (Section 5.5) applies the shifting idea to the
//     count-min sketch.
//
// All types take elements as []byte (the evaluation uses 13-byte 5-tuple
// flow IDs) and are not safe for concurrent use: the paper's query loop
// is single-threaded and the structures keep per-instance scratch
// buffers to keep the hot path allocation-free.
package core

import (
	"errors"

	"shbf/internal/memmodel"
)

// WordBits is the machine word size w the offset bounds are derived
// from. The paper's evaluation uses 64-bit words (Section 3.4.2).
const WordBits = memmodel.WordBits

// DefaultMaxOffset is the paper's recommended maximum offset value
// w̄ = w − 7 for 64-bit architectures, which guarantees both bits of a
// (base, base+offset) pair are read in one memory access and — per
// Section 3.4.2 — makes the ShBF_M false-positive rate essentially equal
// to a standard Bloom filter's (w̄ ≥ 20 suffices; w̄ = 57 is used).
const DefaultMaxOffset = WordBits - 7

// Errors returned by the counting variants.
var (
	// ErrNotStored is returned by deletes of elements whose encoding is
	// not present (some corresponding counter is already zero). Deleting
	// a never-inserted element is a caller bug in every scheme of the
	// paper; the counting filters detect it instead of corrupting state.
	ErrNotStored = errors.New("core: element not stored")

	// ErrCountOverflow is returned when an insert would push an
	// element's multiplicity beyond the filter's configured maximum c.
	ErrCountOverflow = errors.New("core: multiplicity exceeds configured maximum c")

	// ErrCounterSaturated is returned when an update would overflow a
	// fixed-width counter.
	ErrCounterSaturated = errors.New("core: counter saturated")
)

// config carries the options shared by all filters in this package.
type config struct {
	seed         uint64
	maxOffset    int
	counter      *memmodel.Counter
	counterWidth uint
	unsafeUpdate bool
}

func defaultConfig() config {
	return config{
		seed:         0x5b8f_0000,
		maxOffset:    DefaultMaxOffset,
		counterWidth: 4, // "in most applications, 4 bits for a counter are enough" (§3.3)
	}
}

// Option customizes filter construction.
type Option func(*config)

// ResolveSeed returns the hash seed the given options select — the
// package default when no WithSeed option is present. Wrappers that
// derive per-instance seeds (internal/sharded) use it to mix the
// caller's seed into their derivation.
func ResolveSeed(opts ...Option) uint64 {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.seed
}

// WithSeed sets the seed from which the filter derives its independent
// hash functions. Filters built with the same parameters and seed are
// identical; experiments vary the seed across trials.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithMaxOffset overrides the maximum offset value w̄. The paper uses
// w̄ = 25 on 32-bit and w̄ = 57 on 64-bit architectures and shows w̄ ≥ 20
// already matches the Bloom-filter FPR (Figure 3). Values are clamped by
// validation in each constructor; the window read stays a single memory
// access only for w̄ ≤ w−7.
func WithMaxOffset(wbar int) Option {
	return func(c *config) { c.maxOffset = wbar }
}

// WithAccessCounter attaches a memory-access counter charged by the
// filter's bit array per the Section 3.1 model. Used to reproduce the
// "# memory accesses per query" figures.
func WithAccessCounter(mc *memmodel.Counter) Option {
	return func(c *config) { c.counter = mc }
}

// WithCounterWidth sets the bit width of the counters in counting
// variants (default 4, per Section 3.3).
func WithCounterWidth(bits uint) Option {
	return func(c *config) { c.counterWidth = bits }
}

// WithUnsafeUpdates selects the Section 5.3.1 update mode for
// CountingMultiplicity: the current multiplicity is learned by querying
// the bit array B instead of a backing hash table. This saves the
// off-chip table at the cost of possible false negatives, exactly as the
// paper describes; the default is the no-false-negative mode of Section
// 5.3.2.
func WithUnsafeUpdates() Option {
	return func(c *config) { c.unsafeUpdate = true }
}
