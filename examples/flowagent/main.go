// Streaming-ingest topology walkthrough: edge agents → forwarder →
// daemon over real loopback UDP, the deployment shape of the paper's
// flow-telemetry scenario (packet taps at the edge, filters answering
// membership at the core — see internal/ingest and OPERATIONS.md §14).
//
// Two leaf agents feed a forwarding agent: one ships raw keys as
// packed ShBU add-batches through a deliberately lossy path (every
// fifth datagram dropped in flight), the other pre-aggregates into a
// local filter and ships fragmented ShBE envelopes with duplicated
// datagrams. The forwarder union-merges both into its own filter and
// flushes one cumulative envelope to an in-process shbfd-style server.
//
// The example is self-asserting and exits non-zero if the topology
// misbehaves: every key the daemon acked must answer present (filters
// cannot un-see a merged key), and the receiver-side loss accounting
// must equal the drops actually injected — UDP loss is measured, not
// silent.
//
// Run with: go run ./examples/flowagent
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"shbf"
	"shbf/client"
	"shbf/internal/ingest"
	"shbf/internal/server"
)

// dropEveryN forwards writes to a UDP conn, dropping every n-th
// datagram to simulate in-flight loss.
type dropEveryN struct {
	conn net.Conn
	n    int

	mu      sync.Mutex
	writes  int
	dropped int
}

func (d *dropEveryN) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	if d.n > 0 && d.writes%d.n == 0 {
		d.dropped++
		return len(p), nil // swallowed in flight
	}
	return d.conn.Write(p)
}

func main() {
	const (
		bits   = 1 << 18
		k      = 8
		shards = 4
		seed   = 42
	)
	srv, err := server.New(server.Config{
		MembershipBits: bits, MembershipK: k,
		AssociationBits: 1 << 18, AssociationK: k,
		MultiplicityBits: 1 << 19, MultiplicityK: k, MaxCount: 16,
		Shards: shards, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	daemonPC := listen()
	go srv.ServeShBU(daemonPC)
	fmt.Printf("daemon: shbu ingest on %s\n", daemonPC.LocalAddr())

	newFilter := func() shbf.Filter {
		f, err := shbf.NewShardedMembership(bits, k, shards, shbf.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	// The forwarder: an envelope-mode agent (its filter matches the
	// daemon's geometry) fed by its own UDP listener.
	fwdPC := listen()
	fwdAgent, err := ingest.NewAgent(dial(daemonPC), ingest.AgentConfig{
		Namespace: server.DefaultNamespace, Source: 100,
		Mode: ingest.ModeEnvelope, Filter: newFilter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fwdRecv := ingest.NewReceiver(ingest.NewForwarder(fwdAgent))
	go func() {
		buf := make([]byte, ingest.MaxDatagram)
		for {
			n, _, err := fwdPC.ReadFrom(buf)
			if err != nil {
				return
			}
			fwdRecv.Process(buf[:n])
		}
	}()
	fmt.Printf("forwarder: listening on %s, flushing envelopes upstream\n", fwdPC.LocalAddr())

	// Leaf 1: raw keys in one-datagram batches, every 5th dropped.
	lossy := &dropEveryN{conn: dial(fwdPC), n: 5}
	leaf1, err := ingest.NewAgent(lossy, ingest.AgentConfig{
		Namespace: server.DefaultNamespace, Source: 1, Mode: ingest.ModeKeys,
	})
	if err != nil {
		log.Fatal(err)
	}
	const groups, groupSize = 40, 25
	var delivered [][]byte
	for g := 0; g < groups; g++ {
		batch := make([][]byte, groupSize)
		for i := range batch {
			batch[i] = []byte(fmt.Sprintf("flow-%03d-%03d", g, i))
		}
		if err := leaf1.AddAll(batch); err != nil {
			log.Fatal(err)
		}
		if err := leaf1.Flush(); err != nil { // one datagram per group
			log.Fatal(err)
		}
		if lossy.writes%lossy.n != 0 { // this group survived
			delivered = append(delivered, batch...)
		}
	}
	// A final heartbeat flush that survives: loss is measured from
	// sequence gaps, so a drop is only visible once a *later* datagram
	// arrives. (Agents flushing on an interval get this for free.)
	for lossy.writes%lossy.n == lossy.n-1 { // next write would be dropped
		lossy.writes++
	}
	heartbeat := [][]byte{[]byte("leaf1-heartbeat")}
	if err := leaf1.AddAll(heartbeat); err != nil {
		log.Fatal(err)
	}
	if err := leaf1.Flush(); err != nil {
		log.Fatal(err)
	}
	delivered = append(delivered, heartbeat...)
	fmt.Printf("leaf1 (keys mode): %d keys in %d batches, %d batches dropped in flight\n",
		groups*groupSize, groups, lossy.dropped)

	// Leaf 2: pre-aggregated envelope flush with duplicated datagrams —
	// duplicates must be detected, not double-merged (merges are
	// idempotent anyway; the accounting still has to see them).
	leaf2Conn := dial(fwdPC)
	leaf2, err := ingest.NewAgent(doubleWriter{leaf2Conn}, ingest.AgentConfig{
		Namespace: server.DefaultNamespace, Source: 2,
		Mode: ingest.ModeEnvelope, Filter: newFilter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := leaf2.Add([]byte(fmt.Sprintf("agg-flow-%05d", i))); err != nil {
			log.Fatal(err)
		}
		delivered = append(delivered, []byte(fmt.Sprintf("agg-flow-%05d", i)))
	}
	if err := leaf2.Flush(); err != nil {
		log.Fatal(err)
	}
	leaf2Sent := leaf2.Stats().DatagramsSent
	fmt.Printf("leaf2 (envelope mode): 3000 keys as %d envelope fragments, each sent twice\n", leaf2Sent)

	// Wait for the forwarder to absorb everything that survived, then
	// assert its accounting matches the injected faults exactly.
	wantBatches := uint64(groups + 1 - lossy.dropped) // +1: the heartbeat
	await("forwarder ingest", func() bool {
		st := fwdRecv.Stats()
		return st.AppliedBatch == wantBatches &&
			st.AppliedEnvelope == leaf2Sent &&
			st.Dropped[ingest.DropDuplicate] == leaf2Sent
	})
	st := fwdRecv.Stats()
	if st.Lost != uint64(lossy.dropped) {
		log.Fatalf("FAIL: forwarder measured %d lost datagrams, %d were dropped", st.Lost, lossy.dropped)
	}
	fmt.Printf("forwarder accounting: %d batches + %d fragments applied, "+
		"%d duplicates refused, %d lost (loss ratio %.1f%%) — matches injection\n",
		st.AppliedBatch, st.AppliedEnvelope, st.Dropped[ingest.DropDuplicate],
		st.Lost, 100*st.LossRatio())

	// One cumulative flush ships the union of both leaves upstream.
	if err := fwdAgent.Flush(); err != nil {
		log.Fatal(err)
	}
	await("daemon merge", func() bool { return srv.UDPStats().MergeBytes > 0 })

	// No false negatives: every delivered key answers present, queried
	// back through the daemon's real HTTP API.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	c, err := client.Dial("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	present, err := c.Namespace(server.DefaultNamespace).Set().Check(delivered)
	if err != nil {
		log.Fatal(err)
	}
	for i, ok := range present {
		if !ok {
			log.Fatalf("FAIL: daemon-acked key %q answers absent", delivered[i])
		}
	}
	fmt.Printf("daemon: all %d delivered keys answer present — zero false negatives\n", len(delivered))
	fmt.Println("OK")
}

// doubleWriter sends every datagram twice (duplicate injection).
type doubleWriter struct{ conn net.Conn }

func (d doubleWriter) Write(p []byte) (int, error) {
	if _, err := d.conn.Write(p); err != nil {
		return 0, err
	}
	return d.conn.Write(p)
}

func listen() net.PacketConn {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return pc
}

func dial(pc net.PacketConn) net.Conn {
	c, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func await(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("FAIL: timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
