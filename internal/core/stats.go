package core

// This file adds the occupancy/geometry accessors the serving layer
// (internal/sharded, internal/server) reads for its stats reporting.
// They complement the construction-time accessors defined next to each
// type.

// M returns the base array size in bits.
func (a *CountingAssociation) M() int { return a.m }

// K returns the number of bit positions per element.
func (a *CountingAssociation) K() int { return a.k }

// MaxOffset returns the maximum offset value w̄.
func (a *CountingAssociation) MaxOffset() int { return a.wbar }

// SizeBytes returns the combined footprint of the query-side bit array
// B and the counter array C (the off-chip hash tables are excluded, as
// in the paper's on-chip accounting).
func (a *CountingAssociation) SizeBytes() int {
	return a.bits.SizeBytes() + a.counts.SizeBytes()
}

// FillRatio returns the fraction of set bits in the query-side array B.
func (a *CountingAssociation) FillRatio() float64 { return a.bits.FillRatio() }

// M returns the base array size in bits.
func (f *CountingMultiplicity) M() int { return f.m }

// K returns the number of bit positions per element.
func (f *CountingMultiplicity) K() int { return f.k }

// N returns the number of distinct stored elements, tracked exactly by
// the backing hash table. In the unsafe update mode (Section 5.3.1)
// there is no backing table and N returns -1.
func (f *CountingMultiplicity) N() int {
	if f.table == nil {
		return -1
	}
	return f.table.Len()
}

// FillRatio returns the fraction of set bits in the query-side array B.
func (f *CountingMultiplicity) FillRatio() float64 { return f.bits.FillRatio() }
