package window

import (
	"time"

	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Membership is the sliding-window membership filter: a generation
// ring of ShBF_M filters sharing one Spec. Add writes the head
// generation; Contains ORs the probe across every generation, newest
// first, so an element answers true for the G−1..G ticks after its
// last insertion and then expires. False positives follow the window
// bound 1 − (1−f)^G (analytic.FPRWindow) where f is one generation's
// Equation-1 rate. Not safe for concurrent use — see
// sharded.Window for the lock-striped composition.
type Membership struct {
	rot      *Rotator[*core.Membership]
	dscratch []hashing.Digest
}

// NewMembership builds the window from its Spec (Kind
// KindWindowMembership; M, K, MaxOffset and Seed describe each
// generation, Generations the ring length, Tick the rotation period).
// Total memory is Generations × one ShBF_M of M bits.
func NewMembership(spec core.Spec) (*Membership, error) {
	if err := checkSpec(spec, core.KindWindowMembership); err != nil {
		return nil, err
	}
	fresh := func() (*core.Membership, error) {
		return core.NewMembership(spec.M, spec.K, spec.Options()...)
	}
	// ShBF_M clears in place, so rotation generates no garbage.
	recycle := func(f *core.Membership) (*core.Membership, error) {
		f.Reset()
		return f, nil
	}
	rot, err := NewRotator(spec.Generations, spec.Tick, fresh, recycle)
	if err != nil {
		return nil, err
	}
	return &Membership{rot: rot}, nil
}

// Add inserts e into the head generation: e stays answerable until the
// generation holding it is retired, G rotations later.
func (w *Membership) Add(e []byte) {
	w.rot.Head().Add(e)
}

// AddDigest inserts the element whose one-pass digest is d; batch and
// sharded paths that already digested the key call this.
func (w *Membership) AddDigest(d hashing.Digest) {
	w.rot.Head().AddDigest(d)
}

// Contains reports whether e may have been added within the window:
// one digest pass, then the cached digest probes each generation
// until one answers true. No false negatives for in-window elements.
func (w *Membership) Contains(e []byte) bool {
	return w.ContainsDigest(hashing.KeyDigest(e))
}

// ContainsDigest answers Contains for the element whose digest is d.
// Generations are probed newest-first — streaming workloads re-see
// live keys, so the head answers most positives in one generation's
// cost.
func (w *Membership) ContainsDigest(d hashing.Digest) bool {
	for age := 0; age < len(w.rot.gens); age++ {
		if w.rot.gens[w.rot.index(age)].ContainsDigest(d) {
			return true
		}
	}
	return false
}

// AddAll inserts a whole batch into the head generation through the
// core filter's pipelined digest-then-encode path. The error is always
// nil (the signature matches the shared batch interface).
func (w *Membership) AddAll(keys [][]byte) error {
	return w.rot.Head().AddAll(keys)
}

// ContainsAll queries a whole batch: phase one digests every key once
// into the window's scratch, phase two fans each cached digest out
// across the ring. Answers land in dst (resized to len(keys));
// steady-state batches do not allocate.
func (w *Membership) ContainsAll(dst []bool, keys [][]byte) []bool {
	dst = resizeSlice(dst, len(keys))
	ds := digestAll(&w.dscratch, keys)
	for i, d := range ds {
		dst[i] = w.ContainsDigest(d)
	}
	return dst
}

// Rotate retires the oldest generation and recycles it (cleared, in
// place) as the new head. The error is always nil for the membership
// window; the signature matches the shared Windowed surface.
func (w *Membership) Rotate() error { return w.rot.Rotate() }

// RotateIfDue rotates once when the spec's Tick has elapsed since the
// last due rotation, reporting whether it did. See Rotator.RotateIfDue.
func (w *Membership) RotateIfDue(now time.Time) (bool, error) { return w.rot.RotateIfDue(now) }

// Window returns the rotation snapshot: ring length, epoch, tick, and
// per-generation occupancy newest to oldest.
func (w *Membership) Window() Info {
	return w.rot.info(func(f *core.Membership) GenInfo {
		return GenInfo{N: f.N(), FillRatio: f.FillRatio()}
	})
}

// ForEachGeneration calls fn for every generation in the ring, newest
// first. All generations share the head's construction Spec (geometry
// and seed), which is what lets the frozen encoder collapse the ring
// by ORing their bit arrays.
func (w *Membership) ForEachGeneration(fn func(g *core.Membership)) {
	for age := 0; age < len(w.rot.gens); age++ {
		fn(w.rot.gens[w.rot.index(age)])
	}
}

// M returns the per-generation base array size in bits.
func (w *Membership) M() int { return w.rot.Head().M() }

// K returns the bit positions per element.
func (w *Membership) K() int { return w.rot.Head().K() }

// MaxOffset returns the per-generation w̄.
func (w *Membership) MaxOffset() int { return w.rot.Head().MaxOffset() }

// Generations returns the ring length G.
func (w *Membership) Generations() int { return w.rot.Generations() }

// Epoch returns the number of completed rotations.
func (w *Membership) Epoch() uint64 { return w.rot.Epoch() }

// N returns the total elements held across generations — an upper
// bound on the window's distinct cardinality, since a key re-added
// after a rotation is counted in each generation holding it.
func (w *Membership) N() int {
	n := 0
	for _, g := range w.rot.gens {
		n += g.N()
	}
	return n
}

// SizeBytes returns the combined footprint of all generations.
func (w *Membership) SizeBytes() int {
	b := 0
	for _, g := range w.rot.gens {
		b += g.SizeBytes()
	}
	return b
}

// FillRatio returns the mean fill ratio across generations.
func (w *Membership) FillRatio() float64 {
	s := 0.0
	for _, g := range w.rot.gens {
		s += g.FillRatio()
	}
	return s / float64(len(w.rot.gens))
}

// Kind returns core.KindWindowMembership.
func (w *Membership) Kind() core.Kind { return core.KindWindowMembership }

// Spec returns the construction geometry; New(w.Spec()) builds an
// empty ring identical to w before any Add.
func (w *Membership) Spec() core.Spec {
	return windowSpec(w.rot.Head().Spec(), core.KindWindowMembership,
		w.rot.Generations(), w.rot.Tick())
}

// Stats returns the aggregate occupancy snapshot (N sums generations,
// FillRatio is their mean).
func (w *Membership) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindWindowMembership,
		N:         w.N(),
		SizeBytes: w.SizeBytes(),
		FillRatio: w.FillRatio(),
	}
}
