package analytic

import (
	"math"
	"testing"
)

// TestFPRWindowBasics pins the bound's shape: identity at G = 1,
// monotone in G, ≈ G·f for small f, and clamped at the edges.
func TestFPRWindowBasics(t *testing.T) {
	if got := FPRWindow(0.01, 1); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("G=1 must be the per-generation rate, got %g", got)
	}
	prev := 0.0
	for g := 1; g <= 16; g *= 2 {
		f := FPRWindow(0.01, g)
		if f <= prev {
			t.Fatalf("window FPR not increasing in G: f(%d) = %g ≤ %g", g, f, prev)
		}
		prev = f
	}
	// Small-f linearization: 1−(1−f)^G ≤ G·f with equality as f → 0.
	f, g := 1e-6, 8
	got := FPRWindow(f, g)
	if got > float64(g)*f || got < 0.99*float64(g)*f {
		t.Fatalf("small-f window FPR %g outside (0.99·G·f, G·f] = (%g, %g]",
			got, 0.99*float64(g)*f, float64(g)*f)
	}
	if FPRWindow(0, 4) != 0 || FPRWindow(-1, 4) != 0 {
		t.Fatal("non-positive per-generation rate must clamp to 0")
	}
	if FPRWindow(1, 4) != 1 || FPRWindow(2, 4) != 1 {
		t.Fatal("per-generation rate ≥ 1 must clamp to 1")
	}
}

// TestFPRShBFMWindowComposition: the composed helper equals the
// two-step computation and degrades gracefully to Equation 1 at G = 1.
func TestFPRShBFMWindowComposition(t *testing.T) {
	m, n, k, wbar := 1<<20, 50_000, 8.0, 57
	fGen := FPRShBFM(m, n, k, wbar)
	for _, g := range []int{1, 2, 4, 8} {
		want := FPRWindow(fGen, g)
		if got := FPRShBFMWindow(m, n, k, wbar, g); math.Abs(got-want) > 1e-15 {
			t.Fatalf("G=%d: composed %g, two-step %g", g, got, want)
		}
	}
	if got, want := FPRShBFMWindow(m, n, k, wbar, 1), fGen; math.Abs(got-want) > 1e-15 {
		t.Fatalf("G=1 window rate %g, Equation 1 gives %g", got, want)
	}
}

// TestFPRWindowTinyRates: per-generation rates below the float64
// epsilon must linearize to G·f, not underflow to zero (regression:
// lightly loaded shards report f_gen ~ 1e-19 and /v1/stats showed 0).
func TestFPRWindowTinyRates(t *testing.T) {
	f := 1.1e-19
	got := FPRWindow(f, 3)
	if got <= 0 {
		t.Fatalf("window FPR underflowed to %g for f_gen %g", got, f)
	}
	if want := 3 * f; math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("tiny-rate window FPR %g, want ≈ G·f = %g", got, want)
	}
}
