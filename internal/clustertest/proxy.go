package clustertest

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a fault-injecting TCP proxy for one backend: tests dial the
// proxy's address instead of the daemon's and then turn the network
// hostile — added latency, a blackhole that accepts bytes and answers
// nothing, connections cut after N bytes of response, or the listener
// torn down and later restored on the same address. It is how the
// client's deadline, retry and failover paths are exercised against
// real sockets without leaving the test process.
//
// All knobs are safe for concurrent use and apply to new I/O as it
// happens: existing connections pick up latency/blackhole changes on
// their next chunk. The zero state forwards transparently.
type Proxy struct {
	backend string
	ln      net.Listener

	mu        sync.Mutex
	latency   time.Duration // added before each response chunk
	blackhole bool          // swallow responses (requests still drain)
	dropAfter int64         // cut the conn after this many response bytes (0 = never)
	conns     map[net.Conn]struct{}
	killed    bool
	closed    bool
}

// NewProxy starts a proxy on a fresh loopback port forwarding to
// backend ("host:port").
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{backend: backend, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.accept(ln)
	return p, nil
}

// Addr returns the proxy's listen address — the address the client
// under test dials. It stays stable across Kill/Restore.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency injects d of delay before each response chunk reaches the
// client (0 restores transparency).
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetBlackhole, when on, keeps accepting and draining client bytes but
// delivers no response bytes — the hung-server shape that only a
// deadline gets a client out of.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// DropAfter cuts each connection after n response bytes have been
// delivered to the client (0 = never) — the mid-frame failure shape.
func (p *Proxy) DropAfter(n int64) {
	p.mu.Lock()
	p.dropAfter = n
	p.mu.Unlock()
}

// CloseConns abruptly closes every open proxied connection (the
// listener stays up, so the next dial succeeds) — a connection reset,
// the failure a retry policy recovers from.
func (p *Proxy) CloseConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Kill tears the listener down and cuts every connection: dials to the
// proxy now fail outright, as they would against a dead node. Restore
// undoes it.
func (p *Proxy) Kill() {
	p.mu.Lock()
	if p.killed || p.closed {
		p.mu.Unlock()
		return
	}
	p.killed = true
	ln := p.ln
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	ln.Close()
}

// Restore re-binds the same address after a Kill.
func (p *Proxy) Restore() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.killed || p.closed {
		return nil
	}
	ln, err := net.Listen("tcp", p.ln.Addr().String())
	if err != nil {
		return err
	}
	p.ln, p.killed = ln, false
	go p.accept(ln)
	return nil
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	ln.Close()
}

// accept runs one listener's accept loop; it exits when the listener
// closes (Kill or Close).
func (p *Proxy) accept(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

// track registers a connection for CloseConns/Kill, or closes it
// immediately when the proxy is already down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed || p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// serve proxies one client connection to the backend, applying the
// fault knobs to the response direction (requests always drain, so the
// backend never sees the faults — they are the network's, not the
// daemon's).
func (p *Proxy) serve(client net.Conn) {
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	defer client.Close()
	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)
	defer backend.Close()

	done := make(chan struct{}, 2)
	// Client → backend: transparent.
	go func() {
		io.Copy(backend, client)
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// Backend → client: the faulted direction.
	go func() {
		var delivered int64
		buf := make([]byte, 32<<10)
		for {
			n, err := backend.Read(buf)
			if n > 0 {
				p.mu.Lock()
				latency, blackhole, dropAfter := p.latency, p.blackhole, p.dropAfter
				p.mu.Unlock()
				if latency > 0 {
					time.Sleep(latency)
				}
				if blackhole {
					// Swallow; keep draining so the backend finishes
					// its write and moves on.
					continue
				}
				chunk := buf[:n]
				if dropAfter > 0 && delivered+int64(n) >= dropAfter {
					chunk = chunk[:dropAfter-delivered]
				}
				if len(chunk) > 0 {
					if _, werr := client.Write(chunk); werr != nil {
						break
					}
					delivered += int64(len(chunk))
				}
				if dropAfter > 0 && delivered >= dropAfter {
					client.Close()
					backend.Close()
					break
				}
			}
			if err != nil {
				break
			}
		}
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
