package analytic

import (
	"math"
	"testing"
)

func TestExactFPRBFDegenerateCases(t *testing.T) {
	if got := ExactFPRBF(0, 10, 4); got != 0 {
		t.Errorf("m=0: %v", got)
	}
	if got := ExactFPRBF(100, 0, 4); got != 0 {
		t.Errorf("n=0: %v", got)
	}
	// One bit, one element: the bit is certainly set, FPR = 1.
	if got := ExactFPRBF(1, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("m=k=n=1: %v, want 1", got)
	}
}

func TestExactFPRBFTinyCaseByHand(t *testing.T) {
	// m=2, n=1, k=1: the single ball occupies one of two bins; a fresh
	// element hits it with probability 1/2.
	if got := ExactFPRBF(2, 1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("got %v, want 0.5", got)
	}
	// m=2, n=1, k=2: two balls. X=1 w.p. 1/2 (both in same bin), X=2
	// w.p. 1/2. FPR = 1/2·(1/2)² + 1/2·1 = 0.625.
	if got := ExactFPRBF(2, 1, 2); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("got %v, want 0.625", got)
	}
}

func TestBloomFormulaUnderestimates(t *testing.T) {
	// Bose et al.: Bloom's formula is a (strict, for k ≥ 2) lower bound
	// on the true FPR. Verify across parameter mixes.
	cases := []struct{ m, n, k int }{
		{128, 10, 2}, {1000, 80, 4}, {1000, 100, 7}, {4096, 300, 8}, {512, 64, 3},
	}
	for _, c := range cases {
		exact := ExactFPRBF(c.m, c.n, c.k)
		bloom := FPRBF(c.m, c.n, float64(c.k))
		if bloom > exact {
			t.Errorf("m=%d n=%d k=%d: Bloom %.6g above exact %.6g", c.m, c.n, c.k, bloom, exact)
		}
	}
}

func TestBloomFormulaErrorNegligible(t *testing.T) {
	// The paper's justification for keeping Equation 8: "the error of
	// Bloom's formula is negligible" at realistic sizes. At m in the
	// thousands the relative error is well under 2%.
	cases := []struct{ m, n, k int }{
		{4096, 300, 8}, {8192, 700, 6}, {22008, 1500, 8},
	}
	for _, c := range cases {
		exact := ExactFPRBF(c.m, c.n, c.k)
		bloom := FPRBF(c.m, c.n, float64(c.k))
		if rel := (exact - bloom) / exact; rel > 0.02 {
			t.Errorf("m=%d n=%d k=%d: relative error %.4f not negligible", c.m, c.n, c.k, rel)
		}
	}
}

func TestExactFPRMonotoneInN(t *testing.T) {
	prev := 0.0
	for n := 10; n <= 100; n += 10 {
		cur := ExactFPRBF(1024, n, 4)
		if cur <= prev {
			t.Fatalf("exact FPR not increasing at n=%d: %v ≤ %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestExactOccupancyMass(t *testing.T) {
	// Internal sanity via an external property: FPR must be ≤ 1 and the
	// all-bins-set limit reached as n grows huge relative to m.
	got := ExactFPRBF(32, 500, 4) // 2000 balls in 32 bins: all set
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("saturated filter FPR %v, want ≈1", got)
	}
}
