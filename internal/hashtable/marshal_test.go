package hashtable

import (
	"fmt"
	"testing"
)

func TestTableRoundTrip(t *testing.T) {
	tab := New(3)
	for i := 0; i < 1000; i++ {
		tab.Put([]byte(fmt.Sprintf("key-%d", i)), uint64(i*i))
	}
	buf := tab.AppendBinary(nil)

	got := New(3)
	rest, err := got.DecodeInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if got.Len() != 1000 {
		t.Fatalf("decoded %d entries", got.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := got.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || v != uint64(i*i) {
			t.Fatalf("key-%d: (%d,%v)", i, v, ok)
		}
	}
}

func TestTableMarshalDeterministic(t *testing.T) {
	// Same contents, different insertion orders ⇒ identical encodings
	// (entries are sorted by key).
	a, b := New(1), New(1)
	keys := []string{"zebra", "alpha", "mid"}
	for _, k := range keys {
		a.Put([]byte(k), 1)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Put([]byte(keys[i]), 1)
	}
	if string(a.AppendBinary(nil)) != string(b.AppendBinary(nil)) {
		t.Fatal("encoding depends on insertion order")
	}
}

func TestTableRoundTripBinaryKeys(t *testing.T) {
	tab := New(7)
	tab.Put([]byte{0, 1, 2, 0, 255}, 42)
	tab.Put([]byte{}, 7) // empty key is legal
	got := New(7)
	if _, err := got.DecodeInto(tab.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Get([]byte{0, 1, 2, 0, 255}); !ok || v != 42 {
		t.Fatal("binary key lost")
	}
	if v, ok := got.Get(nil); !ok || v != 7 {
		t.Fatal("empty key lost")
	}
}

func TestDecodeIntoRejectsCorrupt(t *testing.T) {
	tab := New(1)
	tab.Put([]byte("k"), 1)
	buf := tab.AppendBinary(nil)
	for name, c := range map[string][]byte{
		"empty":         {},
		"truncated key": buf[:2],
		"huge key len":  {0x01, 0xFF, 0xFF, 0xFF, 0x7F},
	} {
		fresh := New(1)
		if _, err := fresh.DecodeInto(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
