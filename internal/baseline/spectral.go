package baseline

import (
	"fmt"

	"shbf/internal/counters"
	"shbf/internal/hashing"
)

// SpectralMode selects which of the paper-described Spectral BF
// variants a filter uses (Section 2.3's three versions).
type SpectralMode int

const (
	// SpectralBasic is the first variant: every insert increments all k
	// counters (a CBF queried with the minimum-selection rule).
	SpectralBasic SpectralMode = iota
	// SpectralMinIncrease is the second variant: an insert increments
	// only the counters currently equal to the minimum, reducing
	// overestimation "at the cost of not supporting updates" (deletes).
	SpectralMinIncrease
	// SpectralRecurringMin is the third variant (recurring minimum):
	// elements whose minimum counter value appears in two or more of
	// their k counters are served from the primary array; the rest —
	// the error-prone single-minimum elements — are additionally
	// tracked in a smaller secondary array consulted first at query
	// time. The paper notes this variant "makes querying and updating
	// procedures time consuming and more complex" (Section 2.3); the
	// auxiliary-table counter compression it also describes changes
	// space constants only and is not modeled. Unlike the other two
	// variants its error is not strictly one-sided: with small
	// probability a secondary-array false positive under-reports.
	SpectralRecurringMin
)

// SpectralBF is the Spectral Bloom Filter of Cohen & Matias [8], the
// paper's multiplicity baseline (Figure 11): an array of m fixed-width
// counters; the multiplicity estimate of e is the minimum of its k
// counters, which never underestimates.
type SpectralBF struct {
	counts *counters.Array
	m      int
	k      int
	mode   SpectralMode
	fam    *hashing.Family
	// secondary holds single-minimum elements in the recurring-minimum
	// variant (nil otherwise). It is itself a basic Spectral BF at half
	// the primary's size, per Cohen & Matias's construction.
	secondary *SpectralBF
	pos       []int // scratch
}

// NewSpectralBF returns an empty Spectral BF with m counters of the
// configured width (the paper's Figure 11 setup uses 6 bits). For
// SpectralRecurringMin, m covers the primary array and a secondary
// array of m/2 counters is allocated in addition.
func NewSpectralBF(m, k int, mode SpectralMode, opts ...Option) (*SpectralBF, error) {
	cfg := applyOptions(opts)
	if m <= 0 {
		return nil, fmt.Errorf("baseline: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d must be ≥ 1", k)
	}
	arr := counters.New(m, cfg.counterWidth)
	arr.SetCounter(cfg.counter)
	f := &SpectralBF{
		counts: arr,
		m:      m,
		k:      k,
		mode:   mode,
		fam:    hashing.NewFamily(k, cfg.seed),
	}
	if mode == SpectralRecurringMin {
		sec, err := NewSpectralBF(max(m/2, 1), k, SpectralBasic,
			append(opts, WithSeed(cfg.seed+0x5ec))...)
		if err != nil {
			return nil, fmt.Errorf("baseline: building secondary SBF: %w", err)
		}
		f.secondary = sec
	}
	return f, nil
}

// M, K and Mode report the parameters.
func (f *SpectralBF) M() int             { return f.m }
func (f *SpectralBF) K() int             { return f.k }
func (f *SpectralBF) Mode() SpectralMode { return f.mode }

// SizeBytes returns the counter-array footprint, including the
// secondary array in the recurring-minimum variant.
func (f *SpectralBF) SizeBytes() int {
	total := f.counts.SizeBytes()
	if f.secondary != nil {
		total += f.secondary.SizeBytes()
	}
	return total
}

// Insert adds one occurrence of e according to the variant's rule.
func (f *SpectralBF) Insert(e []byte) {
	f.pos = f.fam.PositionsFromDigest(f.fam.Digest(e), f.k, f.m, f.pos)
	switch f.mode {
	case SpectralBasic:
		for _, p := range f.pos {
			f.counts.Inc(p)
		}
	case SpectralMinIncrease:
		// Minimum increase: increment only counters at the minimum.
		min := f.counts.Peek(f.pos[0])
		for _, p := range f.pos[1:] {
			if v := f.counts.Peek(p); v < min {
				min = v
			}
		}
		for _, p := range f.pos {
			if f.counts.Peek(p) == min {
				f.counts.Inc(p)
			}
		}
	case SpectralRecurringMin:
		// Increment all primary counters, then keep the secondary in
		// sync for single-minimum elements (Cohen & Matias §RM): if e's
		// minimum is recurring, the primary alone is trusted; otherwise
		// e's count is mirrored in the secondary — incremented if
		// already there, else seeded with the primary minimum.
		for _, p := range f.pos {
			f.counts.Inc(p)
		}
		min, recurring := f.minAt(f.pos)
		if recurring {
			return
		}
		if f.secondary.Count(e) > 0 {
			f.secondary.Insert(e)
			return
		}
		f.secondary.seedValue(e, min)
	}
}

// minAt returns the minimum over the given positions and whether it
// occurs more than once (a "recurring minimum").
func (f *SpectralBF) minAt(pos []int) (min uint64, recurring bool) {
	min = f.counts.Peek(pos[0])
	count := 1
	for _, p := range pos[1:] {
		v := f.counts.Peek(p)
		switch {
		case v < min:
			min, count = v, 1
		case v == min:
			count++
		}
	}
	return min, count >= 2
}

// seedValue raises e's counters to at least v (used when an element
// first enters the secondary array with its primary-minimum estimate).
func (f *SpectralBF) seedValue(e []byte, v uint64) {
	f.pos = f.fam.PositionsFromDigest(f.fam.Digest(e), f.k, f.m, f.pos)
	for _, p := range f.pos {
		if f.counts.Peek(p) < v {
			f.counts.Set(p, v)
		}
	}
}

// Delete removes one occurrence of e (basic mode only: the minimum-
// increase and recurring-minimum variants "reduce FPR at the cost of
// not supporting updates", Section 2.3). ErrNotStored is returned if
// some counter is zero.
func (f *SpectralBF) Delete(e []byte) error {
	if f.mode != SpectralBasic {
		return fmt.Errorf("baseline: %w: only the basic spectral BF supports deletes", ErrNotStored)
	}
	f.pos = f.fam.PositionsFromDigest(f.fam.Digest(e), f.k, f.m, f.pos)
	for _, p := range f.pos {
		if f.counts.Peek(p) == 0 {
			return ErrNotStored
		}
	}
	for _, p := range f.pos {
		f.counts.Dec(p)
	}
	return nil
}

// Count returns the multiplicity estimate: the minimum over the k
// counters (never an underestimate). Each counter read is one memory
// access; a zero counter short-circuits the scan. The recurring-minimum
// variant answers from the secondary array when the primary minimum is
// single (the error-prone case it exists to repair).
func (f *SpectralBF) Count(e []byte) uint64 {
	if f.mode == SpectralRecurringMin {
		f.pos = f.fam.PositionsFromDigest(f.fam.Digest(e), f.k, f.m, f.pos)
		min, recurring := f.minAt(f.pos)
		if recurring || min == 0 {
			return min
		}
		if sec := f.secondary.Count(e); sec > 0 {
			return sec
		}
		return min
	}
	d := f.fam.Digest(e)
	min := ^uint64(0)
	for i := 0; i < f.k; i++ {
		v := f.counts.Get(f.fam.ModFromDigest(i, d, f.m))
		if v < min {
			min = v
			if min == 0 {
				return 0
			}
		}
	}
	return min
}

// Overflows reports counter saturation events — with 6-bit counters and
// skewed workloads this is the variant's failure mode.
func (f *SpectralBF) Overflows() uint64 { return f.counts.Overflows() }
