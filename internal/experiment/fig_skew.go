package experiment

import (
	"fmt"
	"math"

	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/trace"
)

// RunSkewAblation probes a structural property Figure 11's uniform
// workload does not expose: ShBF_X encodes any multiplicity in the same
// k bits, so its accuracy is independent of the count distribution.
// Spectral BF and the CM sketch, in contrast, accumulate every packet
// into 6-bit counters, so their accuracy swings with the distribution:
// heavy uniform counts (mean ≈ c/2 packets per flow) saturate counters
// and collide counts, while mouse-dominated Zipf traffic relieves the
// pressure. The x-axis is the Zipf skew parameter (0 = uniform counts);
// y is the correctness rate over the members, plus a second figure
// reporting counter-saturation events.
func RunSkewAblation(cfg Config) []*Figure {
	const (
		k           = 12
		c           = 57
		counterBits = 6
	)
	n := cfg.MultisetSize / 2
	if n < 1000 {
		n = 1000
	}
	nf := float64(n)
	budgetBits := int(1.5 * nf * k / math.Ln2)

	crFig := &Figure{ID: "skew-cr", Title: fmt.Sprintf("correctness rate vs count skew (k=%d, c=%d)", k, c),
		XLabel: "zipf s (0 = uniform)", YLabel: "correctness rate"}
	ovFig := &Figure{ID: "skew-overflow", Title: "6-bit counter saturation events vs skew",
		XLabel: "zipf s (0 = uniform)", YLabel: "overflows per 1000 elements"}

	for _, skew := range []float64{0, 1.2, 1.5, 2.0} {
		var crSh, crSp, crCM, ovSp, ovCM float64
		for trial := 0; trial < cfg.Trials; trial++ {
			gen := trace.NewGenerator(cfg.Seed + int64(trial))
			var flows []trace.Flow
			if skew == 0 {
				flows = gen.UniformMultiset(n, c)
			} else {
				flows = gen.Multiset(n, c, skew)
			}
			seed := uint64(cfg.Seed) + uint64(trial)

			shbf, err := core.NewMultiplicity(budgetBits, k, c, core.WithSeed(seed))
			if err != nil {
				panic(err)
			}
			spectral, err := baseline.NewSpectralBF(budgetBits/counterBits, k, baseline.SpectralMinIncrease,
				baseline.WithSeed(seed), baseline.WithCounterWidth(counterBits))
			if err != nil {
				panic(err)
			}
			cm, err := baseline.NewCMSketch(k, budgetBits/counterBits/k,
				baseline.WithSeed(seed), baseline.WithCounterWidth(counterBits))
			if err != nil {
				panic(err)
			}
			for _, fl := range flows {
				if err := shbf.AddWithCount(fl.ID[:], fl.Count); err != nil {
					panic(err)
				}
				for i := 0; i < fl.Count; i++ {
					spectral.Insert(fl.ID[:])
					cm.Insert(fl.ID[:])
				}
			}
			var okSh, okSp, okCM int
			for _, fl := range flows {
				if shbf.Count(fl.ID[:]) == fl.Count {
					okSh++
				}
				if spectral.Count(fl.ID[:]) == uint64(fl.Count) {
					okSp++
				}
				if cm.Count(fl.ID[:]) == uint64(fl.Count) {
					okCM++
				}
			}
			crSh += float64(okSh) / nf
			crSp += float64(okSp) / nf
			crCM += float64(okCM) / nf
			ovSp += float64(spectral.Overflows()) / nf * 1000
			ovCM += float64(cm.Overflows()) / nf * 1000
		}
		tf := float64(cfg.Trials)
		crFig.Add("ShBF_X", skew, crSh/tf)
		crFig.Add("Spectral BF", skew, crSp/tf)
		crFig.Add("CM sketch", skew, crCM/tf)
		ovFig.Add("Spectral BF", skew, ovSp/tf)
		ovFig.Add("CM sketch", skew, ovCM/tf)
	}
	crFig.Notes = append(crFig.Notes,
		"ShBF_X's k-bit encoding is count-distribution-independent; the counter schemes' accuracy moves with the distribution (heavy uniform counts saturate 6-bit counters)")
	return []*Figure{crFig, ovFig}
}
