package client_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shbf/client"
)

// TestChaosSoak is the kill/restart soak: a fully replicated cluster
// takes mixed traffic while a rotating victim node is killed mid-
// round, read back (failover), restarted empty, and re-converged with
// an anti-entropy merge. Invariants held every round:
//
//   - no acked write is ever lost: every key from a batch whose AddAll
//     returned nil answers true on every subsequent read, forever;
//   - every batch either succeeds or fails with a precise resume
//     point: per failed node, the routed key positions and an applied
//     split ≤ the node's sub-batch size;
//   - after restart + merge, the revived node itself answers every
//     acked key — the cluster heals, not just routes around.
//
// -short runs two rounds (CI); the full run does six.
func TestChaosSoak(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	tc, cl := dialTestCluster(t, 3, 3)
	// Per-call budget keeps a wedged round from hanging the suite; the
	// retry policy rides out transient resets from kills.
	rcl := cl.WithRetry(client.RetryPolicy{MaxRetries: 2, BaseDelay: 10 * time.Millisecond})
	cns := rcl.Namespace("default")

	var acked [][]byte
	// Per-node daemon counters, scraped every round: monotonic except
	// across that node's own restart (which resets its registry).
	lastNodeSum := map[string]float64{}
	for r := 0; r < rounds; r++ {
		victim := tc.Nodes[r%len(tc.Nodes)]

		// Mixed traffic against the healthy cluster: a write batch and
		// an interleaved read of everything acked so far.
		batch := clusterKeys(fmt.Sprintf("round-%02d", r), 150)
		if err := cns.AddAll(batch); err != nil {
			assertPreciseResume(t, r, err, len(batch))
		} else {
			acked = append(acked, batch...)
		}
		assertAllPresent(t, r, "pre-kill", cns, acked)

		// Kill the victim mid-round; the batch in flight right now and
		// every later read must survive via the replicas.
		victim.Kill()
		batch = clusterKeys(fmt.Sprintf("round-%02d-dark", r), 150)
		if err := cns.AddAll(batch); err != nil {
			// Expected: the dead owner's sub-batch fails. Precision is
			// the contract; the live replicas applied their copies.
			assertPreciseResume(t, r, err, len(batch))
		} else {
			acked = append(acked, batch...)
		}
		assertAllPresent(t, r, "dead-primary", cns, acked)

		// Revive. Kill is abrupt, so the node comes back empty; the
		// anti-entropy merge from any healthy replica restores it.
		if err := victim.Restart(); err != nil {
			t.Fatalf("round %d: restart: %v", r, err)
		}
		donor := tc.Nodes[(r+1)%len(tc.Nodes)]
		env, err := cl.Client(donor.ID).Namespace("default").MembershipEnvelope()
		if err != nil {
			t.Fatalf("round %d: donor envelope: %v", r, err)
		}
		if _, err := cl.Client(victim.ID).Namespace("default").Merge(env); err != nil {
			t.Fatalf("round %d: merge into revived %s: %v", r, victim.ID, err)
		}

		// The revived node itself must answer every acked key.
		res, err := cl.Client(victim.ID).Namespace("default").Set().Check(acked)
		if err != nil {
			t.Fatalf("round %d: revived %s read: %v", r, victim.ID, err)
		}
		for i, ok := range res {
			if !ok {
				t.Fatalf("round %d: revived %s lost acked key %q after merge",
					r, victim.ID, acked[i])
			}
		}

		// Every node is alive here: scrape each one and hold the
		// counter-monotonicity invariant — a daemon's request total
		// never goes backward except across its own kill/restart.
		for _, n := range tc.Nodes {
			scrape, err := cl.Client(n.ID).Metrics()
			if err != nil {
				t.Fatalf("round %d: scraping %s: %v", r, n.ID, err)
			}
			sum, err := sumSeriesPrefix(scrape, "shbf_requests_total{")
			if err != nil {
				t.Fatalf("round %d: %s scrape: %v", r, n.ID, err)
			}
			if n.ID != victim.ID && sum < lastNodeSum[n.ID] {
				t.Fatalf("round %d: node %s request total went backward: %v after %v",
					r, n.ID, sum, lastNodeSum[n.ID])
			}
			lastNodeSum[n.ID] = sum
		}
	}
	assertAllPresent(t, rounds, "final", cns, acked)

	// The router's counters saw the whole soak: kills produced node
	// errors and read failovers, and the per-node clients counted every
	// attempt (WithRetry shares the dialed router's counters).
	st := cl.Stats()
	if st.Requests == 0 || st.Errors == 0 {
		t.Fatalf("router counters empty after the soak: %+v", st)
	}
	if st.Failovers == 0 {
		t.Fatal("no read failovers counted across kill rounds")
	}
	var nodeErrs uint64
	for _, n := range st.NodeErrors {
		nodeErrs += n
	}
	if nodeErrs == 0 {
		t.Fatalf("no per-node errors counted: %+v", st.NodeErrors)
	}
}

// assertAllPresent fails the soak if any acked key reads false.
func assertAllPresent(t *testing.T, round int, phase string, cns *client.ClusterNamespace, acked [][]byte) {
	t.Helper()
	if len(acked) == 0 {
		return
	}
	res, err := cns.Check(acked)
	if err != nil {
		t.Fatalf("round %d (%s): Check over %d acked keys: %v", round, phase, len(acked), err)
	}
	for i, ok := range res {
		if !ok {
			t.Fatalf("round %d (%s): acked key %q lost", round, phase, acked[i])
		}
	}
}

// assertPreciseResume fails the soak unless err is a ClusterError
// whose every node failure carries the routed positions and a valid
// applied split point.
func assertPreciseResume(t *testing.T, round int, err error, batchLen int) {
	t.Helper()
	var ce *client.ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("round %d: batch failed without a ClusterError: %v", round, err)
	}
	for _, ne := range ce.Errs {
		if len(ne.Indices) == 0 {
			t.Fatalf("round %d: node %s failed with no key positions", round, ne.Node)
		}
		if ne.Applied > uint64(len(ne.Indices)) {
			t.Fatalf("round %d: node %s applied %d > %d routed keys",
				round, ne.Node, ne.Applied, len(ne.Indices))
		}
		for _, idx := range ne.Indices {
			if idx < 0 || idx >= batchLen {
				t.Fatalf("round %d: node %s reports out-of-range key position %d",
					round, ne.Node, idx)
			}
		}
	}
}
