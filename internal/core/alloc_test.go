//go:build !race

// (The race detector makes sync.Pool drop items on purpose and adds
// allocation of shadow state, so allocs/op is meaningless under -race.)

package core

// Zero-allocation guards for the hot paths. The one-pass digest
// pipeline keeps every per-query quantity (Digest, mixed values,
// positions) in registers or filter-owned scratch, so scalar
// Add/Contains/Count/Query and the batch forms must not allocate in
// steady state. testing.AllocsPerRun discards its first (warm-up)
// invocation, which is when lazily grown scratch (CountingMembership's
// position buffer, Membership's batch digest buffer) reaches its
// steady size.
//
// Update paths that store keys in a backing hash table (counting
// association/multiplicity inserts of NEW keys) allocate by design —
// the table keeps a copy of the key — so they are exercised here only
// on already-stored keys, where they too must be allocation-free.

import (
	"fmt"
	"testing"
)

// requireZeroAllocs runs fn and fails if any run allocated.
func requireZeroAllocs(t *testing.T, name string, runs int, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func allocKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%08d!", i))
	}
	return keys
}

func TestMembershipHotPathsAllocFree(t *testing.T) {
	f, err := NewMembership(1<<18, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(256)
	for _, e := range keys {
		f.Add(e)
	}
	dst := make([]bool, len(keys))
	i := 0
	requireZeroAllocs(t, "Membership.Add", 100, func() { f.Add(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Membership.Contains", 100, func() { f.Contains(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Membership.AddAll", 20, func() {
		if err := f.AddAll(keys); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "Membership.ContainsAll", 20, func() { dst = f.ContainsAll(dst, keys) })
}

func TestTShiftHotPathsAllocFree(t *testing.T) {
	f, err := NewTShift(1<<18, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(256)
	for _, e := range keys {
		f.Add(e)
	}
	i := 0
	requireZeroAllocs(t, "TShift.Add", 100, func() { f.Add(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "TShift.Contains", 100, func() { f.Contains(keys[i%len(keys)]); i++ })
}

func TestCountingMembershipHotPathsAllocFree(t *testing.T) {
	c, err := NewCountingMembership(1<<18, 8, WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(64)
	for _, e := range keys {
		if err := c.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	requireZeroAllocs(t, "CountingMembership.Contains", 100, func() { c.Contains(keys[i%len(keys)]); i++ })
	// Insert+Delete pairs keep counters bounded across the runs.
	requireZeroAllocs(t, "CountingMembership.Insert/Delete", 100, func() {
		e := keys[i%len(keys)]
		i++
		if err := c.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(e); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAssociationHotPathsAllocFree(t *testing.T) {
	keys := allocKeys(512)
	a, err := BuildAssociation(keys[:256], keys[128:384], 1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Region, len(keys))
	i := 0
	requireZeroAllocs(t, "Association.Query", 100, func() { a.Query(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Association.QueryAll", 20, func() { dst = a.QueryAll(dst, keys) })

	ca, err := NewCountingAssociation(1<<16, 8, WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range keys[:256] {
		if err := ca.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	requireZeroAllocs(t, "CountingAssociation.Query", 100, func() { ca.Query(keys[i%len(keys)]); i++ })
}

func TestMultiAssociationQueryAllocFree(t *testing.T) {
	keys := allocKeys(300)
	a, err := BuildMultiAssociation([][][]byte{keys[:100], keys[80:200], keys[180:300]}, 1<<16, 6)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	requireZeroAllocs(t, "MultiAssociation.Query", 100, func() { a.Query(keys[i%len(keys)]); i++ })
}

func TestMultiplicityHotPathsAllocFree(t *testing.T) {
	f, err := NewMultiplicity(1<<18, 8, 57)
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(256)
	for j, e := range keys {
		if err := f.AddWithCount(e, j%57+1); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]int, len(keys))
	i := 0
	requireZeroAllocs(t, "Multiplicity.AddWithCount", 100, func() {
		if err := f.AddWithCount(keys[i%len(keys)], 3); err != nil {
			t.Fatal(err)
		}
		i++
	})
	requireZeroAllocs(t, "Multiplicity.Count", 100, func() { f.Count(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "Multiplicity.CountAll", 20, func() { dst = f.CountAll(dst, keys) })
}

func TestCountingMultiplicityHotPathsAllocFree(t *testing.T) {
	f, err := NewCountingMultiplicity(1<<18, 8, 57, WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(128)
	for _, e := range keys {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	requireZeroAllocs(t, "CountingMultiplicity.Count", 100, func() { f.Count(keys[i%len(keys)]); i++ })
	// Insert/Delete on already-stored keys: the backing table updates in
	// place, so steady-state churn is allocation-free too.
	requireZeroAllocs(t, "CountingMultiplicity.Insert/Delete", 100, func() {
		e := keys[i%len(keys)]
		i++
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSCMSketchHotPathsAllocFree(t *testing.T) {
	s, err := NewSCMSketch(8, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	keys := allocKeys(256)
	i := 0
	requireZeroAllocs(t, "SCMSketch.Insert", 100, func() { s.Insert(keys[i%len(keys)]); i++ })
	requireZeroAllocs(t, "SCMSketch.Count", 100, func() { s.Count(keys[i%len(keys)]); i++ })
}
