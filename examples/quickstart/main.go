// Quickstart: the smallest useful ShBF program.
//
// Builds a membership filter (ShBF_M) sized for 100k elements through
// the unified Spec API — one shbf.New call constructs any filter kind
// from its Spec — inserts flow identifiers, queries members and
// non-members, and compares the measured false-positive rate with the
// paper's Equation 1 prediction.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"shbf"
)

func main() {
	const (
		n = 100000 // expected elements
		k = 8      // bit positions per element
	)
	// The paper's optimal sizing: m = n·k/ln2 bits (≈1.44·k bits per
	// element) gives FPR ≈ 0.5^k ≈ 0.4%.
	nf := float64(n)
	m := int(nf * k / math.Ln2)

	// Spec-driven construction: name the kind and geometry, get back a
	// shbf.Filter, and assert the query surface you need (shbf.Set for
	// membership). shbf.NewMembership is the typed shorthand.
	built, err := shbf.New(shbf.Spec{Kind: shbf.KindMembership, M: m, K: k, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	filter := built.(*shbf.Membership)

	// Insert n synthetic 13-byte flow IDs (source/destination/ports/
	// protocol — the element format of the paper's evaluation).
	rng := rand.New(rand.NewSource(1))
	members := make([][]byte, n)
	for i := range members {
		members[i] = newFlowID(rng, uint32(i), 0)
		filter.Add(members[i])
	}

	// Every member is found: ShBF has no false negatives.
	for _, e := range members[:1000] {
		if !filter.Contains(e) {
			log.Fatal("false negative — impossible by construction")
		}
	}

	// Non-members are rejected except for a small false-positive rate.
	const probes = 200000
	fp := 0
	for i := 0; i < probes; i++ {
		if filter.Contains(newFlowID(rng, uint32(i), 0xFF)) {
			fp++
		}
	}

	measured := float64(fp) / probes
	theory := math.Pow(0.5, k) // ≈ Equation 1 at optimal sizing
	fmt.Printf("ShBF_M: m=%d bits (%d KiB), k=%d, n=%d\n", m, filter.SizeBytes()/1024, k, n)
	fmt.Printf("  hash computations per add:   %d (a standard BF needs %d)\n", filter.HashOpsPerAdd(), k)
	fmt.Printf("  memory accesses per query:   ≤ %d (a standard BF needs ≤ %d)\n", k/2, k)
	fmt.Printf("  false-positive rate:         %.5f measured vs %.5f expected\n", measured, theory)
}

// newFlowID builds a distinct 13-byte 5-tuple flow ID; tag keeps
// member and probe populations disjoint.
func newFlowID(rng *rand.Rand, seq uint32, tag byte) []byte {
	id := make([]byte, 13)
	rng.Read(id)
	id[4], id[5], id[6], id[7] = byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24)
	id[12] = tag
	return id
}
