package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"shbf/internal/wire"
)

// binaryTransport speaks ShBP over one TCP connection. Round trips are
// serialized on the connection (the protocol answers in order); a
// broken connection is closed and redialed on the next call, never
// retried in place — a lost response may have applied its updates.
type binaryTransport struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte // encoded request frame, reused
	rbuf []byte // response frame, reused
}

// dialTimeout bounds connection establishment when the caller's
// context carries no tighter deadline; round trips themselves are
// bounded only by the caller's context ([Client.WithContext]) — batch
// sizes are capped by the protocol, so a healthy daemon answers
// promptly.
const dialTimeout = 5 * time.Second

// dialBinary eagerly connects so a down daemon fails at Dial.
func dialBinary(addr string) (*Client, error) {
	t := &binaryTransport{addr: addr}
	t.mu.Lock()
	err := t.connectLocked(context.Background())
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &Client{t: t, stats: new(clientStats)}, nil
}

// dialBinaryLazy defers the connection to the first round trip. The
// cluster router uses it so one down node degrades to per-node errors
// on use instead of failing the whole fleet dial.
func dialBinaryLazy(addr string) *Client {
	return &Client{t: &binaryTransport{addr: addr}, stats: new(clientStats)}
}

// connectLocked (re)establishes the connection; t.mu must be held.
// ctx bounds the dial (on top of dialTimeout).
func (t *binaryTransport) connectLocked(ctx context.Context) error {
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return fmt.Errorf("client: dialing %s: %w", t.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // one frame per round trip; don't batch for Nagle
	}
	t.conn = conn
	t.br = bufio.NewReaderSize(conn, 64<<10)
	return nil
}

func (t *binaryTransport) roundTrip(ctx context.Context, req *wire.Request, resp *wire.Response) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	t.wbuf, err = wire.AppendRequest(t.wbuf[:0], req)
	if err != nil {
		return err // encoding error; the connection is untouched
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("client: %s round trip: %w", wire.OpName(req.Op), err)
	}
	if t.conn == nil {
		if err := t.connectLocked(ctx); err != nil {
			return err
		}
	}
	// The context bounds the whole exchange: its deadline becomes the
	// connection's read/write deadline, and cancellation forces the
	// blocked read to return by expiring the deadline immediately.
	// t.mu is held across the round trip, so t.conn is stable here.
	if d, ok := ctx.Deadline(); ok {
		t.conn.SetDeadline(d)
	} else {
		t.conn.SetDeadline(time.Time{}) // heal any stale cancel deadline
	}
	if ctx.Done() != nil {
		conn := t.conn
		stop := context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Unix(1, 0)) // long past; unblocks I/O
		})
		defer stop()
	}
	if _, err = t.conn.Write(t.wbuf); err == nil {
		t.rbuf, err = wire.ReadFrame(t.br, t.rbuf)
		if err == nil {
			err = wire.DecodeResponse(resp, t.rbuf)
		}
	}
	if err != nil {
		// The stream position is unknown; drop the connection so the
		// next call starts clean.
		t.conn.Close()
		t.conn, t.br = nil, nil
		if cerr := ctx.Err(); cerr != nil {
			// Surface the context's verdict, not the I/O timeout it
			// was enforced through.
			err = cerr
		} else if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			// The connection deadline (set from the context's) can
			// fire a hair before the context's own timer propagates;
			// same verdict either way.
			err = context.DeadlineExceeded
		}
		return fmt.Errorf("client: %s round trip: %w", wire.OpName(req.Op), err)
	}
	t.conn.SetDeadline(time.Time{}) // clear for the next (unbounded) call
	// Blob aliases rbuf, which the next round trip overwrites; detach
	// it before the lock is released. (DecodeResponse copies the other
	// body fields into resp-owned storage.)
	if resp.Blob != nil {
		resp.Blob = append([]byte(nil), resp.Blob...)
	}
	return nil
}

func (t *binaryTransport) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return nil
	}
	err := t.conn.Close()
	t.conn, t.br = nil, nil
	return err
}
