package hashing

import (
	"encoding/binary"
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInputs(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, size)
		rng.Read(b)
		out[i] = b
	}
	return out
}

// sequentialInputs mimics structured keys (counters encoded as bytes),
// the adversarial case for weak mixers.
func sequentialInputs(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(i))
		out[i] = b
	}
	return out
}

func TestSum128Deterministic(t *testing.T) {
	h := New(42)
	data := []byte("5-tuple flow id!")
	lo1, hi1 := h.Sum128(data)
	lo2, hi2 := h.Sum128(data)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("Sum128 is not deterministic")
	}
}

func TestSeedsProduceDifferentFunctions(t *testing.T) {
	a, b := New(1), New(2)
	data := []byte("hello")
	if a.Sum64(data) == b.Sum64(data) {
		t.Fatal("different seeds produced identical hashes (collision on first try is implausible)")
	}
}

func TestLengthExtension(t *testing.T) {
	// Inputs that are prefixes of each other must hash differently.
	h := New(7)
	seen := map[uint64][]byte{}
	data := make([]byte, 0, 40)
	for i := 0; i < 40; i++ {
		data = append(data, 0) // all-zero inputs of increasing length
		v := h.Sum64(data)
		if prev, ok := seen[v]; ok {
			t.Fatalf("zero inputs of lengths %d and %d collide", len(prev), len(data))
		}
		seen[v] = append([]byte(nil), data...)
	}
}

func TestTailBoundaries(t *testing.T) {
	// Exercise every tail length 0..16 around the 16-byte block boundary
	// and confirm single-byte changes in the tail change the hash.
	h := New(99)
	for size := 1; size <= 33; size++ {
		base := make([]byte, size)
		for i := range base {
			base[i] = byte(i * 7)
		}
		want := h.Sum64(base)
		for i := 0; i < size; i++ {
			mod := append([]byte(nil), base...)
			mod[i] ^= 0x80
			if h.Sum64(mod) == want {
				t.Fatalf("size %d: flipping byte %d did not change hash", size, i)
			}
		}
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits on average.
	h := New(2024)
	rng := rand.New(rand.NewSource(5))
	const trials = 2000
	totalFlips := 0
	for i := 0; i < trials; i++ {
		data := make([]byte, 13) // the paper's flow-ID size
		rng.Read(data)
		ref := h.Sum64(data)
		bit := rng.Intn(13 * 8)
		data[bit/8] ^= 1 << uint(bit%8)
		totalFlips += bits.OnesCount64(ref ^ h.Sum64(data))
	}
	avg := float64(totalFlips) / trials
	if avg < 28 || avg > 36 {
		t.Fatalf("avalanche average = %.2f flipped bits, want ≈ 32", avg)
	}
}

func TestBitBalanceRandomInputs(t *testing.T) {
	// The paper's randomness criterion on random 13-byte flow IDs.
	h := New(1)
	inputs := randomInputs(100000, 13, 11)
	if !PassesBalance(h, inputs, 0.01) {
		fr := BitBalance(h, inputs)
		t.Fatalf("hash fails the paper's bit-balance test: max error %.4f", MaxBalanceError(fr))
	}
}

func TestBitBalanceSequentialInputs(t *testing.T) {
	h := New(3)
	if !PassesBalance(h, sequentialInputs(100000), 0.01) {
		t.Fatal("hash fails bit-balance on sequential inputs")
	}
}

func TestBitBalanceEmpty(t *testing.T) {
	var fr [64]float64
	got := BitBalance(New(1), nil)
	if got != fr {
		t.Fatal("BitBalance(nil) should be all zeros")
	}
	if MaxBalanceError(fr) != 0.5 {
		t.Fatalf("MaxBalanceError(zeros) = %v, want 0.5", MaxBalanceError(fr))
	}
}

func TestModRange(t *testing.T) {
	f := func(seed uint64, data []byte, m uint16) bool {
		if m == 0 {
			return true
		}
		v := New(seed).Mod(data, int(m))
		return v >= 0 && v < int(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModUniformity(t *testing.T) {
	// Chi-square-style sanity check: hashing 64k random inputs into 64
	// buckets should put roughly 1024 in each.
	h := New(77)
	const buckets, n = 64, 65536
	counts := make([]int, buckets)
	for _, in := range randomInputs(n, 13, 21) {
		counts[h.Mod(in, buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom; mean 63, stddev ≈ 11.2. 63+5σ ≈ 120.
	if chi2 > 120 {
		t.Fatalf("chi-square = %.1f, distribution too skewed", chi2)
	}
}

func TestFamilyIndependence(t *testing.T) {
	// Positions produced by different family members for the same input
	// must be uncorrelated: measure collision rate between h_0 and h_1
	// over a modest modulus.
	fam := NewFamily(4, 9)
	const m, n = 1024, 50000
	coll := 0
	for _, in := range randomInputs(n, 13, 31) {
		if fam.Mod(0, in, m) == fam.Mod(1, in, m) {
			coll++
		}
	}
	rate := float64(coll) / n
	// Independent functions collide with probability 1/m ≈ 0.000977.
	if rate > 3.0/m {
		t.Fatalf("collision rate %.5f, want ≈ %.5f (functions correlated?)", rate, 1.0/m)
	}
}

func TestFamilySumAllMatchesIndividual(t *testing.T) {
	fam := NewFamily(6, 123)
	data := []byte("element")
	all := fam.SumAll(data, nil)
	if len(all) != 6 {
		t.Fatalf("SumAll returned %d values, want 6", len(all))
	}
	for i, v := range all {
		if got := fam.Sum64(i, data); got != v {
			t.Errorf("SumAll[%d] = %x, Sum64(%d) = %x", i, v, i, got)
		}
	}
}

func TestFamilyModAll(t *testing.T) {
	fam := NewFamily(8, 5)
	data := []byte("x")
	got := fam.ModAll(5, data, 100, nil)
	if len(got) != 5 {
		t.Fatalf("ModAll returned %d values, want 5", len(got))
	}
	for i, v := range got {
		if want := fam.Mod(i, data, 100); v != want {
			t.Errorf("ModAll[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(0, ...) should panic")
		}
	}()
	NewFamily(0, 1)
}

func TestSplitMix64Sequence(t *testing.T) {
	s1, s2 := uint64(0), uint64(0)
	a, b := SplitMix64(&s1), SplitMix64(&s2)
	if a != b {
		t.Fatal("SplitMix64 not deterministic")
	}
	c := SplitMix64(&s1)
	if a == c {
		t.Fatal("SplitMix64 sequence repeated immediately")
	}
}

func TestDoublePositionsRangeAndSpread(t *testing.T) {
	d := NewDouble(17)
	const k, m = 8, 4096
	var pos []int
	counts := make([]int, m)
	inputs := randomInputs(20000, 13, 41)
	for _, in := range inputs {
		pos = d.Positions(in, k, m, pos)
		if len(pos) != k {
			t.Fatalf("Positions returned %d, want %d", len(pos), k)
		}
		for _, p := range pos {
			if p < 0 || p >= m {
				t.Fatalf("position %d out of range [0,%d)", p, m)
			}
			counts[p]++
		}
	}
	// Rough uniformity: expected load per slot.
	expected := float64(len(inputs)*k) / m
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 8*math.Sqrt(expected) {
			t.Fatalf("slot %d load %d deviates wildly from %.1f", i, c, expected)
		}
	}
}

func TestDoubleBaseMatchesSum128(t *testing.T) {
	d := NewDouble(3)
	data := []byte("abc")
	h1, h2 := d.Base(data)
	lo, hi := New(3).Sum128(data)
	// NewDouble(seed) wraps New(seed); Base must expose exactly its lanes.
	if h1 != lo || h2 != hi {
		t.Fatal("Double.Base does not expose the underlying Sum128 lanes")
	}
}

func BenchmarkSum64FlowID(b *testing.B) {
	h := New(1)
	data := make([]byte, 13)
	b.SetBytes(13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Sum64(data)
	}
}

func BenchmarkFamilySumAll8(b *testing.B) {
	fam := NewFamily(8, 1)
	data := make([]byte, 13)
	var out []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = fam.SumAll(data, out)
	}
}
