// Wire-speed membership filtering: the paper's motivating IP-lookup /
// packet-classification scenario (Section 1.1).
//
// A blocklist of flow signatures is loaded into both a standard Bloom
// filter and a ShBF_M of identical memory and accuracy targets, then a
// mixed packet stream is classified through each. The example prints
// throughput (Mqps), per-query memory accesses, and the measured
// false-positive rates — the three quantities of the paper's Figures
// 7–9 — on live data.
//
// Run with: go run ./examples/ipmembership
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"shbf"
	"shbf/internal/baseline"
	"shbf/internal/memmodel"
)

// The blocklist is sized so the filter stays cache-resident — the
// paper's deployment argument is precisely that the query-side bit
// array fits in on-chip SRAM (Section 3.3); per-query cost is then
// bounded by hash computations and word fetches, which is where ShBF_M
// halves the work.
const (
	blocklistSize = 20000
	k             = 8
	streamLen     = 400000 // half blocked, half clean
	passes        = 3      // timing passes; the best is reported
)

func main() {
	nf := float64(blocklistSize)
	m := int(nf * k / math.Ln2)

	// Two instances of each filter: a clean one for timing and an
	// instrumented twin (same seed ⇒ identical bits) for access counts,
	// so the accounting never distorts the throughput numbers.
	var shAcc, bfAcc memmodel.Counter
	shFilter, err := shbf.NewMembership(m, k, shbf.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	shCounted, err := shbf.NewMembership(m, k, shbf.WithSeed(5), shbf.WithAccessCounter(&shAcc))
	if err != nil {
		log.Fatal(err)
	}
	bfFilter, err := baseline.NewBF(m, k, baseline.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	bfCounted, err := baseline.NewBF(m, k, baseline.WithSeed(5), baseline.WithAccessCounter(&bfAcc))
	if err != nil {
		log.Fatal(err)
	}

	// Load the blocklist into the filters.
	rng := rand.New(rand.NewSource(11))
	blocked := make([][]byte, blocklistSize)
	for i := range blocked {
		blocked[i] = flowID(rng, uint32(i), 0)
		shFilter.Add(blocked[i])
		shCounted.Add(blocked[i])
		bfFilter.Add(blocked[i])
		bfCounted.Add(blocked[i])
	}

	// Build the packet stream: half blocked flows, half clean.
	stream := make([][]byte, 0, streamLen)
	for i := 0; i < streamLen/2; i++ {
		stream = append(stream, blocked[i%blocklistSize])
		stream = append(stream, flowID(rng, uint32(i), 0xFF))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	fmt.Printf("blocklist: %d flows in %d KiB (both filters equal-sized)\n\n",
		blocklistSize, shFilter.SizeBytes()/1024)

	shMqps, shHits := classify(stream, shFilter.Contains)
	bfMqps, bfHits := classify(stream, bfFilter.Contains)

	shAcc.Reset()
	bfAcc.Reset()
	for _, pkt := range stream {
		shCounted.Contains(pkt)
		bfCounted.Contains(pkt)
	}
	shReads := float64(shAcc.Reads()) / float64(len(stream))
	bfReads := float64(bfAcc.Reads()) / float64(len(stream))

	fmt.Printf("\n%-8s %12s %18s %12s\n", "filter", "Mqps", "accesses/query", "hits")
	fmt.Printf("%-8s %12.2f %18.2f %12d\n", "ShBF_M", shMqps, shReads, shHits)
	fmt.Printf("%-8s %12.2f %18.2f %12d\n", "BF", bfMqps, bfReads, bfHits)
	fmt.Printf("\nShBF_M speedup: %.2f×;  access ratio: %.2f (paper: ≈2× fewer accesses)\n",
		shMqps/bfMqps, shReads/bfReads)

	// Hits exceed streamLen/2 only by false positives; both filters are
	// configured for ≈0.5^k ≈ 0.4%.
	extra := float64(shHits-streamLen/2) / float64(streamLen/2)
	fmt.Printf("ShBF_M false-hit rate on clean traffic: %.4f%%\n", 100*extra)
}

// classify pushes the stream through the filter several times and
// reports the best pass (first pass warms the caches).
func classify(stream [][]byte, contains func([]byte) bool) (mqps float64, hits int) {
	var best time.Duration
	for p := 0; p < passes; p++ {
		hits = 0
		start := time.Now()
		for _, pkt := range stream {
			if contains(pkt) {
				hits++
			}
		}
		if elapsed := time.Since(start); p == 0 || elapsed < best {
			best = elapsed
		}
	}
	return float64(len(stream)) / best.Seconds() / 1e6, hits
}

func flowID(rng *rand.Rand, seq uint32, tag byte) []byte {
	id := make([]byte, 13)
	rng.Read(id)
	id[4], id[5], id[6], id[7] = byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24)
	id[12] = tag
	return id
}
