package core

import (
	"errors"
	"math/rand"
	"testing"
)

func mustCountingMult(t *testing.T, m, k, c int, opts ...Option) *CountingMultiplicity {
	t.Helper()
	f, err := NewCountingMultiplicity(m, k, c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCountingMultiplicityValidation(t *testing.T) {
	for _, tt := range []struct{ m, k, c int }{
		{0, 4, 10}, {100, 0, 10}, {100, 4, 0}, {100, 4, 65},
	} {
		if _, err := NewCountingMultiplicity(tt.m, tt.k, tt.c); err == nil {
			t.Errorf("NewCountingMultiplicity(%d,%d,%d) accepted invalid config", tt.m, tt.k, tt.c)
		}
	}
}

func TestCountingMultiplicityInsertTracksCount(t *testing.T) {
	f := mustCountingMult(t, 20000, 8, 20, WithCounterWidth(8))
	e := []byte("flow")
	for want := 1; want <= 10; want++ {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
		if got := f.Count(e); got < want {
			t.Fatalf("after %d inserts: Count = %d (false negative)", want, got)
		}
		if got := f.ExactCount(e); got != want {
			t.Fatalf("after %d inserts: ExactCount = %d", want, got)
		}
	}
}

func TestCountingMultiplicityDelete(t *testing.T) {
	f := mustCountingMult(t, 20000, 8, 20, WithCounterWidth(8))
	e := []byte("flow")
	for i := 0; i < 5; i++ {
		f.Insert(e)
	}
	for want := 4; want >= 0; want-- {
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
		if got := f.ExactCount(e); got != want {
			t.Fatalf("ExactCount = %d, want %d", got, want)
		}
		if want > 0 && f.Count(e) < want {
			t.Fatalf("Count = %d underestimates %d", f.Count(e), want)
		}
	}
	if err := f.Delete(e); !errors.Is(err, ErrNotStored) {
		t.Fatalf("Delete(empty) = %v, want ErrNotStored", err)
	}
	// After deleting the only element the filter must be empty.
	if f.bits.OnesCount() != 0 || f.counts.NonZero() != 0 {
		t.Fatal("structure not empty after full deletion")
	}
}

func TestCountingMultiplicityOverflow(t *testing.T) {
	f := mustCountingMult(t, 5000, 4, 3, WithCounterWidth(8))
	e := []byte("x")
	for i := 0; i < 3; i++ {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Insert(e); !errors.Is(err, ErrCountOverflow) {
		t.Fatalf("insert past c = %v, want ErrCountOverflow", err)
	}
	if got := f.ExactCount(e); got != 3 {
		t.Fatalf("failed insert changed count to %d", got)
	}
}

func TestCountingMultiplicityOneEncodingPerElement(t *testing.T) {
	// "One element with multiple multiplicities is always inserted into
	// the filter one time" (Section 5.3.1): k counters per element, no
	// matter how many inserts.
	f := mustCountingMult(t, 10000, 8, 30, WithCounterWidth(8))
	e := []byte("hot flow")
	for i := 0; i < 25; i++ {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.counts.NonZero(); got > 8 {
		t.Fatalf("%d non-zero counters for one element, want ≤ k = 8", got)
	}
}

func TestCountingMultiplicityManyElements(t *testing.T) {
	f := mustCountingMult(t, 60000, 6, 15, WithCounterWidth(8))
	rng := rand.New(rand.NewSource(2))
	elems := genElements(1500, 3)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(15) + 1
		for j := 0; j < truth[i]; j++ {
			if err := f.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, e := range elems {
		if got := f.ExactCount(e); got != truth[i] {
			t.Fatalf("element %d: ExactCount %d, want %d", i, got, truth[i])
		}
		if got := f.Count(e); got < truth[i] {
			t.Fatalf("element %d: Count %d underestimates %d (false negative)", i, got, truth[i])
		}
	}
}

func TestCountingMultiplicityInterleavedChurn(t *testing.T) {
	f := mustCountingMult(t, 40000, 6, 25, WithCounterWidth(8))
	rng := rand.New(rand.NewSource(4))
	elems := genElements(300, 5)
	ref := make([]int, len(elems))
	for op := 0; op < 5000; op++ {
		i := rng.Intn(len(elems))
		if rng.Intn(2) == 0 && ref[i] < 25 {
			if err := f.Insert(elems[i]); err != nil {
				t.Fatal(err)
			}
			ref[i]++
		} else if ref[i] > 0 {
			if err := f.Delete(elems[i]); err != nil {
				t.Fatal(err)
			}
			ref[i]--
		}
	}
	for i, e := range elems {
		if got := f.ExactCount(e); got != ref[i] {
			t.Fatalf("element %d: ExactCount %d, want %d", i, got, ref[i])
		}
		if ref[i] > 0 && f.Count(e) < ref[i] {
			t.Fatalf("element %d: false negative (%d < %d)", i, f.Count(e), ref[i])
		}
	}
}

func TestCountingMultiplicityUnsafeMode(t *testing.T) {
	// Section 5.3.1 mode: no hash table, multiplicity learned from B.
	f := mustCountingMult(t, 30000, 8, 20, WithCounterWidth(8), WithUnsafeUpdates())
	if !f.Unsafe() {
		t.Fatal("WithUnsafeUpdates not applied")
	}
	e := []byte("lonely element")
	for want := 1; want <= 10; want++ {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
		// On an otherwise-empty filter B-queries are exact, so the
		// update sequence behaves like the safe mode.
		if got := f.Count(e); got != want {
			t.Fatalf("unsafe mode, empty filter: Count = %d, want %d", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExactCount in unsafe mode should panic")
		}
	}()
	f.ExactCount(e)
}

func TestCountingMultiplicityUnsafeModeCanFalseNegative(t *testing.T) {
	// Demonstrate the Section 5.3.1 failure mechanism: under load, a
	// false-positive multiplicity read during update decrements foreign
	// counters and can produce false negatives. We assert only that the
	// safe mode never underestimates on the same workload — and record
	// whether the unsafe mode did (it usually does at this density).
	const m, k, c = 3000, 4, 10
	run := func(unsafe bool) (falseNegatives int) {
		var opts []Option
		opts = append(opts, WithCounterWidth(8), WithSeed(42))
		if unsafe {
			opts = append(opts, WithUnsafeUpdates())
		}
		f, err := NewCountingMultiplicity(m, k, c, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		elems := genElements(800, 7)
		ref := make([]int, len(elems))
		for op := 0; op < 4000; op++ {
			i := rng.Intn(len(elems))
			if ref[i] < c {
				if err := f.Insert(elems[i]); err != nil {
					continue // saturation under pressure is fine here
				}
				ref[i]++
			}
		}
		for i, e := range elems {
			if ref[i] > 0 && f.Count(e) < ref[i] {
				falseNegatives++
			}
		}
		return falseNegatives
	}
	if fn := run(false); fn != 0 {
		t.Fatalf("safe mode produced %d false negatives", fn)
	}
	t.Logf("unsafe mode false negatives at high load: %d", run(true))
}

func BenchmarkCountingMultiplicityInsert(b *testing.B) {
	f, _ := NewCountingMultiplicity(1<<20, 8, 57, WithCounterWidth(8))
	elems := genElements(65536, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Insert(elems[i%65536])
	}
}
