package window

import (
	"time"

	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Multiplicity is the sliding-window multiplicity filter: a generation
// ring of CShBF_X filters. Insert increments a key's count in the head
// generation; Count sums the key's count across every generation, so a
// flow's reported size is the number of in-window insertions — and,
// per generation, counts never underestimate (the paper's one-sided
// guarantee carries through the sum). Rotation retires the oldest
// tick's counts wholesale, which is how a streaming deployment keeps
// "packets in the last N minutes" instead of "packets ever". Not safe
// for concurrent use — see sharded.WindowMultiplicity.
type Multiplicity struct {
	rot      *Rotator[*core.CountingMultiplicity]
	dscratch []hashing.Digest
}

// NewMultiplicity builds the window from its Spec (Kind
// KindWindowMultiplicity; M, K, C, CounterWidth, UnsafeUpdates and
// Seed describe each CShBF_X generation, Generations the ring length,
// Tick the rotation period). C caps a key's count per generation, so
// the window-wide count is bounded by Generations × C.
func NewMultiplicity(spec core.Spec) (*Multiplicity, error) {
	if err := checkSpec(spec, core.KindWindowMultiplicity); err != nil {
		return nil, err
	}
	fresh := func() (*core.CountingMultiplicity, error) {
		return core.NewCountingMultiplicity(spec.M, spec.K, spec.C, spec.Options()...)
	}
	// CShBF_X (bits + counters + backing table) has no in-place Reset;
	// a retired generation is rebuilt from spec. One rebuild per tick
	// is cold-path work.
	recycle := func(*core.CountingMultiplicity) (*core.CountingMultiplicity, error) {
		return fresh()
	}
	rot, err := NewRotator(spec.Generations, spec.Tick, fresh, recycle)
	if err != nil {
		return nil, err
	}
	return &Multiplicity{rot: rot}, nil
}

// Insert increments e's count in the head generation. It returns
// ErrCountOverflow when the head-generation count would exceed c and
// ErrCounterSaturated when a counter would overflow; the window is
// unchanged on error.
func (w *Multiplicity) Insert(e []byte) error {
	return w.rot.Head().Insert(e)
}

// InsertDigest is Insert for a key whose one-pass digest d is already
// in hand (the key bytes are still needed for the head generation's
// backing table in the default no-false-negative mode).
func (w *Multiplicity) InsertDigest(e []byte, d hashing.Digest) error {
	return w.rot.Head().InsertDigest(e, d)
}

// Delete decrements e's count in the head generation — it undoes an
// in-tick insert. Counts that have rotated into older generations are
// immutable and expire with their generation; deleting a key absent
// from the head returns ErrNotStored.
func (w *Multiplicity) Delete(e []byte) error {
	return w.rot.Head().Delete(e)
}

// DeleteDigest is Delete for an already-digested key.
func (w *Multiplicity) DeleteDigest(e []byte, d hashing.Digest) error {
	return w.rot.Head().DeleteDigest(e, d)
}

// Count returns e's total in-window multiplicity: one digest pass,
// then the cached digest sums each generation's count. Never an
// underestimate (in the default update mode); 0 only for definite
// non-members of every generation.
func (w *Multiplicity) Count(e []byte) int {
	return w.CountDigest(hashing.KeyDigest(e))
}

// CountDigest answers Count for the element whose digest is d.
func (w *Multiplicity) CountDigest(d hashing.Digest) int {
	total := 0
	for _, g := range w.rot.gens {
		total += g.CountDigest(d)
	}
	return total
}

// AddAll increments every key's count by one in the head generation,
// stopping at the first failed insert (earlier keys stay applied; the
// error reports the failing index).
func (w *Multiplicity) AddAll(keys [][]byte) error {
	return w.rot.Head().AddAll(keys)
}

// CountAll queries a whole batch: keys are digested once into the
// window's scratch, then each cached digest sums across the ring.
// Counts land in dst (resized to len(keys)); steady-state batches do
// not allocate.
func (w *Multiplicity) CountAll(dst []int, keys [][]byte) []int {
	dst = resizeSlice(dst, len(keys))
	ds := digestAll(&w.dscratch, keys)
	for i, d := range ds {
		dst[i] = w.CountDigest(d)
	}
	return dst
}

// Rotate retires the oldest generation's counts and installs a fresh
// head generation. Rebuilding the generation can only fail on
// exhausted memory.
func (w *Multiplicity) Rotate() error { return w.rot.Rotate() }

// RotateIfDue rotates once when the spec's Tick has elapsed since the
// last due rotation, reporting whether it did. See Rotator.RotateIfDue.
func (w *Multiplicity) RotateIfDue(now time.Time) (bool, error) { return w.rot.RotateIfDue(now) }

// Window returns the rotation snapshot: ring length, epoch, tick, and
// per-generation occupancy newest to oldest.
func (w *Multiplicity) Window() Info {
	return w.rot.info(func(f *core.CountingMultiplicity) GenInfo {
		return GenInfo{N: f.N(), FillRatio: f.FillRatio()}
	})
}

// M returns the per-generation base array size in bits.
func (w *Multiplicity) M() int { return w.rot.Head().M() }

// K returns the bit positions per element.
func (w *Multiplicity) K() int { return w.rot.Head().K() }

// C returns the per-generation maximum multiplicity.
func (w *Multiplicity) C() int { return w.rot.Head().C() }

// Generations returns the ring length G.
func (w *Multiplicity) Generations() int { return w.rot.Generations() }

// Epoch returns the number of completed rotations.
func (w *Multiplicity) Epoch() uint64 { return w.rot.Epoch() }

// N returns the total distinct elements held across generations (a key
// spanning rotations counts once per generation), or −1 when the
// generations run in the unsafe update mode, which tracks no exact
// set.
func (w *Multiplicity) N() int {
	total := 0
	for _, g := range w.rot.gens {
		n := g.N()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// SizeBytes returns the combined footprint of all generations.
func (w *Multiplicity) SizeBytes() int {
	b := 0
	for _, g := range w.rot.gens {
		b += g.SizeBytes()
	}
	return b
}

// FillRatio returns the mean query-array fill ratio across
// generations.
func (w *Multiplicity) FillRatio() float64 {
	s := 0.0
	for _, g := range w.rot.gens {
		s += g.FillRatio()
	}
	return s / float64(len(w.rot.gens))
}

// Kind returns core.KindWindowMultiplicity.
func (w *Multiplicity) Kind() core.Kind { return core.KindWindowMultiplicity }

// Spec returns the construction geometry; New(w.Spec()) builds an
// empty ring identical to w before any Insert.
func (w *Multiplicity) Spec() core.Spec {
	return windowSpec(w.rot.Head().Spec(), core.KindWindowMultiplicity,
		w.rot.Generations(), w.rot.Tick())
}

// Stats returns the aggregate occupancy snapshot (N sums generations,
// FillRatio is their mean).
func (w *Multiplicity) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindWindowMultiplicity,
		N:         w.N(),
		SizeBytes: w.SizeBytes(),
		FillRatio: w.FillRatio(),
	}
}
