// Package trace is the reproduction's substitute for the paper's
// real-world network traces. The authors captured 10M packets (8M
// distinct 5-tuple flow IDs) on a 10 Gbps backbone link and stored each
// flow ID as a 13-byte string: source IP, destination IP, source port,
// destination port, protocol (Section 6.1).
//
// We cannot redistribute that capture, so this package generates
// synthetic 13-byte flow IDs with the same format and — the property
// that actually matters — distinctness guarantees. Every structure
// under evaluation consumes flow IDs through uniform hash functions,
// after which any distinct-ID distribution is statistically equivalent
// to the real trace for FPR, access-count and throughput purposes
// (DESIGN.md §5 records this substitution). Multiplicity experiments
// additionally need a skewed count distribution; Multiset draws
// Zipf-like counts capped at the experiment's c, matching the flow-size
// measurement workload of Section 6.4.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
)

// FlowIDLen is the paper's flow-ID size: 4+4+2+2+1 bytes.
const FlowIDLen = 13

// FlowID is a 13-byte 5-tuple flow identifier.
type FlowID [FlowIDLen]byte

// SrcIP, DstIP, SrcPort, DstPort and Proto decode the tuple fields.
func (f FlowID) SrcIP() [4]byte  { return [4]byte{f[0], f[1], f[2], f[3]} }
func (f FlowID) DstIP() [4]byte  { return [4]byte{f[4], f[5], f[6], f[7]} }
func (f FlowID) SrcPort() uint16 { return binary.BigEndian.Uint16(f[8:10]) }
func (f FlowID) DstPort() uint16 { return binary.BigEndian.Uint16(f[10:12]) }
func (f FlowID) Proto() byte     { return f[12] }

// String renders the tuple in the usual src->dst/proto notation.
func (f FlowID) String() string {
	s, d := f.SrcIP(), f.DstIP()
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%d",
		s[0], s[1], s[2], s[3], f.SrcPort(),
		d[0], d[1], d[2], d[3], f.DstPort(), f.Proto())
}

// Flow pairs a flow ID with its packet count (multiplicity).
type Flow struct {
	ID    FlowID
	Count int
}

// Generator produces deterministic synthetic flow IDs. IDs from one
// generator are globally distinct across all calls (a monotone sequence
// number is embedded in the destination-IP field), so "negatives" for a
// query workload are simply the next IDs drawn from the same generator.
type Generator struct {
	rng *rand.Rand
	seq uint32
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Next returns a fresh flow ID, distinct from every ID this generator
// has produced.
func (g *Generator) Next() FlowID {
	var f FlowID
	g.rng.Read(f[:])
	// Distinctness: the destination IP carries the sequence number.
	binary.BigEndian.PutUint32(f[4:8], g.seq)
	g.seq++
	// Realistic protocol mix: TCP, UDP, ICMP.
	switch g.rng.Intn(10) {
	case 0:
		f[12] = 1 // ICMP
	case 1, 2:
		f[12] = 17 // UDP
	default:
		f[12] = 6 // TCP
	}
	return f
}

// Distinct returns n fresh distinct flow IDs.
func (g *Generator) Distinct(n int) []FlowID {
	out := make([]FlowID, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Multiset returns n distinct flows with Zipf-distributed counts in
// [1, maxCount] (skew parameter s > 1; s ≈ 1.2 resembles flow-size
// skew on backbone links). The generator's determinism makes multiset
// workloads reproducible across runs.
func (g *Generator) Multiset(n, maxCount int, s float64) []Flow {
	if s <= 1 {
		s = 1.01
	}
	zipf := rand.NewZipf(g.rng, s, 1, uint64(maxCount-1))
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{ID: g.Next(), Count: int(zipf.Uint64()) + 1}
	}
	return flows
}

// UniformMultiset returns n distinct flows with counts uniform over
// [1, maxCount] — the workload shape behind the paper's Figure 11
// correctness-rate averages.
func (g *Generator) UniformMultiset(n, maxCount int) []Flow {
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{ID: g.Next(), Count: g.rng.Intn(maxCount) + 1}
	}
	return flows
}

// Bytes converts flow IDs to the []byte element form the filters take.
// The returned slices alias fresh copies, not the inputs.
func Bytes(ids []FlowID) [][]byte {
	out := make([][]byte, len(ids))
	for i := range ids {
		b := make([]byte, FlowIDLen)
		copy(b, ids[i][:])
		out[i] = b
	}
	return out
}

// traceMagic identifies the binary trace format.
var traceMagic = [4]byte{'S', 'H', 'B', 'F'}

// Write serializes flows in a compact binary format (magic, count, then
// 13-byte ID + uint32 count per flow).
func Write(w io.Writer, flows []Flow) error {
	if _, err := w.Write(traceMagic[:]); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(flows)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing count: %w", err)
	}
	var rec [FlowIDLen + 4]byte
	for i := range flows {
		copy(rec[:FlowIDLen], flows[i].ID[:])
		binary.LittleEndian.PutUint32(rec[FlowIDLen:], uint32(flows[i].Count))
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing flow %d: %w", i, err)
		}
	}
	return nil
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Flow, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	// The count header is untrusted input: grow the slice as records
	// actually arrive instead of preallocating n entries, so a corrupt
	// header cannot trigger a huge allocation.
	const chunk = 1 << 16
	capHint := int(n)
	if capHint > chunk {
		capHint = chunk
	}
	flows := make([]Flow, 0, capHint)
	var rec [FlowIDLen + 4]byte
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading flow %d: %w", i, err)
		}
		var fl Flow
		copy(fl.ID[:], rec[:FlowIDLen])
		fl.Count = int(binary.LittleEndian.Uint32(rec[FlowIDLen:]))
		flows = append(flows, fl)
	}
	return flows, nil
}
