package frozen

import (
	"encoding/hex"
	"testing"

	"shbf/internal/core"
	"shbf/internal/flowkeys"
	"shbf/internal/sharded"
	"shbf/internal/window"
)

// probeCount is the equivalence sweep size: the frozen and live query
// paths must agree bit-for-bit over a million keys (half members, half
// not).
const probeCount = 1 << 20

// equivalenceKeys returns members (inserted) and probes (a
// half-member, half-foreign mix of probeCount keys) from one
// deterministic pool.
func equivalenceKeys(nMembers int) (members, probes [][]byte) {
	_, pool := flowkeys.Keys(nMembers + probeCount)
	members = pool[:nMembers]
	probes = append([][]byte{}, pool[nMembers:]...)
	for i := 0; i < len(probes); i += 2 {
		probes[i] = members[i%nMembers]
	}
	return members, probes
}

func TestFrozenEquivalenceCore(t *testing.T) {
	members, probes := equivalenceKeys(1 << 16)
	live, err := core.NewMembership(1<<19, 8, core.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range members {
		live.Add(k)
	}
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fz.N() != live.N() || fz.M() != live.M() || fz.K() != live.K() ||
		fz.MaxOffset() != live.MaxOffset() || fz.Shards() != 1 ||
		fz.SourceKind() != core.KindMembership {
		t.Fatalf("frozen geometry diverges: %+v vs live m=%d k=%d", fz, live.M(), live.K())
	}
	for i, p := range probes {
		if got, want := fz.Contains(p), live.Contains(p); got != want {
			t.Fatalf("probe %d: frozen=%v live=%v", i, got, want)
		}
	}
	// Batch path agrees with the scalar path.
	dst := fz.ContainsAll(nil, probes[:4096])
	want := live.ContainsAll(nil, probes[:4096])
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("batch probe %d: frozen=%v live=%v", i, dst[i], want[i])
		}
	}
}

func TestFrozenEquivalenceSharded(t *testing.T) {
	members, probes := equivalenceKeys(1 << 16)
	live, err := sharded.New(1<<20, 8, 8, core.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := live.AddAll(members); err != nil {
		t.Fatal(err)
	}
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fz.Shards() != live.Shards() || fz.N() != live.N() ||
		fz.SourceKind() != core.KindShardedMembership || fz.Seed() != live.Spec().Seed {
		t.Fatalf("frozen geometry diverges from live sharded filter")
	}
	liveAns := live.ContainsAll(nil, probes)
	frozAns := fz.ContainsAll(nil, probes)
	for i := range probes {
		if frozAns[i] != liveAns[i] {
			t.Fatalf("probe %d: frozen=%v live=%v", i, frozAns[i], liveAns[i])
		}
	}
}

func TestFrozenEquivalenceCounting(t *testing.T) {
	live, err := core.NewCountingMembership(1<<14, 8, core.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	_, keys := flowkeys.Keys(4096)
	for _, k := range keys[:2048] {
		if err := live.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fz.SourceKind() != core.KindCountingMembership {
		t.Fatalf("source kind = %v", fz.SourceKind())
	}
	for i, k := range keys {
		if got, want := fz.Contains(k), live.Contains(k); got != want {
			t.Fatalf("probe %d: frozen=%v live=%v", i, got, want)
		}
	}
}

// TestFrozenEquivalenceWindow pins the union-collapse semantics: a
// single-generation ring freezes bit-identically; a multi-generation
// ring's frozen form answers a superset (never a false negative for
// any in-window key).
func TestFrozenEquivalenceWindow(t *testing.T) {
	_, keys := flowkeys.Keys(3 << 12)
	spec := core.Spec{Kind: core.KindWindowMembership, M: 1 << 16, K: 8, Seed: 11,
		MaxOffset: core.DefaultMaxOffset, Generations: 3}
	live, err := window.NewMembership(spec)
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 3; gen++ {
		for _, k := range keys[gen<<12 : (gen+1)<<12] {
			live.Add(k)
		}
		if gen < 2 {
			if err := live.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fz.SourceKind() != core.KindWindowMembership || fz.N() != live.N() {
		t.Fatalf("frozen window header diverges: kind=%v n=%d want n=%d", fz.SourceKind(), fz.N(), live.N())
	}
	for i, k := range keys {
		if live.Contains(k) && !fz.Contains(k) {
			t.Fatalf("key %d: live window answers true, frozen union answers false", i)
		}
	}

	// A ring whose keys all live in one generation (no rotation yet)
	// is bit-identical to its frozen form: the union of one occupied
	// generation and empty ones is that generation.
	spec.Generations = 2
	one, err := window.NewMembership(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:1<<12] {
		one.Add(k)
	}
	oneBlob, err := Append(nil, one)
	if err != nil {
		t.Fatal(err)
	}
	oneFz, err := Open(oneBlob)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if got, want := oneFz.Contains(k), one.Contains(k); got != want {
			t.Fatalf("single-gen probe %d: frozen=%v live=%v", i, got, want)
		}
	}
}

func TestFrozenEquivalenceShardedWindow(t *testing.T) {
	_, keys := flowkeys.Keys(1 << 13)
	spec := core.Spec{Kind: core.KindWindowShardedMembership, M: 1 << 18, K: 8, Seed: 13,
		MaxOffset: core.DefaultMaxOffset, Generations: 2, Shards: 4}
	live, err := sharded.NewWindow(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.AddAll(keys[:1<<12]); err != nil {
		t.Fatal(err)
	}
	if err := live.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := live.AddAll(keys[1<<12:]); err != nil {
		t.Fatal(err)
	}
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fz.Shards() != live.Shards() || fz.SourceKind() != core.KindWindowShardedMembership {
		t.Fatalf("frozen sharded-window header diverges")
	}
	liveAns := live.ContainsAll(nil, keys)
	for i, k := range keys {
		if liveAns[i] && !fz.Contains(k) {
			t.Fatalf("key %d: live answers true, frozen union answers false", i)
		}
	}
}

func TestFreezeUnsupportedKind(t *testing.T) {
	mult, err := core.NewMultiplicity(1<<12, 8, 57)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Append(nil, mult); err == nil {
		t.Fatal("freezing a multiplicity filter should fail")
	}
}

// TestFrozenZeroAlloc is the zero-allocation guard on the frozen query
// path: Contains and ContainsAll (with a reused dst) must not allocate.
func TestFrozenZeroAlloc(t *testing.T) {
	_, keys := flowkeys.Keys(4096)
	live, err := sharded.New(1<<18, 8, 4, core.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := live.AddAll(keys[:2048]); err != nil {
		t.Fatal(err)
	}
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	probe := keys[1]
	if allocs := testing.AllocsPerRun(100, func() {
		fz.Contains(probe)
	}); allocs != 0 {
		t.Fatalf("frozen Contains allocates %.1f/op, want 0", allocs)
	}
	dst := make([]bool, 0, len(keys))
	if allocs := testing.AllocsPerRun(100, func() {
		dst = fz.ContainsAll(dst[:0], keys)
	}); allocs != 0 {
		t.Fatalf("frozen ContainsAll allocates %.1f/op, want 0", allocs)
	}
}

// TestFrozenGoldenBytes pins the ShBZ container layout byte for byte
// (like the Sum128 golden vectors): a frozen file written today must
// open forever. Any failure here is a format break — bump the version
// instead of changing the layout.
func TestFrozenGoldenBytes(t *testing.T) {
	live, err := core.NewMembership(128, 4, core.WithSeed(1), core.WithMaxOffset(57))
	if err != nil {
		t.Fatal(err)
	}
	live.Add([]byte("alpha"))
	live.Add([]byte("beta"))
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(blob)
	if got != goldenShBZ {
		t.Fatalf("ShBZ bytes changed:\n got %s\nwant %s", got, goldenShBZ)
	}
	// And the pinned bytes still open and answer.
	want, err := hex.DecodeString(goldenShBZ)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Open(want)
	if err != nil {
		t.Fatalf("pinned golden container no longer opens: %v", err)
	}
	if !fz.Contains([]byte("alpha")) || !fz.Contains([]byte("beta")) {
		t.Fatal("pinned golden container lost its members")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	live, err := core.NewMembership(1<<12, 8, core.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	live.Add([]byte("key"))
	blob, err := Append(nil, live)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blob); err != nil {
		t.Fatalf("valid container rejected: %v", err)
	}
	// Trailing bytes are allowed (open-at-offset in a larger region).
	if _, err := Open(append(append([]byte{}, blob...), 0xFF, 0xFF)); err != nil {
		t.Fatalf("container with trailing bytes rejected: %v", err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":            func(b []byte) []byte { return nil },
		"short header":     func(b []byte) []byte { return b[:32] },
		"bad magic":        func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":      func(b []byte) []byte { b[4] = 99; return b },
		"reserved nonzero": func(b []byte) []byte { b[6] = 1; return b },
		"zero shards":      func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0, 0, 0, 0; return b },
		"odd k":            func(b []byte) []byte { b[12] = 7; return b },
		"zero m": func(b []byte) []byte {
			for i := 16; i < 24; i++ {
				b[i] = 0
			}
			return b
		},
		"wild wbar":      func(b []byte) []byte { b[24] = 200; return b },
		"truncated body": func(b []byte) []byte { return b[:len(b)-8] },
		"lying total":    func(b []byte) []byte { b[56] ^= 0xFF; return b },
	}
	for name, corrupt := range cases {
		if _, err := Open(corrupt(append([]byte{}, blob...))); err == nil {
			t.Errorf("%s: corrupted container opened without error", name)
		}
	}
}

func TestStackRoundTrip(t *testing.T) {
	_, keys := flowkeys.Keys(1 << 12)
	var b StackBuilder
	lives := make([]*core.Membership, 8)
	for i := range lives {
		f, err := core.NewMembership(1<<12, 8, core.WithSeed(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys[i<<9 : (i+1)<<9] {
			f.Add(k)
		}
		lives[i] = f
		if err := b.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	// AddFrozen round-trips pre-frozen bytes too.
	extra, err := Append(nil, lives[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddFrozen(extra); err != nil {
		t.Fatal(err)
	}
	file := b.Finish()
	st, err := OpenStack(file)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 9 {
		t.Fatalf("stack has %d filters, want 9", st.Len())
	}
	for i, live := range lives {
		fz, err := st.At(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := fz.Contains(k), live.Contains(k); got != want {
				t.Fatalf("stack filter %d: frozen=%v live=%v", i, got, want)
			}
		}
	}
	if _, err := st.At(9); err == nil {
		t.Fatal("out-of-range At should fail")
	}
	if _, err := st.At(-1); err == nil {
		t.Fatal("negative At should fail")
	}
	// A duplicate container answers like its source.
	dup, err := st.At(8)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Contains(keys[0]) {
		t.Fatal("AddFrozen entry lost its members")
	}
}

func TestStackRejectsCorruption(t *testing.T) {
	var b StackBuilder
	f, err := core.NewMembership(1<<10, 4, core.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]byte("k"))
	if err := b.Add(f); err != nil {
		t.Fatal(err)
	}
	file := b.Finish()
	if _, err := OpenStack(file); err != nil {
		t.Fatalf("valid stack rejected: %v", err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":           func(d []byte) []byte { return nil },
		"short":           func(d []byte) []byte { return d[:16] },
		"bad magic":       func(d []byte) []byte { d[len(d)-1] = 'X'; return d },
		"bad version":     func(d []byte) []byte { d[len(d)-8] = 9; return d },
		"lying total":     func(d []byte) []byte { d[len(d)-16] ^= 0xFF; return d },
		"truncated front": func(d []byte) []byte { return d[64:] },
		"wild index off":  func(d []byte) []byte { d[len(d)-32] ^= 0xFF; return d },
	}
	for name, corrupt := range cases {
		if _, err := OpenStack(corrupt(append([]byte{}, file...))); err == nil {
			t.Errorf("%s: corrupted stack opened without error", name)
		}
	}
}

// TestAppendFrozenRejectsGarbage pins builder-side validation.
func TestAppendFrozenRejectsGarbage(t *testing.T) {
	var b StackBuilder
	if err := b.AddFrozen([]byte("not a container")); err == nil {
		t.Fatal("AddFrozen accepted garbage")
	}
	if b.Len() != 0 {
		t.Fatal("failed AddFrozen left an entry behind")
	}
}

// BenchmarkFrozenContainsAll drives the frozen batch probe (the CI
// "-bench Frozen" smoke); the full live-vs-frozen comparison lives in
// shbench -frozen.
func BenchmarkFrozenContainsAll(b *testing.B) {
	_, keys := flowkeys.Keys(4096)
	live, err := core.NewMembership(1<<18, 8, core.WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range keys[:2048] {
		live.Add(k)
	}
	blob, err := Append(nil, live)
	if err != nil {
		b.Fatal(err)
	}
	fz, err := Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]bool, 0, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = fz.ContainsAll(dst[:0], keys)
	}
	_ = dst
}

// BenchmarkFrozenStackOpen measures cold-open cost per stacked filter.
func BenchmarkFrozenStackOpen(b *testing.B) {
	var sb StackBuilder
	for i := 0; i < 64; i++ {
		f, err := core.NewMembership(1<<12, 8, core.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := sb.Add(f); err != nil {
			b.Fatal(err)
		}
	}
	file := sb.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := OpenStack(file)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < st.Len(); j++ {
			if _, err := st.At(j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// goldenShBZ pins the exact container bytes for a tiny deterministic
// filter (m=128, k=4, w̄=57, seed=1, elements "alpha" then "beta"):
// the 64-byte header followed by one 8-word section, 128 bytes total.
const goldenShBZ = "5368425a01010000010000000400000080000000000000003900000000000000" +
	"0100000000000000020000000000000008000000000000008000000000000000" +
	"0000001000000000400050100000005004000000000000000000000000000000" +
	"0000000000000000000000000000000000000000000000000000000000000000"
