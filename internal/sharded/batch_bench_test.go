package sharded

import (
	"encoding/binary"
	"testing"

	"shbf/internal/core"
)

// The Batch* benchmarks demonstrate the point of the batch-first
// paths: grouping a request batch by shard takes each shard lock once
// per batch instead of once per key. Run the pairs side by side:
//
//	go test -bench=Batch -benchtime=2s ./internal/sharded/
//
// The *Loop variants are the per-key baselines the serving layer used
// before the batch API existed.

const (
	benchBatch  = 1024
	benchShards = 16
)

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 13)
		binary.LittleEndian.PutUint64(k, uint64(i)*0x9e3779b97f4a7c15)
		keys[i] = k
	}
	return keys
}

func benchFilter(b *testing.B) (*Filter, [][]byte) {
	b.Helper()
	f, err := New(1<<22, 8, benchShards, core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(benchBatch)
	if err := f.AddAll(keys); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	return f, keys
}

func BenchmarkBatchContainsAll(b *testing.B) {
	f, keys := benchFilter(b)
	dst := make([]bool, len(keys))
	for i := 0; i < b.N; i++ {
		dst = f.ContainsAll(dst, keys)
	}
}

func BenchmarkBatchContainsLoop(b *testing.B) {
	f, keys := benchFilter(b)
	dst := make([]bool, len(keys))
	for i := 0; i < b.N; i++ {
		for j, e := range keys {
			dst[j] = f.Contains(e)
		}
	}
}

// The parallel variants model the daemon: many goroutines each serving
// whole request batches against one logical filter. Lock amortization
// matters most here, where per-key locking also buys cross-core
// contention per key.
func BenchmarkBatchContainsAllParallel(b *testing.B) {
	f, keys := benchFilter(b)
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]bool, len(keys))
		for pb.Next() {
			dst = f.ContainsAll(dst, keys)
		}
	})
}

func BenchmarkBatchContainsLoopParallel(b *testing.B) {
	f, keys := benchFilter(b)
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]bool, len(keys))
		for pb.Next() {
			for j, e := range keys {
				dst[j] = f.Contains(e)
			}
		}
	})
}

func BenchmarkBatchAddAll(b *testing.B) {
	f, keys := benchFilter(b)
	for i := 0; i < b.N; i++ {
		if err := f.AddAll(keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchAddLoop(b *testing.B) {
	f, keys := benchFilter(b)
	for i := 0; i < b.N; i++ {
		for _, e := range keys {
			f.Add(e)
		}
	}
}

func BenchmarkBatchCountAll(b *testing.B) {
	f, err := NewMultiplicity(1<<22, 4, 57, benchShards, core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(benchBatch)
	if err := f.AddAll(keys); err != nil {
		b.Fatal(err)
	}
	dst := make([]int, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = f.CountAll(dst, keys)
	}
}

func BenchmarkBatchCountLoop(b *testing.B) {
	f, err := NewMultiplicity(1<<22, 4, 57, benchShards, core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(benchBatch)
	if err := f.AddAll(keys); err != nil {
		b.Fatal(err)
	}
	dst := make([]int, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, e := range keys {
			dst[j] = f.Count(e)
		}
	}
}

// Sanity anchor for the benchmark pair: the two paths answer
// identically on the benchmark workload.
func TestBenchPathsAgree(t *testing.T) {
	f, err := New(1<<20, 8, benchShards, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	keys := benchKeys(benchBatch)
	if err := f.AddAll(keys[:512]); err != nil {
		t.Fatal(err)
	}
	batch := f.ContainsAll(nil, keys)
	for i, e := range keys {
		if batch[i] != f.Contains(e) {
			t.Fatalf("mismatch at key %d", i)
		}
	}
	if n := f.N(); n != 512 {
		t.Fatalf("N = %d after batch add, want 512", n)
	}
}
