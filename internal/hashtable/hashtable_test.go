package hashtable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"shbf/internal/memmodel"
)

func TestPutGetDelete(t *testing.T) {
	tab := New(1)
	if tab.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	tab.Put([]byte("a"), 1)
	tab.Put([]byte("b"), 2)
	tab.Put([]byte("a"), 3) // overwrite
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if v, ok := tab.Get([]byte("a")); !ok || v != 3 {
		t.Fatalf("Get(a) = (%d,%v), want (3,true)", v, ok)
	}
	if !tab.Contains([]byte("b")) {
		t.Fatal("Contains(b) = false")
	}
	if tab.Contains([]byte("c")) {
		t.Fatal("Contains(c) = true")
	}
	if !tab.Delete([]byte("a")) {
		t.Fatal("Delete(a) = false")
	}
	if tab.Delete([]byte("a")) {
		t.Fatal("second Delete(a) = true")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", tab.Len())
	}
}

func TestGrowthKeepsAllKeys(t *testing.T) {
	tab := New(7)
	const n = 10000
	for i := 0; i < n; i++ {
		tab.Put([]byte(fmt.Sprintf("key-%d", i)), uint64(i))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tab.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(key-%d) = (%d,%v)", i, v, ok)
		}
	}
	// With doubling at load factor 4 the chains stay short.
	if got := tab.MaxChainLength(); got > 16 {
		t.Fatalf("MaxChainLength = %d, suspiciously long", got)
	}
}

func TestAddSub(t *testing.T) {
	tab := New(2)
	if got := tab.Add([]byte("x"), 3); got != 3 {
		t.Fatalf("Add new = %d, want 3", got)
	}
	if got := tab.Add([]byte("x"), 2); got != 5 {
		t.Fatalf("Add existing = %d, want 5", got)
	}
	if v, ok := tab.Sub([]byte("x"), 1); !ok || v != 4 {
		t.Fatalf("Sub = (%d,%v), want (4,true)", v, ok)
	}
	if v, ok := tab.Sub([]byte("x"), 10); !ok || v != 0 {
		t.Fatalf("Sub to zero = (%d,%v), want (0,true)", v, ok)
	}
	if tab.Contains([]byte("x")) {
		t.Fatal("key survives Sub to zero")
	}
	if _, ok := tab.Sub([]byte("missing"), 1); ok {
		t.Fatal("Sub of missing key reported ok")
	}
}

func TestRange(t *testing.T) {
	tab := New(3)
	want := map[string]uint64{"a": 1, "b": 2, "c": 3}
	for k, v := range want {
		tab.Put([]byte(k), v)
	}
	got := map[string]uint64{}
	tab.Range(func(k []byte, v uint64) bool {
		got[string(k)] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range saw %s=%d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	visits := 0
	tab.Range(func([]byte, uint64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("Range after false visited %d keys, want 1", visits)
	}
}

func TestMirrorsMapProperty(t *testing.T) {
	// Property: a random op sequence leaves the table equal to a Go map.
	type op struct {
		Key uint8
		Val uint16
		Del bool
	}
	f := func(ops []op) bool {
		tab := New(11)
		ref := map[string]uint64{}
		for _, o := range ops {
			k := []byte{o.Key}
			if o.Del {
				delete(ref, string(k))
				tab.Delete(k)
			} else {
				ref[string(k)] = uint64(o.Val)
				tab.Put(k, uint64(o.Val))
			}
		}
		if tab.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tab.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccessAccounting(t *testing.T) {
	var c memmodel.Counter
	tab := New(5)
	tab.SetCounter(&c)
	tab.Put([]byte("k"), 1)
	if c.Writes() == 0 {
		t.Fatal("Put charged no writes")
	}
	c.Reset()
	tab.Get([]byte("k"))
	if c.Reads() == 0 {
		t.Fatal("Get charged no reads")
	}
}

func TestBinaryKeys(t *testing.T) {
	// 13-byte flow IDs with embedded zeros must work as keys.
	tab := New(9)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = make([]byte, 13)
		rng.Read(keys[i])
		keys[i][5] = 0 // force embedded NUL
		tab.Put(keys[i], uint64(i))
	}
	for i, k := range keys {
		if v, ok := tab.Get(k); !ok || v != uint64(i) {
			t.Fatalf("binary key %d lost: (%d,%v)", i, v, ok)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	tab := New(1)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Put(keys[i&1023], uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tab := New(1)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		tab.Put(keys[i], uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Get(keys[i&1023])
	}
}
