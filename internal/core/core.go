// Package core implements the Shifting Bloom Filter (ShBF) framework of
// Yang et al., "A Shifting Bloom Filter Framework for Set Queries"
// (VLDB 2016) — the paper's primary contribution.
//
// The framework encodes, for each element e of a set, two kinds of
// information: existence information in k hash positions h_i(e) % m, and
// auxiliary information in a location offset o(e). Bits are set at
// positions h_i(e)%m + o(e); queries read a small window of consecutive
// bits per position and recover both kinds of information from where the
// 1s fall (paper Figure 1). Because the maximum offset w̄ is chosen ≤
// w−7 for machine word size w, each window costs exactly one memory
// access (Section 3.1).
//
// Three instantiations are provided, matching the paper's sections:
//
//   - Membership (ShBF_M, Section 3): the offset is pure extra
//     randomness, halving hash computations and memory accesses versus a
//     standard Bloom filter at nearly identical false-positive rate.
//     TShift generalizes it to t offsets per group (Section 3.6), and
//     CountingMembership (CShBF_M, Section 3.3) adds deletion.
//
//   - Association (ShBF_A, Section 4): the offset encodes which of two
//     sets an element belongs to (S1−S2 ↦ 0, S1∩S2 ↦ o1, S2−S1 ↦ o2),
//     answering "which set(s) is e in?" with zero false positives among
//     its seven outcome types. CountingAssociation (CShBF_A, Section
//     4.3) adds dynamic updates.
//
//   - Multiplicity (ShBF_X, Section 5): the offset encodes the
//     element's count c(e)−1 in a multi-set. CountingMultiplicity
//     (CShBF_X, Section 5.3) adds updates, in both the paper's
//     no-false-negative mode (hash-table backed, Section 5.3.2) and the
//     false-negative-prone mode it warns about (Section 5.3.1).
//     SCMSketch (Section 5.5) applies the shifting idea to the
//     count-min sketch.
//
// All types take elements as []byte (the evaluation uses 13-byte 5-tuple
// flow IDs) and are not safe for concurrent use: the paper's query loop
// is single-threaded and the structures keep per-instance scratch
// buffers to keep the hot path allocation-free.
package core

import (
	"errors"
	"fmt"

	"shbf/internal/memmodel"
)

// WordBits is the machine word size w the offset bounds are derived
// from. The paper's evaluation uses 64-bit words (Section 3.4.2).
const WordBits = memmodel.WordBits

// DefaultMaxOffset is the paper's recommended maximum offset value
// w̄ = w − 7 for 64-bit architectures, which guarantees both bits of a
// (base, base+offset) pair are read in one memory access and — per
// Section 3.4.2 — makes the ShBF_M false-positive rate essentially equal
// to a standard Bloom filter's (w̄ ≥ 20 suffices; w̄ = 57 is used).
const DefaultMaxOffset = WordBits - 7

// Errors returned by the counting variants.
var (
	// ErrNotStored is returned by deletes of elements whose encoding is
	// not present (some corresponding counter is already zero). Deleting
	// a never-inserted element is a caller bug in every scheme of the
	// paper; the counting filters detect it instead of corrupting state.
	ErrNotStored = errors.New("core: element not stored")

	// ErrCountOverflow is returned when an insert would push an
	// element's multiplicity beyond the filter's configured maximum c.
	ErrCountOverflow = errors.New("core: multiplicity exceeds configured maximum c")

	// ErrCounterSaturated is returned when an update would overflow a
	// fixed-width counter.
	ErrCounterSaturated = errors.New("core: counter saturated")
)

// config carries the options shared by all filters in this package.
type config struct {
	seed         uint64
	maxOffset    int
	counter      *memmodel.Counter
	counterWidth uint
	unsafeUpdate bool
}

func defaultConfig(kind Kind) config {
	cfg := config{
		seed:         0x5b8f_0000,
		maxOffset:    DefaultMaxOffset,
		counterWidth: 4, // "in most applications, 4 bits for a counter are enough" (§3.3)
	}
	if kind == KindSCMSketch {
		cfg.counterWidth = 32 // CM-sketch counters hold full counts (§5.5)
	}
	return cfg
}

// optID names an option for the per-kind applicability check.
type optID uint8

const (
	optSeed optID = iota
	optMaxOffset
	optAccessCounter
	optCounterWidth
	optUnsafeUpdates
)

func (id optID) String() string {
	switch id {
	case optSeed:
		return "WithSeed"
	case optMaxOffset:
		return "WithMaxOffset"
	case optAccessCounter:
		return "WithAccessCounter"
	case optCounterWidth:
		return "WithCounterWidth"
	case optUnsafeUpdates:
		return "WithUnsafeUpdates"
	}
	return "unknown option"
}

// allowed reports whether the option applies to the given kind — i.e.
// whether the kind's constructor actually consumes the config field the
// option sets. Options outside the allowlist are construction errors,
// never silent no-ops: WithUnsafeUpdates on a membership filter or
// WithCounterWidth on a plain (non-counting) kind would otherwise give
// the caller a false sense of having configured something.
func (id optID) allowed(kind Kind) bool {
	switch id {
	case optSeed, optAccessCounter:
		return true
	case optMaxOffset:
		// The multiplicity kinds derive their window from c, and the
		// SCM sketch from the counter width; w̄ is not theirs to set.
		switch kind {
		case KindMultiplicity, KindCountingMultiplicity, KindShardedMultiplicity, KindSCMSketch:
			return false
		}
		return true
	case optCounterWidth:
		switch kind {
		case KindCountingMembership, KindCountingAssociation, KindCountingMultiplicity,
			KindSCMSketch, KindShardedAssociation, KindShardedMultiplicity:
			return true
		}
		return false
	case optUnsafeUpdates:
		return kind == KindCountingMultiplicity || kind == KindShardedMultiplicity
	}
	return false
}

// Option customizes filter construction. Each option applies only to
// the kinds whose constructor consumes it; misapplied options are
// rejected with an error naming the option and the kind.
type Option struct {
	id    optID
	apply func(*config)
}

// CheckOptions validates opts against kind's allowlist without
// building a config. The sharded wrappers call it with their own kind
// before forwarding options to the per-shard constructors, so a
// misapplied option is reported against the kind the caller actually
// asked for, not the inner shard kind.
func CheckOptions(kind Kind, opts ...Option) error {
	for _, o := range opts {
		if !o.id.allowed(kind) {
			return fmt.Errorf("core: option %s does not apply to %s filters", o.id, kind)
		}
	}
	return nil
}

// buildConfig resolves opts against kind's defaults, rejecting options
// that do not apply to kind.
func buildConfig(kind Kind, opts []Option) (config, error) {
	cfg := defaultConfig(kind)
	if err := CheckOptions(kind, opts...); err != nil {
		return cfg, err
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg, nil
}

// ResolveSeed returns the hash seed the given options select — the
// package default when no WithSeed option is present. Wrappers that
// derive per-instance seeds (internal/sharded) use it to mix the
// caller's seed into their derivation.
func ResolveSeed(opts ...Option) uint64 {
	seed := defaultConfig(KindMembership).seed
	for _, o := range opts {
		if o.id == optSeed {
			var cfg config
			o.apply(&cfg)
			seed = cfg.seed
		}
	}
	return seed
}

// WithSeed sets the seed from which the filter derives its independent
// hash functions. Filters built with the same parameters and seed are
// identical; experiments vary the seed across trials.
func WithSeed(seed uint64) Option {
	return Option{id: optSeed, apply: func(c *config) { c.seed = seed }}
}

// WithMaxOffset overrides the maximum offset value w̄. The paper uses
// w̄ = 25 on 32-bit and w̄ = 57 on 64-bit architectures and shows w̄ ≥ 20
// already matches the Bloom-filter FPR (Figure 3). Values are clamped by
// validation in each constructor; the window read stays a single memory
// access only for w̄ ≤ w−7. Applies to the offset-windowed kinds only
// (not multiplicity, whose window is c, nor the SCM sketch).
func WithMaxOffset(wbar int) Option {
	return Option{id: optMaxOffset, apply: func(c *config) { c.maxOffset = wbar }}
}

// WithAccessCounter attaches a memory-access counter charged by the
// filter's bit array per the Section 3.1 model. Used to reproduce the
// "# memory accesses per query" figures.
func WithAccessCounter(mc *memmodel.Counter) Option {
	return Option{id: optAccessCounter, apply: func(c *config) { c.counter = mc }}
}

// WithCounterWidth sets the bit width of the counters in counting
// variants (default 4, per Section 3.3) and the SCM sketch (default
// 32). It does not apply to kinds without counters.
func WithCounterWidth(bits uint) Option {
	return Option{id: optCounterWidth, apply: func(c *config) { c.counterWidth = bits }}
}

// WithUnsafeUpdates selects the Section 5.3.1 update mode for
// CountingMultiplicity: the current multiplicity is learned by querying
// the bit array B instead of a backing hash table. This saves the
// off-chip table at the cost of possible false negatives, exactly as the
// paper describes; the default is the no-false-negative mode of Section
// 5.3.2. It applies only to the counting multiplicity kinds.
func WithUnsafeUpdates() Option {
	return Option{id: optUnsafeUpdates, apply: func(c *config) { c.unsafeUpdate = true }}
}
