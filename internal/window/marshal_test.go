package window

import (
	"testing"
	"time"
)

// TestMarshalRoundTripMembership: the ShBW container restores ring
// contents, head position, epoch and tick bit-for-bit.
func TestMarshalRoundTripMembership(t *testing.T) {
	spec := memSpec(3)
	spec.Tick = 5 * time.Second
	w, err := NewMembership(spec)
	if err != nil {
		t.Fatal(err)
	}
	old := keysOf("old", 150)
	live := keysOf("live", 150)
	w.AddAll(old)
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	w.AddAll(live)

	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Membership
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Spec() != w.Spec() {
		t.Fatalf("spec changed across round trip: %+v vs %+v", back.Spec(), w.Spec())
	}
	if back.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", back.Epoch())
	}
	for _, e := range append(old, live...) {
		if !back.Contains(e) {
			t.Fatalf("key %q lost across round trip", e)
		}
	}
	// The restored head must be the same ring position: rotating
	// G−1 more times must expire old before live.
	for i := 0; i < 2; i++ {
		if err := back.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if back.Contains(old[0]) && !back.Contains(live[0]) {
		t.Fatal("restored ring rotated out the wrong generation — head position lost")
	}
	if !back.Contains(live[0]) {
		t.Fatal("live generation expired too early in the restored ring")
	}
	// Re-marshal equality: same state, same bytes.
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := w.MarshalBinary()
	if string(b1) != string(blob) {
		t.Fatal("marshal is not deterministic")
	}
	_ = blob2
}

// TestMarshalRoundTripMultiplicity: counts and rotation state survive,
// and the restored window still rotates (its recycle closure rebuilds
// generations).
func TestMarshalRoundTripMultiplicity(t *testing.T) {
	w, err := NewMultiplicity(multSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("counted")
	for i := 0; i < 5; i++ {
		if err := w.Insert(key); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Multiplicity
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got := back.Count(key); got < 5 {
		t.Fatalf("restored count %d underestimates 5", got)
	}
	if back.Spec() != w.Spec() {
		t.Fatalf("spec changed: %+v vs %+v", back.Spec(), w.Spec())
	}
	for i := 0; i < 2; i++ {
		if err := back.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := back.Count(key); got != 0 {
		t.Fatalf("count %d after full expiry of the restored ring", got)
	}
}

// TestMarshalRoundTripAssociation.
func TestMarshalRoundTripAssociation(t *testing.T) {
	w, err := NewAssociation(assocSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("assoc-key")
	if err := w.InsertS1(key); err != nil {
		t.Fatal(err)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Association
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Query(key), w.Query(key); got != want {
		t.Fatalf("restored answer %s, want %s", got, want)
	}
	if back.Spec() != w.Spec() {
		t.Fatalf("spec changed: %+v vs %+v", back.Spec(), w.Spec())
	}
}

// TestUnmarshalRejectsCorruptContainers.
func TestUnmarshalRejectsCorruptContainers(t *testing.T) {
	w, err := NewMembership(memSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m Membership
	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    append([]byte("XXXX"), blob[4:]...),
		"bad version":  append(append([]byte(nil), blob[:4]...), append([]byte{99}, blob[5:]...)...),
		"wrong kind":   func() []byte { b := append([]byte(nil), blob...); b[5] ^= 0x7f; return b }(),
		"truncated":    blob[:len(blob)-3],
		"trailing":     append(append([]byte(nil), blob...), 0xff),
		"cross-decode": func() []byte { a, _ := mustAssoc(t).MarshalBinary(); return a }(),
	}
	for name, data := range cases {
		if err := m.UnmarshalBinary(data); err == nil {
			t.Errorf("%s container accepted", name)
		}
	}
}

func mustAssoc(t *testing.T) *Association {
	t.Helper()
	a, err := NewAssociation(assocSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	return a
}
