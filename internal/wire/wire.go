// Package wire defines ShBP, the shbfd daemon's length-prefixed
// binary batch protocol — the serving-cost answer to JSON decode
// dominating small batches (pprof shows request decode above the
// ~30ns/key library probes). One decoded frame feeds a batch library
// path (AddAll/ContainsAll/CountAll/QueryAll) directly: keys decode to
// subslices of the frame buffer, no per-key allocation, no base64.
//
// # Framing
//
// Every message — request and response — is one frame: a 4-byte
// little-endian byte count followed by that many payload bytes. Frames
// are self-contained, so a connection is a simple pipeline: the client
// writes request frames, the server answers each in order.
//
// Request payload layout (all multi-byte integers little-endian;
// "uvarint" is encoding/binary's unsigned varint):
//
//	offset  size  field
//	0       4     magic "ShBP"
//	4       1     version (1)
//	5       1     op code (Op* constants)
//	6       1     arg (association set 1|2 for the association update
//	              ops; 0 elsewhere)
//	7       1     namespace length NL (0 = default namespace)
//	8       NL    namespace (UTF-8; the logical filter trio addressed)
//	8+NL    2     key width W (0 = variable-width keys)
//	10+NL   4     key count N
//	...           keys: N×W bytes packed back to back when W > 0
//	              (the fixed-width fast path: the paper's 13-byte
//	              5-tuple flow IDs pack with zero per-key overhead);
//	              otherwise N × (uvarint length + bytes)
//	...           op tail: OpMultiplicityAdd/OpMultiplicityRemove carry
//	              N uvarint per-key counts; OpNamespaceCreate,
//	              OpMembershipMerge and OpMultiplicityMerge carry a
//	              uvarint-length-prefixed blob (a JSON config and ShBE
//	              envelopes respectively)
//
// Response payload layout:
//
//	offset  size  field
//	0       1     status (Status* constants)
//	1       1     op code echo
//	...           status ≠ StatusOK: uvarint length + error message,
//	              then a uvarint applied-update count (the mid-batch
//	              split point on capacity conflicts; 0 elsewhere)
//	              status = StatusOK: op-specific body (see Response)
//
// Trailing bytes after a decoded message are an error; a frame is one
// message exactly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic opens every request payload.
const Magic = "ShBP"

// Version is the protocol version this package speaks.
const Version = 1

// MaxFrame bounds a frame's declared payload size (requests and
// responses); larger batches must be split by the client. It matches
// the HTTP layer's request-body cap.
const MaxFrame = 32 << 20

// Op codes. The data-plane ops map 1:1 onto the library's batch paths;
// the control-plane ops (rotate, stats, namespace CRUD) mirror the
// /v2 HTTP endpoints so a binary-only client is fully capable.
const (
	OpPing               = 0x01 // liveness; empty body both ways
	OpStats              = 0x02 // namespace stats → JSON blob
	OpRotate             = 0x03 // retire the namespace's oldest window generation
	OpNamespaceCreate    = 0x04 // create a namespace from a JSON config blob
	OpNamespaceDelete    = 0x05 // delete a namespace
	OpNamespaceList      = 0x06 // list namespaces → JSON blob
	OpClusterMap         = 0x07 // fetch the node's cluster map → JSON blob
	OpMetrics            = 0x08 // render daemon metrics → Prometheus text blob
	OpMembershipAdd      = 0x10 // keys → membership AddAll
	OpMembershipContains = 0x11 // keys → membership ContainsAll (bitset reply)
	OpMembershipMerge    = 0x12 // ShBE envelope blob → union into the live filter
	OpMembershipDump     = 0x13 // export the membership filter → ShBE envelope blob
	OpFreeze             = 0x14 // freeze the namespace → ShBZ frozen container blob
	OpAssociationAdd     = 0x20 // keys + set arg → InsertS1/InsertS2
	OpAssociationRemove  = 0x21 // keys + set arg → DeleteS1/DeleteS2
	OpAssociationQuery   = 0x22 // keys → QueryAll (region byte reply)
	OpMultiplicityAdd    = 0x30 // keys + counts → Insert ×count
	OpMultiplicityRemove = 0x31 // keys + counts → Delete ×count
	OpMultiplicityCount  = 0x32 // keys → CountAll (uvarint reply)
	OpMultiplicityMerge  = 0x33 // ShBE envelope blob → counting merge into the live filter
	OpMultiplicityDump   = 0x34 // export the multiplicity filter → ShBE envelope blob
)

// opNames maps op codes to the names used in errors and logs.
var opNames = map[byte]string{
	OpPing:               "ping",
	OpStats:              "stats",
	OpRotate:             "rotate",
	OpNamespaceCreate:    "namespace-create",
	OpNamespaceDelete:    "namespace-delete",
	OpNamespaceList:      "namespace-list",
	OpClusterMap:         "cluster-map",
	OpMetrics:            "metrics",
	OpMembershipAdd:      "membership-add",
	OpMembershipContains: "membership-contains",
	OpMembershipMerge:    "membership-merge",
	OpMembershipDump:     "membership-dump",
	OpFreeze:             "freeze",
	OpAssociationAdd:     "association-add",
	OpAssociationRemove:  "association-remove",
	OpAssociationQuery:   "association-query",
	OpMultiplicityAdd:    "multiplicity-add",
	OpMultiplicityRemove: "multiplicity-remove",
	OpMultiplicityCount:  "multiplicity-count",
	OpMultiplicityMerge:  "multiplicity-merge",
	OpMultiplicityDump:   "multiplicity-dump",
}

// OpName returns the op code's wire name ("op-0x%02x" for unknown
// codes).
func OpName(op byte) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op-0x%02x", op)
}

// ValidOp reports whether op is a defined op code.
func ValidOp(op byte) bool { _, ok := opNames[op]; return ok }

// Response status codes, mirroring the HTTP layer's status mapping.
const (
	StatusOK         = 0
	StatusBadRequest = 1 // malformed frame or arguments
	StatusNotFound   = 2 // unknown namespace
	StatusConflict   = 3 // capacity conditions, not-windowed rotate, duplicate namespace
	StatusInternal   = 4
	// StatusOverloaded is admission control shedding the request —
	// per-tenant rate quota, the daemon memory ceiling, or the ShBP
	// in-flight frame cap (HTTP 429). The request was NOT applied; it
	// is safe to retry after a backoff.
	StatusOverloaded = 5
)

// statusNames maps status codes to names for errors and logs.
var statusNames = map[byte]string{
	StatusOK:         "ok",
	StatusBadRequest: "bad-request",
	StatusNotFound:   "not-found",
	StatusConflict:   "conflict",
	StatusInternal:   "internal",
	StatusOverloaded: "overloaded",
}

// StatusName returns the status code's name.
func StatusName(st byte) string {
	if n, ok := statusNames[st]; ok {
		return n
	}
	return fmt.Sprintf("status-%d", st)
}

// Limits enforced by decoding, so a corrupt or hostile frame cannot
// drive a huge allocation or a quadratic walk.
const (
	// MaxNamespaceLen bounds namespace names (the header field is one
	// byte, but the daemon enforces a tighter charset separately).
	MaxNamespaceLen = 255
	// MaxKeyWidth bounds the fixed key width (the header field is a
	// uint16).
	MaxKeyWidth = 1<<16 - 1
)

// requestHeaderBytes is the fixed part of a request payload before the
// namespace: magic + version + op + arg + nsLen.
const requestHeaderBytes = len(Magic) + 4

var (
	// ErrTruncated reports a frame shorter than its own structure
	// claims.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTrailing reports bytes after a complete message in one frame.
	ErrTrailing = errors.New("wire: trailing bytes after message")
)

// Request is one decoded ShBP request. Keys alias the frame buffer the
// request was decoded from — valid until the next ReadFrame on the
// same buffer; the filters' batch paths consume them before then (the
// key-storing kinds copy internally).
type Request struct {
	// Op is the operation code (Op* constants).
	Op byte
	// Set is the association set argument (1 or 2) for the association
	// update ops; 0 elsewhere.
	Set byte
	// Namespace addresses the logical filter trio ("" = default).
	Namespace string
	// KeyWidth is the fixed key width in bytes, 0 when keys are
	// variable-width. Encoding uses it as given when > 0 (all keys must
	// then have exactly that length).
	KeyWidth int
	// Keys is the batch.
	Keys [][]byte
	// Counts is the per-key multiplicity for OpMultiplicityAdd and
	// OpMultiplicityRemove; len(Counts) must equal len(Keys) (a nil
	// Counts encodes as all-ones).
	Counts []int
	// Blob is the op-specific trailing blob (OpNamespaceCreate's JSON
	// config, OpMembershipMerge's and OpMultiplicityMerge's ShBE
	// envelope).
	Blob []byte
}

// AppendPackedKeys appends the ShBP key block — key width (u16, 0 =
// variable), key count (u32), then the packed keys — to dst. With
// width > 0 every key must be exactly width bytes and keys pack back
// to back with zero per-key overhead; with width 0 each key is
// uvarint-length-prefixed. The same block opens every request payload
// and the ShBU ingest datagram's add-batch body (internal/ingest).
func AppendPackedKeys(dst []byte, width int, keys [][]byte) ([]byte, error) {
	if width < 0 || width > MaxKeyWidth {
		return dst, fmt.Errorf("wire: key width %d out of [0, %d]", width, MaxKeyWidth)
	}
	at := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(width))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	if width > 0 {
		for i, k := range keys {
			if len(k) != width {
				return dst[:at], fmt.Errorf("wire: key %d is %d bytes, frame width is %d", i, len(k), width)
			}
			dst = append(dst, k...)
		}
	} else {
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
		}
	}
	return dst, nil
}

// DecodePackedKeys parses one ShBP key block from the front of data,
// reusing keys' backing array. Decoded keys alias data; rest is the
// remainder after the block. The declared key count is bounded against
// the available bytes before any allocation, so a corrupt block cannot
// drive a huge allocation.
func DecodePackedKeys(keys [][]byte, data []byte) (out [][]byte, width int, rest []byte, err error) {
	if len(data) < 6 {
		return keys, 0, data, fmt.Errorf("%w: key header", ErrTruncated)
	}
	width = int(binary.LittleEndian.Uint16(data))
	count := binary.LittleEndian.Uint32(data[2:])
	rest = data[6:]
	// Every key costs at least one payload byte (a width byte or a
	// length uvarint), so this single check bounds the loops below
	// against absurd declared counts in small frames.
	if width > 0 {
		if need := uint64(count) * uint64(width); uint64(len(rest)) < need {
			return keys, 0, data, fmt.Errorf("%w: %d keys × %d bytes", ErrTruncated, count, width)
		}
	} else if uint64(count) > uint64(len(rest)) {
		return keys, 0, data, fmt.Errorf("%w: %d variable-width keys in %d bytes", ErrTruncated, count, len(rest))
	}
	keys = resize(keys, int(count))
	if width > 0 {
		for i := range keys {
			keys[i] = rest[i*width : (i+1)*width : (i+1)*width]
		}
		rest = rest[int(count)*width:]
	} else {
		for i := range keys {
			n, sz := binary.Uvarint(rest)
			if sz <= 0 || n > uint64(len(rest)-sz) {
				return keys, 0, data, fmt.Errorf("%w: variable-width key %d", ErrTruncated, i)
			}
			keys[i] = rest[sz : sz+int(n) : sz+int(n)]
			rest = rest[sz+int(n):]
		}
	}
	return keys, width, rest, nil
}

// AppendRequest appends req as one complete frame (length prefix
// included) to dst and returns the extended slice.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if !ValidOp(req.Op) {
		return dst, fmt.Errorf("wire: unknown op %d", req.Op)
	}
	if len(req.Namespace) > MaxNamespaceLen {
		return dst, fmt.Errorf("wire: namespace %q longer than %d bytes", req.Namespace, MaxNamespaceLen)
	}
	if req.KeyWidth < 0 || req.KeyWidth > MaxKeyWidth {
		return dst, fmt.Errorf("wire: key width %d out of [0, %d]", req.KeyWidth, MaxKeyWidth)
	}
	if len(req.Counts) != 0 && len(req.Counts) != len(req.Keys) {
		return dst, fmt.Errorf("wire: %d counts for %d keys", len(req.Counts), len(req.Keys))
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // frame length backpatched below
	dst = append(dst, Magic...)
	dst = append(dst, Version, req.Op, req.Set, byte(len(req.Namespace)))
	dst = append(dst, req.Namespace...)
	dst, err := AppendPackedKeys(dst, req.KeyWidth, req.Keys)
	if err != nil {
		return dst[:lenAt], err
	}
	switch req.Op {
	case OpMultiplicityAdd, OpMultiplicityRemove:
		for i := range req.Keys {
			c := 1
			if len(req.Counts) != 0 {
				c = req.Counts[i]
			}
			if c < 0 {
				return dst[:lenAt], fmt.Errorf("wire: negative count %d for key %d", c, i)
			}
			dst = binary.AppendUvarint(dst, uint64(c))
		}
	case OpNamespaceCreate, OpMembershipMerge, OpMultiplicityMerge:
		dst = binary.AppendUvarint(dst, uint64(len(req.Blob)))
		dst = append(dst, req.Blob...)
	}
	n := len(dst) - lenAt - 4
	if n > MaxFrame {
		return dst[:lenAt], fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(n))
	return dst, nil
}

// DecodeRequest parses one request payload (the bytes after the frame
// length prefix) into req, reusing req's Keys and Counts backing
// arrays. Decoded keys alias frame.
func DecodeRequest(req *Request, frame []byte) error {
	if len(frame) < requestHeaderBytes {
		return fmt.Errorf("%w: %d-byte request header", ErrTruncated, len(frame))
	}
	if string(frame[:len(Magic)]) != Magic {
		return fmt.Errorf("wire: bad magic %q", frame[:len(Magic)])
	}
	if v := frame[len(Magic)]; v != Version {
		return fmt.Errorf("wire: unsupported version %d", v)
	}
	req.Op = frame[len(Magic)+1]
	if !ValidOp(req.Op) {
		return fmt.Errorf("wire: unknown op %d", req.Op)
	}
	req.Set = frame[len(Magic)+2]
	nsLen := int(frame[len(Magic)+3])
	rest := frame[requestHeaderBytes:]
	if len(rest) < nsLen+6 {
		return fmt.Errorf("%w: namespace and key header", ErrTruncated)
	}
	req.Namespace = string(rest[:nsLen])
	var err error
	req.Keys, req.KeyWidth, rest, err = DecodePackedKeys(req.Keys, rest[nsLen:])
	if err != nil {
		return err
	}
	req.Counts = req.Counts[:0]
	req.Blob = nil
	switch req.Op {
	case OpMultiplicityAdd, OpMultiplicityRemove:
		req.Counts = resize(req.Counts, len(req.Keys))
		for i := range req.Counts {
			n, sz := binary.Uvarint(rest)
			if sz <= 0 {
				return fmt.Errorf("%w: count %d", ErrTruncated, i)
			}
			if n > MaxFrame {
				return fmt.Errorf("wire: implausible count %d for key %d", n, i)
			}
			req.Counts[i] = int(n)
			rest = rest[sz:]
		}
	case OpNamespaceCreate, OpMembershipMerge, OpMultiplicityMerge:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return fmt.Errorf("%w: trailing blob", ErrTruncated)
		}
		req.Blob = rest[sz : sz+int(n)]
		rest = rest[sz+int(n):]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w (%d bytes)", ErrTrailing, len(rest))
	}
	return nil
}

// Response is one decoded ShBP response. Exactly one of the body
// fields applies, selected by Op (see the layout comment on the
// package); Msg applies when Status ≠ StatusOK.
type Response struct {
	// Status is the outcome (Status* constants).
	Status byte
	// Op echoes the request op the response answers.
	Op byte
	// Msg is the error message when Status ≠ StatusOK.
	Msg string
	// Applied is the number of applied updates for the add/remove ops
	// (on a mid-batch capacity conflict, the split point — earlier
	// updates stay applied, as in the HTTP API).
	Applied uint64
	// Bools is the per-key membership answer for OpMembershipContains.
	Bools []bool
	// Counts is the per-key multiplicity for OpMultiplicityCount.
	Counts []int
	// Regions is the per-key candidate-region bitmask for
	// OpAssociationQuery (core.Region values).
	Regions []byte
	// Epoch is the post-rotation epoch for OpRotate.
	Epoch uint64
	// Rotated lists the filters rotated, for OpRotate.
	Rotated []string
	// Blob is the body of OpStats, OpNamespaceList and OpClusterMap
	// (JSON), OpMetrics (Prometheus text) and OpMembershipDump (a raw
	// ShBE envelope).
	Blob []byte
}

// AppendResponse appends resp as one complete frame (length prefix
// included) to dst.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, resp.Status, resp.Op)
	if resp.Status != StatusOK {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Msg)))
		dst = append(dst, resp.Msg...)
		dst = binary.AppendUvarint(dst, resp.Applied)
	} else {
		switch resp.Op {
		case OpPing, OpNamespaceCreate, OpNamespaceDelete:
			// Empty body.
		case OpMembershipAdd, OpMembershipMerge, OpAssociationAdd, OpAssociationRemove,
			OpMultiplicityAdd, OpMultiplicityRemove, OpMultiplicityMerge:
			dst = binary.AppendUvarint(dst, resp.Applied)
		case OpMembershipContains:
			dst = binary.AppendUvarint(dst, uint64(len(resp.Bools)))
			dst = appendBitset(dst, resp.Bools)
		case OpMultiplicityCount:
			dst = binary.AppendUvarint(dst, uint64(len(resp.Counts)))
			for _, c := range resp.Counts {
				dst = binary.AppendUvarint(dst, uint64(c))
			}
		case OpAssociationQuery:
			dst = binary.AppendUvarint(dst, uint64(len(resp.Regions)))
			dst = append(dst, resp.Regions...)
		case OpRotate:
			dst = binary.AppendUvarint(dst, resp.Epoch)
			dst = binary.AppendUvarint(dst, uint64(len(resp.Rotated)))
			for _, name := range resp.Rotated {
				dst = binary.AppendUvarint(dst, uint64(len(name)))
				dst = append(dst, name...)
			}
		case OpStats, OpNamespaceList, OpClusterMap, OpMetrics, OpMembershipDump,
			OpMultiplicityDump, OpFreeze:
			dst = binary.AppendUvarint(dst, uint64(len(resp.Blob)))
			dst = append(dst, resp.Blob...)
		default:
			return dst[:lenAt], fmt.Errorf("wire: unknown op %d", resp.Op)
		}
	}
	n := len(dst) - lenAt - 4
	if n > MaxFrame {
		return dst[:lenAt], fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(n))
	return dst, nil
}

// DecodeResponse parses one response payload into resp, reusing its
// slice capacity. Blob aliases frame.
func DecodeResponse(resp *Response, frame []byte) error {
	if len(frame) < 2 {
		return fmt.Errorf("%w: %d-byte response header", ErrTruncated, len(frame))
	}
	resp.Status = frame[0]
	resp.Op = frame[1]
	resp.Msg = ""
	resp.Applied = 0
	resp.Bools = resp.Bools[:0]
	resp.Counts = resp.Counts[:0]
	resp.Regions = resp.Regions[:0]
	resp.Epoch = 0
	resp.Rotated = resp.Rotated[:0]
	resp.Blob = nil
	rest := frame[2:]
	if resp.Status != StatusOK {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return fmt.Errorf("%w: error message", ErrTruncated)
		}
		resp.Msg = string(rest[sz : sz+int(n)])
		rest = rest[sz+int(n):]
		applied, asz := binary.Uvarint(rest)
		if asz <= 0 {
			return fmt.Errorf("%w: applied count", ErrTruncated)
		}
		resp.Applied = applied
		rest = rest[asz:]
		if len(rest) != 0 {
			return fmt.Errorf("%w (%d bytes)", ErrTrailing, len(rest))
		}
		return nil
	}
	switch resp.Op {
	case OpPing, OpNamespaceCreate, OpNamespaceDelete:
		// Empty body.
	case OpMembershipAdd, OpMembershipMerge, OpAssociationAdd, OpAssociationRemove,
		OpMultiplicityAdd, OpMultiplicityRemove, OpMultiplicityMerge:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return fmt.Errorf("%w: applied count", ErrTruncated)
		}
		resp.Applied = n
		rest = rest[sz:]
	case OpMembershipContains:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz)*8 {
			return fmt.Errorf("%w: membership bitset", ErrTruncated)
		}
		rest = rest[sz:]
		resp.Bools = resize(resp.Bools, int(n))
		for i := range resp.Bools {
			resp.Bools[i] = rest[i/8]&(1<<(i%8)) != 0
		}
		rest = rest[(int(n)+7)/8:]
	case OpMultiplicityCount:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return fmt.Errorf("%w: count vector", ErrTruncated)
		}
		rest = rest[sz:]
		resp.Counts = resize(resp.Counts, int(n))
		for i := range resp.Counts {
			v, csz := binary.Uvarint(rest)
			if csz <= 0 {
				return fmt.Errorf("%w: count %d", ErrTruncated, i)
			}
			if v > MaxFrame {
				return fmt.Errorf("wire: implausible count %d", v)
			}
			resp.Counts[i] = int(v)
			rest = rest[csz:]
		}
	case OpAssociationQuery:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return fmt.Errorf("%w: region vector", ErrTruncated)
		}
		rest = rest[sz:]
		resp.Regions = append(resp.Regions, rest[:n]...)
		rest = rest[n:]
	case OpRotate:
		e, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return fmt.Errorf("%w: epoch", ErrTruncated)
		}
		resp.Epoch = e
		rest = rest[sz:]
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return fmt.Errorf("%w: rotated list", ErrTruncated)
		}
		rest = rest[sz:]
		resp.Rotated = resize(resp.Rotated, int(n))
		for i := range resp.Rotated {
			l, lsz := binary.Uvarint(rest)
			if lsz <= 0 || l > uint64(len(rest)-lsz) {
				return fmt.Errorf("%w: rotated name %d", ErrTruncated, i)
			}
			resp.Rotated[i] = string(rest[lsz : lsz+int(l)])
			rest = rest[lsz+int(l):]
		}
	case OpStats, OpNamespaceList, OpClusterMap, OpMetrics, OpMembershipDump,
		OpMultiplicityDump, OpFreeze:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return fmt.Errorf("%w: blob body", ErrTruncated)
		}
		resp.Blob = rest[sz : sz+int(n)]
		rest = rest[sz+int(n):]
	default:
		return fmt.Errorf("wire: unknown op %d in response", resp.Op)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w (%d bytes)", ErrTrailing, len(rest))
	}
	return nil
}

// appendBitset packs bools LSB-first into bytes.
func appendBitset(dst []byte, bs []bool) []byte {
	at := len(dst)
	dst = append(dst, make([]byte, (len(bs)+7)/8)...)
	for i, b := range bs {
		if b {
			dst[at+i/8] |= 1 << (i % 8)
		}
	}
	return dst
}

// resize returns s with length n, reusing its backing array when it
// fits (contents are overwritten by the caller).
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed) and returns the payload. A clean EOF before the length
// prefix returns io.EOF; anything else that truncates the frame is an
// error.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: frame length", ErrTruncated)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	buf = resize(buf, int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: frame payload (%v)", ErrTruncated, err)
	}
	return buf, nil
}
