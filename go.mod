module shbf

go 1.24
