package sharded

import (
	"fmt"
	"sync"
	"time"

	"shbf/internal/core"
	"shbf/internal/hashing"
	"shbf/internal/window"
)

// This file composes the sliding-window rings of internal/window with
// the lock-striped shard layout: each shard holds its own generation
// ring, keys route by the usual one-pass digest, and a whole-window
// rotation walks the shards one write lock at a time. Striping is what
// keeps rotation off the query path — while shard i's ring swaps its
// head, queries on every other shard proceed untouched, and even shard
// i is blocked only for one ring-pointer swap (the membership ring
// clears its retired generation in place; the counting rings rebuild
// one generation, still a bounded pause per shard rather than a global
// stall). Shards rotate in lockstep — one Rotate() advances every
// shard's epoch by one — so the window boundary is uniform across the
// key space, momentarily skewed only while a rotation is in flight.
//
// Three compositions mirror the non-windowed wrappers: [Window] rings
// membership shards, [WindowAssociation] association shards,
// [WindowMultiplicity] multiplicity shards. All three serialize with
// the shard-set snapshot container over per-shard ShBW blobs.

// rotation owns a sharded window's rotation bookkeeping: the shared
// wall-clock policy (window.TickPolicy, the same clock the monolithic
// rings use) and a mutex serializing whole-window rotations (shard
// locks serialize per-shard access; this keeps two concurrent Rotate
// calls from interleaving their shard walks).
type rotation struct {
	mu    sync.Mutex
	clock window.TickPolicy
}

// rotateAll rotates every shard's ring under its write lock, in shard
// order. The first recycle failure stops the walk: already-rotated
// shards stay rotated (their window boundary advanced), and the error
// names the failing shard.
func rotateAll[F any](rot *rotation, s *set[F], tick func(F) error) error {
	rot.mu.Lock()
	defer rot.mu.Unlock()
	return rotateLocked(s, tick)
}

func rotateLocked[F any](s *set[F], tick func(F) error) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := tick(sh.f)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("sharded: rotating shard %d: %w", i, err)
		}
	}
	return nil
}

// rotateIfDue applies the wall-clock policy at the whole-window level
// (window.TickPolicy semantics: first call arms, then once per elapsed
// tick). Shard rings stay in lockstep because the policy lives here,
// not per shard.
func rotateIfDue[F any](rot *rotation, s *set[F], now time.Time, tick func(F) error) (bool, error) {
	rot.mu.Lock()
	defer rot.mu.Unlock()
	if !rot.clock.Due(now) {
		return false, nil
	}
	if err := rotateLocked(s, tick); err != nil {
		return false, err
	}
	return true, nil
}

// windowInfo snapshots every shard's ring under its read lock and
// merges the snapshots — the shared body of the three compositions'
// Window methods.
func windowInfo[F interface{ Window() window.Info }](s *set[F]) window.Info {
	infos := make([]window.Info, s.size())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		infos[i] = sh.f.Window()
		sh.mu.RUnlock()
	}
	return aggregateInfo(infos)
}

// aggregateInfo merges per-shard ring snapshots into one: epochs and
// ring geometry are uniform (rotation is lockstep), per-generation
// occupancy sums Ns and averages fill ratios across shards.
func aggregateInfo(infos []window.Info) window.Info {
	out := infos[0]
	out.PerGeneration = make([]window.GenInfo, len(infos[0].PerGeneration))
	for _, in := range infos {
		for age, g := range in.PerGeneration {
			if g.N < 0 || out.PerGeneration[age].N < 0 {
				out.PerGeneration[age].N = -1 // no-exact-set sentinel propagates
			} else {
				out.PerGeneration[age].N += g.N
			}
			out.PerGeneration[age].FillRatio += g.FillRatio
		}
	}
	for age := range out.PerGeneration {
		out.PerGeneration[age].FillRatio /= float64(len(infos))
	}
	return out
}

// shardWindowSpec derives shard i's ring spec from the sharded window
// spec: per-shard bit budget, the inner (non-sharded) window kind, and
// the shard's derived seed.
func shardWindowSpec(spec core.Spec, perShard, i int) core.Spec {
	s := spec
	s.Kind = spec.Kind.Inner()
	s.M = perShard
	s.Shards = 0
	s.Seed = shardSeed(spec.Seed, i)
	return s
}

// liftWindowSpec recovers the sharded window spec from shard 0's ring
// spec (whose derived seed is base + 1 for i = 0).
func liftWindowSpec(inner core.Spec, kind core.Kind, shards int) core.Spec {
	s := inner
	s.Kind = kind
	s.M = inner.M * shards
	s.Shards = shards
	s.Seed = inner.Seed - 1
	return s
}

// checkWindowSpec validates a sharded window spec and splits its bit
// budget.
func checkWindowSpec(spec core.Spec, want core.Kind) (pow, perShard int, err error) {
	if spec.Kind != want {
		return 0, 0, fmt.Errorf("sharded: spec kind %s, want %s", spec.Kind, want)
	}
	if err := spec.Validate(); err != nil {
		return 0, 0, err
	}
	return roundPow2(spec.M, spec.Shards)
}

// --- membership -----------------------------------------------------------

// Window is a concurrency-safe sharded sliding-window membership
// filter: every shard is a generation ring of ShBF_M filters
// (window.Membership), rotated in lockstep by Rotate/RotateIfDue.
// Queries OR across the shard's ring; rotation takes each shard's
// write lock in turn, so it never blocks queries on other shards.
type Window struct {
	set set[*window.Membership]
	rot rotation
}

// NewWindow builds the sharded window from its Spec (Kind
// KindWindowShardedMembership): M total per-generation bits split
// across Shards shards, each shard a ring of Generations ShBF_M
// filters. Total memory is Generations × M bits.
func NewWindow(spec core.Spec) (*Window, error) {
	pow, perShard, err := checkWindowSpec(spec, core.KindWindowShardedMembership)
	if err != nil {
		return nil, err
	}
	s, err := newSet(pow, func(i int) (*window.Membership, error) {
		return window.NewMembership(shardWindowSpec(spec, perShard, i))
	})
	if err != nil {
		return nil, err
	}
	return &Window{set: s, rot: rotation{clock: window.TickPolicy{Tick: spec.Tick}}}, nil
}

// Shards returns the number of shards.
func (f *Window) Shards() int { return f.set.size() }

// Add inserts e into its shard's head generation (digest → route →
// encode, one hash pass). Safe for concurrent use.
func (f *Window) Add(e []byte) {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	s.f.AddDigest(d)
	s.mu.Unlock()
}

// Contains reports whether e may have been added within the window:
// one hash pass, then the cached digest probes the shard's ring
// newest-first. Safe for concurrent use; readers do not block each
// other.
func (f *Window) Contains(e []byte) bool {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.RLock()
	ok := s.f.ContainsDigest(d)
	s.mu.RUnlock()
	return ok
}

// AddAll inserts a whole batch, grouping keys by shard so each shard's
// write lock is taken once per batch; each key is digested once for
// routing and encoding. Safe for concurrent use. The error is always
// nil (the signature matches the shared batch interface).
func (f *Window) AddAll(keys [][]byte) error {
	return batchWrite(&f.set, keys, func(w *window.Membership, _ []byte, d hashing.Digest) error {
		w.AddDigest(d)
		return nil
	})
}

// ContainsAll queries a whole batch, grouping keys by shard so each
// shard's read lock is taken once per batch; each key is digested once
// and the cached digest fans out across that shard's ring. Answers
// land in dst (resized to len(keys)) at the keys' original positions.
// Safe for concurrent use.
func (f *Window) ContainsAll(dst []bool, keys [][]byte) []bool {
	return batchRead(&f.set, dst, keys, func(w *window.Membership, _ []byte, d hashing.Digest) bool {
		return w.ContainsDigest(d)
	})
}

// Rotate retires every shard's oldest generation and recycles it as
// the cleared head, shard by shard under striped locks. The error is
// always nil for the membership composition.
func (f *Window) Rotate() error {
	return rotateAll(&f.rot, &f.set, (*window.Membership).Rotate)
}

// RotateIfDue rotates all shards once when the spec's Tick has elapsed
// since the last due rotation, reporting whether it did.
func (f *Window) RotateIfDue(now time.Time) (bool, error) {
	return rotateIfDue(&f.rot, &f.set, now, (*window.Membership).Rotate)
}

// Window returns the aggregate rotation snapshot: ring geometry and
// epoch from shard 0 (shards rotate in lockstep), per-generation
// occupancy summed across shards.
func (f *Window) Window() window.Info { return windowInfo(&f.set) }

// N returns the total elements held across shards and generations (an
// upper bound on distinct in-window keys; see window.Membership.N).
func (f *Window) N() int {
	return f.set.sumLocked((*window.Membership).N)
}

// SizeBytes returns the combined footprint of all shards' rings.
func (f *Window) SizeBytes() int {
	return f.set.sumLocked((*window.Membership).SizeBytes)
}

// FillRatio returns the mean generation fill ratio across shards.
func (f *Window) FillRatio() float64 {
	return f.set.meanLocked((*window.Membership).FillRatio)
}

// ShardStats returns a per-shard occupancy snapshot; N and FillRatio
// aggregate each shard's whole ring.
func (f *Window) ShardStats() []ShardStat {
	out := make([]ShardStat, f.set.size())
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		out[i] = ShardStat{
			Bits:      s.f.M(),
			K:         s.f.K(),
			MaxOffset: s.f.MaxOffset(),
			N:         s.f.N(),
			FillRatio: s.f.FillRatio(),
		}
		s.mu.RUnlock()
	}
	return out
}

// ForEachShard calls fn for every shard's generation ring in index
// order, each under its shard's read lock — the frozen encoder's
// per-shard ring export. fn must not retain the ring or call back into
// f; hold rotation off (or accept a per-shard-consistent cut) for a
// global point-in-time view.
func (f *Window) ForEachShard(fn func(i int, w *window.Membership)) {
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		fn(i, s.f)
		s.mu.RUnlock()
	}
}

// Kind returns core.KindWindowShardedMembership.
func (f *Window) Kind() core.Kind { return core.KindWindowShardedMembership }

// Spec returns the construction geometry (see Filter.Spec for the base
// seed recovery).
func (f *Window) Spec() core.Spec {
	return liftWindowSpec(f.set.shards[0].f.Spec(), core.KindWindowShardedMembership, f.set.size())
}

// Stats returns the aggregate occupancy snapshot.
func (f *Window) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindWindowShardedMembership,
		N:         f.N(),
		SizeBytes: f.SizeBytes(),
		FillRatio: f.FillRatio(),
		Shards:    f.set.size(),
	}
}

// MarshalBinary implements encoding.BinaryMarshaler: the shard-set
// snapshot container over per-shard ShBW ring blobs. Shards are
// serialized one at a time under their read locks; pause writers (and
// rotation) for a global point-in-time cut.
func (f *Window) MarshalBinary() ([]byte, error) {
	return appendSnapshot(nil, shardKindWindowMembership, &f.set)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// state (shard count, ring geometry, head positions, epochs) with the
// decoded filter. The rotation clock re-arms on the next RotateIfDue.
func (f *Window) UnmarshalBinary(data []byte) error {
	s, err := decodeSnapshot[window.Membership](data, shardKindWindowMembership)
	if err != nil {
		return err
	}
	f.set = s
	f.rot = rotation{clock: window.TickPolicy{Tick: f.set.shards[0].f.Spec().Tick}}
	return nil
}

// --- multiplicity ---------------------------------------------------------

// WindowMultiplicity is a concurrency-safe sharded sliding-window
// multiplicity filter: every shard is a generation ring of CShBF_X
// filters (window.Multiplicity). Counts sum a shard's ring and never
// underestimate a key's in-window multiplicity.
type WindowMultiplicity struct {
	set set[*window.Multiplicity]
	rot rotation
}

// NewWindowMultiplicity builds the sharded window from its Spec (Kind
// KindWindowShardedMultiplicity): M total per-generation bits split
// across Shards shards, counts in [1, C] per generation.
func NewWindowMultiplicity(spec core.Spec) (*WindowMultiplicity, error) {
	pow, perShard, err := checkWindowSpec(spec, core.KindWindowShardedMultiplicity)
	if err != nil {
		return nil, err
	}
	s, err := newSet(pow, func(i int) (*window.Multiplicity, error) {
		return window.NewMultiplicity(shardWindowSpec(spec, perShard, i))
	})
	if err != nil {
		return nil, err
	}
	return &WindowMultiplicity{set: s, rot: rotation{clock: window.TickPolicy{Tick: spec.Tick}}}, nil
}

// Shards returns the number of shards.
func (f *WindowMultiplicity) Shards() int { return f.set.size() }

// C returns the per-generation maximum multiplicity.
func (f *WindowMultiplicity) C() int { return f.set.shards[0].f.C() }

// Insert increments e's count in its shard's head generation. Safe for
// concurrent use; see window.Multiplicity.Insert for the error
// conditions.
func (f *WindowMultiplicity) Insert(e []byte) error {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	err := s.f.InsertDigest(e, d)
	s.mu.Unlock()
	return err
}

// Delete decrements e's count in its shard's head generation (undoing
// an in-tick insert; rotated counts expire instead). Safe for
// concurrent use.
func (f *WindowMultiplicity) Delete(e []byte) error {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	err := s.f.DeleteDigest(e, d)
	s.mu.Unlock()
	return err
}

// Count returns e's total in-window multiplicity with a single hash
// pass (digest → route → sum the shard's ring). Safe for concurrent
// use; readers do not block each other.
func (f *WindowMultiplicity) Count(e []byte) int {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.RLock()
	c := s.f.CountDigest(d)
	s.mu.RUnlock()
	return c
}

// AddAll increments every key's count by one, grouping keys by shard
// so each shard's write lock is taken once per batch. On the first
// failed insert the batch stops: keys already applied stay applied,
// and the error reports the failing key's batch index. Safe for
// concurrent use.
func (f *WindowMultiplicity) AddAll(keys [][]byte) error {
	return batchWrite(&f.set, keys, (*window.Multiplicity).InsertDigest)
}

// CountAll queries a whole batch, grouping keys by shard so each
// shard's read lock is taken once per batch; each key is digested once
// and summed across that shard's ring. Counts land in dst (resized to
// len(keys)) at the keys' original positions. Safe for concurrent use.
func (f *WindowMultiplicity) CountAll(dst []int, keys [][]byte) []int {
	return batchRead(&f.set, dst, keys, func(w *window.Multiplicity, _ []byte, d hashing.Digest) int {
		return w.CountDigest(d)
	})
}

// Rotate retires every shard's oldest generation, shard by shard under
// striped locks. On a recycle failure, already-rotated shards stay
// rotated and the error names the failing shard.
func (f *WindowMultiplicity) Rotate() error {
	return rotateAll(&f.rot, &f.set, (*window.Multiplicity).Rotate)
}

// RotateIfDue rotates all shards once when the spec's Tick has elapsed
// since the last due rotation, reporting whether it did.
func (f *WindowMultiplicity) RotateIfDue(now time.Time) (bool, error) {
	return rotateIfDue(&f.rot, &f.set, now, (*window.Multiplicity).Rotate)
}

// Window returns the aggregate rotation snapshot (see Window.Window).
func (f *WindowMultiplicity) Window() window.Info { return windowInfo(&f.set) }

// N returns the total distinct elements across shards and generations,
// or −1 in the unsafe update mode (no exact set is tracked).
func (f *WindowMultiplicity) N() int {
	total := 0
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		n := s.f.N()
		s.mu.RUnlock()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// SizeBytes returns the combined footprint of all shards' rings.
func (f *WindowMultiplicity) SizeBytes() int {
	return f.set.sumLocked((*window.Multiplicity).SizeBytes)
}

// FillRatio returns the mean generation fill ratio across shards.
func (f *WindowMultiplicity) FillRatio() float64 {
	return f.set.meanLocked((*window.Multiplicity).FillRatio)
}

// ShardStats returns a per-shard occupancy snapshot; N and FillRatio
// aggregate each shard's whole ring.
func (f *WindowMultiplicity) ShardStats() []MultiplicityShardStat {
	out := make([]MultiplicityShardStat, f.set.size())
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		out[i] = MultiplicityShardStat{
			Bits:      s.f.M(),
			K:         s.f.K(),
			C:         s.f.C(),
			N:         s.f.N(),
			FillRatio: s.f.FillRatio(),
		}
		s.mu.RUnlock()
	}
	return out
}

// Kind returns core.KindWindowShardedMultiplicity.
func (f *WindowMultiplicity) Kind() core.Kind { return core.KindWindowShardedMultiplicity }

// Spec returns the construction geometry (see Filter.Spec for the base
// seed recovery).
func (f *WindowMultiplicity) Spec() core.Spec {
	return liftWindowSpec(f.set.shards[0].f.Spec(), core.KindWindowShardedMultiplicity, f.set.size())
}

// Stats returns the aggregate occupancy snapshot.
func (f *WindowMultiplicity) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindWindowShardedMultiplicity,
		N:         f.N(),
		SizeBytes: f.SizeBytes(),
		FillRatio: f.FillRatio(),
		Shards:    f.set.size(),
	}
}

// MarshalBinary implements encoding.BinaryMarshaler (see
// Window.MarshalBinary for consistency semantics).
func (f *WindowMultiplicity) MarshalBinary() ([]byte, error) {
	return appendSnapshot(nil, shardKindWindowMultiplicity, &f.set)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// state with the decoded filter.
func (f *WindowMultiplicity) UnmarshalBinary(data []byte) error {
	s, err := decodeSnapshot[window.Multiplicity](data, shardKindWindowMultiplicity)
	if err != nil {
		return err
	}
	f.set = s
	f.rot = rotation{clock: window.TickPolicy{Tick: f.set.shards[0].f.Spec().Tick}}
	return nil
}

// --- association ----------------------------------------------------------

// WindowAssociation is a concurrency-safe sharded sliding-window
// two-set association filter: every shard is a generation ring of
// CShBF_A filters (window.Association). Queries union candidate
// regions across the shard's ring.
type WindowAssociation struct {
	set set[*window.Association]
	rot rotation
}

// NewWindowAssociation builds the sharded window from its Spec (Kind
// KindWindowShardedAssociation): M total per-generation bits split
// across Shards shards.
func NewWindowAssociation(spec core.Spec) (*WindowAssociation, error) {
	pow, perShard, err := checkWindowSpec(spec, core.KindWindowShardedAssociation)
	if err != nil {
		return nil, err
	}
	s, err := newSet(pow, func(i int) (*window.Association, error) {
		return window.NewAssociation(shardWindowSpec(spec, perShard, i))
	})
	if err != nil {
		return nil, err
	}
	return &WindowAssociation{set: s, rot: rotation{clock: window.TickPolicy{Tick: spec.Tick}}}, nil
}

// Shards returns the number of shards.
func (f *WindowAssociation) Shards() int { return f.set.size() }

// update digests e once, routes on the digest, and runs op on e's
// shard under its write lock.
func (f *WindowAssociation) update(e []byte, op func(*window.Association, []byte, hashing.Digest) error) error {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	err := op(s.f, e, d)
	s.mu.Unlock()
	return err
}

// InsertS1 records e ∈ S1 in its shard's head generation. Safe for
// concurrent use.
func (f *WindowAssociation) InsertS1(e []byte) error {
	return f.update(e, (*window.Association).InsertS1Digest)
}

// InsertS2 records e ∈ S2 in its shard's head generation. Safe for
// concurrent use.
func (f *WindowAssociation) InsertS2(e []byte) error {
	return f.update(e, (*window.Association).InsertS2Digest)
}

// DeleteS1 removes e from S1 in its shard's head generation (undoing
// an in-tick insert; rotated memberships expire instead). Safe for
// concurrent use.
func (f *WindowAssociation) DeleteS1(e []byte) error {
	return f.update(e, (*window.Association).DeleteS1Digest)
}

// DeleteS2 removes e from S2 in its shard's head generation; see
// DeleteS1. Safe for concurrent use.
func (f *WindowAssociation) DeleteS2(e []byte) error {
	return f.update(e, (*window.Association).DeleteS2Digest)
}

// Query returns the union of the shard ring's candidate-region masks
// for e with a single hash pass. Safe for concurrent use; readers do
// not block each other.
func (f *WindowAssociation) Query(e []byte) core.Region {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.RLock()
	r := s.f.QueryDigest(d)
	s.mu.RUnlock()
	return r
}

// QueryAll classifies a whole batch, grouping keys by shard so each
// shard's read lock is taken once per batch; each key is digested once
// and unioned across that shard's ring. Masks land in dst (resized to
// len(keys)) at the keys' original positions. Safe for concurrent use.
func (f *WindowAssociation) QueryAll(dst []core.Region, keys [][]byte) []core.Region {
	return batchRead(&f.set, dst, keys, func(w *window.Association, _ []byte, d hashing.Digest) core.Region {
		return w.QueryDigest(d)
	})
}

// Rotate retires every shard's oldest generation, shard by shard under
// striped locks (see WindowMultiplicity.Rotate for failure semantics).
func (f *WindowAssociation) Rotate() error {
	return rotateAll(&f.rot, &f.set, (*window.Association).Rotate)
}

// RotateIfDue rotates all shards once when the spec's Tick has elapsed
// since the last due rotation, reporting whether it did.
func (f *WindowAssociation) RotateIfDue(now time.Time) (bool, error) {
	return rotateIfDue(&f.rot, &f.set, now, (*window.Association).Rotate)
}

// Window returns the aggregate rotation snapshot (see Window.Window).
func (f *WindowAssociation) Window() window.Info { return windowInfo(&f.set) }

// N1 returns the total S1 cardinality across shards and generations.
func (f *WindowAssociation) N1() int {
	return f.set.sumLocked((*window.Association).N1)
}

// N2 returns the total S2 cardinality across shards and generations.
func (f *WindowAssociation) N2() int {
	return f.set.sumLocked((*window.Association).N2)
}

// SizeBytes returns the combined footprint of all shards' rings.
func (f *WindowAssociation) SizeBytes() int {
	return f.set.sumLocked((*window.Association).SizeBytes)
}

// FillRatio returns the mean generation fill ratio across shards.
func (f *WindowAssociation) FillRatio() float64 {
	return f.set.meanLocked((*window.Association).FillRatio)
}

// ShardStats returns a per-shard occupancy snapshot; Ns and FillRatio
// aggregate each shard's whole ring.
func (f *WindowAssociation) ShardStats() []AssociationShardStat {
	out := make([]AssociationShardStat, f.set.size())
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		out[i] = AssociationShardStat{
			Bits:      s.f.M(),
			K:         s.f.K(),
			MaxOffset: s.f.MaxOffset(),
			N1:        s.f.N1(),
			N2:        s.f.N2(),
			FillRatio: s.f.FillRatio(),
		}
		s.mu.RUnlock()
	}
	return out
}

// Kind returns core.KindWindowShardedAssociation.
func (f *WindowAssociation) Kind() core.Kind { return core.KindWindowShardedAssociation }

// Spec returns the construction geometry (see Filter.Spec for the base
// seed recovery).
func (f *WindowAssociation) Spec() core.Spec {
	return liftWindowSpec(f.set.shards[0].f.Spec(), core.KindWindowShardedAssociation, f.set.size())
}

// Stats returns the aggregate occupancy snapshot (N sums both sets).
func (f *WindowAssociation) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindWindowShardedAssociation,
		N:         f.N1() + f.N2(),
		SizeBytes: f.SizeBytes(),
		FillRatio: f.FillRatio(),
		Shards:    f.set.size(),
	}
}

// MarshalBinary implements encoding.BinaryMarshaler (see
// Window.MarshalBinary for consistency semantics).
func (f *WindowAssociation) MarshalBinary() ([]byte, error) {
	return appendSnapshot(nil, shardKindWindowAssociation, &f.set)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// state with the decoded filter.
func (f *WindowAssociation) UnmarshalBinary(data []byte) error {
	s, err := decodeSnapshot[window.Association](data, shardKindWindowAssociation)
	if err != nil {
		return err
	}
	f.set = s
	f.rot = rotation{clock: window.TickPolicy{Tick: f.set.shards[0].f.Spec().Tick}}
	return nil
}
