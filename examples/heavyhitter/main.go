// Sliding-window heavy-hitter detection: the streaming form of the
// paper's Section 5 flow-measurement use case.
//
// A router wants "which flows sent more than T packets in the last W
// seconds" — not "ever": yesterday's elephant must stop alerting once
// it goes quiet, and the filter must not grow with the lifetime of the
// link. A windowed multiplicity filter (shbf.NewWindow over CShBF_X)
// gives exactly that: packets increment the head generation, Count
// sums the ring (never under-counting a flow's in-window packets), and
// each Rotate retires the oldest tick wholesale, so memory and error
// rates are constants of the configuration.
//
// The simulation runs a Zipf-ish packet stream for several ticks in
// which the elephant flows CHANGE partway through, and shows the
// window tracking the live elephants while the retired ones age out
// G−1..G ticks after they go quiet.
//
// Run with: go run ./examples/heavyhitter
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"shbf"
)

const (
	nFlows      = 20000
	generations = 3  // ring length G: the window spans 2..3 ticks
	threshold   = 40 // heavy hitter: > threshold packets in the window
	maxCount    = 57 // per-generation count cap c, the paper's value
	k           = 8
	ticks       = 8
)

func main() {
	// Size one generation for one tick's distinct flows at the paper's
	// 1.5× Figure-11 memory ratio; the ring costs G× this.
	nf := float64(nFlows)
	m := int(1.5 * nf * k / math.Ln2)
	f, err := shbf.NewWindow(
		shbf.Spec{Kind: shbf.KindMultiplicity, M: m, K: k, C: maxCount, Seed: 7},
		shbf.WindowOpts{Generations: generations},
	)
	if err != nil {
		log.Fatal(err)
	}
	counter := f.(shbf.Counter) // Count/CountAll over the ring
	adder := f.(shbf.Updatable) // Insert into the head generation
	win := f.(shbf.Windowed)    // Rotate/Window
	fmt.Printf("window multiplicity filter: G=%d generations × %d bits (%d KiB total), k=%d, c=%d\n\n",
		generations, m, f.Stats().SizeBytes/1024, k, maxCount)

	rng := rand.New(rand.NewSource(11))
	flows := make([][]byte, nFlows)
	for i := range flows {
		flows[i] = flowID(uint32(i))
	}
	// Two elephant cohorts: A blasts during ticks 1–3, B during ticks
	// 4–8. Everything else is mice background noise.
	cohortA, cohortB := []int{17, 4242, 9001}, []int{23, 1234, 15000}

	for tick := 1; tick <= ticks; tick++ {
		elephants := cohortA
		if tick > 3 {
			elephants = cohortB
		}
		// Mice: one packet each for a random 30% of flows.
		for i := range flows {
			if rng.Intn(10) < 3 {
				mustInsert(adder, flows[i], 1)
			}
		}
		// Elephants: a burst well above the per-tick share of the
		// threshold.
		for _, e := range elephants {
			mustInsert(adder, flows[e], 25)
		}

		hh := heavyHitters(counter, flows)
		info := win.Window()
		fmt.Printf("tick %d (epoch %d): elephants now %v → window reports %v\n",
			tick, info.Epoch, elephants, hh)

		switch {
		case tick >= 2 && tick <= 3:
			assertSame(hh, cohortA, tick)
		case tick >= 6:
			// Cohort A has been quiet ≥ G ticks: fully aged out.
			assertSame(hh, cohortB, tick)
		}
		if err := win.Rotate(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nretired elephants aged out of the window; live ones detected — with constant memory")
}

// heavyHitters scans the flow table for in-window counts above the
// threshold (a real deployment would track candidates on insert; the
// full scan keeps the example honest — every answer comes from the
// filter).
func heavyHitters(c shbf.Counter, flows [][]byte) []int {
	counts := c.CountAll(nil, flows)
	var hh []int
	for i, n := range counts {
		if n > threshold {
			hh = append(hh, i)
		}
	}
	sort.Ints(hh)
	return hh
}

func mustInsert(u shbf.Updatable, e []byte, times int) {
	for i := 0; i < times; i++ {
		if err := u.Insert(e); err != nil {
			log.Fatal(err)
		}
	}
}

func assertSame(got, want []int, tick int) {
	w := append([]int(nil), want...)
	sort.Ints(w)
	if fmt.Sprint(got) != fmt.Sprint(w) {
		log.Fatalf("tick %d: heavy hitters %v, want %v", tick, got, w)
	}
}

// flowID packs an index into a 13-byte 5-tuple-style flow ID, the
// paper's element format.
func flowID(i uint32) []byte {
	id := make([]byte, 13)
	id[0], id[1], id[2], id[3] = 10, byte(i>>16), byte(i>>8), byte(i)
	id[4], id[5], id[6], id[7] = 172, 16, byte(i>>8), byte(i)
	id[8], id[9] = byte(i>>8), byte(i)
	id[10], id[11] = 0x01, 0xbb
	id[12] = 6
	return id
}
