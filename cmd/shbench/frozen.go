package main

// frozen.go implements the -frozen mode: the frozen-filter benchmark
// behind BENCH_PR7.json. It measures the three numbers that justify
// the ShBZ container's existence:
//
//   - probe throughput: ContainsAll over the frozen container vs the
//     live sharded filter it was frozen from (the zero-copy path must
//     not tax the paper's ~one-cache-miss probe);
//   - cold open: OpenFrozen on container bytes vs decoding the same
//     filter from its ShBE envelope (the envelope materializes every
//     word; the container is a 64-byte header parse);
//   - stack amortization: opening a 10k-filter ShBK stack and every
//     member filter in it, per-filter (the LSM shape: thousands of
//     SSTable filters behind one mapped file).
//
// Methodology matches the other modes: every case is measured with
// testing.Benchmark, the suite runs frozenRuns times with live and
// frozen interleaved, and the minimum per case is reported
// (interleaved min-of-N — noise only ever adds time).
//
// Gates (each 0 = off): -frozen-min-ratio fails the run when frozen
// ContainsAll throughput falls below that fraction of live;
// -frozen-max-open-us bounds the amortized per-filter stack open;
// -frozen-min-open-speedup requires OpenFrozen to beat the envelope
// decode by that factor.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"shbf"
	"shbf/internal/flowkeys"
)

// frozenRuns is the interleaved repetition count (min per case wins).
const frozenRuns = 3

// frozenBatch is the ContainsAll batch size measured.
const frozenBatch = 4096

// frozenStackFilters is the stack cold-open population.
const frozenStackFilters = 10_000

// frozenResult is one measurement.
type frozenResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerKey    float64 `json:"ns_per_key,omitempty"`
	KeysPerSec  float64 `json:"keys_per_sec,omitempty"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// frozenReport is the BENCH_PR7.json document.
type frozenReport struct {
	Schema      string         `json:"schema"`
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	CPUs        int            `json:"cpus"`
	KeyBytes    int            `json:"key_bytes"`
	Runs        int            `json:"runs"`
	Note        string         `json:"note"`
	Results     []frozenResult `json:"results"`
	// FrozenVsLiveRatio is frozen ÷ live ContainsAll keys/sec (≥ 1
	// means the zero-copy path is at least as fast).
	FrozenVsLiveRatio float64 `json:"frozen_vs_live_keys_per_sec_ratio"`
	// OpenSpeedup is envelope-decode ns ÷ OpenFrozen ns for the same
	// filter (the cold-open advantage).
	OpenSpeedup float64 `json:"open_vs_envelope_decode_speedup"`
	// StackOpenUsPerFilter is the amortized per-filter cost of opening
	// a frozenStackFilters-entry stack and every filter in it.
	StackOpenUsPerFilter float64 `json:"stack_open_us_per_filter"`
}

// runFrozen measures the suite, writes the report, and applies the
// gates.
func runFrozen(outPath, note string, minRatio, maxOpenUs, minOpenSpeedup float64) error {
	// Workload: the serving shape — a 16-shard membership filter at 64k
	// members of 13-byte flow IDs, probed with a 50/50 member mix.
	const nMembers = 1 << 16
	spec := shbf.Spec{Kind: shbf.KindShardedMembership,
		M: 12 << 20, K: 8, Shards: 16, Seed: 1}
	built, err := shbf.New(spec)
	if err != nil {
		return err
	}
	live := built.(interface {
		shbf.Filter
		AddAll(keys [][]byte) error
		ContainsAll(dst []bool, keys [][]byte) []bool
	})
	_, pool := flowkeys.Keys(2 * nMembers)
	members := pool[:nMembers]
	if err := live.AddAll(members); err != nil {
		return err
	}
	probes := append([][]byte{}, pool[nMembers:]...)
	for i := 0; i < len(probes); i += 2 {
		probes[i] = members[i]
	}
	query := probes[:frozenBatch]

	blob, err := shbf.Freeze(live)
	if err != nil {
		return err
	}
	fz, err := shbf.OpenFrozen(blob)
	if err != nil {
		return err
	}
	// Frozen must answer exactly like its live source before any number
	// is worth reporting.
	liveAns := live.ContainsAll(nil, probes)
	frozenAns := fz.ContainsAll(nil, probes)
	for i := range probes {
		if liveAns[i] != frozenAns[i] {
			return fmt.Errorf("frozen container diverges from live filter on probe %d", i)
		}
	}
	env, err := shbf.AppendDump(nil, live)
	if err != nil {
		return err
	}

	// A 10k-filter stack of small per-SSTable-sized filters (64 keys
	// each), the amortized cold-open population.
	var sb shbf.FrozenStackBuilder
	smallSpec := shbf.Spec{Kind: shbf.KindMembership, M: 1 << 12, K: 8, Seed: 2}
	for i := 0; i < frozenStackFilters; i++ {
		sf, err := shbf.New(smallSpec)
		if err != nil {
			return err
		}
		adder := sf.(shbf.Adder)
		if err := adder.AddAll(members[(i*64)%(nMembers-64) : (i*64)%(nMembers-64)+64]); err != nil {
			return err
		}
		if err := sb.Add(sf); err != nil {
			return err
		}
	}
	stackFile := sb.Finish()

	type benchCase struct {
		name  string
		batch int // 0 = not a per-key case
		body  func(b *testing.B)
	}
	cases := []benchCase{
		{"live/ContainsAll/4096", frozenBatch, func(b *testing.B) {
			b.ReportAllocs()
			dst := make([]bool, 0, frozenBatch)
			for i := 0; i < b.N; i++ {
				dst = live.ContainsAll(dst[:0], query)
			}
		}},
		{"frozen/ContainsAll/4096", frozenBatch, func(b *testing.B) {
			b.ReportAllocs()
			dst := make([]bool, 0, frozenBatch)
			for i := 0; i < b.N; i++ {
				dst = fz.ContainsAll(dst[:0], query)
			}
		}},
		{"open/frozen", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shbf.OpenFrozen(blob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"open/envelope-decode", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := shbf.Decode(env); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stack/open-10k", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := shbf.OpenFrozenStack(stackFile)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < st.Len(); j++ {
					if _, err := st.At(j); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}

	// Interleaved min-of-N: whole-suite passes, live and frozen
	// adjacent within each pass.
	best := make([]testing.BenchmarkResult, len(cases))
	for run := 0; run < frozenRuns; run++ {
		for i, c := range cases {
			r := testing.Benchmark(c.body)
			if run == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}

	report := frozenReport{
		Schema:      "shbf-frozen-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		KeyBytes:    flowkeys.KeyBytes,
		Runs:        frozenRuns,
		Note:        note,
	}
	nsPerOp := map[string]float64{}
	for i, c := range cases {
		r := best[i]
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := frozenResult{
			Name:        c.name,
			NsPerOp:     ns,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		if c.batch > 0 {
			res.NsPerKey = ns / float64(c.batch)
			res.KeysPerSec = float64(c.batch) / (ns / 1e9)
		}
		report.Results = append(report.Results, res)
		nsPerOp[c.name] = ns
	}
	report.FrozenVsLiveRatio = nsPerOp["live/ContainsAll/4096"] / nsPerOp["frozen/ContainsAll/4096"]
	report.OpenSpeedup = nsPerOp["open/envelope-decode"] / nsPerOp["open/frozen"]
	report.StackOpenUsPerFilter = nsPerOp["stack/open-10k"] / float64(frozenStackFilters) / 1e3

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("frozen bench → %s\n", outPath)
	for _, res := range report.Results {
		if res.KeysPerSec > 0 {
			fmt.Printf("  %-26s %10.0f keys/s  %7.2f ns/key  %5d B/op %4d allocs/op\n",
				res.Name, res.KeysPerSec, res.NsPerKey, res.BytesPerOp, res.AllocsPerOp)
		} else {
			fmt.Printf("  %-26s %12.0f ns/op  %5d B/op %4d allocs/op\n",
				res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	fmt.Printf("  frozen vs live throughput:  %.2f×\n", report.FrozenVsLiveRatio)
	fmt.Printf("  open vs envelope decode:    %.0f×\n", report.OpenSpeedup)
	fmt.Printf("  stack open amortized:       %.3f µs/filter (%d filters)\n",
		report.StackOpenUsPerFilter, frozenStackFilters)

	if minRatio > 0 && report.FrozenVsLiveRatio < minRatio {
		return fmt.Errorf("frozen ContainsAll is %.2f× live throughput, below the %.2f× gate",
			report.FrozenVsLiveRatio, minRatio)
	}
	if maxOpenUs > 0 && report.StackOpenUsPerFilter > maxOpenUs {
		return fmt.Errorf("stack open amortizes to %.2f µs/filter, above the %.1f µs gate",
			report.StackOpenUsPerFilter, maxOpenUs)
	}
	if minOpenSpeedup > 0 && report.OpenSpeedup < minOpenSpeedup {
		return fmt.Errorf("OpenFrozen is %.0f× the envelope decode, below the %.0f× gate",
			report.OpenSpeedup, minOpenSpeedup)
	}
	if minRatio > 0 || maxOpenUs > 0 || minOpenSpeedup > 0 {
		fmt.Println("gates: ok")
	}
	return nil
}
