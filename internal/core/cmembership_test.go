package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustCounting(t *testing.T, m, k int, opts ...Option) *CountingMembership {
	t.Helper()
	c, err := NewCountingMembership(m, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountingMembershipInsertDelete(t *testing.T) {
	c := mustCounting(t, 10000, 8)
	elems := genElements(500, 1)
	for _, e := range elems {
		if err := c.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range elems {
		if !c.Contains(e) {
			t.Fatal("false negative after insert")
		}
	}
	if c.N() != 500 {
		t.Fatalf("N = %d, want 500", c.N())
	}
	// Delete half; the rest must remain.
	for _, e := range elems[:250] {
		if err := c.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range elems[250:] {
		if !c.Contains(e) {
			t.Fatal("false negative after deleting other elements")
		}
	}
	if c.N() != 250 {
		t.Fatalf("N = %d, want 250", c.N())
	}
	if !c.consistent() {
		t.Fatal("B/C synchronization invariant violated")
	}
}

func TestCountingMembershipDeleteRestoresEmpty(t *testing.T) {
	// Inserting a set then deleting it must restore an all-zero filter —
	// the defining property of counting filters.
	c := mustCounting(t, 5000, 6)
	elems := genElements(300, 2)
	for _, e := range elems {
		if err := c.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range elems {
		if err := c.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Filter().FillRatio(); got != 0 {
		t.Fatalf("fill ratio %.4f after deleting everything, want 0", got)
	}
	if !c.consistent() {
		t.Fatal("B/C invariant violated after full teardown")
	}
}

func TestCountingMembershipDeleteAbsent(t *testing.T) {
	c := mustCounting(t, 5000, 6)
	c.Insert([]byte("present"))
	err := c.Delete([]byte("never inserted, definitely"))
	if !errors.Is(err, ErrNotStored) {
		t.Fatalf("Delete(absent) = %v, want ErrNotStored", err)
	}
	// The failed delete must not disturb stored elements.
	if !c.Contains([]byte("present")) {
		t.Fatal("failed delete corrupted the filter")
	}
	if !c.consistent() {
		t.Fatal("B/C invariant violated by failed delete")
	}
}

func TestCountingMembershipDuplicateInserts(t *testing.T) {
	// The same element inserted r times needs r deletes.
	c := mustCounting(t, 5000, 6)
	e := []byte("dup")
	for i := 0; i < 3; i++ {
		if err := c.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if !c.Contains(e) {
			t.Fatalf("false negative after %d deletes of 3 inserts", i)
		}
		if err := c.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if c.Contains(e) {
		t.Fatal("element survives matched deletes")
	}
	if err := c.Delete(e); !errors.Is(err, ErrNotStored) {
		t.Fatalf("over-delete = %v, want ErrNotStored", err)
	}
}

func TestCountingMembershipSaturationRollback(t *testing.T) {
	// 1-bit counters saturate at 1: a second insert of the same element
	// must fail without corrupting state.
	c := mustCounting(t, 5000, 6, WithCounterWidth(1))
	e := []byte("x")
	if err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(e); !errors.Is(err, ErrCounterSaturated) {
		t.Fatalf("second insert = %v, want ErrCounterSaturated", err)
	}
	if !c.Contains(e) {
		t.Fatal("failed insert removed the element")
	}
	if !c.consistent() {
		t.Fatal("B/C invariant violated by rolled-back insert")
	}
	// One delete still removes it cleanly.
	if err := c.Delete(e); err != nil {
		t.Fatal(err)
	}
	if c.Filter().FillRatio() != 0 {
		t.Fatal("filter not empty after rollback + delete")
	}
}

func TestCountingMembershipRandomOpsProperty(t *testing.T) {
	// Property: under random insert/delete sequences the filter never
	// reports a false negative for elements with a positive reference
	// count, and B/C stay synchronized.
	type op struct {
		Key uint8
		Del bool
	}
	f := func(ops []op) bool {
		c, err := NewCountingMembership(2000, 4, WithCounterWidth(8))
		if err != nil {
			return false
		}
		ref := map[byte]int{}
		for _, o := range ops {
			e := []byte{o.Key}
			if o.Del {
				err := c.Delete(e)
				if ref[o.Key] > 0 {
					if err != nil {
						return false
					}
					ref[o.Key]--
				}
				// Deleting with ref 0 may or may not error (false
				// positive paths can let it through); state checked below.
			} else {
				if err := c.Insert(e); err != nil {
					return false
				}
				ref[o.Key]++
			}
		}
		for k, n := range ref {
			if n > 0 && !c.Contains([]byte{k}) {
				return false
			}
		}
		return c.consistent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCountingMembershipOverflowTally(t *testing.T) {
	c := mustCounting(t, 100, 2, WithCounterWidth(1))
	c.Insert([]byte("a"))
	if c.CounterOverflows() != 0 {
		t.Fatal("overflow recorded for clean insert")
	}
}

func TestCountingMembershipSizeBytes(t *testing.T) {
	c := mustCounting(t, 1000, 4)
	if c.SizeBytes() <= c.Filter().SizeBytes() {
		t.Fatal("SizeBytes must include the counter array")
	}
}

func TestCountingMembershipInvalidConfig(t *testing.T) {
	if _, err := NewCountingMembership(0, 4); err == nil {
		t.Fatal("accepted m=0")
	}
	if _, err := NewCountingMembership(100, 5); err == nil {
		t.Fatal("accepted odd k")
	}
}

func BenchmarkCountingMembershipInsert(b *testing.B) {
	c, _ := NewCountingMembership(1<<20, 8, WithCounterWidth(8))
	elems := genElements(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Insert(elems[i&1023])
	}
}
