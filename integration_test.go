package shbf_test

// Integration tests: end-to-end flows crossing module boundaries —
// trace generation → serialization → filter construction → filter
// serialization → decoded-filter queries → experiment harness — the
// paths cmd/tracegen, cmd/shbf and cmd/shbench drive.

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"shbf"
	"shbf/internal/analytic"
	"shbf/internal/experiment"
	"shbf/internal/trace"
	"shbf/internal/workload"
)

func TestTraceToMembershipPipeline(t *testing.T) {
	// Generate a trace, serialize it, read it back, build a planned
	// filter from it, ship the filter as bytes, query the copy.
	gen := trace.NewGenerator(42)
	flows := gen.UniformMultiset(20000, 57)

	var traceBuf bytes.Buffer
	if err := trace.Write(&traceBuf, flows); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(flows) {
		t.Fatalf("trace round trip lost flows: %d vs %d", len(loaded), len(flows))
	}

	plan, err := shbf.PlanMembership(len(loaded), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := shbf.NewMembership(plan.M, plan.K, shbf.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range loaded {
		filter.Add(loaded[i].ID[:])
	}

	// Ship the filter (the paper's build-offline / query-on-chip split).
	blob, err := filter.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var remote shbf.Membership
	if err := remote.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	for i := range loaded {
		if !remote.Contains(loaded[i].ID[:]) {
			t.Fatal("shipped filter lost a member")
		}
	}
	fp := 0
	negs := workload.Negatives(gen, 100000)
	for _, e := range negs {
		if remote.Contains(e) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(negs)); rate > 0.015 {
		t.Fatalf("shipped filter FPR %.4f exceeds planned 0.01 target margin", rate)
	}
}

func TestTraceToMultiplicityPipeline(t *testing.T) {
	gen := trace.NewGenerator(43)
	flows := gen.Multiset(15000, 57, 1.5)

	plan, err := shbf.PlanMultiplicity(len(flows), 57, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := shbf.NewMultiplicity(plan.M, plan.K, 57, shbf.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if err := filter.AddWithCount(flows[i].ID[:], flows[i].Count); err != nil {
			t.Fatal(err)
		}
	}
	correct := 0
	for i := range flows {
		got := filter.Count(flows[i].ID[:])
		if got < flows[i].Count {
			t.Fatal("underestimate — impossible for ShBF_X")
		}
		if got == flows[i].Count {
			correct++
		}
	}
	cr := float64(correct) / float64(len(flows))
	counts := make([]int, len(flows))
	for i := range flows {
		counts[i] = flows[i].Count
	}
	want := analytic.CRWorkload(plan.M, len(flows), plan.K, 57, counts)
	if math.Abs(cr-want) > 0.02 {
		t.Fatalf("member CR %.4f vs theory %.4f", cr, want)
	}
}

func TestConcurrentGatewayScenario(t *testing.T) {
	// The load-balance example's shape, concurrently: one goroutine
	// updates a counting association filter while others could read a
	// shipped static snapshot; plus a sharded membership filter under
	// parallel query load. Run with -race.
	gen := trace.NewGenerator(44)
	members := trace.Bytes(gen.Distinct(30000))

	shardedFilter, err := shbf.NewShardedMembership(1<<20, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(members); i += 8 {
				shardedFilter.Add(members[i])
			}
			for i := 0; i < len(members); i += 16 {
				shardedFilter.Contains(members[i])
			}
		}(w)
	}
	wg.Wait()
	if shardedFilter.N() != 30000 {
		t.Fatalf("N = %d", shardedFilter.N())
	}
	for _, e := range members[:2000] {
		if !shardedFilter.Contains(e) {
			t.Fatal("false negative after concurrent build")
		}
	}
}

func TestDynamicAssociationLifecycle(t *testing.T) {
	// CShBF_A as a gateway would use it: items appear on server 1, get
	// replicated, then retire from server 1 — region answers must track.
	a, err := shbf.NewCountingAssociation(60000, 8, shbf.WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(45)
	items := trace.Bytes(gen.Distinct(2000))

	for _, it := range items {
		if err := a.InsertS1(it); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items[:1000] { // replicate the popular half
		if err := a.InsertS2(it); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items[:500] { // retire some from server 1
		if err := a.DeleteS1(it); err != nil {
			t.Fatal(err)
		}
	}

	for i, it := range items {
		r := a.Query(it)
		switch {
		case i < 500: // only on server 2 now
			if !r.Contains(shbf.RegionS2Only) {
				t.Fatalf("item %d: %v missing S2−S1 truth", i, r)
			}
		case i < 1000: // replicated
			if !r.Contains(shbf.RegionBoth) {
				t.Fatalf("item %d: %v missing S1∩S2 truth", i, r)
			}
		default: // only on server 1
			if !r.Contains(shbf.RegionS1Only) {
				t.Fatalf("item %d: %v missing S1−S2 truth", i, r)
			}
		}
	}

	// Snapshot the dynamic filter and check the copy agrees.
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b shbf.CountingAssociation
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:100] {
		if a.Query(it) != b.Query(it) {
			t.Fatal("snapshot disagrees with original")
		}
	}
}

func TestHarnessEndToEnd(t *testing.T) {
	// The full experiment harness at test scale: every runner produces
	// renderable output (this is what cmd/shbench -fig all exercises).
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	cfg := experiment.Quick()
	var out bytes.Buffer
	for _, figs := range [][]*experiment.Figure{
		experiment.RunFig3(cfg), experiment.RunFig4(cfg), experiment.RunFig7(cfg),
		experiment.RunFig8(cfg), experiment.RunFig9(cfg), experiment.RunFig10(cfg),
		experiment.RunFig11(cfg),
	} {
		for _, fig := range figs {
			if err := fig.Render(&out); err != nil {
				t.Fatal(err)
			}
			if err := fig.WriteCSV(&out); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, tab := range []*experiment.Table{
		experiment.RunTable2(cfg), experiment.RunUpdateTable(cfg),
	} {
		if err := tab.Render(&out); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() < 5000 {
		t.Fatalf("harness output implausibly small: %d bytes", out.Len())
	}
}
