// Command shbf builds, evaluates, plans, and ships Shifting Bloom
// Filters through the unified Spec API. Every subcommand names the
// filter with -kind (a shbf.Kind name) and the geometry with the same
// unified flags (-m -k -c -t -g -shards -seed), instead of the
// per-kind flag sets this tool grew up with.
//
// Usage:
//
//	shbf eval -kind membership   -trace t.bin [-m 0] [-k 8] [-probes 1000000]
//	shbf eval -kind association  -trace t.bin -trace2 u.bin [-k 8]
//	shbf eval -kind multiplicity -trace t.bin [-k 8] [-c 57]
//	shbf plan -kind membership -n 1000000 -target 0.001
//	shbf dump -kind membership -trace t.bin -out f.shbf [-m 0] [-k 8]
//	shbf load -in f.shbf [-trace t.bin]
//	shbf freeze -in f.shbf -out f.shbz
//	shbf stack -out filters.shbk a.shbz b.shbf ...
//	shbf stack -in filters.shbk
//
// eval builds a filter from a trace and reports quality (fill ratio,
// memory, measured vs theoretical error). plan sizes a geometry from
// an accuracy target and prints the Spec. dump builds from a trace and
// writes the filter as a self-describing envelope; load reads any
// envelope back — no kind flag needed, the envelope says what it is —
// and reports its spec and stats, optionally probing it with a trace.
// freeze compacts an envelope into a read-only ShBZ container
// (shbf.OpenFrozen serves it zero-copy from a file or mmap region);
// stack packs containers and envelopes into one ShBK stack file, or
// lists one with -in.
// With -m 0 the filter is sized optimally from the trace (m = nk/ln2
// for membership/association, 1.5× that for multiplicity, following
// the paper's experimental setups). Legacy kind aliases member, assoc
// and mult are accepted.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"shbf"
	"shbf/internal/analytic"
	"shbf/internal/sizing"
	"shbf/internal/trace"
	"shbf/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shbf:", err)
		os.Exit(1)
	}
}

// run dispatches the subcommand; a leading flag means eval, the
// historical default.
func run(args []string) error {
	sub := "eval"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	switch sub {
	case "eval":
		return runEval(args)
	case "plan":
		return runPlan(args)
	case "dump":
		return runDump(args)
	case "load":
		return runLoad(args)
	case "freeze":
		return runFreeze(args)
	case "stack":
		return runStack(args)
	default:
		return fmt.Errorf("unknown subcommand %q (eval, plan, dump, load, freeze, stack)", sub)
	}
}

// specFlags registers the unified geometry flags on fs and returns a
// builder that assembles the Spec after parsing.
func specFlags(fs *flag.FlagSet) func() (shbf.Spec, error) {
	var (
		kind   = fs.String("kind", "membership", "filter kind (shbf.Kind name; legacy member/assoc/mult accepted)")
		m      = fs.Int("m", 0, "filter bits (0 = optimal for the trace, where a trace is given)")
		k      = fs.Int("k", 8, "bit positions per element")
		c      = fs.Int("c", 0, "maximum multiplicity (multiplicity kinds; default 57)")
		t      = fs.Int("t", 0, "offsets per group (tshift)")
		g      = fs.Int("g", 0, "number of sets (multi-association)")
		shards = fs.Int("shards", 0, "shard count (sharded kinds)")
		seed   = fs.Uint64("seed", 1, "filter/probe seed")
		cwidth = fs.Uint("counter-width", 0, "counter bit width (counting kinds, SCM; 0 = kind default)")
		woff   = fs.Int("max-offset", 0, "maximum offset w̄ (offset-windowed kinds; 0 = default 57)")
		unsafe = fs.Bool("unsafe", false, "Section 5.3.1 update mode (counting-multiplicity kinds)")
	)
	return func() (shbf.Spec, error) {
		kd, err := parseKindArg(*kind)
		if err != nil {
			return shbf.Spec{}, err
		}
		spec := shbf.Spec{Kind: kd, M: *m, K: *k, C: *c, T: *t, G: *g, Shards: *shards,
			Seed: *seed, CounterWidth: *cwidth, MaxOffset: *woff, UnsafeUpdates: *unsafe}
		if spec.C == 0 && kd.Multiplicity() {
			spec.C = 57
		}
		return spec, nil
	}
}

// parseKindArg accepts canonical Kind names plus the tool's legacy
// short aliases.
func parseKindArg(name string) (shbf.Kind, error) {
	switch name {
	case "member":
		return shbf.KindMembership, nil
	case "assoc":
		return shbf.KindAssociation, nil
	case "mult":
		return shbf.KindMultiplicity, nil
	}
	return shbf.ParseKind(name)
}

func loadTrace(path string) ([]trace.Flow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func ids(flows []trace.Flow) [][]byte {
	out := make([][]byte, len(flows))
	for i := range flows {
		out[i] = flows[i].ID[:]
	}
	return out
}

// sizeFromTrace fills spec.M when it is 0, using the paper's optimal
// sizing for the trace.
func sizeFromTrace(spec shbf.Spec, n int) shbf.Spec {
	if spec.M != 0 {
		return spec
	}
	m := float64(n) * float64(spec.K) / math.Ln2
	if spec.Kind.Multiplicity() {
		m *= 1.5
	}
	spec.M = int(m)
	return spec
}

// --- eval -----------------------------------------------------------------

func runEval(args []string) error {
	fs := flag.NewFlagSet("shbf eval", flag.ContinueOnError)
	spec := specFlags(fs)
	var (
		path   = fs.String("trace", "", "trace file (see cmd/tracegen)")
		path2  = fs.String("trace2", "", "second trace file (association: set S2)")
		probes = fs.Int("probes", 1000000, "negative probes for FPR measurement")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := spec()
	if err != nil {
		return err
	}
	// The membership/multiplicity paths validate inside shbf.New; the
	// association path builds via BuildAssociation, so validate here
	// so misapplied flags error on every eval kind.
	if err := sp.Validate(); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-trace is required")
	}
	flows, err := loadTrace(*path)
	if err != nil {
		return err
	}
	switch sp.Kind {
	case shbf.KindMembership:
		return evalMember(sp, flows, *probes)
	case shbf.KindAssociation:
		if *path2 == "" {
			return fmt.Errorf("association eval needs -trace2")
		}
		flows2, err := loadTrace(*path2)
		if err != nil {
			return err
		}
		return evalAssoc(sp, flows, flows2)
	case shbf.KindMultiplicity:
		return evalMult(sp, flows)
	default:
		return fmt.Errorf("eval supports membership, association, multiplicity (got %s)", sp.Kind)
	}
}

func evalMember(sp shbf.Spec, flows []trace.Flow, probes int) error {
	n := len(flows)
	sp = sizeFromTrace(sp, n)
	built, err := shbf.New(sp)
	if err != nil {
		return err
	}
	f := built.(*shbf.Membership)
	if err := f.AddAll(ids(flows)); err != nil {
		return err
	}
	gen := trace.NewGenerator(int64(sp.Seed) + 1000)
	fp := 0
	negs := workload.Negatives(gen, probes)
	for _, e := range negs {
		if f.Contains(e) {
			fp++
		}
	}
	measured := float64(fp) / float64(len(negs))
	theory := analytic.FPRShBFM(sp.M, n, float64(sp.K), f.MaxOffset())

	fmt.Printf("ShBF_M over %d elements: m=%d k=%d w̄=%d\n", n, sp.M, sp.K, f.MaxOffset())
	fmt.Printf("memory:        %d bytes (%.2f bits/element)\n", f.SizeBytes(), float64(8*f.SizeBytes())/float64(n))
	fmt.Printf("fill ratio:    %.4f\n", f.FillRatio())
	fmt.Printf("FPR measured:  %.6f  (over %d probes)\n", measured, len(negs))
	fmt.Printf("FPR theory:    %.6f  (paper Equation 1)\n", theory)
	fmt.Printf("hash ops/add:  %d (BF would use %d)\n", f.HashOpsPerAdd(), sp.K)
	return nil
}

func evalAssoc(sp shbf.Spec, flows1, flows2 []trace.Flow) error {
	s1, s2 := ids(flows1), ids(flows2)
	union := map[string]bool{}
	for _, e := range s1 {
		union[string(e)] = true
	}
	for _, e := range s2 {
		union[string(e)] = true
	}
	sp = sizeFromTrace(sp, len(union))
	a, err := shbf.BuildAssociation(s1, s2, sp.M, sp.K, sp.Options()...)
	if err != nil {
		return err
	}
	clear, total := 0, 0
	var regions []shbf.Region
	for _, group := range [][][]byte{s1, s2} {
		regions = a.QueryAll(regions, group)
		for _, r := range regions {
			if r.Clear() {
				clear++
			}
			total++
		}
	}
	fmt.Printf("ShBF_A over |S1|=%d |S2|=%d (|S1∩S2|=%d): m=%d k=%d\n",
		a.N1(), a.N2(), a.NBoth(), sp.M, sp.K)
	fmt.Printf("memory:          %d bytes\n", a.SizeBytes())
	fmt.Printf("fill ratio:      %.4f\n", a.FillRatio())
	fmt.Printf("clear answers:   %.4f measured, %.4f theory (Table 2)\n",
		float64(clear)/float64(total), analytic.ClearProbShBFA(sp.K))
	fmt.Printf("hash ops/query:  %d (iBF would use %d)\n", a.HashOpsPerQuery(), 2*sp.K)
	return nil
}

func evalMult(sp shbf.Spec, flows []trace.Flow) error {
	n := len(flows)
	sp = sizeFromTrace(sp, n)
	built, err := shbf.New(sp)
	if err != nil {
		return err
	}
	f := built.(*shbf.Multiplicity)
	counts := make([]int, 0, n)
	for _, fl := range flows {
		cnt := fl.Count
		if cnt > sp.C {
			cnt = sp.C
		}
		if err := f.AddWithCount(fl.ID[:], cnt); err != nil {
			return err
		}
		counts = append(counts, cnt)
	}
	correct, over := 0, 0
	got := f.CountAll(nil, ids(flows))
	for i := range flows {
		switch {
		case got[i] == counts[i]:
			correct++
		case got[i] > counts[i]:
			over++
		default:
			return fmt.Errorf("false negative on flow %d: %d < %d", i, got[i], counts[i])
		}
	}
	fmt.Printf("ShBF_X over %d flows: m=%d k=%d c=%d\n", n, sp.M, sp.K, sp.C)
	fmt.Printf("memory:       %d bytes\n", f.SizeBytes())
	fmt.Printf("fill ratio:   %.4f\n", f.FillRatio())
	fmt.Printf("correct:      %.4f measured, %.4f theory (Equations 26–28)\n",
		float64(correct)/float64(n), analytic.CRWorkload(sp.M, n, sp.K, sp.C, counts))
	fmt.Printf("overestimates: %d (never underestimates)\n", over)
	return nil
}

// --- plan -----------------------------------------------------------------

func runPlan(args []string) error {
	fs := flag.NewFlagSet("shbf plan", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "membership", "filter kind to size")
		n      = fs.Int("n", 100000, "expected elements (per tick with -window)")
		c      = fs.Int("c", 57, "maximum multiplicity (multiplicity)")
		target = fs.Float64("target", 0.01, "target FPR (membership) / clear probability (association) / correctness rate (multiplicity)")
		window = fs.Int("window", 0, "size a sliding-window membership ring of this many generations (-n becomes keys per tick; target is the whole-window FPR)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kd, err := parseKindArg(*kind)
	if err != nil {
		return err
	}
	if *window > 0 && kd != shbf.KindMembership {
		return fmt.Errorf("-window sizing supports membership only (got %s)", kd)
	}
	switch kd {
	case shbf.KindMembership:
		if *window > 0 {
			plan, err := sizing.Window(*n, *window, *target, shbf.DefaultMaxOffset)
			if err != nil {
				return err
			}
			fmt.Printf("Sliding-window ShBF_M plan for %d keys/tick, G=%d, window FPR ≤ %g:\n",
				*n, plan.Generations, *target)
			fmt.Printf("  per generation: m=%d bits (%.1f KiB), k=%d, FPR budget %.6g\n",
				plan.Generation.M, float64(plan.Generation.M)/8192,
				plan.Generation.K, plan.Generation.PredictedFPR)
			fmt.Printf("  window: total %d bits (%.1f KiB), predicted FPR %.6g\n",
				plan.TotalBits, float64(plan.TotalBits)/8192, plan.PredictedWindowFPR)
			fmt.Printf("  base spec: %s (wrap with shbf.NewWindow, Generations=%d)\n",
				specString(plan.Spec()), plan.Generations)
			return nil
		}
		plan, err := sizing.Membership(*n, *target, shbf.DefaultMaxOffset)
		if err != nil {
			return err
		}
		fmt.Printf("ShBF_M plan for n=%d, FPR ≤ %g:\n", *n, *target)
		fmt.Printf("  m=%d bits (%.1f KiB, %.2f bits/element), k=%d, predicted FPR %.6f\n",
			plan.M, float64(plan.M)/8192, plan.BitsPerElem, plan.K, plan.PredictedFPR)
		fmt.Printf("  spec: %s\n", specString(plan.Spec()))
	case shbf.KindAssociation:
		plan, err := sizing.Association(*n, *target)
		if err != nil {
			return err
		}
		fmt.Printf("ShBF_A plan for |S1∪S2|=%d, P(clear) ≥ %g:\n", *n, *target)
		fmt.Printf("  m=%d bits (%.1f KiB), k=%d, predicted clear %.6f\n",
			plan.M, float64(plan.M)/8192, plan.K, plan.PredictedClear)
		fmt.Printf("  spec: %s\n", specString(plan.Spec()))
	case shbf.KindMultiplicity:
		plan, err := sizing.Multiplicity(*n, *c, *target)
		if err != nil {
			return err
		}
		fmt.Printf("ShBF_X plan for n=%d, c=%d, CR ≥ %g:\n", *n, *c, *target)
		fmt.Printf("  m=%d bits (%.1f KiB, %.2f bits/element), k=%d, predicted CR %.6f\n",
			plan.M, float64(plan.M)/8192, plan.BitsPerElem, plan.K, plan.PredictedCR)
		fmt.Printf("  spec: %s\n", specString(plan.Spec()))
	default:
		return fmt.Errorf("plan supports membership, association, multiplicity (got %s)", kd)
	}
	return nil
}

// specString renders the non-zero fields of a spec as flags.
func specString(sp shbf.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-kind %s -m %d -k %d", sp.Kind, sp.M, sp.K)
	if sp.C != 0 {
		fmt.Fprintf(&b, " -c %d", sp.C)
	}
	if sp.T != 0 {
		fmt.Fprintf(&b, " -t %d", sp.T)
	}
	if sp.G != 0 {
		fmt.Fprintf(&b, " -g %d", sp.G)
	}
	if sp.Shards != 0 {
		fmt.Fprintf(&b, " -shards %d", sp.Shards)
	}
	if sp.Seed != 0 {
		fmt.Fprintf(&b, " -seed %d", sp.Seed)
	}
	if sp.CounterWidth != 0 {
		fmt.Fprintf(&b, " -counter-width %d", sp.CounterWidth)
	}
	if sp.MaxOffset != 0 && sp.MaxOffset != shbf.DefaultMaxOffset {
		fmt.Fprintf(&b, " -max-offset %d", sp.MaxOffset)
	}
	if sp.UnsafeUpdates {
		b.WriteString(" -unsafe")
	}
	return b.String()
}

// --- dump / load ----------------------------------------------------------

// runDump builds a filter from the trace and writes it as one
// self-describing envelope.
func runDump(args []string) error {
	fs := flag.NewFlagSet("shbf dump", flag.ContinueOnError)
	spec := specFlags(fs)
	var (
		path = fs.String("trace", "", "trace file to build from")
		out  = fs.String("out", "", "output file for the filter envelope")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := spec()
	if err != nil {
		return err
	}
	if *path == "" || *out == "" {
		return fmt.Errorf("dump needs -trace and -out")
	}
	flows, err := loadTrace(*path)
	if err != nil {
		return err
	}
	sp = sizeFromTrace(sp, len(flows))
	built, err := shbf.New(sp)
	if err != nil {
		return err
	}
	// The count-carrying kinds must encode each flow's trace
	// multiplicity, not one insert per flow.
	switch f := built.(type) {
	case *shbf.Multiplicity:
		for _, fl := range flows {
			cnt := fl.Count
			if cnt > sp.C {
				cnt = sp.C
			}
			if err := f.AddWithCount(fl.ID[:], cnt); err != nil {
				return err
			}
		}
	case shbf.Counter: // counting/sharded multiplicity: insert count times
		u, ok := f.(shbf.Updatable)
		if !ok {
			return fmt.Errorf("dump cannot populate a %s filter from one trace", sp.Kind)
		}
		for _, fl := range flows {
			cnt := fl.Count
			if sp.C > 0 && cnt > sp.C {
				cnt = sp.C
			}
			for j := 0; j < cnt; j++ {
				if err := u.Insert(fl.ID[:]); err != nil {
					return err
				}
			}
		}
	case *shbf.SCMSketch:
		for _, fl := range flows {
			for j := 0; j < fl.Count; j++ {
				f.Insert(fl.ID[:])
			}
		}
	case shbf.Adder: // membership kinds: one insert per distinct flow
		if err := f.AddAll(ids(flows)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("dump cannot populate a %s filter from one trace", sp.Kind)
	}
	w, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := shbf.Dump(w, built); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	st := built.Stats()
	fmt.Printf("dumped %s filter: n=%d, %d bytes of arrays, fill %.4f → %s\n",
		st.Kind, st.N, st.SizeBytes, st.FillRatio, *out)
	return nil
}

// runLoad reads any envelope back — the kind travels in the file — and
// reports what it holds; with -trace it also probes the filter.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("shbf load", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "filter envelope to load")
		path = fs.String("trace", "", "optional trace of keys to probe")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("load needs -in")
	}
	r, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	f, err := shbf.Load(r)
	if err != nil {
		return err
	}
	sp, st := f.Spec(), f.Stats()
	fmt.Printf("loaded %s filter from %s\n", sp.Kind, *in)
	fmt.Printf("spec:  %s\n", specString(sp))
	fmt.Printf("stats: n=%d, %d bytes of arrays, fill %.4f", st.N, st.SizeBytes, st.FillRatio)
	if st.Shards > 0 {
		fmt.Printf(", %d shards", st.Shards)
	}
	fmt.Println()
	if *path == "" {
		return nil
	}
	flows, err := loadTrace(*path)
	if err != nil {
		return err
	}
	keys := ids(flows)
	switch q := f.(type) {
	// Keyed on ContainsAll rather than the full Set interface so the
	// counting membership kind (Insert, no Add) is probeable too.
	case interface {
		ContainsAll(dst []bool, keys [][]byte) []bool
	}:
		hits := 0
		for _, ok := range q.ContainsAll(nil, keys) {
			if ok {
				hits++
			}
		}
		fmt.Printf("probe: %d/%d trace keys positive\n", hits, len(keys))
	case shbf.Counter:
		nonzero := 0
		for _, c := range q.CountAll(nil, keys) {
			if c > 0 {
				nonzero++
			}
		}
		fmt.Printf("probe: %d/%d trace keys with count > 0\n", nonzero, len(keys))
	case shbf.Associator:
		clear := 0
		for _, r := range q.QueryAll(nil, keys) {
			if r.Clear() {
				clear++
			}
		}
		fmt.Printf("probe: %d/%d trace keys with clear region\n", clear, len(keys))
	default:
		fmt.Printf("probe: %s filters are not probeable from a trace\n", sp.Kind)
	}
	return nil
}
