package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"shbf/internal/wire"
)

// binaryTransport speaks ShBP over one TCP connection. Round trips are
// serialized on the connection (the protocol answers in order); a
// broken connection is closed and redialed on the next call, never
// retried in place — a lost response may have applied its updates.
type binaryTransport struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte // encoded request frame, reused
	rbuf []byte // response frame, reused
}

// dialTimeout bounds connection establishment; round trips themselves
// are not deadline-bounded (batch sizes are capped by the protocol, so
// a healthy daemon answers promptly — put an LB health check in front
// for the unhealthy case).
const dialTimeout = 5 * time.Second

// dialBinary eagerly connects so a down daemon fails at Dial.
func dialBinary(addr string) (*Client, error) {
	t := &binaryTransport{addr: addr}
	t.mu.Lock()
	err := t.connectLocked()
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &Client{t: t}, nil
}

// dialBinaryLazy defers the connection to the first round trip. The
// cluster router uses it so one down node degrades to per-node errors
// on use instead of failing the whole fleet dial.
func dialBinaryLazy(addr string) *Client {
	return &Client{t: &binaryTransport{addr: addr}}
}

// connectLocked (re)establishes the connection; t.mu must be held.
func (t *binaryTransport) connectLocked() error {
	conn, err := net.DialTimeout("tcp", t.addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("client: dialing %s: %w", t.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // one frame per round trip; don't batch for Nagle
	}
	t.conn = conn
	t.br = bufio.NewReaderSize(conn, 64<<10)
	return nil
}

func (t *binaryTransport) roundTrip(req *wire.Request, resp *wire.Response) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	t.wbuf, err = wire.AppendRequest(t.wbuf[:0], req)
	if err != nil {
		return err // encoding error; the connection is untouched
	}
	if t.conn == nil {
		if err := t.connectLocked(); err != nil {
			return err
		}
	}
	if _, err = t.conn.Write(t.wbuf); err == nil {
		t.rbuf, err = wire.ReadFrame(t.br, t.rbuf)
		if err == nil {
			err = wire.DecodeResponse(resp, t.rbuf)
		}
	}
	if err != nil {
		// The stream position is unknown; drop the connection so the
		// next call starts clean.
		t.conn.Close()
		t.conn, t.br = nil, nil
		return fmt.Errorf("client: %s round trip: %w", wire.OpName(req.Op), err)
	}
	// Blob aliases rbuf, which the next round trip overwrites; detach
	// it before the lock is released. (DecodeResponse copies the other
	// body fields into resp-owned storage.)
	if resp.Blob != nil {
		resp.Blob = append([]byte(nil), resp.Blob...)
	}
	return nil
}

func (t *binaryTransport) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return nil
	}
	err := t.conn.Close()
	t.conn, t.br = nil, nil
	return err
}
