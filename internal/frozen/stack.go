package frozen

import (
	"encoding/binary"
	"fmt"
)

// Stack file format ("ShBK"): N frozen ShBZ containers back to back,
// 64-byte aligned, followed by an index and a fixed footer — the shape
// a host storage engine wants for thousands of SSTable-style filters
// in one mapped file. One OpenStack validates the index; each At(i) is
// then O(1): slice out the i-th container and Open it in place (no
// copying, the per-filter cost is the handle and its hash families).
//
//	[container 0][zero pad to 64]…[container N−1][zero pad]
//	[index: N × {offset u64, length u64}]
//	[footer, 32 bytes at EOF:
//	    0  8  index offset
//	    8  8  container count N
//	   16  8  total file bytes
//	   24  1  version (1)
//	   25  3  reserved, zero
//	   28  4  magic "ShBK"]
//
// The footer sits at the end so a stack can be opened from a mapped
// file without knowing anything but its length. (The magic differs
// from the sharded snapshot's "ShBS" — the two formats share a prefix
// family but are unrelated.)

const (
	// stackVersion is the current stack format version.
	stackVersion = 1
	// footerSize is the fixed trailer length.
	footerSize = 32
	// indexEntrySize is one {offset, length} index entry.
	indexEntrySize = 16
	// stackAlign is the container alignment within the file.
	stackAlign = 64
	// maxStackFilters bounds the index against implausible counts.
	maxStackFilters = 1 << 28
)

// stackMagic identifies a stack file.
var stackMagic = [4]byte{'S', 'h', 'B', 'K'}

// Stack is an open stack file: a validated index over the mapped
// bytes. At(i) opens the i-th container in place.
type Stack struct {
	data  []byte
	index []byte // count × indexEntrySize
	count int
}

// OpenStack parses the footer and index of a stack file and validates
// every entry's bounds. The containers themselves are not touched —
// cost is O(count) bounds checks, independent of filter sizes.
func OpenStack(data []byte) (*Stack, error) {
	if len(data) < footerSize {
		return nil, fmt.Errorf("frozen: %d bytes is shorter than the %d-byte stack footer", len(data), footerSize)
	}
	ft := data[len(data)-footerSize:]
	if [4]byte(ft[28:32]) != stackMagic {
		return nil, fmt.Errorf("frozen: bad stack magic %q", ft[28:32])
	}
	if ft[24] != stackVersion {
		return nil, fmt.Errorf("frozen: unsupported stack version %d", ft[24])
	}
	if ft[25] != 0 || ft[26] != 0 || ft[27] != 0 {
		return nil, fmt.Errorf("frozen: reserved stack footer bytes are not zero")
	}
	indexOff := binary.LittleEndian.Uint64(ft[0:8])
	count := binary.LittleEndian.Uint64(ft[8:16])
	total := binary.LittleEndian.Uint64(ft[16:24])
	if total != uint64(len(data)) {
		return nil, fmt.Errorf("frozen: stack footer claims %d bytes, have %d", total, len(data))
	}
	if count > maxStackFilters {
		return nil, fmt.Errorf("frozen: stack count %d exceeds the %d bound", count, maxStackFilters)
	}
	indexLen := count * indexEntrySize
	if indexOff > total-footerSize || indexLen != total-footerSize-indexOff {
		return nil, fmt.Errorf("frozen: stack index [%d,+%d) inconsistent with %d-byte file", indexOff, indexLen, total)
	}
	index := data[indexOff : indexOff+indexLen]
	for i := uint64(0); i < count; i++ {
		e := index[i*indexEntrySize:]
		off := binary.LittleEndian.Uint64(e[0:8])
		n := binary.LittleEndian.Uint64(e[8:16])
		if off%stackAlign != 0 {
			return nil, fmt.Errorf("frozen: stack entry %d at offset %d is not %d-byte aligned", i, off, stackAlign)
		}
		if n < headerSize || off > indexOff || n > indexOff-off {
			return nil, fmt.Errorf("frozen: stack entry %d [%d,+%d) out of bounds", i, off, n)
		}
	}
	return &Stack{data: data, index: index, count: int(count)}, nil
}

// Len returns the number of stacked filters.
func (s *Stack) Len() int { return s.count }

// At opens the i-th filter in place (a fresh handle each call; open
// once and reuse for a hot filter). The handle aliases the stack's
// bytes.
func (s *Stack) At(i int) (*Filter, error) {
	if i < 0 || i >= s.count {
		return nil, fmt.Errorf("frozen: stack index %d out of range [0,%d)", i, s.count)
	}
	e := s.index[i*indexEntrySize:]
	off := binary.LittleEndian.Uint64(e[0:8])
	n := binary.LittleEndian.Uint64(e[8:16])
	f, err := Open(s.data[off : off+n])
	if err != nil {
		return nil, fmt.Errorf("frozen: stack entry %d: %w", i, err)
	}
	return f, nil
}

// SizeBytes returns the stack file's total size.
func (s *Stack) SizeBytes() int { return len(s.data) }

// StackBuilder accumulates frozen containers and renders the stack
// file. The zero value is ready to use.
type StackBuilder struct {
	buf     []byte
	offsets []uint64
	lengths []uint64
}

// Add freezes a live filter (any source Append accepts) and appends
// the container to the stack.
func (b *StackBuilder) Add(f any) error {
	start := b.pad()
	buf, err := Append(b.buf, f)
	if err != nil {
		b.buf = b.buf[:start] // drop the alignment pad too
		return err
	}
	b.buf = buf
	b.offsets = append(b.offsets, uint64(start))
	b.lengths = append(b.lengths, uint64(len(b.buf)-start))
	return nil
}

// AddFrozen appends an already-frozen ShBZ container (validated by
// opening it) to the stack.
func (b *StackBuilder) AddFrozen(shbz []byte) error {
	f, err := Open(shbz)
	if err != nil {
		return err
	}
	start := b.pad()
	b.buf = append(b.buf, f.Bytes()...)
	b.offsets = append(b.offsets, uint64(start))
	b.lengths = append(b.lengths, uint64(len(f.Bytes())))
	return nil
}

// pad zero-pads the buffer to the container alignment and returns the
// next container's offset.
func (b *StackBuilder) pad() int {
	for len(b.buf)%stackAlign != 0 {
		b.buf = append(b.buf, 0)
	}
	return len(b.buf)
}

// Len returns the number of containers added so far.
func (b *StackBuilder) Len() int { return len(b.offsets) }

// Finish appends the index and footer and returns the complete stack
// file. The builder must not be reused afterwards.
func (b *StackBuilder) Finish() []byte {
	indexOff := b.pad()
	var e [indexEntrySize]byte
	for i := range b.offsets {
		binary.LittleEndian.PutUint64(e[0:8], b.offsets[i])
		binary.LittleEndian.PutUint64(e[8:16], b.lengths[i])
		b.buf = append(b.buf, e[:]...)
	}
	var ft [footerSize]byte
	binary.LittleEndian.PutUint64(ft[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(ft[8:16], uint64(len(b.offsets)))
	binary.LittleEndian.PutUint64(ft[16:24], uint64(len(b.buf)+footerSize))
	ft[24] = stackVersion
	copy(ft[28:32], stackMagic[:])
	return append(b.buf, ft[:]...)
}
