package server

import (
	"math"
	"net/http"
	"time"

	"shbf"
	"shbf/internal/analytic"
)

// Stats is the /v1/stats response: per-filter occupancy and estimated
// accuracy from the paper's formulas (internal/analytic), plus served
// query counters.
type Stats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Queries       map[string]uint64 `json:"queries"`
	Membership    MembershipStats   `json:"membership"`
	Association   AssociationStats  `json:"association"`
	Multiplicity  MultiplicityStats `json:"multiplicity"`
}

// WindowStats is the rotation metadata attached to a filter's stats
// when the daemon runs in window mode. Everything here is read from
// the live filter at request time — a restored snapshot's ring state
// (epoch, per-generation occupancy) shows up immediately.
type WindowStats struct {
	// Generations is the ring length G.
	Generations int `json:"generations"`
	// Epoch is the number of completed rotations (restored snapshots
	// resume their epoch).
	Epoch uint64 `json:"epoch"`
	// TickSeconds is the configured rotation period (0 = rotation only
	// via POST /v1/rotate).
	TickSeconds float64 `json:"tick_seconds,omitempty"`
	// PerGeneration lists generation occupancy newest (the write head)
	// to oldest (next to be retired), summed across shards.
	PerGeneration []GenOccupancy `json:"per_generation"`
}

// GenOccupancy is one generation's aggregate load.
type GenOccupancy struct {
	// N is the generation's element count summed across shards (−1
	// when no exact set is tracked).
	N int `json:"n"`
	// FillRatio is the generation's mean fill ratio across shards.
	FillRatio float64 `json:"fill_ratio"`
}

// windowStatsOf extracts rotation metadata when f is windowed (nil
// otherwise — the JSON omits the section for classic filters).
func windowStatsOf(f shbf.Filter) *WindowStats {
	w, ok := f.(shbf.Windowed)
	if !ok {
		return nil
	}
	in := w.Window()
	ws := &WindowStats{
		Generations:   in.Generations,
		Epoch:         in.Epoch,
		TickSeconds:   in.Tick.Seconds(),
		PerGeneration: make([]GenOccupancy, len(in.PerGeneration)),
	}
	for i, g := range in.PerGeneration {
		ws.PerGeneration[i] = GenOccupancy{N: g.N, FillRatio: g.FillRatio}
	}
	return ws
}

// ShardOccupancy is one shard's load in any of the three filters.
type ShardOccupancy struct {
	// N is the shard's element count; for association shards it is
	// n1 + n2 (distinct per set).
	N int `json:"n"`
	// FillRatio is the fraction of set bits in the shard's query array.
	FillRatio float64 `json:"fill_ratio"`
	// EstimatedFPR is the shard's predicted error rate: membership FPR
	// (Equation 1), association phantom-candidate probability, or
	// multiplicity non-member error rate (1 − CR). Omitted where not
	// defined.
	EstimatedFPR float64 `json:"estimated_fpr,omitempty"`
}

// MembershipStats describes the sharded ShBF_M (or its sliding-window
// ring in window mode, where EstimatedFPR applies the 1−(1−f)^G window
// bound and TotalBits counts one generation — multiply by
// Window.Generations for the full footprint).
type MembershipStats struct {
	Shards       int              `json:"shards"`
	TotalBits    int              `json:"total_bits"`
	K            int              `json:"k"`
	N            int              `json:"n"`
	FillRatio    float64          `json:"fill_ratio"`
	EstimatedFPR float64          `json:"estimated_fpr"`
	PerShard     []ShardOccupancy `json:"per_shard"`
	Window       *WindowStats     `json:"window,omitempty"`
}

// AssociationStats describes the sharded CShBF_A.
type AssociationStats struct {
	Shards    int     `json:"shards"`
	TotalBits int     `json:"total_bits"`
	K         int     `json:"k"`
	N1        int     `json:"n1"`
	N2        int     `json:"n2"`
	FillRatio float64 `json:"fill_ratio"`
	// ClearProb is the probability a union-member gets a single-region
	// answer at the paper's optimal sizing, (1−0.5^k)².
	ClearProb float64 `json:"clear_prob"`
	// PhantomProb is the probability a candidate region is a phantom,
	// at current occupancy.
	PhantomProb float64          `json:"phantom_prob"`
	PerShard    []ShardOccupancy `json:"per_shard"`
	Window      *WindowStats     `json:"window,omitempty"`
}

// MultiplicityStats describes the sharded CShBF_X.
type MultiplicityStats struct {
	Shards    int     `json:"shards"`
	TotalBits int     `json:"total_bits"`
	K         int     `json:"k"`
	C         int     `json:"c"`
	N         int     `json:"n"`
	FillRatio float64 `json:"fill_ratio"`
	// CorrectRateNonMember is the probability a non-member reports
	// count 0 at current occupancy (Equation 26's complement).
	CorrectRateNonMember float64          `json:"correct_rate_non_member"`
	PerShard             []ShardOccupancy `json:"per_shard"`
	Window               *WindowStats     `json:"window,omitempty"`
}

// Snapshot gathers the default namespace's current stats (exported
// for tests and for embedding shbfd in other processes); statsFor is
// the per-tenant form behind /v1/stats and /v2/namespaces/{ns}/stats.
func (s *Server) Snapshot() Stats { return s.statsFor(s.defaultNS()) }

// statsFor assembles one namespace's stats. The "snapshots" counter is
// daemon-wide (persistence covers every tenant); the rest are the
// namespace's own.
func (s *Server) statsFor(ns *namespace) Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries: map[string]uint64{
			"membership_add":      ns.stats.membershipAdd.Load(),
			"membership_contains": ns.stats.membershipContains.Load(),
			"association_update":  ns.stats.associationUpdate.Load(),
			"association_query":   ns.stats.associationQuery.Load(),
			"multiplicity_update": ns.stats.multiplicityUpdate.Load(),
			"multiplicity_query":  ns.stats.multiplicityQuery.Load(),
			"snapshots":           s.snapshots.Load(),
			"rotations":           ns.stats.rotations.Load(),
		},
	}

	st.Membership = membershipStatsOf(ns)

	as := AssociationStats{Window: windowStatsOf(ns.assoc)}
	ash := ns.assoc.ShardStats()
	as.Shards = len(ash)
	as.PerShard = make([]ShardOccupancy, len(ash))
	// In window mode a shard's N1+N2 spans the whole ring and a query
	// unions G generation answers, so — like the membership section —
	// evaluate the per-generation formula at N/G and union with
	// 1 − (1−p)^G. aGens = 1 degrades to the classic computation.
	aGens := 1
	if as.Window != nil {
		aGens = as.Window.Generations
	}
	phantomSum := 0.0
	for i, sh := range ash {
		// nDistinct per shard is at most n1+n2; the phantom formula
		// needs the union size, which the tables don't expose per
		// overlap, so n1+n2 is a (slightly pessimistic) upper bound.
		nGen := (sh.N1 + sh.N2 + aGens - 1) / aGens
		phantom := analytic.FPRWindow(analytic.PhantomProb(sh.Bits, nGen, sh.K), aGens)
		as.TotalBits += sh.Bits
		as.K = sh.K
		as.N1 += sh.N1
		as.N2 += sh.N2
		as.FillRatio += sh.FillRatio
		phantomSum += phantom
		as.PerShard[i] = ShardOccupancy{N: sh.N1 + sh.N2, FillRatio: sh.FillRatio, EstimatedFPR: phantom}
	}
	as.FillRatio /= float64(len(ash))
	as.PhantomProb = phantomSum / float64(len(ash))
	as.ClearProb = analytic.ClearProbShBFA(as.K)
	st.Association = as

	xs := MultiplicityStats{Window: windowStatsOf(ns.mult)}
	xsh := ns.mult.ShardStats()
	xs.Shards = len(xsh)
	xs.PerShard = make([]ShardOccupancy, len(xsh))
	// Window counts sum the ring, so a non-member reports 0 only when
	// every generation reports 0: CR_window = CR_gen^G at the
	// per-generation load. xGens = 1 degrades to the classic form.
	xGens := 1
	if xs.Window != nil {
		xGens = xs.Window.Generations
	}
	crSum := 0.0
	for i, sh := range xsh {
		nGen := (max(sh.N, 0) + xGens - 1) / xGens
		cr := math.Pow(analytic.CRNonMember(sh.Bits, nGen, sh.K, sh.C), float64(xGens))
		xs.TotalBits += sh.Bits
		xs.K = sh.K
		xs.C = sh.C
		if sh.N < 0 || xs.N < 0 {
			xs.N = -1 // unsafe-mode sentinel propagates, as in Multiplicity.N
		} else {
			xs.N += sh.N
		}
		xs.FillRatio += sh.FillRatio
		crSum += cr
		xs.PerShard[i] = ShardOccupancy{N: sh.N, FillRatio: sh.FillRatio, EstimatedFPR: 1 - cr}
	}
	xs.FillRatio /= float64(len(xsh))
	xs.CorrectRateNonMember = crSum / float64(len(xsh))
	st.Multiplicity = xs

	return st
}

// membershipStatsOf assembles the membership section of a namespace's
// stats. It is the one place the served membership FPR is computed —
// shared by statsFor (the per-tenant stats endpoints) and the tenant
// summaries behind GET /v2/stats and GET /v2/namespaces
// (NamespaceInfo), so the daemon-wide rollup can never disagree with
// the per-namespace endpoint.
func membershipStatsOf(ns *namespace) MembershipStats {
	mem := ns.mem.ShardStats()
	ms := MembershipStats{Shards: len(mem), PerShard: make([]ShardOccupancy, len(mem)),
		Window: windowStatsOf(ns.mem)}
	// In window mode a shard's N spans its whole ring; one generation
	// carries ≈ N/G of it, and a negative probe passes if any of the G
	// generations false-positives: 1 − (1−f_gen)^G (analytic.FPRWindow).
	gens := 1
	if ms.Window != nil {
		gens = ms.Window.Generations
	}
	fprSum := 0.0
	for i, sh := range mem {
		fpr := analytic.FPRShBFMWindow(sh.Bits, (sh.N+gens-1)/gens, float64(sh.K), sh.MaxOffset, gens)
		ms.TotalBits += sh.Bits
		ms.K = sh.K
		ms.N += sh.N
		ms.FillRatio += sh.FillRatio
		fprSum += fpr
		ms.PerShard[i] = ShardOccupancy{N: sh.N, FillRatio: sh.FillRatio, EstimatedFPR: fpr}
	}
	ms.FillRatio /= float64(len(mem))
	// A negative probe routes to one shard, so the served FPR is the
	// mean of the per-shard rates.
	ms.EstimatedFPR = fprSum / float64(len(mem))
	return ms
}

// nsStats serves GET /v1/stats (default namespace) and
// GET /v2/namespaces/{ns}/stats.
func (s *Server) nsStats(ns *namespace, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsFor(ns))
}
