package client

import "sync/atomic"

// Client-side instrumentation: lightweight counters a caller can poll
// to see what its handles have been doing — attempts, failures,
// retries, and (for the cluster router) read failovers and per-node
// failures. The counters live on the dialed client and are shared by
// every handle derived from it (WithContext, WithRetry, Namespace),
// so one Stats() call sums the whole handle family. For the daemon's
// own view, fetch its Prometheus scrape with [Client.Metrics].

// clientStats is the shared counter block behind one dialed Client and
// all handles derived from it. All methods are nil-receiver safe so a
// zero-value Client (never produced by the constructors) stays inert.
type clientStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	retries  atomic.Uint64
}

func (s *clientStats) request() {
	if s != nil {
		s.requests.Add(1)
	}
}

func (s *clientStats) error() {
	if s != nil {
		s.errors.Add(1)
	}
}

func (s *clientStats) retry() {
	if s != nil {
		s.retries.Add(1)
	}
}

// ClientStats is a point-in-time snapshot of one client's counters, as
// returned by [Client.Stats]. Counters only grow for the life of the
// client; deltas between snapshots give rates.
type ClientStats struct {
	// Requests counts round-trip attempts, including each retry.
	Requests uint64
	// Errors counts failed attempts: transport failures and
	// daemon-reported non-OK statuses alike. A call that succeeds on
	// its second attempt contributes 2 to Requests and 1 to Errors.
	Errors uint64
	// Retries counts re-attempts made by [Client.WithRetry] handles
	// (always ≤ Errors: only retryable failures of retryable ops are
	// re-attempted).
	Retries uint64
}

// Stats returns the client's cumulative counters. Handles derived with
// [Client.WithContext] and [Client.WithRetry] share the dialed
// client's counters, so any of them reports the family total.
func (c *Client) Stats() ClientStats {
	if c.stats == nil {
		return ClientStats{}
	}
	return ClientStats{
		Requests: c.stats.requests.Load(),
		Errors:   c.stats.errors.Load(),
		Retries:  c.stats.retries.Load(),
	}
}

// clusterStats is the router-level counter block: failovers plus a
// per-node failure tally. The node map is built once at dial time and
// never mutated after, so reads need no locking. Nil-receiver safe.
type clusterStats struct {
	failovers atomic.Uint64
	nodeErrs  map[string]*atomic.Uint64
}

func newClusterStats(m *ClusterMap) *clusterStats {
	s := &clusterStats{nodeErrs: make(map[string]*atomic.Uint64, len(m.Nodes))}
	for _, n := range m.Nodes {
		s.nodeErrs[n.ID] = new(atomic.Uint64)
	}
	return s
}

func (s *clusterStats) failover() {
	if s != nil {
		s.failovers.Add(1)
	}
}

func (s *clusterStats) nodeError(id string) {
	if s == nil {
		return
	}
	if c := s.nodeErrs[id]; c != nil {
		c.Add(1)
	}
}

// ClusterStats is a point-in-time snapshot of the router's counters,
// as returned by [Cluster.Stats]. Requests/Errors/Retries sum the
// per-node clients' [ClientStats].
type ClusterStats struct {
	// Requests, Errors and Retries aggregate every per-node client's
	// counters (see [ClientStats]).
	Requests uint64
	Errors   uint64
	Retries  uint64
	// Failovers counts read sub-batches re-sent to a replica after
	// their primary (or an earlier replica) failed.
	Failovers uint64
	// NodeErrors tallies failed calls per node ID, over every node in
	// the cluster map (zero entries included).
	NodeErrors map[string]uint64
}

// Stats returns the router's cumulative counters: per-node client
// totals plus failover and per-node failure tallies. Routers derived
// with [Cluster.WithContext] and [Cluster.WithRetry] share the dialed
// router's counters.
func (cl *Cluster) Stats() ClusterStats {
	var out ClusterStats
	for _, c := range cl.nodes {
		s := c.Stats()
		out.Requests += s.Requests
		out.Errors += s.Errors
		out.Retries += s.Retries
	}
	if cl.stats != nil {
		out.Failovers = cl.stats.failovers.Load()
		out.NodeErrors = make(map[string]uint64, len(cl.stats.nodeErrs))
		for id, c := range cl.stats.nodeErrs {
			out.NodeErrors[id] = c.Load()
		}
	}
	return out
}
