package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// roundTripRequest encodes req, strips the length prefix via ReadFrame,
// and decodes it back.
func roundTripRequest(t *testing.T, req *Request) Request {
	t.Helper()
	buf, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	frame, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	var got Request
	if err := DecodeRequest(&got, frame); err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func TestRequestRoundTripFixedWidth(t *testing.T) {
	keys := [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
		{13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
	}
	got := roundTripRequest(t, &Request{
		Op: OpMembershipContains, Namespace: "tenant-a", KeyWidth: 13, Keys: keys,
	})
	if got.Op != OpMembershipContains || got.Namespace != "tenant-a" || got.KeyWidth != 13 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Keys) != 2 || !bytes.Equal(got.Keys[0], keys[0]) || !bytes.Equal(got.Keys[1], keys[1]) {
		t.Fatalf("keys mismatch: %v", got.Keys)
	}
}

func TestRequestRoundTripVariableWidth(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte(""), []byte("a longer key with spaces")}
	counts := []int{1, 0, 57}
	got := roundTripRequest(t, &Request{
		Op: OpMultiplicityAdd, Keys: keys, Counts: counts,
	})
	if got.Namespace != "" || got.KeyWidth != 0 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range keys {
		if !bytes.Equal(got.Keys[i], keys[i]) {
			t.Fatalf("key %d: %q != %q", i, got.Keys[i], keys[i])
		}
		if got.Counts[i] != counts[i] {
			t.Fatalf("count %d: %d != %d", i, got.Counts[i], counts[i])
		}
	}
}

func TestRequestRoundTripAssociationSetAndBlob(t *testing.T) {
	got := roundTripRequest(t, &Request{
		Op: OpAssociationAdd, Set: 2, Namespace: "t", Keys: [][]byte{[]byte("k")},
	})
	if got.Set != 2 {
		t.Fatalf("set = %d, want 2", got.Set)
	}
	blob := []byte(`{"shards":4}`)
	got = roundTripRequest(t, &Request{Op: OpNamespaceCreate, Namespace: "t2", Blob: blob})
	if !bytes.Equal(got.Blob, blob) {
		t.Fatalf("blob = %q, want %q", got.Blob, blob)
	}
}

func TestRequestRoundTripClusterOps(t *testing.T) {
	// cluster-map is header-only.
	got := roundTripRequest(t, &Request{Op: OpClusterMap})
	if got.Op != OpClusterMap || got.Blob != nil || len(got.Keys) != 0 {
		t.Fatalf("cluster-map request: %+v", got)
	}
	// metrics is header-only, like ping: the scrape travels back in the
	// response blob.
	got = roundTripRequest(t, &Request{Op: OpMetrics})
	if got.Op != OpMetrics || got.Blob != nil || len(got.Keys) != 0 {
		t.Fatalf("metrics request: %+v", got)
	}
	// membership-dump carries only the namespace.
	got = roundTripRequest(t, &Request{Op: OpMembershipDump, Namespace: "t"})
	if got.Op != OpMembershipDump || got.Namespace != "t" || got.Blob != nil {
		t.Fatalf("membership-dump request: %+v", got)
	}
	// membership-merge carries an opaque envelope in the blob tail,
	// like namespace-create carries its config.
	envelope := []byte("ShBE\x01...fake envelope bytes\x00\xff")
	got = roundTripRequest(t, &Request{Op: OpMembershipMerge, Namespace: "t", Blob: envelope})
	if got.Op != OpMembershipMerge || got.Namespace != "t" {
		t.Fatalf("membership-merge header: %+v", got)
	}
	if !bytes.Equal(got.Blob, envelope) {
		t.Fatalf("membership-merge blob = %q, want %q", got.Blob, envelope)
	}
}

func TestRequestRoundTripMultiplicityMergeDump(t *testing.T) {
	// multiplicity-dump carries only the namespace, like membership-dump.
	got := roundTripRequest(t, &Request{Op: OpMultiplicityDump, Namespace: "t"})
	if got.Op != OpMultiplicityDump || got.Namespace != "t" || got.Blob != nil {
		t.Fatalf("multiplicity-dump request: %+v", got)
	}
	// multiplicity-merge carries an opaque envelope in the blob tail.
	envelope := []byte("ShBE\x01...fake multiplicity envelope\x00\xff")
	got = roundTripRequest(t, &Request{Op: OpMultiplicityMerge, Namespace: "t", Blob: envelope})
	if got.Op != OpMultiplicityMerge || got.Namespace != "t" {
		t.Fatalf("multiplicity-merge header: %+v", got)
	}
	if !bytes.Equal(got.Blob, envelope) {
		t.Fatalf("multiplicity-merge blob = %q, want %q", got.Blob, envelope)
	}
}

func TestPackedKeysRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		width int
		keys  [][]byte
	}{
		{"fixed", 3, [][]byte{[]byte("abc"), []byte("def")}},
		{"variable", 0, [][]byte{[]byte(""), []byte("x"), []byte("longer-key")}},
		{"empty", 0, nil},
	} {
		buf, err := AppendPackedKeys(nil, tc.width, tc.keys)
		if err != nil {
			t.Fatalf("%s: AppendPackedKeys: %v", tc.name, err)
		}
		keys, width, rest, err := DecodePackedKeys(nil, buf)
		if err != nil {
			t.Fatalf("%s: DecodePackedKeys: %v", tc.name, err)
		}
		if width != tc.width || len(rest) != 0 || len(keys) != len(tc.keys) {
			t.Fatalf("%s: width=%d rest=%d keys=%d", tc.name, width, len(rest), len(keys))
		}
		for i := range keys {
			if !bytes.Equal(keys[i], tc.keys[i]) {
				t.Fatalf("%s: key %d = %q, want %q", tc.name, i, keys[i], tc.keys[i])
			}
		}
	}
	// Truncated blocks must be refused, not over-read.
	buf, _ := AppendPackedKeys(nil, 4, [][]byte{[]byte("abcd")})
	for cut := 1; cut < len(buf); cut++ {
		if _, _, _, err := DecodePackedKeys(nil, buf[:cut]); err == nil {
			t.Fatalf("accepted a key block truncated to %d bytes", cut)
		}
	}
	if _, err := AppendPackedKeys(nil, 2, [][]byte{[]byte("abc")}); err == nil {
		t.Fatal("accepted a 3-byte key in a width-2 block")
	}
}

func TestRequestEncodingRejectsMismatchedWidth(t *testing.T) {
	_, err := AppendRequest(nil, &Request{
		Op: OpMembershipAdd, KeyWidth: 4, Keys: [][]byte{[]byte("abc")},
	})
	if err == nil {
		t.Fatal("accepted a 3-byte key in a width-4 frame")
	}
}

func TestResponseRoundTrips(t *testing.T) {
	cases := []Response{
		{Status: StatusOK, Op: OpPing},
		{Status: StatusOK, Op: OpMembershipAdd, Applied: 42},
		{Status: StatusOK, Op: OpMembershipContains, Bools: []bool{true, false, true, true, false, false, false, true, true}},
		{Status: StatusOK, Op: OpMultiplicityCount, Counts: []int{0, 1, 57, 3}},
		{Status: StatusOK, Op: OpAssociationQuery, Regions: []byte{0, 1, 3, 7}},
		{Status: StatusOK, Op: OpRotate, Epoch: 9, Rotated: []string{"membership", "association", "multiplicity"}},
		{Status: StatusOK, Op: OpStats, Blob: []byte(`{"n":1}`)},
		{Status: StatusOK, Op: OpClusterMap, Blob: []byte(`{"version":1,"nodes":[]}`)},
		{Status: StatusOK, Op: OpMembershipDump, Blob: []byte("ShBE\x01binary envelope\x00")},
		{Status: StatusOK, Op: OpMetrics, Blob: []byte("# TYPE shbf_requests_total counter\nshbf_requests_total{op=\"ping\"} 3\n")},
		{Status: StatusNotFound, Op: OpMetrics, Msg: "server: metrics disabled"},
		{Status: StatusOK, Op: OpMembershipMerge, Applied: 700},
		{Status: StatusConflict, Op: OpMembershipMerge, Msg: "spec mismatch"},
		{Status: StatusOK, Op: OpMultiplicityMerge, Applied: 31},
		{Status: StatusOK, Op: OpMultiplicityDump, Blob: []byte("ShBE\x01counting envelope\x00")},
		{Status: StatusConflict, Op: OpMultiplicityMerge, Msg: "spec mismatch"},
		{Status: StatusConflict, Op: OpMultiplicityAdd, Msg: "count overflow"},
	}
	for _, want := range cases {
		buf, err := AppendResponse(nil, &want)
		if err != nil {
			t.Fatalf("%s: AppendResponse: %v", OpName(want.Op), err)
		}
		frame, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", OpName(want.Op), err)
		}
		var got Response
		if err := DecodeResponse(&got, frame); err != nil {
			t.Fatalf("%s: DecodeResponse: %v", OpName(want.Op), err)
		}
		if got.Status != want.Status || got.Op != want.Op || got.Msg != want.Msg ||
			got.Applied != want.Applied || got.Epoch != want.Epoch {
			t.Fatalf("%s: %+v != %+v", OpName(want.Op), got, want)
		}
		if len(got.Bools) != len(want.Bools) || len(got.Counts) != len(want.Counts) ||
			!bytes.Equal(got.Regions, want.Regions) || len(got.Rotated) != len(want.Rotated) ||
			!bytes.Equal(got.Blob, want.Blob) {
			t.Fatalf("%s: body mismatch: %+v != %+v", OpName(want.Op), got, want)
		}
		for i := range want.Bools {
			if got.Bools[i] != want.Bools[i] {
				t.Fatalf("%s: bool %d", OpName(want.Op), i)
			}
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%s: count %d", OpName(want.Op), i)
			}
		}
		for i := range want.Rotated {
			if got.Rotated[i] != want.Rotated[i] {
				t.Fatalf("%s: rotated %d", OpName(want.Op), i)
			}
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"short header":  []byte("ShB"),
		"bad magic":     []byte("NOPE\x01\x10\x00\x00\x00\x00\x00\x00\x00\x00"),
		"bad version":   []byte("ShBP\x07\x10\x00\x00\x00\x00\x00\x00\x00\x00"),
		"unknown op":    []byte("ShBP\x01\xee\x00\x00\x00\x00\x00\x00\x00\x00"),
		"ns overrun":    []byte("ShBP\x01\x10\x00\x09ab"),
		"count overrun": append([]byte("ShBP\x01\x10\x00\x00\x0d\x00"), 0xff, 0xff, 0xff, 0xff),
		"trailing":      append(mustRequest(&Request{Op: OpPing})[4:], 0x00),
		"truncated varkey": append([]byte("ShBP\x01\x10\x00\x00\x00\x00"),
			0x02, 0x00, 0x00, 0x00, // 2 keys
			0x05, 'a'), // first key claims 5 bytes, has 1
	}
	var req Request
	for name, frame := range cases {
		if err := DecodeRequest(&req, frame); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// mustRequest encodes a request or panics (test helper).
func mustRequest(req *Request) []byte {
	buf, err := AppendRequest(nil, req)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized declared length is rejected before allocation.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Fatal("accepted an oversized frame")
	}
	// Zero-length frames are invalid (no message is empty).
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Fatal("accepted an empty frame")
	}
	// Clean EOF at a frame boundary is io.EOF, not an error wrap.
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("EOF at boundary: %v", err)
	}
	// EOF mid-payload is a truncation error.
	frame := mustRequest(&Request{Op: OpPing})
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-1]), nil); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("mid-payload EOF: %v", err)
	}
}

func TestDecodeReusesBuffers(t *testing.T) {
	// The server's per-connection loop decodes into one Request; the
	// second decode must not see the first's keys.
	var req Request
	f1 := mustRequest(&Request{Op: OpMembershipAdd, KeyWidth: 2, Keys: [][]byte{{1, 2}, {3, 4}}})
	f2 := mustRequest(&Request{Op: OpMembershipContains, KeyWidth: 2, Keys: [][]byte{{9, 9}}})
	if err := DecodeRequest(&req, f1[4:]); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequest(&req, f2[4:]); err != nil {
		t.Fatal(err)
	}
	if len(req.Keys) != 1 || !bytes.Equal(req.Keys[0], []byte{9, 9}) {
		t.Fatalf("stale keys after reuse: %v", req.Keys)
	}
}
