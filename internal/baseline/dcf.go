package baseline

import (
	"fmt"

	"shbf/internal/counters"
	"shbf/internal/hashing"
)

// DCF is the Dynamic Count Filter of Aguilar-Saborit et al. [2] (paper
// Section 2.3): a multiplicity structure combining "the ideas of
// spectral BF and CBF" with two filters — a CBF-like array of fixed-size
// counters (the low bits) and a second overflow array whose counter
// width grows dynamically as values outgrow the first. Every read
// touches both filters, "degrad[ing] query performance" relative to
// single-array schemes — the property the reproduction's ablation
// benchmarks show against ShBF_X.
type DCF struct {
	low   *counters.Array // fixed-width low bits
	high  *counters.Array // dynamically widened overflow bits
	m     int
	k     int
	fam   *hashing.Family
	grown int // number of dynamic widenings performed
	pos   []int
}

// NewDCF returns an empty DCF with m positions and k hash functions.
// The fixed low-bit width comes from WithCounterWidth (default 4); the
// overflow array starts at 1 bit per position.
func NewDCF(m, k int, opts ...Option) (*DCF, error) {
	cfg := applyOptions(opts)
	if m <= 0 {
		return nil, fmt.Errorf("baseline: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d must be ≥ 1", k)
	}
	low := counters.New(m, cfg.counterWidth)
	low.SetCounter(cfg.counter)
	high := counters.New(m, 1)
	high.SetCounter(cfg.counter)
	return &DCF{
		low:  low,
		high: high,
		m:    m,
		k:    k,
		fam:  hashing.NewFamily(k, cfg.seed),
	}, nil
}

// M and K report the geometry; Grown the number of overflow-array
// widenings (the "dynamic" in DCF).
func (f *DCF) M() int     { return f.m }
func (f *DCF) K() int     { return f.k }
func (f *DCF) Grown() int { return f.grown }

// value reads the combined counter at position p (two reads: one per
// filter, the structure's inherent cost).
func (f *DCF) value(p int) uint64 {
	return f.high.Get(p)<<f.low.Width() | f.low.Get(p)
}

// setValue writes the combined counter at position p, widening the
// overflow array first if v does not fit.
func (f *DCF) setValue(p int, v uint64) {
	lowMax := f.low.Max()
	hi := v >> f.low.Width()
	for hi > f.high.Max() {
		f.widen()
	}
	f.low.Set(p, v&lowMax)
	f.high.Set(p, hi)
}

// widen rebuilds the overflow array one bit wider, copying all values —
// the rebuild cost the original paper amortizes.
func (f *DCF) widen() {
	wider := counters.New(f.m, f.high.Width()+1)
	for i := 0; i < f.m; i++ {
		wider.Set(i, f.high.Peek(i))
	}
	f.high = wider
	f.grown++
}

// Insert adds one occurrence of e, incrementing the combined counter at
// each of the k positions.
func (f *DCF) Insert(e []byte) {
	f.pos = f.fam.PositionsFromDigest(f.fam.Digest(e), f.k, f.m, f.pos)
	for _, p := range f.pos {
		f.setValue(p, f.value(p)+1)
	}
}

// Delete removes one occurrence of e, or returns ErrNotStored (leaving
// the filter unchanged) if some position is already zero.
func (f *DCF) Delete(e []byte) error {
	f.pos = f.fam.PositionsFromDigest(f.fam.Digest(e), f.k, f.m, f.pos)
	for _, p := range f.pos {
		if f.value(p) == 0 {
			return ErrNotStored
		}
	}
	for _, p := range f.pos {
		f.setValue(p, f.value(p)-1)
	}
	return nil
}

// Count returns the multiplicity estimate (minimum over the k combined
// counters; never an underestimate).
func (f *DCF) Count(e []byte) uint64 {
	d := f.fam.Digest(e)
	min := ^uint64(0)
	for i := 0; i < f.k; i++ {
		v := f.value(f.fam.ModFromDigest(i, d, f.m))
		if v < min {
			min = v
			if min == 0 {
				return 0
			}
		}
	}
	return min
}

// SizeBytes returns the combined footprint of both filters.
func (f *DCF) SizeBytes() int { return f.low.SizeBytes() + f.high.SizeBytes() }
