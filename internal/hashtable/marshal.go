package hashtable

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file implements binary serialization for the chained hash table:
// uvarint entry count, then (uvarint key length, key bytes, uvarint
// value) per entry. Entries are emitted in sorted key order so the
// encoding is deterministic regardless of insertion history.

// AppendBinary appends the table's serialized form to buf and returns
// the result.
func (t *Table) AppendBinary(buf []byte) []byte {
	type kv struct {
		k string
		v uint64
	}
	entries := make([]kv, 0, t.size)
	t.Range(func(key []byte, value uint64) bool {
		entries = append(entries, kv{string(key), value})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })

	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.k)))
		buf = append(buf, e.k...)
		buf = binary.AppendUvarint(buf, e.v)
	}
	return buf
}

// DecodeInto reads entries serialized by AppendBinary into t (which
// should be empty), returning the remaining bytes.
func (t *Table) DecodeInto(buf []byte) ([]byte, error) {
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("hashtable: truncated entry count")
	}
	buf = buf[sz:]
	for i := uint64(0); i < count; i++ {
		klen, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf)-sz) < klen {
			return nil, fmt.Errorf("hashtable: truncated key %d", i)
		}
		buf = buf[sz:]
		key := buf[:klen]
		buf = buf[klen:]
		value, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("hashtable: truncated value %d", i)
		}
		buf = buf[sz:]
		t.Put(key, value)
	}
	return buf, nil
}
