package core

import (
	"math"
	"testing"
)

func mustTShift(t *testing.T, m, k, tt int, opts ...Option) *TShift {
	t.Helper()
	f, err := NewTShift(m, k, tt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewTShiftValidation(t *testing.T) {
	tests := []struct {
		name    string
		m, k, t int
	}{
		{"zero m", 0, 8, 1},
		{"zero t", 100, 8, 0},
		{"k not multiple of t+1", 100, 8, 2}, // 8 % 3 != 0
		{"k too small", 100, 2, 3},
		{"t exceeds window", 100, 114, 113}, // segments would be empty with w̄=57
	}
	for _, tt := range tests {
		if _, err := NewTShift(tt.m, tt.k, tt.t); err == nil {
			t.Errorf("%s: NewTShift(%d,%d,%d) accepted invalid config", tt.name, tt.m, tt.k, tt.t)
		}
	}
	for _, ok := range []struct{ m, k, t int }{
		{100, 8, 1}, {100, 9, 2}, {100, 8, 3}, {100, 12, 5},
	} {
		if _, err := NewTShift(ok.m, ok.k, ok.t); err != nil {
			t.Errorf("NewTShift(%d,%d,%d) rejected valid config: %v", ok.m, ok.k, ok.t, err)
		}
	}
}

func TestTShiftNoFalseNegatives(t *testing.T) {
	for _, tt := range []int{1, 2, 3, 5} {
		k := 12 // divisible by 2, 3, 4, 6
		f := mustTShift(t, 20000, k, tt)
		elems := genElements(1000, int64(tt))
		for _, e := range elems {
			f.Add(e)
		}
		for i, e := range elems {
			if !f.Contains(e) {
				t.Fatalf("t=%d: false negative on element %d", tt, i)
			}
		}
	}
}

func TestTShiftAccessors(t *testing.T) {
	f := mustTShift(t, 5000, 12, 3)
	if f.M() != 5000 || f.K() != 12 || f.T() != 3 {
		t.Fatalf("accessors: M=%d K=%d T=%d", f.M(), f.K(), f.T())
	}
	// groups = 12/4 = 3, hash ops = 3 + 3 = 6.
	if got := f.HashOpsPerAdd(); got != 6 {
		t.Fatalf("HashOpsPerAdd = %d, want 6", got)
	}
	if f.MaxOffset() != DefaultMaxOffset {
		t.Fatalf("MaxOffset = %d", f.MaxOffset())
	}
}

func TestTShiftOffsetsInDisjointSegments(t *testing.T) {
	// The partitioned construction: offset j must land in segment j.
	f := mustTShift(t, 1000, 8, 3, WithMaxOffset(31)) // seg = 10
	for _, e := range genElements(2000, 7) {
		f.offsets(f.fam.Digest(e))
		for j, o := range f.offs {
			lo, hi := j*10+1, (j+1)*10
			if o < lo || o > hi {
				t.Fatalf("offset %d = %d outside segment [%d,%d]", j, o, lo, hi)
			}
		}
	}
}

func TestTShiftT1MatchesMembershipFPRBallpark(t *testing.T) {
	// t=1 is the ShBF_M construction; its measured FPR must agree with
	// Equation (1) just like Membership's. The probe count keeps the
	// expected false-positive count large enough (≈130) that the 25%
	// tolerance sits near 3σ of the Poisson noise.
	const m, k, n, probes = 22008, 8, 1200, 500000
	f := mustTShift(t, m, k, 1, WithSeed(5))
	for _, e := range genElements(n, 20) {
		f.Add(e)
	}
	fp := 0
	for _, e := range genDisjoint(probes, 21) {
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / probes
	p := math.Exp(-float64(n) * k / float64(m))
	want := math.Pow(1-p, k/2.0) * math.Pow(1-p+p*p/(DefaultMaxOffset-1), k/2.0)
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("t=1 FPR %.5f vs Eq(1) %.5f", got, want)
	}
}

func TestTShiftLargerTStillReasonableFPR(t *testing.T) {
	// Larger t trades hash ops for FPR; with ample memory the FPR must
	// stay within a small factor of the BF baseline.
	const m, n, probes = 30000, 1500, 50000
	bfTheory := math.Pow(1-math.Exp(-float64(n)*12/float64(m)), 12)
	for _, tt := range []int{1, 2, 3} {
		f := mustTShift(t, m, 12, tt, WithSeed(uint64(tt)))
		for _, e := range genElements(n, 30) {
			f.Add(e)
		}
		fp := 0
		for _, e := range genDisjoint(probes, 31) {
			if f.Contains(e) {
				fp++
			}
		}
		got := float64(fp) / probes
		if got > bfTheory*3 {
			t.Fatalf("t=%d: FPR %.5f more than 3× BF theory %.5f", tt, got, bfTheory)
		}
	}
}

func TestTShiftReset(t *testing.T) {
	f := mustTShift(t, 1000, 8, 1)
	f.Add([]byte("x"))
	f.Reset()
	if f.N() != 0 || f.FillRatio() != 0 {
		t.Fatal("Reset did not clear filter")
	}
}

func BenchmarkTShiftContains(b *testing.B) {
	for _, tt := range []struct {
		name string
		t, k int
	}{{"t1_k8", 1, 8}, {"t3_k8", 3, 8}, {"t7_k8", 7, 8}} {
		b.Run(tt.name, func(b *testing.B) {
			f, err := NewTShift(1<<20, tt.k, tt.t)
			if err != nil {
				b.Fatal(err)
			}
			elems := genElements(1024, 1)
			for _, e := range elems {
				f.Add(e)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Contains(elems[i&1023])
			}
		})
	}
}
