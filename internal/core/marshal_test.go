package core

import (
	"encoding"
	"math/rand"
	"strings"
	"testing"
)

// Static checks: every filter implements both interfaces.
var (
	_ encoding.BinaryMarshaler   = (*Membership)(nil)
	_ encoding.BinaryUnmarshaler = (*Membership)(nil)
	_ encoding.BinaryMarshaler   = (*CountingMembership)(nil)
	_ encoding.BinaryUnmarshaler = (*CountingMembership)(nil)
	_ encoding.BinaryMarshaler   = (*TShift)(nil)
	_ encoding.BinaryUnmarshaler = (*TShift)(nil)
	_ encoding.BinaryMarshaler   = (*Association)(nil)
	_ encoding.BinaryUnmarshaler = (*Association)(nil)
	_ encoding.BinaryMarshaler   = (*CountingAssociation)(nil)
	_ encoding.BinaryUnmarshaler = (*CountingAssociation)(nil)
	_ encoding.BinaryMarshaler   = (*Multiplicity)(nil)
	_ encoding.BinaryUnmarshaler = (*Multiplicity)(nil)
	_ encoding.BinaryMarshaler   = (*CountingMultiplicity)(nil)
	_ encoding.BinaryUnmarshaler = (*CountingMultiplicity)(nil)
	_ encoding.BinaryMarshaler   = (*SCMSketch)(nil)
	_ encoding.BinaryUnmarshaler = (*SCMSketch)(nil)
)

func TestMembershipRoundTrip(t *testing.T) {
	f := mustMembership(t, 5000, 8, WithSeed(77), WithMaxOffset(41))
	elems := genElements(400, 1)
	for _, e := range elems {
		f.Add(e)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Membership
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.M() != 5000 || g.K() != 8 || g.MaxOffset() != 41 || g.N() != 400 {
		t.Fatalf("decoded params: m=%d k=%d w̄=%d n=%d", g.M(), g.K(), g.MaxOffset(), g.N())
	}
	// The decoded filter must answer identically, members and probes.
	for _, e := range elems {
		if !g.Contains(e) {
			t.Fatal("decoded filter lost a member")
		}
	}
	for _, e := range genDisjoint(5000, 2) {
		if f.Contains(e) != g.Contains(e) {
			t.Fatal("decoded filter disagrees with original")
		}
	}
	// And keep accepting adds with the same hash family.
	extra := []byte("added after decode")
	g.Add(extra)
	if !g.Contains(extra) {
		t.Fatal("decoded filter cannot be extended")
	}
}

func TestCountingMembershipRoundTrip(t *testing.T) {
	c := mustCounting(t, 3000, 6, WithSeed(5), WithCounterWidth(8))
	elems := genElements(200, 3)
	for _, e := range elems {
		if err := c.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d CountingMembership
	if err := d.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// Deletes must work on the decoded filter (counters intact).
	for _, e := range elems {
		if !d.Contains(e) {
			t.Fatal("decoded counting filter lost a member")
		}
		if err := d.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if d.Filter().FillRatio() != 0 {
		t.Fatal("decoded filter not empty after deleting everything")
	}
	if !d.consistent() {
		t.Fatal("decoded filter violates B/C invariant")
	}
}

func TestTShiftRoundTrip(t *testing.T) {
	f := mustTShift(t, 4000, 12, 3, WithSeed(9))
	elems := genElements(300, 4)
	for _, e := range elems {
		f.Add(e)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g TShift
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.T() != 3 || g.K() != 12 || g.N() != 300 {
		t.Fatalf("decoded params: t=%d k=%d n=%d", g.T(), g.K(), g.N())
	}
	for _, e := range elems {
		if !g.Contains(e) {
			t.Fatal("decoded t-shift filter lost a member")
		}
	}
}

func TestAssociationRoundTrip(t *testing.T) {
	s1only, both, s2only := buildAssocSets(100, 50, 100, 5)
	a := buildAssoc(t, s1only, both, s2only, 5000, 8, WithSeed(13))
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Association
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if b.N1() != a.N1() || b.N2() != a.N2() || b.NBoth() != a.NBoth() {
		t.Fatalf("decoded sizes: %d/%d/%d", b.N1(), b.N2(), b.NBoth())
	}
	for _, e := range s1only {
		if a.Query(e) != b.Query(e) {
			t.Fatal("decoded association filter disagrees")
		}
	}
	for _, e := range both {
		if !b.Query(e).Contains(RegionBoth) {
			t.Fatal("decoded filter lost intersection truth")
		}
	}
}

func TestCountingAssociationRoundTrip(t *testing.T) {
	a := mustCountingAssoc(t, 4000, 6, WithSeed(21), WithCounterWidth(8))
	e1, e2 := []byte("one"), []byte("two")
	a.InsertS1(e1)
	a.InsertS1(e2)
	a.InsertS2(e2)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b CountingAssociation
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if b.N1() != 2 || b.N2() != 1 {
		t.Fatalf("decoded set sizes %d/%d", b.N1(), b.N2())
	}
	if !b.Query(e2).Contains(RegionBoth) {
		t.Fatal("decoded filter lost region truth")
	}
	// Updates must keep working, including region migration.
	if err := b.DeleteS1(e2); err != nil {
		t.Fatal(err)
	}
	if !b.Query(e2).Contains(RegionS2Only) {
		t.Fatal("region migration broken after decode")
	}
}

func TestMultiplicityRoundTrip(t *testing.T) {
	f := mustMultiplicity(t, 8000, 6, 30, WithSeed(31))
	rng := rand.New(rand.NewSource(6))
	elems := genElements(300, 7)
	truth := make([]int, len(elems))
	for i, e := range elems {
		truth[i] = rng.Intn(30) + 1
		f.AddWithCount(e, truth[i])
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Multiplicity
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i, e := range elems {
		if got, want := g.Count(e), f.Count(e); got != want {
			t.Fatalf("decoded count %d, original %d", got, want)
		}
		if g.Count(e) < truth[i] {
			t.Fatal("decoded filter underestimates")
		}
	}
}

func TestCountingMultiplicityRoundTrip(t *testing.T) {
	f := mustCountingMult(t, 8000, 6, 20, WithSeed(41), WithCounterWidth(8))
	e := []byte("flow")
	for i := 0; i < 7; i++ {
		f.Insert(e)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g CountingMultiplicity
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.ExactCount(e) != 7 {
		t.Fatalf("decoded exact count %d, want 7 (table must survive)", g.ExactCount(e))
	}
	// Updates continue exactly.
	if err := g.Insert(e); err != nil {
		t.Fatal(err)
	}
	if g.ExactCount(e) != 8 || g.Count(e) < 8 {
		t.Fatal("decoded filter broken after further insert")
	}
	for i := 0; i < 8; i++ {
		if err := g.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if g.Count(e) != 0 {
		t.Fatal("decoded filter not empty after matched deletes")
	}
}

func TestCountingMultiplicityUnsafeRoundTrip(t *testing.T) {
	f := mustCountingMult(t, 4000, 4, 10, WithUnsafeUpdates(), WithCounterWidth(8))
	f.Insert([]byte("x"))
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g CountingMultiplicity
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !g.Unsafe() {
		t.Fatal("unsafe mode lost in round trip")
	}
	if g.Count([]byte("x")) != 1 {
		t.Fatal("decoded unsafe filter lost state")
	}
}

func TestSCMSketchRoundTrip(t *testing.T) {
	s := mustSCM(t, 6, 2048, WithSeed(51), WithCounterWidth(16))
	elems := genElements(200, 8)
	for i, e := range elems {
		for j := 0; j <= i%5; j++ {
			s.Insert(e)
		}
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d SCMSketch
	if err := d.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, e := range elems {
		if d.Count(e) != s.Count(e) {
			t.Fatal("decoded SCM sketch disagrees")
		}
	}
	d.Insert(elems[0])
	if d.Count(elems[0]) != s.Count(elems[0])+1 {
		t.Fatal("decoded SCM sketch broken after insert")
	}
}

func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	f := mustMembership(t, 1000, 4)
	f.Add([]byte("x"))
	data, _ := f.MarshalBinary()

	var g Membership
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte(strings.Repeat("x", len(data))),
		"truncated":      data[:len(data)/2],
		"wrong kind":     append(append([]byte{}, data[:5]...), 99),
		"trailing bytes": append(append([]byte{}, data...), 0xFF),
	}
	for name, corrupt := range cases {
		if err := g.UnmarshalBinary(corrupt); err == nil {
			t.Errorf("%s: accepted corrupt input", name)
		}
	}

	// A valid multiplicity blob must not decode as a membership filter.
	mf := mustMultiplicity(t, 1000, 4, 10)
	mdata, _ := mf.MarshalBinary()
	if err := g.UnmarshalBinary(mdata); err == nil {
		t.Error("membership decoder accepted a multiplicity blob")
	}

	// Bad version byte.
	bad := append([]byte{}, data...)
	bad[4] = 99
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Error("accepted unsupported version")
	}
}

// TestMultiAssociationRejectsOverflowingSizes: per-set sizes whose sum
// wraps uint64 must not sneak past the plausibility cap (each size is
// bounded individually).
func TestMultiAssociationRejectsOverflowingSizes(t *testing.T) {
	// Header + geometry for g = 2, then two sizes of 1<<63 whose sum
	// wraps to 0.
	buf := header(nil, kindMultiAssociation)
	buf = uvarints(buf, 1000, 4, 2, uint64(DefaultMaxOffset), 0x5b8f_0000)
	buf = uvarints(buf, 1<<63, 1<<63)
	var a MultiAssociation
	if err := a.UnmarshalBinary(buf); err == nil {
		t.Fatal("accepted sizes that wrap uint64")
	}
	// A single huge size is likewise rejected.
	buf = header(nil, kindMultiAssociation)
	buf = uvarints(buf, 1000, 4, 2, uint64(DefaultMaxOffset), 0x5b8f_0000)
	buf = uvarints(buf, maxDecodeN+1, 0)
	if err := a.UnmarshalBinary(buf); err == nil {
		t.Fatal("accepted implausible per-set size")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	f := mustCountingMult(t, 2000, 4, 10, WithCounterWidth(8))
	for _, e := range genElements(50, 9) {
		f.Insert(e)
	}
	a, _ := f.MarshalBinary()
	b, _ := f.MarshalBinary()
	if string(a) != string(b) {
		t.Fatal("MarshalBinary is not deterministic")
	}
}
