package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"shbf/internal/analytic"
	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/memmodel"
	"shbf/internal/trace"
)

// multQuery is one Figure 11 query with its ground truth (0 = not in
// the multi-set).
type multQuery struct {
	e     []byte
	truth int
}

// multWorkload is the Figure 11 data: n distinct flows with uniform
// multiplicities in [1, c], plus an equal number of negatives, queried
// shuffled.
type multWorkload struct {
	flows   []trace.Flow
	queries []multQuery
}

func buildMultWorkload(cfg Config, trial, c int) multWorkload {
	gen := trace.NewGenerator(cfg.Seed + int64(trial))
	n := cfg.MultisetSize
	flows := gen.UniformMultiset(n, c)

	queries := make([]multQuery, 0, 2*n)
	for i := range flows {
		queries = append(queries, multQuery{e: flows[i].ID[:], truth: flows[i].Count})
	}
	for _, id := range gen.Distinct(n) {
		e := make([]byte, trace.FlowIDLen)
		copy(e, id[:])
		queries = append(queries, multQuery{e: e, truth: 0})
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	return multWorkload{flows: flows, queries: queries}
}

// multCounter abstracts the three multiplicity schemes for measurement.
type multCounter interface {
	Count(e []byte) uint64
}

type shbfxAdapter struct{ f *core.Multiplicity }

func (a shbfxAdapter) Count(e []byte) uint64 { return uint64(a.f.Count(e)) }

// multMeasurement is one (k, trial) evaluation of the three schemes.
type multMeasurement struct {
	crShBF, crSpectral, crCM    float64
	accShBF, accSpectral, accCM float64
	mqShBF, mqSpectral, mqCM    float64
	crTheory                    float64
}

// measureMultPoint runs the paper's Figure 11 protocol for one k:
// c = 57, n distinct elements, and every scheme given the same memory
// budget of 1.5× the optimal BF size (1.5·nk/ln2 bits); Spectral BF and
// the CM sketch spend it on 6-bit counters (Section 6.4.1).
func measureMultPoint(cfg Config, k, trial int) multMeasurement {
	const c = 57
	const counterBits = 6
	w := buildMultWorkload(cfg, trial, c)
	n := len(w.flows)
	budgetBits := int(1.5 * float64(n) * float64(k) / math.Ln2)
	seed := uint64(cfg.Seed) + uint64(trial)

	var accS, accSp, accCM memmodel.Counter

	shbf, err := core.NewMultiplicity(budgetBits, k, c,
		core.WithSeed(seed), core.WithAccessCounter(&accS))
	if err != nil {
		panic(err)
	}
	spectral, err := baseline.NewSpectralBF(budgetBits/counterBits, k, baseline.SpectralMinIncrease,
		baseline.WithSeed(seed), baseline.WithCounterWidth(counterBits), baseline.WithAccessCounter(&accSp))
	if err != nil {
		panic(err)
	}
	rowSize := budgetBits / counterBits / k
	if rowSize < 1 {
		rowSize = 1
	}
	cm, err := baseline.NewCMSketch(k, rowSize,
		baseline.WithSeed(seed), baseline.WithCounterWidth(counterBits), baseline.WithAccessCounter(&accCM))
	if err != nil {
		panic(err)
	}

	for _, fl := range w.flows {
		if err := shbf.AddWithCount(fl.ID[:], fl.Count); err != nil {
			panic(err)
		}
		for i := 0; i < fl.Count; i++ {
			spectral.Insert(fl.ID[:])
			cm.Insert(fl.ID[:])
		}
	}

	type schemeUnderTest struct {
		counter        multCounter
		acc            *memmodel.Counter
		cr, accOut, mq *float64
	}
	var out multMeasurement
	schemes := []schemeUnderTest{
		{shbfxAdapter{shbf}, &accS, &out.crShBF, &out.accShBF, &out.mqShBF},
		{spectral, &accSp, &out.crSpectral, &out.accSpectral, &out.mqSpectral},
		{cm, &accCM, &out.crCM, &out.accCM, &out.mqCM},
	}

	queryBytes := make([][]byte, len(w.queries))
	for i := range w.queries {
		queryBytes[i] = w.queries[i].e
	}

	for _, s := range schemes {
		correct := 0
		s.acc.Reset()
		for _, q := range w.queries {
			if s.counter.Count(q.e) == uint64(q.truth) {
				correct++
			}
		}
		*s.cr = float64(correct) / float64(len(w.queries))
		*s.accOut = float64(s.acc.Reads()) / float64(len(w.queries))
		counter := s.counter
		*s.mq = MeasureMqps(queryBytes, cfg.MinTiming, func(e []byte) { counter.Count(e) })
	}

	// Theory (Equations 27–28): half the workload is negatives with CR
	// (1−f0)^c, half members with the exact per-j form.
	counts := make([]int, n)
	for i, fl := range w.flows {
		counts[i] = fl.Count
	}
	out.crTheory = 0.5*analytic.CRNonMember(budgetBits, n, k, c) +
		0.5*analytic.CRWorkload(budgetBits, n, k, c, counts)
	return out
}

// RunFig11 reproduces Figure 11: ShBF_X vs Spectral BF vs CM sketch on
// (a) correctness rate with the Equation 27/28 theory line (k = 8…16),
// (b) memory accesses per query (k = 3…18), and (c) query throughput
// (k = 3…18). All schemes receive the same memory budget.
func RunFig11(cfg Config) []*Figure {
	figA := &Figure{ID: "11a", Title: "correctness rate (c=57, equal memory)", XLabel: "k", YLabel: "correctness rate"}
	figB := &Figure{ID: "11b", Title: "# memory accesses per query", XLabel: "k", YLabel: "# memory accesses"}
	figC := &Figure{ID: "11c", Title: "query speed", XLabel: "k", YLabel: "Mqps"}

	measure := func(k int) multMeasurement {
		ms := make([]multMeasurement, cfg.Trials)
		for trial := range ms {
			ms[trial] = measureMultPoint(cfg, k, trial)
		}
		var agg multMeasurement
		for _, m := range ms {
			agg.crShBF += m.crShBF
			agg.crSpectral += m.crSpectral
			agg.crCM += m.crCM
			agg.accShBF += m.accShBF
			agg.accSpectral += m.accSpectral
			agg.accCM += m.accCM
			agg.mqShBF += m.mqShBF
			agg.mqSpectral += m.mqSpectral
			agg.mqCM += m.mqCM
			agg.crTheory += m.crTheory
		}
		tf := float64(len(ms))
		agg.crShBF /= tf
		agg.crSpectral /= tf
		agg.crCM /= tf
		agg.accShBF /= tf
		agg.accSpectral /= tf
		agg.accCM /= tf
		agg.mqShBF /= tf
		agg.mqSpectral /= tf
		agg.mqCM /= tf
		agg.crTheory /= tf
		return agg
	}

	for k := 3; k <= 18; k++ {
		m := measure(k)
		x := float64(k)
		if k >= 8 && k <= 16 {
			figA.Add("ShBF_X theory", x, m.crTheory)
			figA.Add("ShBF_X sim", x, m.crShBF)
			figA.Add("Spectral BF", x, m.crSpectral)
			figA.Add("CM sketch", x, m.crCM)
		}
		figB.Add("Spectral BF", x, m.accSpectral)
		figB.Add("ShBF_X", x, m.accShBF)
		figB.Add("CM sketch", x, m.accCM)
		figC.Add("Spectral BF", x, m.mqSpectral)
		figC.Add("ShBF_X", x, m.mqShBF)
		figC.Add("CM sketch", x, m.mqCM)
	}
	figA.Notes = append(figA.Notes,
		fmt.Sprintf("n=%d distinct flows, uniform counts in [1,57], memory = 1.5·nk/ln2 bits for all schemes, 6-bit counters for Spectral/CM", cfg.MultisetSize))
	return []*Figure{figA, figB, figC}
}
