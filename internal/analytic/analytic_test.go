package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestP0(t *testing.T) {
	// n=0 ⇒ all bits zero.
	if got := P0(1000, 0, 8); got != 1 {
		t.Fatalf("P0(n=0) = %v, want 1", got)
	}
	// Known value: e^{−1}.
	if got := P0(8000, 1000, 8); !approxEqual(got, math.Exp(-1), 1e-12) {
		t.Fatalf("P0 = %v, want e^-1", got)
	}
}

func TestFPRBFKnownValues(t *testing.T) {
	// At k = (m/n)ln2, f = 0.5^k.
	m, n := 100000, 10000
	k := OptimalKBF(m, n)
	if got, want := FPRBF(m, n, k), math.Pow(0.5, k); !approxEqual(got, want, 1e-9) {
		t.Fatalf("FPRBF at optimum = %v, want %v", got, want)
	}
}

func TestFPRShBFMLimits(t *testing.T) {
	// w̄ → ∞ reduces Equation 1 to Equation 8.
	m, n, k := 100000, 10000, 8.0
	bf := FPRBF(m, n, k)
	sh := FPRShBFM(m, n, k, 1<<30)
	if !approxEqual(bf, sh, 1e-6) {
		t.Fatalf("w̄→∞: ShBF %v vs BF %v", sh, bf)
	}
	// Finite w̄ is always ≥ the BF rate (the correlation penalty).
	for _, wbar := range []int{8, 20, 57} {
		if FPRShBFM(m, n, k, wbar) < bf {
			t.Fatalf("w̄=%d: ShBF FPR below BF FPR", wbar)
		}
	}
	// Monotone non-increasing in w̄.
	prev := FPRShBFM(m, n, k, 4)
	for wbar := 5; wbar < 200; wbar++ {
		cur := FPRShBFM(m, n, k, wbar)
		if cur > prev+1e-15 {
			t.Fatalf("FPR increased from w̄=%d to %d", wbar-1, wbar)
		}
		prev = cur
	}
}

func TestFigure3Shape(t *testing.T) {
	// Figure 3's observation: by w̄ = 20 the ShBF_M FPR curve has
	// flattened onto the BF line (m=100000, n=10000, k ∈ {4,8,12}).
	// Quantitatively the residual gap is ≤ ~15% at k=4 and shrinks both
	// in w̄ and in k; at the paper's operating point w̄ = 57 it is ≤ 6%.
	for _, k := range []float64{4, 8, 12} {
		bf := FPRBF(100000, 10000, k)
		at20 := FPRShBFM(100000, 10000, k, 20)
		at57 := FPRShBFM(100000, 10000, k, 57)
		if gap := (at20 - bf) / bf; gap > 0.16 {
			t.Fatalf("k=%v: w̄=20 gap %.3f above BF, want ≤ 0.16", k, gap)
		}
		if gap := (at57 - bf) / bf; gap > 0.06 {
			t.Fatalf("k=%v: w̄=57 gap %.3f above BF, want ≤ 0.06", k, gap)
		}
		if at57 > at20 {
			t.Fatalf("k=%v: FPR did not shrink from w̄=20 to 57", k)
		}
	}
}

func TestOptimalKShBFMMatchesPaper(t *testing.T) {
	// Section 3.4.2: for w̄ = 57, k_opt ≈ 0.7009·m/n and
	// f_min ≈ 0.6204^{m/n}.
	m, n := 100000, 10000
	kopt := OptimalKShBFM(m, n, 57)
	wantK := 0.7009 * float64(m) / float64(n)
	if math.Abs(kopt-wantK) > 0.02*wantK {
		t.Fatalf("k_opt = %.4f, paper says %.4f", kopt, wantK)
	}
	fmin := MinFPRShBFM(m, n, 57)
	wantF := math.Pow(0.6204, float64(m)/float64(n))
	if !approxEqual(fmin, wantF, 0.02) {
		t.Fatalf("f_min = %.6g, paper says %.6g", fmin, wantF)
	}
}

func TestMinFPRBFMatchesPaper(t *testing.T) {
	// Equation 9: f_min ≈ 0.6185^{m/n}.
	m, n := 100000, 10000
	got := MinFPRBF(m, n)
	want := math.Pow(0.6185, float64(m)/float64(n))
	if !approxEqual(got, want, 0.01) {
		t.Fatalf("MinFPRBF = %.6g, want %.6g", got, want)
	}
}

func TestShBFMNearBFAtOptimum(t *testing.T) {
	// The paper's headline: minimum FPRs are practically equal
	// (0.6204 vs 0.6185 per unit m/n — within 2.5% at m/n = 10... the
	// gap compounds, so compare the per-unit bases).
	m, n := 100000, 10000
	ratio := math.Pow(MinFPRShBFM(m, n, 57)/MinFPRBF(m, n), float64(n)/float64(m))
	if ratio < 1.0 || ratio > 1.01 {
		t.Fatalf("per-unit base ratio %.5f, want within (1, 1.01]", ratio)
	}
}

func TestOptimalKUnimodality(t *testing.T) {
	// Property: FPRShBFM is decreasing before kopt and increasing after
	// (checked on a coarse grid), so golden-section is applicable.
	m, n := 50000, 5000
	kopt := OptimalKShBFM(m, n, 57)
	for k := 1.0; k < kopt-0.5; k += 0.5 {
		if FPRShBFM(m, n, k, 57) < FPRShBFM(m, n, k+0.5, 57) {
			t.Fatalf("not decreasing at k=%v < kopt=%v", k, kopt)
		}
	}
	for k := kopt + 0.5; k < kopt+5; k += 0.5 {
		if FPRShBFM(m, n, k, 57) > FPRShBFM(m, n, k+0.5, 57) {
			t.Fatalf("not increasing at k=%v > kopt=%v", k, kopt)
		}
	}
}

func TestFPRTShiftReducesToEq1(t *testing.T) {
	// t = 1 must equal Equation 1 exactly.
	for _, k := range []float64{4, 8, 12} {
		for _, wbar := range []int{20, 57} {
			a := FPRTShift(100000, 10000, k, 1, wbar)
			b := FPRShBFM(100000, 10000, k, wbar)
			if !approxEqual(a, b, 1e-9) {
				t.Fatalf("k=%v w̄=%d: t-shift %v vs Eq1 %v", k, wbar, a, b)
			}
		}
	}
}

func TestFPRTShiftLimitsToBF(t *testing.T) {
	// w̄ → ∞: B → 1−p′·(1) → wait, (w̄−1−t)/(w̄−1) → 1, so B → 1−p′ = A,
	// f_group → A^{t+1}·…; overall f → (1−p′)^k — the BF formula.
	m, n, k := 100000, 10000, 12.0
	bf := FPRBF(m, n, k)
	for _, tt := range []int{1, 2, 3} {
		got := FPRTShift(m, n, k, tt, 1<<26)
		if !approxEqual(got, bf, 1e-4) {
			t.Fatalf("t=%d w̄→∞: %v vs BF %v", tt, got, bf)
		}
	}
}

func TestFPRTShiftMonotoneInT(t *testing.T) {
	// More shifting (fewer independent hashes) cannot decrease FPR.
	m, n, k := 100000, 10000, 12.0
	f1 := FPRTShift(m, n, k, 1, 57)
	f2 := FPRTShift(m, n, k, 2, 57)
	f3 := FPRTShift(m, n, k, 3, 57)
	if f2 < f1-1e-15 || f3 < f2-1e-15 {
		t.Fatalf("FPR not monotone in t: %v %v %v", f1, f2, f3)
	}
}

func TestFPRTShiftEmptyFilter(t *testing.T) {
	if got := FPRTShift(1000, 0, 4, 2, 57); got != 0 {
		t.Fatalf("empty filter FPR = %v, want 0", got)
	}
}

func TestAssocOutcomeProbsSumToOne(t *testing.T) {
	// P1 + 2·P4 + P7 = 1 (the paper's validation of Equation 25).
	f := func(kRaw uint8) bool {
		k := int(kRaw)%16 + 1
		q := PhantomProbAtOptimal(k)
		p1, p4, p7 := AssocOutcomeProbs(q)
		return math.Abs(p1+2*p4+p7-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssocPaperExample(t *testing.T) {
	// Section 4.4 example at k = 10: P1 ≈ 0.998, P4 ≈ 9.756e-4,
	// P7 ≈ 9.54e-7.
	q := PhantomProbAtOptimal(10)
	p1, p4, p7 := AssocOutcomeProbs(q)
	if !approxEqual(p1, 0.998, 0.001) {
		t.Errorf("P1 = %v, want ≈0.998", p1)
	}
	if !approxEqual(p4, 9.756e-4, 0.01) {
		t.Errorf("P4 = %v, want ≈9.756e-4", p4)
	}
	if !approxEqual(p7, 9.54e-7, 0.01) {
		t.Errorf("P7 = %v, want ≈9.54e-7", p7)
	}
}

func TestClearProbs(t *testing.T) {
	// Figure 10(a): at k=8, ShBF_A ≈ 99%, iBF ≈ 66%.
	if got := ClearProbShBFA(8); !approxEqual(got, 0.992, 0.01) {
		t.Errorf("ClearProbShBFA(8) = %v", got)
	}
	if got := ClearProbIBF(8); !approxEqual(got, 0.664, 0.01) {
		t.Errorf("ClearProbIBF(8) = %v", got)
	}
	// ShBF_A always beats iBF — the 1.47× headline.
	for k := 2; k <= 18; k++ {
		if ClearProbShBFA(k) <= ClearProbIBF(k) {
			t.Fatalf("k=%d: ShBF_A clear prob not above iBF", k)
		}
	}
	ratio := ClearProbShBFA(4) / ClearProbIBF(4)
	if ratio < 1.4 || ratio > 1.6 {
		t.Errorf("small-k clear-prob ratio %v, paper cites ≈1.47", ratio)
	}
}

func TestPhantomProbConsistency(t *testing.T) {
	// At m = n′k/ln2, PhantomProb ≈ 0.5^k.
	k := 10
	n := 10000
	m := int(float64(n) * float64(k) / math.Ln2)
	got := PhantomProb(m, n, k)
	want := PhantomProbAtOptimal(k)
	if !approxEqual(got, want, 0.05) {
		t.Fatalf("PhantomProb = %v, want ≈ %v", got, want)
	}
}

func TestComputeTable2(t *testing.T) {
	tab := ComputeTable2(1000, 1000, 250, 8)
	if tab.HashOpsIBF != 16 || tab.HashOpsShBFA != 10 {
		t.Errorf("hash ops %d/%d", tab.HashOpsIBF, tab.HashOpsShBFA)
	}
	if tab.AccessesIBF != 16 || tab.AccessesShBFA != 8 {
		t.Errorf("accesses %d/%d", tab.AccessesIBF, tab.AccessesShBFA)
	}
	if tab.MemoryBitsShBFA >= tab.MemoryBitsIBF {
		t.Error("ShBF_A must need less memory when sets overlap")
	}
	// Overlap n3 = 250 of 2000: memory ratio 1750/2000 = 7/8 — the
	// paper's "iBF uses 1/7 times more memory" setup inverted.
	if !approxEqual(tab.MemoryBitsIBF/tab.MemoryBitsShBFA, 8.0/7, 1e-9) {
		t.Errorf("memory ratio %v, want 8/7", tab.MemoryBitsIBF/tab.MemoryBitsShBFA)
	}
	if !tab.FalsePositivesIBF || tab.FalsePositivesShBFA {
		t.Error("FP flags wrong")
	}
}

func TestMultiplicityFormulas(t *testing.T) {
	m, n, k, c := 100000, 5000, 8, 57
	f0 := MultF0(m, n, k)
	if f0 <= 0 || f0 >= 1 {
		t.Fatalf("f0 = %v out of (0,1)", f0)
	}
	if got, want := CRNonMember(m, n, k, c), math.Pow(1-f0, float64(c)); !approxEqual(got, want, 1e-12) {
		t.Errorf("CRNonMember = %v, want %v", got, want)
	}
	// CRMember decreasing in j; CRMemberExact increasing in j.
	for j := 2; j <= c; j++ {
		if CRMember(m, n, k, j) > CRMember(m, n, k, j-1) {
			t.Fatal("CRMember not non-increasing in j")
		}
		if CRMemberExact(m, n, k, c, j) < CRMemberExact(m, n, k, c, j-1) {
			t.Fatal("CRMemberExact not non-decreasing in j")
		}
	}
	// j = 1 member: paper form gives exactly 1.
	if got := CRMember(m, n, k, 1); got != 1 {
		t.Errorf("CRMember(j=1) = %v, want 1", got)
	}
	// j = c member: exact form gives exactly 1 (no positions above c).
	if got := CRMemberExact(m, n, k, c, c); got != 1 {
		t.Errorf("CRMemberExact(j=c) = %v, want 1", got)
	}
}

func TestCRWorkloadAveragesAgree(t *testing.T) {
	// For uniform multiplicities over [1,c], the mean of (1−f0)^{j−1}
	// equals the mean of (1−f0)^{c−j} — the identity that makes the
	// paper's Figure 11(a) fit either form.
	m, n, k, c := 100000, 5000, 8, 57
	var paperMean, exactMean float64
	counts := make([]int, 0, c)
	for j := 1; j <= c; j++ {
		paperMean += CRMember(m, n, k, j)
		counts = append(counts, j)
	}
	paperMean /= float64(c)
	exactMean = CRWorkload(m, n, k, c, counts)
	if !approxEqual(paperMean, exactMean, 1e-12) {
		t.Fatalf("uniform means differ: paper %v vs exact %v", paperMean, exactMean)
	}
	if got := CRWorkload(m, n, k, c, nil); got != 1 {
		t.Fatalf("empty workload CR = %v, want 1", got)
	}
}

func TestExpectedAccesses(t *testing.T) {
	m, n, k := 33024, 1000, 8.0

	// Members: BF costs k, ShBF_M costs k/2 exactly.
	if got := ExpectedAccessesBF(m, n, k, 1); got != k {
		t.Errorf("BF member accesses = %v, want %v", got, k)
	}
	if got := ExpectedAccessesShBFM(m, n, k, 57, 1); got != k/2 {
		t.Errorf("ShBF member accesses = %v, want %v", got, k/2)
	}

	// Mixed 50/50 workload: ShBF_M ≈ half of BF (Figure 8's claim).
	bf := ExpectedAccessesBF(m, n, k, 0.5)
	sh := ExpectedAccessesShBFM(m, n, k, 57, 0.5)
	if ratio := sh / bf; ratio < 0.4 || ratio > 0.65 {
		t.Errorf("mixed access ratio %v, want ≈0.5", ratio)
	}

	// Non-member expected probes are in [1, k].
	neg := ExpectedAccessesBF(m, n, k, 0)
	if neg < 1 || neg > k {
		t.Errorf("BF negative accesses %v out of [1,k]", neg)
	}
}

func TestExpectedAccessesIBFvsShBFA(t *testing.T) {
	// Figure 10(b): ShBF_A ≈ 0.66× iBF accesses.
	k := 8
	n1, n2 := 100000, 100000
	m1 := int(float64(n1) * float64(k) / math.Ln2)
	ibf := ExpectedAccessesIBF(m1, n1, m1, n2, k)
	shbf := ExpectedAccessesShBFA(k)
	if ratio := shbf / ibf; ratio < 0.5 || ratio > 0.8 {
		t.Fatalf("access ratio %v, paper cites ≈0.66", ratio)
	}
}

func TestExpectedAccessesShBFX(t *testing.T) {
	// Members cost k·⌈c/w⌉; with c=57, w=64 that is k.
	got := ExpectedAccessesShBFX(100000, 5000, 8, 57, 1, 64)
	if got != 8 {
		t.Fatalf("member ShBF_X accesses = %v, want 8", got)
	}
	// Counter schemes cost k for members.
	if got := ExpectedAccessesCounterScheme(100000, 5000, 8, 1); got != 8 {
		t.Fatalf("counter-scheme member accesses = %v, want 8", got)
	}
}

func TestGoldenMinFindsParabolaMinimum(t *testing.T) {
	got := goldenMin(func(x float64) float64 { return (x - 3.7) * (x - 3.7) }, 0, 10, 1e-10)
	if math.Abs(got-3.7) > 1e-6 {
		t.Fatalf("goldenMin = %v, want 3.7", got)
	}
}
