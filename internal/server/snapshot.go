package server

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"shbf"
	"shbf/internal/sharded"
)

// The daemon snapshot is a thin container over the root package's
// self-describing envelopes. Version 3 (current) is multi-tenant:
// 4-byte magic "ShBD", a version byte, a uvarint namespace count, then
// per namespace (sorted by name) a uvarint-length-prefixed name
// followed by the tenant's three filters as concatenated shbf.Dump
// envelopes. Each envelope carries its own kind tag and length, so the
// restore loop is fully generic — shbf.Decode reconstructs each filter
// and a type switch slots it into place, in any order. Geometry and
// seeds travel inside the envelopes, so a restored daemon answers
// identically even if its flags changed — the snapshot wins.
//
// Older containers still restore, into the default namespace:
// version 2 (pre-namespace) is three bare concatenated envelopes;
// version 1 (pre-envelope) is three bare length-prefixed MarshalBinary
// blobs in fixed order.

const (
	daemonSnapVersion   = 3
	daemonSnapVersionV2 = 2
	daemonSnapVersionV1 = 1
	daemonSnapMagic     = "ShBD"
)

// SaveSnapshot atomically writes every namespace's filter state to
// path (via a temp file and rename in the same directory) and returns
// the byte count written. Each shard is serialized under its read
// lock; queries keep flowing while the snapshot is cut, and window
// shards may be captured at adjacent epochs if a rotation interleaves
// (use SaveSnapshotOpts for a single-epoch cut).
func (s *Server) SaveSnapshot(path string) (int, error) {
	return s.SaveSnapshotOpts(path, false)
}

// SaveSnapshotOpts is SaveSnapshot with options: rotationConsistent
// excludes rotations for the duration of the cut, so every shard of
// every window ring is captured at one epoch (rotations queue behind
// the serialization; queries and writes are never blocked).
func (s *Server) SaveSnapshotOpts(path string, rotationConsistent bool) (int, error) {
	if rotationConsistent {
		s.rotMu.Lock()
		defer s.rotMu.Unlock()
	}
	list := s.snapshotList()
	buf := append([]byte(daemonSnapMagic), daemonSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(list)))
	for _, ns := range list {
		buf = binary.AppendUvarint(buf, uint64(len(ns.name)))
		buf = append(buf, ns.name...)
		for _, f := range ns.filters() {
			var err error
			if buf, err = shbf.AppendDump(buf, f.filter); err != nil {
				return 0, fmt.Errorf("server: snapshot: namespace %q: %w", ns.name, err)
			}
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".shbfd-snapshot-*")
	if err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	s.lastSnapshotUnix.Store(time.Now().Unix())
	return len(buf), nil
}

// LoadSnapshot replaces the namespace set with the snapshot at path.
// It must not run concurrently with queries; the daemon only calls it
// before serving.
func (s *Server) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("server: loading snapshot: %w", err)
	}
	if len(data) < 5 || string(data[:4]) != daemonSnapMagic {
		return fmt.Errorf("server: %s is not a shbfd snapshot", path)
	}
	switch data[4] {
	case daemonSnapVersion:
		return s.restoreV3(data[5:])
	case daemonSnapVersionV2:
		// Pre-namespace: three bare envelopes → the default namespace.
		ns, err := restoreTrio(DefaultNamespace, data[5:])
		if err != nil {
			return err
		}
		s.installNamespaces(map[string]*namespace{DefaultNamespace: ns})
		return nil
	case daemonSnapVersionV1:
		return s.restoreV1(data[5:])
	default:
		return fmt.Errorf("server: unsupported snapshot version %d", data[4])
	}
}

// restoreV3 reads the multi-tenant container: per namespace, a name
// and exactly three envelopes.
func (s *Server) restoreV3(buf []byte) error {
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return fmt.Errorf("server: snapshot namespace count truncated")
	}
	if count == 0 || count > maxNamespaces {
		return fmt.Errorf("server: snapshot holds %d namespaces, want 1–%d", count, maxNamespaces)
	}
	buf = buf[sz:]
	set := make(map[string]*namespace, count)
	for i := uint64(0); i < count; i++ {
		n, nsz := binary.Uvarint(buf)
		if nsz <= 0 || n > uint64(len(buf)-nsz) {
			return fmt.Errorf("server: snapshot namespace %d name truncated", i)
		}
		name := string(buf[nsz : nsz+int(n)])
		buf = buf[nsz+int(n):]
		if err := validNamespaceName(name); err != nil {
			return fmt.Errorf("server: snapshot namespace %d: %w", i, err)
		}
		if set[name] != nil {
			return fmt.Errorf("server: snapshot holds namespace %q twice", name)
		}
		ns, rest, err := restoreTrioPrefix(name, buf)
		if err != nil {
			return err
		}
		set[name] = ns
		buf = rest
	}
	if len(buf) != 0 {
		return fmt.Errorf("server: %d trailing snapshot bytes", len(buf))
	}
	if set[DefaultNamespace] == nil {
		return fmt.Errorf("server: snapshot holds no %q namespace", DefaultNamespace)
	}
	s.installNamespaces(set)
	return nil
}

// restoreTrio decodes exactly three envelopes spanning all of buf into
// one namespace.
func restoreTrio(name string, buf []byte) (*namespace, error) {
	ns, rest, err := restoreTrioPrefix(name, buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: namespace %q: %d trailing snapshot bytes", name, len(rest))
	}
	return ns, nil
}

// restoreTrioPrefix decodes three envelopes from the front of buf,
// slotting each decoded filter by its concrete type — windowed or
// classic; the snapshot decides, not the flags. Exactly one filter per
// slot must arrive — a duplicate would silently leave another slot
// empty.
func restoreTrioPrefix(name string, buf []byte) (*namespace, []byte, error) {
	ns := &namespace{name: name}
	for i := 0; i < 3; i++ {
		var (
			f   shbf.Filter
			err error
		)
		f, buf, err = shbf.Decode(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("server: namespace %q envelope %d: %w", name, i, err)
		}
		switch f := f.(type) {
		case *sharded.Filter:
			if ns.mem != nil {
				return nil, nil, fmt.Errorf("server: namespace %q holds two membership filters", name)
			}
			ns.mem = f
		case *sharded.Window:
			if ns.mem != nil {
				return nil, nil, fmt.Errorf("server: namespace %q holds two membership filters", name)
			}
			ns.mem = f
		case *sharded.Association:
			if ns.assoc != nil {
				return nil, nil, fmt.Errorf("server: namespace %q holds two association filters", name)
			}
			ns.assoc = f
		case *sharded.WindowAssociation:
			if ns.assoc != nil {
				return nil, nil, fmt.Errorf("server: namespace %q holds two association filters", name)
			}
			ns.assoc = f
		case *sharded.Multiplicity:
			if ns.mult != nil {
				return nil, nil, fmt.Errorf("server: namespace %q holds two multiplicity filters", name)
			}
			ns.mult = f
		case *sharded.WindowMultiplicity:
			if ns.mult != nil {
				return nil, nil, fmt.Errorf("server: namespace %q holds two multiplicity filters", name)
			}
			ns.mult = f
		default:
			return nil, nil, fmt.Errorf("server: namespace %q holds unexpected %s filter", name, f.Kind())
		}
	}
	if ns.mem == nil || ns.assoc == nil || ns.mult == nil {
		return nil, nil, fmt.Errorf("server: namespace %q is missing a query kind", name)
	}
	return ns, buf, nil
}

// restoreV1 reads the pre-envelope format: three bare length-prefixed
// blobs in membership, association, multiplicity order. V1 snapshots
// predate the window kinds and namespaces, so they restore as the
// classic filters of the default namespace.
func (s *Server) restoreV1(buf []byte) error {
	mem, assoc, mult := new(sharded.Filter), new(sharded.Association), new(sharded.Multiplicity)
	for i, u := range []interface{ UnmarshalBinary([]byte) error }{mem, assoc, mult} {
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf)-sz) < n {
			return fmt.Errorf("server: snapshot section %d truncated", i)
		}
		buf = buf[sz:]
		if err := u.UnmarshalBinary(buf[:n]); err != nil {
			return fmt.Errorf("server: snapshot section %d: %w", i, err)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("server: %d trailing snapshot bytes", len(buf))
	}
	s.installNamespaces(map[string]*namespace{DefaultNamespace: {
		name: DefaultNamespace, mem: mem, assoc: assoc, mult: mult,
	}})
	return nil
}

// installNamespaces replaces the registry with a restored set and
// re-meters the memory ceiling from it. Restored tenants always
// install — a snapshot that outgrew a newly-lowered ceiling must not
// brick the restart — but the overage is logged by the caller via the
// returned accounting (creations from here on are shed until tenants
// are deleted).
func (s *Server) installNamespaces(set map[string]*namespace) {
	s.mu.Lock()
	s.namespaces = set
	s.usedBits = 0
	for _, ns := range set {
		s.usedBits += ns.totalBits()
	}
	s.mu.Unlock()
}
