package core

import (
	"encoding/binary"
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/counters"
	"shbf/internal/hashtable"
)

// This file implements binary serialization for every filter type, so
// built filters can be shipped to the machines that query them (the
// paper's deployment stores the query-side array B on-chip at the
// forwarding element while construction happens elsewhere).
//
// Format: 4-byte magic "ShBF", a format version byte, a kind byte, the
// construction parameters as uvarints, then the arrays. Hash families
// are reconstructed from the stored seed, so a decoded filter is
// bit-for-bit the original. All types implement
// encoding.BinaryMarshaler and encoding.BinaryUnmarshaler.

const marshalVersion = 1

// Plausibility caps for decoded geometry: a corrupt or hostile header
// must not drive a huge allocation before the payload is even examined.
const (
	maxDecodeBits = 1 << 40 // 128 GiB of filter bits
	maxDecodeK    = 1 << 16
	maxDecodeN    = 1 << 48
)

// checkGeometry validates decoded size parameters against the caps.
func checkGeometry(m, k, n uint64) error {
	if m == 0 || m > maxDecodeBits {
		return fmt.Errorf("core: implausible filter size m = %d", m)
	}
	if k == 0 || k > maxDecodeK {
		return fmt.Errorf("core: implausible hash count k = %d", k)
	}
	if n > maxDecodeN {
		return fmt.Errorf("core: implausible element count n = %d", n)
	}
	return nil
}

// Filter kind tags in the serialized header.
const (
	kindMembership byte = iota + 1
	kindCountingMembership
	kindTShift
	kindAssociation
	kindCountingAssociation
	kindMultiplicity
	kindCountingMultiplicity
	kindSCM
	kindMultiAssociation
)

// header appends the common preamble.
func header(buf []byte, kind byte) []byte {
	buf = append(buf, 'S', 'h', 'B', 'F', marshalVersion, kind)
	return buf
}

// checkHeader consumes and validates the preamble.
func checkHeader(buf []byte, kind byte) ([]byte, error) {
	if len(buf) < 6 {
		return nil, fmt.Errorf("core: truncated header")
	}
	if string(buf[:4]) != "ShBF" {
		return nil, fmt.Errorf("core: bad magic %q", buf[:4])
	}
	if buf[4] != marshalVersion {
		return nil, fmt.Errorf("core: unsupported format version %d", buf[4])
	}
	if buf[5] != kind {
		return nil, fmt.Errorf("core: wrong filter kind %d (want %d)", buf[5], kind)
	}
	return buf[6:], nil
}

// uvarints appends values; readUvarints consumes them.
func uvarints(buf []byte, vals ...uint64) []byte {
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

func readUvarints(buf []byte, dst ...*uint64) ([]byte, error) {
	for i, d := range dst {
		v, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("core: truncated parameter %d", i)
		}
		*d = v
		buf = buf[sz:]
	}
	return buf, nil
}

// --- Membership ---------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Membership) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindMembership)
	buf = uvarints(buf, uint64(f.m), uint64(f.k), uint64(f.wbar), f.seed, uint64(f.n))
	return f.bits.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// state with the decoded filter.
func (f *Membership) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindMembership)
	if err != nil {
		return err
	}
	var m, k, wbar, seed, n uint64
	if buf, err = readUvarints(buf, &m, &k, &wbar, &seed, &n); err != nil {
		return err
	}
	if err := checkGeometry(m, k, n); err != nil {
		return err
	}
	fresh, err := NewMembership(int(m), int(k), WithMaxOffset(int(wbar)), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding membership filter: %w", err)
	}
	bits, rest, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != fresh.bits.Len() {
		return fmt.Errorf("core: bit array length %d does not match geometry %d", bits.Len(), fresh.bits.Len())
	}
	fresh.bits = bits
	fresh.n = int(n)
	*f = *fresh
	return nil
}

// --- CountingMembership ---------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CountingMembership) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindCountingMembership)
	buf = uvarints(buf, uint64(c.filter.m), uint64(c.filter.k), uint64(c.filter.wbar),
		c.filter.seed, uint64(c.filter.n))
	buf = c.filter.bits.AppendBinary(buf)
	return c.counts.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *CountingMembership) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindCountingMembership)
	if err != nil {
		return err
	}
	var m, k, wbar, seed, n uint64
	if buf, err = readUvarints(buf, &m, &k, &wbar, &seed, &n); err != nil {
		return err
	}
	if err := checkGeometry(m, k, n); err != nil {
		return err
	}
	inner, err := NewMembership(int(m), int(k), WithMaxOffset(int(wbar)), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding counting membership: %w", err)
	}
	bits, buf, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	counts, rest, err := counters.DecodeArray(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != inner.bits.Len() || counts.Len() != inner.bits.Len() {
		return fmt.Errorf("core: array lengths do not match geometry")
	}
	inner.bits = bits
	inner.n = int(n)
	*c = CountingMembership{filter: inner, counts: counts}
	return nil
}

// --- TShift ---------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *TShift) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindTShift)
	buf = uvarints(buf, uint64(f.m), uint64(f.k), uint64(f.t), uint64(f.wbar), f.seed, uint64(f.n))
	return f.bits.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *TShift) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindTShift)
	if err != nil {
		return err
	}
	var m, k, t, wbar, seed, n uint64
	if buf, err = readUvarints(buf, &m, &k, &t, &wbar, &seed, &n); err != nil {
		return err
	}
	if err := checkGeometry(m, k, n); err != nil {
		return err
	}
	fresh, err := NewTShift(int(m), int(k), int(t), WithMaxOffset(int(wbar)), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding t-shift filter: %w", err)
	}
	bits, rest, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != fresh.bits.Len() {
		return fmt.Errorf("core: bit array length mismatch")
	}
	fresh.bits = bits
	fresh.n = int(n)
	*f = *fresh
	return nil
}

// --- Association ------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *Association) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindAssociation)
	buf = uvarints(buf, uint64(a.m), uint64(a.k), uint64(a.wbar), a.seed,
		uint64(a.n1), uint64(a.n2), uint64(a.nBoth))
	return a.bits.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *Association) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindAssociation)
	if err != nil {
		return err
	}
	var m, k, wbar, seed, n1, n2, nBoth uint64
	if buf, err = readUvarints(buf, &m, &k, &wbar, &seed, &n1, &n2, &nBoth); err != nil {
		return err
	}
	if err := checkGeometry(m, k, n1+n2); err != nil {
		return err
	}
	fresh, err := BuildAssociation(nil, nil, int(m), int(k), WithMaxOffset(int(wbar)), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding association filter: %w", err)
	}
	bits, rest, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != fresh.bits.Len() {
		return fmt.Errorf("core: bit array length mismatch")
	}
	fresh.bits = bits
	fresh.n1, fresh.n2, fresh.nBoth = int(n1), int(n2), int(nBoth)
	*a = *fresh
	return nil
}

// --- CountingAssociation ----------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *CountingAssociation) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindCountingAssociation)
	buf = uvarints(buf, uint64(a.m), uint64(a.k), uint64(a.wbar), a.seed)
	buf = a.bits.AppendBinary(buf)
	buf = a.counts.AppendBinary(buf)
	buf = a.t1.AppendBinary(buf)
	return a.t2.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *CountingAssociation) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindCountingAssociation)
	if err != nil {
		return err
	}
	var m, k, wbar, seed uint64
	if buf, err = readUvarints(buf, &m, &k, &wbar, &seed); err != nil {
		return err
	}
	if err := checkGeometry(m, k, 0); err != nil {
		return err
	}
	fresh, err := NewCountingAssociation(int(m), int(k), WithMaxOffset(int(wbar)), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding counting association: %w", err)
	}
	bits, buf, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	counts, buf, err := counters.DecodeArray(buf)
	if err != nil {
		return err
	}
	t1 := hashtable.New(seed + 1)
	if buf, err = t1.DecodeInto(buf); err != nil {
		return err
	}
	t2 := hashtable.New(seed + 2)
	rest, err := t2.DecodeInto(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != fresh.bits.Len() || counts.Len() != fresh.counts.Len() {
		return fmt.Errorf("core: array lengths do not match geometry")
	}
	fresh.bits, fresh.counts, fresh.t1, fresh.t2 = bits, counts, t1, t2
	*a = *fresh
	return nil
}

// --- Multiplicity -------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Multiplicity) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindMultiplicity)
	buf = uvarints(buf, uint64(f.m), uint64(f.k), uint64(f.c), f.seed, uint64(f.n))
	return f.bits.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *Multiplicity) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindMultiplicity)
	if err != nil {
		return err
	}
	var m, k, c, seed, n uint64
	if buf, err = readUvarints(buf, &m, &k, &c, &seed, &n); err != nil {
		return err
	}
	if err := checkGeometry(m, k, n); err != nil {
		return err
	}
	fresh, err := NewMultiplicity(int(m), int(k), int(c), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding multiplicity filter: %w", err)
	}
	bits, rest, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != fresh.bits.Len() {
		return fmt.Errorf("core: bit array length mismatch")
	}
	fresh.bits = bits
	fresh.n = int(n)
	*f = *fresh
	return nil
}

// --- CountingMultiplicity -------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler. The backing hash
// table (safe mode) is included, so the decoded filter supports updates
// with the same no-false-negative guarantee.
func (f *CountingMultiplicity) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindCountingMultiplicity)
	unsafeFlag := uint64(0)
	if f.table == nil {
		unsafeFlag = 1
	}
	buf = uvarints(buf, uint64(f.m), uint64(f.k), uint64(f.c), f.seed, unsafeFlag)
	buf = f.bits.AppendBinary(buf)
	buf = f.counts.AppendBinary(buf)
	if f.table != nil {
		buf = f.table.AppendBinary(buf)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *CountingMultiplicity) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindCountingMultiplicity)
	if err != nil {
		return err
	}
	var m, k, c, seed, unsafeFlag uint64
	if buf, err = readUvarints(buf, &m, &k, &c, &seed, &unsafeFlag); err != nil {
		return err
	}
	if err := checkGeometry(m, k, 0); err != nil {
		return err
	}
	opts := []Option{WithSeed(seed)}
	if unsafeFlag != 0 {
		opts = append(opts, WithUnsafeUpdates())
	}
	fresh, err := NewCountingMultiplicity(int(m), int(k), int(c), opts...)
	if err != nil {
		return fmt.Errorf("core: decoding counting multiplicity: %w", err)
	}
	bits, buf, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	counts, buf, err := counters.DecodeArray(buf)
	if err != nil {
		return err
	}
	if unsafeFlag == 0 {
		table := hashtable.New(seed + 3)
		if buf, err = table.DecodeInto(buf); err != nil {
			return err
		}
		fresh.table = table
	}
	if len(buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(buf))
	}
	if bits.Len() != fresh.bits.Len() || counts.Len() != fresh.counts.Len() {
		return fmt.Errorf("core: array lengths do not match geometry")
	}
	fresh.bits, fresh.counts = bits, counts
	*f = *fresh
	return nil
}

// --- MultiAssociation -----------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *MultiAssociation) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindMultiAssociation)
	buf = uvarints(buf, uint64(a.m), uint64(a.k), uint64(a.g), uint64(a.wbar), a.seed)
	for _, sz := range a.sizes {
		buf = uvarints(buf, uint64(sz))
	}
	return a.bits.AppendBinary(buf), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *MultiAssociation) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindMultiAssociation)
	if err != nil {
		return err
	}
	var m, k, g, wbar, seed uint64
	if buf, err = readUvarints(buf, &m, &k, &g, &wbar, &seed); err != nil {
		return err
	}
	if err := checkGeometry(m, k, 0); err != nil {
		return err
	}
	if g < 2 || g > MaxMultiAssociationSets {
		return fmt.Errorf("core: implausible set count g = %d", g)
	}
	sizes := make([]uint64, g)
	for i := range sizes {
		if buf, err = readUvarints(buf, &sizes[i]); err != nil {
			return err
		}
		// Each size is bounded individually; summing first could wrap
		// uint64 and sneak implausible sizes past the cap.
		if err := checkGeometry(m, k, sizes[i]); err != nil {
			return err
		}
	}
	fresh, err := BuildMultiAssociation(make([][][]byte, g), int(m), int(k),
		WithMaxOffset(int(wbar)), WithSeed(seed))
	if err != nil {
		return fmt.Errorf("core: decoding multi-association filter: %w", err)
	}
	bits, rest, err := bitvec.DecodeVector(buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(rest))
	}
	if bits.Len() != fresh.bits.Len() {
		return fmt.Errorf("core: bit array length mismatch")
	}
	fresh.bits = bits
	for i, sz := range sizes {
		fresh.sizes[i] = int(sz)
	}
	*a = *fresh
	return nil
}

// --- SCMSketch ------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SCMSketch) MarshalBinary() ([]byte, error) {
	buf := header(nil, kindSCM)
	buf = uvarints(buf, uint64(s.d), uint64(s.r), uint64(s.rows[0].Width()), s.seed)
	for _, row := range s.rows {
		buf = row.AppendBinary(buf)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *SCMSketch) UnmarshalBinary(data []byte) error {
	buf, err := checkHeader(data, kindSCM)
	if err != nil {
		return err
	}
	var d, r, width, seed uint64
	if buf, err = readUvarints(buf, &d, &r, &width, &seed); err != nil {
		return err
	}
	if err := checkGeometry(r, d, 0); err != nil {
		return err
	}
	fresh, err := NewSCMSketch(int(d), int(r), WithSeed(seed), WithCounterWidth(uint(width)))
	if err != nil {
		return fmt.Errorf("core: decoding SCM sketch: %w", err)
	}
	for i := range fresh.rows {
		row, rest, err := counters.DecodeArray(buf)
		if err != nil {
			return fmt.Errorf("core: decoding SCM row %d: %w", i, err)
		}
		if row.Len() != fresh.rows[i].Len() || row.Width() != fresh.rows[i].Width() {
			return fmt.Errorf("core: SCM row %d geometry mismatch", i)
		}
		fresh.rows[i] = row
		buf = rest
	}
	if len(buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(buf))
	}
	*s = *fresh
	return nil
}
