package main

import (
	"os"
	"path/filepath"
	"testing"

	"shbf/internal/trace"
)

func TestGenerateAndInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")

	if err := run(path, "", 5000, 57, 1.5, false, 7); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := trace.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 5000 {
		t.Fatalf("wrote %d flows", len(flows))
	}
	for _, fl := range flows {
		if fl.Count < 1 || fl.Count > 57 {
			t.Fatalf("count %d out of range", fl.Count)
		}
	}
	if err := run("", path, 0, 0, 0, false, 0); err != nil {
		t.Fatalf("info mode: %v", err)
	}
}

func TestGenerateUniform(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.bin")
	if err := run(path, "", 2000, 10, 0, true, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	flows, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int]int{}
	for _, fl := range flows {
		hist[fl.Count]++
	}
	if len(hist) != 10 {
		t.Fatalf("uniform counts cover %d values, want 10", len(hist))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.bin"), filepath.Join(dir, "b.bin")
	if err := run(a, "", 100, 10, 1.2, false, 9); err != nil {
		t.Fatal(err)
	}
	if err := run(b, "", 100, 10, 1.2, false, 9); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same-seed traces differ")
	}
}

func TestCSVImportExport(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	csvOut := filepath.Join(dir, "t.csv")
	binBack := filepath.Join(dir, "t2.bin")

	if err := run(bin, "", 200, 20, 1.3, false, 3); err != nil {
		t.Fatal(err)
	}
	if err := exportCSV(bin, csvOut); err != nil {
		t.Fatal(err)
	}
	if err := importCSV(csvOut, binBack); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(bin)
	b, _ := os.ReadFile(binBack)
	if string(a) != string(b) {
		t.Fatal("binary → CSV → binary round trip changed the trace")
	}
}

func TestCSVErrors(t *testing.T) {
	dir := t.TempDir()
	if err := importCSV(filepath.Join(dir, "missing.csv"), filepath.Join(dir, "o.bin")); err == nil {
		t.Error("missing CSV accepted")
	}
	if err := importCSV(filepath.Join(dir, "x.csv"), ""); err == nil {
		t.Error("missing -o accepted")
	}
	if err := exportCSV("", filepath.Join(dir, "o.csv")); err == nil {
		t.Error("missing -info accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 10, 10, 1, false, 1); err == nil {
		t.Error("no -o or -info accepted")
	}
	if err := run("", "/nonexistent/path/xyz", 0, 0, 0, false, 0); err == nil {
		t.Error("info on missing file accepted")
	}
	if err := run("/nonexistent/dir/file.bin", "", 10, 10, 1, false, 1); err == nil {
		t.Error("generate into missing dir accepted")
	}
}
