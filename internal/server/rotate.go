package server

import (
	"errors"
	"net/http"

	"shbf"
)

// Rotation of the daemon's sliding windows. With Config.WindowGenerations
// set, all three filters are window kinds and implement shbf.Windowed;
// Rotate walks them, retiring each one's oldest generation under its
// striped shard locks, so queries keep flowing on every shard a
// rotation is not currently touching. Two drivers share this method:
// the POST /v1/rotate endpoint (operators, external schedulers, tests)
// and shbfd's -tick loop.

// ErrNotWindowed reports a rotation request against a daemon whose
// filters are classic unbounded ones (no -window).
var ErrNotWindowed = errors.New("server: filters are not windowed (start shbfd with -window)")

// Rotate retires the oldest generation of every windowed filter and
// returns the names of the filters rotated. A daemon without window
// mode returns ErrNotWindowed. Safe for concurrent use.
func (s *Server) Rotate() ([]string, error) {
	var rotated []string
	for _, f := range []struct {
		name   string
		filter shbf.Filter
	}{
		{"membership", s.mem},
		{"association", s.assoc},
		{"multiplicity", s.mult},
	} {
		w, ok := f.filter.(shbf.Windowed)
		if !ok {
			continue
		}
		if err := w.Rotate(); err != nil {
			return rotated, err
		}
		rotated = append(rotated, f.name)
	}
	if len(rotated) == 0 {
		return nil, ErrNotWindowed
	}
	s.stats.rotations.Add(1)
	return rotated, nil
}

// Windowed reports whether the daemon's filters rotate (i.e. were
// built with Config.WindowGenerations ≥ 2 or restored from a windowed
// snapshot).
func (s *Server) Windowed() bool {
	_, ok := s.mem.(shbf.Windowed)
	return ok
}

// handleRotate serves POST /v1/rotate: one whole-daemon rotation,
// answering with the rotated filters and their new epoch.
func (s *Server) handleRotate(w http.ResponseWriter, r *http.Request) {
	rotated, err := s.Rotate()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotWindowed) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	epoch := uint64(0)
	if win, ok := s.mem.(shbf.Windowed); ok {
		epoch = win.Window().Epoch
	}
	writeJSON(w, http.StatusOK, map[string]any{"rotated": rotated, "epoch": epoch})
}
