package baseline

import "fmt"

// IBF is "iBF", the straightforward association-query baseline: one
// individual Bloom filter per set (paper Sections 2.2 and 4.5, used by
// the Summary-Cache Enhanced ICP protocol [11]). A query probes both
// filters — 2k hash computations and up to 2k memory accesses versus
// ShBF_A's k+2 and k (Table 2).
type IBF struct {
	bf1, bf2 *BF
}

// IBFAnswer is the outcome of an iBF association query.
type IBFAnswer struct {
	// In1 and In2 report whether each filter claims membership. Claims
	// can be false positives; a double positive cannot distinguish true
	// intersection from a false positive on either side.
	In1, In2 bool
}

// Clear reports whether the answer pins the element to exactly one set:
// exactly one filter positive. A double positive is never clear — "iBF
// is prone to false positives whenever it declares an element … to be
// in S1∩S2" (Section 1.2.2) — which is why iBF's clear-answer
// probability is 2/3·(1−0.5^k) against ShBF_A's (1−0.5^k)² (Table 2).
func (a IBFAnswer) Clear() bool { return a.In1 != a.In2 }

// String renders the declared outcome.
func (a IBFAnswer) String() string {
	switch {
	case a.In1 && a.In2:
		return "S1∩S2 (unverifiable)"
	case a.In1:
		return "S1−S2"
	case a.In2:
		return "S2−S1"
	default:
		return "∅"
	}
}

// BuildIBF constructs the two filters from the sets. m1 and m2 are the
// per-filter sizes; the paper's optimum splits m1+m2 = (n1+n2)·k/ln 2
// proportionally to the set sizes.
func BuildIBF(s1, s2 [][]byte, m1, m2, k int, opts ...Option) (*IBF, error) {
	cfg := applyOptions(opts)
	bf1, err := NewBF(m1, k, append(opts, WithSeed(cfg.seed+100))...)
	if err != nil {
		return nil, fmt.Errorf("baseline: building BF1: %w", err)
	}
	bf2, err := NewBF(m2, k, append(opts, WithSeed(cfg.seed+200))...)
	if err != nil {
		return nil, fmt.Errorf("baseline: building BF2: %w", err)
	}
	for _, e := range s1 {
		bf1.Add(e)
	}
	for _, e := range s2 {
		bf2.Add(e)
	}
	return &IBF{bf1: bf1, bf2: bf2}, nil
}

// Query probes both filters and returns the combined answer.
func (f *IBF) Query(e []byte) IBFAnswer {
	return IBFAnswer{In1: f.bf1.Contains(e), In2: f.bf2.Contains(e)}
}

// BF1 and BF2 expose the underlying filters for instrumentation.
func (f *IBF) BF1() *BF { return f.bf1 }
func (f *IBF) BF2() *BF { return f.bf2 }

// SizeBytes returns the combined footprint.
func (f *IBF) SizeBytes() int { return f.bf1.SizeBytes() + f.bf2.SizeBytes() }

// HashOpsPerQuery returns 2k (Table 2).
func (f *IBF) HashOpsPerQuery() int { return f.bf1.k + f.bf2.k }
