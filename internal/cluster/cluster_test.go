package cluster

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// threeNodes is a hand-built valid map: three nodes, three ranges,
// replication 2, node i primary for range i with the next node as
// replica.
func threeNodes() *Map {
	return &Map{
		Version:     1,
		Replication: 2,
		Nodes: []Node{
			{ID: "n1", Addr: "127.0.0.1:9001", HTTPAddr: "127.0.0.1:8001"},
			{ID: "n2", Addr: "127.0.0.1:9002"},
			{ID: "n3", HTTPAddr: "127.0.0.1:8003"},
		},
		Ranges: []Range{
			{Start: 0, Owners: []string{"n1", "n2"}},
			{Start: 1 << 62, Owners: []string{"n2", "n3"}},
			{Start: 3 << 62, Owners: []string{"n3", "n1"}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := threeNodes().Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Map)
		want string
	}{
		{"no nodes", func(m *Map) { m.Nodes = nil }, "no nodes"},
		{"empty node id", func(m *Map) { m.Nodes[0].ID = "" }, "no id"},
		{"duplicate node id", func(m *Map) { m.Nodes[1].ID = "n1" }, "duplicate node id"},
		{"no address", func(m *Map) { m.Nodes[1].Addr = "" }, "no address"},
		{"replication zero", func(m *Map) { m.Replication = 0 }, "replication"},
		{"replication above nodes", func(m *Map) { m.Replication = 4 }, "replication"},
		{"no ranges", func(m *Map) { m.Ranges = nil }, "no ranges"},
		{"gap at zero", func(m *Map) { m.Ranges[0].Start = 10 }, "first range"},
		{"overlapping ranges", func(m *Map) { m.Ranges[2].Start = m.Ranges[1].Start }, "ascend"},
		{"descending ranges", func(m *Map) { m.Ranges[2].Start = 1 }, "ascend"},
		{"owner count mismatch", func(m *Map) { m.Ranges[1].Owners = []string{"n2"} }, "owners"},
		{"unknown owner", func(m *Map) { m.Ranges[0].Owners[1] = "n9" }, "not a node"},
		{"duplicate owner", func(m *Map) { m.Ranges[0].Owners[1] = "n1" }, "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := threeNodes()
			tc.mut(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("mutation accepted")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error does not wrap ErrInvalid: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRangeFor(t *testing.T) {
	m := threeNodes()
	cases := []struct {
		v    uint64
		want string // primary owner
	}{
		{0, "n1"},
		{1<<62 - 1, "n1"},
		{1 << 62, "n2"},
		{3<<62 - 1, "n2"},
		{3 << 62, "n3"},
		{math.MaxUint64, "n3"},
	}
	for _, tc := range cases {
		if got := m.RangeFor(tc.v).Owners[0]; got != tc.want {
			t.Errorf("RangeFor(%#x) primary = %s, want %s", tc.v, got, tc.want)
		}
	}
}

func TestNodeByID(t *testing.T) {
	m := threeNodes()
	if n := m.NodeByID("n2"); n == nil || n.Addr != "127.0.0.1:9002" {
		t.Errorf("NodeByID(n2) = %+v", n)
	}
	if n := m.NodeByID("n9"); n != nil {
		t.Errorf("NodeByID(n9) = %+v, want nil", n)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := threeNodes()
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Version != m.Version || got.Replication != m.Replication ||
		len(got.Nodes) != len(m.Nodes) || len(got.Ranges) != len(m.Ranges) {
		t.Fatalf("round trip changed the map: %+v", got)
	}
	for i := range m.Ranges {
		if got.Ranges[i].Start != m.Ranges[i].Start {
			t.Errorf("range %d start %d, want %d", i, got.Ranges[i].Start, m.Ranges[i].Start)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	valid, _ := threeNodes().Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", valid[:len(valid)/2]},
		{"trailing data", append(append([]byte{}, valid...), "{}"...)},
		{"unknown field", []byte(`{"version":1,"replication":1,"nodes":[{"id":"a","addr":"x"}],"ranges":[{"start":0,"owners":["a"]}],"bogus":true}`)},
		{"invalid map", []byte(`{"version":1,"replication":1,"nodes":[],"ranges":[]}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); err == nil {
				t.Fatal("accepted")
			} else if !errors.Is(err, ErrInvalid) {
				t.Errorf("error does not wrap ErrInvalid: %v", err)
			}
		})
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	data, err := threeNodes().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(m.Nodes) != 3 {
		t.Errorf("loaded %d nodes, want 3", len(m.Nodes))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestUniform(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 16} {
		for r := 1; r <= nodes && r <= 3; r++ {
			entries := make([]Node, nodes)
			for i := range entries {
				entries[i] = Node{ID: string(rune('a' + i)), Addr: "x"}
			}
			m, err := Uniform(7, entries, r)
			if err != nil {
				t.Fatalf("Uniform(%d nodes, r=%d): %v", nodes, r, err)
			}
			if m.Version != 7 || len(m.Ranges) != nodes || m.Replication != r {
				t.Fatalf("Uniform(%d, r=%d) = version %d, %d ranges, r=%d",
					nodes, r, m.Version, len(m.Ranges), m.Replication)
			}
			// Every range's primary is its own node; replicas follow in
			// ring order.
			for i, rg := range m.Ranges {
				if rg.Owners[0] != entries[i].ID {
					t.Errorf("range %d primary %s, want %s", i, rg.Owners[0], entries[i].ID)
				}
			}
			// The ranges tile the ring about evenly: every point maps to
			// exactly one range (Validate checked structure; spot-check
			// lookup at boundaries).
			for i, rg := range m.Ranges {
				if got := m.RangeFor(rg.Start); got != &m.Ranges[i] {
					t.Errorf("RangeFor(start of range %d) resolved range %v", i, got)
				}
			}
		}
	}
	if _, err := Uniform(1, nil, 1); err == nil {
		t.Error("Uniform with no nodes accepted")
	}
	if _, err := Uniform(1, []Node{{ID: "a", Addr: "x"}}, 2); err == nil {
		t.Error("Uniform with replication above node count accepted")
	}
}
