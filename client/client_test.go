package client_test

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shbf"
	"shbf/client"
	"shbf/internal/server"
)

// testDaemon is an in-process daemon serving both transports.
type testDaemon struct {
	srv  *server.Server
	http *httptest.Server
	shbp net.Listener
}

func startDaemon(t *testing.T, cfg server.Config) *testDaemon {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.ServeShBP(ctx, ln); err != nil {
			t.Errorf("ServeShBP: %v", err)
		}
	}()
	t.Cleanup(func() { cancel(); <-done })
	return &testDaemon{srv: srv, http: hs, shbp: ln}
}

// clients returns one client per transport, labeled.
func (d *testDaemon) clients(t *testing.T) map[string]*client.Client {
	t.Helper()
	bin, err := client.Dial("shbp://" + d.shbp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bin.Close() })
	httpc, err := client.Dial(d.http.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { httpc.Close() })
	return map[string]*client.Client{"shbp": bin, "http": httpc}
}

func testConfig() server.Config {
	return server.Config{
		MembershipBits:   1 << 18,
		MembershipK:      8,
		AssociationBits:  1 << 18,
		AssociationK:     8,
		MultiplicityBits: 1 << 19,
		MultiplicityK:    8,
		MaxCount:         16,
		Shards:           4,
		Seed:             7,
	}
}

// flowKey builds a fixed-width 13-byte key (the packed wire fast
// path).
func flowKey(i int) []byte {
	k := make([]byte, 13)
	for j := range k {
		k[j] = byte(i >> (j % 4 * 8))
	}
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

// intP and f64P build the pointer-valued NamespaceConfig overrides.
func intP(v int) *int         { return &v }
func f64P(v float64) *float64 { return &v }

// TestRoundTripEveryOp drives every op over both transports against
// classic monolithic-ish (1 shard), sharded, and windowed namespaces.
func TestRoundTripEveryOp(t *testing.T) {
	d := startDaemon(t, testConfig())
	// Namespace shapes, created once over the binary transport (the
	// registry is shared; both transports must see all of them).
	setup, err := client.Dial("shbp://" + d.shbp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	for _, nc := range []client.NamespaceConfig{
		{Name: "classic", Shards: 1},
		{Name: "wide", Shards: 8},
		{Name: "windowed", WindowGenerations: intP(3)},
	} {
		if err := setup.CreateNamespace(nc); err != nil {
			t.Fatal(err)
		}
	}

	for transport, c := range d.clients(t) {
		for _, nsName := range []string{"default", "classic", "wide", "windowed"} {
			t.Run(transport+"/"+nsName, func(t *testing.T) {
				ns := c.Namespace(nsName)
				prefix := transport + "-" + nsName + "-"
				key := func(i int) []byte { return []byte(fmt.Sprintf("%s%04d", prefix, i)) }

				// Membership: batch add, batch + scalar queries.
				set := ns.Set()
				keys := make([][]byte, 64)
				for i := range keys {
					keys[i] = key(i)
				}
				if err := set.AddAll(keys); err != nil {
					t.Fatalf("AddAll: %v", err)
				}
				probe := append(append([][]byte{}, keys[:8]...), []byte(prefix+"absent"))
				got := set.ContainsAll(nil, probe)
				for i := 0; i < 8; i++ {
					if !got[i] {
						t.Fatalf("ContainsAll lost key %d", i)
					}
				}
				if got[8] {
					t.Fatal("ContainsAll invented a member")
				}
				if !set.Contains(keys[0]) || set.Contains([]byte(prefix+"scalar-absent")) {
					t.Fatal("scalar Contains mismatch")
				}
				set.Add([]byte(prefix + "scalar"))
				if !set.Contains([]byte(prefix + "scalar")) {
					t.Fatal("scalar Add lost the key")
				}
				if err := set.Err(); err != nil {
					t.Fatalf("sticky error: %v", err)
				}

				// Fixed-width keys exercise the packed wire encoding.
				fixed := make([][]byte, 32)
				for i := range fixed {
					fixed[i] = flowKey(i + 1000)
				}
				if err := set.AddAll(fixed); err != nil {
					t.Fatalf("AddAll fixed-width: %v", err)
				}
				if res, err := set.Check(fixed); err != nil {
					t.Fatal(err)
				} else {
					for i, ok := range res {
						if !ok {
							t.Fatalf("fixed-width key %d lost", i)
						}
					}
				}

				// Multiplicity: counts, conflict with applied prefix.
				cnt := ns.Counter()
				if err := cnt.InsertCount(key(0), 3); err != nil {
					t.Fatal(err)
				}
				if err := cnt.Insert(key(1)); err != nil {
					t.Fatal(err)
				}
				counts := cnt.CountAll(nil, [][]byte{key(0), key(1), []byte(prefix + "zero")})
				if counts[0] != 3 || counts[1] != 1 || counts[2] != 0 {
					t.Fatalf("counts = %v, want [3 1 0]", counts)
				}
				if err := cnt.Delete(key(0)); err != nil {
					t.Fatal(err)
				}
				if n := cnt.Count(key(0)); n != 2 {
					t.Fatalf("count after delete = %d, want 2", n)
				}
				if err := cnt.Delete([]byte(prefix + "never")); !client.IsConflict(err) {
					t.Fatalf("delete of absent key: %v", err)
				}
				err := cnt.InsertCount([]byte(prefix+"big"), 20)
				if !client.IsConflict(err) {
					t.Fatalf("overflow: %v", err)
				}
				var apiErr *client.Error
				if !asError(err, &apiErr) || apiErr.Applied != 16 {
					t.Fatalf("overflow applied = %+v, want 16", apiErr)
				}
				if err := cnt.Err(); err != nil {
					t.Fatalf("sticky error: %v", err)
				}

				// Association: inserts, classification soundness,
				// removal, conflicts.
				assoc := ns.Associator()
				s1 := [][]byte{[]byte(prefix + "only1"), []byte(prefix + "both")}
				s2 := [][]byte{[]byte(prefix + "only2"), []byte(prefix + "both")}
				if err := assoc.InsertAll(1, s1); err != nil {
					t.Fatal(err)
				}
				if err := assoc.InsertAll(2, s2); err != nil {
					t.Fatal(err)
				}
				regions := assoc.QueryAll(nil, [][]byte{
					[]byte(prefix + "only1"), []byte(prefix + "both"),
					[]byte(prefix + "only2"), []byte(prefix + "neither"),
				})
				if !regions[0].Contains(shbf.RegionS1Only) || !regions[1].Contains(shbf.RegionBoth) ||
					!regions[2].Contains(shbf.RegionS2Only) {
					t.Fatalf("classification unsound: %v", regions)
				}
				if regions[3] != shbf.RegionNone {
					t.Fatalf("non-member classified: %v", regions[3])
				}
				if err := assoc.DeleteS1([]byte(prefix + "both")); err != nil {
					t.Fatal(err)
				}
				if r := assoc.Query([]byte(prefix + "both")); !r.Contains(shbf.RegionS2Only) {
					t.Fatalf("after DeleteS1: %v", r)
				}
				if err := assoc.DeleteAll(2, [][]byte{[]byte(prefix + "ghost")}); !client.IsConflict(err) {
					t.Fatalf("delete of absent association: %v", err)
				}
				if err := assoc.InsertAll(3, s1); err == nil {
					t.Fatal("accepted set 3")
				}
				if err := assoc.Err(); err != nil {
					t.Fatalf("sticky error: %v", err)
				}

				// Stats reflect this namespace's writes, not another's.
				st, err := ns.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st.Membership.N == 0 || st.Queries["membership_add"] == 0 {
					t.Fatalf("stats empty: n=%d queries=%v", st.Membership.N, st.Queries)
				}

				// Rotation: windowed namespaces rotate (and expire);
				// classic ones conflict.
				win := ns.Window()
				if nsName == "windowed" {
					in, err := win.Info()
					if err != nil {
						t.Fatal(err)
					}
					if in.Generations != 3 {
						t.Fatalf("generations = %d, want 3", in.Generations)
					}
					startEpoch := in.Epoch
					for i := 0; i < 3; i++ {
						rotated, epoch, err := ns.Rotate()
						if err != nil {
							t.Fatal(err)
						}
						if len(rotated) != 3 || epoch != startEpoch+uint64(i)+1 {
							t.Fatalf("rotate %d: %v at epoch %d", i, rotated, epoch)
						}
					}
					if set.Contains(keys[0]) {
						t.Fatal("key survived a full ring of rotations")
					}
				} else {
					if _, _, err := ns.Rotate(); !client.IsConflict(err) {
						t.Fatalf("rotate on classic namespace: %v", err)
					}
				}
				_ = win
			})
		}
	}
}

// asError is errors.As without the import clutter in assertions.
func asError(err error, target **client.Error) bool {
	for err != nil {
		if e, ok := err.(*client.Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestNamespaceCRUD: create/list/delete over both transports, with
// conflicts for duplicates and the undeletable default.
func TestNamespaceCRUD(t *testing.T) {
	d := startDaemon(t, testConfig())
	for transport, c := range d.clients(t) {
		t.Run(transport, func(t *testing.T) {
			name := "crud-" + transport
			if err := c.CreateNamespace(client.NamespaceConfig{Name: name, Shards: 2}); err != nil {
				t.Fatal(err)
			}
			if err := c.CreateNamespace(client.NamespaceConfig{Name: name}); !client.IsConflict(err) {
				t.Fatalf("duplicate create: %v", err)
			}
			if err := c.CreateNamespace(client.NamespaceConfig{Name: "bad name!"}); err == nil {
				t.Fatal("accepted an invalid name")
			}
			infos, err := c.Namespaces()
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, in := range infos {
				if in.Name == name {
					found = true
					if in.Windowed {
						t.Fatal("classic namespace reported windowed")
					}
				}
			}
			if !found {
				t.Fatalf("created namespace missing from list %v", infos)
			}
			// Writes to the tenant do not leak into default.
			if err := c.Namespace(name).Set().AddAll([][]byte{[]byte("tenant-key")}); err != nil {
				t.Fatal(err)
			}
			if c.Namespace("").Set().Contains([]byte("tenant-key")) {
				t.Fatal("tenant write visible in default namespace")
			}
			if err := c.DeleteNamespace(name); err != nil {
				t.Fatal(err)
			}
			if err := c.Namespace(name).Set().AddAll([][]byte{[]byte("x")}); !client.IsNotFound(err) {
				t.Fatalf("write to deleted namespace: %v", err)
			}
			if err := c.DeleteNamespace("default"); !client.IsConflict(err) {
				t.Fatalf("deleting default: %v", err)
			}
		})
	}
}

// TestWindowedHandle: the shbf.Windowed surface against a windowed
// tenant — Window() snapshot, RotateIfDue with the tenant's tick.
func TestWindowedHandle(t *testing.T) {
	d := startDaemon(t, testConfig())
	c := d.clients(t)["shbp"]
	if err := c.CreateNamespace(client.NamespaceConfig{
		Name: "win", WindowGenerations: intP(2), WindowTickSeconds: f64P(60),
	}); err != nil {
		t.Fatal(err)
	}
	var w shbf.Windowed = c.Namespace("win").Window()
	in := w.Window()
	if in.Generations != 2 || in.Tick != time.Minute {
		t.Fatalf("window info: %+v", in)
	}
	base := time.Now()
	if due, err := w.RotateIfDue(base); err != nil || due {
		t.Fatalf("first call must arm, not rotate: %v %v", due, err)
	}
	if due, err := w.RotateIfDue(base.Add(30 * time.Second)); err != nil || due {
		t.Fatalf("rotated before the tick: %v %v", due, err)
	}
	due, err := w.RotateIfDue(base.Add(61 * time.Second))
	if err != nil || !due {
		t.Fatalf("tick elapsed: due=%v err=%v", due, err)
	}
	if got := w.Window().Epoch; got != in.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", got, in.Epoch+1)
	}
	// A classic namespace's Window() records an error.
	cw := c.Namespace("").Window()
	if _, err := cw.Info(); err == nil {
		t.Fatal("Info on classic namespace succeeded")
	}
}

// TestConcurrentClients hammers both transports from many goroutines
// (the -race CI job's serving check for the v2 stack).
func TestConcurrentClients(t *testing.T) {
	d := startDaemon(t, testConfig())
	cs := d.clients(t)
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for transport, c := range cs {
		for w := 0; w < workers/2; w++ {
			wg.Add(1)
			go func(transport string, c *client.Client, w int) {
				defer wg.Done()
				ns := c.Namespace("")
				set, cnt, assoc := ns.Set(), ns.Counter(), ns.Associator()
				for i := 0; i < iters; i++ {
					key := []byte(fmt.Sprintf("conc-%s-%d-%d", transport, w, i))
					if err := set.AddAll([][]byte{key}); err != nil {
						t.Error(err)
						return
					}
					if !set.Contains(key) {
						t.Errorf("lost %s", key)
						return
					}
					if err := cnt.Insert(key); err != nil {
						t.Error(err)
						return
					}
					if cnt.Count(key) < 1 {
						t.Errorf("count lost %s", key)
						return
					}
					if err := assoc.InsertAll(w%2+1, [][]byte{key}); err != nil {
						t.Error(err)
						return
					}
					assoc.Query(key)
				}
				for _, err := range []error{set.Err(), cnt.Err(), assoc.Err()} {
					if err != nil {
						t.Error(err)
					}
				}
			}(transport, c, w)
		}
	}
	wg.Wait()
	st, err := cs["shbp"].Namespace("").Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * (workers / 2) * iters); st.Queries["membership_add"] != want {
		t.Fatalf("membership_add = %d, want %d", st.Queries["membership_add"], want)
	}
}

// TestRemoteMatchesLocal: a remote namespace and a local filter built
// from the same Spec answer identically (the "swap local and remote
// without code changes" contract).
func TestRemoteMatchesLocal(t *testing.T) {
	cfg := testConfig()
	d := startDaemon(t, cfg)
	memSpec, _, _ := cfg.Specs()
	local, err := shbf.New(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	localSet := local.(shbf.Set)

	c := d.clients(t)["shbp"]
	remoteSet := c.Namespace("").Set()

	keys := make([][]byte, 500)
	for i := range keys {
		keys[i] = flowKey(i)
	}
	if err := remoteSet.AddAll(keys[:250]); err != nil {
		t.Fatal(err)
	}
	if err := localSet.AddAll(keys[:250]); err != nil {
		t.Fatal(err)
	}
	want := localSet.ContainsAll(nil, keys)
	got := remoteSet.ContainsAll(nil, keys)
	for i := range keys {
		if want[i] != got[i] {
			t.Fatalf("key %d: local %v, remote %v", i, want[i], got[i])
		}
	}
	if err := remoteSet.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedWidthKeys forces the variable-width wire encoding.
func TestMixedWidthKeys(t *testing.T) {
	d := startDaemon(t, testConfig())
	set := d.clients(t)["shbp"].Namespace("").Set()
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), {}}
	if err := set.AddAll(keys[:3]); err != nil {
		t.Fatal(err)
	}
	res, err := set.Check(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0] || !res[1] || !res[2] {
		t.Fatalf("mixed-width keys lost: %v", res)
	}
}
