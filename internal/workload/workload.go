// Package workload builds query workloads matching the paper's
// evaluation protocols:
//
//   - pure-negative probe sets for FPR measurement ("we generated
//     membership queries for 7,000,000 elements whose information was
//     not inserted", Section 6.2.1);
//   - 50/50 member/non-member mixes for access counting ("we query 2·n
//     elements, in which n elements belong to the set", Section 6.2.2);
//   - uniform three-region mixes for association queries ("the querying
//     elements hit the three parts with the same probability",
//     Section 6.3.1).
//
// Workloads are deterministic given their seeds so every figure is
// exactly reproducible.
package workload

import (
	"math/rand"

	"shbf/internal/trace"
)

// Negatives returns count elements guaranteed absent from everything the
// generator produced before — fresh draws from the same distinct-ID
// sequence.
func Negatives(g *trace.Generator, count int) [][]byte {
	return trace.Bytes(g.Distinct(count))
}

// Mixed returns a shuffled workload of all members plus an equal number
// of negatives (the Figure 8 protocol: 2n queries, half members). The
// shuffle is seeded for reproducibility.
func Mixed(members [][]byte, negatives [][]byte, seed int64) [][]byte {
	out := make([][]byte, 0, len(members)+len(negatives))
	out = append(out, members...)
	out = append(out, negatives...)
	shuffle(out, seed)
	return out
}

// Interleave returns a shuffled union of the groups — the Figure 10
// protocol where queries hit each region with equal probability when
// the groups have equal sizes.
func Interleave(seed int64, groups ...[][]byte) [][]byte {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([][]byte, 0, total)
	for _, g := range groups {
		out = append(out, g...)
	}
	shuffle(out, seed)
	return out
}

// Repeat cycles workload to exactly count queries (the FPR protocols
// probe far more elements than any one batch holds; cycling a large
// distinct batch keeps memory bounded without repeating short patterns).
func Repeat(queries [][]byte, count int) [][]byte {
	if len(queries) == 0 || count <= len(queries) {
		return queries[:count:count]
	}
	out := make([][]byte, count)
	for i := range out {
		out[i] = queries[i%len(queries)]
	}
	return out
}

func shuffle(s [][]byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
