package sharded

import (
	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Association is a concurrency-safe sharded CShBF_A: one logical
// two-set association filter whose bit budget is split across routed
// shards, each an independent updatable core.CountingAssociation.
// Because every element lives in exactly one shard, region semantics
// are unchanged — a query consults exactly the shard that encoded the
// element.
type Association struct {
	set set[*core.CountingAssociation]
}

// AssociationShardStat reports one association shard's occupancy.
type AssociationShardStat struct {
	// Bits is the shard filter's base array size m.
	Bits int
	// K is the bit positions per element.
	K int
	// MaxOffset is the shard filter's w̄.
	MaxOffset int
	// N1, N2 are the distinct set sizes routed to this shard.
	N1, N2 int
	// FillRatio is the fraction of set bits.
	FillRatio float64
}

// NewAssociation returns an updatable association filter with totalBits
// split across shardCount shards (rounded up to a power of two).
// Options are forwarded to each shard's constructor; shards receive
// distinct derived seeds.
func NewAssociation(totalBits, k, shardCount int, opts ...core.Option) (*Association, error) {
	if err := core.CheckOptions(core.KindShardedAssociation, opts...); err != nil {
		return nil, err
	}
	pow, perShard, err := roundPow2(totalBits, shardCount)
	if err != nil {
		return nil, err
	}
	base := core.ResolveSeed(opts...)
	s, err := newSet(pow, func(i int) (*core.CountingAssociation, error) {
		return core.NewCountingAssociation(perShard, k, append(opts, core.WithSeed(shardSeed(base, i)))...)
	})
	if err != nil {
		return nil, err
	}
	return &Association{set: s}, nil
}

// Shards returns the number of shards.
func (a *Association) Shards() int { return a.set.size() }

// update digests e once, routes on the digest, and runs op on e's
// shard under its write lock with the same digest.
func (a *Association) update(e []byte, op func(*core.CountingAssociation, []byte, hashing.Digest) error) error {
	d := hashing.KeyDigest(e)
	s := a.set.forDigest(d)
	s.mu.Lock()
	err := op(s.f, e, d)
	s.mu.Unlock()
	return err
}

// InsertS1 adds e to S1 (no-op if already present). Safe for concurrent
// use.
func (a *Association) InsertS1(e []byte) error {
	return a.update(e, (*core.CountingAssociation).InsertS1Digest)
}

// InsertS2 adds e to S2 (no-op if already present). Safe for concurrent
// use.
func (a *Association) InsertS2(e []byte) error {
	return a.update(e, (*core.CountingAssociation).InsertS2Digest)
}

// DeleteS1 removes e from S1; ErrNotStored if absent. Safe for
// concurrent use.
func (a *Association) DeleteS1(e []byte) error {
	return a.update(e, (*core.CountingAssociation).DeleteS1Digest)
}

// DeleteS2 removes e from S2; ErrNotStored if absent. Safe for
// concurrent use.
func (a *Association) DeleteS2(e []byte) error {
	return a.update(e, (*core.CountingAssociation).DeleteS2Digest)
}

// Query returns e's candidate-region mask with a single hash pass
// (digest → route → probe). Safe for concurrent use; readers do not
// block each other.
func (a *Association) Query(e []byte) core.Region {
	d := hashing.KeyDigest(e)
	s := a.set.forDigest(d)
	s.mu.RLock()
	r := s.f.QueryDigest(d)
	s.mu.RUnlock()
	return r
}

// QueryAll classifies a whole batch, grouping keys by shard so each
// shard's read lock is taken once per batch instead of once per key;
// each key is digested once for both routing and probing. Region masks
// are written into dst (resized to len(keys)) at the keys' original
// positions. Safe for concurrent use.
func (a *Association) QueryAll(dst []core.Region, keys [][]byte) []core.Region {
	return batchRead(&a.set, dst, keys, func(f *core.CountingAssociation, _ []byte, d hashing.Digest) core.Region {
		return f.QueryDigest(d)
	})
}

// Kind returns core.KindShardedAssociation.
func (a *Association) Kind() core.Kind { return core.KindShardedAssociation }

// Spec returns the construction geometry (see Filter.Spec for the base
// seed recovery).
func (a *Association) Spec() core.Spec {
	inner := a.set.shards[0].f.Spec()
	return core.Spec{
		Kind:         core.KindShardedAssociation,
		M:            inner.M * a.set.size(),
		K:            inner.K,
		MaxOffset:    inner.MaxOffset,
		CounterWidth: inner.CounterWidth,
		Shards:       a.set.size(),
		Seed:         inner.Seed - 1,
	}
}

// Stats returns the aggregate occupancy snapshot; N sums the two set
// sizes.
func (a *Association) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindShardedAssociation,
		N:         a.N1() + a.N2(),
		SizeBytes: a.SizeBytes(),
		FillRatio: a.FillRatio(),
		Shards:    a.set.size(),
	}
}

// N1 returns the total distinct size of S1 across shards.
func (a *Association) N1() int {
	return a.set.sumLocked((*core.CountingAssociation).N1)
}

// N2 returns the total distinct size of S2 across shards.
func (a *Association) N2() int {
	return a.set.sumLocked((*core.CountingAssociation).N2)
}

// SizeBytes returns the combined footprint of the shard bit and counter
// arrays.
func (a *Association) SizeBytes() int {
	return a.set.sumLocked((*core.CountingAssociation).SizeBytes)
}

// FillRatio returns the mean query-array fill ratio across shards.
func (a *Association) FillRatio() float64 {
	return a.set.meanLocked((*core.CountingAssociation).FillRatio)
}

// ShardStats returns a per-shard occupancy snapshot.
func (a *Association) ShardStats() []AssociationShardStat {
	out := make([]AssociationShardStat, a.set.size())
	for i := range a.set.shards {
		s := &a.set.shards[i]
		s.mu.RLock()
		out[i] = AssociationShardStat{
			Bits:      s.f.M(),
			K:         s.f.K(),
			MaxOffset: s.f.MaxOffset(),
			N1:        s.f.N1(),
			N2:        s.f.N2(),
			FillRatio: s.f.FillRatio(),
		}
		s.mu.RUnlock()
	}
	return out
}

// MarshalBinary implements encoding.BinaryMarshaler (see
// Filter.MarshalBinary for consistency semantics).
func (a *Association) MarshalBinary() ([]byte, error) {
	return appendSnapshot(nil, shardKindAssociation, &a.set)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing a's
// state with the decoded filter.
func (a *Association) UnmarshalBinary(data []byte) error {
	s, err := decodeSnapshot[core.CountingAssociation](data, shardKindAssociation)
	if err != nil {
		return err
	}
	a.set = s
	return nil
}
