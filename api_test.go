package shbf_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"shbf"
)

// specs returns one constructible Spec per Kind, keyed by kind.
func specs() []shbf.Spec {
	return []shbf.Spec{
		{Kind: shbf.KindMembership, M: 4096, K: 6, Seed: 7},
		{Kind: shbf.KindCountingMembership, M: 4096, K: 6, Seed: 7, CounterWidth: 8},
		{Kind: shbf.KindTShift, M: 4096, K: 6, T: 2, Seed: 7},
		{Kind: shbf.KindAssociation, M: 4096, K: 4, Seed: 7},
		{Kind: shbf.KindCountingAssociation, M: 4096, K: 4, Seed: 7},
		{Kind: shbf.KindMultiAssociation, M: 4096, K: 4, G: 3, Seed: 7},
		{Kind: shbf.KindMultiplicity, M: 4096, K: 4, C: 57, Seed: 7},
		{Kind: shbf.KindCountingMultiplicity, M: 4096, K: 4, C: 57, Seed: 7},
		{Kind: shbf.KindSCMSketch, M: 1024, K: 4, Seed: 7},
		{Kind: shbf.KindShardedMembership, M: 1 << 16, K: 6, Shards: 4, Seed: 7},
		{Kind: shbf.KindShardedAssociation, M: 1 << 16, K: 4, Shards: 4, Seed: 7},
		{Kind: shbf.KindShardedMultiplicity, M: 1 << 17, K: 4, C: 57, Shards: 4, Seed: 7},
		{Kind: shbf.KindWindowMembership, M: 4096, K: 6, Generations: 3, Seed: 7},
		{Kind: shbf.KindWindowAssociation, M: 4096, K: 4, Generations: 3, Seed: 7},
		{Kind: shbf.KindWindowMultiplicity, M: 4096, K: 4, C: 57, Generations: 3, Seed: 7},
		{Kind: shbf.KindWindowShardedMembership, M: 1 << 16, K: 6, Shards: 4, Generations: 3,
			Tick: time.Minute, Seed: 7},
		{Kind: shbf.KindWindowShardedAssociation, M: 1 << 16, K: 4, Shards: 4, Generations: 3, Seed: 7},
		{Kind: shbf.KindWindowShardedMultiplicity, M: 1 << 17, K: 4, C: 57, Shards: 4, Generations: 3, Seed: 7},
	}
}

// TestNewConstructsEveryKind is the acceptance gate for the spec-driven
// constructor: every Kind builds, reports its own Kind, and reports a
// Spec that reconstructs an identical empty filter.
func TestNewConstructsEveryKind(t *testing.T) {
	for _, spec := range specs() {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			f, err := shbf.New(spec)
			if err != nil {
				t.Fatalf("New(%+v): %v", spec, err)
			}
			if f.Kind() != spec.Kind {
				t.Fatalf("Kind() = %s, want %s", f.Kind(), spec.Kind)
			}
			back := f.Spec()
			if back.Kind != spec.Kind {
				t.Fatalf("Spec().Kind = %s, want %s", back.Kind, spec.Kind)
			}
			twin, err := shbf.New(back)
			if err != nil {
				t.Fatalf("New(f.Spec() = %+v): %v", back, err)
			}
			if twin.Spec() != back {
				t.Fatalf("spec did not round-trip: %+v vs %+v", twin.Spec(), back)
			}
			// Empty twins serialize identically: same geometry, same
			// seed, same (empty) arrays.
			b1, err := f.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := twin.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatal("empty filter and its spec-reconstructed twin serialize differently")
			}
			st := f.Stats()
			if st.Kind != spec.Kind {
				t.Fatalf("Stats().Kind = %s, want %s", st.Kind, spec.Kind)
			}
			if st.SizeBytes <= 0 {
				t.Fatalf("Stats().SizeBytes = %d, want > 0", st.SizeBytes)
			}
		})
	}
}

// TestInterfaceConformance pins which query surfaces each Kind
// presents, so an accidental method-set change breaks loudly.
func TestInterfaceConformance(t *testing.T) {
	conformance := map[shbf.Kind]string{
		shbf.KindMembership:           "set",
		shbf.KindCountingMembership:   "contains,updatable,adder",
		shbf.KindTShift:               "set",
		shbf.KindAssociation:          "associator",
		shbf.KindCountingAssociation:  "associator",
		shbf.KindMultiAssociation:     "",
		shbf.KindMultiplicity:         "counter",
		shbf.KindCountingMultiplicity: "counter,updatable,adder",
		shbf.KindSCMSketch:            "adder",
		shbf.KindShardedMembership:    "set",
		shbf.KindShardedAssociation:   "associator",
		shbf.KindShardedMultiplicity:  "counter,updatable,adder",

		// The window kinds present their base kind's surface plus the
		// rotation interface (checked separately below).
		shbf.KindWindowMembership:          "set,windowed",
		shbf.KindWindowAssociation:         "associator,windowed",
		shbf.KindWindowMultiplicity:        "counter,updatable,adder,windowed",
		shbf.KindWindowShardedMembership:   "set,windowed",
		shbf.KindWindowShardedAssociation:  "associator,windowed",
		shbf.KindWindowShardedMultiplicity: "counter,updatable,adder,windowed",
	}
	for _, spec := range specs() {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			f, err := shbf.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			want := conformance[spec.Kind]
			check := func(name string, ok bool) {
				if has := strings.Contains(want, name); ok != has {
					t.Errorf("%s conformance to %s = %v, want %v", spec.Kind, name, ok, has)
				}
			}
			_, isSet := f.(shbf.Set)
			_, isUpd := f.(shbf.Updatable)
			_, isCnt := f.(shbf.Counter)
			_, isAssoc := f.(shbf.Associator)
			_, isAdder := f.(shbf.Adder)
			_, isWin := f.(shbf.Windowed)
			check("set", isSet)
			check("updatable", isUpd)
			check("counter", isCnt)
			check("associator", isAssoc)
			check("windowed", isWin)
			// Set implies Adder; only check the standalone tag.
			if !isSet {
				check("adder", isAdder)
			}
		})
	}
}

// TestSpecRejectsMisappliedFields: geometry fields outside a kind's
// vocabulary are construction errors, not silent no-ops.
func TestSpecRejectsMisappliedFields(t *testing.T) {
	bad := []shbf.Spec{
		{Kind: shbf.KindMembership, M: 4096, K: 6, C: 57},                          // C on membership
		{Kind: shbf.KindMembership, M: 4096, K: 6, T: 2},                           // T outside tshift
		{Kind: shbf.KindMultiplicity, M: 4096, K: 4, C: 8, G: 3},                   // G outside multi-association
		{Kind: shbf.KindMembership, M: 4096, K: 6, Shards: 4},                      // Shards on monolithic kind
		{Kind: shbf.KindShardedMembership, M: 1 << 16, K: 6},                       // sharded kind without Shards
		{Kind: 0, M: 4096, K: 6},                                                   // invalid kind
		{Kind: shbf.KindMembership, M: 4096, K: 6, Generations: 3},                 // Generations on non-window kind
		{Kind: shbf.KindMembership, M: 4096, K: 6, Tick: time.Second},              // Tick on non-window kind
		{Kind: shbf.KindWindowMembership, M: 4096, K: 6},                           // window kind without Generations
		{Kind: shbf.KindWindowMembership, M: 4096, K: 6, Generations: 1},           // ring too short
		{Kind: shbf.KindWindowMembership, M: 4096, K: 6, Generations: 3, T: 2},     // T outside tshift
		{Kind: shbf.KindWindowShardedMembership, M: 1 << 16, K: 6, Generations: 3}, // sharded window without Shards
	}
	for _, spec := range bad {
		if _, err := shbf.New(spec); err == nil {
			t.Errorf("New(%+v) accepted a misapplied spec", spec)
		}
	}
}

// TestOptionsRejectedPerKind: options a kind's constructor does not
// consume are errors naming the option, not silent no-ops.
func TestOptionsRejectedPerKind(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"unsafe-on-membership", errOf(shbf.NewMembership(4096, 6, shbf.WithUnsafeUpdates())), "WithUnsafeUpdates"},
		{"counterwidth-on-membership", errOf(shbf.NewMembership(4096, 6, shbf.WithCounterWidth(8))), "WithCounterWidth"},
		{"maxoffset-on-multiplicity", errOf(shbf.NewMultiplicity(4096, 4, 57, shbf.WithMaxOffset(31))), "WithMaxOffset"},
		{"unsafe-on-counting-membership", errOf(shbf.NewCountingMembership(4096, 6, shbf.WithUnsafeUpdates())), "WithUnsafeUpdates"},
		{"maxoffset-on-scm", errOf(shbf.NewSCMSketch(4, 1024, shbf.WithMaxOffset(31))), "WithMaxOffset"},
		{"counterwidth-on-sharded-membership", errOf(shbf.NewShardedMembership(1<<16, 6, 4, shbf.WithCounterWidth(8))), "WithCounterWidth"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.err == nil {
				t.Fatal("misapplied option accepted")
			}
			if !strings.Contains(c.err.Error(), c.want) {
				t.Fatalf("error %q does not name the option %s", c.err, c.want)
			}
		})
	}
	// The options still work where they apply.
	if _, err := shbf.NewCountingMultiplicity(4096, 4, 57, shbf.WithUnsafeUpdates(), shbf.WithCounterWidth(8)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if _, err := shbf.NewMembership(4096, 6, shbf.WithMaxOffset(31), shbf.WithSeed(3)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func errOf[F any](_ F, err error) error { return err }

// TestSpecSeedZeroRoundTrips: zero is a valid seed, honored exactly —
// a filter built with WithSeed(0) reconstructs from its own Spec with
// the same hash functions (it must not fall back to the package
// default seed).
func TestSpecSeedZeroRoundTrips(t *testing.T) {
	f, err := shbf.NewMembership(4096, 6, shbf.WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]byte("zero-seeded"))
	twin, err := shbf.New(f.Spec())
	if err != nil {
		t.Fatal(err)
	}
	tw := twin.(*shbf.Membership)
	tw.Add([]byte("zero-seeded"))
	b1, _ := f.MarshalBinary()
	b2, _ := tw.MarshalBinary()
	if string(b1) != string(b2) {
		t.Fatal("Spec round trip changed the seed-0 hash functions")
	}
}

// TestParseKind round-trips every kind name.
func TestParseKind(t *testing.T) {
	for _, spec := range specs() {
		k, err := shbf.ParseKind(spec.Kind.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", spec.Kind.String(), err)
		}
		if k != spec.Kind {
			t.Fatalf("ParseKind(%q) = %s", spec.Kind.String(), k)
		}
	}
	if _, err := shbf.ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus name")
	}
}

// TestBatchEqualsScalar: every batch path answers exactly as the
// scalar loop it replaces.
func TestBatchEqualsScalar(t *testing.T) {
	keys := make([][]byte, 500)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("element-%04d", i))
	}
	members, probes := keys[:250], keys

	t.Run("membership", func(t *testing.T) {
		f, err := shbf.NewMembership(8192, 6, shbf.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddAll(members); err != nil {
			t.Fatal(err)
		}
		got := f.ContainsAll(nil, probes)
		for i, e := range probes {
			if got[i] != f.Contains(e) {
				t.Fatalf("ContainsAll[%d] = %v, Contains = %v", i, got[i], f.Contains(e))
			}
		}
	})

	t.Run("sharded-membership", func(t *testing.T) {
		f, err := shbf.NewShardedMembership(1<<16, 6, 8, shbf.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddAll(members); err != nil {
			t.Fatal(err)
		}
		got := f.ContainsAll(nil, probes)
		for i, e := range probes {
			if got[i] != f.Contains(e) {
				t.Fatalf("ContainsAll[%d] = %v, Contains = %v", i, got[i], f.Contains(e))
			}
		}
		// Reusing dst must not reallocate or change answers.
		again := f.ContainsAll(got, probes)
		for i := range again {
			if again[i] != got[i] {
				t.Fatal("dst reuse changed answers")
			}
		}
	})

	t.Run("sharded-multiplicity", func(t *testing.T) {
		f, err := shbf.NewShardedMultiplicity(1<<17, 4, 57, 8, shbf.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddAll(members); err != nil {
			t.Fatal(err)
		}
		if err := f.AddAll(members[:100]); err != nil {
			t.Fatal(err)
		}
		got := f.CountAll(nil, probes)
		for i, e := range probes {
			if got[i] != f.Count(e) {
				t.Fatalf("CountAll[%d] = %d, Count = %d", i, got[i], f.Count(e))
			}
		}
	})

	t.Run("sharded-association", func(t *testing.T) {
		a, err := shbf.NewShardedAssociation(1<<16, 4, 8, shbf.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range members[:150] {
			if err := a.InsertS1(e); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range members[100:] {
			if err := a.InsertS2(e); err != nil {
				t.Fatal(err)
			}
		}
		got := a.QueryAll(nil, probes)
		for i, e := range probes {
			if got[i] != a.Query(e) {
				t.Fatalf("QueryAll[%d] = %v, Query = %v", i, got[i], a.Query(e))
			}
		}
	})

	t.Run("counting-multiplicity", func(t *testing.T) {
		f, err := shbf.NewCountingMultiplicity(16384, 4, 57, shbf.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddAll(members); err != nil {
			t.Fatal(err)
		}
		got := f.CountAll(nil, probes)
		for i, e := range probes {
			if got[i] != f.Count(e) {
				t.Fatalf("CountAll[%d] = %d, Count = %d", i, got[i], f.Count(e))
			}
		}
	})
}
