package core

import (
	"math"
	"testing"
)

// buildAssocSets returns disjoint element groups for the three regions.
func buildAssocSets(n1only, nBoth, n2only int, seed int64) (s1only, both, s2only [][]byte) {
	all := genElements(n1only+nBoth+n2only, seed)
	// Tag bytes keep the groups disjoint even under index collision.
	for i, e := range all {
		switch {
		case i < n1only:
			e[11] = 1
		case i < n1only+nBoth:
			e[11] = 2
		default:
			e[11] = 3
		}
	}
	return all[:n1only], all[n1only : n1only+nBoth], all[n1only+nBoth:]
}

func buildAssoc(t *testing.T, s1only, both, s2only [][]byte, m, k int, opts ...Option) *Association {
	t.Helper()
	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	a, err := BuildAssociation(s1, s2, m, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildAssociationValidation(t *testing.T) {
	if _, err := BuildAssociation(nil, nil, 0, 4); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := BuildAssociation(nil, nil, 100, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := BuildAssociation(nil, nil, 100, 4, WithMaxOffset(2)); err == nil {
		t.Error("accepted w̄=2 (no room for two offset components)")
	}
}

func TestAssociationCounts(t *testing.T) {
	s1only, both, s2only := buildAssocSets(100, 40, 60, 1)
	a := buildAssoc(t, s1only, both, s2only, 5000, 8)
	if a.N1() != 140 || a.N2() != 100 || a.NBoth() != 40 {
		t.Fatalf("N1=%d N2=%d NBoth=%d, want 140/100/40", a.N1(), a.N2(), a.NBoth())
	}
	if a.NDistinct() != 200 {
		t.Fatalf("NDistinct = %d, want 200", a.NDistinct())
	}
}

func TestAssociationDeduplicatesInputs(t *testing.T) {
	e := []byte("dup element")
	a, err := BuildAssociation([][]byte{e, e, e}, nil, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.N1() != 1 {
		t.Fatalf("N1 = %d, want 1 (deduplicated)", a.N1())
	}
}

func TestAssociationTruthAlwaysAmongCandidates(t *testing.T) {
	// No false negatives: for e ∈ S1∪S2 the true region is always in the
	// candidate mask (Section 4.2 — the seven outcomes are all sound).
	s1only, both, s2only := buildAssocSets(400, 200, 400, 2)
	a := buildAssoc(t, s1only, both, s2only, 15000, 10)

	check := func(elems [][]byte, truth Region) {
		for i, e := range elems {
			got := a.Query(e)
			if !got.Contains(truth) {
				t.Fatalf("element %d of %v: candidates %v missing truth", i, truth, got)
			}
		}
	}
	check(s1only, RegionS1Only)
	check(both, RegionBoth)
	check(s2only, RegionS2Only)
}

func TestAssociationClearAnswerRate(t *testing.T) {
	// With m at the optimum (m = n′k/ln2) the probability of a clear
	// answer is (1−0.5^k)² (Table 2). For k=10 that is ≈ 0.998.
	const k = 10
	s1only, both, s2only := buildAssocSets(2000, 1000, 2000, 3)
	nDistinct := 5000
	m := int(float64(nDistinct) * k / math.Ln2)
	a := buildAssoc(t, s1only, both, s2only, m, k, WithSeed(17))

	clear, total := 0, 0
	for _, group := range [][][]byte{s1only, both, s2only} {
		for _, e := range group {
			if a.Query(e).Clear() {
				clear++
			}
			total++
		}
	}
	got := float64(clear) / float64(total)
	want := math.Pow(1-math.Pow(0.5, k), 2)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("clear-answer rate %.4f vs theory %.4f", got, want)
	}
}

func TestAssociationDefiniteMembership(t *testing.T) {
	// Outcomes 4/5: even when not clear, InS1/InS2 must never be wrong.
	s1only, both, s2only := buildAssocSets(500, 300, 500, 4)
	a := buildAssoc(t, s1only, both, s2only, 8000, 6)
	for _, e := range s1only {
		r := a.Query(e)
		if r.InS2() {
			t.Fatalf("S1−S2 element classified definitely-in-S2 (%v)", r)
		}
	}
	for _, e := range s2only {
		r := a.Query(e)
		if r.InS1() {
			t.Fatalf("S2−S1 element classified definitely-in-S1 (%v)", r)
		}
	}
	for _, e := range both {
		r := a.Query(e)
		// The truth (Both) is a candidate, so a "definitely in S1−S2
		// only" style wrong exclusive claim is impossible; InS1/InS2 may
		// be true (correct) or indeterminate, but a clear answer must be
		// RegionBoth.
		if r.Clear() && r != RegionBoth {
			t.Fatalf("intersection element got clear answer %v", r)
		}
	}
}

func TestAssociationNonMemberCanReturnNone(t *testing.T) {
	s1only, both, s2only := buildAssocSets(50, 20, 50, 5)
	a := buildAssoc(t, s1only, both, s2only, 10000, 8)
	none := 0
	probes := genDisjoint(1000, 6)
	for _, e := range probes {
		if a.Query(e) == RegionNone {
			none++
		}
	}
	// With this much headroom nearly every non-member yields RegionNone.
	if none < 900 {
		t.Fatalf("only %d/1000 non-members reported RegionNone", none)
	}
}

func TestRegionPredicates(t *testing.T) {
	tests := []struct {
		r                 Region
		clear, inS1, inS2 bool
		str               string
	}{
		{RegionNone, false, false, false, "∅"},
		{RegionS1Only, true, true, false, "S1−S2"},
		{RegionBoth, true, true, true, "S1∩S2"},
		{RegionS2Only, true, false, true, "S2−S1"},
		{RegionS1Only | RegionBoth, false, true, false, "S1 (S2 unsure)"},
		{RegionS2Only | RegionBoth, false, false, true, "S2 (S1 unsure)"},
		{RegionS1Only | RegionS2Only, false, false, false, "S1−S2 ∪ S2−S1"},
		{RegionS1Only | RegionBoth | RegionS2Only, false, false, false, "S1∪S2"},
	}
	for _, tt := range tests {
		if got := tt.r.Clear(); got != tt.clear {
			t.Errorf("%v.Clear() = %v, want %v", tt.r, got, tt.clear)
		}
		if got := tt.r.InS1(); got != tt.inS1 {
			t.Errorf("%v.InS1() = %v, want %v", tt.r, got, tt.inS1)
		}
		if got := tt.r.InS2(); got != tt.inS2 {
			t.Errorf("%v.InS2() = %v, want %v", tt.r, got, tt.inS2)
		}
		if got := tt.r.String(); got != tt.str {
			t.Errorf("Region(%d).String() = %q, want %q", tt.r, got, tt.str)
		}
	}
}

func TestAssociationOffsetsDistinct(t *testing.T) {
	// o1 ∈ [1,(w̄−1)/2], o2 = o1 + [1,(w̄−1)/2]: o2 > o1 > 0 always, so
	// the three region encodings can never collide for one element.
	a := buildAssoc(t, nil, nil, nil, 1000, 4)
	for _, e := range genElements(3000, 7) {
		d := a.fam.Digest(e)
		o1, o2 := a.offset1(d), a.offset2(d)
		if o1 < 1 || o1 > 28 {
			t.Fatalf("o1 = %d out of [1,28]", o1)
		}
		if o2 <= o1 || o2 > 56 {
			t.Fatalf("o2 = %d out of (o1,56]", o2)
		}
	}
}

func TestAssociationHashOps(t *testing.T) {
	a := buildAssoc(t, nil, nil, nil, 1000, 12)
	if got := a.HashOpsPerQuery(); got != 14 {
		t.Fatalf("HashOpsPerQuery = %d, want k+2 = 14", got)
	}
}

func BenchmarkAssociationQuery(b *testing.B) {
	s1 := genElements(10000, 1)
	s2 := genElements(10000, 2)
	for _, e := range s2 {
		e[12] = 0xAA
	}
	n := 20000.0
	m := int(n * 8 / math.Ln2)
	a, err := BuildAssociation(s1, s2, m, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Query(s1[i&8191])
	}
}
