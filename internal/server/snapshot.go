package server

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"shbf"
	"shbf/internal/sharded"
)

// The daemon snapshot is a thin container over the root package's
// self-describing envelopes: 4-byte magic "ShBD", a version byte, then
// the three filters as concatenated shbf.Dump envelopes. Each envelope
// carries its own kind tag and length, so the restore loop is fully
// generic — shbf.Decode reconstructs each filter and a type switch
// slots it into place, in any order. Geometry and seeds travel inside
// the envelopes, so a restored daemon answers identically even if its
// flags changed — the snapshot wins.
//
// Version 1 (pre-envelope) snapshots — three bare length-prefixed
// MarshalBinary blobs in fixed order — are still restored.

const (
	daemonSnapVersion   = 2
	daemonSnapVersionV1 = 1
	daemonSnapMagic     = "ShBD"
)

// SaveSnapshot atomically writes the full filter state to path (via a
// temp file and rename in the same directory) and returns the byte
// count written. Each shard is serialized under its read lock; queries
// keep flowing while the snapshot is cut.
func (s *Server) SaveSnapshot(path string) (int, error) {
	buf := append([]byte(daemonSnapMagic), daemonSnapVersion)
	for _, f := range []shbf.Filter{s.mem, s.assoc, s.mult} {
		var err error
		if buf, err = shbf.AppendDump(buf, f); err != nil {
			return 0, fmt.Errorf("server: snapshot: %w", err)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".shbfd-snapshot-*")
	if err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	return len(buf), nil
}

// LoadSnapshot replaces the filters' state with the snapshot at path.
// It must not run concurrently with queries; the daemon only calls it
// before serving.
func (s *Server) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("server: loading snapshot: %w", err)
	}
	if len(data) < 5 || string(data[:4]) != daemonSnapMagic {
		return fmt.Errorf("server: %s is not a shbfd snapshot", path)
	}
	switch data[4] {
	case daemonSnapVersion:
		return s.restoreEnvelopes(data[5:])
	case daemonSnapVersionV1:
		return s.restoreV1(data[5:])
	default:
		return fmt.Errorf("server: unsupported snapshot version %d", data[4])
	}
}

// restoreEnvelopes walks the concatenated envelopes, slotting each
// decoded filter by its concrete type — windowed or classic; the
// snapshot decides, not the flags. Exactly one filter per slot must
// arrive — a duplicate would silently leave another slot empty.
func (s *Server) restoreEnvelopes(buf []byte) error {
	var mem membershipFilter
	var assoc associationFilter
	var mult multiplicityFilter
	seen := 0
	for len(buf) > 0 {
		var (
			f   shbf.Filter
			err error
		)
		f, buf, err = shbf.Decode(buf)
		if err != nil {
			return fmt.Errorf("server: snapshot envelope %d: %w", seen, err)
		}
		switch f := f.(type) {
		case *sharded.Filter:
			if mem != nil {
				return fmt.Errorf("server: snapshot holds two membership filters")
			}
			mem = f
		case *sharded.Window:
			if mem != nil {
				return fmt.Errorf("server: snapshot holds two membership filters")
			}
			mem = f
		case *sharded.Association:
			if assoc != nil {
				return fmt.Errorf("server: snapshot holds two association filters")
			}
			assoc = f
		case *sharded.WindowAssociation:
			if assoc != nil {
				return fmt.Errorf("server: snapshot holds two association filters")
			}
			assoc = f
		case *sharded.Multiplicity:
			if mult != nil {
				return fmt.Errorf("server: snapshot holds two multiplicity filters")
			}
			mult = f
		case *sharded.WindowMultiplicity:
			if mult != nil {
				return fmt.Errorf("server: snapshot holds two multiplicity filters")
			}
			mult = f
		default:
			return fmt.Errorf("server: snapshot holds unexpected %s filter", f.Kind())
		}
		seen++
	}
	if mem == nil || assoc == nil || mult == nil {
		return fmt.Errorf("server: snapshot holds %d filters, want one per query kind", seen)
	}
	s.mem, s.assoc, s.mult = mem, assoc, mult
	return nil
}

// restoreV1 reads the pre-envelope format: three bare length-prefixed
// blobs in membership, association, multiplicity order. V1 snapshots
// predate the window kinds, so the slots restore as classic filters.
func (s *Server) restoreV1(buf []byte) error {
	mem, assoc, mult := new(sharded.Filter), new(sharded.Association), new(sharded.Multiplicity)
	for i, u := range []interface{ UnmarshalBinary([]byte) error }{mem, assoc, mult} {
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf)-sz) < n {
			return fmt.Errorf("server: snapshot section %d truncated", i)
		}
		buf = buf[sz:]
		if err := u.UnmarshalBinary(buf[:n]); err != nil {
			return fmt.Errorf("server: snapshot section %d: %w", i, err)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("server: %d trailing snapshot bytes", len(buf))
	}
	s.mem, s.assoc, s.mult = mem, assoc, mult
	return nil
}
