package core

import (
	"fmt"
	"strings"
	"time"
)

// This file defines the spec-driven construction surface shared by the
// whole module: the Kind enumeration naming every filter the framework
// instantiates, the Spec struct capturing a filter's full construction
// geometry, and the Stats snapshot every filter can report. The root
// shbf package aliases all three and dispatches shbf.New(Spec) onto the
// per-kind constructors; internal/sharded implements the same
// Kind/Spec/Stats methods for its lock-striped wrappers.

// Kind identifies one instantiation of the shifting Bloom filter
// framework. The zero value is invalid.
type Kind uint8

// The framework's filter kinds. The first nine are the single-threaded
// core encodings; the Sharded kinds are their lock-striped wrappers
// from internal/sharded; the Window kinds are the sliding-window
// generation rings of internal/window (and their sharded compositions),
// whose inner generations are the corresponding base kind. New kinds
// append — the numeric values travel in serialized envelopes.
const (
	KindInvalid Kind = iota
	KindMembership
	KindCountingMembership
	KindTShift
	KindAssociation
	KindCountingAssociation
	KindMultiAssociation
	KindMultiplicity
	KindCountingMultiplicity
	KindSCMSketch
	KindShardedMembership
	KindShardedAssociation
	KindShardedMultiplicity
	KindWindowMembership
	KindWindowAssociation
	KindWindowMultiplicity
	KindWindowShardedMembership
	KindWindowShardedAssociation
	KindWindowShardedMultiplicity

	kindMax // one past the last valid kind
)

var kindNames = [...]string{
	KindInvalid:                   "invalid",
	KindMembership:                "membership",
	KindCountingMembership:        "counting-membership",
	KindTShift:                    "tshift",
	KindAssociation:               "association",
	KindCountingAssociation:       "counting-association",
	KindMultiAssociation:          "multi-association",
	KindMultiplicity:              "multiplicity",
	KindCountingMultiplicity:      "counting-multiplicity",
	KindSCMSketch:                 "scm-sketch",
	KindShardedMembership:         "sharded-membership",
	KindShardedAssociation:        "sharded-association",
	KindShardedMultiplicity:       "sharded-multiplicity",
	KindWindowMembership:          "window-membership",
	KindWindowAssociation:         "window-association",
	KindWindowMultiplicity:        "window-multiplicity",
	KindWindowShardedMembership:   "window-sharded-membership",
	KindWindowShardedAssociation:  "window-sharded-association",
	KindWindowShardedMultiplicity: "window-sharded-multiplicity",
}

// String returns the kind's canonical name, the form ParseKind accepts.
func (k Kind) String() string {
	if k == 0 || k >= kindMax {
		return fmt.Sprintf("invalid-kind-%d", uint8(k))
	}
	return kindNames[k]
}

// Valid reports whether k names a constructible filter kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// Sharded reports whether k is one of the lock-striped wrapper kinds,
// windowed or not — the kinds whose Spec carries a shard count.
func (k Kind) Sharded() bool {
	switch k {
	case KindShardedMembership, KindShardedAssociation, KindShardedMultiplicity,
		KindWindowShardedMembership, KindWindowShardedAssociation, KindWindowShardedMultiplicity:
		return true
	}
	return false
}

// Multiplicity reports whether k is one of the multiplicity kinds —
// the kinds whose Spec carries the maximum count C.
func (k Kind) Multiplicity() bool {
	switch k {
	case KindMultiplicity, KindCountingMultiplicity, KindShardedMultiplicity,
		KindWindowMultiplicity, KindWindowShardedMultiplicity:
		return true
	}
	return false
}

// Windowed reports whether k is one of the sliding-window kinds — the
// kinds whose Spec carries Generations and Tick.
func (k Kind) Windowed() bool {
	switch k {
	case KindWindowMembership, KindWindowAssociation, KindWindowMultiplicity,
		KindWindowShardedMembership, KindWindowShardedAssociation, KindWindowShardedMultiplicity:
		return true
	}
	return false
}

// Inner returns the kind a window kind's generations are built from
// (KindInvalid for non-window kinds). The updatable counting variants
// back the association and multiplicity windows, because a streaming
// head generation needs incremental inserts.
func (k Kind) Inner() Kind {
	switch k {
	case KindWindowMembership:
		return KindMembership
	case KindWindowAssociation:
		return KindCountingAssociation
	case KindWindowMultiplicity:
		return KindCountingMultiplicity
	case KindWindowShardedMembership:
		return KindWindowMembership
	case KindWindowShardedAssociation:
		return KindWindowAssociation
	case KindWindowShardedMultiplicity:
		return KindWindowMultiplicity
	}
	return KindInvalid
}

// WindowKind maps a base kind to the window kind whose generations it
// would back: membership kinds to their membership window, the
// association and multiplicity kinds to the windows over their counting
// variants, and the sharded kinds to the sharded window compositions.
// Kinds with no streaming rotation semantics (the static build-time
// association forms, the SCM sketch, t-shift) return an error.
func WindowKind(inner Kind) (Kind, error) {
	switch inner {
	case KindMembership:
		return KindWindowMembership, nil
	case KindAssociation, KindCountingAssociation:
		return KindWindowAssociation, nil
	case KindMultiplicity, KindCountingMultiplicity:
		return KindWindowMultiplicity, nil
	case KindShardedMembership:
		return KindWindowShardedMembership, nil
	case KindShardedAssociation:
		return KindWindowShardedAssociation, nil
	case KindShardedMultiplicity:
		return KindWindowShardedMultiplicity, nil
	}
	return KindInvalid, fmt.Errorf("core: no sliding-window form of %s filters", inner)
}

// ParseKind maps a canonical kind name (the String form, e.g.
// "counting-multiplicity") to its Kind.
func ParseKind(name string) (Kind, error) {
	for k := KindMembership; k < kindMax; k++ {
		if kindNames[k] == name {
			return k, nil
		}
	}
	return KindInvalid, fmt.Errorf("core: unknown filter kind %q (want one of %s)",
		name, strings.Join(kindNames[KindMembership:], ", "))
}

// Spec is a filter's complete construction geometry: one value that
// names the kind and every parameter it needs, so a single constructor
// — shbf.New — can build any filter of the framework, and any built
// filter can report the Spec that reconstructs its empty twin.
//
// Field applicability follows the paper's notation. Fields that do not
// apply to a Spec's Kind must be zero; misapplied fields are rejected
// with an error rather than silently ignored.
type Spec struct {
	// Kind selects the filter instantiation.
	Kind Kind

	// M is the base array size in bits. For sharded kinds it is the
	// total bit budget across all shards; for the SCM sketch it is r,
	// the base counters per physical row.
	M int

	// K is the number of bit positions examined per element (even for
	// the membership kinds). For the SCM sketch it is d, the logical
	// depth (even; comparable to a CM sketch with d rows).
	K int

	// C is the maximum multiplicity (multiplicity kinds only; the
	// paper uses 57).
	C int

	// T is the number of shifted offsets per hash group (tshift only;
	// t = 1 is the ShBF_M construction).
	T int

	// G is the number of sets (multi-association only; 2 ≤ g ≤ 5).
	G int

	// Shards is the shard count for sharded kinds (rounded up to a
	// power of two by construction).
	Shards int

	// Generations is the ring length G of the window kinds: writes go
	// to the head generation and a rotation retires the oldest, so the
	// filter answers over a sliding window of the last G−1..G ticks.
	// Window kinds require G ≥ 2; the field must be zero elsewhere.
	Generations int

	// Tick is the window kinds' wall-clock rotation period, honored by
	// RotateIfDue and the shbfd -tick loop. Zero means rotation is
	// driven explicitly via Rotate. The field must be zero on
	// non-window kinds.
	Tick time.Duration

	// Seed derives the filter's hash functions; equal specs build
	// identical filters. Every value — including zero — is a valid
	// seed and is honored exactly, so New(f.Spec()) always rebuilds
	// f's hash functions. (The typed constructors fall back to a
	// package default only when no WithSeed option is given.)
	Seed uint64

	// CounterWidth is the counter bit width of the counting kinds and
	// the SCM sketch. Zero selects the default (4 bits; 32 for the
	// SCM sketch).
	CounterWidth uint

	// MaxOffset overrides the maximum offset value w̄ for the
	// offset-windowed kinds. Zero selects DefaultMaxOffset.
	MaxOffset int

	// UnsafeUpdates selects the paper's Section 5.3.1 update mode
	// (counting-multiplicity kinds only).
	UnsafeUpdates bool
}

// Options converts the Spec's option-shaped fields (seed, counter
// width, max offset, unsafe updates) to the Option list the per-kind
// constructors take. The seed is always emitted — zero is a valid
// seed, not "unset" — while the other zero-valued fields contribute
// no option, so the per-kind allowlist sees exactly what the Spec
// set.
func (s Spec) Options() []Option {
	opts := []Option{WithSeed(s.Seed)}
	if s.MaxOffset != 0 {
		opts = append(opts, WithMaxOffset(s.MaxOffset))
	}
	if s.CounterWidth != 0 {
		opts = append(opts, WithCounterWidth(s.CounterWidth))
	}
	if s.UnsafeUpdates {
		opts = append(opts, WithUnsafeUpdates())
	}
	return opts
}

// Validate checks kind-specific structural fields (the geometry that is
// passed positionally, not via options): C only on multiplicity kinds,
// T only on tshift, G only on multi-association, Shards only on sharded
// kinds. Constructors check the values themselves; Validate rejects
// fields that would otherwise be silently ignored.
func (s Spec) Validate() error {
	if !s.Kind.Valid() {
		return fmt.Errorf("core: spec has invalid kind %s", s.Kind)
	}
	if s.C != 0 && !s.Kind.Multiplicity() {
		return fmt.Errorf("core: spec field C does not apply to %s filters", s.Kind)
	}
	if s.T != 0 && s.Kind != KindTShift {
		return fmt.Errorf("core: spec field T does not apply to %s filters", s.Kind)
	}
	if s.G != 0 && s.Kind != KindMultiAssociation {
		return fmt.Errorf("core: spec field G does not apply to %s filters", s.Kind)
	}
	if s.Shards != 0 && !s.Kind.Sharded() {
		return fmt.Errorf("core: spec field Shards does not apply to %s filters", s.Kind)
	}
	if s.Kind.Sharded() && s.Shards < 1 {
		return fmt.Errorf("core: %s spec needs Shards ≥ 1", s.Kind)
	}
	if s.Generations != 0 && !s.Kind.Windowed() {
		return fmt.Errorf("core: spec field Generations does not apply to %s filters", s.Kind)
	}
	if s.Tick != 0 && !s.Kind.Windowed() {
		return fmt.Errorf("core: spec field Tick does not apply to %s filters", s.Kind)
	}
	if s.Kind.Windowed() {
		if s.Generations < 2 {
			return fmt.Errorf("core: %s spec needs Generations ≥ 2, got %d", s.Kind, s.Generations)
		}
		if s.Tick < 0 {
			return fmt.Errorf("core: %s spec has negative Tick %s", s.Kind, s.Tick)
		}
	}
	return nil
}

// Stats is the uniform occupancy snapshot every filter kind reports.
type Stats struct {
	// Kind is the reporting filter's kind.
	Kind Kind
	// N is the number of stored elements: distinct elements for the
	// membership and multiplicity kinds, summed set cardinalities for
	// the association kinds, and -1 when the filter tracks no exact
	// set (the SCM sketch, unsafe counting multiplicity).
	N int
	// SizeBytes is the total footprint of the filter's arrays.
	SizeBytes int
	// FillRatio is the fraction of set bits in the query-side array
	// (0 for the SCM sketch, which has no bit array).
	FillRatio float64
	// Shards is the shard count (0 for the monolithic core kinds).
	Shards int
}

// --- per-kind Kind/Spec/Stats ---------------------------------------------

// Kind returns KindMembership.
func (f *Membership) Kind() Kind { return KindMembership }

// Spec returns the construction geometry; New(f.Spec()) builds an
// empty filter identical to f before any Add.
func (f *Membership) Spec() Spec {
	return Spec{Kind: KindMembership, M: f.m, K: f.k, MaxOffset: f.wbar, Seed: f.seed}
}

// Stats returns the occupancy snapshot.
func (f *Membership) Stats() Stats {
	return Stats{Kind: KindMembership, N: f.n, SizeBytes: f.SizeBytes(), FillRatio: f.FillRatio()}
}

// Kind returns KindCountingMembership.
func (c *CountingMembership) Kind() Kind { return KindCountingMembership }

// Spec returns the construction geometry.
func (c *CountingMembership) Spec() Spec {
	s := c.filter.Spec()
	s.Kind = KindCountingMembership
	s.CounterWidth = c.counts.Width()
	return s
}

// Stats returns the occupancy snapshot.
func (c *CountingMembership) Stats() Stats {
	return Stats{Kind: KindCountingMembership, N: c.N(), SizeBytes: c.SizeBytes(),
		FillRatio: c.filter.FillRatio()}
}

// Kind returns KindTShift.
func (f *TShift) Kind() Kind { return KindTShift }

// Spec returns the construction geometry.
func (f *TShift) Spec() Spec {
	return Spec{Kind: KindTShift, M: f.m, K: f.k, T: f.t, MaxOffset: f.wbar, Seed: f.seed}
}

// Stats returns the occupancy snapshot.
func (f *TShift) Stats() Stats {
	return Stats{Kind: KindTShift, N: f.n, SizeBytes: f.bits.SizeBytes(), FillRatio: f.FillRatio()}
}

// SizeBytes returns the filter's bit-array footprint.
func (f *TShift) SizeBytes() int { return f.bits.SizeBytes() }

// Kind returns KindAssociation.
func (a *Association) Kind() Kind { return KindAssociation }

// Spec returns the construction geometry (the sets themselves are not
// part of the Spec; New builds the empty filter).
func (a *Association) Spec() Spec {
	return Spec{Kind: KindAssociation, M: a.m, K: a.k, MaxOffset: a.wbar, Seed: a.seed}
}

// Stats returns the occupancy snapshot; N sums the two set sizes.
func (a *Association) Stats() Stats {
	return Stats{Kind: KindAssociation, N: a.n1 + a.n2, SizeBytes: a.SizeBytes(),
		FillRatio: a.FillRatio()}
}

// Kind returns KindCountingAssociation.
func (a *CountingAssociation) Kind() Kind { return KindCountingAssociation }

// Spec returns the construction geometry.
func (a *CountingAssociation) Spec() Spec {
	return Spec{Kind: KindCountingAssociation, M: a.m, K: a.k, MaxOffset: a.wbar,
		Seed: a.seed, CounterWidth: a.counts.Width()}
}

// Stats returns the occupancy snapshot; N sums the two set sizes.
func (a *CountingAssociation) Stats() Stats {
	return Stats{Kind: KindCountingAssociation, N: a.N1() + a.N2(), SizeBytes: a.SizeBytes(),
		FillRatio: a.FillRatio()}
}

// Kind returns KindMultiAssociation.
func (a *MultiAssociation) Kind() Kind { return KindMultiAssociation }

// Spec returns the construction geometry.
func (a *MultiAssociation) Spec() Spec {
	return Spec{Kind: KindMultiAssociation, M: a.m, K: a.k, G: a.g, MaxOffset: a.wbar, Seed: a.seed}
}

// Stats returns the occupancy snapshot; N sums the g set sizes.
func (a *MultiAssociation) Stats() Stats {
	n := 0
	for _, sz := range a.sizes {
		n += sz
	}
	return Stats{Kind: KindMultiAssociation, N: n, SizeBytes: a.SizeBytes(),
		FillRatio: a.bits.FillRatio()}
}

// FillRatio returns the fraction of set bits.
func (a *MultiAssociation) FillRatio() float64 { return a.bits.FillRatio() }

// Kind returns KindMultiplicity.
func (f *Multiplicity) Kind() Kind { return KindMultiplicity }

// Spec returns the construction geometry.
func (f *Multiplicity) Spec() Spec {
	return Spec{Kind: KindMultiplicity, M: f.m, K: f.k, C: f.c, Seed: f.seed}
}

// Stats returns the occupancy snapshot.
func (f *Multiplicity) Stats() Stats {
	return Stats{Kind: KindMultiplicity, N: f.n, SizeBytes: f.SizeBytes(), FillRatio: f.FillRatio()}
}

// Kind returns KindCountingMultiplicity.
func (f *CountingMultiplicity) Kind() Kind { return KindCountingMultiplicity }

// Spec returns the construction geometry.
func (f *CountingMultiplicity) Spec() Spec {
	return Spec{Kind: KindCountingMultiplicity, M: f.m, K: f.k, C: f.c, Seed: f.seed,
		CounterWidth: f.counts.Width(), UnsafeUpdates: f.table == nil}
}

// Stats returns the occupancy snapshot (N is -1 in the unsafe mode).
func (f *CountingMultiplicity) Stats() Stats {
	return Stats{Kind: KindCountingMultiplicity, N: f.N(), SizeBytes: f.SizeBytes(),
		FillRatio: f.FillRatio()}
}

// Kind returns KindSCMSketch.
func (s *SCMSketch) Kind() Kind { return KindSCMSketch }

// Spec returns the construction geometry (M is the row width r, K the
// logical depth d).
func (s *SCMSketch) Spec() Spec {
	return Spec{Kind: KindSCMSketch, M: s.r, K: s.d, Seed: s.seed,
		CounterWidth: s.rows[0].Width()}
}

// Stats returns the occupancy snapshot. The sketch tracks no exact
// element set (N = -1) and has no bit array (FillRatio = 0).
func (s *SCMSketch) Stats() Stats {
	return Stats{Kind: KindSCMSketch, N: -1, SizeBytes: s.SizeBytes()}
}
