package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"shbf"
	"shbf/internal/wire"
)

// Namespace is a handle on one tenant: a factory for the typed query
// handles ([Namespace.Set], [Namespace.Counter],
// [Namespace.Associator], [Namespace.Window]) plus tenant-level
// operations (stats, rotation).
type Namespace struct {
	c    *Client
	name string
}

// Name returns the namespace this handle addresses.
func (ns *Namespace) Name() string { return ns.name }

// WithContext returns a handle on the same namespace whose calls are
// bounded by ctx (see [Client.WithContext]). Typed handles created
// from it inherit the bound:
//
//	set := c.Namespace("tenant-a").WithContext(ctx).Set()
func (ns *Namespace) WithContext(ctx context.Context) *Namespace {
	return &Namespace{c: ns.c.WithContext(ctx), name: ns.name}
}

// Stats fetches the namespace's occupancy/accuracy snapshot.
func (ns *Namespace) Stats() (Stats, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(resp.Blob, &st); err != nil {
		return Stats{}, fmt.Errorf("client: decoding stats: %w", err)
	}
	return st, nil
}

// Rotate retires the namespace's oldest window generation, returning
// the rotated filters and the new epoch. Rotating a non-windowed
// namespace is a conflict (IsConflict).
func (ns *Namespace) Rotate() ([]string, uint64, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpRotate})
	if err != nil {
		return nil, 0, err
	}
	return append([]string(nil), resp.Rotated...), resp.Epoch, nil
}

// MembershipEnvelope exports the namespace's membership filter as a
// raw ShBE envelope — the anti-entropy payload to [Namespace.Merge]
// into a replica (GET /v2/namespaces/{ns}/membership/envelope).
func (ns *Namespace) MembershipEnvelope() ([]byte, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpMembershipDump})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// Merge unions an uploaded ShBE membership envelope (as exported by
// [Namespace.MembershipEnvelope] on a replica of the same Spec + seed)
// into the namespace's live filter, returning the source filter's
// element count. Mismatched geometry or seed is a conflict
// (IsConflict), as is a windowed namespace.
func (ns *Namespace) Merge(envelope []byte) (uint64, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpMembershipMerge, Blob: envelope})
	if err != nil {
		return 0, err
	}
	return resp.Applied, nil
}

// MultiplicityEnvelope exports the namespace's multiplicity filter as
// a raw ShBE envelope — the counting-state analogue of
// [Namespace.MembershipEnvelope], and the payload edge agents in count
// mode flush upstream (GET /v2/namespaces/{ns}/multiplicity/envelope).
func (ns *Namespace) MultiplicityEnvelope() ([]byte, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpMultiplicityDump})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// MergeMultiplicity unions an uploaded ShBE multiplicity envelope (as
// exported by [Namespace.MultiplicityEnvelope] on a replica or edge
// agent of the same Spec + seed) into the namespace's live counting
// filter by counter-wise saturating add: merged counts report at least
// the larger of the two sides' multiplicities, never an underestimate.
// Returns the source filter's element count. Mismatched geometry or
// seed is a conflict (IsConflict), as is a windowed namespace.
func (ns *Namespace) MergeMultiplicity(envelope []byte) (uint64, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpMultiplicityMerge, Blob: envelope})
	if err != nil {
		return 0, err
	}
	return resp.Applied, nil
}

// Freeze compacts the namespace's membership filter into a read-only
// ShBZ frozen container (POST /v2/namespaces/{ns}/freeze) and returns
// the container bytes — open them locally with shbf.OpenFrozen for
// zero-copy queries, or persist them for a stack file. From the first
// freeze on the namespace is read-only: every write answers a conflict
// (IsConflict) until the namespace is deleted and recreated. Repeating
// the freeze is idempotent and returns the same bytes.
func (ns *Namespace) Freeze() ([]byte, error) {
	resp, err := ns.do(&wire.Request{Op: wire.OpFreeze})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// do stamps the namespace onto a request and runs it.
func (ns *Namespace) do(req *wire.Request) (*wire.Response, error) {
	req.Namespace = ns.name
	return ns.c.do(req)
}

// keyWidth returns the shared key length when every key has it (the
// packed fixed-width encoding), else 0 (per-key length prefixes).
func keyWidth(keys [][]byte) int {
	if len(keys) == 0 {
		return 0
	}
	w := len(keys[0])
	if w == 0 || w > wire.MaxKeyWidth {
		return 0
	}
	for _, k := range keys[1:] {
		if len(k) != w {
			return 0
		}
	}
	return w
}

// errBox is the sticky first-error store behind the interface-shaped
// (error-less) handle methods.
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) record(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// --- Set ------------------------------------------------------------------

// Set is the remote membership handle; it satisfies shbf.Set against
// the namespace's sharded ShBF_M.
type Set struct {
	ns  *Namespace
	err errBox
}

var _ shbf.Set = (*Set)(nil)

// Set returns the namespace's membership handle.
func (ns *Namespace) Set() *Set { return &Set{ns: ns} }

// AddAll inserts a batch of keys.
func (s *Set) AddAll(keys [][]byte) error {
	_, err := s.ns.do(&wire.Request{Op: wire.OpMembershipAdd, KeyWidth: keyWidth(keys), Keys: keys})
	return err
}

// ContainsAll answers membership for a batch, appending to dst (the
// library's dst convention). On a transport failure it answers false
// for every key and records the error ([Set.Err]); use [Set.Check]
// for an explicit error.
func (s *Set) ContainsAll(dst []bool, keys [][]byte) []bool {
	res, err := s.Check(keys)
	if err != nil {
		s.err.record(err)
		res = make([]bool, len(keys))
	}
	return append(dst, res...)
}

// Check is ContainsAll with an error return.
func (s *Set) Check(keys [][]byte) ([]bool, error) {
	resp, err := s.ns.do(&wire.Request{Op: wire.OpMembershipContains, KeyWidth: keyWidth(keys), Keys: keys})
	if err != nil {
		return nil, err
	}
	if len(resp.Bools) != len(keys) {
		return nil, fmt.Errorf("client: %d answers for %d keys", len(resp.Bools), len(keys))
	}
	return append([]bool(nil), resp.Bools...), nil
}

// Add inserts one key, recording any error ([Set.Err]).
func (s *Set) Add(e []byte) { s.err.record(s.AddAll([][]byte{e})) }

// Contains answers one key (false on transport failure, recorded in
// [Set.Err]).
func (s *Set) Contains(e []byte) bool {
	res, err := s.Check([][]byte{e})
	if err != nil {
		s.err.record(err)
		return false
	}
	return res[0]
}

// Err returns the first error recorded by the error-less interface
// methods (nil if none).
func (s *Set) Err() error { return s.err.get() }

// --- Counter --------------------------------------------------------------

// Counter is the remote multiplicity handle; it satisfies shbf.Counter
// and shbf.Updatable against the namespace's sharded CShBF_X.
type Counter struct {
	ns  *Namespace
	err errBox
}

var (
	_ shbf.Counter   = (*Counter)(nil)
	_ shbf.Updatable = (*Counter)(nil)
	_ shbf.Adder     = (*Counter)(nil)
)

// Counter returns the namespace's multiplicity handle.
func (ns *Namespace) Counter() *Counter { return &Counter{ns: ns} }

// Insert increments one key's multiplicity.
func (c *Counter) Insert(e []byte) error { return c.InsertCount(e, 1) }

// Delete decrements one key's multiplicity; deleting an absent key is
// a conflict (IsConflict).
func (c *Counter) Delete(e []byte) error {
	keys := [][]byte{e}
	_, err := c.ns.do(&wire.Request{Op: wire.OpMultiplicityRemove, KeyWidth: keyWidth(keys), Keys: keys})
	return err
}

// InsertCount increments one key's multiplicity by n; exceeding the
// namespace's maximum count c is a conflict with the applied prefix in
// *Error.Applied.
func (c *Counter) InsertCount(e []byte, n int) error {
	if n < 0 {
		return fmt.Errorf("client: negative count %d", n)
	}
	keys := [][]byte{e}
	_, err := c.ns.do(&wire.Request{Op: wire.OpMultiplicityAdd, KeyWidth: keyWidth(keys),
		Keys: keys, Counts: []int{n}})
	return err
}

// AddAll increments each key once (the shbf.Adder shape).
func (c *Counter) AddAll(keys [][]byte) error {
	_, err := c.ns.do(&wire.Request{Op: wire.OpMultiplicityAdd, KeyWidth: keyWidth(keys), Keys: keys})
	return err
}

// CountAll answers multiplicities for a batch, appending to dst. On
// transport failure it answers 0 per key and records the error
// ([Counter.Err]); use [Counter.Counts] for an explicit error.
func (c *Counter) CountAll(dst []int, keys [][]byte) []int {
	res, err := c.Counts(keys)
	if err != nil {
		c.err.record(err)
		res = make([]int, len(keys))
	}
	return append(dst, res...)
}

// Counts is CountAll with an error return.
func (c *Counter) Counts(keys [][]byte) ([]int, error) {
	resp, err := c.ns.do(&wire.Request{Op: wire.OpMultiplicityCount, KeyWidth: keyWidth(keys), Keys: keys})
	if err != nil {
		return nil, err
	}
	if len(resp.Counts) != len(keys) {
		return nil, fmt.Errorf("client: %d answers for %d keys", len(resp.Counts), len(keys))
	}
	return append([]int(nil), resp.Counts...), nil
}

// Count answers one key's multiplicity (0 on transport failure,
// recorded in [Counter.Err]).
func (c *Counter) Count(e []byte) int {
	res, err := c.Counts([][]byte{e})
	if err != nil {
		c.err.record(err)
		return 0
	}
	return res[0]
}

// Err returns the first error recorded by the error-less interface
// methods (nil if none).
func (c *Counter) Err() error { return c.err.get() }

// --- Associator -----------------------------------------------------------

// Associator is the remote two-set association handle; it satisfies
// shbf.Associator against the namespace's sharded CShBF_A.
type Associator struct {
	ns  *Namespace
	err errBox
}

var _ shbf.Associator = (*Associator)(nil)

// Associator returns the namespace's association handle.
func (ns *Namespace) Associator() *Associator { return &Associator{ns: ns} }

// update applies one association op to a batch.
func (a *Associator) update(op byte, set int, keys [][]byte) error {
	if set != 1 && set != 2 {
		return fmt.Errorf("client: set must be 1 or 2, got %d", set)
	}
	_, err := a.ns.do(&wire.Request{Op: op, Set: byte(set), KeyWidth: keyWidth(keys), Keys: keys})
	return err
}

// InsertAll adds a batch of keys to set 1 or 2.
func (a *Associator) InsertAll(set int, keys [][]byte) error {
	return a.update(wire.OpAssociationAdd, set, keys)
}

// DeleteAll removes a batch of keys from set 1 or 2; removing an
// absent key is a conflict with the applied prefix in *Error.Applied.
func (a *Associator) DeleteAll(set int, keys [][]byte) error {
	return a.update(wire.OpAssociationRemove, set, keys)
}

// InsertS1 adds one key to S1 (scalar forms mirror the library's
// CountingAssociation surface).
func (a *Associator) InsertS1(e []byte) error { return a.InsertAll(1, [][]byte{e}) }

// InsertS2 adds one key to S2.
func (a *Associator) InsertS2(e []byte) error { return a.InsertAll(2, [][]byte{e}) }

// DeleteS1 removes one key from S1.
func (a *Associator) DeleteS1(e []byte) error { return a.DeleteAll(1, [][]byte{e}) }

// DeleteS2 removes one key from S2.
func (a *Associator) DeleteS2(e []byte) error { return a.DeleteAll(2, [][]byte{e}) }

// QueryAll classifies a batch, appending to dst. On transport failure
// it answers the empty region per key and records the error
// ([Associator.Err]); use [Associator.Classify] for an explicit error.
func (a *Associator) QueryAll(dst []shbf.Region, keys [][]byte) []shbf.Region {
	res, err := a.Classify(keys)
	if err != nil {
		a.err.record(err)
		res = make([]shbf.Region, len(keys))
	}
	return append(dst, res...)
}

// Classify is QueryAll with an error return.
func (a *Associator) Classify(keys [][]byte) ([]shbf.Region, error) {
	resp, err := a.ns.do(&wire.Request{Op: wire.OpAssociationQuery, KeyWidth: keyWidth(keys), Keys: keys})
	if err != nil {
		return nil, err
	}
	if len(resp.Regions) != len(keys) {
		return nil, fmt.Errorf("client: %d answers for %d keys", len(resp.Regions), len(keys))
	}
	out := make([]shbf.Region, len(resp.Regions))
	for i, r := range resp.Regions {
		out[i] = shbf.Region(r)
	}
	return out, nil
}

// Query classifies one key (the empty region on transport failure,
// recorded in [Associator.Err]).
func (a *Associator) Query(e []byte) shbf.Region {
	res, err := a.Classify([][]byte{e})
	if err != nil {
		a.err.record(err)
		return shbf.RegionNone
	}
	return res[0]
}

// Err returns the first error recorded by the error-less interface
// methods (nil if none).
func (a *Associator) Err() error { return a.err.get() }

// --- Window ---------------------------------------------------------------

// Window is the remote rotation handle of a windowed namespace; it
// satisfies shbf.Windowed. Rotate retires the namespace's oldest
// generation on the daemon. RotateIfDue applies the namespace's
// configured tick locally (fetched once from the daemon), so a client
// process can own the rotation cadence the way a local serving loop
// would — deploy exactly one such clock owner per namespace, or use
// shbfd's -tick loop and never call it.
type Window struct {
	ns *Namespace

	mu        sync.Mutex
	tick      time.Duration
	tickKnown bool
	last      time.Time
	err       error
}

var _ shbf.Windowed = (*Window)(nil)

// Window returns the namespace's rotation handle.
func (ns *Namespace) Window() *Window { return &Window{ns: ns} }

// Rotate retires the namespace's oldest generation now.
func (w *Window) Rotate() error {
	_, _, err := w.ns.Rotate()
	return err
}

// Info fetches the window's rotation snapshot (ring length, epoch,
// tick, per-generation occupancy). A non-windowed namespace is an
// error.
func (w *Window) Info() (shbf.WindowInfo, error) {
	st, err := w.ns.Stats()
	if err != nil {
		return shbf.WindowInfo{}, err
	}
	ws := st.Membership.Window
	if ws == nil {
		return shbf.WindowInfo{}, errors.New("client: namespace is not windowed")
	}
	in := shbf.WindowInfo{
		Generations:   ws.Generations,
		Epoch:         ws.Epoch,
		Tick:          time.Duration(ws.TickSeconds * float64(time.Second)),
		PerGeneration: make([]shbf.WindowGenInfo, len(ws.PerGeneration)),
	}
	for i, g := range ws.PerGeneration {
		in.PerGeneration[i] = shbf.WindowGenInfo{N: g.N, FillRatio: g.FillRatio}
	}
	return in, nil
}

// Window implements shbf.Windowed; it is [Window.Info] with the zero
// snapshot on failure (recorded in [Window.Err]).
func (w *Window) Window() shbf.WindowInfo {
	in, err := w.Info()
	if err != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
	}
	return in
}

// RotateIfDue rotates once when the namespace's configured tick has
// elapsed since the last due rotation (the first call arms the clock,
// fetching the tick from the daemon), reporting whether it rotated.
// It mirrors the library's RotateIfDue contract: pass time.Now() from
// a serving loop, synthetic times from tests.
func (w *Window) RotateIfDue(now time.Time) (bool, error) {
	w.mu.Lock()
	if !w.tickKnown {
		w.mu.Unlock()
		in, err := w.Info()
		if err != nil {
			return false, err
		}
		w.mu.Lock()
		if !w.tickKnown {
			w.tick, w.tickKnown = in.Tick, true
		}
	}
	due := false
	if w.tick > 0 {
		switch {
		case w.last.IsZero():
			w.last = now
		case now.Sub(w.last) >= w.tick:
			w.last = now
			due = true
		}
	}
	w.mu.Unlock()
	if !due {
		return false, nil
	}
	if err := w.Rotate(); err != nil {
		return false, err
	}
	return true, nil
}

// Err returns the first error recorded by [Window.Window] (nil if
// none).
func (w *Window) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
