package experiment

import "time"

// Config scales the paper's workloads to the host running them. The
// paper's own parameters (7M probes, 1M-element sets) target minutes of
// wall-clock per figure; Default reproduces every shape in seconds,
// Quick in milliseconds (for tests). Scale multiplies set sizes and
// probe counts where the paper's absolute sizes are impractical; the
// per-figure m/n/k sweeps themselves are kept at the paper's values
// whenever they are laptop-sized (Figures 7–9 use the paper's exact
// m, n, k).
type Config struct {
	// Seed makes every workload and filter deterministic.
	Seed int64
	// Trials is the number of repetitions averaged for statistical
	// measurements (the paper repeats speed experiments 1000×; FPR-style
	// measurements here use large probe counts instead).
	Trials int
	// Probes is the number of negative probes per FPR measurement
	// point (the paper uses 7,000,000).
	Probes int
	// AssocSetSize is |S1| = |S2| for Figure 10 (the paper uses 1M).
	AssocSetSize int
	// MultisetSize is the number of distinct elements for Figure 11
	// (the paper uses 100,000).
	MultisetSize int
	// MinTiming is the minimum wall-clock per throughput measurement.
	MinTiming time.Duration
}

// Default returns the standard reproduction configuration (seconds per
// figure on a laptop).
func Default() Config {
	return Config{
		Seed:         1,
		Trials:       3,
		Probes:       400000,
		AssocSetSize: 100000,
		MultisetSize: 100000,
		MinTiming:    100 * time.Millisecond,
	}
}

// Quick returns a configuration small enough for unit tests while still
// exhibiting every qualitative shape.
func Quick() Config {
	return Config{
		Seed:         1,
		Trials:       1,
		Probes:       30000,
		AssocSetSize: 8000,
		MultisetSize: 8000,
		MinTiming:    4 * time.Millisecond,
	}
}
