// Package sizing turns accuracy targets into filter geometries, using
// the paper's optima: k_opt ≈ 0.7009·m/n and f_min ≈ 0.6204^{m/n} for
// ShBF_M (Section 3.4.2, Equation 7), P(clear) = (1−0.5^k)² for ShBF_A
// (Table 2), and the Equation 26–28 correctness rates for ShBF_X.
//
// These helpers answer the question every deployment starts with:
// "I have n elements and need accuracy X — how many bits and hash
// functions?"
package sizing

import (
	"fmt"
	"math"
	"time"

	"shbf/internal/analytic"
	"shbf/internal/core"
)

// MembershipPlan is a sized ShBF_M configuration.
type MembershipPlan struct {
	M            int     // bits (excluding the w̄−1 slack the filter adds)
	K            int     // bit positions per element (even)
	MaxOffset    int     // w̄ the plan was sized for
	PredictedFPR float64 // Equation 1 at (M, K, n)
	BitsPerElem  float64
}

// Spec returns the construction spec the plan sizes, ready to feed
// shbf.New. The kind is KindMembership; callers wanting the counting
// or sharded variant of the same geometry change Kind (and set Shards)
// before building.
func (p MembershipPlan) Spec() core.Spec {
	return core.Spec{Kind: core.KindMembership, M: p.M, K: p.K, MaxOffset: p.MaxOffset}
}

// Membership returns the smallest ShBF_M geometry whose Equation 1
// false-positive rate is at most target for n elements, with w̄ = wbar
// (pass core.DefaultMaxOffset for the standard 57).
func Membership(n int, target float64, wbar int) (MembershipPlan, error) {
	if n <= 0 {
		return MembershipPlan{}, fmt.Errorf("sizing: n = %d must be positive", n)
	}
	if target <= 0 || target >= 1 {
		return MembershipPlan{}, fmt.Errorf("sizing: target FPR %v out of (0,1)", target)
	}
	if wbar < 2 || wbar > 64 {
		return MembershipPlan{}, fmt.Errorf("sizing: w̄ = %d out of [2,64]", wbar)
	}
	// Start from the minimum-FPR relation f_min ≈ 0.6204^{m/n}
	// (Equation 7) and grow m until the even-k optimum meets the target
	// (the relation is approximate; the loop makes it exact under
	// Equation 1).
	ratio := math.Log(target) / math.Log(0.6204)
	m := int(math.Ceil(ratio * float64(n)))
	if m < n {
		m = n
	}
	for iter := 0; iter < 64; iter++ {
		k := evenK(analytic.OptimalKShBFM(m, n, wbar))
		fpr := analytic.FPRShBFM(m, n, float64(k), wbar)
		if fpr <= target {
			return MembershipPlan{
				M:            m,
				K:            k,
				MaxOffset:    wbar,
				PredictedFPR: fpr,
				BitsPerElem:  float64(m) / float64(n),
			}, nil
		}
		// Grow by ~5% per step; the FPR decays exponentially in m/n so
		// convergence is fast.
		m += m/20 + 1
	}
	return MembershipPlan{}, fmt.Errorf("sizing: did not converge for target %v", target)
}

// evenK rounds a continuous optimum to the nearest even k ≥ 2 (ShBF_M
// splits k into hash pairs).
func evenK(k float64) int {
	ek := 2 * int(math.Round(k/2))
	if ek < 2 {
		ek = 2
	}
	return ek
}

// AssociationPlan is a sized ShBF_A configuration.
type AssociationPlan struct {
	M              int     // bits
	K              int     // hash functions
	PredictedClear float64 // (1−0.5^k)² at optimal fill
	BitsPerElem    float64
}

// Spec returns the construction spec the plan sizes, ready to feed
// shbf.New (or BuildAssociation via its M and K). The kind is
// KindAssociation; change it to the counting or sharded variant for
// dynamic sets of the same geometry.
func (p AssociationPlan) Spec() core.Spec {
	return core.Spec{Kind: core.KindAssociation, M: p.M, K: p.K}
}

// Association returns the geometry for which ShBF_A answers clearly
// with probability at least target, for nDistinct = |S1 ∪ S2| elements.
// The filter is sized at the paper's optimum m = n′·k/ln 2, making the
// per-region phantom probability 0.5^k (Table 2).
func Association(nDistinct int, target float64) (AssociationPlan, error) {
	if nDistinct <= 0 {
		return AssociationPlan{}, fmt.Errorf("sizing: n = %d must be positive", nDistinct)
	}
	if target <= 0 || target >= 1 {
		return AssociationPlan{}, fmt.Errorf("sizing: target clear probability %v out of (0,1)", target)
	}
	// (1−q)² ≥ target ⇔ q ≤ 1−√target, q = 0.5^k.
	q := 1 - math.Sqrt(target)
	k := int(math.Ceil(math.Log2(1 / q)))
	if k < 1 {
		k = 1
	}
	m := int(math.Ceil(float64(nDistinct) * float64(k) / math.Ln2))
	return AssociationPlan{
		M:              m,
		K:              k,
		PredictedClear: analytic.ClearProbShBFA(k),
		BitsPerElem:    float64(m) / float64(nDistinct),
	}, nil
}

// WindowPlan is a sized sliding-window membership configuration: the
// per-generation ShBF_M geometry plus the ring length, produced by
// [Window]. It replaces the manual recipe of dividing the window
// target by G by hand (OPERATIONS.md §5): a window query passes if any
// of the G generations false-positives, so the per-generation budget
// is 1−(1−target)^(1/G) ≈ target/G, evaluated at one tick's worth of
// keys — the load a generation accumulates while it is the write head.
type WindowPlan struct {
	// Generation is the per-generation geometry, sized at nPerTick
	// keys and the derived per-generation FPR budget.
	Generation MembershipPlan
	// Generations is the ring length G.
	Generations int
	// PredictedWindowFPR is the window bound 1−(1−f_gen)^G at the
	// generation plan's predicted rate (analytic.FPRWindow).
	PredictedWindowFPR float64
	// TotalBits is the steady-state footprint, G × Generation.M.
	TotalBits int
}

// Spec returns the per-generation construction spec (KindMembership) —
// the base Spec to pass to shbf.NewWindow together with WindowOpts
// {Generations: p.Generations, Tick: ...}. Change Kind (and set
// Shards) for the sharded composition of the same geometry.
func (p WindowPlan) Spec() core.Spec { return p.Generation.Spec() }

// WindowSpec returns the complete sliding-window spec
// (KindWindowMembership with the ring length and tick attached), ready
// to feed shbf.New directly.
func (p WindowPlan) WindowSpec(tick time.Duration) core.Spec {
	s := p.Generation.Spec()
	s.Kind = core.KindWindowMembership
	s.Generations = p.Generations
	s.Tick = tick
	return s
}

// Window sizes a sliding-window membership filter: nPerTick is the
// expected insert rate per rotation period (the keys one generation
// accumulates as the write head), g the ring length, target the
// whole-window false-positive bound, wbar the maximum offset (pass
// core.DefaultMaxOffset for the standard 57). The returned plan's
// per-generation FPR budget is 1−(1−target)^(1/g), so the union over
// the ring stays at or below target.
func Window(nPerTick, g int, target float64, wbar int) (WindowPlan, error) {
	if g < 2 {
		return WindowPlan{}, fmt.Errorf("sizing: window needs g ≥ 2 generations, got %d", g)
	}
	if target <= 0 || target >= 1 {
		return WindowPlan{}, fmt.Errorf("sizing: target window FPR %v out of (0,1)", target)
	}
	// Per-generation budget via expm1/log1p: for sub-epsilon targets
	// the naive 1−(1−t)^(1/g) underflows to 0.
	perGen := -math.Expm1(math.Log1p(-target) / float64(g))
	gen, err := Membership(nPerTick, perGen, wbar)
	if err != nil {
		return WindowPlan{}, err
	}
	return WindowPlan{
		Generation:         gen,
		Generations:        g,
		PredictedWindowFPR: analytic.FPRWindow(gen.PredictedFPR, g),
		TotalBits:          g * gen.M,
	}, nil
}

// MultiplicityPlan is a sized ShBF_X configuration.
type MultiplicityPlan struct {
	M           int     // bits
	K           int     // hash functions
	C           int     // maximum multiplicity the plan was sized for
	PredictedCR float64 // worst case: Equation 27, (1−f0)^c
	BitsPerElem float64
}

// Spec returns the construction spec the plan sizes, ready to feed
// shbf.New. The kind is KindMultiplicity; change it to the counting or
// sharded variant for dynamic counts of the same geometry.
func (p MultiplicityPlan) Spec() core.Spec {
	return core.Spec{Kind: core.KindMultiplicity, M: p.M, K: p.K, C: p.C}
}

// Multiplicity returns a geometry whose worst-case correctness rate
// (a non-member probed against all c candidate positions, Equation 27)
// is at least target, for n distinct elements and maximum count c.
func Multiplicity(n, c int, target float64) (MultiplicityPlan, error) {
	if n <= 0 {
		return MultiplicityPlan{}, fmt.Errorf("sizing: n = %d must be positive", n)
	}
	if c < 1 || c > 64 {
		return MultiplicityPlan{}, fmt.Errorf("sizing: c = %d out of [1,64]", c)
	}
	if target <= 0 || target >= 1 {
		return MultiplicityPlan{}, fmt.Errorf("sizing: target CR %v out of (0,1)", target)
	}
	// (1−f0)^c ≥ target ⇔ f0 ≤ 1−target^{1/c}. With m = α·nk/ln2 and
	// k = ln2·m/n, f0 = 0.5^k, so pick k then m.
	f0Max := 1 - math.Pow(target, 1/float64(c))
	k := int(math.Ceil(math.Log2(1 / f0Max)))
	if k < 1 {
		k = 1
	}
	m := int(math.Ceil(float64(n) * float64(k) / math.Ln2))
	// The integer k may overshoot f0 below the bound; verify and nudge m
	// upward if rounding left us short.
	for analytic.CRNonMember(m, n, k, c) < target {
		m += m / 20
	}
	return MultiplicityPlan{
		M:           m,
		K:           k,
		C:           c,
		PredictedCR: analytic.CRNonMember(m, n, k, c),
		BitsPerElem: float64(m) / float64(n),
	}, nil
}
