package baseline

import (
	"errors"
	"fmt"

	"shbf/internal/hashing"
)

// ErrFilterFull is returned by CuckooFilter.Insert when the relocation
// chain exceeds the kick budget — the "non-negligible probability of
// failing when inserting" the paper attributes to cuckoo filters
// (Section 2.1).
var ErrFilterFull = errors.New("baseline: cuckoo filter full")

const (
	cuckooSlotsPerBucket = 4
	cuckooMaxKicks       = 500
)

// CuckooFilter is the cuckoo filter of Fan et al. [10], the related-work
// membership alternative of Section 2.1: buckets of four 8-bit
// fingerprints with partial-key cuckoo hashing. Supports deletion
// without counters, at the cost of insert failures near capacity.
type CuckooFilter struct {
	buckets  [][cuckooSlotsPerBucket]uint8
	nBuckets int
	hasher   hashing.Hasher
	fpHasher hashing.Hasher
	n        int
	kickRNG  uint64 // deterministic eviction-slot chooser
}

// NewCuckooFilter returns a filter with capacity for roughly n elements
// at 95% load. The bucket count is rounded up to a power of two so the
// partial-key XOR trick preserves the two-bucket invariant.
func NewCuckooFilter(n int, opts ...Option) (*CuckooFilter, error) {
	cfg := applyOptions(opts)
	if n < 1 {
		return nil, fmt.Errorf("baseline: capacity %d must be ≥ 1", n)
	}
	nBuckets := 1
	for nBuckets*cuckooSlotsPerBucket < n+n/8 {
		nBuckets *= 2
	}
	return &CuckooFilter{
		buckets:  make([][cuckooSlotsPerBucket]uint8, nBuckets),
		nBuckets: nBuckets,
		hasher:   hashing.New(cfg.seed),
		fpHasher: hashing.New(cfg.seed + 1),
		kickRNG:  cfg.seed | 1,
	}, nil
}

// N returns the number of stored elements.
func (f *CuckooFilter) N() int { return f.n }

// SizeBytes returns the fingerprint-table footprint.
func (f *CuckooFilter) SizeBytes() int { return f.nBuckets * cuckooSlotsPerBucket }

// fingerprint returns a non-zero 8-bit fingerprint (zero marks an empty
// slot).
func (f *CuckooFilter) fingerprint(e []byte) uint8 {
	fp := uint8(f.fpHasher.Sum64(e))
	if fp == 0 {
		fp = 1
	}
	return fp
}

// indices returns the element's two candidate buckets.
func (f *CuckooFilter) indices(e []byte) (i1, i2 int, fp uint8) {
	fp = f.fingerprint(e)
	i1 = int(f.hasher.Sum64(e) & uint64(f.nBuckets-1))
	i2 = f.altIndex(i1, fp)
	return i1, i2, fp
}

// altIndex computes the partner bucket: i XOR hash(fp).
func (f *CuckooFilter) altIndex(i int, fp uint8) int {
	return (i ^ int(f.fpHasher.Sum64([]byte{fp}))) & (f.nBuckets - 1)
}

// Insert adds e, relocating fingerprints as needed. ErrFilterFull is
// returned after cuckooMaxKicks failed relocations.
func (f *CuckooFilter) Insert(e []byte) error {
	i1, i2, fp := f.indices(e)
	if f.placeIn(i1, fp) || f.placeIn(i2, fp) {
		f.n++
		return nil
	}
	// Evict: random walk starting from a random one of the two buckets.
	i := i1
	if f.nextRand()&1 == 1 {
		i = i2
	}
	for kick := 0; kick < cuckooMaxKicks; kick++ {
		slot := int(f.nextRand() % cuckooSlotsPerBucket)
		fp, f.buckets[i][slot] = f.buckets[i][slot], fp
		i = f.altIndex(i, fp)
		if f.placeIn(i, fp) {
			f.n++
			return nil
		}
	}
	return ErrFilterFull
}

// placeIn stores fp in any empty slot of bucket i.
func (f *CuckooFilter) placeIn(i int, fp uint8) bool {
	for s := range f.buckets[i] {
		if f.buckets[i][s] == 0 {
			f.buckets[i][s] = fp
			return true
		}
	}
	return false
}

// Contains reports whether e may be stored (two bucket reads).
func (f *CuckooFilter) Contains(e []byte) bool {
	i1, i2, fp := f.indices(e)
	return f.bucketHas(i1, fp) || f.bucketHas(i2, fp)
}

// Delete removes one copy of e's fingerprint, reporting whether one was
// found. Deleting a never-inserted element can remove a colliding
// fingerprint — the documented cuckoo-filter caveat.
func (f *CuckooFilter) Delete(e []byte) bool {
	i1, i2, fp := f.indices(e)
	for _, i := range [2]int{i1, i2} {
		for s := range f.buckets[i] {
			if f.buckets[i][s] == fp {
				f.buckets[i][s] = 0
				f.n--
				return true
			}
		}
	}
	return false
}

func (f *CuckooFilter) bucketHas(i int, fp uint8) bool {
	b := &f.buckets[i]
	return b[0] == fp || b[1] == fp || b[2] == fp || b[3] == fp
}

// nextRand steps a SplitMix64 sequence for eviction choices, keeping
// inserts deterministic for a given seed.
func (f *CuckooFilter) nextRand() uint64 {
	return hashing.SplitMix64(&f.kickRNG)
}

// LoadFactor returns the fraction of occupied slots.
func (f *CuckooFilter) LoadFactor() float64 {
	return float64(f.n) / float64(f.nBuckets*cuckooSlotsPerBucket)
}
