package server

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// windowConfig is testConfig in window mode.
func windowConfig(g int) Config {
	cfg := testConfig()
	cfg.WindowGenerations = g
	return cfg
}

// TestWindowModeEndToEnd drives the daemon's sliding window over HTTP:
// keys answer true for G−1 rotations after their tick and expire on
// the Gth; counts drain tick by tick.
func TestWindowModeEndToEnd(t *testing.T) {
	const g = 3
	ts := newTestServer(t, windowConfig(g))

	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"flow-a"}}, 200, nil)
	post(t, ts.URL+"/v1/multiplicity/add", map[string]any{"items": []map[string]any{
		{"key": "pkt", "count": 4},
	}}, 200, nil)

	var res struct {
		Results []bool `json:"results"`
	}
	var rot struct {
		Rotated []string `json:"rotated"`
		Epoch   uint64   `json:"epoch"`
	}
	for r := 0; r < g-1; r++ {
		post(t, ts.URL+"/v1/membership/contains", map[string]any{"keys": []string{"flow-a"}}, 200, &res)
		if !res.Results[0] {
			t.Fatalf("key expired after %d rotations, want %d", r, g)
		}
		post(t, ts.URL+"/v1/rotate", map[string]any{}, 200, &rot)
		if len(rot.Rotated) != 3 {
			t.Fatalf("rotated %v, want all three filters", rot.Rotated)
		}
		if rot.Epoch != uint64(r+1) {
			t.Fatalf("epoch %d after %d rotations", rot.Epoch, r+1)
		}
	}
	post(t, ts.URL+"/v1/rotate", map[string]any{}, 200, &rot)
	post(t, ts.URL+"/v1/membership/contains", map[string]any{"keys": []string{"flow-a"}}, 200, &res)
	if res.Results[0] {
		t.Fatalf("key still answers true after %d rotations", g)
	}
	var cnt struct {
		Counts []int `json:"counts"`
	}
	post(t, ts.URL+"/v1/multiplicity/count", map[string]any{"keys": []string{"pkt"}}, 200, &cnt)
	if cnt.Counts[0] != 0 {
		t.Fatalf("count %d after full expiry", cnt.Counts[0])
	}
}

// TestRotateWithoutWindowIsConflict: /v1/rotate against classic
// unbounded filters is a client error, not a silent no-op.
func TestRotateWithoutWindowIsConflict(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v1/rotate", map[string]any{}, 409, nil)
}

// TestWindowStatsMetadata: /v1/stats carries the ring metadata for all
// three filters, with per-generation occupancy newest-first, and omits
// it for classic configs.
func TestWindowStatsMetadata(t *testing.T) {
	cfg := windowConfig(4)
	cfg.WindowTick = 90 * time.Second
	ts := newTestServer(t, cfg)

	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"k1", "k2"}}, 200, nil)
	post(t, ts.URL+"/v1/rotate", map[string]any{}, 200, nil)
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"k3"}}, 200, nil)

	var st Stats
	get(t, ts.URL+"/v1/stats", &st)
	for name, w := range map[string]*WindowStats{
		"membership":   st.Membership.Window,
		"association":  st.Association.Window,
		"multiplicity": st.Multiplicity.Window,
	} {
		if w == nil {
			t.Fatalf("%s stats lack window metadata", name)
		}
		if w.Generations != 4 || w.Epoch != 1 {
			t.Fatalf("%s window %+v, want 4 generations at epoch 1", name, w)
		}
		if w.TickSeconds != 90 {
			t.Fatalf("%s tick %gs, want 90", name, w.TickSeconds)
		}
		if len(w.PerGeneration) != 4 {
			t.Fatalf("%s has %d generation entries", name, len(w.PerGeneration))
		}
	}
	if n := st.Membership.Window.PerGeneration[0].N; n != 1 {
		t.Fatalf("head generation N = %d, want 1 (newest first)", n)
	}
	if n := st.Membership.Window.PerGeneration[1].N; n != 2 {
		t.Fatalf("previous generation N = %d, want 2", n)
	}
	if st.Queries["rotations"] != 1 {
		t.Fatalf("rotations counter = %d", st.Queries["rotations"])
	}

	classic := newTestServer(t, testConfig())
	var st2 Stats
	get(t, classic.URL+"/v1/stats", &st2)
	if st2.Membership.Window != nil {
		t.Fatal("classic config reports window metadata")
	}
}

// TestStatsReflectRestoredSnapshot is the stats-after-snapshot-load
// regression test: occupancy, estimated FPR inputs, and window epoch
// in /v1/stats must come from the live (restored) filters, never from
// the filters built at startup — including when the snapshot's
// geometry diverges from the flags.
func TestStatsReflectRestoredSnapshot(t *testing.T) {
	cfg := windowConfig(3)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	ts := newTestServer(t, cfg)

	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": keys}, 200, nil)
	post(t, ts.URL+"/v1/rotate", map[string]any{}, 200, nil)
	post(t, ts.URL+"/v1/rotate", map[string]any{}, 200, nil)
	post(t, ts.URL+"/v1/snapshot", map[string]any{}, 200, nil)

	// Restart with DIVERGENT flags: different bit budget and no window
	// mode. The snapshot must win, and stats must describe it.
	cfg2 := testConfig()
	cfg2.MembershipBits = 1 << 16
	cfg2.SnapshotPath = cfg.SnapshotPath
	ts2 := newTestServer(t, cfg2)

	var st Stats
	get(t, ts2.URL+"/v1/stats", &st)
	if st.Membership.N != 500 {
		t.Fatalf("restored stats N = %d, want 500 (stats read startup filters, not restored ones?)",
			st.Membership.N)
	}
	if st.Membership.TotalBits != 1<<18 {
		t.Fatalf("restored stats report %d bits, want the snapshot's %d", st.Membership.TotalBits, 1<<18)
	}
	if st.Membership.Window == nil {
		t.Fatal("restored windowed filter lost its window metadata in stats")
	}
	if st.Membership.Window.Epoch != 2 {
		t.Fatalf("restored epoch %d, want 2 from the snapshot", st.Membership.Window.Epoch)
	}
	if st.Membership.FillRatio <= 0 {
		t.Fatal("restored fill ratio is zero — stats not reading live filters")
	}

	// The restored ring must also keep rotating: one more rotation
	// expires the 500 keys (inserted 2 rotations before the snapshot).
	post(t, ts2.URL+"/v1/rotate", map[string]any{}, 200, nil)
	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts2.URL+"/v1/membership/contains", map[string]any{"keys": keys[:10]}, 200, &res)
	for i, hit := range res.Results {
		if hit {
			t.Fatalf("key %d survived %d rotations in the restored ring", i, 3)
		}
	}
	get(t, ts2.URL+"/v1/stats", &st)
	if st.Membership.Window.Epoch != 3 {
		t.Fatalf("epoch %d after restored rotation, want 3", st.Membership.Window.Epoch)
	}
}

// TestStatsReflectRestoredClassicSnapshot covers the inverse
// direction: a classic (non-window) snapshot restored into a daemon
// started with -window must surface the classic filters' stats (no
// window section) — the snapshot wins.
func TestStatsReflectRestoredClassicSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	ts := newTestServer(t, cfg)
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"a", "b"}}, 200, nil)
	post(t, ts.URL+"/v1/snapshot", map[string]any{}, 200, nil)

	cfg2 := windowConfig(4)
	cfg2.SnapshotPath = cfg.SnapshotPath
	ts2 := newTestServer(t, cfg2)
	var st Stats
	get(t, ts2.URL+"/v1/stats", &st)
	if st.Membership.N != 2 {
		t.Fatalf("restored stats N = %d, want 2", st.Membership.N)
	}
	if st.Membership.Window != nil {
		t.Fatal("classic snapshot restored but stats claim window mode")
	}
	post(t, ts2.URL+"/v1/rotate", map[string]any{}, 409, nil)
}

// TestWindowSnapshotRoundTripsEpochOnRestart: a windowed daemon's
// normal restart path (same config) resumes the ring mid-rotation.
func TestWindowSnapshotRoundTripsEpochOnRestart(t *testing.T) {
	cfg := windowConfig(3)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	ts := newTestServer(t, cfg)

	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"old"}}, 200, nil)
	post(t, ts.URL+"/v1/rotate", map[string]any{}, 200, nil)
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"new"}}, 200, nil)
	post(t, ts.URL+"/v1/snapshot", map[string]any{}, 200, nil)

	ts2 := newTestServer(t, cfg)
	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts2.URL+"/v1/membership/contains", map[string]any{"keys": []string{"old", "new"}}, 200, &res)
	if !res.Results[0] || !res.Results[1] {
		t.Fatalf("restart lost window contents: %v", res.Results)
	}
	// Two more rotations: "old" (1 rotation deep at snapshot) expires,
	// "new" (head at snapshot) survives exactly until the third.
	post(t, ts2.URL+"/v1/rotate", map[string]any{}, 200, nil)
	post(t, ts2.URL+"/v1/rotate", map[string]any{}, 200, nil)
	post(t, ts2.URL+"/v1/membership/contains", map[string]any{"keys": []string{"old", "new"}}, 200, &res)
	if res.Results[0] {
		t.Fatal("old key survived 3 rotations after restart")
	}
	if !res.Results[1] {
		t.Fatal("new key expired one rotation early after restart")
	}
}

// TestConfigRejectsNegativeGenerations: a negative window setting must
// fail construction, not silently fall back to unbounded filters.
func TestConfigRejectsNegativeGenerations(t *testing.T) {
	cfg := testConfig()
	cfg.WindowGenerations = -3
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted WindowGenerations = -3")
	}
}
