package main

// cluster.go implements the -serve-cluster mode: the scale-out
// benchmark for cluster mode. It boots a real 3-node shbfd cluster and
// a single-node baseline in-process (internal/clustertest — real
// loopback TCP both ways), preloads the same member set into each, and
// measures three things:
//
//   - single: batch ContainsAll/AddAll against one daemon holding the
//     whole member set — the baseline a scale-out must beat.
//   - fanout3: the same batches through the routing client
//     (client.DialCluster: split by owner range, parallel fan-out,
//     reassembly). This is a wall-clock number and only shows parallel
//     speedup when the bench host has at least as many cores as nodes;
//     the report records CPUs so the number can be read accordingly.
//   - pernode/aggregate: each node serving 4096-key batches of its own
//     key share over a direct client, summed across nodes. Cluster
//     nodes deploy on separate machines, so the sum is the cluster's
//     offered capacity independent of how many cores this bench host
//     happens to have — the machine-independent scale-out measure.
//
// Methodology matches -serve: every case is measured with
// testing.Benchmark, the suite runs clusterRuns times with related
// cases adjacent within each pass, and the minimum per case across
// runs is reported (interleaved min-of-N).
//
// With -serve-cluster-min-speedup > 0, the run exits nonzero unless
// the cluster's aggregate ContainsAll capacity at 4096-key batches is
// at least that multiple of the single-node keys/sec.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"shbf/client"
	"shbf/internal/clustertest"
	"shbf/internal/flowkeys"
	"shbf/internal/hashing"
	"shbf/internal/server"
)

// clusterRuns is the interleaved repetition count (min per case wins).
const clusterRuns = 3

// clusterBatches are the request batch sizes measured. Fan-out pays a
// fixed coordination cost per batch, so the small end shows the
// break-even and the large end the scale-out win.
var clusterBatches = []int{256, 4096}

// clusterNodes is the scale-out width under test.
const clusterNodes = 3

// clusterResult is one (topology, op, batch) measurement.
type clusterResult struct {
	Name       string  `json:"name"`
	Topology   string  `json:"topology"` // single | fanout3 | pernode/<id>
	Op         string  `json:"op"`       // ContainsAll | AddAll
	Batch      int     `json:"batch"`
	NsPerOp    float64 `json:"ns_per_op"`
	NsPerKey   float64 `json:"ns_per_key"`
	KeysPerSec float64 `json:"keys_per_sec"`
	Iterations int     `json:"iterations"`
}

// clusterComparison is one rollup ratio.
type clusterComparison struct {
	Name    string  `json:"name"`
	Op      string  `json:"op"`
	Batch   int     `json:"batch"`
	Speedup float64 `json:"speedup_vs_single"`
}

// clusterReport is the BENCH_PR6.json document.
type clusterReport struct {
	Schema      string              `json:"schema"`
	GeneratedAt string              `json:"generated_at"`
	GoVersion   string              `json:"go_version"`
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	CPUs        int                 `json:"cpus"`
	KeyBytes    int                 `json:"key_bytes"`
	Nodes       int                 `json:"nodes"`
	Replication int                 `json:"replication"`
	Runs        int                 `json:"runs"`
	Note        string              `json:"note"`
	Results     []clusterResult     `json:"results"`
	Comparisons []clusterComparison `json:"comparisons"`
}

// runClusterBench measures the suite and writes the report;
// minSpeedup > 0 additionally gates the aggregate ContainsAll @4096.
func runClusterBench(outPath, note string, minSpeedup float64) error {
	cfg := server.DefaultConfig()

	c3, err := clustertest.StartNodes(clustertest.Options{
		Nodes: clusterNodes, Replication: 1, Config: cfg})
	if err != nil {
		return err
	}
	defer c3.Stop()
	c1, err := clustertest.StartNodes(clustertest.Options{
		Nodes: 1, Replication: 1, Config: cfg})
	if err != nil {
		return err
	}
	defer c1.Stop()

	clusterCl, err := client.DialCluster(c3.SeedAddr())
	if err != nil {
		return err
	}
	defer clusterCl.Close()
	singleCl, err := client.Dial(c1.Nodes[0].ShBPAddr)
	if err != nil {
		return err
	}
	defer singleCl.Close()

	// Workload: the serving benchmark's member set and 50/50 probe mix,
	// loaded identically into both topologies (the cluster load itself
	// runs through the router, splitting by owner range).
	const nMembers = 1 << 16
	_, pool := flowkeys.Keys(3 * nMembers)
	members := pool[:nMembers]
	clusterNS := clusterCl.Namespace("default")
	singleSet := singleCl.Namespace("").Set()
	if err := clusterNS.AddAll(members); err != nil {
		return err
	}
	if err := singleSet.AddAll(members); err != nil {
		return err
	}
	probes := append([][]byte{}, pool[nMembers:2*nMembers]...)
	for i := 0; i < len(probes); i += 2 {
		probes[i] = members[i]
	}
	addPool := pool[2*nMembers:]

	// Per-node probe shares, routed the way the cluster routes: digest
	// high lane against the map's ranges.
	shares := map[string][][]byte{}
	for _, k := range probes {
		id := c3.Map.RangeFor(hashing.KeyDigest(k).Hi).Owners[0]
		shares[id] = append(shares[id], k)
	}

	type benchCase struct {
		topology string
		op       string
		batch    int
		body     func(b *testing.B)
	}
	// Cases ordered so one (op, batch)'s topologies run back to back
	// within each pass.
	var cases []benchCase
	for _, batch := range clusterBatches {
		batch := batch
		query := probes[:batch]
		add := addPool[:batch]
		cases = append(cases,
			benchCase{"single", "ContainsAll", batch, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := singleSet.Check(query); err != nil {
						b.Fatal(err)
					}
				}
			}},
			benchCase{"fanout3", "ContainsAll", batch, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := clusterNS.Check(query); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
		for _, n := range c3.Nodes {
			share := shares[n.ID]
			if len(share) < batch {
				return fmt.Errorf("node %s share %d < batch %d", n.ID, len(share), batch)
			}
			nodeQuery := share[:batch]
			nodeSet := clusterCl.Client(n.ID).Namespace("default").Set()
			cases = append(cases, benchCase{"pernode/" + n.ID, "ContainsAll", batch, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := nodeSet.Check(nodeQuery); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
		cases = append(cases,
			benchCase{"single", "AddAll", batch, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := singleSet.AddAll(add); err != nil {
						b.Fatal(err)
					}
				}
			}},
			benchCase{"fanout3", "AddAll", batch, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := clusterNS.AddAll(add); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}

	best := make([]testing.BenchmarkResult, len(cases))
	for run := 0; run < clusterRuns; run++ {
		for i, c := range cases {
			r := testing.Benchmark(c.body)
			if run == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}

	report := clusterReport{
		Schema:      "shbf-cluster-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		KeyBytes:    flowkeys.KeyBytes,
		Nodes:       clusterNodes,
		Replication: 1,
		Runs:        clusterRuns,
		Note:        note,
	}
	keysPerSec := map[string]float64{}
	for i, c := range cases {
		r := best[i]
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := clusterResult{
			Name:       fmt.Sprintf("%s/%s/%d", c.topology, c.op, c.batch),
			Topology:   c.topology,
			Op:         c.op,
			Batch:      c.batch,
			NsPerOp:    ns,
			NsPerKey:   ns / float64(c.batch),
			KeysPerSec: float64(c.batch) / (ns / 1e9),
			Iterations: r.N,
		}
		report.Results = append(report.Results, res)
		keysPerSec[res.Name] = res.KeysPerSec
	}
	for _, batch := range clusterBatches {
		single := keysPerSec[fmt.Sprintf("single/ContainsAll/%d", batch)]
		if single <= 0 {
			continue
		}
		var aggregate float64
		for _, n := range c3.Nodes {
			aggregate += keysPerSec[fmt.Sprintf("pernode/%s/ContainsAll/%d", n.ID, batch)]
		}
		report.Comparisons = append(report.Comparisons,
			clusterComparison{Name: "aggregate-capacity", Op: "ContainsAll", Batch: batch,
				Speedup: aggregate / single},
			clusterComparison{Name: "fanout-wall-clock", Op: "ContainsAll", Batch: batch,
				Speedup: keysPerSec[fmt.Sprintf("fanout3/ContainsAll/%d", batch)] / single})
		if sa := keysPerSec[fmt.Sprintf("single/AddAll/%d", batch)]; sa > 0 {
			report.Comparisons = append(report.Comparisons,
				clusterComparison{Name: "fanout-wall-clock", Op: "AddAll", Batch: batch,
					Speedup: keysPerSec[fmt.Sprintf("fanout3/AddAll/%d", batch)] / sa})
		}
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster bench → %s (%d CPUs)\n", outPath, report.CPUs)
	for _, res := range report.Results {
		fmt.Printf("  %-32s %10.0f keys/s  %7.1f ns/key\n", res.Name, res.KeysPerSec, res.NsPerKey)
	}
	for _, cmp := range report.Comparisons {
		fmt.Printf("  %-20s %-12s @%-5d %.2f× single-node\n", cmp.Name, cmp.Op, cmp.Batch, cmp.Speedup)
	}

	if minSpeedup > 0 {
		var aggregate float64
		for _, n := range c3.Nodes {
			aggregate += keysPerSec[fmt.Sprintf("pernode/%s/ContainsAll/4096", n.ID)]
		}
		gate := aggregate / keysPerSec["single/ContainsAll/4096"]
		if gate < minSpeedup {
			return fmt.Errorf("cluster aggregate ContainsAll@4096 is %.2f× single-node, below the %.1f× gate", gate, minSpeedup)
		}
		fmt.Printf("gate: cluster aggregate ContainsAll@4096 = %.2f× single-node (≥ %.1f×) ok\n", gate, minSpeedup)
	}
	return nil
}
