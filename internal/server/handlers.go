package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"shbf/internal/core"
)

// maxBodyBytes bounds a request body; batches beyond this should be
// split by the client.
const maxBodyBytes = 32 << 20

// keyBatch is the common request shape: a batch of element keys, read
// as raw bytes ("encoding": "raw", the default) or base64
// ("encoding": "base64") for binary IDs like the paper's 13-byte
// 5-tuple flow IDs.
type keyBatch struct {
	Keys     []string `json:"keys"`
	Encoding string   `json:"encoding,omitempty"`
}

// countedItem is one multiplicity update: count defaults to 1.
type countedItem struct {
	Key   string `json:"key"`
	Count int    `json:"count,omitempty"`
}

type countedBatch struct {
	Items    []countedItem `json:"items"`
	Encoding string        `json:"encoding,omitempty"`
}

// setBatch targets one of the two association sets.
type setBatch struct {
	Set      int      `json:"set"`
	Keys     []string `json:"keys"`
	Encoding string   `json:"encoding,omitempty"`
}

// decodeKey maps one wire key to element bytes.
func decodeKey(key, encoding string) ([]byte, error) {
	switch encoding {
	case "", "raw":
		return []byte(key), nil
	case "base64":
		return base64.StdEncoding.DecodeString(key)
	default:
		return nil, fmt.Errorf("unknown encoding %q (want raw or base64)", encoding)
	}
}

// decodeKeys maps the wire keys to element byte strings.
func decodeKeys(keys []string, encoding string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		b, err := decodeKey(k, encoding)
		if err != nil {
			return nil, fmt.Errorf("key %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// readJSON decodes the request body into dst, rejecting oversized and
// malformed bodies.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more useful to do than drop it.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// updateStatus maps a filter update error to an HTTP status: capacity
// conditions are the client's to handle (409), anything else is a
// server fault.
func updateStatus(err error) int {
	if errors.Is(err, core.ErrCountOverflow) ||
		errors.Is(err, core.ErrCounterSaturated) ||
		errors.Is(err, core.ErrNotStored) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// --- membership -----------------------------------------------------------

func (s *Server) handleMembershipAdd(w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The batch path takes each shard lock once for the whole request
	// instead of once per key.
	if err := s.mem.AddAll(keys); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.stats.membershipAdd.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]int{"added": len(keys)})
}

func (s *Server) handleMembershipContains(w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results := s.mem.ContainsAll(make([]bool, 0, len(keys)), keys)
	s.stats.membershipContains.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// --- association ----------------------------------------------------------

// regionAnswer is the JSON shape of one classify result. Candidates
// lists the possible atomic regions ("s1-only", "both", "s2-only"); an
// empty list is a definite non-member of both sets. Clear mirrors the
// paper's "clear answer" (exactly one candidate).
type regionAnswer struct {
	Region     string   `json:"region"`
	Candidates []string `json:"candidates"`
	Clear      bool     `json:"clear"`
	InS1       bool     `json:"in_s1"`
	InS2       bool     `json:"in_s2"`
}

func regionJSON(r core.Region) regionAnswer {
	cands := make([]string, 0, 3)
	if r.Contains(core.RegionS1Only) {
		cands = append(cands, "s1-only")
	}
	if r.Contains(core.RegionBoth) {
		cands = append(cands, "both")
	}
	if r.Contains(core.RegionS2Only) {
		cands = append(cands, "s2-only")
	}
	return regionAnswer{
		Region:     r.String(),
		Candidates: cands,
		Clear:      r.Clear(),
		InS1:       r.InS1(),
		InS2:       r.InS2(),
	}
}

// applySetBatch validates a setBatch and applies op1/op2 per key.
func (s *Server) applySetBatch(w http.ResponseWriter, r *http.Request, op1, op2 func([]byte) error) {
	var req setBatch
	if !readJSON(w, r, &req) {
		return
	}
	if req.Set != 1 && req.Set != 2 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("set must be 1 or 2, got %d", req.Set))
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	op := op1
	if req.Set == 2 {
		op = op2
	}
	for i, k := range keys {
		if err := op(k); err != nil {
			// Earlier keys in the batch stay applied; report the split
			// point so the client can resume.
			writeJSON(w, updateStatus(err), map[string]any{
				"error":   err.Error(),
				"applied": i,
			})
			return
		}
	}
	s.stats.associationUpdate.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(keys)})
}

func (s *Server) handleAssociationAdd(w http.ResponseWriter, r *http.Request) {
	s.applySetBatch(w, r, s.assoc.InsertS1, s.assoc.InsertS2)
}

func (s *Server) handleAssociationRemove(w http.ResponseWriter, r *http.Request) {
	s.applySetBatch(w, r, s.assoc.DeleteS1, s.assoc.DeleteS2)
}

func (s *Server) handleAssociationClassify(w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	regions := s.assoc.QueryAll(make([]core.Region, 0, len(keys)), keys)
	results := make([]regionAnswer, len(keys))
	for i, r := range regions {
		results[i] = regionJSON(r)
	}
	s.stats.associationQuery.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// --- multiplicity ---------------------------------------------------------

// applyCountedBatch applies op count-times per item (count defaults to
// 1).
func (s *Server) applyCountedBatch(w http.ResponseWriter, r *http.Request, op func([]byte) error) {
	var req countedBatch
	if !readJSON(w, r, &req) {
		return
	}
	applied := 0
	for i, item := range req.Items {
		key, err := decodeKey(item.Key, req.Encoding)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("item %d: %w", i, err))
			return
		}
		count := item.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("item %d: negative count %d", i, count))
			return
		}
		for j := 0; j < count; j++ {
			if err := op(key); err != nil {
				writeJSON(w, updateStatus(err), map[string]any{
					"error":   fmt.Sprintf("item %d: %s", i, err),
					"applied": applied,
				})
				return
			}
			applied++
		}
	}
	s.stats.multiplicityUpdate.Add(uint64(applied))
	writeJSON(w, http.StatusOK, map[string]int{"applied": applied})
}

func (s *Server) handleMultiplicityAdd(w http.ResponseWriter, r *http.Request) {
	s.applyCountedBatch(w, r, s.mult.Insert)
}

func (s *Server) handleMultiplicityRemove(w http.ResponseWriter, r *http.Request) {
	s.applyCountedBatch(w, r, s.mult.Delete)
}

func (s *Server) handleMultiplicityCount(w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	counts := s.mult.CountAll(make([]int, 0, len(keys)), keys)
	s.stats.multiplicityQuery.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]any{"counts": counts})
}

// --- snapshot -------------------------------------------------------------

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeError(w, http.StatusConflict, errors.New("no snapshot path configured (start shbfd with -snapshot)"))
		return
	}
	n, err := s.SaveSnapshot(s.cfg.SnapshotPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.stats.snapshots.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"path": s.cfg.SnapshotPath, "bytes": n})
}
