package shbf_test

import (
	"bytes"
	"fmt"
	"testing"

	"shbf"
)

// populatedFilters builds one filter per Kind, loaded with data, plus a
// query function that fingerprints the filter's answers over a probe
// set — so an envelope round-trip can be checked for identical query
// results, not just identical geometry.
func populatedFilters(t *testing.T) []struct {
	f     shbf.Filter
	query func(shbf.Filter) string
} {
	t.Helper()
	keys := make([][]byte, 400)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%04d", i))
	}
	members := keys[:200]

	fingerprint := func(f shbf.Filter) string {
		var buf bytes.Buffer
		switch q := f.(type) {
		case shbf.Set:
			for _, e := range keys {
				fmt.Fprintf(&buf, "%v,", q.Contains(e))
			}
		case shbf.Counter:
			for _, e := range keys {
				fmt.Fprintf(&buf, "%d,", q.Count(e))
			}
		case shbf.Associator:
			for _, e := range keys {
				fmt.Fprintf(&buf, "%v,", q.Query(e))
			}
		case interface{ Contains(e []byte) bool }: // counting membership
			for _, e := range keys {
				fmt.Fprintf(&buf, "%v,", q.Contains(e))
			}
		case *shbf.MultiAssociation:
			for _, e := range keys {
				fmt.Fprintf(&buf, "%d,", q.Query(e).Region())
			}
		case *shbf.SCMSketch:
			for _, e := range keys {
				fmt.Fprintf(&buf, "%d,", q.Count(e))
			}
		default:
			t.Fatalf("no fingerprint for %s", f.Kind())
		}
		return buf.String()
	}

	var out []struct {
		f     shbf.Filter
		query func(shbf.Filter) string
	}
	add := func(f shbf.Filter, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			f     shbf.Filter
			query func(shbf.Filter) string
		}{f, fingerprint})
	}

	m, err := shbf.NewMembership(8192, 6, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	m.AddAll(members)
	add(m, nil)

	cm, err := shbf.NewCountingMembership(8192, 6, shbf.WithSeed(5), shbf.WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.AddAll(members); err != nil {
		t.Fatal(err)
	}
	add(cm, nil)

	ts, err := shbf.NewTShift(8192, 6, 2, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	ts.AddAll(members)
	add(ts, nil)

	add(shbf.BuildAssociation(members, keys[150:300], 8192, 4, shbf.WithSeed(5)))

	ca, err := shbf.NewCountingAssociation(8192, 4, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range members {
		if err := ca.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range keys[150:300] {
		if err := ca.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}
	add(ca, nil)

	add(shbf.BuildMultiAssociation([][][]byte{keys[:150], keys[100:250], keys[200:350]},
		8192, 4, shbf.WithSeed(5)))

	x, err := shbf.NewMultiplicity(16384, 4, 57, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range members {
		if err := x.AddWithCount(e, i%57+1); err != nil {
			t.Fatal(err)
		}
	}
	add(x, nil)

	cx, err := shbf.NewCountingMultiplicity(16384, 4, 57, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := cx.AddAll(members); err != nil {
		t.Fatal(err)
	}
	if err := cx.AddAll(members[:50]); err != nil {
		t.Fatal(err)
	}
	add(cx, nil)

	scm, err := shbf.NewSCMSketch(4, 4096, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	scm.AddAll(members)
	add(scm, nil)

	sm, err := shbf.NewShardedMembership(1<<16, 6, 8, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	sm.AddAll(members)
	add(sm, nil)

	sa, err := shbf.NewShardedAssociation(1<<16, 4, 8, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range members {
		if err := sa.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	add(sa, nil)

	sx, err := shbf.NewShardedMultiplicity(1<<17, 4, 57, 8, shbf.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.AddAll(members); err != nil {
		t.Fatal(err)
	}
	add(sx, nil)

	// The six window kinds, populated across a rotation so the ShBW
	// container's head/epoch state is exercised, not just its ring.
	wopts := shbf.WindowOpts{Generations: 3}
	addWindow := func(base shbf.Spec, fill func(shbf.Filter, [][]byte)) {
		t.Helper()
		f, err := shbf.NewWindow(base, wopts)
		if err != nil {
			t.Fatal(err)
		}
		fill(f, members[:120])
		if err := f.(shbf.Windowed).Rotate(); err != nil {
			t.Fatal(err)
		}
		fill(f, keys[150:300])
		add(f, nil)
	}
	fillSet := func(f shbf.Filter, batch [][]byte) {
		t.Helper()
		if err := f.(shbf.Set).AddAll(batch); err != nil {
			t.Fatal(err)
		}
	}
	fillCount := func(f shbf.Filter, batch [][]byte) {
		t.Helper()
		if err := f.(shbf.Adder).AddAll(batch); err != nil {
			t.Fatal(err)
		}
	}
	fillAssoc := func(f shbf.Filter, batch [][]byte) {
		t.Helper()
		a := f.(interface {
			InsertS1(e []byte) error
			InsertS2(e []byte) error
		})
		for i, e := range batch {
			var err error
			if i%2 == 0 {
				err = a.InsertS1(e)
			} else {
				err = a.InsertS2(e)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	addWindow(shbf.Spec{Kind: shbf.KindMembership, M: 8192, K: 6, Seed: 5}, fillSet)
	addWindow(shbf.Spec{Kind: shbf.KindCountingAssociation, M: 8192, K: 4, Seed: 5}, fillAssoc)
	addWindow(shbf.Spec{Kind: shbf.KindCountingMultiplicity, M: 16384, K: 4, C: 57, Seed: 5}, fillCount)
	addWindow(shbf.Spec{Kind: shbf.KindShardedMembership, M: 1 << 16, K: 6, Shards: 8, Seed: 5}, fillSet)
	addWindow(shbf.Spec{Kind: shbf.KindShardedAssociation, M: 1 << 16, K: 4, Shards: 8, Seed: 5}, fillAssoc)
	addWindow(shbf.Spec{Kind: shbf.KindShardedMultiplicity, M: 1 << 17, K: 4, C: 57, Shards: 8, Seed: 5}, fillCount)

	return out
}

// TestEnvelopeRoundTripEveryKind is the acceptance gate for the
// self-describing envelope: Load(Dump(f)) reconstructs every Kind with
// identical query results, with no out-of-band type knowledge.
func TestEnvelopeRoundTripEveryKind(t *testing.T) {
	for _, tc := range populatedFilters(t) {
		t.Run(tc.f.Kind().String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := shbf.Dump(&buf, tc.f); err != nil {
				t.Fatal(err)
			}
			got, err := shbf.Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind() != tc.f.Kind() {
				t.Fatalf("loaded kind %s, want %s", got.Kind(), tc.f.Kind())
			}
			if got.Spec() != tc.f.Spec() {
				t.Fatalf("loaded spec %+v, want %+v", got.Spec(), tc.f.Spec())
			}
			if want, have := tc.query(tc.f), tc.query(got); want != have {
				t.Fatal("query results changed across Dump/Load")
			}
		})
	}
}

// TestEnvelopeConcatenation: envelopes are self-delimiting, so Decode
// walks a concatenated stream (the daemon snapshot format).
func TestEnvelopeConcatenation(t *testing.T) {
	fs := populatedFilters(t)
	var buf bytes.Buffer
	for _, tc := range fs {
		if err := shbf.Dump(&buf, tc.f); err != nil {
			t.Fatal(err)
		}
	}
	rest := buf.Bytes()
	for i, tc := range fs {
		var (
			f   shbf.Filter
			err error
		)
		f, rest, err = shbf.Decode(rest)
		if err != nil {
			t.Fatalf("decoding envelope %d: %v", i, err)
		}
		if f.Kind() != tc.f.Kind() {
			t.Fatalf("envelope %d decoded as %s, want %s", i, f.Kind(), tc.f.Kind())
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

// TestEnvelopeRejectsGarbage: corrupt headers fail cleanly.
func TestEnvelopeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("ShB"),
		[]byte("NOPE\x01\x01\x00"),
		[]byte("ShBE\x63\x01\x00"), // bad version
		[]byte("ShBE\x01\x7f\x00"), // unknown kind
		[]byte("ShBE\x01\x01\xff\xff\xff\xff\xff\xff\x01"), // huge length
		[]byte("ShBE\x01\x01\x10abc"),                      // truncated payload
	}
	for i, data := range cases {
		if _, _, err := shbf.Decode(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	if _, err := shbf.Load(bytes.NewReader(append([]byte("ShBE"), 1, 0))); err == nil {
		t.Error("truncated load accepted")
	}
	// Load validates the header and declared length before buffering
	// the payload: an unknown kind and an implausible length are both
	// rejected without reading further.
	if _, err := shbf.Load(bytes.NewReader([]byte("ShBE\x01\x7f\x01x"))); err == nil {
		t.Error("unknown kind accepted by Load")
	}
	huge := append([]byte("ShBE\x01\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := shbf.Load(bytes.NewReader(huge)); err == nil {
		t.Error("implausible declared length accepted by Load")
	}
}
