// Package experiment is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section 6). Each Run*
// function reproduces one figure (or table): it builds the structures,
// replays the paper's workload protocol at a configurable scale, and
// returns a Figure/Table that renders as aligned text or CSV.
//
// Absolute numbers differ from the paper (different host, synthetic
// traces — see DESIGN.md §5); the assertions in this package's tests and
// the recorded results in EXPERIMENTS.md track the *shapes*: who wins,
// by what factor, and where crossovers fall.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one (x, y) measurement.
type Point struct {
	X, Y float64
}

// Series is a named curve in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduction of one paper figure: a set of series over a
// shared x-axis.
type Figure struct {
	ID     string // e.g. "7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Add appends a point to the named series, creating it if necessary.
// Series keep insertion order for rendering.
func (f *Figure) Add(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Points = append(f.Series[i].Points, Point{x, y})
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []Point{{x, y}}})
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(series string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == series {
			return &f.Series[i]
		}
	}
	return nil
}

// xs returns the sorted union of all x values across series.
func (f *Figure) xs() []float64 {
	set := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	out := make([]float64, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

// Render writes the figure as an aligned text table: one row per x
// value, one column per series.
func (f *Figure) Render(w io.Writer) error {
	header := append([]string{f.XLabel}, seriesNames(f.Series)...)
	rows := [][]string{}
	for _, x := range f.xs() {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = formatNum(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	if _, err := fmt.Fprintf(w, "Figure %s: %s  (y: %s)\n", f.ID, f.Title, f.YLabel); err != nil {
		return err
	}
	if err := renderAligned(w, header, rows); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the figure in wide CSV form (x, then one column per
// series).
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := append([]string{f.XLabel}, seriesNames(f.Series)...)
	if _, err := fmt.Fprintln(w, strings.Join(quoteAll(cols), ",")); err != nil {
		return err
	}
	for _, x := range f.xs() {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = formatNum(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table is a reproduction of a paper table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if err := renderAligned(w, t.Columns, t.Rows); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(quoteAll(t.Columns), ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(quoteAll(row), ",")); err != nil {
			return err
		}
	}
	return nil
}

func seriesNames(ss []Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

func renderAligned(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := len([]rune(cell)); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		b.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e12 && v > -1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

func quoteAll(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	return out
}
