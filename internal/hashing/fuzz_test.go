package hashing

import (
	"bytes"
	"testing"
)

// FuzzSum128 checks structural properties of the hash on arbitrary
// inputs: determinism, seed sensitivity, and length sensitivity (no
// trivial collisions between an input and its extension).
func FuzzSum128(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add([]byte("flow"), uint64(1))
	f.Add(bytes.Repeat([]byte{0xAA}, 16), uint64(42))
	f.Add(bytes.Repeat([]byte{0}, 33), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		h := New(seed)
		lo1, hi1 := h.Sum128(data)
		lo2, hi2 := h.Sum128(data)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatal("non-deterministic hash")
		}
		// Appending a byte must change the value (length is mixed in).
		lo3, hi3 := h.Sum128(append(append([]byte{}, data...), 0))
		if lo1 == lo3 && hi1 == hi3 {
			t.Fatal("extension collision")
		}
		// A different seed must produce a different value.
		lo4, _ := New(seed + 1).Sum128(data)
		if lo4 == lo1 {
			t.Fatal("seed-independent hash value")
		}
		// Reduce stays in range for all m.
		for _, m := range []int{1, 2, 63, 1 << 20} {
			if r := Reduce(lo1, m); r < 0 || r >= m {
				t.Fatalf("Reduce(%d) = %d out of range", m, r)
			}
		}
	})
}
