package analytic

import "math"

// This file implements the multiplicity-query analysis of paper Section
// 5.4 (Equations 26–28).

// MultF0 returns f0 = (1 − e^{−kn/m})^k (Equation 26): the probability
// that a non-member (or a wrong multiplicity j) is reported present,
// where n is the number of *distinct* elements in the multi-set — each
// element sets only k bits regardless of its count.
func MultF0(m, n, k int) float64 {
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// CRNonMember returns the correctness rate (1−f0)^c for querying an
// element not in the multi-set (Equation 27): correct means all c
// candidate positions reject.
func CRNonMember(m, n, k, c int) float64 {
	return math.Pow(1-MultF0(m, n, k), float64(c))
}

// CRMember returns the correctness rate (1−f0)^{j−1} for querying an
// element with true multiplicity j (Equation 28): the reported count is
// the largest candidate, so the answer is correct iff none of the j−1
// positions above the true one false-positives. (Positions at and below
// j don't matter: the true position always hits, and lower candidates
// are ignored by the largest-candidate rule — hence the exponent j−1,
// paper note below Equation 28. The positions above j run from j+1 to
// c; the paper's j−1 exponent reflects its reversed window convention,
// and we keep it for fidelity: both count c−j or j−1 positions only to
// first order, and at the paper's operating points the difference is
// below measurement noise only when the workload's j values are
// uniform, so this package exposes the exact variant too.)
func CRMember(m, n, k, j int) float64 {
	return math.Pow(1-MultF0(m, n, k), float64(j-1))
}

// CRMemberExact returns (1−f0)^{c−j}: the correctness rate counting the
// candidate positions strictly above j, which is what the
// largest-candidate reporting rule actually requires. For workloads
// whose multiplicities are uniform over [1, c] the mean over j of
// CRMember and CRMemberExact coincide, which is why the paper's
// Figure 11(a) matches either; the reproduction validates measured CR
// against this exact form per element and against the paper's form on
// the workload average.
func CRMemberExact(m, n, k, c, j int) float64 {
	return math.Pow(1-MultF0(m, n, k), float64(c-j))
}

// CRWorkload returns the expected correctness rate over a workload whose
// element multiplicities are given by counts, using the exact per-
// element form.
func CRWorkload(m, n, k, c int, counts []int) float64 {
	if len(counts) == 0 {
		return 1
	}
	total := 0.0
	for _, j := range counts {
		total += CRMemberExact(m, n, k, c, j)
	}
	return total / float64(len(counts))
}
