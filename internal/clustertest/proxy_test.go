package clustertest

import (
	"io"
	"net"
	"testing"
	"time"
)

// echoBackend accepts connections and echoes bytes back.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln
}

// TestProxyFaults exercises every knob against an echo backend: the
// transparent path, injected latency, drop-after-N, blackhole, and
// kill/restore on a stable address.
func TestProxyFaults(t *testing.T) {
	backend := echoBackend(t)
	p, err := NewProxy(backend.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
		if err != nil {
			t.Fatalf("dial proxy: %v", err)
		}
		c.SetDeadline(time.Now().Add(5 * time.Second))
		return c
	}
	echo := func(c net.Conn, msg string) (string, error) {
		if _, err := c.Write([]byte(msg)); err != nil {
			return "", err
		}
		buf := make([]byte, len(msg))
		n, err := io.ReadFull(c, buf)
		return string(buf[:n]), err
	}

	// Transparent.
	c := dial()
	if got, err := echo(c, "hello"); err != nil || got != "hello" {
		t.Fatalf("transparent echo: %q, %v", got, err)
	}
	c.Close()

	// Latency: the echo takes at least the injected delay.
	p.SetLatency(80 * time.Millisecond)
	c = dial()
	start := time.Now()
	if got, err := echo(c, "slow"); err != nil || got != "slow" {
		t.Fatalf("latency echo: %q, %v", got, err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("echo took %v, want ≥ 80ms of injected latency", d)
	}
	c.Close()
	p.SetLatency(0)

	// DropAfter: exactly n response bytes arrive, then the conn dies.
	p.DropAfter(3)
	c = dial()
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := io.ReadFull(c, buf[:3])
	if n != 3 || string(buf[:3]) != "abc" {
		t.Fatalf("got %q before the drop, want \"abc\"", buf[:n])
	}
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read past the drop point succeeded")
	}
	c.Close()
	p.DropAfter(0)

	// Blackhole: requests drain, responses never come; only the read
	// deadline gets us out.
	p.SetBlackhole(true)
	c = dial()
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Write([]byte("void")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read from a blackhole answered")
	}
	c.Close()
	p.SetBlackhole(false)

	// Kill: dials fail. Restore: same address serves again.
	addr := p.Addr()
	p.Kill()
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("dial to a killed proxy succeeded")
	}
	if err := p.Restore(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if p.Addr() != addr {
		t.Fatalf("address changed across kill/restore: %s → %s", addr, p.Addr())
	}
	c = dial()
	if got, err := echo(c, "back"); err != nil || got != "back" {
		t.Fatalf("echo after restore: %q, %v", got, err)
	}
	c.Close()
}

// TestNodeRestart: a killed node comes back on the same addresses and
// serves again; in-memory state is gone (abrupt kill, no snapshot),
// which is exactly what the chaos suite's anti-entropy merges repair.
func TestNodeRestart(t *testing.T) {
	c, err := StartNodes(Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	n := c.Nodes[0]
	httpAddr, shbpAddr := n.HTTPAddr, n.ShBPAddr

	n.Kill()
	if _, err := net.DialTimeout("tcp", shbpAddr, 200*time.Millisecond); err == nil {
		t.Fatal("dial to a killed node succeeded")
	}
	if err := n.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if n.HTTPAddr != httpAddr || n.ShBPAddr != shbpAddr {
		t.Fatal("addresses changed across restart")
	}
	conn, err := net.DialTimeout("tcp", shbpAddr, time.Second)
	if err != nil {
		t.Fatalf("dial restarted node: %v", err)
	}
	conn.Close()
	if n.Srv == nil {
		t.Fatal("restarted node has no server")
	}
	// Restart is a no-op on a live node.
	if err := n.Restart(); err != nil {
		t.Fatalf("restart of a live node: %v", err)
	}
}
