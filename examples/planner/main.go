// Capacity planning and filter shipping: size filters from accuracy
// targets using the paper's optima, build them, and ship them as bytes
// to the query tier — the paper's build-offline / query-on-chip
// deployment (Section 3.3).
//
// Run with: go run ./examples/planner
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shbf"
)

func main() {
	const n = 250000

	// 1. Membership: "n flows, at most 0.1% false positives."
	mPlan, err := shbf.PlanMembership(n, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("membership plan for n=%d, FPR ≤ 0.1%%:\n", n)
	fmt.Printf("  m = %d bits (%.1f bits/element), k = %d, predicted FPR %.5f\n\n",
		mPlan.M, mPlan.BitsPerElem, mPlan.K, mPlan.PredictedFPR)

	// 2. Association: "clear routing decision 99.9% of the time."
	aPlan, err := shbf.PlanAssociation(n, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("association plan for |S1∪S2|=%d, clear ≥ 99.9%%:\n", n)
	fmt.Printf("  m = %d bits, k = %d, predicted clear %.5f\n\n",
		aPlan.M, aPlan.K, aPlan.PredictedClear)

	// 3. Multiplicity: "flow sizes up to 57, ≥ 95%% exact answers even
	//    for absent flows."
	xPlan, err := shbf.PlanMultiplicity(n, 57, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplicity plan for n=%d, c=57, CR ≥ 95%%:\n", n)
	fmt.Printf("  m = %d bits (%.1f bits/element), k = %d, predicted CR %.5f\n\n",
		xPlan.M, xPlan.BitsPerElem, xPlan.K, xPlan.PredictedCR)

	// Build the membership filter from the plan and ship it.
	filter, err := shbf.NewMembership(mPlan.M, mPlan.K, shbf.WithSeed(2016))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sample := make([][]byte, 0, 1000)
	for i := 0; i < n; i++ {
		e := make([]byte, 13)
		rng.Read(e)
		e[4], e[5], e[6], e[7] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		filter.Add(e)
		if i < cap(sample) {
			sample = append(sample, e)
		}
	}

	blob, err := filter.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped filter: %d bytes on the wire (%.2f bits/element)\n",
		len(blob), 8*float64(len(blob))/n)

	// The query tier decodes and serves.
	var remote shbf.Membership
	if err := remote.UnmarshalBinary(blob); err != nil {
		log.Fatal(err)
	}
	for _, e := range sample {
		if !remote.Contains(e) {
			log.Fatal("shipped filter lost an element")
		}
	}
	fmt.Printf("query tier verified %d sampled members after decode\n", len(sample))
}
