package window

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"shbf/internal/core"
)

// The ShBW wire format serializes a window as its ring: 4-byte magic
// "ShBW", a version byte, the window's core.Kind as one byte, then the
// ring metadata as uvarints (generation count G, head index, epoch,
// tick in nanoseconds) and G length-prefixed generation blobs in ring
// order — each blob the generation filter's own MarshalBinary output,
// which embeds its full geometry and seed. Head and epoch travel in
// the container, so a restored window resumes rotation exactly where
// the dump left off. The root package's self-describing envelope
// (shbf.Dump/Load) frames these bytes under the window's Kind tag, the
// "ShBW wrapper" of the serving layer's snapshots.

const (
	windowMagic   = "ShBW"
	windowVersion = 1
)

// appendRing serializes a rotator under the given window kind.
func appendRing[F encoding.BinaryMarshaler](buf []byte, kind core.Kind, r *Rotator[F]) ([]byte, error) {
	buf = append(buf, windowMagic...)
	buf = append(buf, windowVersion, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(len(r.gens)))
	buf = binary.AppendUvarint(buf, uint64(r.head))
	buf = binary.AppendUvarint(buf, r.epoch)
	buf = binary.AppendUvarint(buf, uint64(r.clock.Tick))
	for i, g := range r.gens {
		blob, err := g.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("window: marshaling generation %d: %w", i, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// ring is the decoded container state shared by the typed
// UnmarshalBinary implementations.
type ring[PF any] struct {
	gens  []PF
	head  int
	epoch uint64
	tick  time.Duration
}

// decodeRing parses an appendRing container of the expected kind,
// reconstructing each generation into a fresh zero value of the
// concrete filter type.
func decodeRing[F any, PF interface {
	*F
	encoding.BinaryUnmarshaler
}](data []byte, kind core.Kind) (ring[PF], error) {
	if len(data) < len(windowMagic)+2 {
		return ring[PF]{}, fmt.Errorf("window: truncated container header")
	}
	if string(data[:len(windowMagic)]) != windowMagic {
		return ring[PF]{}, fmt.Errorf("window: bad container magic %q", data[:len(windowMagic)])
	}
	if v := data[len(windowMagic)]; v != windowVersion {
		return ring[PF]{}, fmt.Errorf("window: unsupported container version %d", v)
	}
	if got := core.Kind(data[len(windowMagic)+1]); got != kind {
		return ring[PF]{}, fmt.Errorf("window: container holds %s, want %s", got, kind)
	}
	buf := data[len(windowMagic)+2:]
	var g, head, epoch, tick uint64
	for i, dst := range []*uint64{&g, &head, &epoch, &tick} {
		v, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return ring[PF]{}, fmt.Errorf("window: truncated ring parameter %d", i)
		}
		*dst = v
		buf = buf[sz:]
	}
	if g < 2 || g > maxGenerations {
		return ring[PF]{}, fmt.Errorf("window: implausible generation count %d", g)
	}
	if head >= g {
		return ring[PF]{}, fmt.Errorf("window: head index %d outside ring of %d", head, g)
	}
	if tick > math.MaxInt64 {
		return ring[PF]{}, fmt.Errorf("window: implausible tick %d", tick)
	}
	r := ring[PF]{head: int(head), epoch: epoch, tick: time.Duration(tick)}
	r.gens = make([]PF, g)
	for i := range r.gens {
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return ring[PF]{}, fmt.Errorf("window: truncated length of generation %d", i)
		}
		buf = buf[sz:]
		if uint64(len(buf)) < n {
			return ring[PF]{}, fmt.Errorf("window: generation %d blob truncated", i)
		}
		f := PF(new(F))
		if err := f.UnmarshalBinary(buf[:n]); err != nil {
			return ring[PF]{}, fmt.Errorf("window: decoding generation %d: %w", i, err)
		}
		r.gens[i] = f
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return ring[PF]{}, fmt.Errorf("window: %d trailing bytes", len(buf))
	}
	return r, nil
}

// checkUniformSpecs verifies every decoded generation shares the
// spec of generation 0 — the ring invariant the query fan-out relies
// on (identical geometry and seed ⇒ one digest probes all).
func checkUniformSpecs[F interface{ Spec() core.Spec }](gens []F) error {
	spec0 := gens[0].Spec()
	for i, g := range gens[1:] {
		if g.Spec() != spec0 {
			return fmt.Errorf("window: generation %d spec %+v differs from generation 0 %+v",
				i+1, g.Spec(), spec0)
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the ShBW ring
// container over the generations' own serializations.
func (w *Membership) MarshalBinary() ([]byte, error) {
	return appendRing(nil, core.KindWindowMembership, w.rot)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing w's
// state (ring, head, epoch, tick) with the decoded window.
func (w *Membership) UnmarshalBinary(data []byte) error {
	r, err := decodeRing[core.Membership](data, core.KindWindowMembership)
	if err != nil {
		return err
	}
	if err := checkUniformSpecs(r.gens); err != nil {
		return err
	}
	*w = Membership{rot: &Rotator[*core.Membership]{
		gens: r.gens, head: r.head, epoch: r.epoch, clock: TickPolicy{Tick: r.tick},
		recycle: func(f *core.Membership) (*core.Membership, error) {
			f.Reset()
			return f, nil
		},
	}}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (w *Multiplicity) MarshalBinary() ([]byte, error) {
	return appendRing(nil, core.KindWindowMultiplicity, w.rot)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing w's
// state with the decoded window.
func (w *Multiplicity) UnmarshalBinary(data []byte) error {
	r, err := decodeRing[core.CountingMultiplicity](data, core.KindWindowMultiplicity)
	if err != nil {
		return err
	}
	if err := checkUniformSpecs(r.gens); err != nil {
		return err
	}
	spec := r.gens[0].Spec()
	*w = Multiplicity{rot: &Rotator[*core.CountingMultiplicity]{
		gens: r.gens, head: r.head, epoch: r.epoch, clock: TickPolicy{Tick: r.tick},
		recycle: func(*core.CountingMultiplicity) (*core.CountingMultiplicity, error) {
			return core.NewCountingMultiplicity(spec.M, spec.K, spec.C, spec.Options()...)
		},
	}}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (w *Association) MarshalBinary() ([]byte, error) {
	return appendRing(nil, core.KindWindowAssociation, w.rot)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing w's
// state with the decoded window.
func (w *Association) UnmarshalBinary(data []byte) error {
	r, err := decodeRing[core.CountingAssociation](data, core.KindWindowAssociation)
	if err != nil {
		return err
	}
	if err := checkUniformSpecs(r.gens); err != nil {
		return err
	}
	spec := r.gens[0].Spec()
	*w = Association{rot: &Rotator[*core.CountingAssociation]{
		gens: r.gens, head: r.head, epoch: r.epoch, clock: TickPolicy{Tick: r.tick},
		recycle: func(*core.CountingAssociation) (*core.CountingAssociation, error) {
			return core.NewCountingAssociation(spec.M, spec.K, spec.Options()...)
		},
	}}
	return nil
}
