package experiment

import (
	"fmt"
	"math"

	"shbf/internal/analytic"
	"shbf/internal/core"
	"shbf/internal/trace"
	"shbf/internal/window"
	"shbf/internal/workload"
)

// Sliding-window accuracy (reproduction ablation beyond the paper's
// figures; EXPERIMENTS.md "Sliding-window accuracy"). The paper's
// streaming use cases need "seen in the last N ticks", which
// internal/window provides by ringing G generations of ShBF_M. Two
// questions are answered empirically:
//
//  1. Does the window's FPR stay bounded on an endless stream, at the
//     analytic 1 − (1−f_gen)^G level, while an unbounded filter of the
//     same per-generation size drifts toward 1? (window-soak)
//  2. How does the steady-state window FPR scale with the ring length
//     G, against the same bound? (window-g)

// RunWindowAblation produces the two sliding-window accuracy figures.
func RunWindowAblation(cfg Config) []*Figure {
	const (
		k    = 8
		g    = 4
		wbar = core.DefaultMaxOffset
	)
	// One generation sized for one tick's keys at the paper's 1.5×
	// Figure-7 memory ratio.
	nPerTick := cfg.MultisetSize / 4
	m := int(1.5 * float64(nPerTick) * k / math.Ln2)
	probes := max(cfg.Probes/8, 2000)

	soak := &Figure{
		ID:     "window-soak",
		Title:  fmt.Sprintf("Sliding-window FPR over %d ticks (G=%d, n=%d/tick)", 3*g+2, g, nPerTick),
		XLabel: "tick",
		YLabel: "FP rate",
	}
	spec := core.Spec{Kind: core.KindWindowMembership, M: m, K: k, Generations: g,
		Seed: uint64(cfg.Seed)}
	w, err := window.NewMembership(spec)
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	unbounded, err := core.NewMembership(m, k, core.WithSeed(uint64(cfg.Seed)))
	if err != nil {
		panic(err)
	}
	gen := trace.NewGenerator(cfg.Seed)
	bound := analytic.FPRShBFMWindow(m, nPerTick, k, wbar, g)
	for tick := 1; tick <= 3*g+2; tick++ {
		batch := trace.Bytes(gen.Distinct(nPerTick))
		if err := w.AddAll(batch); err != nil {
			panic(err)
		}
		unbounded.AddAll(batch)
		neg := workload.Negatives(gen, probes)
		soak.Add(fmt.Sprintf("window G=%d", g), float64(tick), measureFPR(w, neg))
		soak.Add("unbounded same-size filter", float64(tick), measureFPR(unbounded, neg))
		soak.Add("window bound 1-(1-f)^G", float64(tick), bound)
		if err := w.Rotate(); err != nil {
			panic(err)
		}
	}
	soak.Notes = append(soak.Notes,
		fmt.Sprintf("window FPR plateaus at ≤ the 1-(1-f_gen)^G bound (%.2e) while the unbounded filter saturates", bound),
		"each tick inserts fresh keys, measures on fresh negatives, then rotates")

	byG := &Figure{
		ID:     "window-g",
		Title:  fmt.Sprintf("Steady-state window FPR vs G (n=%d/tick)", nPerTick),
		XLabel: "generations",
		YLabel: "FP rate",
	}
	for _, gg := range []int{2, 4, 8} {
		spec := core.Spec{Kind: core.KindWindowMembership, M: m, K: k, Generations: gg,
			Seed: uint64(cfg.Seed)}
		w, err := window.NewMembership(spec)
		if err != nil {
			panic(err)
		}
		gen := trace.NewGenerator(cfg.Seed + int64(gg))
		// Fill to steady state: every generation holds one tick's keys.
		for tick := 0; tick < gg; tick++ {
			if tick > 0 {
				if err := w.Rotate(); err != nil {
					panic(err)
				}
			}
			if err := w.AddAll(trace.Bytes(gen.Distinct(nPerTick))); err != nil {
				panic(err)
			}
		}
		neg := workload.Negatives(gen, probes)
		byG.Add("measured", float64(gg), measureFPR(w, neg))
		byG.Add("bound 1-(1-f)^G", float64(gg), analytic.FPRShBFMWindow(m, nPerTick, k, wbar, gg))
	}
	byG.Notes = append(byG.Notes,
		"the window pays ≈ G× one generation's FPR for bounded memory and forgetting")

	return []*Figure{soak, byG}
}
