package hashing

// This file ports the paper's hash-randomness test (Section 6.1):
// "Our criteria for testing randomness is that the probability of seeing
// 1 at any bit location in the hashed value should be 0.5." The authors
// computed, per output bit, the fraction of 8M distinct flow IDs whose
// hash sets that bit, and kept the 18 functions that passed.

// BitBalance returns, for each of the 64 output bits of h.Sum64, the
// fraction of inputs whose hash value has that bit set. For a function
// with uniformly distributed outputs every fraction approaches 0.5.
func BitBalance(h Hasher, inputs [][]byte) [64]float64 {
	return BitBalanceOf(h.Sum64, inputs)
}

// BitBalanceOf applies the same criterion to an arbitrary 64-bit hash
// function — in particular to a Family member's digest-mixed output
// (func(e []byte) uint64 { return fam.Sum64(i, e) }), so the one-pass
// pipeline is held to the paper's randomness bar exactly as full
// per-function hashing was.
func BitBalanceOf(fn func([]byte) uint64, inputs [][]byte) [64]float64 {
	var counts [64]int
	for _, in := range inputs {
		v := fn(in)
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	var fracs [64]float64
	if len(inputs) == 0 {
		return fracs
	}
	total := float64(len(inputs))
	for b := 0; b < 64; b++ {
		fracs[b] = float64(counts[b]) / total
	}
	return fracs
}

// MaxBalanceError returns the largest deviation of any per-bit fraction
// from the ideal 0.5.
func MaxBalanceError(fracs [64]float64) float64 {
	worst := 0.0
	for _, f := range fracs {
		d := f - 0.5
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// PassesBalance reports whether h passes the paper's randomness test on
// inputs with the given per-bit tolerance (the paper does not state its
// tolerance; 0.01 on ≥100k inputs is a faithful rendering).
func PassesBalance(h Hasher, inputs [][]byte, tolerance float64) bool {
	return MaxBalanceError(BitBalance(h, inputs)) <= tolerance
}
