package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shbf/internal/memmodel"
)

// genElements returns n distinct 13-byte pseudo flow IDs. Distinctness
// comes from embedding the index.
func genElements(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 13)
		rng.Read(b)
		b[0] = byte(i)
		b[1] = byte(i >> 8)
		b[2] = byte(i >> 16)
		b[3] = byte(i >> 24)
		out[i] = b
	}
	return out
}

// genDisjoint returns n elements guaranteed distinct from genElements
// outputs by a tag byte.
func genDisjoint(n int, seed int64) [][]byte {
	out := genElements(n, seed)
	for _, e := range out {
		e[12] = 0xFF
	}
	return out
}

func mustMembership(t *testing.T, m, k int, opts ...Option) *Membership {
	t.Helper()
	f, err := NewMembership(m, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewMembershipValidation(t *testing.T) {
	tests := []struct {
		name string
		m, k int
		opts []Option
	}{
		{"zero m", 0, 4, nil},
		{"negative m", -5, 4, nil},
		{"odd k", 100, 3, nil},
		{"zero k", 100, 0, nil},
		{"wbar too small", 100, 4, []Option{WithMaxOffset(1)}},
		{"wbar too large", 100, 4, []Option{WithMaxOffset(65)}},
	}
	for _, tt := range tests {
		if _, err := NewMembership(tt.m, tt.k, tt.opts...); err == nil {
			t.Errorf("%s: NewMembership(%d, %d) accepted invalid config", tt.name, tt.m, tt.k)
		}
	}
	if _, err := NewMembership(100, 2); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

func TestMembershipNoFalseNegatives(t *testing.T) {
	f := mustMembership(t, 10000, 8)
	elems := genElements(800, 1)
	for _, e := range elems {
		f.Add(e)
	}
	for i, e := range elems {
		if !f.Contains(e) {
			t.Fatalf("false negative on element %d", i)
		}
	}
	if f.N() != 800 {
		t.Fatalf("N = %d, want 800", f.N())
	}
}

func TestMembershipNoFalseNegativesProperty(t *testing.T) {
	// Property: any set of short byte strings inserted is found, across
	// random filter geometries.
	f := func(keys [][]byte, mSeed uint16) bool {
		m := 500 + int(mSeed)%5000
		filt, err := NewMembership(m, 6)
		if err != nil {
			return false
		}
		for _, k := range keys {
			filt.Add(k)
		}
		for _, k := range keys {
			if !filt.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMembershipFPRMatchesTheory(t *testing.T) {
	// Equation (1): f ≈ (1−p)^{k/2} (1−p+p²/(w̄−1))^{k/2}, p = e^{−nk/m}.
	// The paper reports ≤3% relative error between simulation and
	// theory; we allow 15% at smaller probe counts.
	const (
		m, k, n = 22008, 8, 1500
		probes  = 400000
		wbar    = 57
	)
	f := mustMembership(t, m, k, WithSeed(99))
	for _, e := range genElements(n, 2) {
		f.Add(e)
	}
	fp := 0
	for _, e := range genDisjoint(probes, 3) {
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / probes
	p := math.Exp(-float64(n) * k / float64(m))
	want := math.Pow(1-p, k/2.0) * math.Pow(1-p+p*p/(wbar-1), k/2.0)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("measured FPR %.5f vs theory %.5f (rel err %.1f%%)",
			got, want, 100*math.Abs(got-want)/want)
	}
}

func TestMembershipFPRCloseToBF(t *testing.T) {
	// Section 3.5: ShBF_M's FPR is nearly the standard BF's. Compare the
	// measured ShBF_M FPR against the BF formula (1−e^{−nk/m})^k.
	const (
		m, k, n = 30000, 10, 2000
		probes  = 200000
	)
	f := mustMembership(t, m, k, WithSeed(7))
	for _, e := range genElements(n, 8) {
		f.Add(e)
	}
	fp := 0
	for _, e := range genDisjoint(probes, 9) {
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / probes
	bf := math.Pow(1-math.Exp(-float64(n)*k/float64(m)), k)
	if got > bf*1.35 {
		t.Fatalf("ShBF_M FPR %.5f more than 35%% above BF theory %.5f", got, bf)
	}
}

func TestMembershipOffsetNonZero(t *testing.T) {
	// Section 3.1: o(e) ≠ 0, else the pair collapses to one bit. The
	// offset must also stay within [1, w̄−1].
	f := mustMembership(t, 1000, 4, WithMaxOffset(21))
	for _, e := range genElements(2000, 4) {
		o := f.offsetDigest(f.fam.Digest(e))
		if o < 1 || o > 20 {
			t.Fatalf("offset %d out of [1,20]", o)
		}
	}
}

func TestMembershipOffsetUsesFullRange(t *testing.T) {
	f := mustMembership(t, 1000, 4)
	seen := map[int]bool{}
	for _, e := range genElements(5000, 5) {
		seen[f.offsetDigest(f.fam.Digest(e))] = true
	}
	if len(seen) != DefaultMaxOffset-1 {
		t.Fatalf("offsets cover %d values, want %d", len(seen), DefaultMaxOffset-1)
	}
}

func TestMembershipAccessCounting(t *testing.T) {
	// A member query costs exactly k/2 read accesses (one window per
	// hash pair); the standard BF equivalent costs k (Section 1.2.1).
	var acc memmodel.Counter
	const k = 8
	f := mustMembership(t, 10000, k, WithAccessCounter(&acc))
	e := []byte("member element")
	f.Add(e)
	acc.Reset()
	if !f.Contains(e) {
		t.Fatal("member not found")
	}
	if got := acc.Reads(); got != k/2 {
		t.Fatalf("member query cost %d accesses, want %d", got, k/2)
	}

	// A query on an empty filter fails at the first pair: 1 access.
	f.Reset()
	acc.Reset()
	if f.Contains(e) {
		t.Fatal("empty filter claims membership")
	}
	if got := acc.Reads(); got != 1 {
		t.Fatalf("first-pair miss cost %d accesses, want 1", got)
	}
}

func TestMembershipAddAccessCounting(t *testing.T) {
	var acc memmodel.Counter
	const k = 8
	f := mustMembership(t, 10000, k, WithAccessCounter(&acc))
	f.Add([]byte("e"))
	if got := acc.Writes(); got != k {
		t.Fatalf("Add cost %d writes, want %d (k bits set)", got, k)
	}
}

func TestMembershipReset(t *testing.T) {
	f := mustMembership(t, 1000, 4)
	f.Add([]byte("x"))
	if f.FillRatio() == 0 {
		t.Fatal("Add set no bits")
	}
	f.Reset()
	if f.FillRatio() != 0 || f.N() != 0 {
		t.Fatal("Reset did not clear filter")
	}
	if f.Contains([]byte("x")) {
		t.Fatal("reset filter claims membership")
	}
}

func TestMembershipAccessors(t *testing.T) {
	f := mustMembership(t, 4096, 6, WithMaxOffset(25))
	if f.M() != 4096 || f.K() != 6 || f.MaxOffset() != 25 {
		t.Fatalf("accessors: M=%d K=%d w̄=%d", f.M(), f.K(), f.MaxOffset())
	}
	if got := f.HashOpsPerAdd(); got != 4 {
		t.Fatalf("HashOpsPerAdd = %d, want 4 (k/2+1)", got)
	}
	// Array is m + w̄ − 1 bits, rounded up to whole words.
	wantBits := 4096 + 25 - 1
	if got := f.SizeBytes(); got != (wantBits+63)/64*8 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestMembershipDeterministicAcrossInstances(t *testing.T) {
	// Same seed ⇒ same behaviour; different seed ⇒ (almost surely)
	// different bit pattern.
	a := mustMembership(t, 5000, 8, WithSeed(42))
	b := mustMembership(t, 5000, 8, WithSeed(42))
	c := mustMembership(t, 5000, 8, WithSeed(43))
	elems := genElements(100, 10)
	for _, e := range elems {
		a.Add(e)
		b.Add(e)
		c.Add(e)
	}
	probes := genDisjoint(5000, 11)
	diffAB, diffAC := 0, 0
	for _, e := range probes {
		if a.Contains(e) != b.Contains(e) {
			diffAB++
		}
		if a.Contains(e) != c.Contains(e) {
			diffAC++
		}
	}
	if diffAB != 0 {
		t.Fatalf("same-seed filters disagree on %d probes", diffAB)
	}
	if diffAC == 0 {
		t.Log("warning: different-seed filters agree on all probes (possible but unlikely)")
	}
}

func TestMembershipSmallMaxOffset(t *testing.T) {
	// w̄ = 2 forces every offset to 1: still correct, just worse FPR.
	f := mustMembership(t, 2000, 4, WithMaxOffset(2))
	elems := genElements(100, 12)
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative with w̄=2")
		}
	}
}

func TestMembershipFillRatioTracksTheory(t *testing.T) {
	// After inserting n elements, 1 − FillRatio ≈ e^{−nk/m} (Equation 3),
	// measured over the base m bits plus slack; slack dilutes slightly,
	// so compare with 5% tolerance against the whole-array expectation.
	const m, k, n = 50000, 8, 4000
	f := mustMembership(t, m, k)
	for _, e := range genElements(n, 13) {
		f.Add(e)
	}
	p := math.Exp(-float64(n) * k / float64(m))
	got := 1 - f.FillRatio()
	if math.Abs(got-p)/p > 0.05 {
		t.Fatalf("zero-bit fraction %.4f vs theory %.4f", got, p)
	}
}

func BenchmarkMembershipAdd(b *testing.B) {
	f, _ := NewMembership(1<<20, 8)
	elems := genElements(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(elems[i&1023])
	}
}

func BenchmarkMembershipContains(b *testing.B) {
	f, _ := NewMembership(1<<20, 8)
	elems := genElements(1024, 1)
	for _, e := range elems {
		f.Add(e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains(elems[i&1023])
	}
}

func ExampleMembership() {
	f, _ := NewMembership(10000, 8)
	f.Add([]byte("10.0.0.1:443->10.0.0.2:8080/tcp"))
	fmt.Println(f.Contains([]byte("10.0.0.1:443->10.0.0.2:8080/tcp")))
	fmt.Println(f.Contains([]byte("not inserted")))
	// Output:
	// true
	// false
}
