// Command shbf builds a Shifting Bloom Filter from a trace file and
// reports its quality: fill ratio, memory, measured vs theoretical
// false-positive rate (membership), clear-answer rate (association), or
// correctness rate (multiplicity).
//
// Usage:
//
//	shbf -mode member -trace t.bin [-m 0] [-k 8] [-probes 1000000]
//	shbf -mode assoc  -trace t.bin -trace2 u.bin [-k 8]
//	shbf -mode mult   -trace t.bin [-k 8] [-c 57]
//	shbf -plan member -n 1000000 -target 0.001   # size from a target
//
// With -m 0 the filter is sized optimally from the trace (m = nk/ln2
// for membership/association, 1.5× that for multiplicity, following the
// paper's experimental setups).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"shbf"
	"shbf/internal/analytic"
	"shbf/internal/sizing"
	"shbf/internal/trace"
	"shbf/internal/workload"
)

func main() {
	var (
		mode   = flag.String("mode", "member", "query type: member, assoc, mult")
		path   = flag.String("trace", "", "trace file (see cmd/tracegen)")
		path2  = flag.String("trace2", "", "second trace file (assoc mode: set S2)")
		m      = flag.Int("m", 0, "filter bits (0 = optimal for the trace)")
		k      = flag.Int("k", 8, "bit positions per element")
		c      = flag.Int("c", 57, "maximum multiplicity (mult mode)")
		probes = flag.Int("probes", 1000000, "negative probes for FPR measurement")
		seed   = flag.Int64("seed", 1, "filter/probe seed")
		plan   = flag.String("plan", "", "plan a geometry instead of building: member, assoc, mult")
		planN  = flag.Int("n", 100000, "with -plan: expected elements")
		target = flag.Float64("target", 0.01, "with -plan: target FPR (member) / clear probability (assoc) / correctness rate (mult)")
	)
	flag.Parse()

	if *plan != "" {
		if err := runPlan(*plan, *planN, *c, *target); err != nil {
			fmt.Fprintln(os.Stderr, "shbf:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*mode, *path, *path2, *m, *k, *c, *probes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "shbf:", err)
		os.Exit(1)
	}
}

// runPlan prints a sized geometry for the requested query type.
func runPlan(kind string, n, c int, target float64) error {
	switch kind {
	case "member":
		plan, err := sizing.Membership(n, target, shbf.DefaultMaxOffset)
		if err != nil {
			return err
		}
		fmt.Printf("ShBF_M plan for n=%d, FPR ≤ %g:\n", n, target)
		fmt.Printf("  m=%d bits (%.1f KiB, %.2f bits/element), k=%d, predicted FPR %.6f\n",
			plan.M, float64(plan.M)/8192, plan.BitsPerElem, plan.K, plan.PredictedFPR)
	case "assoc":
		plan, err := sizing.Association(n, target)
		if err != nil {
			return err
		}
		fmt.Printf("ShBF_A plan for |S1∪S2|=%d, P(clear) ≥ %g:\n", n, target)
		fmt.Printf("  m=%d bits (%.1f KiB), k=%d, predicted clear %.6f\n",
			plan.M, float64(plan.M)/8192, plan.K, plan.PredictedClear)
	case "mult":
		plan, err := sizing.Multiplicity(n, c, target)
		if err != nil {
			return err
		}
		fmt.Printf("ShBF_X plan for n=%d, c=%d, CR ≥ %g:\n", n, c, target)
		fmt.Printf("  m=%d bits (%.1f KiB, %.2f bits/element), k=%d, predicted CR %.6f\n",
			plan.M, float64(plan.M)/8192, plan.BitsPerElem, plan.K, plan.PredictedCR)
	default:
		return fmt.Errorf("unknown plan kind %q (member, assoc, mult)", kind)
	}
	return nil
}

func loadTrace(path string) ([]trace.Flow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func run(mode, path, path2 string, m, k, c, probes int, seed int64) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	flows, err := loadTrace(path)
	if err != nil {
		return err
	}
	switch mode {
	case "member":
		return runMember(flows, m, k, probes, seed)
	case "assoc":
		if path2 == "" {
			return fmt.Errorf("assoc mode needs -trace2")
		}
		flows2, err := loadTrace(path2)
		if err != nil {
			return err
		}
		return runAssoc(flows, flows2, m, k, seed)
	case "mult":
		return runMult(flows, m, k, c, seed)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func ids(flows []trace.Flow) [][]byte {
	out := make([][]byte, len(flows))
	for i := range flows {
		out[i] = flows[i].ID[:]
	}
	return out
}

func runMember(flows []trace.Flow, m, k, probes int, seed int64) error {
	n := len(flows)
	if m == 0 {
		m = int(float64(n) * float64(k) / math.Ln2)
	}
	f, err := shbf.NewMembership(m, k, shbf.WithSeed(uint64(seed)))
	if err != nil {
		return err
	}
	for _, e := range ids(flows) {
		f.Add(e)
	}
	gen := trace.NewGenerator(seed + 1000)
	fp := 0
	negs := workload.Negatives(gen, probes)
	for _, e := range negs {
		if f.Contains(e) {
			fp++
		}
	}
	measured := float64(fp) / float64(len(negs))
	theory := analytic.FPRShBFM(m, n, float64(k), f.MaxOffset())

	fmt.Printf("ShBF_M over %d elements: m=%d k=%d w̄=%d\n", n, m, k, f.MaxOffset())
	fmt.Printf("memory:        %d bytes (%.2f bits/element)\n", f.SizeBytes(), float64(8*f.SizeBytes())/float64(n))
	fmt.Printf("fill ratio:    %.4f\n", f.FillRatio())
	fmt.Printf("FPR measured:  %.6f  (over %d probes)\n", measured, len(negs))
	fmt.Printf("FPR theory:    %.6f  (paper Equation 1)\n", theory)
	fmt.Printf("hash ops/add:  %d (BF would use %d)\n", f.HashOpsPerAdd(), k)
	return nil
}

func runAssoc(flows1, flows2 []trace.Flow, m, k int, seed int64) error {
	s1, s2 := ids(flows1), ids(flows2)
	// Count distinct union for optimal sizing.
	union := map[string]bool{}
	for _, e := range s1 {
		union[string(e)] = true
	}
	for _, e := range s2 {
		union[string(e)] = true
	}
	if m == 0 {
		m = int(float64(len(union)) * float64(k) / math.Ln2)
	}
	a, err := shbf.BuildAssociation(s1, s2, m, k, shbf.WithSeed(uint64(seed)))
	if err != nil {
		return err
	}
	clear, total := 0, 0
	for _, group := range [][][]byte{s1, s2} {
		for _, e := range group {
			if a.Query(e).Clear() {
				clear++
			}
			total++
		}
	}
	fmt.Printf("ShBF_A over |S1|=%d |S2|=%d (|S1∩S2|=%d): m=%d k=%d\n",
		a.N1(), a.N2(), a.NBoth(), m, k)
	fmt.Printf("memory:          %d bytes\n", a.SizeBytes())
	fmt.Printf("fill ratio:      %.4f\n", a.FillRatio())
	fmt.Printf("clear answers:   %.4f measured, %.4f theory (Table 2)\n",
		float64(clear)/float64(total), analytic.ClearProbShBFA(k))
	fmt.Printf("hash ops/query:  %d (iBF would use %d)\n", a.HashOpsPerQuery(), 2*k)
	return nil
}

func runMult(flows []trace.Flow, m, k, c int, seed int64) error {
	n := len(flows)
	if m == 0 {
		m = int(1.5 * float64(n) * float64(k) / math.Ln2)
	}
	f, err := shbf.NewMultiplicity(m, k, c, shbf.WithSeed(uint64(seed)))
	if err != nil {
		return err
	}
	counts := make([]int, 0, n)
	for _, fl := range flows {
		cnt := fl.Count
		if cnt > c {
			cnt = c
		}
		if err := f.AddWithCount(fl.ID[:], cnt); err != nil {
			return err
		}
		counts = append(counts, cnt)
	}
	correct, over := 0, 0
	for i, fl := range flows {
		got := f.Count(fl.ID[:])
		switch {
		case got == counts[i]:
			correct++
		case got > counts[i]:
			over++
		default:
			return fmt.Errorf("false negative on flow %d: %d < %d", i, got, counts[i])
		}
	}
	fmt.Printf("ShBF_X over %d flows: m=%d k=%d c=%d\n", n, m, k, c)
	fmt.Printf("memory:       %d bytes\n", f.SizeBytes())
	fmt.Printf("fill ratio:   %.4f\n", f.FillRatio())
	fmt.Printf("correct:      %.4f measured, %.4f theory (Equations 26–28)\n",
		float64(correct)/float64(n), analytic.CRWorkload(m, n, k, c, counts))
	fmt.Printf("overestimates: %d (never underestimates)\n", over)
	return nil
}
