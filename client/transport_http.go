package client

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"shbf/internal/wire"
)

// httpTransport maps the wire ops onto the daemon's /v2 HTTP/JSON API.
// Keys travel base64-encoded (element IDs are arbitrary bytes), which
// is exactly the decode overhead the binary transport exists to avoid
// — this transport is for convenience and ops tooling, not the serving
// hot path.
type httpTransport struct {
	base string
	hc   *http.Client
}

func newHTTPTransport(base string, hc *http.Client) *httpTransport {
	if hc == nil {
		hc = &http.Client{}
	}
	return &httpTransport{base: strings.TrimSuffix(base, "/"), hc: hc}
}

func (t *httpTransport) close() error {
	t.hc.CloseIdleConnections()
	return nil
}

// encodeKeys maps binary keys to the JSON API's base64 form.
func encodeKeys(keys [][]byte) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = base64.StdEncoding.EncodeToString(k)
	}
	return out
}

// nsPath builds /v2/namespaces/{ns}{suffix} with the namespace
// URL-escaped.
func (t *httpTransport) nsPath(ns, suffix string) string {
	if ns == "" {
		ns = "default"
	}
	return t.base + "/v2/namespaces/" + url.PathEscape(ns) + suffix
}

func (t *httpTransport) roundTrip(ctx context.Context, req *wire.Request, resp *wire.Response) error {
	*resp = wire.Response{Status: wire.StatusOK, Op: req.Op}
	switch req.Op {
	case wire.OpPing:
		return t.get(ctx, req, resp, t.base+"/healthz", nil)

	case wire.OpStats:
		var raw json.RawMessage
		if err := t.get(ctx, req, resp, t.nsPath(req.Namespace, "/stats"), &raw); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = raw
		return nil

	case wire.OpNamespaceList:
		var raw json.RawMessage
		if err := t.get(ctx, req, resp, t.base+"/v2/namespaces", &raw); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = raw
		return nil

	case wire.OpNamespaceCreate:
		return t.post(ctx, req, resp, t.base+"/v2/namespaces", json.RawMessage(req.Blob), nil)

	case wire.OpNamespaceDelete:
		return t.doJSON(ctx, req, resp, http.MethodDelete, t.nsPath(req.Namespace, ""), nil, nil)

	case wire.OpRotate:
		var body struct {
			Rotated []string `json:"rotated"`
			Epoch   uint64   `json:"epoch"`
		}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, "/rotate"), struct{}{}, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Rotated, resp.Epoch = body.Rotated, body.Epoch
		return nil

	case wire.OpMembershipAdd:
		var body struct {
			Added uint64 `json:"added"`
		}
		payload := map[string]any{"keys": encodeKeys(req.Keys), "encoding": "base64"}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, "/membership/add"), payload, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Applied = body.Added
		return nil

	case wire.OpMembershipContains:
		var body struct {
			Results []bool `json:"results"`
		}
		payload := map[string]any{"keys": encodeKeys(req.Keys), "encoding": "base64"}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, "/membership/contains"), payload, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Bools = body.Results
		return nil

	case wire.OpAssociationAdd, wire.OpAssociationRemove:
		var body struct {
			Applied uint64 `json:"applied"`
		}
		suffix := "/association/add"
		if req.Op == wire.OpAssociationRemove {
			suffix = "/association/remove"
		}
		payload := map[string]any{"set": int(req.Set), "keys": encodeKeys(req.Keys), "encoding": "base64"}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, suffix), payload, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Applied = body.Applied
		return nil

	case wire.OpAssociationQuery:
		var body struct {
			Results []struct {
				Mask *uint8 `json:"mask"`
			} `json:"results"`
		}
		payload := map[string]any{"keys": encodeKeys(req.Keys), "encoding": "base64"}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, "/association/classify"), payload, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Regions = make([]byte, len(body.Results))
		for i, r := range body.Results {
			if r.Mask == nil {
				return fmt.Errorf("client: classify result %d has no mask (daemon too old for the v2 API?)", i)
			}
			resp.Regions[i] = *r.Mask
		}
		return nil

	case wire.OpMultiplicityAdd, wire.OpMultiplicityRemove:
		var body struct {
			Applied uint64 `json:"applied"`
		}
		suffix := "/multiplicity/add"
		if req.Op == wire.OpMultiplicityRemove {
			suffix = "/multiplicity/remove"
		}
		items := make([]map[string]any, 0, len(req.Keys))
		for i, k := range req.Keys {
			count := 1
			if len(req.Counts) != 0 {
				count = req.Counts[i]
			}
			if count == 0 {
				continue // wire semantics: zero count applies nothing
			}
			items = append(items, map[string]any{
				"key":   base64.StdEncoding.EncodeToString(k),
				"count": count,
			})
		}
		payload := map[string]any{"items": items, "encoding": "base64"}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, suffix), payload, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Applied = body.Applied
		return nil

	case wire.OpMultiplicityCount:
		var body struct {
			Counts []int `json:"counts"`
		}
		payload := map[string]any{"keys": encodeKeys(req.Keys), "encoding": "base64"}
		if err := t.post(ctx, req, resp, t.nsPath(req.Namespace, "/multiplicity/count"), payload, &body); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Counts = body.Counts
		return nil

	case wire.OpMetrics:
		// The scrape is Prometheus text, not JSON.
		data, err := t.doRaw(ctx, req, resp, http.MethodGet, t.base+"/metrics", "", nil)
		if err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = data
		return nil

	case wire.OpClusterMap:
		var raw json.RawMessage
		if err := t.get(ctx, req, resp, t.base+"/v2/cluster", &raw); err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = raw
		return nil

	case wire.OpMembershipDump:
		// The envelope endpoint serves raw ShBE bytes, not JSON.
		data, err := t.doRaw(ctx, req, resp, http.MethodGet, t.nsPath(req.Namespace, "/membership/envelope"), "", nil)
		if err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = data
		return nil

	case wire.OpFreeze:
		// The freeze endpoint serves raw ShBZ bytes, not JSON.
		data, err := t.doRaw(ctx, req, resp, http.MethodPost, t.nsPath(req.Namespace, "/freeze"), "", nil)
		if err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = data
		return nil

	case wire.OpMembershipMerge:
		// The merge body is a raw ShBE envelope; the reply is JSON.
		data, err := t.doRaw(ctx, req, resp, http.MethodPost, t.nsPath(req.Namespace, "/merge"), "application/octet-stream", req.Blob)
		if err != nil || resp.Status != wire.StatusOK {
			return err
		}
		var body struct {
			MergedN uint64 `json:"merged_n"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			return fmt.Errorf("client: decoding merge response: %w", err)
		}
		resp.Applied = body.MergedN
		return nil

	case wire.OpMultiplicityDump:
		// The envelope endpoint serves raw ShBE bytes, not JSON.
		data, err := t.doRaw(ctx, req, resp, http.MethodGet, t.nsPath(req.Namespace, "/multiplicity/envelope"), "", nil)
		if err != nil || resp.Status != wire.StatusOK {
			return err
		}
		resp.Blob = data
		return nil

	case wire.OpMultiplicityMerge:
		// The merge body is a raw ShBE envelope; the reply is JSON.
		data, err := t.doRaw(ctx, req, resp, http.MethodPost, t.nsPath(req.Namespace, "/multiplicity/merge"), "application/octet-stream", req.Blob)
		if err != nil || resp.Status != wire.StatusOK {
			return err
		}
		var body struct {
			MergedN uint64 `json:"merged_n"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			return fmt.Errorf("client: decoding merge response: %w", err)
		}
		resp.Applied = body.MergedN
		return nil
	}
	return fmt.Errorf("client: op %s has no HTTP mapping", wire.OpName(req.Op))
}

func (t *httpTransport) get(ctx context.Context, req *wire.Request, resp *wire.Response, url string, out any) error {
	return t.doJSON(ctx, req, resp, http.MethodGet, url, nil, out)
}

func (t *httpTransport) post(ctx context.Context, req *wire.Request, resp *wire.Response, url string, payload, out any) error {
	return t.doJSON(ctx, req, resp, http.MethodPost, url, payload, out)
}

// doJSON runs one JSON HTTP exchange over doRaw, decoding the success
// body into out.
func (t *httpTransport) doJSON(ctx context.Context, req *wire.Request, resp *wire.Response, method, url string, payload, out any) error {
	var body []byte
	contentType := ""
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("client: encoding %s request: %w", wire.OpName(req.Op), err)
		}
		body, contentType = b, "application/json"
	}
	data, err := t.doRaw(ctx, req, resp, method, url, contentType, body)
	if err != nil || resp.Status != wire.StatusOK {
		return err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decoding %s response: %w", wire.OpName(req.Op), err)
		}
	}
	return nil
}

// doRaw runs one HTTP exchange with an arbitrary request body and
// returns the raw response body, mapping HTTP failure statuses onto
// the wire status codes so both transports report identically.
func (t *httpTransport) doRaw(ctx context.Context, req *wire.Request, resp *wire.Response, method, url, contentType string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		hreq.Header.Set("Content-Type", contentType)
	}
	hresp, err := t.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", wire.OpName(req.Op), err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, wire.MaxFrame))
	if err != nil {
		return nil, fmt.Errorf("client: reading %s response: %w", wire.OpName(req.Op), err)
	}
	if hresp.StatusCode >= 400 {
		var e struct {
			Error   string `json:"error"`
			Applied uint64 `json:"applied"`
		}
		if json.Unmarshal(data, &e) != nil || e.Error == "" {
			e.Error = fmt.Sprintf("HTTP %d: %s", hresp.StatusCode, bytes.TrimSpace(data))
		}
		resp.Status = httpStatusToWire(hresp.StatusCode)
		resp.Msg = e.Error
		resp.Applied = e.Applied
		return nil, nil
	}
	return data, nil
}

// httpStatusToWire maps an HTTP failure status onto the wire codes.
func httpStatusToWire(status int) byte {
	switch status {
	case http.StatusBadRequest:
		return wire.StatusBadRequest
	case http.StatusNotFound:
		return wire.StatusNotFound
	case http.StatusConflict:
		return wire.StatusConflict
	case http.StatusTooManyRequests:
		return wire.StatusOverloaded
	}
	return wire.StatusInternal
}
