package server

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// The daemon snapshot bundles the three sharded filters into one file:
// 4-byte magic "ShBD", a version byte, then three length-prefixed
// blobs (membership, association, multiplicity), each the filter's own
// MarshalBinary output. Geometry and seeds travel inside the blobs, so
// a restored daemon answers identically even if its flags changed —
// the snapshot wins.

const (
	daemonSnapVersion = 1
	daemonSnapMagic   = "ShBD"
)

// SaveSnapshot atomically writes the full filter state to path (via a
// temp file and rename in the same directory) and returns the byte
// count written. Each shard is serialized under its read lock; queries
// keep flowing while the snapshot is cut.
func (s *Server) SaveSnapshot(path string) (int, error) {
	buf := append([]byte(daemonSnapMagic), daemonSnapVersion)
	for _, m := range []interface{ MarshalBinary() ([]byte, error) }{s.mem, s.assoc, s.mult} {
		blob, err := m.MarshalBinary()
		if err != nil {
			return 0, fmt.Errorf("server: snapshot: %w", err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".shbfd-snapshot-*")
	if err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	return len(buf), nil
}

// LoadSnapshot replaces the filters' state with the snapshot at path.
// It must not run concurrently with queries; the daemon only calls it
// before serving.
func (s *Server) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("server: loading snapshot: %w", err)
	}
	if len(data) < 5 || string(data[:4]) != daemonSnapMagic {
		return fmt.Errorf("server: %s is not a shbfd snapshot", path)
	}
	if data[4] != daemonSnapVersion {
		return fmt.Errorf("server: unsupported snapshot version %d", data[4])
	}
	buf := data[5:]
	for i, u := range []interface{ UnmarshalBinary([]byte) error }{s.mem, s.assoc, s.mult} {
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf)-sz) < n {
			return fmt.Errorf("server: snapshot section %d truncated", i)
		}
		buf = buf[sz:]
		if err := u.UnmarshalBinary(buf[:n]); err != nil {
			return fmt.Errorf("server: snapshot section %d: %w", i, err)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("server: %d trailing snapshot bytes", len(buf))
	}
	return nil
}
