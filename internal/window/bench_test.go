package window

import (
	"fmt"
	"testing"

	"shbf/internal/core"
)

// Window benchmarks: query cost as a function of the ring length G.
// A window Contains probes up to G generations (early-exit on the
// first hit), so negative probes — the common case for streaming
// membership — cost ≈ G × one generation's rejection cost, while
// positives resident in the head cost one generation. CI runs these
// at -benchtime=1x as a smoke test; EXPERIMENTS.md documents the
// measured scaling.

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%08d", i)[:13]) // the paper's 13-byte flow IDs
	}
	return keys
}

func newBenchWindow(b *testing.B, g int) *Membership {
	b.Helper()
	w, err := NewMembership(core.Spec{Kind: core.KindWindowMembership, M: 1 << 20, K: 8,
		Generations: g, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkWindowContainsNegative measures the worst case: a key in no
// generation probes the full ring.
func BenchmarkWindowContainsNegative(b *testing.B) {
	members := benchKeys(4096)
	negatives := make([][]byte, 4096)
	for i := range negatives {
		negatives[i] = []byte(fmt.Sprintf("absent-no-%06d", i)[:13])
	}
	for _, g := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			w := newBenchWindow(b, g)
			for tick := 0; tick < g; tick++ { // steady state: every generation loaded
				if err := w.AddAll(members); err != nil {
					b.Fatal(err)
				}
				if err := w.Rotate(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Contains(negatives[i%len(negatives)])
			}
		})
	}
}

// BenchmarkWindowContainsHead measures the common streaming positive: a
// key living in the head generation answers after one generation's
// probes regardless of G.
func BenchmarkWindowContainsHead(b *testing.B) {
	members := benchKeys(4096)
	for _, g := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			w := newBenchWindow(b, g)
			if err := w.AddAll(members); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Contains(members[i%len(members)])
			}
		})
	}
}

// BenchmarkWindowContainsAll measures the batch path's per-key cost:
// one digest pass per key, G generation probes from the cached digest.
func BenchmarkWindowContainsAll(b *testing.B) {
	members := benchKeys(1024)
	for _, g := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			w := newBenchWindow(b, g)
			for tick := 0; tick < g; tick++ {
				if err := w.AddAll(members); err != nil {
					b.Fatal(err)
				}
				if err := w.Rotate(); err != nil {
					b.Fatal(err)
				}
			}
			dst := make([]bool, len(members))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = w.ContainsAll(dst, members)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(members)), "ns/key")
		})
	}
}

// BenchmarkWindowRotate measures the rotation itself (membership rings
// clear the retired generation in place — cost is one bit-array clear).
func BenchmarkWindowRotate(b *testing.B) {
	w := newBenchWindow(b, 4)
	if err := w.AddAll(benchKeys(4096)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Rotate(); err != nil {
			b.Fatal(err)
		}
	}
}
