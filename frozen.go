package shbf

import "shbf/internal/frozen"

// Frozen is an open read-only frozen filter: a ShBZ container whose
// query path runs directly over the container bytes with zero
// deserialization and zero allocation, so the same bytes serve from an
// mmap region, a slice of a larger file, or an in-memory snapshot.
// Open one with [OpenFrozen]; build the bytes with [Freeze]. A Frozen
// is immutable and safe for unlimited concurrent readers.
type Frozen = frozen.Filter

// FrozenStack is an open stack file: N frozen filters behind one
// index, opened once ([OpenFrozenStack]) with O(1) access to each
// ([FrozenStack.At]) — the shape a host storage engine wants for
// thousands of SSTable-style filters in one mapped file. Build one
// with [FrozenStackBuilder].
type FrozenStack = frozen.Stack

// FrozenStackBuilder accumulates frozen containers and renders a stack
// file; the zero value is ready to use.
type FrozenStackBuilder = frozen.StackBuilder

// FrozenSet is the read-only query surface of a frozen filter: the
// membership half of [Set], with no mutation path to misuse. [Frozen]
// implements it over raw container bytes.
type FrozenSet interface {
	// Contains reports whether e may be in the frozen set (no false
	// negatives relative to the frozen source).
	Contains(e []byte) bool
	// ContainsAll answers a batch into dst (resized to len(keys)),
	// following the library's batch convention.
	ContainsAll(dst []bool, keys [][]byte) []bool
	// N returns the element count recorded at freeze time.
	N() int
}

// Compile-time conformance: the frozen container implements the
// read-only query surface.
var _ FrozenSet = (*Frozen)(nil)

// Freeze compacts a membership-family filter into a read-only ShBZ
// container: [Membership], [CountingMembership] (its query-side bit
// array), [ShardedMembership], [WindowMembership] and
// [ShardedWindowMembership]. Windowed rings collapse by union —
// generations share one geometry and seed, so ORing their bit arrays
// yields a filter answering "seen in any live generation": never a
// false negative, answers a superset of the ring's. Other kinds return
// an error naming the kind.
//
// The container embeds the full probe geometry; [OpenFrozen] needs no
// out-of-band knowledge, and a frozen filter answers bit-identically
// to its (non-windowed) live source because both run the same digest
// pipeline over the same bit layout.
func Freeze(f Filter) ([]byte, error) { return frozen.Append(nil, f) }

// AppendFreeze is [Freeze] appending to dst — for staging several
// containers into one buffer without intermediate copies.
func AppendFreeze(dst []byte, f Filter) ([]byte, error) { return frozen.Append(dst, f) }

// OpenFrozen opens a ShBZ container at the start of data (trailing
// bytes are ignored, so a container embedded at an offset into a
// larger mapped file opens in place). The returned filter aliases
// data — which must stay immutable and mapped — and the open cost is
// independent of the bit array's size: a 64-byte header parse plus one
// small hash family per shard.
func OpenFrozen(data []byte) (*Frozen, error) { return frozen.Open(data) }

// OpenFrozenStack opens a stack file ([FrozenStackBuilder],
// cmd/shbf stack): one O(count) index validation, then
// [FrozenStack.At] opens any member filter in place in O(1).
func OpenFrozenStack(data []byte) (*FrozenStack, error) { return frozen.OpenStack(data) }
