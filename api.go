package shbf

import (
	"fmt"
	"time"

	"shbf/internal/core"
	"shbf/internal/sharded"
	"shbf/internal/window"
)

// This file is the unified, spec-driven construction surface: a Kind
// for every filter the framework instantiates, a Spec capturing full
// construction geometry, one New entry point dispatching over both,
// and the small interfaces every filter kind presents. The typed
// constructors in shbf.go remain as thin wrappers for callers that
// want concrete types.

// Kind identifies one instantiation of the shifting Bloom filter
// framework; see the Kind* constants.
type Kind = core.Kind

// The framework's filter kinds, accepted by [New] in [Spec].Kind. The
// KindWindow* kinds are the sliding-window generation rings; they are
// most conveniently built through [NewWindow], which derives the
// window kind from the base kind being windowed.
const (
	KindMembership                = core.KindMembership
	KindCountingMembership        = core.KindCountingMembership
	KindTShift                    = core.KindTShift
	KindAssociation               = core.KindAssociation
	KindCountingAssociation       = core.KindCountingAssociation
	KindMultiAssociation          = core.KindMultiAssociation
	KindMultiplicity              = core.KindMultiplicity
	KindCountingMultiplicity      = core.KindCountingMultiplicity
	KindSCMSketch                 = core.KindSCMSketch
	KindShardedMembership         = core.KindShardedMembership
	KindShardedAssociation        = core.KindShardedAssociation
	KindShardedMultiplicity       = core.KindShardedMultiplicity
	KindWindowMembership          = core.KindWindowMembership
	KindWindowAssociation         = core.KindWindowAssociation
	KindWindowMultiplicity        = core.KindWindowMultiplicity
	KindWindowShardedMembership   = core.KindWindowShardedMembership
	KindWindowShardedAssociation  = core.KindWindowShardedAssociation
	KindWindowShardedMultiplicity = core.KindWindowShardedMultiplicity
)

// ParseKind maps a canonical kind name (a Kind's String form, e.g.
// "counting-multiplicity") to its Kind.
func ParseKind(name string) (Kind, error) { return core.ParseKind(name) }

// Spec is a filter's complete construction geometry: the kind plus
// every parameter it needs, the single currency of [New], the sizing
// planners, and every built filter's Spec method.
type Spec = core.Spec

// Stats is the uniform occupancy snapshot every filter reports.
type Stats = core.Stats

// Filter is the interface every filter kind implements: it can name
// its kind, report the Spec that reconstructs its empty twin, snapshot
// its occupancy, and serialize itself. [Load] and [Dump] round-trip
// any Filter through the self-describing envelope.
type Filter interface {
	Kind() Kind
	Spec() Spec
	Stats() Stats
	MarshalBinary() ([]byte, error)
}

// Set is the static membership surface, scalar and batch: Membership,
// TShift and ShardedMembership implement it. (CountingMembership
// inserts fallibly and is Updatable instead; it still has Contains,
// ContainsAll and AddAll.)
type Set interface {
	Add(e []byte)
	Contains(e []byte) bool
	AddAll(keys [][]byte) error
	ContainsAll(dst []bool, keys [][]byte) []bool
}

// Adder is the batch insertion surface shared by the membership kinds,
// the counting multiplicity kinds, and the SCM sketch (where AddAll
// increments each key once).
type Adder interface {
	AddAll(keys [][]byte) error
}

// Updatable is the dynamic-update surface of the counting kinds:
// CountingMembership, CountingMultiplicity and ShardedMultiplicity
// implement it. (The association kinds update per set via
// InsertS1/InsertS2 and are not Updatable.)
type Updatable interface {
	Insert(e []byte) error
	Delete(e []byte) error
}

// Counter is the multiplicity-query surface: Multiplicity,
// CountingMultiplicity and ShardedMultiplicity implement it.
type Counter interface {
	Count(e []byte) int
	CountAll(dst []int, keys [][]byte) []int
}

// Associator is the two-set association surface: Association,
// CountingAssociation, ShardedAssociation and the association windows
// implement it. (MultiAssociation answers with a MultiAnswer, not a
// Region, and is queried directly.)
type Associator interface {
	Query(e []byte) Region
	QueryAll(dst []Region, keys [][]byte) []Region
}

// Windowed is the rotation surface of the sliding-window kinds (every
// KindWindow* filter implements it): Rotate retires the oldest
// generation now, RotateIfDue applies the Spec's Tick policy against a
// caller-supplied clock, and Window snapshots the ring. Query and
// write methods never rotate implicitly — a serving loop owns the
// cadence (cmd/shbfd's -tick, or the caller's own ticker).
type Windowed interface {
	Rotate() error
	RotateIfDue(now time.Time) (bool, error)
	Window() WindowInfo
}

// WindowInfo is a sliding-window filter's rotation snapshot: ring
// length, completed rotations, configured tick, and per-generation
// occupancy newest to oldest.
type WindowInfo = window.Info

// WindowGenInfo is one generation's occupancy inside a WindowInfo.
type WindowGenInfo = window.GenInfo

// WindowOpts configures [NewWindow]: the ring length and the rotation
// period.
type WindowOpts struct {
	// Generations is the ring length G (≥ 2). Writes go to the head
	// generation; a key expires G−1..G rotations after its last write.
	// Memory is G × the base Spec's footprint, and the window false-
	// positive rate is bounded by 1 − (1−f)^G for a per-generation
	// rate f.
	Generations int

	// Tick is the wall-clock rotation period honored by
	// [Windowed.RotateIfDue] and shbfd's -tick loop; zero leaves
	// rotation fully explicit via [Windowed.Rotate]. The effective
	// sliding window spans (Generations−1..Generations) × Tick.
	Tick time.Duration
}

// asFilter adapts a concrete constructor result to the Filter
// interface without wrapping a typed nil on error.
func asFilter[F Filter](f F, err error) (Filter, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}

// New constructs an empty filter of any kind from its Spec — the
// single entry point behind which all twelve constructors sit.
// Spec fields that do not apply to the requested kind are rejected
// with an error rather than silently ignored, as are options that the
// kind's constructor does not consume. The association kinds are
// constructed empty; use the typed [BuildAssociation] and
// [BuildMultiAssociation] to encode static sets at build time, or the
// counting/sharded association kinds for dynamic updates.
func New(spec Spec) (Filter, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts := spec.Options()
	switch spec.Kind {
	case KindMembership:
		return asFilter(core.NewMembership(spec.M, spec.K, opts...))
	case KindCountingMembership:
		return asFilter(core.NewCountingMembership(spec.M, spec.K, opts...))
	case KindTShift:
		return asFilter(core.NewTShift(spec.M, spec.K, spec.T, opts...))
	case KindAssociation:
		return asFilter(core.BuildAssociation(nil, nil, spec.M, spec.K, opts...))
	case KindCountingAssociation:
		return asFilter(core.NewCountingAssociation(spec.M, spec.K, opts...))
	case KindMultiAssociation:
		return asFilter(core.BuildMultiAssociation(make([][][]byte, spec.G), spec.M, spec.K, opts...))
	case KindMultiplicity:
		return asFilter(core.NewMultiplicity(spec.M, spec.K, spec.C, opts...))
	case KindCountingMultiplicity:
		return asFilter(core.NewCountingMultiplicity(spec.M, spec.K, spec.C, opts...))
	case KindSCMSketch:
		// Spec maps the sketch geometry onto (M, K) = (r, d).
		return asFilter(core.NewSCMSketch(spec.K, spec.M, opts...))
	case KindShardedMembership:
		return asFilter(sharded.New(spec.M, spec.K, spec.Shards, opts...))
	case KindShardedAssociation:
		return asFilter(sharded.NewAssociation(spec.M, spec.K, spec.Shards, opts...))
	case KindShardedMultiplicity:
		return asFilter(sharded.NewMultiplicity(spec.M, spec.K, spec.C, spec.Shards, opts...))
	case KindWindowMembership:
		return asFilter(window.NewMembership(spec))
	case KindWindowAssociation:
		return asFilter(window.NewAssociation(spec))
	case KindWindowMultiplicity:
		return asFilter(window.NewMultiplicity(spec))
	case KindWindowShardedMembership:
		return asFilter(sharded.NewWindow(spec))
	case KindWindowShardedAssociation:
		return asFilter(sharded.NewWindowAssociation(spec))
	case KindWindowShardedMultiplicity:
		return asFilter(sharded.NewWindowMultiplicity(spec))
	}
	return nil, fmt.Errorf("shbf: unknown filter kind %s", spec.Kind)
}

// NewWindow wraps a base filter Spec in a sliding-window generation
// ring: base describes one generation (its kind, geometry and seed —
// exactly the Spec the non-windowed filter would be built from), opts
// the ring length and rotation period. The result is the windowed
// filter as a [Filter]; it conforms to the base kind's query surface
// ([Set], [Counter] or [Associator], batch paths included) plus
// [Windowed] for rotation.
//
//	f, _ := shbf.NewWindow(shbf.Spec{Kind: shbf.KindMembership, M: m, K: k},
//		shbf.WindowOpts{Generations: 4, Tick: time.Minute})
//	set, win := f.(shbf.Set), f.(shbf.Windowed)
//
// Windowable base kinds: membership, association and multiplicity, in
// their monolithic and sharded forms. The association and multiplicity
// windows ring the counting variants (a streaming head generation
// needs incremental inserts), so KindAssociation and KindMultiplicity
// are accepted as aliases for their counting forms. Kinds with no
// streaming rotation semantics (t-shift, multi-association, the SCM
// sketch, counting membership — whose Delete a rotation would
// invalidate) are rejected.
func NewWindow(base Spec, opts WindowOpts) (Filter, error) {
	kind, err := core.WindowKind(base.Kind)
	if err != nil {
		return nil, err
	}
	spec := base
	spec.Kind = kind
	spec.Generations = opts.Generations
	spec.Tick = opts.Tick
	return New(spec)
}
