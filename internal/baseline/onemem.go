package baseline

import (
	"fmt"

	"shbf/internal/hashing"
	"shbf/internal/memmodel"
)

// OneMemBF is 1MemBF, the one-memory-access Bloom filter of Qiao et al.
// [17] ("One memory access bloom filters and their generalization"),
// which the paper treats as the state of the art for membership queries
// (Figures 7 and 9). All k bits of an element are confined to a single
// machine word: one hash selects the word, k further hash values select
// bit offsets inside it, so every query costs exactly one memory access
// and k+1 hash computations.
//
// The price — measured in Figure 7 — is a higher false-positive rate:
// "hashing k values into one or more words incurs serious unbalance in
// distributions of 1s and 0s" (Section 6.2.1). The word-local collisions
// also mean fewer than k distinct bits may be set per element.
type OneMemBF struct {
	words []uint64
	m     int // total bits (nWords × 64)
	k     int
	fam   *hashing.Family // 1 word-selector + k offset functions
	n     int
	acc   *memmodel.Counter
}

// NewOneMemBF returns an empty 1MemBF of at least m bits (rounded up to
// a whole number of 64-bit words) with k bits per element.
func NewOneMemBF(m, k int, opts ...Option) (*OneMemBF, error) {
	cfg := applyOptions(opts)
	if m <= 0 {
		return nil, fmt.Errorf("baseline: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d must be ≥ 1", k)
	}
	nWords := (m + 63) / 64
	return &OneMemBF{
		words: make([]uint64, nWords),
		m:     nWords * 64,
		k:     k,
		fam:   hashing.NewFamily(k+1, cfg.seed),
		acc:   cfg.counter,
	}, nil
}

// M returns the total bit count; K and N the other parameters.
func (f *OneMemBF) M() int { return f.m }
func (f *OneMemBF) K() int { return f.k }
func (f *OneMemBF) N() int { return f.n }

// SizeBytes returns the storage footprint.
func (f *OneMemBF) SizeBytes() int { return len(f.words) * 8 }

// HashOpsPerQuery returns k+1, the worst case (Section 6.2.3); like the
// other schemes, Contains evaluates hash functions lazily, so a negative
// answered by the first in-word bit costs only 2.
func (f *OneMemBF) HashOpsPerQuery() int { return f.k + 1 }

// mask computes the word index and the k-bit in-word mask for e from
// one digest pass.
func (f *OneMemBF) mask(e []byte) (word int, mask uint64) {
	d := f.fam.Digest(e)
	word = f.fam.ModFromDigest(0, d, len(f.words))
	for i := 1; i <= f.k; i++ {
		mask |= 1 << (f.fam.FromDigest(i, d) & 63)
	}
	return word, mask
}

// Add inserts e: its k bits are OR-ed into one word with a single write
// access.
func (f *OneMemBF) Add(e []byte) {
	word, mask := f.mask(e)
	f.words[word] |= mask
	f.acc.AddWrites(1)
	f.n++
}

// Contains reports whether e may be in the set with exactly one read
// access (the scheme's defining property). The word is fetched once;
// in-word bits are then checked with lazily mixed hash values and
// early termination.
func (f *OneMemBF) Contains(e []byte) bool {
	d := f.fam.Digest(e)
	w := f.words[f.fam.ModFromDigest(0, d, len(f.words))]
	f.acc.AddReads(1)
	for i := 1; i <= f.k; i++ {
		if w&(1<<(f.fam.FromDigest(i, d)&63)) == 0 {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits.
func (f *OneMemBF) FillRatio() float64 {
	ones := 0
	for _, w := range f.words {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(f.m)
}

// Reset clears the filter.
func (f *OneMemBF) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.n = 0
}
