package baseline

import (
	"errors"
	"fmt"

	"shbf/internal/counters"
	"shbf/internal/hashing"
)

// ErrNotStored is returned by CBF.Delete (and DCF.Delete) when the
// element's encoding is not fully present.
var ErrNotStored = errors.New("baseline: element not stored")

// ErrSaturated is returned when an update would overflow a fixed-width
// counter.
var ErrSaturated = errors.New("baseline: counter saturated")

// CBF is the counting Bloom filter of Fan et al. [11]: each bit of a
// standard Bloom filter becomes a fixed-width counter so elements can be
// deleted (paper Section 1.1).
type CBF struct {
	counts *counters.Array
	m      int
	k      int
	fam    *hashing.Family
	n      int
}

// NewCBF returns an empty counting Bloom filter with m counters and k
// hash functions.
func NewCBF(m, k int, opts ...Option) (*CBF, error) {
	cfg := applyOptions(opts)
	if m <= 0 {
		return nil, fmt.Errorf("baseline: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d must be ≥ 1", k)
	}
	arr := counters.New(m, cfg.counterWidth)
	arr.SetCounter(cfg.counter)
	return &CBF{
		counts: arr,
		m:      m,
		k:      k,
		fam:    hashing.NewFamily(k, cfg.seed),
	}, nil
}

// M, K and N report the parameters and the net insert count.
func (f *CBF) M() int { return f.m }
func (f *CBF) K() int { return f.k }
func (f *CBF) N() int { return f.n }

// SizeBytes returns the counter-array footprint — width× larger than
// the equivalent BF, the overhead ShBF's counting variants also pay but
// only on the off-chip update path.
func (f *CBF) SizeBytes() int { return f.counts.SizeBytes() }

// Insert adds e, incrementing k counters. ErrSaturated is returned (and
// the insert rolled back) if any counter is at its maximum.
func (f *CBF) Insert(e []byte) error {
	d := f.fam.Digest(e)
	for i := 0; i < f.k; i++ {
		p := f.fam.ModFromDigest(i, d, f.m)
		if f.counts.Peek(p) == f.counts.Max() {
			for j := 0; j < i; j++ {
				f.counts.Dec(f.fam.ModFromDigest(j, d, f.m))
			}
			return ErrSaturated
		}
		f.counts.Inc(p)
	}
	f.n++
	return nil
}

// Delete removes one occurrence of e, decrementing k counters, or
// returns ErrNotStored (leaving the filter unchanged) if some counter is
// already zero.
func (f *CBF) Delete(e []byte) error {
	d := f.fam.Digest(e)
	for i := 0; i < f.k; i++ {
		if f.counts.Peek(f.fam.ModFromDigest(i, d, f.m)) == 0 {
			return ErrNotStored
		}
	}
	for i := 0; i < f.k; i++ {
		f.counts.Dec(f.fam.ModFromDigest(i, d, f.m))
	}
	f.n--
	return nil
}

// Contains reports whether e may be in the set (all k counters ≥ 1).
func (f *CBF) Contains(e []byte) bool {
	d := f.fam.Digest(e)
	for i := 0; i < f.k; i++ {
		if f.counts.Get(f.fam.ModFromDigest(i, d, f.m)) == 0 {
			return false
		}
	}
	return true
}

// Overflows reports saturation events.
func (f *CBF) Overflows() uint64 { return f.counts.Overflows() }
