package experiment

import (
	"fmt"
	"math"
	"time"

	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/trace"
)

// RunUpdateTable benchmarks the update paths the paper describes but
// does not measure: churn throughput (alternating full insert and
// delete passes) of the counting variants (CBF, CShBF_M — Section 3.3;
// CShBF_X in both Section 5.3 modes) plus the cuckoo filter's
// displacement-based updates (Section 2.1). Memory is sized at the
// optimum for the element count; counting schemes use 8-bit counters so
// saturation never distorts the timing.
func RunUpdateTable(cfg Config) *Table {
	const k = 8
	n := cfg.MultisetSize / 2
	if n < 1000 {
		n = 1000
	}
	nf := float64(n)
	m := int(nf * k / math.Ln2)

	gen := trace.NewGenerator(cfg.Seed)
	elems := trace.Bytes(gen.Distinct(n))

	tab := &Table{
		ID:    "updates",
		Title: fmt.Sprintf("update throughput (n=%d, k=%d, 8-bit counters)", n, k),
		Columns: []string{"scheme", "churn Mops (insert+delete)", "memory bytes",
			"update accesses/op (model)"},
	}

	type updScheme struct {
		name     string
		insert   func(e []byte) error
		delete   func(e []byte) error
		size     func() int
		accesses string
	}

	seed := uint64(cfg.Seed)
	cbf, err := baseline.NewCBF(m, k, baseline.WithSeed(seed), baseline.WithCounterWidth(8))
	if err != nil {
		panic(err)
	}
	cshbfm, err := core.NewCountingMembership(m, k, core.WithSeed(seed), core.WithCounterWidth(8))
	if err != nil {
		panic(err)
	}
	// CShBF_X sized like Figure 11 (1.5× optimal); counts alternate
	// between 0 and 1 so the timing isolates the re-encoding machinery.
	mx := int(1.5 * nf * k / math.Ln2)
	safeX, err := core.NewCountingMultiplicity(mx, k, 57, core.WithSeed(seed), core.WithCounterWidth(8))
	if err != nil {
		panic(err)
	}
	unsafeX, err := core.NewCountingMultiplicity(mx, k, 57,
		core.WithSeed(seed), core.WithCounterWidth(8), core.WithUnsafeUpdates())
	if err != nil {
		panic(err)
	}
	cuckoo, err := baseline.NewCuckooFilter(n*2, baseline.WithSeed(seed))
	if err != nil {
		panic(err)
	}

	schemes := []updScheme{
		{"CBF", cbf.Insert, cbf.Delete, cbf.SizeBytes, fmt.Sprintf("%d (k counters)", k)},
		{"CShBF_M", cshbfm.Insert, cshbfm.Delete, cshbfm.SizeBytes,
			fmt.Sprintf("%d (k/2 paired counters, §3.3)", k/2)},
		{"CShBF_X (5.3.2)", safeX.Insert, safeX.Delete, safeX.SizeBytes,
			fmt.Sprintf("%d (2k + table)", 2*k)},
		{"CShBF_X (5.3.1)", unsafeX.Insert, unsafeX.Delete, unsafeX.SizeBytes,
			fmt.Sprintf("%d (2k + B query)", 2*k)},
		{"Cuckoo filter", cuckoo.Insert,
			func(e []byte) error {
				cuckoo.Delete(e)
				return nil
			},
			cuckoo.SizeBytes, "2 buckets"},
	}

	for _, s := range schemes {
		mops := measureChurnMops(elems, cfg.MinTiming, s.insert, s.delete)
		tab.AddRow(s.name,
			fmt.Sprintf("%.2f", mops),
			fmt.Sprintf("%d", s.size()),
			s.accesses)
	}
	tab.Notes = append(tab.Notes,
		"CShBF_X pays double updates (remove old encoding, add new) plus its off-chip table — the §5.3 trade for one-sided multiplicity errors")
	return tab
}

// measureChurnMops times alternating insert and delete passes over all
// elements (each pass leaves the structure back at its starting state)
// and returns millions of update operations per second.
func measureChurnMops(elems [][]byte, minTime time.Duration, insert, delete func([]byte) error) float64 {
	start := time.Now()
	ops := 0
	for time.Since(start) < minTime {
		for _, e := range elems {
			_ = insert(e)
		}
		for _, e := range elems {
			_ = delete(e)
		}
		ops += 2 * len(elems)
	}
	elapsed := time.Since(start).Seconds()
	return float64(ops) / elapsed / 1e6
}
