package baseline

import (
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
)

// KMBF is the Kirsch–Mitzenmacher double-hashing Bloom filter [13]:
// two base hash values simulate k functions as g_i = h1 + i·h2 (mod m).
// The paper cites it as the prior art for reducing hash computations —
// "but the cost is increased FPR" (Section 2.1). One Sum128 supplies
// both lanes, so any k costs a single hash pass; memory accesses remain
// k, which is why ShBF_M still wins on the access dimension.
type KMBF struct {
	bits *bitvec.Vector
	m    int
	k    int
	dh   hashing.Double
	n    int
	pos  []int // scratch
}

// NewKMBF returns an empty double-hashing Bloom filter.
func NewKMBF(m, k int, opts ...Option) (*KMBF, error) {
	cfg := applyOptions(opts)
	if m <= 0 {
		return nil, fmt.Errorf("baseline: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d must be ≥ 1", k)
	}
	f := &KMBF{
		bits: bitvec.New(m),
		m:    m,
		k:    k,
		dh:   hashing.NewDouble(cfg.seed),
	}
	f.bits.SetCounter(cfg.counter)
	return f, nil
}

// M, K and N report parameters and insert count.
func (f *KMBF) M() int { return f.m }
func (f *KMBF) K() int { return f.k }
func (f *KMBF) N() int { return f.n }

// HashOpsPerQuery returns 1: a single 128-bit hash pass feeds all k
// probes.
func (f *KMBF) HashOpsPerQuery() int { return 1 }

// Add inserts e.
func (f *KMBF) Add(e []byte) {
	f.pos = f.dh.Positions(e, f.k, f.m, f.pos)
	for _, p := range f.pos {
		f.bits.Set(p)
	}
	f.n++
}

// Contains reports whether e may be in the set, with per-probe early
// termination.
func (f *KMBF) Contains(e []byte) bool {
	f.pos = f.dh.Positions(e, f.k, f.m, f.pos)
	for _, p := range f.pos {
		if !f.bits.Bit(p) {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits.
func (f *KMBF) FillRatio() float64 { return f.bits.FillRatio() }

// Reset clears the filter.
func (f *KMBF) Reset() {
	f.bits.Reset()
	f.n = 0
}
