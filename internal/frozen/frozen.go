// Package frozen implements the read-only ShBZ container: any
// membership-family filter compacted into one immutable byte block
// whose query path runs directly over the bytes — zero deserialization
// at open, zero allocation per probe. The same bytes work from an mmap
// region, a slice of a larger file (SSTable-style embedding), or an
// in-memory snapshot, which is where production Bloom filters live:
// built once per immutable storage unit, probed billions of times,
// never written.
//
// # ShBZ container layout
//
// A container is a 64-byte little-endian header followed by one
// 64-byte-aligned bit section per shard:
//
//	offset size field
//	 0      4   magic "ShBZ"
//	 4      1   version (1)
//	 5      1   source kind (core.Kind of the frozen filter)
//	 6      2   reserved, zero
//	 8      4   shards S (power of two, ≥ 1)
//	12      4   k (even, ≥ 2; probes use k/2 hash pairs)
//	16      8   m — per-shard base array bits
//	24      4   w̄ — maximum offset
//	28      4   reserved, zero
//	32      8   seed (S = 1: the filter seed; S > 1: the base seed,
//	            shard i hashing with sharded.ShardSeed(seed, i))
//	40      8   n — total elements at freeze time
//	48      8   sectionWords — 64-bit words per shard section
//	56      8   total container bytes = 64 + S·sectionWords·8
//
// Each section holds the shard's bit array exactly as the live filter
// lays it out — (m+w̄−1+63)/64 data words plus one guard word, LSB
// first within each little-endian word — padded with zero words to a
// multiple of 8 words, so every section starts 64-byte (cache-line)
// aligned. The guard word keeps the probe's two-word window read
// branchless; the padding keeps stacked containers aligned for free.
//
// Windowed rings freeze by union: generations share one Spec and seed,
// so ORing their bit arrays yields a filter answering "seen in any
// live generation" — no false negatives, answers a superset of the
// ring's (the per-pair AND distributes over the union of generations).
//
// The format is pinned by a golden-bytes test; see DESIGN.md §Frozen.
package frozen

import (
	"encoding/binary"
	"fmt"

	"shbf/internal/core"
	"shbf/internal/hashing"
	"shbf/internal/sharded"
	"shbf/internal/window"
)

const (
	// headerSize is the fixed ShBZ header length.
	headerSize = 64
	// version is the current ShBZ format version.
	version = 1
	// maxShards mirrors the sharded package's construction bound.
	maxShards = 1 << 20
	// maxK bounds k against implausible headers (live filters use
	// k ≤ ~32; the family allocation is k/2+1 words).
	maxK = 1 << 16
	// maxSectionWords bounds one shard's section at 2^31 words (16 GiB)
	// so size arithmetic stays far from int overflow even on inputs
	// that lie about their geometry.
	maxSectionWords = 1 << 31
)

// magic identifies a ShBZ container.
var magic = [4]byte{'S', 'h', 'B', 'Z'}

// Filter is an open frozen filter: a view over ShBZ bytes plus the
// rebuilt hash families — the only open-time allocation. The query
// path reads the bit sections in place and allocates nothing, so one
// Filter may serve any number of concurrent readers.
type Filter struct {
	data []byte // the whole container (aliases the caller's bytes)
	secs []byte // section area, data[headerSize:]

	srcKind      core.Kind
	shards       int
	mask         uint64 // shards−1, the digest routing mask
	k, half      int
	m            int
	wbar         int
	seed         uint64
	n            int
	sectionBytes int
	fams         []*hashing.Family // one per shard
}

// sectionWords returns the per-shard section size in 64-bit words:
// the live bit array's words — (m+w̄−1+63)/64 data words plus one
// guard word — rounded up to a multiple of 8 for 64-byte alignment.
func sectionWords(m, wbar int) int {
	dataWords := (m+wbar-1+63)/64 + 1
	return (dataWords + 7) &^ 7
}

// Append encodes f as a ShBZ container appended to dst. Supported
// sources are the membership family: *core.Membership,
// *core.CountingMembership (its query-side bit array),
// *sharded.Filter, *window.Membership and *sharded.Window (rings
// collapse by union — see the package comment). Sharded sources are
// read one shard lock at a time, so the container is per-shard
// consistent; pause writers for a global point-in-time cut.
func Append(dst []byte, f any) ([]byte, error) {
	switch v := f.(type) {
	case *core.Membership:
		spec := v.Spec()
		return appendContainer(dst, core.KindMembership, 1, spec.M, spec.K, spec.MaxOffset,
			spec.Seed, v.N(), func(i int, acc []uint64) {
				copy(acc, v.BitWords())
			})

	case *core.CountingMembership:
		inner := v.Filter()
		spec := inner.Spec()
		return appendContainer(dst, core.KindCountingMembership, 1, spec.M, spec.K, spec.MaxOffset,
			spec.Seed, v.N(), func(i int, acc []uint64) {
				copy(acc, inner.BitWords())
			})

	case *sharded.Filter:
		spec := v.Spec() // M is the total; Seed the recovered base
		perShard := spec.M / spec.Shards
		// One walk snapshots every shard under its lock; the container
		// is then laid out from the copies.
		snaps := make([][]uint64, spec.Shards)
		n := 0
		v.ForEachShard(func(i int, m *core.Membership) {
			snaps[i] = append([]uint64(nil), m.BitWords()...)
			n += m.N()
		})
		return appendContainer(dst, core.KindShardedMembership, spec.Shards, perShard, spec.K,
			spec.MaxOffset, spec.Seed, n, func(i int, acc []uint64) {
				copy(acc, snaps[i])
			})

	case *window.Membership:
		spec := v.Spec()
		return appendContainer(dst, core.KindWindowMembership, 1, spec.M, spec.K, spec.MaxOffset,
			spec.Seed, v.N(), func(i int, acc []uint64) {
				v.ForEachGeneration(func(g *core.Membership) {
					orWords(acc, g.BitWords())
				})
			})

	case *sharded.Window:
		spec := v.Spec()
		perShard := spec.M / spec.Shards
		// Snapshot each shard's ring as the union of its generations,
		// one shard lock per shard.
		snaps := make([][]uint64, spec.Shards)
		n := 0
		v.ForEachShard(func(i int, w *window.Membership) {
			w.ForEachGeneration(func(g *core.Membership) {
				if snaps[i] == nil {
					snaps[i] = make([]uint64, len(g.BitWords()))
				}
				orWords(snaps[i], g.BitWords())
				n += g.N()
			})
		})
		return appendContainer(dst, core.KindWindowShardedMembership, spec.Shards, perShard, spec.K,
			spec.MaxOffset, spec.Seed, n, func(i int, acc []uint64) {
				copy(acc, snaps[i])
			})
	}
	if k, ok := f.(interface{ Kind() core.Kind }); ok {
		return nil, fmt.Errorf("frozen: cannot freeze %s filters (membership family only)", k.Kind())
	}
	return nil, fmt.Errorf("frozen: cannot freeze %T (membership family only)", f)
}

// orWords ORs src into acc (src never exceeds the section's data
// words by construction).
func orWords(acc, src []uint64) {
	for i, w := range src {
		acc[i] |= w
	}
}

// appendContainer lays out the header and sections, calling fill once
// per shard with the zeroed section to populate (as words; the data
// words of shard i's live bit array, guard included).
func appendContainer(dst []byte, kind core.Kind, shards, m, k, wbar int, seed uint64, n int,
	fill func(i int, acc []uint64)) ([]byte, error) {
	if shards < 1 || shards > maxShards || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("frozen: shard count %d is not a power of two in [1,%d]", shards, maxShards)
	}
	if m <= 0 {
		return nil, fmt.Errorf("frozen: m = %d must be positive", m)
	}
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("frozen: k = %d must be even and ≥ 2", k)
	}
	if wbar < 2 || wbar > 64 {
		return nil, fmt.Errorf("frozen: max offset w̄ = %d out of range [2,64]", wbar)
	}
	secWords := sectionWords(m, wbar)
	total := headerSize + shards*secWords*8

	var h [headerSize]byte
	copy(h[0:4], magic[:])
	h[4] = version
	h[5] = byte(kind)
	binary.LittleEndian.PutUint32(h[8:12], uint32(shards))
	binary.LittleEndian.PutUint32(h[12:16], uint32(k))
	binary.LittleEndian.PutUint64(h[16:24], uint64(m))
	binary.LittleEndian.PutUint32(h[24:28], uint32(wbar))
	binary.LittleEndian.PutUint64(h[32:40], seed)
	binary.LittleEndian.PutUint64(h[40:48], uint64(n))
	binary.LittleEndian.PutUint64(h[48:56], uint64(secWords))
	binary.LittleEndian.PutUint64(h[56:64], uint64(total))
	dst = append(dst, h[:]...)

	acc := make([]uint64, secWords)
	var sec [8]byte
	for i := 0; i < shards; i++ {
		clear(acc)
		fill(i, acc)
		for _, w := range acc {
			binary.LittleEndian.PutUint64(sec[:], w)
			dst = append(dst, sec[:]...)
		}
	}
	return dst, nil
}

// Open parses a ShBZ container at the start of data and returns a
// read-only filter over it. The bit sections are not copied — the
// returned filter aliases data, which must stay immutable and mapped
// for the filter's lifetime. Trailing bytes beyond the container's
// recorded size are ignored, so a container can be opened at an offset
// into a larger mapped file. The only allocations are the handle and
// one small hash family per shard; cost is independent of the bit
// array's size.
func Open(data []byte) (*Filter, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("frozen: %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if [4]byte(data[0:4]) != magic {
		return nil, fmt.Errorf("frozen: bad magic %q", data[0:4])
	}
	if data[4] != version {
		return nil, fmt.Errorf("frozen: unsupported version %d", data[4])
	}
	srcKind := core.Kind(data[5])
	if data[6] != 0 || data[7] != 0 ||
		binary.LittleEndian.Uint32(data[28:32]) != 0 {
		return nil, fmt.Errorf("frozen: reserved header bytes are not zero")
	}
	shards := binary.LittleEndian.Uint32(data[8:12])
	k := binary.LittleEndian.Uint32(data[12:16])
	m := binary.LittleEndian.Uint64(data[16:24])
	wbar := binary.LittleEndian.Uint32(data[24:28])
	seed := binary.LittleEndian.Uint64(data[32:40])
	n := binary.LittleEndian.Uint64(data[40:48])
	secWords := binary.LittleEndian.Uint64(data[48:56])
	total := binary.LittleEndian.Uint64(data[56:64])

	if shards < 1 || shards > maxShards || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("frozen: shard count %d is not a power of two in [1,%d]", shards, maxShards)
	}
	if k < 2 || k%2 != 0 || k > maxK {
		return nil, fmt.Errorf("frozen: k = %d must be even in [2,%d]", k, maxK)
	}
	if wbar < 2 || wbar > 64 {
		return nil, fmt.Errorf("frozen: max offset w̄ = %d out of range [2,64]", wbar)
	}
	if secWords > maxSectionWords {
		return nil, fmt.Errorf("frozen: section of %d words exceeds the %d-word bound", secWords, maxSectionWords)
	}
	// m must fit the section: the live array is (m+w̄−1+63)/64 data
	// words plus a guard, and the section is that rounded up to 8.
	if m == 0 || m > uint64(secWords)*64 {
		return nil, fmt.Errorf("frozen: m = %d inconsistent with %d-word sections", m, secWords)
	}
	if want := uint64(sectionWords(int(m), int(wbar))); secWords != want {
		return nil, fmt.Errorf("frozen: section is %d words, want %d for m=%d w̄=%d", secWords, want, m, wbar)
	}
	wantTotal := uint64(headerSize) + uint64(shards)*secWords*8
	if total != wantTotal {
		return nil, fmt.Errorf("frozen: header claims %d total bytes, geometry implies %d", total, wantTotal)
	}
	if uint64(len(data)) < total {
		return nil, fmt.Errorf("frozen: container truncated: %d bytes of %d", len(data), total)
	}
	if n > uint64(shards)*m {
		return nil, fmt.Errorf("frozen: element count %d exceeds capacity bound", n)
	}
	data = data[:total]

	f := &Filter{
		data:         data,
		secs:         data[headerSize:],
		srcKind:      srcKind,
		shards:       int(shards),
		mask:         uint64(shards) - 1,
		k:            int(k),
		half:         int(k) / 2,
		m:            int(m),
		wbar:         int(wbar),
		seed:         seed,
		n:            int(n),
		sectionBytes: int(secWords) * 8,
		fams:         make([]*hashing.Family, shards),
	}
	for i := range f.fams {
		fseed := seed
		if f.shards > 1 {
			fseed = sharded.ShardSeed(seed, i)
		}
		f.fams[i] = hashing.NewFamily(f.half+1, fseed)
	}
	return f, nil
}

// Contains reports whether e may be in the frozen set — the live
// filter's probe (digest → route → k/2 pair windows, early exit)
// reading the container bytes in place. Zero allocations; safe for
// unlimited concurrent use.
func (f *Filter) Contains(e []byte) bool {
	return f.ContainsDigest(hashing.KeyDigest(e))
}

// ContainsDigest answers Contains for the element whose one-pass
// digest is d. Kept in lockstep with core.Membership.ContainsDigest:
// same digest, same routing lane, same per-probe mix and two-word
// window read, so a frozen filter answers bit-identically to its live
// source (windowed sources answer the union of their generations).
func (f *Filter) ContainsDigest(d hashing.Digest) bool {
	si := int(d.Shard(f.mask))
	fam := f.fams[si]
	sec := f.secs[si*f.sectionBytes:]
	// o(e) ∈ [1, w̄−1]; both pair bits land inside the w̄-bit window,
	// so masking with pairMask alone replicates the live probe.
	pairMask := uint64(1) | uint64(1)<<uint(hashing.Reduce(fam.FromDigest(f.half, d), f.wbar-1)+1)
	m := f.m
	for i, half := 0, f.half; i < half; i++ {
		base := fam.ModFromDigest(i, d, m)
		wi := (base >> 6) << 3
		off := uint(base & 63)
		win := binary.LittleEndian.Uint64(sec[wi:])>>off |
			binary.LittleEndian.Uint64(sec[wi+8:])<<(64-off)
		if win&pairMask != pairMask {
			return false
		}
	}
	return true
}

// ContainsAll answers membership for a whole batch, each key digested
// once. Answers land in dst (resized to len(keys)) at the keys'
// positions — the library's batch convention; steady-state batches
// with a reused dst do not allocate.
func (f *Filter) ContainsAll(dst []bool, keys [][]byte) []bool {
	if cap(dst) < len(keys) {
		dst = make([]bool, len(keys))
	}
	dst = dst[:len(keys)]
	for i, e := range keys {
		dst[i] = f.ContainsDigest(hashing.KeyDigest(e))
	}
	return dst
}

// Bytes returns the container's bytes (aliasing, not a copy) — what
// Open was given, trimmed to the container's recorded size.
func (f *Filter) Bytes() []byte { return f.data }

// SizeBytes returns the container's total size.
func (f *Filter) SizeBytes() int { return len(f.data) }

// SourceKind returns the kind of the filter that was frozen.
func (f *Filter) SourceKind() core.Kind { return f.srcKind }

// Shards returns the number of bit sections (the source's shard
// count).
func (f *Filter) Shards() int { return f.shards }

// M returns the per-shard base array size in bits.
func (f *Filter) M() int { return f.m }

// K returns the bit positions per element.
func (f *Filter) K() int { return f.k }

// MaxOffset returns w̄.
func (f *Filter) MaxOffset() int { return f.wbar }

// Seed returns the recorded seed (the base seed for sharded sources).
func (f *Filter) Seed() uint64 { return f.seed }

// N returns the element count recorded at freeze time.
func (f *Filter) N() int { return f.n }
