package hashing

// Double implements Kirsch–Mitzenmacher double hashing [13 in the paper]:
// two base hash values h1, h2 simulate k functions via
// g_i = (h1 + i·h2) mod m. The paper cites this as the prior technique
// for reducing hash computations, at the cost of increased FPR; the km
// baseline and the 1MemBF bit-offset derivation use it.
//
// A single Sum128 supplies both lanes, so simulating any k costs one pass
// over the input — the cheapest possible hashing budget, which is what
// makes the comparison against ShBF_M's k/2+1 budget meaningful.
type Double struct {
	h Hasher
}

// NewDouble returns a double hasher derived from seed.
func NewDouble(seed uint64) Double {
	return Double{h: New(seed)}
}

// Base returns the two base hash values for data.
func (d Double) Base(data []byte) (h1, h2 uint64) {
	return d.h.Sum128(data)
}

// Positions appends the k simulated positions g_i = (h1 + i·h2) mod m,
// i = 0 … k−1, to dst and returns it. h2 is forced odd so that for
// power-of-two m the probe sequence cycles through distinct positions.
func (d Double) Positions(data []byte, k, m int, dst []int) []int {
	h1, h2 := d.h.Sum128(data)
	h2 |= 1
	dst = dst[:0]
	for i := 0; i < k; i++ {
		dst = append(dst, int((h1+uint64(i)*h2)%uint64(m)))
	}
	return dst
}
