package client_test

import (
	"errors"
	"testing"

	"shbf/client"
)

// TestClusterReadFailover is the acceptance property for replica
// failover: at R = N, kill a node that is primary for some ranges and
// every read batch must still succeed — routed to the surviving
// replicas — with answers byte-equal to a healthy cluster's (i.e. to
// one local filter of the same Spec, false positives included).
func TestClusterReadFailover(t *testing.T) {
	tc, cl := dialTestCluster(t, 3, 3)
	keys := clusterKeys("present", 1200)
	absent := clusterKeys("absent", 1200)

	cns := cl.Namespace("default")
	if err := cns.AddAll(keys); err != nil {
		t.Fatalf("cluster AddAll: %v", err)
	}
	local := localMembership(t)
	if err := local.AddAll(keys); err != nil {
		t.Fatal(err)
	}

	// Kill n1 — at 3 uniform ranges it is a primary; its sub-batches
	// must re-route to a replica rather than fail or misreassemble.
	victim := tc.Nodes[0]
	victimPrimary := 0
	for _, k := range append(append([][]byte{}, keys...), absent...) {
		if primaryOf(cl.Map(), k) == victim.ID {
			victimPrimary++
		}
	}
	if victimPrimary == 0 {
		t.Fatal("degenerate split: victim owns no keys; the test would prove nothing")
	}
	victim.Kill()

	probe := append(append([][]byte{}, keys...), absent...)
	got, err := cns.Check(probe)
	if err != nil {
		t.Fatalf("Check with a dead primary (R=3): %v", err)
	}
	want := local.ContainsAll(nil, probe)
	for i := range probe {
		if got[i] != want[i] {
			t.Fatalf("key %q: cluster=%v local=%v — failover diverged from a healthy cluster",
				probe[i], got[i], want[i])
		}
	}

	// The other read surfaces fail over the same way.
	if _, err := cns.Counts(keys[:100]); err != nil {
		t.Fatalf("Counts with a dead primary: %v", err)
	}
	if _, err := cns.Classify(keys[:100]); err != nil {
		t.Fatalf("Classify with a dead primary: %v", err)
	}

	// The router's own counters recorded the failovers: errors against
	// the dead node only, and at least one replica re-send.
	st := cl.Stats()
	if st.Failovers == 0 {
		t.Fatal("Stats().Failovers = 0 despite reads surviving a dead primary")
	}
	if st.NodeErrors[victim.ID] == 0 {
		t.Fatalf("no errors counted against killed node %s: %+v", victim.ID, st.NodeErrors)
	}
	for id, n := range st.NodeErrors {
		if id != victim.ID && n != 0 {
			t.Errorf("healthy node %s counted %d errors", id, n)
		}
	}
	if st.Requests == 0 || st.Errors == 0 {
		t.Fatalf("per-node counters empty after a failover run: %+v", st)
	}
}

// TestClusterReadFailoverExhaustsReplicas: at R=1 there is no replica
// to walk — a dead primary surfaces as that node's error, with the
// routed key positions intact for the caller's resume logic.
func TestClusterReadFailoverExhaustsReplicas(t *testing.T) {
	tc, cl := dialTestCluster(t, 3, 1)
	keys := clusterKeys("lonely", 600)
	cns := cl.Namespace("default")
	if err := cns.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	victim := tc.Nodes[1]
	victim.Kill()

	_, err := cns.Check(keys)
	if err == nil {
		t.Fatal("Check with a dead R=1 primary succeeded")
	}
	var ce *client.ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *ClusterError", err, err)
	}
	for _, ne := range ce.Errs {
		if ne.Node != victim.ID {
			t.Fatalf("node %s failed, only %s was killed", ne.Node, victim.ID)
		}
		if len(ne.Indices) == 0 {
			t.Fatal("failed node reported no key positions")
		}
		for _, idx := range ne.Indices {
			if got := primaryOf(cl.Map(), keys[idx]); got != victim.ID {
				t.Fatalf("key %d attributed to %s but owned by %s", idx, victim.ID, got)
			}
		}
	}
}

// TestClusterWriteFailureReportsResumePoint: writes never fail over
// (they already address every owner); a dead owner's sub-batch is
// reported with its indices and applied split point so the caller can
// resume precisely.
func TestClusterWriteFailureReportsResumePoint(t *testing.T) {
	tc, cl := dialTestCluster(t, 3, 2)
	keys := clusterKeys("resumable", 600)
	victim := tc.Nodes[2]
	victim.Kill()

	err := cl.Namespace("default").AddAll(keys)
	if err == nil {
		t.Fatal("AddAll with a dead owner succeeded")
	}
	var ce *client.ClusterError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *ClusterError", err, err)
	}
	for _, ne := range ce.Errs {
		if ne.Node != victim.ID {
			t.Fatalf("live node %s reported a failure: %v", ne.Node, ne.Err)
		}
		if len(ne.Indices) == 0 {
			t.Fatal("no resume indices on the failed sub-batch")
		}
		if ne.Applied > uint64(len(ne.Indices)) {
			t.Fatalf("applied %d > %d routed keys — not a valid resume point",
				ne.Applied, len(ne.Indices))
		}
	}

	// The live owners did apply their copies: every key whose replica
	// set includes a live node still answers true somewhere, which is
	// what makes resume-after-repair (merge) converge.
	live := cl.Client(tc.Nodes[0].ID).Namespace("default").Set()
	res, err := live.Check(keys[:50])
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, ok := range res {
		if ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no key reached the live owners")
	}
}
