package experiment

import (
	"fmt"
	"math"

	"shbf/internal/analytic"
	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/memmodel"
	"shbf/internal/trace"
	"shbf/internal/workload"
)

// assocWorkload holds the Figure 10 element groups: |S1| = |S2| = n with
// an overlap of n/4 (the paper uses 1M sets with 0.25M intersection).
type assocWorkload struct {
	s1only, both, s2only [][]byte
	s1, s2               [][]byte
	queries              [][]byte // uniform over the three regions
	n1, n2, nDistinct    int
}

func buildAssocWorkload(cfg Config, trial int) assocWorkload {
	gen := trace.NewGenerator(cfg.Seed + int64(trial))
	n := cfg.AssocSetSize
	nBoth := n / 4
	nOnly := n - nBoth

	var w assocWorkload
	w.s1only = trace.Bytes(gen.Distinct(nOnly))
	w.both = trace.Bytes(gen.Distinct(nBoth))
	w.s2only = trace.Bytes(gen.Distinct(nOnly))
	w.s1 = append(append([][]byte{}, w.s1only...), w.both...)
	w.s2 = append(append([][]byte{}, w.s2only...), w.both...)
	w.n1, w.n2 = len(w.s1), len(w.s2)
	w.nDistinct = 2*nOnly + nBoth

	// "The querying elements hit the three parts with the same
	// probability" (Section 6.3.1): equal-size samples per region.
	q := nBoth // sample size per region, bounded by the smallest group
	w.queries = workload.Interleave(cfg.Seed+int64(trial),
		w.s1only[:q], w.both[:q], w.s2only[:q])
	return w
}

// assocSizes returns the optimal filter sizes for a given k: ShBF_A gets
// m = n′k/ln2 over the distinct union; iBF gets m1 = n1·k/ln2 and
// m2 = n2·k/ln2 (in total 1/7 more memory at 25% overlap, as the paper
// notes).
func assocSizes(w assocWorkload, k int) (mShBF, m1, m2 int) {
	mShBF = int(float64(w.nDistinct) * float64(k) / math.Ln2)
	m1 = int(float64(w.n1) * float64(k) / math.Ln2)
	m2 = int(float64(w.n2) * float64(k) / math.Ln2)
	return mShBF, m1, m2
}

// assocMeasurement is one (k, trial) evaluation of both schemes.
type assocMeasurement struct {
	clearIBF, clearShBF float64 // fraction of clear answers
	accIBF, accShBF     float64 // mean memory accesses per query
	mqpsIBF, mqpsShBF   float64 // throughput
}

func measureAssocPoint(cfg Config, k, trial int) assocMeasurement {
	w := buildAssocWorkload(cfg, trial)
	mS, m1, m2 := assocSizes(w, k)
	seed := uint64(cfg.Seed) + uint64(trial)

	var accI, accS memmodel.Counter
	ibf, err := baseline.BuildIBF(w.s1, w.s2, m1, m2, k,
		baseline.WithSeed(seed), baseline.WithAccessCounter(&accI))
	if err != nil {
		panic(err)
	}
	shbf, err := core.BuildAssociation(w.s1, w.s2, mS, k,
		core.WithSeed(seed), core.WithAccessCounter(&accS))
	if err != nil {
		panic(err)
	}

	var out assocMeasurement
	clearI, clearS := 0, 0
	accI.Reset()
	accS.Reset()
	for _, e := range w.queries {
		if ibf.Query(e).Clear() {
			clearI++
		}
		if shbf.Query(e).Clear() {
			clearS++
		}
	}
	nq := float64(len(w.queries))
	out.clearIBF = float64(clearI) / nq
	out.clearShBF = float64(clearS) / nq
	out.accIBF = float64(accI.Reads()) / nq
	out.accShBF = float64(accS.Reads()) / nq

	out.mqpsIBF = MeasureMqps(w.queries, cfg.MinTiming, func(e []byte) { ibf.Query(e) })
	out.mqpsShBF = MeasureMqps(w.queries, cfg.MinTiming, func(e []byte) { shbf.Query(e) })
	return out
}

// RunFig10 reproduces Figure 10: ShBF_A vs iBF on (a) probability of a
// clear answer (with theory lines), (b) memory accesses per query, and
// (c) query throughput, sweeping k with per-k optimal sizing.
func RunFig10(cfg Config) []*Figure {
	figA := &Figure{ID: "10a", Title: "probability of a clear answer", XLabel: "k", YLabel: "Prob. clear answer"}
	figB := &Figure{ID: "10b", Title: "# memory accesses per query", XLabel: "k", YLabel: "# memory accesses"}
	figC := &Figure{ID: "10c", Title: "query speed", XLabel: "k", YLabel: "Mqps"}

	for k := 4; k <= 18; k += 2 {
		ms := make([]assocMeasurement, cfg.Trials)
		for trial := range ms {
			ms[trial] = measureAssocPoint(cfg, k, trial)
		}
		mean := func(get func(assocMeasurement) float64) float64 {
			vals := make([]float64, len(ms))
			for i, m := range ms {
				vals[i] = get(m)
			}
			return Mean(vals)
		}
		x := float64(k)
		figA.Add("iBF sim", x, mean(func(m assocMeasurement) float64 { return m.clearIBF }))
		figA.Add("iBF theory", x, analytic.ClearProbIBF(k))
		figA.Add("ShBF_A sim", x, mean(func(m assocMeasurement) float64 { return m.clearShBF }))
		figA.Add("ShBF_A theory", x, analytic.ClearProbShBFA(k))
		figB.Add("iBF", x, mean(func(m assocMeasurement) float64 { return m.accIBF }))
		figB.Add("ShBF_A", x, mean(func(m assocMeasurement) float64 { return m.accShBF }))
		figC.Add("iBF", x, mean(func(m assocMeasurement) float64 { return m.mqpsIBF }))
		figC.Add("ShBF_A", x, mean(func(m assocMeasurement) float64 { return m.mqpsShBF }))
	}
	figA.Notes = append(figA.Notes,
		fmt.Sprintf("sets |S1|=|S2|=%d, |S1∩S2|=%d (paper: 1M / 0.25M); per-k optimal sizing", cfg.AssocSetSize, cfg.AssocSetSize/4))
	return []*Figure{figA, figB, figC}
}

// RunTable2 reproduces Table 2: the analytic ShBF_A vs iBF comparison,
// with measured clear-answer probabilities appended as a validation
// column.
func RunTable2(cfg Config) *Table {
	const k = 10
	w := buildAssocWorkload(cfg, 0)
	nBoth := len(w.both)
	t2 := analytic.ComputeTable2(w.n1, w.n2, nBoth, k)
	meas := measureAssocPoint(cfg, k, 0)

	tab := &Table{
		ID:    "2",
		Title: fmt.Sprintf("ShBF_A vs iBF (n1=%d, n2=%d, n3=%d, k=%d)", w.n1, w.n2, nBoth, k),
		Columns: []string{"scheme", "optimal memory (bits)", "#hash computations",
			"#memory accesses", "P(clear) theory", "P(clear) measured", "false positives"},
	}
	tab.AddRow("iBF",
		fmt.Sprintf("%.0f", t2.MemoryBitsIBF),
		fmt.Sprintf("%d", t2.HashOpsIBF),
		fmt.Sprintf("%d", t2.AccessesIBF),
		fmt.Sprintf("%.4f", t2.ClearProbIBF),
		fmt.Sprintf("%.4f", meas.clearIBF),
		"YES")
	tab.AddRow("ShBF_A",
		fmt.Sprintf("%.0f", t2.MemoryBitsShBFA),
		fmt.Sprintf("%d", t2.HashOpsShBFA),
		fmt.Sprintf("%d", t2.AccessesShBFA),
		fmt.Sprintf("%.4f", t2.ClearProbShBFA),
		fmt.Sprintf("%.4f", meas.clearShBF),
		"NO")
	return tab
}
