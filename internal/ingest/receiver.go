package ingest

import (
	"sort"
	"sync"
)

// Receiver-side accounting. UDP gives no return channel, so the
// receiver is where loss becomes observable: every datagram carries a
// per-source sequence number, and the receiver tracks, per source, the
// first and highest sequence seen plus a sliding window bitmap of
// recent sequences. From those three it classifies every arrival —
// new, duplicate, reordered — and computes datagrams lost as
// (max − first + 1) − unique at read time (a gauge, not a counter:
// late arrivals legitimately shrink it).

// DropReason classifies why a datagram was not applied. The zero
// value DropNone means applied.
type DropReason int

const (
	DropNone DropReason = iota
	// DropDecode: the payload failed Decode, or an envelope failed to
	// parse as ShBE.
	DropDecode
	// DropDuplicate: the sequence number was already seen (or predates
	// the tracking window, where dup and very-late are
	// indistinguishable).
	DropDuplicate
	// DropReassembly: a fragment was inconsistent with its flush's
	// other fragments, did not tile the envelope at the sender's fixed
	// chunk size, or alone exceeded reassembly capacity.
	DropReassembly
	// DropUnknownNamespace: no such tenant.
	DropUnknownNamespace
	// DropFrozen: the tenant is read-only.
	DropFrozen
	// DropRate: the tenant's rate quota shed the datagram. UDP has no
	// reply, so the shed is metrics-only.
	DropRate
	// DropMerge: the reassembled envelope was incompatible with the
	// tenant's filter (geometry, seed or kind mismatch, or a windowed
	// destination).
	DropMerge
	// DropMode: the datagram type is not acceptable here (e.g. a
	// forwarder in keys mode receiving envelope fragments).
	DropMode

	numDropReasons
)

// String returns the metrics label for the reason.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropDecode:
		return "decode"
	case DropDuplicate:
		return "duplicate"
	case DropReassembly:
		return "reassembly"
	case DropUnknownNamespace:
		return "unknown-namespace"
	case DropFrozen:
		return "frozen"
	case DropRate:
		return "rate"
	case DropMerge:
		return "merge"
	case DropMode:
		return "mode"
	}
	return "unknown"
}

// DropReasons lists every reason label in order, for pinning the
// metric surface.
func DropReasons() []DropReason {
	rs := make([]DropReason, 0, numDropReasons-1)
	for r := DropDecode; r < numDropReasons; r++ {
		rs = append(rs, r)
	}
	return rs
}

// Handler applies decoded ingest payloads. The server implements it
// over its namespace registry; a forwarding agent implements it over
// its local filter. Handlers return DropNone on success, or the
// reason the payload was refused — the receiver only accounts, it
// never interprets namespaces or filters itself.
type Handler interface {
	// HandleBatch adds a packed key batch to the namespace.
	HandleBatch(namespace string, keys [][]byte) DropReason
	// HandleEnvelope union-merges a reassembled ShBE envelope into the
	// namespace.
	HandleEnvelope(namespace string, envelope []byte) DropReason
}

// seqWindowBits is the per-source duplicate-detection window: sequence
// numbers within this distance of the highest seen are tracked
// exactly; older ones are conservatively counted as duplicates.
const seqWindowBits = 8192

// maxSources bounds per-source state so a source-address forging
// flood cannot allocate unbounded memory; past the cap, datagrams
// from new sources are still applied but not sequence-accounted.
const maxSources = 4096

// Reassembly capacity: at most maxAssemblies in-flight envelope
// flushes, at most maxAssemblyBytes buffered across all of them.
const (
	maxAssemblies    = 256
	maxAssemblyBytes = 256 << 20
)

// sourceState is one agent's sequence accounting.
type sourceState struct {
	first, max uint64
	unique     uint64
	window     [seqWindowBits / 64]uint64
	// latestFlush is the highest envelope flushID seen from this
	// source. Agents flush sequentially and envelope state is
	// cumulative, so when a newer flush starts, the source's older
	// incomplete assemblies can never complete (their lost fragments
	// will not be resent) and their content is carried by the newer
	// flush anyway — they are evicted.
	latestFlush uint64
}

func (st *sourceState) bit(seq uint64) (word int, mask uint64) {
	i := seq % seqWindowBits
	return int(i / 64), 1 << (i % 64)
}

// observe classifies seq and updates the state. Returns the
// classification: DropNone (new, in order), DropDuplicate, or
// DropNone with reordered=true (new but below max).
func (st *sourceState) observe(seq uint64) (reason DropReason, reordered bool) {
	if st.unique == 0 {
		st.first, st.max, st.unique = seq, seq, 1
		w, m := st.bit(seq)
		st.window[w] |= m
		return DropNone, false
	}
	switch {
	case seq > st.max:
		// Advancing: clear the ring between the old max and the new
		// seq, then mark. A jump past the whole window zeroes it all.
		if seq-st.max >= seqWindowBits {
			for i := range st.window {
				st.window[i] = 0
			}
		} else {
			for s := st.max + 1; s < seq; s++ {
				w, m := st.bit(s)
				st.window[w] &^= m
			}
		}
		w, m := st.bit(seq)
		st.window[w] |= m
		st.max = seq
		st.unique++
		return DropNone, false
	case st.max-seq >= seqWindowBits:
		// Below the window: a duplicate and an extremely late first
		// arrival are indistinguishable; count conservatively as
		// duplicate (loss accounting already assumed it arrived).
		return DropDuplicate, false
	default:
		w, m := st.bit(seq)
		if st.window[w]&m != 0 {
			return DropDuplicate, false
		}
		st.window[w] |= m
		st.unique++
		// first is the lowest sequence seen, not the first arrival — a
		// reordered start (2 then 1) must widen the expected range, or
		// it would cancel out a real loss elsewhere.
		if seq < st.first {
			st.first = seq
		}
		return DropNone, true
	}
}

// lost is the datagrams this source sent that never arrived, assuming
// sequences are dense from first to max.
func (st *sourceState) lost() uint64 {
	if st.unique == 0 {
		return 0
	}
	return (st.max - st.first + 1) - st.unique
}

// assemblyKey identifies one in-flight envelope flush.
type assemblyKey struct {
	source  uint64
	flushID uint64
}

// assembly buffers one envelope's fragments until all arrive.
type assembly struct {
	namespace string
	buf       []byte
	got       []bool
	remaining int
	// chunk is the fixed fragment size every fragment but the last
	// must carry (the sender slices at one size); fragments implying a
	// different chunk are corrupt.
	chunk int
	// touched is the receiver tick of the last accepted fragment;
	// capacity pressure evicts the least recently touched assembly
	// first (UDP loss means some assemblies never complete — refusing
	// new ones behind dead entries would wedge envelope ingest).
	touched uint64
}

// Stats is a point-in-time snapshot of a receiver's accounting.
type Stats struct {
	// Received and Applied count datagrams by type; an envelope
	// fragment is "applied" when it (and, for the final fragment, its
	// whole envelope) was accepted.
	ReceivedBatch, ReceivedEnvelope uint64
	AppliedBatch, AppliedEnvelope   uint64
	// Dropped counts datagrams by DropReason (index).
	Dropped [numDropReasons]uint64
	// Reordered counts datagrams that arrived after a higher sequence
	// from their source had already arrived.
	Reordered uint64
	// Lost is the current estimate of datagrams sent but never
	// received, summed over sources. A gauge: late arrivals shrink it.
	Lost uint64
	// Expected is the datagrams all sources sent so far (max−first+1
	// summed), the denominator of the loss ratio.
	Expected uint64
	// Sources is the number of distinct source IDs tracked.
	Sources int
	// MergeBytes is the total reassembled envelope bytes accepted.
	MergeBytes uint64
	// Assemblies is the number of in-flight fragment reassemblies.
	Assemblies int
	// AssembliesEvicted counts incomplete assemblies discarded —
	// superseded by a newer flush from the same source, or displaced
	// oldest-first under capacity pressure. Union-merge makes the
	// discard safe (the next cumulative flush re-carries the state),
	// but a climbing rate means flushes are losing fragments.
	AssembliesEvicted uint64
}

// LossRatio is Lost/Expected (0 when nothing was expected).
func (s Stats) LossRatio() float64 {
	if s.Expected == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Expected)
}

// Receiver decodes, accounts and dispatches ShBU datagrams. One
// receiver serves one listening socket; methods are safe for
// concurrent use.
type Receiver struct {
	h Handler

	mu         sync.Mutex
	sources    map[uint64]*sourceState
	assemblies map[assemblyKey]*assembly
	asmBytes   int
	asmTick    uint64 // monotonic fragment-arrival tick, orders eviction
	evicted    uint64

	received  [3]uint64 // by type
	applied   [3]uint64
	dropped   [numDropReasons]uint64
	reordered uint64
	merged    uint64
}

// NewReceiver builds a receiver dispatching into h.
func NewReceiver(h Handler) *Receiver {
	return &Receiver{
		h:          h,
		sources:    map[uint64]*sourceState{},
		assemblies: map[assemblyKey]*assembly{},
	}
}

// Process decodes and applies one datagram payload, returning how it
// was classified. Every payload is accounted; none is ever answered.
func (r *Receiver) Process(data []byte) DropReason {
	d, err := Decode(data)
	if err != nil {
		r.mu.Lock()
		r.dropped[DropDecode]++
		r.mu.Unlock()
		return DropDecode
	}

	r.mu.Lock()
	r.received[d.Type]++
	st := r.sources[d.Source]
	if st == nil && len(r.sources) < maxSources {
		st = &sourceState{}
		r.sources[d.Source] = st
	}
	if st != nil {
		reason, reordered := st.observe(d.Seq)
		if reordered {
			r.reordered++
		}
		if reason != DropNone {
			r.dropped[reason]++
			r.mu.Unlock()
			return reason
		}
	}

	var env []byte
	if d.Type == TypeEnvelopeFrag {
		var reason DropReason
		env, reason = r.assembleLocked(d)
		if reason != DropNone {
			r.dropped[reason]++
			r.mu.Unlock()
			return reason
		}
		if env == nil {
			// Fragment accepted, envelope still incomplete.
			r.applied[d.Type]++
			r.mu.Unlock()
			return DropNone
		}
	}
	r.mu.Unlock()

	// Dispatch outside the lock: handlers take namespace locks and do
	// real work; accounting must not serialize behind them.
	var reason DropReason
	switch d.Type {
	case TypeAddBatch:
		reason = r.h.HandleBatch(d.Namespace, d.Keys)
	case TypeEnvelopeFrag:
		reason = r.h.HandleEnvelope(d.Namespace, env)
	}

	r.mu.Lock()
	if reason == DropNone {
		r.applied[d.Type]++
		if env != nil {
			r.merged += uint64(len(env))
		}
	} else {
		r.dropped[reason]++
	}
	r.mu.Unlock()
	return reason
}

// fragChunk returns the fixed chunk size d implies, or 0 when no
// fixed-chunk tiling of the envelope places d where it claims to be.
// The sender slices every fragment but the last at one size, so each
// fragment's index, offset and length must agree on that size — a
// crafted fragment (e.g. two fragments both claiming offset 0) cannot
// complete an assembly whose uncovered tail would be zero-filled.
// Caller guarantees FragCount ≥ 2 and the Decode bounds checks.
func fragChunk(d *Datagram) int {
	var chunk int
	if d.FragIndex < d.FragCount-1 {
		chunk = len(d.Frag)
		if chunk == 0 || d.FragOffset != d.FragIndex*chunk {
			return 0
		}
	} else {
		// The last fragment covers exactly the tail, and its offset
		// pins the chunk the earlier fragments were sliced at.
		if d.FragOffset%(d.FragCount-1) != 0 {
			return 0
		}
		chunk = d.FragOffset / (d.FragCount - 1)
		if chunk == 0 || d.FragOffset+len(d.Frag) != d.EnvLen {
			return 0
		}
	}
	// FragCount must be exactly ⌈EnvLen/chunk⌉.
	if (d.FragCount-1)*chunk >= d.EnvLen || d.EnvLen > d.FragCount*chunk {
		return 0
	}
	return chunk
}

// assembleLocked folds one fragment into its flush's assembly.
// Returns the complete envelope once the last fragment lands, nil
// while incomplete, or a non-None reason when the fragment is
// inconsistent with the envelope's tiling or with its flush's other
// fragments. Caller holds r.mu.
func (r *Receiver) assembleLocked(d *Datagram) ([]byte, DropReason) {
	if d.FragCount == 1 {
		// Single-fragment flush: no buffering needed.
		if d.FragOffset != 0 || len(d.Frag) != d.EnvLen {
			return nil, DropReassembly
		}
		return d.Frag, DropNone
	}
	chunk := fragChunk(d)
	if chunk == 0 {
		return nil, DropReassembly
	}
	// A newer flush supersedes the source's older assemblies (see
	// sourceState.latestFlush); evict them so incomplete flushes from
	// a lossy path cannot pin reassembly slots forever.
	if st := r.sources[d.Source]; st != nil && d.FlushID > st.latestFlush {
		st.latestFlush = d.FlushID
		for k := range r.assemblies {
			if k.source == d.Source && k.flushID < d.FlushID {
				r.evictLocked(k)
				r.evicted++
			}
		}
	}
	key := assemblyKey{source: d.Source, flushID: d.FlushID}
	a := r.assemblies[key]
	if a == nil {
		// At capacity, displace the least recently touched assemblies:
		// under UDP loss some assemblies never complete, and refusing
		// new ones behind those dead entries would silently wedge all
		// envelope ingest until restart.
		for len(r.assemblies) >= maxAssemblies || r.asmBytes+d.EnvLen > maxAssemblyBytes {
			if !r.evictStalestLocked() {
				// Nothing left to evict: d alone exceeds capacity.
				return nil, DropReassembly
			}
		}
		a = &assembly{
			namespace: d.Namespace,
			buf:       make([]byte, d.EnvLen),
			got:       make([]bool, d.FragCount),
			remaining: d.FragCount,
			chunk:     chunk,
		}
		r.assemblies[key] = a
		r.asmBytes += d.EnvLen
	}
	if a.namespace != d.Namespace || len(a.buf) != d.EnvLen || len(a.got) != d.FragCount || a.chunk != chunk {
		// Fragments of one flush disagree about the flush: something
		// is corrupt; drop the whole assembly so it cannot complete
		// from inconsistent parts.
		r.evictLocked(key)
		return nil, DropReassembly
	}
	r.asmTick++
	a.touched = r.asmTick
	if a.got[d.FragIndex] {
		// Same fragment under a fresh sequence number (an agent-level
		// resend): already have these bytes; accept as a no-op.
		return nil, DropNone
	}
	copy(a.buf[d.FragOffset:], d.Frag)
	a.got[d.FragIndex] = true
	a.remaining--
	if a.remaining > 0 {
		return nil, DropNone
	}
	buf := a.buf
	r.evictLocked(key)
	return buf, DropNone
}

// evictStalestLocked discards the least recently touched assembly,
// reporting whether there was one to discard.
func (r *Receiver) evictStalestLocked() bool {
	var (
		stalest assemblyKey
		minTick uint64
		found   bool
	)
	for k, a := range r.assemblies {
		if !found || a.touched < minTick {
			stalest, minTick, found = k, a.touched, true
		}
	}
	if !found {
		return false
	}
	r.evictLocked(stalest)
	r.evicted++
	return true
}

func (r *Receiver) evictLocked(key assemblyKey) {
	if a := r.assemblies[key]; a != nil {
		r.asmBytes -= len(a.buf)
		delete(r.assemblies, key)
	}
}

// Stats snapshots the receiver's accounting.
func (r *Receiver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		ReceivedBatch:     r.received[TypeAddBatch],
		ReceivedEnvelope:  r.received[TypeEnvelopeFrag],
		AppliedBatch:      r.applied[TypeAddBatch],
		AppliedEnvelope:   r.applied[TypeEnvelopeFrag],
		Dropped:           r.dropped,
		Reordered:         r.reordered,
		Sources:           len(r.sources),
		MergeBytes:        r.merged,
		Assemblies:        len(r.assemblies),
		AssembliesEvicted: r.evicted,
	}
	for _, st := range r.sources {
		s.Lost += st.lost()
		if st.unique > 0 {
			s.Expected += st.max - st.first + 1
		}
	}
	return s
}

// SourceIDs returns the tracked source IDs, sorted (test and
// debugging surface).
func (r *Receiver) SourceIDs() []uint64 {
	r.mu.Lock()
	ids := make([]uint64, 0, len(r.sources))
	for id := range r.sources {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
