package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"shbf/client"
)

// startDaemon runs the daemon with args plus a port-0 listener and
// returns its base URL and a stop function that waits for graceful
// shutdown.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		// Port-0 defaults for both listeners; later args override (the
		// last occurrence of a flag wins).
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-shbp-addr", "127.0.0.1:0"}, args...), ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("daemon did not shut down")
			}
		}
	case err := <-errc:
		cancel()
		t.Fatalf("daemon failed to start: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon did not become ready")
		return "", nil
	}
}

func postJSON(t *testing.T, url string, body any, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-snapshot-every", "1s"}, nil); err == nil {
		t.Fatal("accepted -snapshot-every without -snapshot")
	}
	if err := run(context.Background(), []string{"-member-k", "7", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("accepted odd membership k")
	}
}

func TestPprofEndpoint(t *testing.T) {
	// Reserve a port for the profiling listener (closed again before
	// the daemon starts; the small reuse race is acceptable in a test),
	// then check the pprof index is served there and NOT on the query
	// port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := ln.Addr().String()
	ln.Close()

	url, stop := startDaemon(t,
		"-member-bits", "65536", "-assoc-bits", "65536", "-mult-bits", "131072",
		"-shards", "4", "-pprof-addr", pprofAddr)
	defer stop()

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}

	resp, err = http.Get(url + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof endpoints must not be reachable on the query port")
	}
}

func TestServeAndGracefulSnapshot(t *testing.T) {
	// Small filters keep the test fast; the snapshot written on
	// SIGTERM-equivalent shutdown must seed an identical second run.
	snap := filepath.Join(t.TempDir(), "state.shbf")
	size := []string{
		"-member-bits", "65536", "-assoc-bits", "65536", "-mult-bits", "131072",
		"-shards", "4", "-snapshot", snap,
	}
	url, stop := startDaemon(t, size...)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	postJSON(t, url+"/v1/membership/add", map[string]any{"keys": []string{"persisted"}}, nil)
	postJSON(t, url+"/v1/multiplicity/add",
		map[string]any{"items": []map[string]any{{"key": "persisted", "count": 3}}}, nil)
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Second daemon, same snapshot: answers must survive the restart.
	url2, stop2 := startDaemon(t, size...)
	defer stop2()
	var res struct {
		Results []bool `json:"results"`
	}
	postJSON(t, url2+"/v1/membership/contains", map[string]any{"keys": []string{"persisted", "other"}}, &res)
	if !res.Results[0] || res.Results[1] {
		t.Fatalf("after restart: contains = %v, want [true false]", res.Results)
	}
	var cnt struct {
		Counts []int `json:"counts"`
	}
	postJSON(t, url2+"/v1/multiplicity/count", map[string]any{"keys": []string{"persisted"}}, &cnt)
	if cnt.Counts[0] != 3 {
		t.Fatalf("after restart: count = %d, want 3", cnt.Counts[0])
	}
}

// TestShBPListener: the binary-protocol listener serves alongside
// HTTP — a ShBP write is visible to an HTTP read and vice versa, and
// namespaces created over ShBP persist through the graceful-shutdown
// snapshot.
func TestShBPListener(t *testing.T) {
	// Reserve a port for the binary listener (freed before the daemon
	// starts; the reuse race is acceptable in a test, as with pprof).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shbpAddr := ln.Addr().String()
	ln.Close()

	snap := filepath.Join(t.TempDir(), "state.shbf")
	size := []string{
		"-member-bits", "65536", "-assoc-bits", "65536", "-mult-bits", "131072",
		"-shards", "4", "-snapshot", snap, "-shbp-addr", shbpAddr,
	}
	url, stop := startDaemon(t, size...)

	c, err := client.Dial("shbp://" + shbpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateNamespace(client.NamespaceConfig{Name: "tenant"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Namespace("").Set().AddAll([][]byte{[]byte("via-shbp")}); err != nil {
		t.Fatal(err)
	}
	if err := c.Namespace("tenant").Set().AddAll([][]byte{[]byte("tenant-key")}); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Results []bool `json:"results"`
	}
	postJSON(t, url+"/v1/membership/contains", map[string]any{"keys": []string{"via-shbp"}}, &res)
	if !res.Results[0] {
		t.Fatal("ShBP write invisible over HTTP")
	}
	c.Close()
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Restart on the same snapshot: both namespaces and their keys
	// must survive.
	url2, stop2 := startDaemon(t, size...)
	defer stop2()
	c2, err := client.Dial("shbp://" + shbpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Namespace("").Set().Contains([]byte("via-shbp")) {
		t.Fatal("default namespace state lost across restart")
	}
	if !c2.Namespace("tenant").Set().Contains([]byte("tenant-key")) {
		t.Fatal("tenant namespace lost across restart")
	}
	_ = url2
}

// TestWindowFlags: -tick requires -window, and a windowed daemon
// rotates on its ticker so fresh keys expire without any /v1/rotate
// call.
func TestWindowFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-tick", "1s"}, nil); err == nil {
		t.Fatal("accepted -tick without -window")
	}
	if err := run(context.Background(), []string{"-window", "1", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("accepted a one-generation window")
	}

	url, stop := startDaemon(t,
		"-member-bits", "65536", "-assoc-bits", "65536", "-mult-bits", "131072",
		"-shards", "4", "-window", "2", "-tick", "150ms")
	defer stop()

	postJSON(t, url+"/v1/membership/add", map[string]any{"keys": []string{"ticker-key"}}, nil)
	var res struct {
		Results []bool `json:"results"`
	}
	postJSON(t, url+"/v1/membership/contains", map[string]any{"keys": []string{"ticker-key"}}, &res)
	if !res.Results[0] {
		t.Fatal("fresh key invisible")
	}
	// After ≥ 2 ticks (two rotations of a G = 2 ring) the key must be
	// gone. Poll rather than sleep a fixed worst case.
	deadline := time.Now().Add(5 * time.Second)
	for {
		postJSON(t, url+"/v1/membership/contains", map[string]any{"keys": []string{"ticker-key"}}, &res)
		if !res.Results[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never expired the key")
		}
		time.Sleep(50 * time.Millisecond)
	}
	var st struct {
		Membership struct {
			Window *struct {
				Generations int    `json:"generations"`
				Epoch       uint64 `json:"epoch"`
			} `json:"window"`
		} `json:"membership"`
	}
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Membership.Window == nil || st.Membership.Window.Generations != 2 {
		t.Fatalf("stats window metadata missing: %+v", st.Membership.Window)
	}
	if st.Membership.Window.Epoch < 2 {
		t.Fatalf("ticker produced only %d rotations", st.Membership.Window.Epoch)
	}
}
