package client_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"shbf"
	"shbf/client"
	"shbf/internal/clustertest"
	"shbf/internal/hashing"
	"shbf/internal/wire"
)

// The multi-node suite: every test boots real servers on loopback
// (internal/clustertest) and drives them through the routing client,
// so splitting, fan-out, reassembly and the error paths run over the
// actual transports.

// clusterKeys builds n distinct variable-width keys under a prefix.
func clusterKeys(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%05d", prefix, i))
	}
	return keys
}

// dialTestCluster boots nodes and dials the routing client from one
// seed address, the way an operator-facing tool would.
func dialTestCluster(t *testing.T, nodes, replication int) (*clustertest.Cluster, *client.Cluster) {
	t.Helper()
	tc := clustertest.Start(t, clustertest.Options{Nodes: nodes, Replication: replication})
	cl, err := client.DialCluster(tc.SeedAddr())
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return tc, cl
}

// localMembership builds the library filter a node's membership is
// byte-comparable against: same Spec, same seed, built from
// clustertest's per-node config exactly as the server builds it.
func localMembership(t *testing.T) shbf.Set {
	t.Helper()
	memSpec, _, _ := clustertest.DefaultConfig().Specs()
	f, err := shbf.New(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	return f.(shbf.Set)
}

// primaryOf resolves a key's primary owner the same way the router
// does: digest high lane against the map's ranges.
func primaryOf(m *client.ClusterMap, key []byte) string {
	return m.RangeFor(hashing.KeyDigest(key).Hi).Owners[0]
}

// TestClusterFullReplicationMatchesLocal is the acceptance property:
// at R = N every node holds every key, and both the cluster's batch
// answers and each node's serialized membership must be byte-
// equivalent to one local library filter of the same Spec — remote ≡
// local, including the false-positive pattern.
func TestClusterFullReplicationMatchesLocal(t *testing.T) {
	tc, cl := dialTestCluster(t, 3, 3)
	keys := clusterKeys("present", 1500)
	absent := clusterKeys("absent", 1500)

	cns := cl.Namespace("default")
	if err := cns.AddAll(keys); err != nil {
		t.Fatalf("cluster AddAll: %v", err)
	}
	local := localMembership(t)
	if err := local.AddAll(keys); err != nil {
		t.Fatal(err)
	}

	probe := append(append([][]byte{}, keys...), absent...)
	got, err := cns.Check(probe)
	if err != nil {
		t.Fatalf("cluster Check: %v", err)
	}
	want := local.ContainsAll(nil, probe)
	for i := range probe {
		if got[i] != want[i] {
			t.Fatalf("key %q: cluster=%v local=%v — remote diverged from local", probe[i], got[i], want[i])
		}
	}

	// Every replica's serialized membership is byte-identical to the
	// local filter (writes reached all R owners, same one-pass digests,
	// same bit layout).
	wantEnv, err := shbf.AppendDump(nil, local.(shbf.Filter))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tc.Nodes {
		env, err := cl.Client(n.ID).Namespace("default").MembershipEnvelope()
		if err != nil {
			t.Fatalf("%s: envelope: %v", n.ID, err)
		}
		if !bytes.Equal(env, wantEnv) {
			t.Fatalf("%s: membership envelope differs from local filter (%d vs %d bytes)",
				n.ID, len(env), len(wantEnv))
		}
	}
}

// TestClusterRoutingSplitsByOwner checks the R=1 partitioning: each
// key lands only on its primary owner, every node gets a share, and
// batch answers come back reassembled at the original positions.
func TestClusterRoutingSplitsByOwner(t *testing.T) {
	_, cl := dialTestCluster(t, 3, 1)
	keys := clusterKeys("routed", 900)
	cns := cl.Namespace("default")
	if err := cns.AddAll(keys); err != nil {
		t.Fatalf("cluster AddAll: %v", err)
	}

	// Independently recompute the expected split from the map and the
	// one-pass digests.
	expected := map[string][][]byte{}
	for _, k := range keys {
		id := primaryOf(cl.Map(), k)
		expected[id] = append(expected[id], k)
	}
	for _, n := range cl.Map().Nodes {
		share := expected[n.ID]
		if len(share) == 0 {
			t.Fatalf("%s: no keys routed (degenerate split)", n.ID)
		}
		nc := cl.Client(n.ID).Namespace("default")
		// The node holds exactly its share: membership N counts only the
		// keys routed there...
		st, err := nc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Membership.N != len(share) {
			t.Fatalf("%s: membership N = %d, want %d (keys leaked across the split)",
				n.ID, st.Membership.N, len(share))
		}
		// ...and answers positively for all of them when asked directly.
		res, err := nc.Set().Check(share)
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range res {
			if !ok {
				t.Fatalf("%s: routed key %q missing", n.ID, share[i])
			}
		}
	}

	// Reassembly: per-key counts are position-distinguishable, so a
	// misplaced answer cannot cancel out.
	counts := make([]int, len(keys))
	for i := range counts {
		counts[i] = i%5 + 1
	}
	if err := cns.CounterAdd(keys, counts); err != nil {
		t.Fatalf("cluster CounterAdd: %v", err)
	}
	got, err := cns.Counts(keys)
	if err != nil {
		t.Fatalf("cluster Counts: %v", err)
	}
	for i := range keys {
		if got[i] != counts[i] {
			t.Fatalf("key %d: count %d, want %d — answers reassembled out of order", i, got[i], counts[i])
		}
	}

	// Association answers route to the same primaries: cluster Classify
	// must agree with asking each key's primary directly.
	s1 := keys[:300]
	byNode := map[string][][]byte{}
	for _, k := range s1 {
		id := primaryOf(cl.Map(), k)
		byNode[id] = append(byNode[id], k)
	}
	for id, share := range byNode {
		if err := cl.Client(id).Namespace("default").Associator().InsertAll(1, share); err != nil {
			t.Fatal(err)
		}
	}
	fromCluster, err := cns.Classify(keys[:600])
	if err != nil {
		t.Fatalf("cluster Classify: %v", err)
	}
	for i, k := range keys[:600] {
		direct, err := cl.Client(primaryOf(cl.Map(), k)).Namespace("default").Associator().Classify([][]byte{k})
		if err != nil {
			t.Fatal(err)
		}
		if fromCluster[i] != direct[0] {
			t.Fatalf("key %d: cluster region %v, primary node says %v", i, fromCluster[i], direct[0])
		}
	}
}

// TestClusterKillNodeReportsPerNodeFailure kills one node and checks
// the fan-out degrades into a precise per-node error: exactly the
// killed node fails, and its Indices are exactly the batch positions
// the map routed there — recomputed here independently.
func TestClusterKillNodeReportsPerNodeFailure(t *testing.T) {
	tc, cl := dialTestCluster(t, 3, 1)
	keys := clusterKeys("fault", 600)
	cns := cl.Namespace("default")
	if err := cns.AddAll(keys); err != nil {
		t.Fatal(err)
	}

	victim := tc.Nodes[1] // "n2"
	victim.Kill()

	var wantIdx []int
	for i, k := range keys {
		if primaryOf(cl.Map(), k) == victim.ID {
			wantIdx = append(wantIdx, i)
		}
	}
	if len(wantIdx) == 0 {
		t.Fatal("no keys routed to the victim; test fixture degenerate")
	}

	for name, call := range map[string]func() error{
		"read":  func() error { _, err := cns.Check(keys); return err },
		"write": func() error { return cns.AddAll(keys) },
	} {
		err := call()
		if err == nil {
			t.Fatalf("%s with a dead node succeeded", name)
		}
		var ce *client.ClusterError
		if !errors.As(err, &ce) {
			t.Fatalf("%s error is not a ClusterError: %v", name, err)
		}
		if len(ce.Errs) != 1 {
			t.Fatalf("%s: %d nodes failed, want 1: %v", name, len(ce.Errs), err)
		}
		ne := ce.Errs[0]
		if ne.Node != victim.ID {
			t.Fatalf("%s: failed node %s, want %s", name, ne.Node, victim.ID)
		}
		if len(ne.Indices) != len(wantIdx) {
			t.Fatalf("%s: %d failed indices, want %d", name, len(ne.Indices), len(wantIdx))
		}
		for i := range wantIdx {
			if ne.Indices[i] != wantIdx[i] {
				t.Fatalf("%s: failed index[%d] = %d, want %d", name, i, ne.Indices[i], wantIdx[i])
			}
		}
		// A dead TCP peer is not a daemon-reported status.
		if client.IsConflict(err) || client.IsNotFound(err) {
			t.Fatalf("%s: transport failure misread as a daemon status: %v", name, err)
		}
	}

	// The surviving nodes still answer batches that avoid the victim.
	var alive [][]byte
	for _, k := range keys {
		if primaryOf(cl.Map(), k) != victim.ID {
			alive = append(alive, k)
		}
	}
	res, err := cns.Check(alive)
	if err != nil {
		t.Fatalf("check on survivors: %v", err)
	}
	for i, ok := range res {
		if !ok {
			t.Fatalf("survivor key %q lost", alive[i])
		}
	}
}

// TestClusterConflictAppliedParity drives a deterministic mid-batch
// multiplicity overflow through the cluster over both transports: the
// failing node's NodeError must carry the node-reported applied split
// point, IsConflict must see through the ClusterError, and ShBP and
// HTTP must agree on both.
func TestClusterConflictAppliedParity(t *testing.T) {
	tc := clustertest.Start(t, clustertest.Options{Nodes: 3, Replication: 1})

	shbpCl, err := client.DialCluster(tc.SeedAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer shbpCl.Close()
	// Same cluster, HTTP-only map: clearing Addr makes DialClusterMap
	// fall back to each node's HTTP listener.
	hm := *tc.Map
	hm.Nodes = append([]client.ClusterNode(nil), tc.Map.Nodes...)
	for i := range hm.Nodes {
		hm.Nodes[i].Addr = ""
	}
	httpCl, err := client.DialClusterMap(&hm)
	if err != nil {
		t.Fatal(err)
	}
	defer httpCl.Close()

	type outcome struct {
		node    string
		applied uint64
	}
	var got map[string]outcome = map[string]outcome{}
	for transport, cl := range map[string]*client.Cluster{"shbp": shbpCl, "http": httpCl} {
		nsName := "parity-" + transport
		if err := cl.CreateNamespace(client.NamespaceConfig{Name: nsName}); err != nil {
			t.Fatal(err)
		}
		cns := cl.Namespace(nsName)

		// Three keys that all route to one node, so the whole batch is a
		// single sub-batch with a deterministic split point.
		target := primaryOf(cl.Map(), []byte(transport+"-conflict-seed"))
		var batch [][]byte
		for i := 0; len(batch) < 3; i++ {
			k := []byte(fmt.Sprintf("%s-conflict-%04d", transport, i))
			if primaryOf(cl.Map(), k) == target {
				batch = append(batch, k)
			}
		}
		// Pre-load the middle key near MaxCount (16), then overflow it
		// mid-batch. Multiplicity Applied counts increments: key 0's 5
		// land, key 1 takes 6 more before the 17th increment conflicts —
		// the split point is exactly 11 on both transports.
		if err := cns.CounterAdd(batch[1:2], []int{10}); err != nil {
			t.Fatal(err)
		}
		err := cns.CounterAdd(batch, []int{5, 10, 5})
		if err == nil {
			t.Fatalf("%s: overflow batch succeeded", transport)
		}
		if !client.IsConflict(err) {
			t.Fatalf("%s: overflow is not IsConflict: %v", transport, err)
		}
		var ce *client.ClusterError
		if !errors.As(err, &ce) || len(ce.Errs) != 1 {
			t.Fatalf("%s: want a single-node ClusterError, got %v", transport, err)
		}
		ne := ce.Errs[0]
		if ne.Node != target {
			t.Fatalf("%s: failed node %s, want %s", transport, ne.Node, target)
		}
		if ne.Applied != 11 {
			t.Fatalf("%s: applied split point %d, want 11", transport, ne.Applied)
		}
		got[transport] = outcome{ne.Node, ne.Applied}
	}
	if got["shbp"] != got["http"] {
		t.Fatalf("transports disagree: shbp=%+v http=%+v", got["shbp"], got["http"])
	}
}

// TestClusterInFlightKillDoesNotHang is the accepted-then-shutdown
// regression at cluster scope: batches keep flowing while a node dies
// under them; every call must return (success or error), never hang.
func TestClusterInFlightKillDoesNotHang(t *testing.T) {
	tc, cl := dialTestCluster(t, 3, 1)
	keys := clusterKeys("inflight", 400)
	cns := cl.Namespace("default")
	if err := cns.AddAll(keys); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			cns.Check(keys)  // errors expected once the node dies
			cns.AddAll(keys) // idempotent membership writes
		}
	}()
	time.Sleep(10 * time.Millisecond)
	tc.Nodes[2].Kill()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cluster calls hung across a node kill")
	}
}

// TestClusterAntiEntropyMerge diverges two full replicas, ships each
// one's envelope to the other, and checks both converge to the same
// bytes — and to the same bytes as a local filter that held both key
// sets all along.
func TestClusterAntiEntropyMerge(t *testing.T) {
	_, cl := dialTestCluster(t, 2, 2)
	keysA := clusterKeys("replica-a", 400)
	keysB := clusterKeys("replica-b", 400)

	n1 := cl.Client("n1").Namespace("default")
	n2 := cl.Client("n2").Namespace("default")
	// Diverge the replicas behind the router's back, as a network
	// partition would.
	if err := n1.Set().AddAll(keysA); err != nil {
		t.Fatal(err)
	}
	if err := n2.Set().AddAll(keysB); err != nil {
		t.Fatal(err)
	}
	env1, err := n1.MembershipEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	env2, err := n2.MembershipEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(env1, env2) {
		t.Fatal("replicas did not diverge; fixture broken")
	}

	// Cross-merge the pre-divergence envelopes.
	if merged, err := n1.Merge(env2); err != nil || merged != uint64(len(keysB)) {
		t.Fatalf("n1.Merge = %d, %v; want %d", merged, err, len(keysB))
	}
	if merged, err := n2.Merge(env1); err != nil || merged != uint64(len(keysA)) {
		t.Fatalf("n2.Merge = %d, %v; want %d", merged, err, len(keysA))
	}

	// Both replicas and a from-scratch local filter agree byte for
	// byte.
	local := localMembership(t)
	if err := local.AddAll(keysA); err != nil {
		t.Fatal(err)
	}
	if err := local.AddAll(keysB); err != nil {
		t.Fatal(err)
	}
	wantEnv, err := shbf.AppendDump(nil, local.(shbf.Filter))
	if err != nil {
		t.Fatal(err)
	}
	for name, ns := range map[string]*client.Namespace{"n1": n1, "n2": n2} {
		env, err := ns.MembershipEnvelope()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(env, wantEnv) {
			t.Fatalf("%s: merged envelope differs from direct construction", name)
		}
	}

	// And the cluster answers the union, from either primary.
	probe := append(append([][]byte{}, keysA...), keysB...)
	res, err := cl.Namespace("default").Check(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range res {
		if !ok {
			t.Fatalf("merged key %q missing", probe[i])
		}
	}
}

// TestMergeRejections drives the merge endpoint's refusal paths over
// both transports: garbage is a bad request, incompatible geometry or
// seed is a conflict, windowed tenants refuse, and unknown namespaces
// are not found. Both transports must report identical statuses.
func TestMergeRejections(t *testing.T) {
	d := startDaemon(t, testConfig())
	for transport, c := range d.clients(t) {
		t.Run(transport, func(t *testing.T) {
			def := c.Namespace("default")
			if err := def.Set().AddAll(clusterKeys(transport+"-seeded", 50)); err != nil {
				t.Fatal(err)
			}
			goodEnv, err := def.MembershipEnvelope()
			if err != nil {
				t.Fatal(err)
			}

			// Garbage body: bad request on both transports.
			_, err = def.Merge([]byte("definitely not a ShBE envelope"))
			var de *client.Error
			if !errors.As(err, &de) || de.Status != wire.StatusBadRequest {
				t.Fatalf("garbage merge: %v, want bad request", err)
			}

			// Geometry mismatch: conflict.
			if err := c.CreateNamespace(client.NamespaceConfig{
				Name: "big-" + transport, MembershipBits: 1 << 19}); err != nil {
				t.Fatal(err)
			}
			bigEnv, err := c.Namespace("big-" + transport).MembershipEnvelope()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := def.Merge(bigEnv); !client.IsConflict(err) {
				t.Fatalf("geometry-mismatched merge: %v, want conflict", err)
			}

			// Seed mismatch: conflict (same geometry, different hashes —
			// the union would be silent corruption).
			seed := uint64(99)
			if err := c.CreateNamespace(client.NamespaceConfig{
				Name: "seeded-" + transport, Seed: &seed}); err != nil {
				t.Fatal(err)
			}
			seededEnv, err := c.Namespace("seeded-" + transport).MembershipEnvelope()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := def.Merge(seededEnv); !client.IsConflict(err) {
				t.Fatalf("seed-mismatched merge: %v, want conflict", err)
			}

			// Windowed destination: conflict (generation rings don't
			// union; epoch alignment is a rebalancing concern).
			if err := c.CreateNamespace(client.NamespaceConfig{
				Name: "win-" + transport, WindowGenerations: intP(3)}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Namespace("win-" + transport).Merge(goodEnv); !client.IsConflict(err) {
				t.Fatalf("merge into windowed tenant: %v, want conflict", err)
			}

			// Unknown namespace: not found.
			if _, err := c.Namespace("absent-" + transport).Merge(goodEnv); !client.IsNotFound(err) {
				t.Fatalf("merge into unknown namespace: %v, want not found", err)
			}
		})
	}
}

// TestClusterMapNotFoundOutsideClusterMode: a daemon started without
// -cluster-file answers the map endpoints not-found on both
// transports, and DialCluster against it fails cleanly.
func TestClusterMapNotFoundOutsideClusterMode(t *testing.T) {
	d := startDaemon(t, testConfig())
	for transport, c := range d.clients(t) {
		if _, err := c.ClusterMap(); !client.IsNotFound(err) {
			t.Fatalf("%s: ClusterMap on non-cluster daemon: %v, want not found", transport, err)
		}
	}
	if _, err := client.DialCluster(d.shbp.Addr().String()); !client.IsNotFound(err) {
		t.Fatalf("DialCluster against non-cluster daemon: %v, want not found", err)
	}
}

// TestDialClusterWithDeadNode: a node that is already down when the
// client dials must not block the fleet dial — per-node connections
// are lazy, so the dead node degrades to a NodeError on the batches it
// owns while the survivors keep answering.
func TestDialClusterWithDeadNode(t *testing.T) {
	tc := clustertest.Start(t, clustertest.Options{Nodes: 3, Replication: 1})
	keys := clusterKeys("lazy", 600)

	boot, err := client.DialCluster(tc.SeedAddr())
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	if err := boot.Namespace("default").AddAll(keys); err != nil {
		t.Fatal(err)
	}
	boot.Close()

	victim := tc.Nodes[2]
	victim.Kill()

	// A fresh dial from a surviving seed succeeds with the node down.
	cl, err := client.DialCluster(tc.SeedAddr())
	if err != nil {
		t.Fatalf("DialCluster with a dead node: %v", err)
	}
	defer cl.Close()

	var alive, dead [][]byte
	for _, k := range keys {
		if primaryOf(cl.Map(), k) == victim.ID {
			dead = append(dead, k)
		} else {
			alive = append(alive, k)
		}
	}
	if len(dead) == 0 || len(alive) == 0 {
		t.Fatalf("degenerate split: %d dead, %d alive", len(dead), len(alive))
	}

	// Batches avoiding the dead node's ranges answer fully.
	hits, err := cl.Namespace("default").Check(alive)
	if err != nil {
		t.Fatalf("Check on surviving nodes: %v", err)
	}
	for i, hit := range hits {
		if !hit {
			t.Fatalf("key %d lost after node death", i)
		}
	}

	// Batches touching the dead node report exactly that node.
	_, err = cl.Namespace("default").Check(keys)
	var ne *client.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("Check including dead node: %v, want NodeError", err)
	}
	if ne.Node != victim.ID {
		t.Fatalf("failed node = %q, want %q", ne.Node, victim.ID)
	}
	if len(ne.Indices) != len(dead) {
		t.Fatalf("failed indices = %d, want %d", len(ne.Indices), len(dead))
	}
}

// TestMultiplicityMergeAcrossTransports diverges two tenants' counting
// filters, ships one's multiplicity envelope into the other over both
// transports, and checks the merged filter reports at least the larger
// of the two sides' multiplicities — the counting-union contract edge
// agents pre-aggregate against — and that re-merging the same envelope
// changes no reported count.
func TestMultiplicityMergeAcrossTransports(t *testing.T) {
	d := startDaemon(t, testConfig())
	for transport, c := range d.clients(t) {
		t.Run(transport, func(t *testing.T) {
			nsA, nsB := "count-a-"+transport, "count-b-"+transport
			for _, name := range []string{nsA, nsB} {
				if err := c.CreateNamespace(client.NamespaceConfig{Name: name}); err != nil {
					t.Fatal(err)
				}
			}
			a, b := c.Namespace(nsA).Counter(), c.Namespace(nsB).Counter()
			keys := clusterKeys(transport+"-count", 60)
			for i, k := range keys {
				if err := a.InsertCount(k, 1+i%3); err != nil {
					t.Fatal(err)
				}
				if err := b.InsertCount(k, 1+(i*2)%5); err != nil {
					t.Fatal(err)
				}
			}
			env, err := c.Namespace(nsB).MultiplicityEnvelope()
			if err != nil {
				t.Fatal(err)
			}
			merged, err := c.Namespace(nsA).MergeMultiplicity(env)
			if err != nil {
				t.Fatalf("MergeMultiplicity: %v", err)
			}
			if merged != uint64(len(keys)) {
				t.Fatalf("merged = %d, want %d", merged, len(keys))
			}
			first, err := a.Counts(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				want := 1 + i%3
				if w2 := 1 + (i*2)%5; w2 > want {
					want = w2
				}
				if first[i] < want {
					t.Fatalf("key %d: merged count %d underestimates %d", i, first[i], want)
				}
			}
			// Duplicate delivery of the same envelope (a retry, a UDP
			// re-send) must not change any reported count.
			if _, err := c.Namespace(nsA).MergeMultiplicity(env); err != nil {
				t.Fatalf("re-merge: %v", err)
			}
			again, err := a.Counts(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if first[i] != again[i] {
					t.Fatalf("key %d: count changed %d → %d on re-merge", i, first[i], again[i])
				}
			}
		})
	}
}

// TestMultiplicityMergeRejections drives the counting merge's refusal
// paths over both transports, including the kind cross-checks: a
// membership envelope posted to the multiplicity merge (and vice
// versa) is a bad request, not a silent corruption.
func TestMultiplicityMergeRejections(t *testing.T) {
	d := startDaemon(t, testConfig())
	for transport, c := range d.clients(t) {
		t.Run(transport, func(t *testing.T) {
			def := c.Namespace("default")
			if err := def.Counter().AddAll(clusterKeys(transport+"-mseed", 40)); err != nil {
				t.Fatal(err)
			}
			goodEnv, err := def.MultiplicityEnvelope()
			if err != nil {
				t.Fatal(err)
			}

			// Garbage body: bad request.
			var de *client.Error
			if _, err := def.MergeMultiplicity([]byte("not a ShBE envelope")); !errors.As(err, &de) || de.Status != wire.StatusBadRequest {
				t.Fatalf("garbage merge: %v, want bad request", err)
			}

			// Kind cross-checks: each merge endpoint refuses the other
			// side's envelope.
			memEnv, err := def.MembershipEnvelope()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := def.MergeMultiplicity(memEnv); !errors.As(err, &de) || de.Status != wire.StatusBadRequest {
				t.Fatalf("membership envelope into multiplicity merge: %v, want bad request", err)
			}
			if _, err := def.Merge(goodEnv); !errors.As(err, &de) || de.Status != wire.StatusBadRequest {
				t.Fatalf("multiplicity envelope into membership merge: %v, want bad request", err)
			}

			// Geometry mismatch: conflict.
			if err := c.CreateNamespace(client.NamespaceConfig{
				Name: "mbig-" + transport, MultiplicityBits: 1 << 20}); err != nil {
				t.Fatal(err)
			}
			bigEnv, err := c.Namespace("mbig-" + transport).MultiplicityEnvelope()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := def.MergeMultiplicity(bigEnv); !client.IsConflict(err) {
				t.Fatalf("geometry-mismatched merge: %v, want conflict", err)
			}

			// Windowed destination: conflict.
			if err := c.CreateNamespace(client.NamespaceConfig{
				Name: "mwin-" + transport, WindowGenerations: intP(3)}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Namespace("mwin-" + transport).MergeMultiplicity(goodEnv); !client.IsConflict(err) {
				t.Fatalf("merge into windowed tenant: %v, want conflict", err)
			}

			// Unknown namespace: not found.
			if _, err := c.Namespace("mabsent-" + transport).MergeMultiplicity(goodEnv); !client.IsNotFound(err) {
				t.Fatalf("merge into unknown namespace: %v, want not found", err)
			}
		})
	}
}
