package hashing

// This file is the one-pass digest pipeline, the hashing idiom used by
// every filter in the tree since PR 3:
//
//	digest → lane mixing → positions
//
// A key is scanned exactly once — one seeded Sum128 pass producing a
// 128-bit Digest — and every hash value any layer needs (the k/2+1
// family functions of a filter, the shard-routing index of the sharded
// wrappers, a baseline's k positions) is derived from that digest by a
// single SplitMix64-style integer finalizer per value. This turns the
// paper's "ShBF_M computes k/2+1 hash functions" cost model into
// "one pass over the key plus k/2+1 integer mixes", and lets the
// sharded layer reuse the same digest for routing (one lane) and
// in-shard probing (both lanes, through the mixers) so routing costs
// no extra pass.
//
// Statistical independence of the derived values rests on the same
// argument as Kirsch–Mitzenmacher double hashing [13 in the paper],
// strengthened by a full avalanche finalizer per value: distinct mix
// seeds give distinct permutations of the digest, and the BitBalance
// criterion (balance.go, the paper's Section 6.1 randomness test) is
// applied to the mixed outputs in this package's tests exactly as the
// paper applied it to its hash functions.

// DigestSeed is the tree-wide seed under which keys are digested.
// It is a single constant — not per-filter — so that one digest per
// key serves every consumer in a process (all filter families, the
// shard router, the baselines); per-filter and per-function diversity
// lives entirely in the mix seeds derived from each filter's seed.
// Changing it invalidates the bit patterns of previously serialized
// filters (see the golden tests).
const DigestSeed = 0x5b8f_d163

// Digest is the one-pass 128-bit fingerprint of a key: the two lanes
// of a single Sum128 evaluation. It is a value type; hot paths pass it
// in registers and never allocate.
type Digest struct {
	Lo, Hi uint64
}

// keySeed1/keySeed2 are the two internal lanes of New(DigestSeed),
// folded to compile-time constants so KeyDigest starts hashing without
// a global load. TestKeyDigestSeedsMatchNew pins them to the
// derivation.
const (
	keySeed1 = 0x7c72_2b5e_34b1_1bf6
	keySeed2 = 0xfccc_1675_444c_6fa2
)

// KeyDigest returns the canonical digest of key — the one hash pass
// the whole pipeline runs per key. Equivalent to
// DigestOf(DigestSeed, key).
func KeyDigest(key []byte) Digest {
	lo, hi := Hasher{seed1: keySeed1, seed2: keySeed2}.Sum128(key)
	return Digest{Lo: lo, Hi: hi}
}

// DigestOf digests key under an explicit seed. Filters all use the
// canonical KeyDigest; the seeded form exists for tests and for
// callers that need an independent fingerprint domain.
func DigestOf(seed uint64, key []byte) Digest {
	lo, hi := New(seed).Sum128(key)
	return Digest{Lo: lo, Hi: hi}
}

// MixDigest derives one 64-bit hash value from a digest and a mix
// seed: the SplitMix64 finalizer over the low lane with the high lane
// injected mid-stream, so every derived value depends on all 128
// digest bits and on the seed. One multiply-xorshift round cheaper
// than re-hashing the key, by orders of magnitude for any real key
// length.
func MixDigest(d Digest, seed uint64) uint64 {
	z := mixCore(d, seed)
	return z ^ (z >> 31)
}

// mixCore is MixDigest without the trailing xor-shift. That shift
// exists to repair low-bit diffusion after the final multiply; the
// multiply-shift range reduction (Reduce) is driven by the HIGH bits
// of the mixed value, which the final multiply already diffuses fully,
// so position derivation skips the repair and saves two dependent ops
// per probe. Consumers of low bits (FromDigest's full 64-bit contract,
// e.g. the 1MemBF baseline masking &63) go through MixDigest instead.
func mixCore(d Digest, seed uint64) uint64 {
	z := d.Lo + seed
	z = (z ^ (z >> 30)) * splitMixMulA
	z ^= d.Hi
	z = (z ^ (z >> 27)) * splitMixMulB
	return z
}

// Shard maps the digest onto one of shards (a power of two) by its
// high lane. The sharded layer routes on this while the filter
// families mix both lanes, so routing consumes the digest's spare
// entropy instead of a second hash pass.
func (d Digest) Shard(mask uint64) uint64 {
	return d.Hi & mask
}
