package analytic

import "math"

// This file models expected memory accesses per query with early
// termination, the quantity Figures 8, 10(b) and 11(b) measure.

// expectedGeometricProbes returns the expected number of probes when
// each probe independently passes with probability rho and the scan
// stops at the first failure, capped at maxProbes:
//
//	E = Σ_{i=1..max} ρ^{i−1} = (1 − ρ^max)/(1 − ρ).
func expectedGeometricProbes(rho float64, maxProbes int) float64 {
	if maxProbes <= 0 {
		return 0
	}
	if rho >= 1 {
		return float64(maxProbes)
	}
	return (1 - math.Pow(rho, float64(maxProbes))) / (1 - rho)
}

// ExpectedAccessesBF returns the expected memory accesses per query for
// a standard BF over a workload where memberFrac of queries are true
// members (k probes each — every probe passes) and the rest are
// uniform non-members (each probe passes with probability 1−p′).
func ExpectedAccessesBF(m, n int, k float64, memberFrac float64) float64 {
	rho := 1 - P0(m, n, k)
	neg := expectedGeometricProbes(rho, int(k+0.5))
	return memberFrac*k + (1-memberFrac)*neg
}

// ExpectedAccessesShBFM returns the same for ShBF_M: members cost k/2
// window reads, non-members stop at the first failing pair, each pair
// passing with probability ρ = (1−p)(1−p+p²/(w̄−1)).
func ExpectedAccessesShBFM(m, n int, k float64, wbar int, memberFrac float64) float64 {
	rho := PairPassProbability(m, n, k, wbar)
	half := int(k/2 + 0.5)
	neg := expectedGeometricProbes(rho, half)
	return memberFrac*(k/2) + (1-memberFrac)*neg
}

// ExpectedAccessesIBF returns the expected accesses for an iBF
// association query hitting the three regions uniformly. Both filters
// are always probed (the answer needs both verdicts). A filter
// containing the element costs k accesses; one not containing it stops
// early with pass probability 1−p′ per probe.
func ExpectedAccessesIBF(m1, n1, m2, n2, k int) float64 {
	neg1 := expectedGeometricProbes(1-P0(m1, n1, float64(k)), k)
	neg2 := expectedGeometricProbes(1-P0(m2, n2, float64(k)), k)
	kf := float64(k)
	// Regions: S1−S2 (member of BF1 only), S1∩S2 (member of both),
	// S2−S1 (member of BF2 only), uniform thirds.
	return ((kf + neg2) + (kf + kf) + (neg1 + kf)) / 3
}

// ExpectedAccessesShBFA returns the expected accesses for a ShBF_A query
// over elements of S1 ∪ S2: every window read resolves all three region
// candidates at once; the scan stops when no candidate survives, and
// for elements of the union the true region's candidate survives all k
// reads, so a query costs k accesses (the paper's Table 2 entry).
func ExpectedAccessesShBFA(k int) float64 {
	return float64(k)
}

// ExpectedAccessesShBFX returns the expected accesses for a ShBF_X
// multiplicity query: members intersect k windows of ⌈c/w⌉ accesses
// each (the candidate containing the true count survives to the end);
// non-members stop at the first empty intersection, each window leaving
// a survivor with probability ≈ 1−(p′)^c… the dominant term is simply
// that window i+1 is read only if the running intersection is non-empty.
// We model the non-member pass probability per window as
// 1 − (1 − (1−p′)^c)… conservatively ≈ (1−p′)·c capped at 1; the
// empirical Figure 11(b) uses measured counts, so this model is only a
// smoke-test reference.
func ExpectedAccessesShBFX(m, n, k, c int, memberFrac float64, wordBits int) float64 {
	perWindow := float64((c + wordBits - 1) / wordBits)
	p := P0(m, n, float64(k))
	// Probability a c-bit window from a random position has ≥1 set bit.
	survive := 1 - math.Pow(p, float64(c))
	if survive > 1 {
		survive = 1
	}
	neg := expectedGeometricProbes(survive, k)
	return memberFrac*float64(k)*perWindow + (1-memberFrac)*neg*perWindow
}

// ExpectedAccessesCounterScheme returns the accesses of Spectral BF or
// CM sketch queries: k (or d) counter reads, with early exit only when
// a zero counter appears — for member-heavy workloads effectively the
// full k.
func ExpectedAccessesCounterScheme(m, n, k int, memberFrac float64) float64 {
	rho := 1 - P0(m, n, float64(k))
	neg := expectedGeometricProbes(rho, k)
	return memberFrac*float64(k) + (1-memberFrac)*neg
}
