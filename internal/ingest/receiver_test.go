package ingest

import (
	"bytes"
	"testing"
)

// collectHandler applies batches and envelopes into plain maps — the
// reference "daemon" receiver tests converge against.
type collectHandler struct {
	keys      map[string]int
	envelopes [][]byte
	refuse    DropReason // when non-None, refuse everything with it
}

func newCollectHandler() *collectHandler {
	return &collectHandler{keys: map[string]int{}}
}

func (h *collectHandler) HandleBatch(ns string, keys [][]byte) DropReason {
	if h.refuse != DropNone {
		return h.refuse
	}
	for _, k := range keys {
		h.keys[string(k)]++
	}
	return DropNone
}

func (h *collectHandler) HandleEnvelope(ns string, env []byte) DropReason {
	if h.refuse != DropNone {
		return h.refuse
	}
	h.envelopes = append(h.envelopes, append([]byte(nil), env...))
	return DropNone
}

// encode builds one datagram's bytes or fails the test.
func encode(t *testing.T, d *Datagram) []byte {
	t.Helper()
	buf, err := Append(nil, d)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return buf
}

func batchDatagram(t *testing.T, source, seq uint64, keys ...string) []byte {
	t.Helper()
	bs := make([][]byte, len(keys))
	for i, k := range keys {
		bs[i] = []byte(k)
	}
	return encode(t, &Datagram{
		Type: TypeAddBatch, Source: source, Seq: seq, Namespace: "ns", Keys: bs,
	})
}

func TestReceiverAppliesAndAccounts(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	for seq := uint64(1); seq <= 5; seq++ {
		if got := r.Process(batchDatagram(t, 9, seq, "a", "b")); got != DropNone {
			t.Fatalf("seq %d: %v", seq, got)
		}
	}
	if h.keys["a"] != 5 || h.keys["b"] != 5 {
		t.Fatalf("keys = %v", h.keys)
	}
	s := r.Stats()
	if s.ReceivedBatch != 5 || s.AppliedBatch != 5 || s.Lost != 0 || s.Reordered != 0 || s.Sources != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReceiverLossReorderDuplicate(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	// Source 5 sends seqs 1..10; 3 and 7 are dropped in flight, 4
	// arrives late (reordered), 8 arrives twice.
	order := []uint64{1, 2, 5, 4, 6, 8, 8, 9, 10}
	for _, seq := range order {
		r.Process(batchDatagram(t, 5, seq, "k"))
	}
	s := r.Stats()
	if s.Lost != 2 { // 3 and 7 of 1..10 never arrived
		t.Fatalf("lost = %d, want 2 (missing 3 and 7 of 1..10): %+v", s.Lost, s)
	}
	if s.Reordered != 1 {
		t.Fatalf("reordered = %d, want 1", s.Reordered)
	}
	if s.Dropped[DropDuplicate] != 1 {
		t.Fatalf("duplicates = %d, want 1", s.Dropped[DropDuplicate])
	}
	// The late arrival of 3 shrinks the loss gauge — the reason it is
	// a gauge and not a counter.
	r.Process(batchDatagram(t, 5, 3, "k"))
	if s = r.Stats(); s.Lost != 1 {
		t.Fatalf("lost after late arrival = %d, want 1", s.Lost)
	}
	if s.Reordered != 2 {
		t.Fatalf("reordered after late arrival = %d, want 2", s.Reordered)
	}
	if got := s.LossRatio(); got <= 0 || got >= 1 {
		t.Fatalf("loss ratio = %v", got)
	}
	// Nine unique datagrams arrived (1..10 minus the never-arrived 7),
	// each applied exactly once despite the duplicate and reorder.
	if h.keys["k"] != 9 {
		t.Fatalf("k applied %d times, want 9", h.keys["k"])
	}
}

func TestReceiverSeqWindowAgesOut(t *testing.T) {
	r := NewReceiver(newCollectHandler())
	r.Process(batchDatagram(t, 1, 1, "k"))
	r.Process(batchDatagram(t, 1, uint64(seqWindowBits)+10, "k"))
	// Sequence 1 is now far below the window: conservatively a
	// duplicate even though it was genuinely seen before.
	if got := r.Process(batchDatagram(t, 1, 1, "k")); got != DropDuplicate {
		t.Fatalf("below-window seq: %v, want DropDuplicate", got)
	}
}

func TestReceiverFragmentReassembly(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	env := make([]byte, 1000)
	for i := range env {
		env[i] = byte(i)
	}
	frag := func(seq uint64, idx, count, off, n int) []byte {
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 2, Seq: seq, Namespace: "ns",
			FlushID: 44, FragIndex: idx, FragCount: count,
			EnvLen: len(env), FragOffset: off, Frag: env[off : off+n],
		})
	}
	// Three fragments, delivered out of order, middle one twice.
	for _, d := range [][]byte{
		frag(1, 2, 3, 800, 200),
		frag(2, 0, 3, 0, 400),
		frag(3, 1, 3, 400, 400),
	} {
		if got := r.Process(d); got != DropNone {
			t.Fatalf("fragment: %v", got)
		}
	}
	if len(h.envelopes) != 1 || !bytes.Equal(h.envelopes[0], env) {
		t.Fatalf("reassembly produced %d envelopes", len(h.envelopes))
	}
	s := r.Stats()
	if s.MergeBytes != uint64(len(env)) {
		t.Fatalf("merge bytes = %d, want %d", s.MergeBytes, len(env))
	}
	if s.Assemblies != 0 {
		t.Fatalf("assemblies leaked: %d", s.Assemblies)
	}
	// A whole-flush resend under fresh sequence numbers reassembles
	// and re-applies (the union upstream makes that idempotent).
	for i, d := range [][]byte{
		frag(10, 0, 3, 0, 400), frag(11, 1, 3, 400, 400), frag(12, 2, 3, 800, 200),
	} {
		if got := r.Process(d); got != DropNone {
			t.Fatalf("resend fragment %d: %v", i, got)
		}
	}
	if len(h.envelopes) != 2 {
		t.Fatalf("resent flush applied %d envelopes, want 2", len(h.envelopes))
	}
}

func TestReceiverInconsistentFragmentsDropped(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	mk := func(seq uint64, envLen int) []byte {
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 3, Seq: seq, Namespace: "ns",
			FlushID: 1, FragIndex: 0, FragCount: 2,
			EnvLen: envLen, FragOffset: 0, Frag: make([]byte, 100),
		})
	}
	if got := r.Process(mk(1, 200)); got != DropNone {
		t.Fatalf("first fragment: %v", got)
	}
	// Same flush, contradicting envelope length (each fragment valid
	// on its own): the assembly must be destroyed, not completed from
	// corrupt halves.
	if got := r.Process(mk(2, 150)); got != DropReassembly {
		t.Fatalf("contradicting fragment: %v, want DropReassembly", got)
	}
	if r.Stats().Assemblies != 0 {
		t.Fatal("corrupt assembly survived")
	}
	if len(h.envelopes) != 0 {
		t.Fatal("corrupt assembly completed")
	}
}

func TestReceiverFragmentTilingEnforced(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	frag := func(seq uint64, idx, count, off, n, envLen int) DropReason {
		return r.Process(encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 8, Seq: seq, Namespace: "ns",
			FlushID: 1, FragIndex: idx, FragCount: count,
			EnvLen: envLen, FragOffset: off, Frag: make([]byte, n),
		}))
	}
	// Two fragments both claiming offset 0: no fixed-chunk tiling puts
	// fragment 1 there, so the crafted overlap cannot complete an
	// envelope whose uncovered tail would be zero-filled.
	if got := frag(1, 0, 2, 0, 100, 200); got != DropNone {
		t.Fatalf("fragment 0: %v", got)
	}
	if got := frag(2, 1, 2, 0, 100, 200); got != DropReassembly {
		t.Fatalf("overlapping fragment: %v, want DropReassembly", got)
	}
	// A chunk too small for its count: two 100-byte fragments cannot
	// tile a 1000-byte envelope; accepting them would hand the merge
	// path 800 fabricated zero bytes.
	if got := frag(3, 0, 2, 0, 100, 1000); got != DropReassembly {
		t.Fatalf("short-chunk fragment: %v, want DropReassembly", got)
	}
	// A non-last fragment off the chunk grid.
	if got := frag(4, 1, 3, 300, 400, 1000); got != DropReassembly {
		t.Fatalf("off-grid fragment: %v, want DropReassembly", got)
	}
	// A last fragment implying a different chunk than the assembly's:
	// the flush is corrupt, so the whole assembly must go.
	if got := frag(5, 2, 3, 900, 100, 1000); got != DropReassembly {
		t.Fatalf("chunk-mismatch fragment: %v, want DropReassembly", got)
	}
	if s := r.Stats(); s.Assemblies != 0 {
		t.Fatalf("assemblies = %d, want 0", s.Assemblies)
	}
	if len(h.envelopes) != 0 {
		t.Fatalf("crafted fragments completed %d envelopes", len(h.envelopes))
	}
}

func TestReceiverNewerFlushSupersedesStalled(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	env := make([]byte, 200)
	for i := range env {
		env[i] = byte(i)
	}
	frag := func(seq, flush uint64, idx int) []byte {
		off := idx * 100
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 4, Seq: seq, Namespace: "ns",
			FlushID: flush, FragIndex: idx, FragCount: 2,
			EnvLen: len(env), FragOffset: off, Frag: env[off : off+100],
		})
	}
	// Flush 1 loses its second fragment in flight: the assembly stalls
	// and can never complete (agents do not retransmit fragments).
	if got := r.Process(frag(1, 1, 0)); got != DropNone {
		t.Fatalf("stalled fragment: %v", got)
	}
	if s := r.Stats(); s.Assemblies != 1 {
		t.Fatalf("assemblies = %d, want 1", s.Assemblies)
	}
	// Flush 2 arrives complete: it supersedes the stalled assembly
	// (envelope state is cumulative) and reassembles normally.
	if got := r.Process(frag(10, 2, 0)); got != DropNone {
		t.Fatalf("flush-2 fragment 0: %v", got)
	}
	if got := r.Process(frag(11, 2, 1)); got != DropNone {
		t.Fatalf("flush-2 fragment 1: %v", got)
	}
	if len(h.envelopes) != 1 || !bytes.Equal(h.envelopes[0], env) {
		t.Fatalf("flush 2 delivered %d envelopes", len(h.envelopes))
	}
	s := r.Stats()
	if s.Assemblies != 0 {
		t.Fatalf("stalled assembly survived: %d in flight", s.Assemblies)
	}
	if s.AssembliesEvicted != 1 {
		t.Fatalf("evicted = %d, want 1", s.AssembliesEvicted)
	}
}

func TestReceiverCapacityEvictsStalest(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	half := func(source uint64) []byte {
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: source, Seq: 1, Namespace: "ns",
			FlushID: 1, FragIndex: 0, FragCount: 2,
			EnvLen: 200, FragOffset: 0, Frag: make([]byte, 100),
		})
	}
	// maxAssemblies distinct sources each stall an assembly. Before
	// eviction existed, this state refused every later multi-fragment
	// envelope forever — a silent total outage of envelope ingest.
	for src := uint64(1); src <= maxAssemblies; src++ {
		if got := r.Process(half(src)); got != DropNone {
			t.Fatalf("source %d: %v", src, got)
		}
	}
	if s := r.Stats(); s.Assemblies != maxAssemblies {
		t.Fatalf("assemblies = %d, want %d", s.Assemblies, maxAssemblies)
	}
	// A fresh source's flush displaces the stalest stalled assembly
	// and completes.
	env := make([]byte, 200)
	for i := range env {
		env[i] = byte(i)
	}
	fresh := func(seq uint64, idx int) []byte {
		off := idx * 100
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 9999, Seq: seq, Namespace: "ns",
			FlushID: 1, FragIndex: idx, FragCount: 2,
			EnvLen: len(env), FragOffset: off, Frag: env[off : off+100],
		})
	}
	if got := r.Process(fresh(1, 0)); got != DropNone {
		t.Fatalf("fresh fragment 0: %v", got)
	}
	if got := r.Process(fresh(2, 1)); got != DropNone {
		t.Fatalf("fresh fragment 1: %v", got)
	}
	if len(h.envelopes) != 1 || !bytes.Equal(h.envelopes[0], env) {
		t.Fatalf("fresh flush delivered %d envelopes", len(h.envelopes))
	}
	s := r.Stats()
	if s.AssembliesEvicted != 1 {
		t.Fatalf("evicted = %d, want 1", s.AssembliesEvicted)
	}
	if s.Assemblies != maxAssemblies-1 {
		t.Fatalf("assemblies = %d, want %d", s.Assemblies, maxAssemblies-1)
	}
}

func TestReceiverHandlerDropsAreAccounted(t *testing.T) {
	h := newCollectHandler()
	h.refuse = DropRate
	r := NewReceiver(h)
	if got := r.Process(batchDatagram(t, 1, 1, "k")); got != DropRate {
		t.Fatalf("refused batch: %v", got)
	}
	s := r.Stats()
	if s.Dropped[DropRate] != 1 || s.AppliedBatch != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReceiverGarbageIsDecodeDrop(t *testing.T) {
	r := NewReceiver(newCollectHandler())
	if got := r.Process([]byte("not a datagram")); got != DropDecode {
		t.Fatalf("garbage: %v", got)
	}
	if s := r.Stats(); s.Dropped[DropDecode] != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDropReasonLabels(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range DropReasons() {
		label := r.String()
		if label == "unknown" || seen[label] {
			t.Fatalf("reason %d: label %q", r, label)
		}
		seen[label] = true
	}
}
