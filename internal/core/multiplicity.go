package core

import (
	"fmt"
	"math/bits"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
)

// Multiplicity is ShBF_X, the shifting Bloom filter for multiplicity
// queries over a multi-set (paper Section 5). An element e occurring
// c(e) times is encoded once with offset o(e) = c(e) − 1: the k bits
// B[h_i(e)%m + c(e)−1] are set. A query reads, per base position, the c
// consecutive bits B[h_i%m … h_i%m+c−1] (⌈c/w⌉ memory accesses each,
// Section 5.2) and intersects the k windows; bit j−1 surviving in the
// intersection makes j a candidate multiplicity. The largest candidate
// is reported so the answer is never below the true count — no false
// negatives, only one-sided overestimates (Section 5.4).
type Multiplicity struct {
	bits *bitvec.Vector
	m    int
	k    int
	c    int // maximum multiplicity
	fam  *hashing.Family
	seed uint64
	n    int // distinct elements encoded
}

// NewMultiplicity returns an empty ShBF_X for counts in [1, c]. The
// paper's evaluation uses c = 57 (= w̄) so each per-position window is a
// single access; any c in [1, 64] is supported here (c > w would cost
// ⌈c/w⌉ accesses per window, which the access accounting reflects).
func NewMultiplicity(m, k, c int, opts ...Option) (*Multiplicity, error) {
	cfg, err := buildConfig(KindMultiplicity, opts)
	if err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be ≥ 1", k)
	}
	if c < 1 || c > 64 {
		return nil, fmt.Errorf("core: max multiplicity c = %d out of range [1,64]", c)
	}
	f := &Multiplicity{
		bits: bitvec.New(m + c - 1),
		m:    m,
		k:    k,
		c:    c,
		fam:  hashing.NewFamily(k, cfg.seed),
		seed: cfg.seed,
	}
	f.bits.SetCounter(cfg.counter)
	return f, nil
}

// M, K, C and N report the construction parameters and the number of
// distinct elements encoded.
func (f *Multiplicity) M() int { return f.m }
func (f *Multiplicity) K() int { return f.k }
func (f *Multiplicity) C() int { return f.c }
func (f *Multiplicity) N() int { return f.n }

// SizeBytes returns the bit-array footprint.
func (f *Multiplicity) SizeBytes() int { return f.bits.SizeBytes() }

// FillRatio returns the fraction of set bits.
func (f *Multiplicity) FillRatio() float64 { return f.bits.FillRatio() }

// AddWithCount encodes element e with multiplicity count ∈ [1, c].
// Regardless of count, exactly k bits are set — the memory cost is
// independent of the multiplicities, the property that makes ShBF_X more
// memory-efficient than counter-based schemes (Section 5.4). One digest
// pass, k mixes.
func (f *Multiplicity) AddWithCount(e []byte, count int) error {
	if count < 1 || count > f.c {
		return fmt.Errorf("core: count %d out of range [1,%d]: %w", count, f.c, ErrCountOverflow)
	}
	d := f.fam.Digest(e)
	o := count - 1
	for i := 0; i < f.k; i++ {
		f.bits.Set(f.fam.ModFromDigest(i, d, f.m) + o)
	}
	f.n++
	return nil
}

// candidateMask intersects the k c-bit windows of the element digested
// as d; bit j−1 set means j is a candidate multiplicity. The scan
// stops as soon as the intersection empties.
func (f *Multiplicity) candidateMask(d hashing.Digest) uint64 {
	var all uint64
	if f.c == 64 {
		all = ^uint64(0)
	} else {
		all = 1<<uint(f.c) - 1
	}
	cand := all
	for i := 0; i < f.k && cand != 0; i++ {
		cand &= f.bits.Window(f.fam.ModFromDigest(i, d, f.m), f.c)
	}
	return cand
}

// Candidates appends the candidate multiplicities of e to dst in
// increasing order and returns it. For an element with true count j,
// j is always present (Section 5.2); false positives may add larger or
// smaller values.
func (f *Multiplicity) Candidates(e []byte, dst []int) []int {
	dst = dst[:0]
	cand := f.candidateMask(f.fam.Digest(e))
	for cand != 0 {
		j := bits.TrailingZeros64(cand)
		dst = append(dst, j+1)
		cand &^= 1 << uint(j)
	}
	return dst
}

// Count returns the reported multiplicity of e: the largest candidate,
// "to avoid false negatives" (Section 5.2), or 0 if e is certainly not
// in the multi-set. The report is always ≥ the true count.
func (f *Multiplicity) Count(e []byte) int {
	cand := f.candidateMask(f.fam.Digest(e))
	if cand == 0 {
		return 0
	}
	return 64 - bits.LeadingZeros64(cand)
}

// Reset clears the filter.
func (f *Multiplicity) Reset() {
	f.bits.Reset()
	f.n = 0
}

// AccessesPerQuery returns k·⌈c/w⌉, the paper's Section 5.2 worst-case
// memory-access budget (the measured average is lower because of early
// termination).
func (f *Multiplicity) AccessesPerQuery() int {
	return f.k * ((f.c + WordBits - 1) / WordBits)
}
