// Package metrics is the daemon's dependency-free instrumentation
// core: lock-free counters and gauges, fixed-bucket latency
// histograms, and Prometheus text-format (version 0.0.4) rendering.
//
// The package exists because the serving hot paths carry the same
// zero-allocation contract as everything since PR 3: recording a
// request must be a handful of atomic adds, never a lock, a map
// lookup, or an allocation. [Counter.Inc], [Counter.Add], [Gauge]
// updates and [Histogram.Observe] are all lock-free atomics with zero
// allocations (guarded by alloc_test.go), so they can sit directly in
// the ShBP dispatch loop. All the string formatting happens at scrape
// time in [Registry.AppendText].
//
// Series are pre-registered: a [Registry] hands out instrument
// pointers at construction time ([Registry.NewCounter] and friends),
// and the caller keeps them wherever its hot path can reach them
// without lookups (arrays indexed by op byte, struct fields). State
// that already lives elsewhere — occupancy, fill ratios, admission
// counters — is exported at scrape time via the collector hooks
// ([Registry.CollectGauge], [Registry.CollectCounter]), which cost
// the hot path nothing.
//
// Rendering is deterministic: families sort by name, static series
// keep registration order, collector series keep emission order, and
// floats format minimally ('g', shortest round-trip). Two scrapes of
// unchanged state produce identical bytes — the property the
// HTTP-vs-ShBP transport-identity test pins.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ContentType is the Prometheus text exposition content type served
// with rendered metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one key="value" pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing counter. All methods are
// lock-free and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable integer gauge (current value, may go up and
// down). Fractional gauges are exported via [Registry.GaugeFunc] or a
// collector instead — every directly-instrumented gauge in the daemon
// is a count of something. All methods are lock-free and
// allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Buckets are chosen
// at registration ([Registry.NewHistogram]) and never change;
// [Histogram.Observe] is a short bounds scan plus two atomic adds —
// lock-free, allocation-free, fit for the dispatch hot path. Rendering
// produces the standard cumulative-le form with _sum (seconds) and
// _count.
type Histogram struct {
	boundsNanos []int64
	buckets     []atomic.Uint64 // len(boundsNanos)+1, last is +Inf
	sumNanos    atomic.Int64

	// Prerendered "<name>_bucket{...,le="x"} " prefixes (one per
	// bucket, +Inf last) and the _sum/_count prefixes, so scrape-time
	// rendering is append-only.
	bucketPrefixes []string
	sumPrefix      string
	countPrefix    string
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	i := 0
	for i < len(h.boundsNanos) && n > h.boundsNanos[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNanos.Add(n)
}

// Registry holds metric families and renders them. Registration
// methods panic on invalid or conflicting definitions (programmer
// errors at construction time); rendering and the instruments
// themselves are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          []seriesEntry
	collectors      []func(*Emitter)
}

// seriesEntry is one pre-registered series: a prerendered
// "name{labels}" prefix plus exactly one value source.
type seriesEntry struct {
	prefix  string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// NewCounter registers a counter series and returns its instrument.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.addSeries(name, help, "counter", labels, seriesEntry{counter: c})
	return c
}

// NewGauge registers an integer gauge series and returns its
// instrument.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.addSeries(name, help, "gauge", labels, seriesEntry{gauge: g})
	return g
}

// NewHistogram registers a latency histogram with the given bucket
// upper bounds in seconds (ascending; +Inf is implicit) and returns
// its instrument.
func (r *Registry) NewHistogram(name, help string, boundsSeconds []float64, labels ...Label) *Histogram {
	if len(boundsSeconds) == 0 {
		panic("metrics: histogram " + name + " needs at least one bucket bound")
	}
	h := &Histogram{
		boundsNanos: make([]int64, len(boundsSeconds)),
		buckets:     make([]atomic.Uint64, len(boundsSeconds)+1),
	}
	labelStr := renderLabels(labels)
	for i, b := range boundsSeconds {
		if i > 0 && b <= boundsSeconds[i-1] {
			panic("metrics: histogram " + name + " bounds not ascending")
		}
		h.boundsNanos[i] = int64(math.Round(b * 1e9))
		h.bucketPrefixes = append(h.bucketPrefixes,
			name+"_bucket"+withLabel(labelStr, Label{"le", formatFloat(b)})+" ")
	}
	h.bucketPrefixes = append(h.bucketPrefixes,
		name+"_bucket"+withLabel(labelStr, Label{"le", "+Inf"})+" ")
	h.sumPrefix = name + "_sum" + labelStr + " "
	h.countPrefix = name + "_count" + labelStr + " "
	r.addSeries(name, help, "histogram", labels, seriesEntry{hist: h})
	return h
}

// CounterFunc registers a counter series whose value is read from fn
// at scrape time (for counters that already live elsewhere).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.addSeries(name, help, "counter", labels, seriesEntry{cfn: fn})
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.addSeries(name, help, "gauge", labels, seriesEntry{gfn: fn})
}

// CollectGauge registers a dynamic gauge family: fn runs at every
// scrape and emits any number of labeled samples (e.g. one per live
// namespace). Emission order is the rendered order.
func (r *Registry) CollectGauge(name, help string, fn func(*Emitter)) {
	r.addCollector(name, help, "gauge", fn)
}

// CollectCounter registers a dynamic counter family (see
// [Registry.CollectGauge]).
func (r *Registry) CollectCounter(name, help string, fn func(*Emitter)) {
	r.addCollector(name, help, "counter", fn)
}

// Emitter appends one collector's samples during a scrape.
type Emitter struct {
	buf  []byte
	name string
}

// Emit appends one sample with the given labels.
func (e *Emitter) Emit(v float64, labels ...Label) {
	e.buf = append(e.buf, e.name...)
	e.buf = append(e.buf, renderLabels(labels)...)
	e.buf = append(e.buf, ' ')
	e.buf = appendFloat(e.buf, v)
	e.buf = append(e.buf, '\n')
}

// EmitUint is Emit for exact integer counters (no float rounding at
// any magnitude).
func (e *Emitter) EmitUint(v uint64, labels ...Label) {
	e.buf = append(e.buf, e.name...)
	e.buf = append(e.buf, renderLabels(labels)...)
	e.buf = append(e.buf, ' ')
	e.buf = strconv.AppendUint(e.buf, v, 10)
	e.buf = append(e.buf, '\n')
}

// AppendText renders every family in Prometheus text format, sorted
// by family name, and returns the extended buffer.
func (r *Registry) AppendText(buf []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for _, se := range f.series {
			buf = se.appendSample(buf)
		}
		for _, collect := range f.collectors {
			e := &Emitter{buf: buf, name: f.name}
			collect(e)
			buf = e.buf
		}
	}
	return buf
}

// Render is AppendText into a fresh buffer.
func (r *Registry) Render() []byte { return r.AppendText(nil) }

// ServeHTTP serves the rendered registry — the GET /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	w.Write(r.Render())
}

func (se *seriesEntry) appendSample(buf []byte) []byte {
	switch {
	case se.counter != nil:
		buf = append(buf, se.prefix...)
		buf = strconv.AppendUint(buf, se.counter.Load(), 10)
		buf = append(buf, '\n')
	case se.gauge != nil:
		buf = append(buf, se.prefix...)
		buf = strconv.AppendInt(buf, se.gauge.Load(), 10)
		buf = append(buf, '\n')
	case se.cfn != nil:
		buf = append(buf, se.prefix...)
		buf = strconv.AppendUint(buf, se.cfn(), 10)
		buf = append(buf, '\n')
	case se.gfn != nil:
		buf = append(buf, se.prefix...)
		buf = appendFloat(buf, se.gfn())
		buf = append(buf, '\n')
	case se.hist != nil:
		h := se.hist
		cum := uint64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			buf = append(buf, h.bucketPrefixes[i]...)
			buf = strconv.AppendUint(buf, cum, 10)
			buf = append(buf, '\n')
		}
		// _sum is read after the buckets; a concurrent Observe between
		// the two reads skews one scrape by one sample, which monotone
		// consumers tolerate.
		buf = append(buf, h.sumPrefix...)
		buf = appendFloat(buf, float64(h.sumNanos.Load())/1e9)
		buf = append(buf, '\n')
		buf = append(buf, h.countPrefix...)
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// addSeries registers one pre-rendered series under its family,
// creating the family on first use.
func (r *Registry) addSeries(name, help, typ string, labels []Label, se seriesEntry) {
	se.prefix = name + renderLabels(labels) + " "
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	for _, existing := range f.series {
		if existing.prefix == se.prefix {
			panic("metrics: duplicate series " + se.prefix)
		}
	}
	f.series = append(f.series, se)
}

func (r *Registry) addCollector(name, help, typ string, fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	f.collectors = append(f.collectors, fn)
}

// familyLocked finds or creates a family; redefining one with a
// different type is a programmer error.
func (r *Registry) familyLocked(name, help, typ string) *family {
	if err := validName(name); err != nil {
		panic("metrics: " + err.Error())
	}
	if r.families == nil {
		r.families = map[string]*family{}
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: family %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// validName checks the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("metric name %q has invalid byte %q", name, c)
		}
	}
	return nil
}

// renderLabels renders a label set as {k="v",...} ("" when empty),
// escaping values per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	buf := []byte{'{'}
	for i, l := range labels {
		if err := validName(l.Key); err != nil {
			panic("metrics: label " + err.Error())
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, l.Key...)
		buf = append(buf, '=', '"')
		buf = appendEscapedValue(buf, l.Value)
		buf = append(buf, '"')
	}
	return string(append(buf, '}'))
}

// withLabel appends one more label to an already-rendered label
// string (used to splice le into histogram bucket series).
func withLabel(rendered string, l Label) string {
	extra := renderLabels([]Label{l})
	if rendered == "" {
		return extra
	}
	return rendered[:len(rendered)-1] + "," + extra[1:]
}

// appendEscapedValue escapes a label value: backslash, quote, newline.
func appendEscapedValue(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedHelp escapes HELP text: backslash and newline.
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendFloat renders a float minimally: exact integers without an
// exponent, everything else shortest-round-trip 'g'.
func appendFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// formatFloat is appendFloat into a string (bucket bound labels).
func formatFloat(v float64) string { return string(appendFloat(nil, v)) }
