package core

import (
	"math"
	"testing"
)

// buildMultiSets returns g disjoint element groups plus one group
// shared by every set (to exercise overlap).
func buildMultiSets(g, nEach, nShared int, seed int64) (exclusive [][][]byte, shared [][]byte) {
	all := genElements(g*nEach+nShared, seed)
	for i, e := range all {
		e[11] = byte(i / nEach) // distinct tag per group
	}
	exclusive = make([][][]byte, g)
	for i := 0; i < g; i++ {
		exclusive[i] = all[i*nEach : (i+1)*nEach]
	}
	return exclusive, all[g*nEach:]
}

func mustMulti(t *testing.T, sets [][][]byte, m, k int, opts ...Option) *MultiAssociation {
	t.Helper()
	a, err := BuildMultiAssociation(sets, m, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildMultiAssociationValidation(t *testing.T) {
	two := make([][][]byte, 2)
	if _, err := BuildMultiAssociation(make([][][]byte, 1), 100, 4); err == nil {
		t.Error("accepted g=1")
	}
	if _, err := BuildMultiAssociation(make([][][]byte, 6), 100, 4); err == nil {
		t.Error("accepted g=6")
	}
	if _, err := BuildMultiAssociation(two, 0, 4); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := BuildMultiAssociation(two, 100, 0); err == nil {
		t.Error("accepted k=0")
	}
	// g=5 needs 30 segments: w̄=16 is too small.
	if _, err := BuildMultiAssociation(make([][][]byte, 5), 100, 4, WithMaxOffset(16)); err == nil {
		t.Error("accepted w̄ too small for g=5")
	}
}

func TestMultiAssociationDisjointTruths(t *testing.T) {
	const g = 3
	exclusive, _ := buildMultiSets(g, 500, 0, 1)
	a := mustMulti(t, exclusive, 30000, 8)
	if a.G() != g {
		t.Fatalf("G = %d", a.G())
	}
	for s := 0; s < g; s++ {
		if a.SetSize(s) != 500 {
			t.Fatalf("SetSize(%d) = %d", s, a.SetSize(s))
		}
		truthMask := 1 << s
		for _, e := range exclusive[s] {
			ans := a.Query(e)
			if !ans.Contains(truthMask) {
				t.Fatalf("set %d element lost its region", s)
			}
			if ans.Clear() && ans.Region() != truthMask {
				t.Fatalf("clear answer %b for true region %b", ans.Region(), truthMask)
			}
		}
	}
}

func TestMultiAssociationOverlapIsSound(t *testing.T) {
	// Elements in every set — the case that breaks the Section 2.2
	// schemes — must keep their all-sets region among the candidates.
	const g = 3
	exclusive, shared := buildMultiSets(g, 300, 200, 2)
	sets := make([][][]byte, g)
	for i := range sets {
		sets[i] = append(append([][]byte{}, exclusive[i]...), shared...)
	}
	a := mustMulti(t, sets, 30000, 8)
	allMask := 1<<g - 1
	for _, e := range shared {
		ans := a.Query(e)
		if !ans.Contains(allMask) {
			t.Fatal("shared element lost its all-sets region")
		}
		for s := 0; s < g; s++ {
			if ans.Clear() && !ans.DefinitelyIn(s) {
				t.Fatal("clear all-sets answer not definite for a member set")
			}
		}
	}
}

func TestMultiAssociationClearProbMatchesTheory(t *testing.T) {
	const g, k = 3, 10
	exclusive, _ := buildMultiSets(g, 2000, 0, 3)
	n := 3 * 2000
	m := int(float64(n) * k / math.Ln2)
	a := mustMulti(t, exclusive, m, k, WithSeed(7))
	clear, total := 0, 0
	for s := 0; s < g; s++ {
		for _, e := range exclusive[s] {
			if a.Query(e).Clear() {
				clear++
			}
			total++
		}
	}
	got := float64(clear) / float64(total)
	// (1−0.5^k)^{R−1}, R = 7.
	want := math.Pow(1-math.Pow(0.5, k), 6)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("clear rate %.4f vs theory %.4f", got, want)
	}
}

func TestMultiAssociationNonMember(t *testing.T) {
	exclusive, _ := buildMultiSets(2, 100, 0, 4)
	a := mustMulti(t, exclusive, 20000, 8)
	empty := 0
	for _, e := range genDisjoint(1000, 5) {
		if a.Query(e).Empty() {
			empty++
		}
	}
	if empty < 980 {
		t.Fatalf("only %d/1000 non-members reported Empty", empty)
	}
}

func TestMultiAnswerPredicates(t *testing.T) {
	tests := []struct {
		cand  uint32
		clear bool
		empty bool
		reg   int
	}{
		{0, false, true, 0},
		{0b1, true, false, 1},
		{0b100, true, false, 3},
		{0b101, false, false, 0},
	}
	for _, tt := range tests {
		ans := MultiAnswer{candidates: tt.cand, g: 2}
		if ans.Clear() != tt.clear || ans.Empty() != tt.empty || ans.Region() != tt.reg {
			t.Errorf("cand %b: Clear=%v Empty=%v Region=%d", tt.cand, ans.Clear(), ans.Empty(), ans.Region())
		}
	}
	// DefinitelyIn: candidates {region 0b11} (both sets) → definite in
	// set 0 and 1; candidates {0b01, 0b11} → definite in set 0 only.
	both := MultiAnswer{candidates: 1 << (0b11 - 1), g: 2}
	if !both.DefinitelyIn(0) || !both.DefinitelyIn(1) {
		t.Error("all-sets region not definite")
	}
	mixed := MultiAnswer{candidates: 1<<(0b01-1) | 1<<(0b11-1), g: 2}
	if !mixed.DefinitelyIn(0) || mixed.DefinitelyIn(1) {
		t.Error("mixed candidates: definiteness wrong")
	}
	if mixed.DefinitelyIn(-1) || mixed.DefinitelyIn(5) {
		t.Error("out-of-range set index accepted")
	}
}

func TestMultiAssociationG2ConsistentWithShBFA(t *testing.T) {
	// g = 2 answers must agree with Association on soundness for all
	// three regions (encodings differ — segment layout vs o1/o2 — but
	// both guarantee the truth survives).
	s1only, both, s2only := buildAssocSets(200, 100, 200, 6)
	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	multi := mustMulti(t, [][][]byte{s1, s2}, 10000, 8, WithSeed(9))

	for _, e := range s1only {
		if !multi.Query(e).Contains(0b01) {
			t.Fatal("g=2: S1-only truth lost")
		}
	}
	for _, e := range both {
		if !multi.Query(e).Contains(0b11) {
			t.Fatal("g=2: both truth lost")
		}
	}
	for _, e := range s2only {
		if !multi.Query(e).Contains(0b10) {
			t.Fatal("g=2: S2-only truth lost")
		}
	}
}

func TestMultiAssociationG5(t *testing.T) {
	const g = 5
	exclusive, _ := buildMultiSets(g, 200, 0, 8)
	a := mustMulti(t, exclusive, 30000, 8)
	if got := a.HashOpsPerQuery(); got != 8+30 {
		t.Fatalf("HashOpsPerQuery = %d, want 38", got)
	}
	for s := 0; s < g; s++ {
		for _, e := range exclusive[s] {
			if !a.Query(e).Contains(1 << s) {
				t.Fatalf("g=5 set %d element lost", s)
			}
		}
	}
}

func BenchmarkMultiAssociationQuery(b *testing.B) {
	exclusive := make([][][]byte, 3)
	all := genElements(30000, 1)
	for i := range exclusive {
		exclusive[i] = all[i*10000 : (i+1)*10000]
	}
	a, err := BuildMultiAssociation(exclusive, 500000, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Query(all[i%30000])
	}
}
