package analytic

// This file addresses the paper's Section 3.4.1 aside: Bloom's classic
// FPR formula (Equation 8) "is slightly flawed" — Bose et al. (2008)
// showed it underestimates the true rate, and Christensen et al. (2010)
// gave the exact expression. The paper keeps Bloom's formula because
// "the error … is negligible"; ExactFPRBF lets the reproduction verify
// that negligibility instead of taking it on faith.
//
// Rather than evaluating Christensen's closed form (which needs
// Stirling numbers of the second kind and arbitrary precision), we
// compute the same quantity by dynamic programming over the occupancy
// distribution: after t balls (bit-set operations) land uniformly in m
// bins, track P[X_t = i] for the number i of occupied bins. A false
// positive for a fresh element is then E[(X_{kn}/m)^k].

// ExactFPRBF returns the exact standard-BF false-positive rate for n
// elements, k hash functions and m bits, under the usual uniform-and-
// independent hashing model. Complexity is O(k·n·m) time and O(m)
// space — fine for the paper-scale parameters used in tests; prefer
// FPRBF (Equation 8) in hot paths.
func ExactFPRBF(m, n, k int) float64 {
	if m <= 0 || k <= 0 {
		return 0
	}
	if n <= 0 {
		return 0
	}
	balls := k * n
	// occ[i] = P[X = i occupied bins]; starts at X = 0 with certainty.
	occ := make([]float64, m+1)
	occ[0] = 1
	mf := float64(m)
	maxOcc := 0
	for t := 0; t < balls; t++ {
		if maxOcc < m {
			maxOcc++
		}
		// Update in place from high to low: X stays i (ball hits an
		// occupied bin, prob i/m) or moves i-1 → i (prob (m-i+1)/m).
		for i := maxOcc; i >= 1; i-- {
			occ[i] = occ[i]*float64(i)/mf + occ[i-1]*float64(m-i+1)/mf
		}
		occ[0] = 0
	}
	// FPR = Σ_i P[X=i]·(i/m)^k.
	fpr := 0.0
	for i := 1; i <= maxOcc; i++ {
		if occ[i] == 0 {
			continue
		}
		frac := float64(i) / mf
		p := 1.0
		for j := 0; j < k; j++ {
			p *= frac
		}
		fpr += occ[i] * p
	}
	return fpr
}
