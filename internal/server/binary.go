package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"shbf"
	"shbf/internal/core"
	"shbf/internal/wire"
)

// ShBP serving: the binary batch listener. Each connection runs one
// goroutine in a read-frame → dispatch → write-frame loop; requests on
// a connection are answered in order, so clients can pipeline. One
// decoded frame feeds the library's batch paths directly — keys are
// subslices of the connection's frame buffer (the filters don't retain
// them: the key-storing kinds copy into their hash tables), so the
// per-request cost is one buffer read and zero per-key allocations,
// versus the JSON path's string decode + base64 per key. This is the
// transport that lets one daemon approach the library's native
// throughput on small batches (ROADMAP's binary-protocol item;
// measured in BENCH_PR5.json).

// ServeShBP accepts ShBP connections on ln until ctx is cancelled or
// ln fails, serving every namespace. It blocks; run it in its own
// goroutine alongside the HTTP server.
func (s *Server) ServeShBP(ctx context.Context, ln net.Listener) error {
	var (
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		wg    sync.WaitGroup
	)
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	defer stop()
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return fmt.Errorf("server: shbp accept: %w", err)
		}
		// Register under the lock with a cancellation re-check: a
		// connection accepted just as ctx fires could otherwise slip
		// into the map after the AfterFunc's sweep and hold wg.Wait()
		// open until the remote side hangs up.
		mu.Lock()
		if ctx.Err() != nil {
			mu.Unlock()
			conn.Close()
			return nil
		}
		conns[conn] = struct{}{}
		mu.Unlock()
		if s.met != nil {
			s.met.openConns.Inc()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
				if s.met != nil {
					s.met.openConns.Dec()
				}
			}()
			if err := s.serveShBPConn(conn); err != nil && ctx.Err() == nil {
				log.Printf("server: shbp conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveShBPConn runs one connection's request loop. A protocol error
// is answered with a bad-request frame and closes the connection (the
// stream position is unrecoverable); op-level errors are answered in
// band and the loop continues. With cfg.ShBPIdleTimeout set, a
// connection that completes no frame within the timeout is reaped —
// the deadline re-arms before every frame read, so an active pipelined
// connection never trips it while a dialed-and-silent one cannot hold
// its goroutine and buffers forever.
func (s *Server) serveShBPConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var (
		frame []byte
		out   []byte
		req   wire.Request
		resp  wire.Response
		sc    dispatchScratch
	)
	for {
		var err error
		if idle := s.cfg.ShBPIdleTimeout; idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		frame, err = wire.ReadFrame(br, frame)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return nil // idle reap, not a fault
			}
			return err
		}
		if derr := wire.DecodeRequest(&req, frame); derr != nil {
			// The frame boundary held (ReadFrame consumed exactly the
			// declared bytes) but the payload is malformed; answer and
			// drop the connection in case the client is confused about
			// the protocol version.
			resp = wire.Response{Status: wire.StatusBadRequest, Op: req.Op, Msg: derr.Error()}
			if out, err = wire.AppendResponse(out[:0], &resp); err == nil {
				bw.Write(out)
				bw.Flush()
			}
			return derr
		}
		s.handleFrame(&req, &resp, &sc)
		if out, err = wire.AppendResponse(out[:0], &resp); err != nil {
			return fmt.Errorf("encoding %s response: %w", wire.OpName(req.Op), err)
		}
		if _, err = bw.Write(out); err != nil {
			return err
		}
		// Flush when no further request is already buffered, so
		// pipelined batches share one write syscall.
		if br.Buffered() == 0 {
			if err = bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// handleFrame admits and dispatches one decoded frame, recording its
// latency, request counter and in-flight gauge. The in-flight frame
// cap sheds before dispatch, writes first; the shed answer is in-band
// — the connection stays usable, so a backoff-and-retry client keeps
// its pipeline. Instrumentation is a time read plus a handful of
// atomic adds, zero allocations (metrics_alloc_test.go) — except for
// OpMetrics itself, which is served entirely unrecorded so a scrape
// never changes what the next scrape (on either transport) renders.
func (s *Server) handleFrame(req *wire.Request, resp *wire.Response, sc *dispatchScratch) {
	met := s.met
	if met == nil || req.Op == wire.OpMetrics {
		if gerr := s.frames.acquire(writeOp(req.Op)); gerr != nil {
			*resp = wire.Response{Status: wire.StatusOverloaded, Op: req.Op, Msg: gerr.Error()}
			return
		}
		s.dispatch(req, resp, sc)
		s.frames.release()
		return
	}
	start := time.Now()
	if gerr := s.frames.acquire(writeOp(req.Op)); gerr != nil {
		*resp = wire.Response{Status: wire.StatusOverloaded, Op: req.Op, Msg: gerr.Error()}
		met.shedInflight.Inc()
	} else {
		met.inflight.Inc()
		s.dispatch(req, resp, sc)
		met.inflight.Dec()
		s.frames.release()
	}
	if h := met.shbpDur[req.Op]; h != nil {
		h.Observe(time.Since(start))
	}
	if c := met.shbpReqs[req.Op][statusIndex(resp.Status)]; c != nil {
		c.Inc()
	}
}

// dispatchScratch is per-connection reusable result storage, so the
// query hot paths allocate only on batch-size growth.
type dispatchScratch struct {
	bools   []bool
	counts  []int
	regions []core.Region
}

// dispatch answers one decoded request into resp. It never returns an
// error: failures become in-band status responses, mirroring the HTTP
// layer's status mapping.
func (s *Server) dispatch(req *wire.Request, resp *wire.Response, sc *dispatchScratch) {
	*resp = wire.Response{Status: wire.StatusOK, Op: req.Op}

	// Control-plane ops that need no namespace.
	switch req.Op {
	case wire.OpPing:
		return
	case wire.OpNamespaceCreate:
		var nc NamespaceConfig
		if err := json.Unmarshal(req.Blob, &nc); err != nil {
			resp.Status, resp.Msg = wire.StatusBadRequest, fmt.Sprintf("decoding config: %s", err)
			return
		}
		if nc.Name == "" {
			nc.Name = req.Namespace
		}
		if err := s.CreateNamespace(nc); err != nil {
			resp.Status, resp.Msg = wire.StatusBadRequest, err.Error()
			switch {
			case errors.Is(err, errNamespaceExists):
				resp.Status = wire.StatusConflict
			case IsOverloaded(err): // daemon memory ceiling
				resp.Status = wire.StatusOverloaded
			}
		}
		return
	case wire.OpNamespaceDelete:
		if err := s.DeleteNamespace(req.Namespace); err != nil {
			resp.Status, resp.Msg = wire.StatusNotFound, err.Error()
			if req.Namespace == DefaultNamespace {
				resp.Status = wire.StatusConflict
			}
		}
		return
	case wire.OpNamespaceList:
		blob, err := json.Marshal(s.namespaceList())
		if err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			return
		}
		resp.Blob = blob
		return
	case wire.OpClusterMap:
		cs := s.cluster.Load()
		if cs == nil {
			resp.Status, resp.Msg = wire.StatusNotFound, errNotClustered.Error()
			return
		}
		resp.Blob = cs.encoded
		return
	case wire.OpMetrics:
		if s.met == nil {
			resp.Status, resp.Msg = wire.StatusNotFound, "server: metrics disabled"
			return
		}
		resp.Blob = s.met.reg.Render()
		return
	}

	ns, err := s.lookup(req.Namespace)
	if err != nil {
		resp.Status, resp.Msg = wire.StatusNotFound, err.Error()
		return
	}
	// Frozen namespaces serve reads; every mutating op conflicts, on
	// this transport exactly as over HTTP (freeze.go).
	switch req.Op {
	case wire.OpMembershipAdd, wire.OpMembershipMerge, wire.OpAssociationAdd,
		wire.OpAssociationRemove, wire.OpMultiplicityAdd, wire.OpMultiplicityRemove,
		wire.OpMultiplicityMerge, wire.OpRotate:
		if err := ns.writable(); err != nil {
			resp.Status, resp.Msg = wire.StatusConflict, err.Error()
			return
		}
	}
	// Per-tenant rate quota on the data-plane ops, charging one token
	// per key — the same gate, costs and message as the HTTP handlers,
	// so both transports shed byte-identically.
	switch req.Op {
	case wire.OpMembershipAdd, wire.OpAssociationAdd, wire.OpAssociationRemove,
		wire.OpMultiplicityAdd, wire.OpMultiplicityRemove:
		if err := ns.admit(len(req.Keys), true); err != nil {
			resp.Status, resp.Msg = wire.StatusOverloaded, err.Error()
			return
		}
	case wire.OpMembershipContains, wire.OpAssociationQuery, wire.OpMultiplicityCount:
		if err := ns.admit(len(req.Keys), false); err != nil {
			resp.Status, resp.Msg = wire.StatusOverloaded, err.Error()
			return
		}
	}
	switch req.Op {
	case wire.OpStats:
		blob, err := json.Marshal(s.statsFor(ns))
		if err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			return
		}
		resp.Blob = blob

	case wire.OpRotate:
		rotated, err := s.rotate(ns)
		if err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			if errors.Is(err, ErrNotWindowed) {
				resp.Status = wire.StatusConflict
			}
			return
		}
		resp.Rotated = rotated
		if win, ok := ns.mem.(shbf.Windowed); ok {
			resp.Epoch = win.Window().Epoch
		}

	case wire.OpMembershipAdd:
		if err := ns.mem.AddAll(req.Keys); err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			return
		}
		ns.stats.membershipAdd.Add(uint64(len(req.Keys)))
		resp.Applied = uint64(len(req.Keys))

	case wire.OpMembershipContains:
		sc.bools = ns.mem.ContainsAll(sc.bools[:0], req.Keys)
		ns.stats.membershipContains.Add(uint64(len(req.Keys)))
		resp.Bools = sc.bools

	case wire.OpMembershipMerge:
		n, err := ns.mergeEnvelope(req.Blob)
		if err != nil {
			resp.Status, resp.Msg = mergeStatusWire(err), err.Error()
			return
		}
		resp.Applied = uint64(n)

	case wire.OpMembershipDump:
		env, err := ns.membershipEnvelope()
		if err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			return
		}
		resp.Blob = env

	case wire.OpFreeze:
		blob, err := ns.freezeMembership()
		if err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			return
		}
		resp.Blob = blob

	case wire.OpAssociationAdd, wire.OpAssociationRemove:
		op, err := associationOp(ns, req.Op, req.Set)
		if err != nil {
			resp.Status, resp.Msg = wire.StatusBadRequest, err.Error()
			return
		}
		for i, k := range req.Keys {
			if err := op(k); err != nil {
				resp.Status, resp.Msg = wireUpdateStatus(err), err.Error()
				resp.Applied = uint64(i)
				return
			}
		}
		ns.stats.associationUpdate.Add(uint64(len(req.Keys)))
		resp.Applied = uint64(len(req.Keys))

	case wire.OpAssociationQuery:
		sc.regions = ns.assoc.QueryAll(sc.regions[:0], req.Keys)
		ns.stats.associationQuery.Add(uint64(len(req.Keys)))
		if cap(resp.Regions) < len(sc.regions) {
			resp.Regions = make([]byte, len(sc.regions))
		}
		resp.Regions = resp.Regions[:len(sc.regions)]
		for i, r := range sc.regions {
			resp.Regions[i] = byte(r)
		}

	case wire.OpMultiplicityAdd, wire.OpMultiplicityRemove:
		op := ns.mult.Insert
		if req.Op == wire.OpMultiplicityRemove {
			op = ns.mult.Delete
		}
		applied := uint64(0)
		for i, k := range req.Keys {
			count := 1
			if len(req.Counts) != 0 {
				count = req.Counts[i]
			}
			for j := 0; j < count; j++ {
				if err := op(k); err != nil {
					resp.Status = wireUpdateStatus(err)
					resp.Msg = fmt.Sprintf("key %d: %s", i, err)
					resp.Applied = applied
					return
				}
				applied++
			}
		}
		ns.stats.multiplicityUpdate.Add(applied)
		resp.Applied = applied

	case wire.OpMultiplicityCount:
		sc.counts = ns.mult.CountAll(sc.counts[:0], req.Keys)
		ns.stats.multiplicityQuery.Add(uint64(len(req.Keys)))
		resp.Counts = sc.counts

	case wire.OpMultiplicityMerge:
		n, err := ns.mergeMultiplicityEnvelope(req.Blob)
		if err != nil {
			resp.Status, resp.Msg = mergeStatusWire(err), err.Error()
			return
		}
		resp.Applied = uint64(n)

	case wire.OpMultiplicityDump:
		env, err := ns.multiplicityEnvelope()
		if err != nil {
			resp.Status, resp.Msg = wire.StatusInternal, err.Error()
			return
		}
		resp.Blob = env

	default:
		resp.Status, resp.Msg = wire.StatusBadRequest, fmt.Sprintf("unhandled op %s", wire.OpName(req.Op))
	}
}

// associationOp selects the association update for an op/set pair.
func associationOp(ns *namespace, op, set byte) (func([]byte) error, error) {
	if set != 1 && set != 2 {
		return nil, fmt.Errorf("set must be 1 or 2, got %d", set)
	}
	if op == wire.OpAssociationAdd {
		if set == 1 {
			return ns.assoc.InsertS1, nil
		}
		return ns.assoc.InsertS2, nil
	}
	if set == 1 {
		return ns.assoc.DeleteS1, nil
	}
	return ns.assoc.DeleteS2, nil
}

// mergeStatusWire maps a mergeEnvelope error to a wire status,
// mirroring mergeStatusHTTP case for case so the two transports can
// never disagree.
func mergeStatusWire(err error) byte {
	switch mergeStatusHTTP(err) {
	case http.StatusBadRequest:
		return wire.StatusBadRequest
	case http.StatusConflict:
		return wire.StatusConflict
	}
	return wire.StatusInternal
}

// wireUpdateStatus maps a filter update error to a wire status; it
// shares the capacity-error predicate with the HTTP mapping so the
// transports can never disagree on what client.IsConflict reports.
func wireUpdateStatus(err error) byte {
	if isCapacityErr(err) {
		return wire.StatusConflict
	}
	return wire.StatusInternal
}
