package core

import "testing"

// FuzzMembershipUnmarshal feeds arbitrary bytes to the filter decoder:
// no panics, and anything accepted must re-encode to an equivalent
// filter.
func FuzzMembershipUnmarshal(f *testing.F) {
	valid, err := NewMembership(1000, 4)
	if err != nil {
		f.Fatal(err)
	}
	valid.Add([]byte("seed element"))
	blob, _ := valid.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("ShBF\x01\x01"))
	// Other kinds' serializations seed the wrong-kind rejection path.
	if ts, err := NewTShift(1000, 6, 2); err == nil {
		b, _ := ts.MarshalBinary()
		f.Add(b)
	}
	if x, err := NewMultiplicity(1000, 4, 57); err == nil {
		b, _ := x.MarshalBinary()
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Membership
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted filter failed: %v", err)
		}
		var m2 Membership
		if err := m2.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.M() != m.M() || m2.K() != m.K() || m2.N() != m.N() {
			t.Fatal("round trip changed parameters")
		}
	})
}

// FuzzMultiAssociationUnmarshal feeds arbitrary bytes to the newest
// decoder: no panics, and anything accepted must re-encode to an
// equivalent filter.
func FuzzMultiAssociationUnmarshal(f *testing.F) {
	sets := [][][]byte{
		{[]byte("a"), []byte("b")},
		{[]byte("b"), []byte("c")},
		{[]byte("d")},
	}
	valid, err := BuildMultiAssociation(sets, 1000, 4)
	if err != nil {
		f.Fatal(err)
	}
	blob, _ := valid.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("ShBF\x01\x09"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var a MultiAssociation
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted filter failed: %v", err)
		}
		var a2 MultiAssociation
		if err := a2.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if a2.M() != a.M() || a2.K() != a.K() || a2.G() != a.G() {
			t.Fatal("round trip changed parameters")
		}
	})
}

// FuzzMembershipOps drives a filter with arbitrary element bytes split
// into chunks: no false negatives regardless of input shape (empty
// elements, long elements, duplicates).
func FuzzMembershipOps(f *testing.F) {
	f.Add([]byte("abcdef"), uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		filt, err := NewMembership(512, 4)
		if err != nil {
			t.Fatal(err)
		}
		size := int(chunk%16) + 1
		var elems [][]byte
		for i := 0; i+size <= len(data); i += size {
			elems = append(elems, data[i:i+size])
		}
		for _, e := range elems {
			filt.Add(e)
		}
		for _, e := range elems {
			if !filt.Contains(e) {
				t.Fatalf("false negative on %x", e)
			}
		}
	})
}
