package client_test

import (
	"bytes"
	"testing"

	"shbf"
	"shbf/client"
)

// TestFreezeBothTransports: Namespace.Freeze returns a ShBZ container
// that opens locally with shbf.OpenFrozen and answers like the daemon,
// and the frozen namespace conflicts on writes — identically over ShBP
// and HTTP.
func TestFreezeBothTransports(t *testing.T) {
	d := startDaemon(t, testConfig())
	for label, c := range d.clients(t) {
		t.Run(label, func(t *testing.T) {
			nsName := "cold-" + label
			if err := c.CreateNamespace(client.NamespaceConfig{Name: nsName}); err != nil {
				t.Fatal(err)
			}
			ns := c.Namespace(nsName)
			keys := make([][]byte, 256)
			for i := range keys {
				keys[i] = flowKey(i)
			}
			set := ns.Set()
			if err := set.AddAll(keys); err != nil {
				t.Fatal(err)
			}

			blob, err := ns.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			fz, err := shbf.OpenFrozen(blob)
			if err != nil {
				t.Fatalf("opening frozen container: %v", err)
			}
			if fz.N() != len(keys) {
				t.Fatalf("frozen N = %d, want %d", fz.N(), len(keys))
			}
			// The local zero-copy container and the daemon agree on every
			// key — members and a non-member probe.
			probes := append(keys[:len(keys):len(keys)], []byte("never-added"))
			local := fz.ContainsAll(nil, probes)
			remote, err := set.Check(probes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range probes {
				if local[i] != remote[i] {
					t.Fatalf("probe %d: frozen=%v daemon=%v", i, local[i], remote[i])
				}
			}

			// Writes conflict on this transport from now on.
			err = set.AddAll([][]byte{[]byte("late")})
			if !client.IsConflict(err) {
				t.Fatalf("write to frozen namespace: err = %v, want conflict", err)
			}
			if err := ns.Counter().Insert([]byte("late")); !client.IsConflict(err) {
				t.Fatalf("multiplicity write to frozen namespace: err = %v, want conflict", err)
			}

			// Reads keep serving, and a repeat freeze is byte-identical.
			if got, err := set.Check(keys[:1]); err != nil || !got[0] {
				t.Fatalf("read after freeze: %v %v", got, err)
			}
			blob2, err := ns.Freeze()
			if err != nil || !bytes.Equal(blob, blob2) {
				t.Fatalf("repeat freeze: err=%v byte-identical=%v", err, bytes.Equal(blob, blob2))
			}
		})
	}
}
