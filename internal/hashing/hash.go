// Package hashing provides the hash-function substrate of the ShBF
// reproduction: a seeded 128-bit mixing function implemented from
// scratch, the one-pass digest pipeline (digest.go) from which families
// of k independent hash functions (the paper's h_1 … h_k assumption)
// derive all their values with one key scan, Kirsch–Mitzenmacher double
// hashing (the 1MemBF and "less hashing" baselines), and the paper's
// bit-balance randomness test (Section 6.1).
//
// The paper selected 18 hash functions from Bob Jenkins' collection by
// testing that every output bit is 1 with empirical probability ≈ 0.5
// over the trace. We reproduce that criterion with BitBalance and apply
// it to this package's family in its tests, so the "independent hash
// functions with uniformly distributed outputs" assumption of the
// analysis holds for the reproduction as it did for the paper.
package hashing

import (
	"encoding/binary"
	"math/bits"
)

// Mixing constants. The multiply constants are the widely published
// MurmurHash3/SplitMix64 avalanche constants; the algorithm below is a
// fresh implementation of that public-domain construction.
const (
	mulC1 = 0x87c37b91114253d5
	mulC2 = 0x4cf5ad432745937f

	avalancheA = 0xff51afd7ed558ccd
	avalancheB = 0xc4ceb9fe1a85ec53

	splitMixGamma = 0x9e3779b97f4a7c15
	splitMixMulA  = 0xbf58476d1ce4e5b9
	splitMixMulB  = 0x94d049bb133111eb
)

// avalanche64 finalizes a 64-bit state so that every input bit affects
// every output bit (the fmix64 finalizer).
func avalanche64(x uint64) uint64 {
	x ^= x >> 33
	x *= avalancheA
	x ^= x >> 33
	x *= avalancheB
	x ^= x >> 33
	return x
}

// SplitMix64 advances *state and returns the next value of the SplitMix64
// sequence. It is used to derive independent seeds for hash families.
func SplitMix64(state *uint64) uint64 {
	*state += splitMixGamma
	z := *state
	z = (z ^ (z >> 30)) * splitMixMulA
	z = (z ^ (z >> 27)) * splitMixMulB
	return z ^ (z >> 31)
}

// Hasher is a seeded 128-bit hash function over byte strings. The zero
// value is a valid (zero-seeded) hasher; distinct seeds yield
// statistically independent functions, which is how the reproduction
// realizes the paper's k independent hash functions.
type Hasher struct {
	seed1, seed2 uint64
}

// New returns a Hasher whose two internal lanes are derived from seed via
// SplitMix64, so even adjacent integer seeds produce unrelated functions.
func New(seed uint64) Hasher {
	s := seed
	return Hasher{seed1: SplitMix64(&s), seed2: SplitMix64(&s)}
}

// Sum128 hashes data to 128 bits, returned as two 64-bit lanes.
func (h Hasher) Sum128(data []byte) (lo, hi uint64) {
	h1, h2 := h.seed1, h.seed2
	n := len(data)

	// Body: 16-byte blocks.
	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data)
		k2 := binary.LittleEndian.Uint64(data[8:])
		data = data[16:]

		k1 *= mulC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mulC2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= mulC2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= mulC1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail: up to 15 remaining bytes, folded into two lanes. A full
	// low lane is loaded directly (identical value to the byte loop,
	// which builds little-endian), keeping 13-byte flow IDs fast.
	var k1, k2 uint64
	if len(data) > 8 {
		k2 = loadPartial(data[8:])
		k2 *= mulC2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= mulC1
		h2 ^= k2
		k1 = binary.LittleEndian.Uint64(data)
		k1 *= mulC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mulC2
		h1 ^= k1
	} else if len(data) > 0 {
		k1 = loadPartial(data)
		k1 *= mulC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mulC2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = avalanche64(h1)
	h2 = avalanche64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// loadPartial loads 1–7 bytes little-endian into the low bits of a
// uint64. The overlapping-load construction assembles the value in at
// most two fixed-width reads instead of a per-byte loop (bit-identical
// to that loop; the golden vectors pin it), which matters because every
// 13-byte flow-ID digest ends in a 5-byte partial load.
func loadPartial(b []byte) uint64 {
	if len(b) >= 4 {
		lo := uint64(binary.LittleEndian.Uint32(b))
		hi := uint64(binary.LittleEndian.Uint32(b[len(b)-4:]))
		return lo | hi<<(8*(uint(len(b))-4))
	}
	if len(b) >= 2 {
		lo := uint64(binary.LittleEndian.Uint16(b))
		hi := uint64(binary.LittleEndian.Uint16(b[len(b)-2:]))
		return lo | hi<<(8*(uint(len(b))-2))
	}
	if len(b) == 1 {
		return uint64(b[0])
	}
	return 0
}

// Sum64 hashes data to 64 bits (the low lane of Sum128).
func (h Hasher) Sum64(data []byte) uint64 {
	lo, _ := h.Sum128(data)
	return lo
}

// Mod returns Sum64(data) reduced to [0, m) by multiply-shift (Lemire
// reduction): uniform for uniform hash values and free of the 64-bit
// division a % would cost on the query hot path. m must be positive.
func (h Hasher) Mod(data []byte, m int) int {
	return Reduce(h.Sum64(data), m)
}

// Reduce maps a uniform 64-bit hash value onto [0, m) by multiply-shift.
// It is the range-reduction used throughout the reproduction in place
// of the paper's "% m" (equivalent distribution, cheaper than a 64-bit
// division).
func Reduce(v uint64, m int) int {
	hi, _ := bits.Mul64(v, uint64(m))
	return int(hi)
}
