package server

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"shbf/internal/wire"
)

// startShBP boots a ShBP listener for one test server.
func startShBP(t *testing.T, s *Server) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.ServeShBP(ctx, ln)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return ln
}

// TestShBPIdleTimeout: a silent connection is reaped once the idle
// timeout elapses, while a connection that keeps sending frames —
// each gap shorter than the timeout, the total far longer — lives on,
// because the deadline re-arms per frame.
func TestShBPIdleTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.ShBPIdleTimeout = 150 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln := startShBP(t, s)

	// The idle connection: never sends a byte; the server must close
	// it (our read unblocks) well before the generous outer deadline.
	idle, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection served a byte instead of being reaped")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("idle connection reaped after %v, want ≈150ms", waited)
	}

	// The active connection: 6 pings 60ms apart (360ms total, over
	// twice the idle timeout) all answer — activity resets the clock.
	active, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()
	br := bufio.NewReader(active)
	frame, err := wire.AppendRequest(nil, &wire.Request{Op: wire.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		time.Sleep(60 * time.Millisecond)
		if _, err := active.Write(frame); err != nil {
			t.Fatalf("ping %d write: %v", i, err)
		}
		buf, err := wire.ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("ping %d read: %v", i, err)
		}
		var resp wire.Response
		if err := wire.DecodeResponse(&resp, buf); err != nil {
			t.Fatalf("ping %d decode: %v", i, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("ping %d status %d: %s", i, resp.Status, resp.Msg)
		}
	}
}

// TestShBPFrameCapParity: past the in-flight cap the binary transport
// sheds with StatusOverloaded. With cap 1 every frame saturates the
// gate while it dispatches, so a second concurrent frame would shed —
// here we pin the simpler single-threaded invariant: sequential frames
// all pass (acquire/release balance), and the gate state never leaks
// between frames.
func TestShBPFrameCapParity(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflightFrames = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln := startShBP(t, s)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	frame, err := wire.AppendRequest(nil, &wire.Request{Op: wire.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		buf, err := wire.ReadFrame(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := wire.DecodeResponse(&resp, buf); err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("frame %d under cap 1: status %d (%s) — gate leak?", i, resp.Status, resp.Msg)
		}
	}
}
