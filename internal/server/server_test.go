package server

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"shbf"
)

// testConfig is small enough for fast tests but large enough that
// false positives don't perturb exact-answer assertions.
func testConfig() Config {
	return Config{
		MembershipBits:   1 << 18,
		MembershipK:      8,
		AssociationBits:  1 << 18,
		AssociationK:     8,
		MultiplicityBits: 1 << 19,
		MultiplicityK:    8,
		MaxCount:         16,
		Shards:           4,
		Seed:             7,
	}
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// post sends body as JSON and decodes the response into out (unless
// nil), failing the test on a non-wantStatus reply.
func post(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding response %q: %v", buf.String(), err)
		}
	}
}

func get(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	ts := newTestServer(t, testConfig())
	keys := []string{"alpha", "beta", "gamma"}
	var added struct {
		Added int `json:"added"`
	}
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": keys}, 200, &added)
	if added.Added != 3 {
		t.Fatalf("added = %d, want 3", added.Added)
	}
	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v1/membership/contains",
		map[string]any{"keys": []string{"alpha", "beta", "gamma", "delta"}}, 200, &res)
	want := []bool{true, true, true, false}
	for i, w := range want {
		if res.Results[i] != w {
			t.Fatalf("contains[%d] = %v, want %v", i, res.Results[i], w)
		}
	}
}

func TestMembershipBase64Keys(t *testing.T) {
	ts := newTestServer(t, testConfig())
	// A binary 13-byte flow ID, as the paper's workloads use.
	flowID := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	enc := base64.StdEncoding.EncodeToString(flowID)
	post(t, ts.URL+"/v1/membership/add",
		map[string]any{"keys": []string{enc}, "encoding": "base64"}, 200, nil)
	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v1/membership/contains",
		map[string]any{"keys": []string{enc}, "encoding": "base64"}, 200, &res)
	if !res.Results[0] {
		t.Fatal("base64 round trip lost the element")
	}
	post(t, ts.URL+"/v1/membership/contains",
		map[string]any{"keys": []string{"!!!not-base64"}, "encoding": "base64"}, 400, nil)
}

func TestAssociationClassify(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v1/association/add", map[string]any{"set": 1, "keys": []string{"only1", "shared"}}, 200, nil)
	post(t, ts.URL+"/v1/association/add", map[string]any{"set": 2, "keys": []string{"only2", "shared"}}, 200, nil)
	var res struct {
		Results []struct {
			Region     string   `json:"region"`
			Candidates []string `json:"candidates"`
			Clear      bool     `json:"clear"`
			InS1       bool     `json:"in_s1"`
			InS2       bool     `json:"in_s2"`
		} `json:"results"`
	}
	post(t, ts.URL+"/v1/association/classify",
		map[string]any{"keys": []string{"only1", "shared", "only2", "neither"}}, 200, &res)
	// Soundness: the truth must be among the candidates.
	mustHave := func(i int, want string) {
		t.Helper()
		for _, c := range res.Results[i].Candidates {
			if c == want {
				return
			}
		}
		t.Fatalf("key %d: candidates %v missing truth %q", i, res.Results[i].Candidates, want)
	}
	mustHave(0, "s1-only")
	mustHave(1, "both")
	mustHave(2, "s2-only")
	if len(res.Results[3].Candidates) != 0 || res.Results[3].InS1 || res.Results[3].InS2 {
		// At this tiny occupancy a false positive is essentially
		// impossible with k = 8.
		t.Fatalf("non-member classified as %+v", res.Results[3])
	}
	// Remove from S1 moves "shared" to s2-only.
	post(t, ts.URL+"/v1/association/remove", map[string]any{"set": 1, "keys": []string{"shared"}}, 200, nil)
	post(t, ts.URL+"/v1/association/classify", map[string]any{"keys": []string{"shared"}}, 200, &res)
	mustHave(0, "s2-only")
	// Bad set numbers are rejected.
	post(t, ts.URL+"/v1/association/add", map[string]any{"set": 3, "keys": []string{"x"}}, 400, nil)
	// Deleting an absent element is a client-visible conflict.
	post(t, ts.URL+"/v1/association/remove", map[string]any{"set": 1, "keys": []string{"absent"}}, 409, nil)
}

func TestMultiplicityCount(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v1/multiplicity/add", map[string]any{"items": []map[string]any{
		{"key": "once"},
		{"key": "thrice", "count": 3},
	}}, 200, nil)
	var res struct {
		Counts []int `json:"counts"`
	}
	post(t, ts.URL+"/v1/multiplicity/count",
		map[string]any{"keys": []string{"once", "thrice", "never"}}, 200, &res)
	// Counts never underestimate; at this occupancy they are exact.
	if res.Counts[0] != 1 || res.Counts[1] != 3 || res.Counts[2] != 0 {
		t.Fatalf("counts = %v, want [1 3 0]", res.Counts)
	}
	// Remove one of three.
	post(t, ts.URL+"/v1/multiplicity/remove", map[string]any{"items": []map[string]any{
		{"key": "thrice"},
	}}, 200, nil)
	post(t, ts.URL+"/v1/multiplicity/count", map[string]any{"keys": []string{"thrice"}}, 200, &res)
	if res.Counts[0] != 2 {
		t.Fatalf("count after remove = %d, want 2", res.Counts[0])
	}
	// Exceeding c is a conflict, and the error reports progress.
	var conflict struct {
		Error   string `json:"error"`
		Applied int    `json:"applied"`
	}
	post(t, ts.URL+"/v1/multiplicity/add", map[string]any{"items": []map[string]any{
		{"key": "big", "count": 20},
	}}, 409, &conflict)
	if conflict.Applied != 16 {
		t.Fatalf("applied = %d before overflow, want 16 (= c)", conflict.Applied)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t, testConfig())
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("element-%04d", i)
	}
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": keys}, 200, nil)
	post(t, ts.URL+"/v1/membership/contains", map[string]any{"keys": keys[:10]}, 200, nil)
	var st Stats
	get(t, ts.URL+"/v1/stats", &st)
	if st.Membership.N != 500 {
		t.Fatalf("stats membership n = %d, want 500", st.Membership.N)
	}
	if st.Membership.Shards != 4 || len(st.Membership.PerShard) != 4 {
		t.Fatalf("stats shards = %d/%d, want 4", st.Membership.Shards, len(st.Membership.PerShard))
	}
	if st.Membership.EstimatedFPR <= 0 || st.Membership.EstimatedFPR >= 1 {
		t.Fatalf("estimated FPR = %g, want (0,1)", st.Membership.EstimatedFPR)
	}
	if st.Membership.FillRatio <= 0 {
		t.Fatal("fill ratio not reported")
	}
	perShardN := 0
	for _, sh := range st.Membership.PerShard {
		perShardN += sh.N
	}
	if perShardN != 500 {
		t.Fatalf("per-shard n sums to %d, want 500", perShardN)
	}
	if st.Queries["membership_add"] != 500 || st.Queries["membership_contains"] != 10 {
		t.Fatalf("query counters = %v", st.Queries)
	}
	if st.Association.ClearProb <= 0.9 {
		// (1−0.5^8)² ≈ 0.992 at k = 8.
		t.Fatalf("clear prob = %g, want ≈0.992", st.Association.ClearProb)
	}
}

func TestSnapshotSurvivesRestart(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	ts := newTestServer(t, cfg)

	memberKeys := []string{"m1", "m2", "m3"}
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": memberKeys}, 200, nil)
	post(t, ts.URL+"/v1/association/add", map[string]any{"set": 1, "keys": []string{"a1", "ab"}}, 200, nil)
	post(t, ts.URL+"/v1/association/add", map[string]any{"set": 2, "keys": []string{"a2", "ab"}}, 200, nil)
	post(t, ts.URL+"/v1/multiplicity/add", map[string]any{"items": []map[string]any{
		{"key": "x", "count": 5},
	}}, 200, nil)

	var snap struct {
		Path  string `json:"path"`
		Bytes int    `json:"bytes"`
	}
	post(t, ts.URL+"/v1/snapshot", map[string]any{}, 200, &snap)
	if snap.Bytes <= 0 {
		t.Fatalf("snapshot wrote %d bytes", snap.Bytes)
	}

	// "Restart": a brand-new Server from the same config restores the
	// snapshot at startup and must answer identically.
	ts2 := newTestServer(t, cfg)
	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts2.URL+"/v1/membership/contains",
		map[string]any{"keys": append(memberKeys, "absent")}, 200, &res)
	for i := 0; i < 3; i++ {
		if !res.Results[i] {
			t.Fatalf("restart lost member %q", memberKeys[i])
		}
	}
	if res.Results[3] {
		t.Fatal("restart invented a member")
	}
	var cls struct {
		Results []struct {
			Clear bool `json:"clear"`
			InS1  bool `json:"in_s1"`
			InS2  bool `json:"in_s2"`
		} `json:"results"`
	}
	post(t, ts2.URL+"/v1/association/classify", map[string]any{"keys": []string{"a1", "ab", "a2"}}, 200, &cls)
	if !cls.Results[0].InS1 || cls.Results[0].InS2 {
		t.Fatalf("a1 after restart: %+v", cls.Results[0])
	}
	if !cls.Results[1].InS1 || !cls.Results[1].InS2 {
		t.Fatalf("ab after restart: %+v", cls.Results[1])
	}
	var cnt struct {
		Counts []int `json:"counts"`
	}
	post(t, ts2.URL+"/v1/multiplicity/count", map[string]any{"keys": []string{"x"}}, 200, &cnt)
	if cnt.Counts[0] != 5 {
		t.Fatalf("count after restart = %d, want 5", cnt.Counts[0])
	}
	// And the restored filters still accept updates.
	post(t, ts2.URL+"/v1/multiplicity/add", map[string]any{"items": []map[string]any{{"key": "x"}}}, 200, nil)
	post(t, ts2.URL+"/v1/multiplicity/count", map[string]any{"keys": []string{"x"}}, 200, &cnt)
	if cnt.Counts[0] != 6 {
		t.Fatalf("count after restored update = %d, want 6", cnt.Counts[0])
	}
}

// TestSnapshotV1Compat: snapshots written by the pre-envelope format
// (version 1: three bare length-prefixed blobs in fixed order) must
// still restore.
func TestSnapshotV1Compat(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := srv.defaultNS()
	def.mem.Add([]byte("v1-member"))
	if err := def.mult.Insert([]byte("v1-flow")); err != nil {
		t.Fatal(err)
	}

	// Hand-write the v1 container around the filters' own blobs.
	buf := append([]byte(daemonSnapMagic), daemonSnapVersionV1)
	for _, m := range []interface{ MarshalBinary() ([]byte, error) }{def.mem, def.assoc, def.mult} {
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	path := filepath.Join(t.TempDir(), "v1.shbf")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(path); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if !restored.defaultNS().mem.Contains([]byte("v1-member")) {
		t.Fatal("v1 restore lost the member")
	}
	if c := restored.defaultNS().mult.Count([]byte("v1-flow")); c != 1 {
		t.Fatalf("v1 restore count = %d, want 1", c)
	}
}

// TestSnapshotRejectsDuplicateKinds: a namespace's snapshot section
// must hold exactly one filter of each kind; a duplicate would leave
// another slot silently empty. Exercised in both the pre-namespace v2
// container and a v3 namespace section.
func TestSnapshotRejectsDuplicateKinds(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := srv.defaultNS()
	dupes := func(buf []byte) []byte {
		t.Helper()
		for _, f := range []shbf.Filter{def.mem, def.mem, def.assoc} {
			if buf, err = shbf.AppendDump(buf, f); err != nil {
				t.Fatal(err)
			}
		}
		return buf
	}
	v2 := dupes(append([]byte(daemonSnapMagic), daemonSnapVersionV2))
	v3 := append([]byte(daemonSnapMagic), daemonSnapVersion)
	v3 = binary.AppendUvarint(v3, 1)
	v3 = binary.AppendUvarint(v3, uint64(len(DefaultNamespace)))
	v3 = dupes(append(v3, DefaultNamespace...))
	for name, snap := range map[string][]byte{"v2": v2, "v3": v3} {
		path := filepath.Join(t.TempDir(), "dup.shbf")
		if err := os.WriteFile(path, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := srv.LoadSnapshot(path); err == nil {
			t.Fatalf("%s snapshot with duplicate kinds accepted", name)
		}
	}
}

func TestSnapshotWithoutPathIsConflict(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v1/snapshot", map[string]any{}, 409, nil)
}

func TestMalformedRequests(t *testing.T) {
	ts := newTestServer(t, testConfig())
	resp, err := http.Post(ts.URL+"/v1/membership/add", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Unknown fields are rejected, catching typoed batch shapes.
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keyz": []string{"a"}}, 400, nil)
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/membership/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST route: status %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	// Smoke test under -race: concurrent writers and readers across all
	// three filter kinds through the full HTTP stack.
	ts := newTestServer(t, testConfig())
	client := ts.Client()
	do := func(path string, body any) error {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("w%d-i%d", w, i)
				if err := do("/v1/membership/add", map[string]any{"keys": []string{key}}); err != nil {
					t.Error(err)
					return
				}
				if err := do("/v1/membership/contains", map[string]any{"keys": []string{key}}); err != nil {
					t.Error(err)
					return
				}
				set := w%2 + 1
				if err := do("/v1/association/add", map[string]any{"set": set, "keys": []string{key}}); err != nil {
					t.Error(err)
					return
				}
				if err := do("/v1/association/classify", map[string]any{"keys": []string{key}}); err != nil {
					t.Error(err)
					return
				}
				if err := do("/v1/multiplicity/add", map[string]any{"items": []map[string]any{{"key": key}}}); err != nil {
					t.Error(err)
					return
				}
				if err := do("/v1/multiplicity/count", map[string]any{"keys": []string{key}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var st Stats
	get(t, ts.URL+"/v1/stats", &st)
	if want := uint64(workers * 40); st.Queries["membership_add"] != want {
		t.Fatalf("membership_add counter = %d, want %d", st.Queries["membership_add"], want)
	}
	if st.Membership.N != workers*40 {
		t.Fatalf("membership n = %d, want %d", st.Membership.N, workers*40)
	}
}
