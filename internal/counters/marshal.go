package counters

import (
	"encoding/binary"
	"fmt"
)

// This file implements binary serialization for counter arrays: uvarint
// count, uvarint width, uvarint overflow tally, then the packed words
// little-endian.

// AppendBinary appends the array's serialized form to buf and returns
// the result.
func (a *Array) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(a.n))
	buf = binary.AppendUvarint(buf, uint64(a.width))
	buf = binary.AppendUvarint(buf, a.overflows)
	for _, w := range a.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeArray reads an array serialized by AppendBinary from buf,
// returning the array and the remaining bytes.
func DecodeArray(buf []byte) (*Array, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("counters: truncated count")
	}
	buf = buf[sz:]
	width, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("counters: truncated width")
	}
	buf = buf[sz:]
	overflows, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("counters: truncated overflow tally")
	}
	buf = buf[sz:]

	if n == 0 || n > 1<<40 {
		return nil, nil, fmt.Errorf("counters: implausible count %d", n)
	}
	if width < 1 || width > 64 {
		return nil, nil, fmt.Errorf("counters: width %d out of range", width)
	}
	a := New(int(n), uint(width))
	a.overflows = overflows
	if len(buf) < len(a.words)*8 {
		return nil, nil, fmt.Errorf("counters: truncated words: need %d bytes, have %d", len(a.words)*8, len(buf))
	}
	for i := range a.words {
		a.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return a, buf[len(a.words)*8:], nil
}
