package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shbf"
	"shbf/internal/trace"
)

func writeTrace(t *testing.T, path string, n, maxCount int, seed int64) {
	t.Helper()
	gen := trace.NewGenerator(seed)
	flows := gen.UniformMultiset(n, maxCount)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, flows); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMembership(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 5000, 57, 1)
	if err := run([]string{"eval", "-kind", "membership", "-trace", path, "-probes", "50000"}); err != nil {
		t.Fatal(err)
	}
	// Explicit m, legacy alias, and bare-flag (implicit eval) forms.
	if err := run([]string{"-kind", "member", "-trace", path, "-m", "80000", "-probes", "20000"}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMultiplicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 3000, 30, 2)
	if err := run([]string{"eval", "-kind", "multiplicity", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	// Trace counts above c must be clamped, not rejected.
	if err := run([]string{"eval", "-kind", "mult", "-trace", path, "-k", "6", "-c", "10"}); err != nil {
		t.Fatalf("clamping failed: %v", err)
	}
}

func TestEvalAssociation(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.bin")
	p2 := filepath.Join(dir, "b.bin")
	writeTrace(t, p1, 3000, 5, 3)
	writeTrace(t, p2, 3000, 5, 4)
	if err := run([]string{"eval", "-kind", "association", "-trace", p1, "-trace2", p2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	writeTrace(t, path, 100, 5, 5)

	cases := [][]string{
		{"eval", "-kind", "membership"},                  // missing -trace
		{"eval", "-kind", "bogus", "-trace", path},       // unknown kind
		{"eval", "-kind", "association", "-trace", path}, // missing -trace2
		{"eval", "-kind", "tshift", "-trace", path},      // kind outside eval
		{"eval", "-kind", "membership", "-trace", filepath.Join(dir, "missing.bin")},
		{"eval", "-kind", "membership", "-trace", path, "-m", "-5"},                  // constructor error surfaces
		{"eval", "-kind", "association", "-trace", path, "-trace2", path, "-c", "5"}, // C on association
		{"eval", "-kind", "membership", "-trace", path, "-unsafe"},                   // option outside kind
		{"bogus-subcommand"},
		{"dump", "-kind", "membership", "-trace", path}, // missing -out
		{"load"},                    // missing -in
		{"plan", "-kind", "tshift"}, // kind outside plan
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%q) succeeded, want error", strings.Join(args, " "))
		}
	}
}

func TestPlan(t *testing.T) {
	for _, args := range [][]string{
		{"plan", "-kind", "membership", "-n", "100000", "-target", "0.001"},
		{"plan", "-kind", "association", "-n", "100000", "-target", "0.99"},
		{"plan", "-kind", "multiplicity", "-n", "100000", "-c", "57", "-target", "0.95"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%q): %v", strings.Join(args, " "), err)
		}
	}
	if err := run([]string{"plan", "-kind", "membership", "-n", "0"}); err == nil {
		t.Error("invalid n accepted")
	}
}

// TestDumpLoadRoundTrip ships a filter through the envelope and reads
// it back without naming the kind.
func TestDumpLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.bin")
	writeTrace(t, tr, 2000, 57, 7)

	for _, kind := range []string{"membership", "counting-membership", "tshift", "multiplicity", "scm-sketch", "sharded-membership"} {
		t.Run(kind, func(t *testing.T) {
			out := filepath.Join(dir, kind+".shbf")
			args := []string{"dump", "-kind", kind, "-trace", tr, "-out", out, "-m", "40000", "-k", "8"}
			switch kind {
			case "tshift":
				args = append(args, "-t", "3")
			case "scm-sketch":
				args = append(args, "-m", "4096", "-k", "4")
			case "sharded-membership":
				args = append(args, "-shards", "4")
			}
			if err := run(args); err != nil {
				t.Fatalf("dump: %v", err)
			}
			if err := run([]string{"load", "-in", out, "-trace", tr}); err != nil {
				t.Fatalf("load: %v", err)
			}
		})
	}

	if err := run([]string{"load", "-in", tr}); err == nil {
		t.Error("loading a non-envelope file succeeded")
	}
}

// TestDumpPreservesMultiplicityCounts: dumping a counting or sharded
// multiplicity filter must encode each flow's trace count, not one
// insert per flow.
func TestDumpPreservesMultiplicityCounts(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.bin")
	writeTrace(t, tr, 300, 9, 11)
	flows, err := loadTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []string{"multiplicity", "counting-multiplicity", "sharded-multiplicity"} {
		t.Run(kind, func(t *testing.T) {
			out := filepath.Join(dir, kind+".shbf")
			args := []string{"dump", "-kind", kind, "-trace", tr, "-out", out,
				"-m", "100000", "-k", "4", "-c", "9"}
			if kind == "sharded-multiplicity" {
				args = append(args, "-shards", "2")
			}
			if err := run(args); err != nil {
				t.Fatalf("dump: %v", err)
			}
			r, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			f, err := shbf.Load(r)
			if err != nil {
				t.Fatal(err)
			}
			counter := f.(shbf.Counter)
			for _, fl := range flows {
				if got := counter.Count(fl.ID[:]); got < fl.Count {
					t.Fatalf("flow count %d underestimated as %d (counts dropped)", fl.Count, got)
				}
			}
		})
	}
}
