package main

import (
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSlowlorisHeaderTimeout: a connection that sends a partial
// request header and stalls must be closed by the server once
// -http-read-header-timeout elapses — a slowloris client cannot pin
// connections open indefinitely.
func TestSlowlorisHeaderTimeout(t *testing.T) {
	base, stop := startDaemon(t, "-http-read-header-timeout", "100ms")
	defer stop()

	conn, err := net.DialTimeout("tcp", strings.TrimPrefix(base, "http://"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: shbfd\r\nX-Slow: dri")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	// Drain whatever the server sends (possibly a 408) until it closes
	// the connection; only the close matters here.
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stalled-header connection lived %v, want ≈100ms", waited)
	}

	// A well-formed request on a fresh connection still answers — the
	// timeout only reaps the stalled.
	ok, err := net.DialTimeout("tcp", strings.TrimPrefix(base, "http://"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	if _, err := ok.Write([]byte("GET /healthz HTTP/1.0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	ok.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := ok.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "200") {
		t.Fatalf("healthy request after the reap: %q, %v", buf[:n], err)
	}
}

// TestFaultToleranceFlags: the new knobs parse, wire into the server,
// and the daemon boots and serves with all of them set.
func TestFaultToleranceFlags(t *testing.T) {
	base, stop := startDaemon(t,
		"-max-total-bits", "1073741824",
		"-shbp-max-inflight", "64",
		"-shbp-idle-timeout", "30s",
		"-http-read-header-timeout", "5s",
		"-http-idle-timeout", "1m",
	)
	defer stop()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}
