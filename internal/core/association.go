package core

import (
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
	"shbf/internal/hashtable"
)

// Region identifies, as a bitmask, the parts of S1 ∪ S2 an element may
// belong to. The three atomic regions are mutually exclusive ground
// truths; query answers may contain several candidates (paper Section
// 4.2's outcomes 4–7).
type Region uint8

const (
	// RegionS1Only is S1 − S2 (offset 0 in the encoding).
	RegionS1Only Region = 1 << iota
	// RegionBoth is S1 ∩ S2 (offset o1).
	RegionBoth
	// RegionS2Only is S2 − S1 (offset o2).
	RegionS2Only

	// RegionNone means no candidate matched. For e ∈ S1 ∪ S2 this cannot
	// happen (the construction has no false negatives); for other
	// elements it is a definite "not in either set".
	RegionNone Region = 0
)

// String implements fmt.Stringer for region masks.
func (r Region) String() string {
	switch r {
	case RegionNone:
		return "∅"
	case RegionS1Only:
		return "S1−S2"
	case RegionBoth:
		return "S1∩S2"
	case RegionS2Only:
		return "S2−S1"
	case RegionS1Only | RegionBoth:
		return "S1 (S2 unsure)"
	case RegionS2Only | RegionBoth:
		return "S2 (S1 unsure)"
	case RegionS1Only | RegionS2Only:
		return "S1−S2 ∪ S2−S1"
	default:
		return "S1∪S2"
	}
}

// Clear reports whether the mask pins down exactly one atomic region —
// the paper's "clear answer" (outcomes 1–3 of Section 4.2).
func (r Region) Clear() bool {
	return r == RegionS1Only || r == RegionBoth || r == RegionS2Only
}

// InS1 reports whether every candidate region lies inside S1, i.e. the
// element is definitely in S1 (outcomes 1, 2 and 4).
func (r Region) InS1() bool {
	return r != RegionNone && r&RegionS2Only == 0
}

// InS2 reports whether every candidate region lies inside S2 (outcomes
// 2, 3 and 5).
func (r Region) InS2() bool {
	return r != RegionNone && r&RegionS1Only == 0
}

// Contains reports whether the atomic region truth is among the
// candidates.
func (r Region) Contains(truth Region) bool { return r&truth != 0 }

// Association is ShBF_A, the shifting Bloom filter for association
// queries over two sets S1 and S2 (paper Section 4). One m-bit array
// encodes every element of S1 ∪ S2 exactly once, with its region
// carried by the offset:
//
//	e ∈ S1−S2: o(e) = 0
//	e ∈ S1∩S2: o(e) = o1(e) = h_{k+1}(e) % ((w̄−1)/2) + 1
//	e ∈ S2−S1: o(e) = o2(e) = o1(e) + h_{k+2}(e) % ((w̄−1)/2) + 1
//
// A query reads, for each of the k base positions, the three bits at
// offsets {0, o1(e), o2(e)} — all inside one w̄-bit window, hence k
// memory accesses and k+2 hash computations per query versus iBF's 2k
// and 2k (paper Table 2). Unlike iBF, ShBF_A never returns a wrong
// region: its seven outcomes are all sound, merely sometimes incomplete
// (Section 4.2).
type Association struct {
	bits      *bitvec.Vector
	m         int
	k         int
	wbar      int
	halfRange int // (w̄−1)/2, the range of each offset component
	fam       *hashing.Family
	seed      uint64
	n1, n2    int // |S1|, |S2| distinct
	nBoth     int // |S1 ∩ S2|
}

// BuildAssociation constructs ShBF_A from the two sets. Duplicates
// within each input slice are ignored (the construction hash tables T1
// and T2 deduplicate, Section 4.1). The sets need not be disjoint —
// handling overlap is the point of the scheme.
func BuildAssociation(s1, s2 [][]byte, m, k int, opts ...Option) (*Association, error) {
	cfg, err := buildConfig(KindAssociation, opts)
	if err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be ≥ 1", k)
	}
	if cfg.maxOffset < 3 || cfg.maxOffset > 64 {
		return nil, fmt.Errorf("core: max offset w̄ = %d out of range [3,64] (association needs two offset components)", cfg.maxOffset)
	}
	a := &Association{
		bits:      bitvec.New(m + cfg.maxOffset - 1),
		m:         m,
		k:         k,
		wbar:      cfg.maxOffset,
		halfRange: (cfg.maxOffset - 1) / 2,
		fam:       hashing.NewFamily(k+2, cfg.seed),
		seed:      cfg.seed,
	}
	a.bits.SetCounter(cfg.counter)

	// Step 1 (Section 4.1): hash tables over the raw sets.
	t1 := hashtable.New(cfg.seed + 1)
	for _, e := range s1 {
		t1.Put(e, 1)
	}
	t2 := hashtable.New(cfg.seed + 2)
	for _, e := range s2 {
		t2.Put(e, 1)
	}
	a.n1, a.n2 = t1.Len(), t2.Len()

	// Step 2: elements of S1 — offset 0 if exclusive, o1 if shared.
	// Each element is digested once; region offset and the k positions
	// all derive from that digest.
	t1.Range(func(e []byte, _ uint64) bool {
		d := a.fam.Digest(e)
		o := 0
		if t2.Contains(e) {
			o = a.offset1(d)
			a.nBoth++
		}
		a.encode(d, o)
		return true
	})

	// Step 3: elements of S2 not already stored via S1 — offset o2.
	t2.Range(func(e []byte, _ uint64) bool {
		if t1.Contains(e) {
			return true // already encoded with o1
		}
		d := a.fam.Digest(e)
		a.encode(d, a.offset2(d))
		return true
	})
	return a, nil
}

// offset1 computes o1(e) ∈ [1, (w̄−1)/2] from e's digest.
func (a *Association) offset1(d hashing.Digest) int {
	return hashing.Reduce(a.fam.FromDigest(a.k, d), a.halfRange) + 1
}

// offset2 computes o2(e) = o1(e) + h_{k+2}(e)%((w̄−1)/2) + 1 ∈ [2, w̄−1].
func (a *Association) offset2(d hashing.Digest) int {
	return a.offset1(d) + hashing.Reduce(a.fam.FromDigest(a.k+1, d), a.halfRange) + 1
}

// encode sets the k bits B[h_i(e)%m + o] for the element digested as d.
func (a *Association) encode(d hashing.Digest, o int) {
	for i := 0; i < a.k; i++ {
		a.bits.Set(a.fam.ModFromDigest(i, d, a.m) + o)
	}
}

// M, K, and MaxOffset report the construction parameters; N1, N2 and
// NBoth the distinct set sizes observed at build time.
func (a *Association) M() int         { return a.m }
func (a *Association) K() int         { return a.k }
func (a *Association) MaxOffset() int { return a.wbar }
func (a *Association) N1() int        { return a.n1 }
func (a *Association) N2() int        { return a.n2 }
func (a *Association) NBoth() int     { return a.nBoth }

// NDistinct returns n′ = |S1 ∪ S2|, the quantity the paper sizes m by
// (m = n′·k/ln 2 at the optimum, Table 2).
func (a *Association) NDistinct() int { return a.n1 + a.n2 - a.nBoth }

// SizeBytes returns the bit-array footprint.
func (a *Association) SizeBytes() int { return a.bits.SizeBytes() }

// FillRatio returns the fraction of set bits.
func (a *Association) FillRatio() float64 { return a.bits.FillRatio() }

// Query returns the candidate-region mask for e. For e ∈ S1 ∪ S2 the
// true region is always among the candidates (no false negatives) and
// any of the seven Section 4.2 outcomes may be returned; for other
// elements RegionNone may additionally be returned. One digest pass,
// then each of the ≤ k window reads costs one mix and one memory
// access and checks all three offsets at once; the scan stops early
// once no candidate survives.
func (a *Association) Query(e []byte) Region {
	return a.queryDigest(a.fam.Digest(e))
}

func (a *Association) queryDigest(d hashing.Digest) Region {
	o1 := a.offset1(d)
	o2 := o1 + hashing.Reduce(a.fam.FromDigest(a.k+1, d), a.halfRange) + 1

	cand := RegionS1Only | RegionBoth | RegionS2Only
	for i := 0; i < a.k && cand != RegionNone; i++ {
		win := a.bits.Window(a.fam.ModFromDigest(i, d, a.m), a.wbar)
		// Branchless candidate pruning: surviving regions are exactly
		// those whose offset bit is set in the window (the bit tests are
		// data-dependent 50/50 coin flips at the optimal fill, so
		// branching on them would mispredict constantly).
		survived := Region(win&1) |
			Region(win>>uint(o1)&1)<<1 |
			Region(win>>uint(o2)&1)<<2
		cand &= survived
	}
	return cand
}

// HashOpsPerQuery returns k+2, the paper's Table 2 hashing budget.
func (a *Association) HashOpsPerQuery() int { return a.k + 2 }
