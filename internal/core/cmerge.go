package core

import "fmt"

// Counting-filter merge: the union operation of CShBF_X. Two counting
// multiplicity filters built from one geometry and seed place every
// element's multiplicity-z encoding at the same k positions, so their
// union is a counter-wise saturating add of C, an OR of B, and — in
// the safe mode — a per-key max over the exact tables.
//
// The sum-the-counts alternative (treating a merge as replaying one
// side's inserts into the other) is unsound for this encoding: an
// element at multiplicity z occupies exactly the k positions at offset
// z−1, so a filter claiming multiplicity z1+z2 would need an encoding
// at offset z1+z2−1 that neither side ever wrote. Saturating-add keeps
// both sides' encodings intact instead: the merged filter reports at
// least max(z1, z2) for every element — never an underestimate, the
// paper's one-sided guarantee — and the side with the smaller count
// leaves its encoding behind as garbage bits that only nudge the
// false-positive rate, exactly like a standard Bloom union's extra
// fill. Re-merging the same envelope is idempotent at the query level:
// B and the table are idempotent, and double-counted counters can only
// delay bit clearing on later deletes (the safe side).

// Merge folds other into f so that every element's reported
// multiplicity is at least the larger of the two filters' reports,
// with no false negatives introduced. The filters must share geometry
// (m, k, c), seed, counter width and update mode; otherwise an error
// is returned and f is unchanged. Self-merge is the identity.
func (f *CountingMultiplicity) Merge(other *CountingMultiplicity) error {
	if f.m != other.m || f.k != other.k || f.c != other.c || f.seed != other.seed {
		return fmt.Errorf("core: incompatible counting filters (m=%d/%d k=%d/%d c=%d/%d seed match=%v)",
			f.m, other.m, f.k, other.k, f.c, other.c, f.seed == other.seed)
	}
	if (f.table == nil) != (other.table == nil) {
		return fmt.Errorf("core: cannot merge safe and unsafe update modes")
	}
	if f == other {
		return nil
	}
	// Counters first: AddSaturating is the only step that can still
	// fail (width mismatch), and it must leave f untouched when it
	// does.
	if err := f.counts.AddSaturating(other.counts); err != nil {
		return err
	}
	f.bits.Or(other.bits)
	if f.table != nil {
		other.table.Range(func(key []byte, v uint64) bool {
			if cur, _ := f.table.Get(key); v > cur {
				f.table.Put(key, v)
			}
			return true
		})
	}
	return nil
}
