package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorRoundTrip(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000, 4096} {
		v := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n/3+1; i++ {
			v.Set(rng.Intn(n))
		}
		buf := v.AppendBinary(nil)
		got, rest, err := DecodeVector(buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d leftover bytes", n, len(rest))
		}
		if !v.Equal(got) {
			t.Fatalf("n=%d: decoded vector differs", n)
		}
		// Decoded vector must still support windowed reads near the end
		// (guard word reconstructed).
		if n >= 57 {
			_ = got.Window(n-57, 57)
		}
	}
}

func TestVectorRoundTripProperty(t *testing.T) {
	f := func(idx []uint16, extra uint8) bool {
		n := 300 + int(extra)
		v := New(n)
		for _, i := range idx {
			v.Set(int(i) % n)
		}
		got, rest, err := DecodeVector(v.AppendBinary(nil))
		return err == nil && len(rest) == 0 && v.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVectorAppendsAfterPrefix(t *testing.T) {
	v := New(100)
	v.Set(42)
	buf := append([]byte("prefix"), v.AppendBinary(nil)...)
	got, rest, err := DecodeVector(buf[6:])
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode after prefix: %v, %d rest", err, len(rest))
	}
	if !got.Peek(42) {
		t.Fatal("bit lost")
	}
}

func TestDecodeVectorRejectsCorrupt(t *testing.T) {
	v := New(130)
	v.Set(0)
	v.Set(129)
	buf := v.AppendBinary(nil)

	cases := map[string][]byte{
		"empty":     {},
		"truncated": buf[:len(buf)-1],
		"zero bits": {0x00},
	}
	for name, c := range cases {
		if _, _, err := DecodeVector(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Non-zero bits beyond the logical length must be rejected.
	bad := append([]byte{}, buf...)
	bad[len(bad)-1] |= 0x80 // bit 191 of a 130-bit vector
	if _, _, err := DecodeVector(bad); err == nil {
		t.Error("accepted tail garbage beyond logical length")
	}
}
