package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"shbf"
)

// The v1 endpoints are deprecated shims over the v2 namespace core.
// This file freezes their wire behavior: the responses for the
// fixtures exercised by server_test.go must stay byte-identical to the
// pre-namespace daemon's, so existing clients never notice the
// redesign underneath.

// rawPost returns the exact response bytes and status for a v1 call.
func rawPost(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestV1CompatByteIdentical pins the v1 response bytes (shape, field
// order, trailing newline) for the op endpoints, against literals
// captured from the pre-namespace implementation.
func TestV1CompatByteIdentical(t *testing.T) {
	ts := newTestServer(t, testConfig())
	cases := []struct {
		name       string
		path, body string
		wantStatus int
		want       string
	}{
		{"membership add", "/v1/membership/add",
			`{"keys":["alpha","beta","gamma"]}`, 200,
			`{"added":3}` + "\n"},
		{"membership contains", "/v1/membership/contains",
			`{"keys":["alpha","beta","gamma","delta"]}`, 200,
			`{"results":[true,true,true,false]}` + "\n"},
		{"association add s1", "/v1/association/add",
			`{"set":1,"keys":["only1","shared"]}`, 200,
			`{"applied":2}` + "\n"},
		{"association add s2", "/v1/association/add",
			`{"set":2,"keys":["only2","shared"]}`, 200,
			`{"applied":2}` + "\n"},
		{"association classify", "/v1/association/classify",
			`{"keys":["only1","neither"]}`, 200,
			`{"results":[{"region":"S1−S2","candidates":["s1-only"],"clear":true,"in_s1":true,"in_s2":false},` +
				`{"region":"∅","candidates":[],"clear":false,"in_s1":false,"in_s2":false}]}` + "\n"},
		{"association bad set", "/v1/association/add",
			`{"set":3,"keys":["x"]}`, 400,
			`{"error":"set must be 1 or 2, got 3"}` + "\n"},
		{"association remove absent", "/v1/association/remove",
			`{"set":1,"keys":["absent"]}`, 409,
			`{"applied":0,"error":"core: element not stored"}` + "\n"},
		{"multiplicity add", "/v1/multiplicity/add",
			`{"items":[{"key":"once"},{"key":"thrice","count":3}]}`, 200,
			`{"applied":4}` + "\n"},
		{"multiplicity count", "/v1/multiplicity/count",
			`{"keys":["once","thrice","never"]}`, 200,
			`{"counts":[1,3,0]}` + "\n"},
		{"multiplicity overflow", "/v1/multiplicity/add",
			`{"items":[{"key":"big","count":20}]}`, 409,
			`{"applied":16,"error":"item 0: core: multiplicity exceeds configured maximum c"}` + "\n"},
		{"rotate without window", "/v1/rotate", `{}`, 409,
			`{"error":"server: filters are not windowed (start shbfd with -window)"}` + "\n"},
		{"unknown fields rejected", "/v1/membership/add",
			`{"keyz":["a"]}`, 400,
			`{"error":"decoding request: json: unknown field \"keyz\""}` + "\n"},
	}
	for _, tc := range cases {
		status, got := rawPost(t, ts.URL+tc.path, tc.body)
		if status != tc.wantStatus {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, status, tc.wantStatus, got)
		}
		if string(got) != tc.want {
			t.Fatalf("%s: response drifted from the v1 contract:\n got: %q\nwant: %q", tc.name, got, tc.want)
		}
	}
}

// TestV1StatsShapeFrozen: the /v1/stats document keeps exactly the
// pre-namespace key set (no additions, no removals — additions belong
// to /v2).
func TestV1StatsShapeFrozen(t *testing.T) {
	ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_seconds", "queries", "membership", "association", "multiplicity"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("stats lost key %q", key)
		}
		delete(doc, key)
	}
	for key := range doc {
		t.Fatalf("stats grew key %q (v1 is frozen; add to /v2)", key)
	}
	var queries map[string]uint64
	get(t, ts.URL+"/v1/stats", &struct {
		Queries *map[string]uint64 `json:"queries"`
	}{&queries})
	for _, key := range []string{"membership_add", "membership_contains", "association_update",
		"association_query", "multiplicity_update", "multiplicity_query", "snapshots", "rotations"} {
		if _, ok := queries[key]; !ok {
			t.Fatalf("queries lost counter %q", key)
		}
		delete(queries, key)
	}
	for key := range queries {
		t.Fatalf("queries grew counter %q", key)
	}
}

// TestPreNamespaceSnapshotStatsIdentical is the acceptance check: a
// pre-namespace (ShBD v2) snapshot restores into the default namespace
// and /v1/stats answers identically to the daemon that wrote the
// state, modulo uptime.
func TestPreNamespaceSnapshotStatsIdentical(t *testing.T) {
	cfg := testConfig()
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := orig.defaultNS()
	for i := 0; i < 200; i++ {
		def.mem.Add([]byte{byte(i), byte(i >> 8), 0xaa})
	}
	if err := def.assoc.InsertS1([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	if err := def.mult.Insert([]byte("flow")); err != nil {
		t.Fatal(err)
	}

	// Hand-write the pre-namespace container: magic, version 2, three
	// bare envelopes.
	buf := append([]byte(daemonSnapMagic), daemonSnapVersionV2)
	for _, f := range []shbf.Filter{def.mem, def.assoc, def.mult} {
		if buf, err = shbf.AppendDump(buf, f); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "v2.shbf")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(path); err != nil {
		t.Fatalf("pre-namespace snapshot rejected: %v", err)
	}

	statsBytes := func(s *Server) []byte {
		t.Helper()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		st.UptimeSeconds = 0 // the only field allowed to differ
		out, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want, got := statsBytes(orig), statsBytes(restored)
	if !bytes.Equal(want, got) {
		t.Fatalf("/v1/stats diverged after pre-namespace restore:\n want: %s\n got: %s", want, got)
	}
	if !restored.defaultNS().mem.Contains([]byte{0, 0, 0xaa}) {
		t.Fatal("restored member lost")
	}
}
