package client_test

import (
	"context"
	"errors"
	"net/url"
	"testing"
	"time"

	"shbf/client"
	"shbf/internal/clustertest"
)

// Fault-injection suite: every test here drives a real daemon through
// the flaky proxy (internal/clustertest.Proxy) or an admission-
// controlled daemon, over real sockets, and pins the client's
// deadline, retry, and overload behavior on both transports.

// proxyFor starts a fault proxy in front of a backend address.
func proxyFor(t *testing.T, backend string) *clustertest.Proxy {
	t.Helper()
	p, err := clustertest.NewProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// httpHost extracts host:port from an httptest URL.
func httpHost(t *testing.T, rawurl string) string {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestDeadlineOnBlackhole: a server that swallows its responses must
// cost a WithContext caller no more than the context budget, on both
// transports, and the failure must carry context.DeadlineExceeded.
func TestDeadlineOnBlackhole(t *testing.T) {
	d := startDaemon(t, testConfig())

	shbpProxy := proxyFor(t, d.shbp.Addr().String())
	httpProxy := proxyFor(t, httpHost(t, d.http.URL))

	bin, err := client.Dial("shbp://" + shbpProxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	httpc, err := client.Dial("http://" + httpProxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer httpc.Close()

	for name, tt := range map[string]struct {
		c     *client.Client
		proxy *clustertest.Proxy
	}{"shbp": {bin, shbpProxy}, "http": {httpc, httpProxy}} {
		t.Run(name, func(t *testing.T) {
			// Healthy first: the proxied path works at all.
			if err := tt.c.Ping(); err != nil {
				t.Fatalf("healthy ping through proxy: %v", err)
			}
			tt.proxy.SetBlackhole(true)
			defer tt.proxy.SetBlackhole(false)

			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := tt.c.WithContext(ctx).Ping()
			waited := time.Since(start)
			if err == nil {
				t.Fatal("ping through a blackhole succeeded")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error %v does not carry context.DeadlineExceeded", err)
			}
			// The whole point: the wait is the context budget, not a
			// transport default or forever. Generous slack for CI.
			if waited > 2*time.Second {
				t.Fatalf("deadline took %v to trip on a 100ms budget", waited)
			}
		})
	}
}

// TestDefaultClientNeverRetries pins PR 5 semantics: without WithRetry
// a broken connection surfaces as an error — exactly one attempt.
func TestDefaultClientNeverRetries(t *testing.T) {
	d := startDaemon(t, testConfig())
	p := proxyFor(t, d.shbp.Addr().String())
	c, err := client.Dial("shbp://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	p.CloseConns()
	if err := c.Ping(); err == nil {
		t.Fatal("ping over a cut connection succeeded without a retry policy")
	}
	// The connection redials on the next call, so the client heals —
	// it just never retries within one call.
	if err := c.Ping(); err != nil {
		t.Fatalf("redial after the failed call: %v", err)
	}
}

// TestRetryToSuccess: with a policy, a cut connection is retried
// through a redial and the call succeeds; the sticky first failure
// never reaches the caller.
func TestRetryToSuccess(t *testing.T) {
	d := startDaemon(t, testConfig())
	p := proxyFor(t, d.shbp.Addr().String())
	c, err := client.Dial("shbp://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rc := c.WithRetry(client.RetryPolicy{MaxRetries: 3, BaseDelay: 5 * time.Millisecond})

	set := rc.Namespace("").Set()
	keys := [][]byte{[]byte("retry-a"), []byte("retry-b")}
	if err := set.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.CloseConns() // cut before every call; each call must recover
		res, err := set.Check(keys)
		if err != nil {
			t.Fatalf("check %d with retries: %v", i, err)
		}
		if !res[0] || !res[1] {
			t.Fatalf("check %d answers %v, want both true", i, res)
		}
	}
}

// TestOverloadParityByteIdentical: the same shed — a metered tenant's
// write past its quota — must answer wire.StatusOverloaded/HTTP 429
// with byte-identical messages on both transports, and IsOverloaded
// must see both.
func TestOverloadParityByteIdentical(t *testing.T) {
	d := startDaemon(t, testConfig())
	cs := d.clients(t)

	// Rate ~0: no refill during the test. Burst 8: a write of 5 fits
	// (5 + 8/4 reserve ≤ 8), any further write of 2 sheds — and
	// shedding spends nothing, so both transports see the same state.
	if err := cs["shbp"].CreateNamespace(client.NamespaceConfig{
		Name: "metered", RatePerSec: 1e-9, RateBurst: 8,
	}); err != nil {
		t.Fatal(err)
	}
	seed := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	if err := cs["shbp"].Namespace("metered").Set().AddAll(seed); err != nil {
		t.Fatal(err)
	}

	over := [][]byte{[]byte("f"), []byte("g")}
	msgs := map[string]string{}
	for name, c := range cs {
		err := c.Namespace("metered").Set().AddAll(over)
		if !client.IsOverloaded(err) {
			t.Fatalf("%s: got %v, want overloaded", name, err)
		}
		var e *client.Error
		if !errors.As(err, &e) {
			t.Fatalf("%s: %v is not a *client.Error", name, err)
		}
		msgs[name] = e.Msg
	}
	if msgs["shbp"] != msgs["http"] {
		t.Fatalf("shed messages differ:\n shbp: %q\n http: %q", msgs["shbp"], msgs["http"])
	}

	// Reads still answer on both transports while writes shed (3
	// tokens remain; one single-key read per transport fits).
	for name, c := range cs {
		res, err := c.Namespace("metered").Set().Check(seed[:1])
		if err != nil {
			t.Fatalf("%s read while writes shed: %v", name, err)
		}
		if !res[0] {
			t.Fatalf("%s read answers %v", name, res)
		}
	}
}

// TestRetryOnOverload: StatusOverloaded is the retryable daemon
// failure — a retrying client rides out quota exhaustion and succeeds
// once the bucket refills.
func TestRetryOnOverload(t *testing.T) {
	d := startDaemon(t, testConfig())
	c, err := client.Dial("shbp://" + d.shbp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 100 tokens/s, burst 4: a read of 4 drains the bucket; the next
	// read of 4 needs ~40ms of refill.
	if err := c.CreateNamespace(client.NamespaceConfig{
		Name: "refill", RatePerSec: 100, RateBurst: 4,
	}); err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("w"), []byte("x"), []byte("y"), []byte("z")}
	set := c.Namespace("refill").Set()
	if _, err := set.Check(keys); err != nil {
		t.Fatalf("first read on a full bucket: %v", err)
	}
	// Drained: an immediate plain read sheds...
	if _, err := set.Check(keys); !client.IsOverloaded(err) {
		t.Fatalf("drained read: got %v, want overloaded", err)
	}
	// ...and a retrying one backs off into the refill and succeeds.
	rset := c.WithRetry(client.RetryPolicy{MaxRetries: 8, BaseDelay: 25 * time.Millisecond}).
		Namespace("refill").Set()
	if _, err := rset.Check(keys); err != nil {
		t.Fatalf("retrying read across the refill: %v", err)
	}
}

// TestRetryNeverRepeatsCountingWrites: multiplicity updates are not
// idempotent, so even an aggressive policy must not retry them — a
// cut connection surfaces as an error, and the daemon state shows at
// most one application.
func TestRetryNeverRepeatsCountingWrites(t *testing.T) {
	d := startDaemon(t, testConfig())
	p := proxyFor(t, d.shbp.Addr().String())
	c, err := client.Dial("shbp://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rc := c.WithRetry(client.RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond})

	key := []byte("counted-once")
	p.CloseConns() // the first attempt fails; a retry would double-count
	err = rc.Namespace("").Counter().InsertCount(key, 1)
	if err == nil {
		t.Fatal("counting write over a cut connection reported success")
	}
	// Whatever the wire did, the count must be 0 or 1 — never 2+, which
	// is what a blind retry of a possibly-applied increment produces.
	n, err := c.Namespace("").Counter().Counts([][]byte{key})
	if err != nil {
		t.Fatal(err)
	}
	if n[0] > 1 {
		t.Fatalf("count = %d after one failed insert; a retry double-applied", n[0])
	}
}
