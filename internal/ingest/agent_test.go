package ingest

import (
	"fmt"
	"testing"

	"shbf"
	"shbf/internal/core"
)

// datagramSink records each Write as one datagram, optionally
// dropping or duplicating by index — the loss-injection shim the
// convergence tests drive real agents through.
type datagramSink struct {
	datagrams [][]byte
	drop      func(i int) bool
}

func (s *datagramSink) Write(p []byte) (int, error) {
	if s.drop == nil || !s.drop(len(s.datagrams)) {
		s.datagrams = append(s.datagrams, append([]byte(nil), p...))
	} else {
		s.datagrams = append(s.datagrams, nil) // dropped in flight
	}
	return len(p), nil
}

// deliver replays the sink's surviving datagrams into a receiver.
func (s *datagramSink) deliver(r *Receiver) {
	for _, d := range s.datagrams {
		if d != nil {
			r.Process(d)
		}
	}
}

func agentKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("agent-key-%05d", i))
	}
	return keys
}

func TestAgentKeysModeFlush(t *testing.T) {
	sink := &datagramSink{}
	a, err := NewAgent(sink, AgentConfig{Namespace: "ns", Source: 11, Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	keys := agentKeys(300)
	if err := a.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	h := newCollectHandler()
	r := NewReceiver(h)
	sink.deliver(r)
	for _, k := range keys {
		if h.keys[string(k)] == 0 {
			t.Fatalf("key %q never arrived", k)
		}
	}
	s := r.Stats()
	if s.Lost != 0 || s.Dropped[DropDecode] != 0 {
		t.Fatalf("lossless path reported %+v", s)
	}
	// Every datagram respected the size cap.
	for i, d := range sink.datagrams {
		if len(d) > DefaultDatagram {
			t.Fatalf("datagram %d is %d bytes, cap %d", i, len(d), DefaultDatagram)
		}
	}
	if got := a.Stats(); got.KeysAdded != 300 || got.Buffered != 0 {
		t.Fatalf("agent stats = %+v", got)
	}
}

func TestAgentKeysModeDedup(t *testing.T) {
	plan, err := shbf.PlanMembership(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := shbf.New(plan.Spec())
	if err != nil {
		t.Fatal(err)
	}
	sink := &datagramSink{}
	a, err := NewAgent(sink, AgentConfig{
		Namespace: "ns", Source: 12, Mode: ModeKeys, Filter: dedup,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := agentKeys(50)
	for round := 0; round < 3; round++ {
		if err := a.AddAll(keys); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.KeysAdded != 50 || st.KeysDeduped != 100 {
		t.Fatalf("dedup stats = %+v", st)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Dedup is per flush: the same keys are accepted again afterwards
	// (that is what heals a lost batch next interval).
	if err := a.AddAll(keys[:10]); err != nil {
		t.Fatal(err)
	}
	if st = a.Stats(); st.KeysAdded != 60 {
		t.Fatalf("post-flush adds not accepted: %+v", st)
	}
}

func TestAgentRejectsOversizedKey(t *testing.T) {
	sink := &datagramSink{}
	a, err := NewAgent(sink, AgentConfig{
		Namespace: "ns", Source: 40, Mode: ModeKeys, MaxDatagram: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A key no datagram can carry is refused at Add: buffered, it
	// would poison every later flush (the flush error path restores
	// the buffer with the key still at the front).
	if err := a.Add(make([]byte, 400)); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := a.Add([]byte("fits")); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("flush after rejected key: %v", err)
	}
	h := newCollectHandler()
	r := NewReceiver(h)
	sink.deliver(r)
	if h.keys["fits"] != 1 {
		t.Fatalf("keys = %v", h.keys)
	}
	if st := a.Stats(); st.KeysAdded != 1 || st.Buffered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAgentFilterSafeDuringFlush(t *testing.T) {
	plan, err := shbf.PlanMembership(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := shbf.New(plan.Spec())
	if err != nil {
		t.Fatal(err)
	}
	sink := &datagramSink{}
	a, err := NewAgent(sink, AgentConfig{
		Namespace: "ns", Source: 41, Mode: ModeKeys, Filter: dedup,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys-mode flushes rebuild the dedup filter; edge callers query
	// Filter() concurrently from their serving path. The race detector
	// guards the handoff.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if a.Filter() == nil {
				t.Error("dedup agent returned a nil filter")
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if err := a.Add([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Error(err)
			break
		}
		if err := a.Flush(); err != nil {
			t.Error(err)
			break
		}
	}
	<-done
}

func newEnvelopeAgent(t *testing.T, sink *datagramSink, source uint64, maxDatagram int) *Agent {
	t.Helper()
	f, err := shbf.NewShardedMembership(1<<16, 8, 4, core.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(sink, AgentConfig{
		Namespace: "ns", Source: source, Mode: ModeEnvelope,
		MaxDatagram: maxDatagram, Filter: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAgentEnvelopeModeFlushByteEquivalence(t *testing.T) {
	sink := &datagramSink{}
	a := newEnvelopeAgent(t, sink, 21, 1400)
	keys := agentKeys(2000)
	if err := a.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	h := newCollectHandler()
	r := NewReceiver(h)
	sink.deliver(r)
	if len(h.envelopes) != 1 {
		t.Fatalf("reassembled %d envelopes, want 1", len(h.envelopes))
	}
	// The reassembled envelope must be byte-identical to dumping the
	// same-Spec filter built locally — fragmentation is transparent.
	want, err := shbf.AppendDump(nil, a.Filter())
	if err != nil {
		t.Fatal(err)
	}
	if string(h.envelopes[0]) != string(want) {
		t.Fatal("reassembled envelope differs from local dump")
	}
	if r.Stats().Lost != 0 {
		t.Fatalf("lossless path reported loss: %+v", r.Stats())
	}
}

func TestAgentEnvelopeLossHealedByNextFlush(t *testing.T) {
	sink := &datagramSink{}
	a := newEnvelopeAgent(t, sink, 22, 1400)
	keys := agentKeys(1000)
	if err := a.AddAll(keys[:500]); err != nil {
		t.Fatal(err)
	}
	// First flush: every datagram dropped in flight.
	sink.drop = func(i int) bool { return true }
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Second flush after more keys: delivered intact. The filter is
	// cumulative, so this single flush carries all 1000 keys.
	sink.drop = nil
	if err := a.AddAll(keys[500:]); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	h := newCollectHandler()
	r := NewReceiver(h)
	sink.deliver(r)
	if len(h.envelopes) != 1 {
		t.Fatalf("reassembled %d envelopes, want 1", len(h.envelopes))
	}
	got, rest, err := shbf.Decode(h.envelopes[0])
	if err != nil || len(rest) != 0 {
		t.Fatalf("decoding healed envelope: %v", err)
	}
	set := got.(shbf.Set)
	for _, k := range keys {
		if !set.Contains(k) {
			t.Fatalf("key %q missing after healing flush", k)
		}
	}
}

func TestForwarderMergesBothPayloadTypes(t *testing.T) {
	upstream := &datagramSink{}
	fwd := NewForwarder(newEnvelopeAgent(t, upstream, 30, 1400))
	r := NewReceiver(fwd)

	// Leaf 1 sends raw key batches; leaf 2 pre-aggregates the same
	// Spec and sends an envelope.
	leaf1 := &datagramSink{}
	a1, err := NewAgent(leaf1, AgentConfig{Namespace: "ns", Source: 31, Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.AddAll(agentKeys(100)[:50]); err != nil {
		t.Fatal(err)
	}
	if err := a1.Flush(); err != nil {
		t.Fatal(err)
	}
	leaf2 := &datagramSink{}
	a2 := newEnvelopeAgent(t, leaf2, 32, 1400)
	if err := a2.AddAll(agentKeys(100)[50:]); err != nil {
		t.Fatal(err)
	}
	if err := a2.Flush(); err != nil {
		t.Fatal(err)
	}
	leaf1.deliver(r)
	leaf2.deliver(r)

	// The forwarder's local filter now holds the union of both leaves.
	set := fwd.a.Filter().(shbf.Set)
	for _, k := range agentKeys(100) {
		if !set.Contains(k) {
			t.Fatalf("forwarder missing key %q", k)
		}
	}
	// Wrong namespace and wrong payload kinds are refused, not merged.
	if got := fwd.HandleBatch("other", [][]byte{[]byte("x")}); got != DropUnknownNamespace {
		t.Fatalf("wrong namespace: %v", got)
	}
	if got := fwd.HandleEnvelope("ns", []byte("garbage")); got != DropDecode {
		t.Fatalf("garbage envelope: %v", got)
	}
}

func TestAgentConfigValidation(t *testing.T) {
	sink := &datagramSink{}
	cases := map[string]AgentConfig{
		"no namespace":            {Mode: ModeKeys},
		"no mode":                 {Namespace: "ns"},
		"envelope without filter": {Namespace: "ns", Mode: ModeEnvelope},
		"oversized datagram":      {Namespace: "ns", Mode: ModeKeys, MaxDatagram: MaxDatagram + 1},
		"undersized datagram":     {Namespace: "ns", Mode: ModeKeys, MaxDatagram: 40},
	}
	for name, cfg := range cases {
		if _, err := NewAgent(sink, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
