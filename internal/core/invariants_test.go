package core

// Cross-scheme invariants: relationships between the framework's
// instantiations that must hold exactly, independent of parameters.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTShiftT1IsExactlyShBFM(t *testing.T) {
	// The t = 1 generalization is not merely "similar" to ShBF_M — with
	// the same seed it derives the same hash family and the same offset
	// formula, so the bit arrays must be identical after identical adds.
	const m, k = 7000, 8
	seed := uint64(12345)
	mem := mustMembership(t, m, k, WithSeed(seed))
	ts := mustTShift(t, m, k, 1, WithSeed(seed))

	elems := genElements(700, 42)
	for _, e := range elems {
		mem.Add(e)
		ts.Add(e)
	}
	if !mem.bits.Equal(ts.bits) {
		t.Fatal("t=1 TShift bit array differs from ShBF_M")
	}
	// And therefore identical answers everywhere.
	for _, e := range genDisjoint(20000, 43) {
		if mem.Contains(e) != ts.Contains(e) {
			t.Fatal("t=1 TShift disagrees with ShBF_M on a probe")
		}
	}
}

func TestCountingMembershipBitsMatchStatic(t *testing.T) {
	// After any interleaved insert/delete history, the counting
	// filter's B must equal a fresh ShBF_M holding exactly the distinct
	// surviving elements.
	const m, k = 4000, 6
	seed := uint64(777)
	c := mustCounting(t, m, k, WithSeed(seed), WithCounterWidth(8))

	rng := rand.New(rand.NewSource(3))
	elems := genElements(300, 44)
	ref := map[int]int{}
	for op := 0; op < 3000; op++ {
		i := rng.Intn(len(elems))
		if rng.Intn(3) > 0 {
			if err := c.Insert(elems[i]); err != nil {
				t.Fatal(err)
			}
			ref[i]++
		} else if ref[i] > 0 {
			if err := c.Delete(elems[i]); err != nil {
				t.Fatal(err)
			}
			ref[i]--
		}
	}

	static := mustMembership(t, m, k, WithSeed(seed))
	for i, count := range ref {
		if count > 0 {
			static.Add(elems[i])
		}
	}
	if !c.filter.bits.Equal(static.bits) {
		t.Fatal("counting filter's B differs from an equivalent static build")
	}
}

func TestMultiplicityCountOneEqualsOffsetZeroEncoding(t *testing.T) {
	// ShBF_X with every count = 1 sets bits exactly at the base
	// positions h_i(e)%m — the degenerate "no auxiliary information"
	// case of the framework (offset 0).
	const m, k = 3000, 6
	f := mustMultiplicity(t, m, k, 20, WithSeed(9))
	e := []byte("element")
	if err := f.AddWithCount(e, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !f.bits.Peek(f.fam.Mod(i, e, m)) {
			t.Fatal("count-1 encoding missed a base position")
		}
	}
	if f.bits.OnesCount() > k {
		t.Fatalf("count-1 encoding set %d bits, want ≤ %d", f.bits.OnesCount(), k)
	}
}

func TestAssociationSingleSetDegeneratesToMembership(t *testing.T) {
	// With S2 empty every element is S1−S2 (offset 0); Query must give
	// a definite S1−S2 for members with no false negatives, and the
	// InS1/InS2 predicates must never place a member in S2 exclusively.
	elems := genElements(500, 45)
	a, err := BuildAssociation(elems, nil, 8000, 8, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range elems {
		r := a.Query(e)
		if !r.Contains(RegionS1Only) {
			t.Fatal("member of S1-only build lost its region")
		}
		if r == RegionS2Only || r == RegionS2Only|RegionBoth {
			t.Fatal("member of S1 classified as definitely-S2")
		}
	}
	if a.NBoth() != 0 || a.N2() != 0 {
		t.Fatalf("sizes: n2=%d nBoth=%d", a.N2(), a.NBoth())
	}
}

func TestCountingAssociationMatchesStaticBits(t *testing.T) {
	// Building the same sets dynamically and statically (same seed)
	// must produce identical bit arrays: the counting variant's
	// re-encoding is exactly the static construction rule.
	s1only, both, s2only := buildAssocSets(150, 60, 150, 46)
	seed := uint64(31337)

	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	static, err := BuildAssociation(s1, s2, 7000, 6, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}

	dyn := mustCountingAssoc(t, 7000, 6, WithSeed(seed), WithCounterWidth(8))
	// Adversarial order: insert everything into S1 first, then into S2,
	// then remove the S2-only elements from S1 — forcing region
	// migrations through all three regions.
	for _, e := range s1 {
		dyn.InsertS1(e)
	}
	for _, e := range s2only {
		dyn.InsertS1(e) // temporarily wrong region
	}
	for _, e := range s2 {
		dyn.InsertS2(e)
	}
	for _, e := range s2only {
		if err := dyn.DeleteS1(e); err != nil {
			t.Fatal(err)
		}
	}
	if !static.bits.Equal(dyn.bits) {
		t.Fatal("dynamic bit array differs from static construction")
	}
}

func TestMembershipPairedBitsInvariant(t *testing.T) {
	// Property: after any adds, the number of set bits is at most k per
	// element and at least k/2+... in fact ≥ k/2 per element is not
	// guaranteed under collisions; the hard invariants are: ≤ k·n bits
	// set, and every member's k positions are all set.
	f := func(raw [][]byte) bool {
		filt, err := NewMembership(2048, 6)
		if err != nil {
			return false
		}
		for _, e := range raw {
			filt.Add(e)
		}
		if filt.bits.OnesCount() > 6*len(raw) {
			return false
		}
		var pos []int
		for _, e := range raw {
			pos = filt.positions(e, pos)
			for _, p := range pos {
				if !filt.bits.Peek(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSeedIndependenceOfSchemes(t *testing.T) {
	// Different filters built with the same seed must still be
	// independent across *types* (their family derivations differ by
	// construction): a ShBF_M and a ShBF_X of equal geometry must not
	// share bit patterns for the same elements.
	m := 5000
	mem := mustMembership(t, m, 8, WithSeed(1))
	mult := mustMultiplicity(t, m, 8, 10, WithSeed(1))
	same := 0
	elems := genElements(200, 47)
	for _, e := range elems {
		mem.Add(e)
		mult.AddWithCount(e, 1)
	}
	for _, e := range genDisjoint(20000, 48) {
		if mem.Contains(e) == (mult.Count(e) > 0) {
			same++
		}
	}
	// Mostly both say "no"; what must NOT happen is perfect agreement
	// with substantial positives on both sides. Check they are not
	// identical deciders by finding at least one disagreement.
	if same == 20000 {
		t.Log("warning: deciders agreed on all probes (possible at tiny FPR, not an error)")
	}
}
