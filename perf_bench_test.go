package shbf_test

// perf_bench_test.go is the go-test face of the hot-path perf suite
// (`cmd/shbench -perf` is the JSON-emitting face; both measure the
// same operating point). CI runs these with -benchtime=1x as a
// compile-and-run smoke check; locally, run
//
//	go test -bench 'Perf' -benchmem .
//
// to eyeball ns/op and allocs/op for Add/Contains/AddAll/ContainsAll,
// scalar vs sharded, k ∈ {4, 8, 16} on 13-byte flow-ID keys.

import (
	"fmt"
	"testing"

	"shbf"
	"shbf/internal/flowkeys"
)

const (
	perfN      = 1 << 16
	perfBatch  = 1024
	perfShards = 16
)

// perfSet is the common Set surface of the scalar and sharded filters.
type perfSet interface {
	Add(e []byte)
	Contains(e []byte) bool
	AddAll(keys [][]byte) error
	ContainsAll(dst []bool, keys [][]byte) []bool
}

func perfFilter(b *testing.B, mode string, k int, fill bool) (perfSet, [][]byte) {
	b.Helper()
	m := 2 * perfN * k
	var (
		f   perfSet
		err error
	)
	if mode == "sharded" {
		f, err = shbf.NewShardedMembership(m, k, perfShards, shbf.WithSeed(1))
	} else {
		f, err = shbf.NewMembership(m, k, shbf.WithSeed(1))
	}
	if err != nil {
		b.Fatal(err)
	}
	_, keys := flowkeys.Keys(perfN)
	if fill {
		if err := f.AddAll(keys); err != nil {
			b.Fatal(err)
		}
	}
	return f, keys
}

func BenchmarkPerfAdd(b *testing.B) {
	for _, mode := range []string{"scalar", "sharded"} {
		for _, k := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/k=%d", mode, k), func(b *testing.B) {
				f, keys := perfFilter(b, mode, k, false)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.Add(keys[i&(perfN-1)])
				}
			})
		}
	}
}

func BenchmarkPerfContains(b *testing.B) {
	for _, mode := range []string{"scalar", "sharded"} {
		for _, k := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/k=%d", mode, k), func(b *testing.B) {
				f, keys := perfFilter(b, mode, k, true)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.Contains(keys[i&(perfN-1)])
				}
			})
		}
	}
}

func BenchmarkPerfAddAll(b *testing.B) {
	for _, mode := range []string{"scalar", "sharded"} {
		for _, k := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/k=%d", mode, k), func(b *testing.B) {
				f, keys := perfFilter(b, mode, k, false)
				batch := keys[:perfBatch]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := f.AddAll(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPerfContainsAll(b *testing.B) {
	for _, mode := range []string{"scalar", "sharded"} {
		for _, k := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("%s/k=%d", mode, k), func(b *testing.B) {
				f, keys := perfFilter(b, mode, k, true)
				batch := keys[:perfBatch]
				dst := make([]bool, perfBatch)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = f.ContainsAll(dst, batch)
				}
			})
		}
	}
}
