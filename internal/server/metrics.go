package server

import (
	"net/http"
	"runtime"
	"time"

	"shbf"
	"shbf/internal/ingest"
	"shbf/internal/metrics"
	"shbf/internal/wire"
)

// Observability (internal/metrics): every serving layer reports into
// one registry, scraped as Prometheus text over GET /metrics and the
// ShBP OpMetrics op. The two transports serve the same bytes — the
// scrape ops themselves are deliberately uninstrumented and every
// exported time is an absolute timestamp, so nothing in the output
// depends on which transport asked or when.
//
// Hot-path discipline: the ShBP dispatch loop records into instruments
// preresolved in arrays indexed by op byte — a few lock-free atomic
// adds, zero allocations (metrics_alloc_test.go). The HTTP handlers
// record through a per-route closure resolved at Handler() build time.
// Everything per-namespace (occupancy, FPR, admission sheds) is read
// at scrape time from state the server already maintains, costing the
// data plane nothing.
//
// The metric surface is frozen by TestMetricsSurfacePinned: dashboards
// and alerts depend on these names, so adding a metric means extending
// the golden table, and renaming or dropping one is a breaking change.

// durationBuckets are the latency histogram bounds in seconds,
// ~4× apart from 1µs (a small in-process batch) to 4s (a stuck
// daemon); +Inf is implicit.
var durationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1, 4,
}

// shbpOps are the instrumented binary-protocol ops, every op except
// OpMetrics (scrapes are never counted, so the two transports render
// identical bytes).
var shbpOps = []byte{
	wire.OpPing, wire.OpStats, wire.OpRotate,
	wire.OpNamespaceCreate, wire.OpNamespaceDelete, wire.OpNamespaceList,
	wire.OpClusterMap,
	wire.OpMembershipAdd, wire.OpMembershipContains, wire.OpMembershipMerge,
	wire.OpMembershipDump, wire.OpFreeze,
	wire.OpAssociationAdd, wire.OpAssociationRemove, wire.OpAssociationQuery,
	wire.OpMultiplicityAdd, wire.OpMultiplicityRemove, wire.OpMultiplicityCount,
	wire.OpMultiplicityMerge, wire.OpMultiplicityDump,
}

// httpOpNames are the instrumented HTTP routes' op label values. Ops
// shared with ShBP reuse the wire op names so one dashboard query
// spans both transports; the rest are HTTP-only surfaces.
var httpOpNames = []string{
	"membership-add", "membership-contains", "membership-merge", "membership-dump",
	"association-add", "association-remove", "association-query",
	"multiplicity-add", "multiplicity-remove", "multiplicity-count",
	"multiplicity-merge", "multiplicity-dump",
	"rotate", "stats", "freeze", "snapshot",
	"namespace-create", "namespace-delete", "namespace-list",
	"daemon-stats", "cluster-map", "healthz",
}

// wireStatusCount is the number of defined wire statuses (0..5); both
// transports label request counters with the wire status name, so the
// exactness tests can compare them series for series.
const wireStatusCount = 6

// httpOpMetrics is one HTTP route's preresolved instruments.
type httpOpMetrics struct {
	reqs [wireStatusCount]*metrics.Counter
	dur  *metrics.Histogram
}

// serverMetrics owns the registry and the preresolved hot-path
// instruments. A nil *serverMetrics (Config.NoMetrics) disables all
// instrumentation; the recording paths nil-check it.
type serverMetrics struct {
	reg *metrics.Registry

	// ShBP instruments indexed by op byte, so recording a frame is two
	// array loads and two atomic adds. Entries outside shbpOps are nil.
	shbpReqs [256][wireStatusCount]*metrics.Counter
	shbpDur  [256]*metrics.Histogram

	httpOps map[string]*httpOpMetrics

	openConns    *metrics.Gauge
	inflight     *metrics.Gauge
	shedInflight *metrics.Counter
	shedBits     *metrics.Counter
}

// newServerMetrics builds the registry: the static request series for
// both transports, the daemon gauges, and the per-namespace collectors
// that read live server state at scrape time.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg, httpOps: map[string]*httpOpMetrics{}}

	const (
		reqHelp = "Requests served, by transport, op and wire status name."
		durHelp = "Request dispatch latency in seconds, by transport and op."
	)
	for _, op := range shbpOps {
		name := wire.OpName(op)
		for st := 0; st < wireStatusCount; st++ {
			m.shbpReqs[op][st] = reg.NewCounter("shbf_requests_total", reqHelp,
				metrics.Label{Key: "transport", Value: "shbp"},
				metrics.Label{Key: "op", Value: name},
				metrics.Label{Key: "status", Value: wire.StatusName(byte(st))})
		}
		m.shbpDur[op] = reg.NewHistogram("shbf_request_duration_seconds", durHelp,
			durationBuckets,
			metrics.Label{Key: "transport", Value: "shbp"},
			metrics.Label{Key: "op", Value: name})
	}
	for _, name := range httpOpNames {
		om := &httpOpMetrics{}
		for st := 0; st < wireStatusCount; st++ {
			om.reqs[st] = reg.NewCounter("shbf_requests_total", reqHelp,
				metrics.Label{Key: "transport", Value: "http"},
				metrics.Label{Key: "op", Value: name},
				metrics.Label{Key: "status", Value: wire.StatusName(byte(st))})
		}
		om.dur = reg.NewHistogram("shbf_request_duration_seconds", durHelp,
			durationBuckets,
			metrics.Label{Key: "transport", Value: "http"},
			metrics.Label{Key: "op", Value: name})
		m.httpOps[name] = om
	}

	reg.NewGauge("shbf_build_info", "Build metadata; value is always 1.",
		metrics.Label{Key: "version", Value: shbf.Version},
		metrics.Label{Key: "goversion", Value: runtime.Version()}).Set(1)
	startGauge := reg.NewGauge("shbf_start_time_seconds",
		"Daemon start time, unix seconds.")
	startGauge.Set(s.start.Unix())
	reg.GaugeFunc("shbf_last_snapshot_time_seconds",
		"Completion time of the newest persisted snapshot, unix seconds (0 = never).",
		func() float64 { return float64(s.lastSnapshotUnix.Load()) })
	reg.GaugeFunc("shbf_used_bits",
		"Filter bits registered across all namespaces (all generations), the figure metered against shbf_max_total_bits.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.usedBits)
		})
	maxBits := reg.NewGauge("shbf_max_total_bits",
		"The -max-total-bits memory ceiling (0 = unlimited).")
	maxBits.Set(s.cfg.MaxTotalBits)
	reg.GaugeFunc("shbf_namespaces", "Live namespaces.", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.namespaces))
	})
	m.openConns = reg.NewGauge("shbf_shbp_open_connections", "Open ShBP connections.")
	m.inflight = reg.NewGauge("shbf_shbp_inflight_frames",
		"ShBP frames currently being dispatched.")
	m.shedInflight = reg.NewCounter("shbf_shed_total",
		"Requests shed by daemon-wide admission control, by reason.",
		metrics.Label{Key: "reason", Value: "inflight"})
	m.shedBits = reg.NewCounter("shbf_shed_total",
		"Requests shed by daemon-wide admission control, by reason.",
		metrics.Label{Key: "reason", Value: "max-total-bits"})
	reg.CounterFunc("shbf_snapshots_total", "Snapshots persisted.",
		func() uint64 { return s.snapshots.Load() })

	// Per-namespace families, read from live state at scrape time.
	// snapshotList() is name-sorted, so emission order is deterministic.
	nsLabel := func(ns *namespace) metrics.Label {
		return metrics.Label{Key: "namespace", Value: ns.name}
	}
	reg.CollectGauge("shbf_namespace_bits",
		"Namespace filter-bit footprint, all generations of the trio.",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				e.Emit(float64(ns.totalBits()), nsLabel(ns))
			}
		})
	reg.CollectGauge("shbf_namespace_n",
		"Stored elements per filter (-1 where no exact set is tracked).",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				e.Emit(float64(ns.mem.Stats().N), nsLabel(ns), metrics.Label{Key: "filter", Value: "membership"})
				e.Emit(float64(ns.assoc.Stats().N), nsLabel(ns), metrics.Label{Key: "filter", Value: "association"})
				e.Emit(float64(ns.mult.Stats().N), nsLabel(ns), metrics.Label{Key: "filter", Value: "multiplicity"})
			}
		})
	reg.CollectGauge("shbf_namespace_fill_ratio",
		"Mean fraction of set bits across a filter's shards.",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				mem, assoc, mult := nsFillRatios(ns)
				e.Emit(mem, nsLabel(ns), metrics.Label{Key: "filter", Value: "membership"})
				e.Emit(assoc, nsLabel(ns), metrics.Label{Key: "filter", Value: "association"})
				e.Emit(mult, nsLabel(ns), metrics.Label{Key: "filter", Value: "multiplicity"})
			}
		})
	reg.CollectGauge("shbf_namespace_estimated_fpr",
		"Served membership false-positive rate at current occupancy (window-bounded in window mode).",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				e.Emit(membershipStatsOf(ns).EstimatedFPR, nsLabel(ns))
			}
		})
	reg.CollectGauge("shbf_namespace_rotation_epoch",
		"Completed window rotations (0 for classic namespaces).",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				var epoch uint64
				if w, ok := ns.mem.(shbf.Windowed); ok {
					epoch = w.Window().Epoch
				}
				e.EmitUint(epoch, nsLabel(ns))
			}
		})
	reg.CollectGauge("shbf_namespace_frozen",
		"1 when the namespace is frozen read-only.",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				v := uint64(0)
				if ns.frozen.Load() {
					v = 1
				}
				e.EmitUint(v, nsLabel(ns))
			}
		})
	reg.CollectCounter("shbf_namespace_keys_total",
		"Keys served per namespace, by query-counter group (both transports).",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				l := nsLabel(ns)
				e.EmitUint(ns.stats.membershipAdd.Load(), l, metrics.Label{Key: "op", Value: "membership_add"})
				e.EmitUint(ns.stats.membershipContains.Load(), l, metrics.Label{Key: "op", Value: "membership_contains"})
				e.EmitUint(ns.stats.associationUpdate.Load(), l, metrics.Label{Key: "op", Value: "association_update"})
				e.EmitUint(ns.stats.associationQuery.Load(), l, metrics.Label{Key: "op", Value: "association_query"})
				e.EmitUint(ns.stats.multiplicityUpdate.Load(), l, metrics.Label{Key: "op", Value: "multiplicity_update"})
				e.EmitUint(ns.stats.multiplicityQuery.Load(), l, metrics.Label{Key: "op", Value: "multiplicity_query"})
			}
		})
	reg.CollectCounter("shbf_namespace_rotations_total",
		"Window rotations performed per namespace.",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				e.EmitUint(ns.stats.rotations.Load(), nsLabel(ns))
			}
		})
	reg.CollectCounter("shbf_namespace_shed_total",
		"Requests shed per namespace by admission control, by reason.",
		func(e *metrics.Emitter) {
			for _, ns := range s.snapshotList() {
				e.EmitUint(ns.stats.rateShed.Load(), nsLabel(ns),
					metrics.Label{Key: "reason", Value: "rate"})
			}
		})

	// UDP ingest families, read from the receiver's accounting at
	// scrape time. UDP has no reply channel, so these series are the
	// only place refusals (and transport loss) surface.
	typeLabel := func(t string) metrics.Label {
		return metrics.Label{Key: "type", Value: t}
	}
	reg.CollectCounter("shbf_udp_datagrams_received_total",
		"ShBU datagrams decoded, by payload type.",
		func(e *metrics.Emitter) {
			st := s.udp.Stats()
			e.EmitUint(st.ReceivedBatch, typeLabel("batch"))
			e.EmitUint(st.ReceivedEnvelope, typeLabel("envelope"))
		})
	reg.CollectCounter("shbf_udp_datagrams_applied_total",
		"ShBU datagrams applied through the namespace write gates, by payload type.",
		func(e *metrics.Emitter) {
			st := s.udp.Stats()
			e.EmitUint(st.AppliedBatch, typeLabel("batch"))
			e.EmitUint(st.AppliedEnvelope, typeLabel("envelope"))
		})
	reg.CollectCounter("shbf_udp_datagrams_dropped_total",
		"ShBU datagrams refused, by reason.",
		func(e *metrics.Emitter) {
			st := s.udp.Stats()
			for _, reason := range ingest.DropReasons() {
				e.EmitUint(st.Dropped[reason],
					metrics.Label{Key: "reason", Value: reason.String()})
			}
		})
	reg.CounterFunc("shbf_udp_reordered_total",
		"ShBU datagrams that arrived after a higher sequence from their source.",
		func() uint64 { return s.udp.Stats().Reordered })
	reg.CounterFunc("shbf_udp_merge_bytes_total",
		"Reassembled envelope bytes accepted for union-merge.",
		func() uint64 { return s.udp.Stats().MergeBytes })
	reg.GaugeFunc("shbf_udp_lost_datagrams",
		"Datagrams sent but never received, estimated from sequence gaps (late arrivals shrink it).",
		func() float64 { return float64(s.udp.Stats().Lost) })
	reg.GaugeFunc("shbf_udp_loss_ratio",
		"Estimated fraction of sent datagrams lost in flight.",
		func() float64 { return s.udp.Stats().LossRatio() })
	reg.GaugeFunc("shbf_udp_sources",
		"Distinct ShBU source IDs tracked.",
		func() float64 { return float64(s.udp.Stats().Sources) })
	reg.GaugeFunc("shbf_udp_assemblies",
		"Envelope fragment reassemblies currently in flight.",
		func() float64 { return float64(s.udp.Stats().Assemblies) })
	reg.CounterFunc("shbf_udp_assemblies_evicted_total",
		"Incomplete reassemblies discarded: superseded by a newer flush from the same source, or displaced under capacity pressure.",
		func() uint64 { return s.udp.Stats().AssembliesEvicted })

	return m
}

// nsFillRatios is the scrape-time mean fill ratio of each filter of
// the trio (the shard-mean the stats endpoints also report).
func nsFillRatios(ns *namespace) (mem, assoc, mult float64) {
	msh := ns.mem.ShardStats()
	for _, sh := range msh {
		mem += sh.FillRatio
	}
	mem /= float64(len(msh))
	ash := ns.assoc.ShardStats()
	for _, sh := range ash {
		assoc += sh.FillRatio
	}
	assoc /= float64(len(ash))
	xsh := ns.mult.ShardStats()
	for _, sh := range xsh {
		mult += sh.FillRatio
	}
	mult /= float64(len(xsh))
	return mem, assoc, mult
}

// ServeHTTP serves GET /metrics.
func (m *serverMetrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.reg.ServeHTTP(w, r)
}

// instrumentHTTP wraps one route with its request counter and latency
// histogram. The HTTP status is folded onto the wire status names so
// the two transports' request counters share a label vocabulary.
func (s *Server) instrumentHTTP(op string, h http.HandlerFunc) http.HandlerFunc {
	if s.met == nil {
		return h
	}
	om := s.met.httpOps[op]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(&sw, r)
		om.dur.Observe(time.Since(start))
		om.reqs[httpStatusIndex(sw.code)].Inc()
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// httpStatusIndex folds an HTTP status onto the wire status indices,
// the inverse of the handlers' error mapping (and of the client's
// httpStatusToWire).
func httpStatusIndex(code int) int {
	switch {
	case code < 400:
		return wire.StatusOK
	case code == http.StatusBadRequest:
		return wire.StatusBadRequest
	case code == http.StatusNotFound:
		return wire.StatusNotFound
	case code == http.StatusConflict:
		return wire.StatusConflict
	case code == http.StatusTooManyRequests:
		return wire.StatusOverloaded
	}
	return wire.StatusInternal
}

// statusIndex clamps a wire status onto the counter index range.
func statusIndex(st byte) int {
	if int(st) >= wireStatusCount {
		return wire.StatusInternal
	}
	return int(st)
}
